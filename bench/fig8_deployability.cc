// Fig. 8: qualitative bucketing of ingress traffic-control solutions along
// deployability (how much traffic can be directed with how much deployment
// effort) and precision (traffic/time granularity and path diversity). The
// paper's placement is reproduced here as a table, with the quantitative
// anchors this repository regenerates for each axis.
#include <iostream>

#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 8",
      "Deployability vs precision of ingress traffic-control solutions "
      "(qualitative, quantitative anchors in other benches).");

  util::Table table{{"solution", "deployability", "precision",
                     "quantitative anchor"}};
  table.AddRow({"Anycast", "more deployable", "less precise",
                "Fig. 10: ~1 s outage + ~15 s convergence on failure"});
  table.AddRow({"DNS (+ anycast/BGP tuning)", "more deployable",
                "less precise",
                "Fig. 3: 80% of Cloud-A bytes ignore expiry; Fig. 9a: "
                "per-resolver granularity"});
  table.AddRow({"SD-WAN multihoming", "deployable (enterprise-side)",
                "moderate",
                "Fig. 11: 2-3 paths for most UGs vs PAINTER's 23+"});
  table.AddRow({"PAINTER (cloud-edge stack)", "deployable",
                "most precise",
                "Fig. 9a: per-flow; Fig. 10: ~1 RTT failover"});
  table.AddRow({"Per-application TM-Edge", "hard (per-app rollout)",
                "most precise", "same mechanism, worse deployment story"});
  table.AddRow({"MPTCP/MPQUIC clients", "hard (client OS adoption)",
                "most precise", "§2.3 edge-proxy variant"});
  table.AddRow({"ISP collaboration", "least deployable", "precise",
                "requires per-ISP coordination (§6)"});
  table.AddRow({"Future Internet archs", "least deployable", "precise",
                "requires new interdomain protocols (§6)"});
  table.Print(std::cout);

  std::cout << "\nPAINTER's position: cloud-edge network stacks already run "
               "enterprise traffic policy and are cloud-integrated, so "
               "TM-Edge deploys without touching clients, ISPs, or apps "
               "(§5.2.1), while controlling individual flows at RTT "
               "timescales.\n";
  return 0;
}
