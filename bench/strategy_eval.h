// Shared strategy-curve machinery for the Fig. 6/9/14 benches: build each
// advertisement strategy at a series of prefix budgets and evaluate its
// modeled benefit range (Eq. 2) or ground-truth realized benefit.
#pragma once

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"

namespace painter::bench {

struct StrategyCurve {
  std::string name;
  std::vector<std::size_t> budgets;
  std::vector<core::Orchestrator::Prediction> predictions;
};

// Budget points as fractions of the session count (log-spaced like the
// paper's x axis), deduplicated and >= 1.
inline std::vector<std::size_t> BudgetPoints(std::size_t session_count) {
  std::vector<std::size_t> budgets;
  for (const double pct : {0.001, 0.003, 0.01, 0.03, 0.10, 0.30, 1.0}) {
    const auto b = static_cast<std::size_t>(
        std::max(1.0, pct * static_cast<double>(session_count)));
    if (budgets.empty() || b != budgets.back()) budgets.push_back(b);
  }
  return budgets;
}

// PAINTER solved once at the largest budget (the greedy stops early at
// saturation); smaller budgets are truncations of the greedy order.
inline core::AdvertisementConfig SolvePainter(
    const core::ProblemInstance& instance, std::size_t max_budget,
    double d_reuse_km = 3000.0) {
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = max_budget;
  ocfg.d_reuse_km = d_reuse_km;
  core::Orchestrator orch{instance, ocfg};
  return orch.ComputeConfig();
}

struct NamedStrategy {
  std::string name;
  // Builds the configuration for a given budget.
  std::function<core::AdvertisementConfig(std::size_t budget)> build;
};

// The paper's strategy lineup (§5.1.2). `painter_full` must be the PAINTER
// config solved at the maximum budget.
inline std::vector<NamedStrategy> PaperStrategies(
    const BenchWorld& w, const core::ProblemInstance& instance,
    const core::AdvertisementConfig& painter_full, double d_reuse_km) {
  return {
      NamedStrategy{"PAINTER",
                    [&](std::size_t b) {
                      return core::Truncate(painter_full, b);
                    }},
      NamedStrategy{"OnePerPeering",
                    [&](std::size_t b) {
                      return core::OnePerPeering(*w.deployment, instance, b);
                    }},
      NamedStrategy{"OnePerPop",
                    [&](std::size_t b) {
                      return core::OnePerPop(*w.deployment, instance, b);
                    }},
      NamedStrategy{"OnePerPopWithReuse",
                    [&, d_reuse_km](std::size_t b) {
                      return core::OnePerPopWithReuse(
                          w.internet(), *w.deployment, instance, b,
                          d_reuse_km);
                    }},
      NamedStrategy{"RegionalTransit",
                    [&](std::size_t b) {
                      return core::RegionalTransit(w.internet(), *w.deployment,
                                                   b);
                    }},
  };
}

inline std::vector<StrategyCurve> EvaluateModelCurves(
    const core::ProblemInstance& instance,
    const std::vector<NamedStrategy>& strategies,
    const std::vector<std::size_t>& budgets,
    const core::ExpectationParams& params) {
  const core::RoutingModel model{instance.UgCount()};
  std::vector<StrategyCurve> curves;
  for (const auto& strategy : strategies) {
    StrategyCurve curve{strategy.name, budgets, {}};
    for (const std::size_t b : budgets) {
      curve.predictions.push_back(core::PredictBenefit(
          instance, model, strategy.build(b), params));
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

}  // namespace painter::bench
