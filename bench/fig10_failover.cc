// Fig. 10: PAINTER fails over between paths during PoP failure at RTT
// timescales, while anycast takes ~1 s to regain reachability and ~15 s to
// converge, and DNS would take a TTL (~60 s).
//
// Left axis: RTT per prefix over time with PAINTER's chosen path.
// Right axis: BGP update churn after the withdrawal (from the convergence
// dynamics model running on a generated topology).
#include <iostream>

#include "bench/bench_common.h"
#include "bgpsim/dynamics.h"
#include "bgpsim/session_sim.h"
#include "obs/report.h"
#include "faultsim/failover_scenario.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 10",
      "Failover during PoP failure: PAINTER switches paths in ~1 RTT; anycast "
      "needs ~1 s to regain reachability and ~15 s to converge; DNS needs a "
      "TTL (60 s).");

  obs::RunReport report{"fig10_failover"};

  // --- Packet-level failover timeline. ---
  tm::FailoverScenarioConfig cfg;
  report.SetSeed(cfg.edge.seed);
  report.AddConfig("probe_interval_ms", cfg.edge.probe_interval_s * 1000.0);
  report.AddConfig("path_rtt_ms", 2.0 * cfg.chosen_delay_s * 1000.0);
  auto scenario_timer = std::make_unique<obs::RunReport::ScopedPhase>(
      report, "failover_scenario");
  const auto result = tm::RunFailoverScenario(cfg);
  scenario_timer.reset();
  report.AddValue("detection_ms", result.detection_delay_s * 1000.0);
  report.AddValue("detection_rtts", result.detection_delay_s /
                                        (2.0 * cfg.chosen_delay_s));

  std::cout << "Tunnels:\n";
  for (std::size_t i = 0; i < result.tunnel_names.size(); ++i) {
    std::cout << "  [" << i << "] " << result.tunnel_names[i] << "\n";
  }
  std::cout << "\nTimeline (sampled every 4 s around the failure at t=60):\n";
  util::Table table{{"t (s)", "chosen", "anycast RTT", "2.2.2.0/24 RTT",
                     "3.3.3.0/24 RTT"}};
  for (const auto& s : result.samples) {
    const bool near_failure = s.t >= 52.0 && s.t <= 84.0;
    if (!near_failure && static_cast<int>(s.t) % 16 != 0) continue;
    if (near_failure && (s.t - std::floor(s.t)) > 0.26 &&
        static_cast<int>(s.t * 2) % 8 != 0) {
      continue;
    }
    auto fmt = [](const std::optional<double>& v) {
      return v.has_value() ? util::Table::Num(*v, 1) : std::string{"DOWN"};
    };
    table.AddRow({util::Table::Num(s.t, 1),
                  s.chosen >= 0 ? result.tunnel_names[s.chosen] : "-",
                  fmt(s.rtt_ms[0]), fmt(s.rtt_ms[1]), fmt(s.rtt_ms[2])});
  }
  table.Print(std::cout);

  std::cout << "\nPAINTER failover: detected PoP-A loss and switched to "
            << (result.failover_target >= 0
                    ? result.tunnel_names[result.failover_target]
                    : std::string{"<none>"})
            << " in " << util::Table::Num(result.detection_delay_s * 1000.0, 1)
            << " ms after the failure.\n";

  // --- Detection-delay distribution over jittered trials (§5.2.3 text:
  // "typically detected failure within 1.3 RTTs"). ---
  std::vector<double> detections;
  {
    const obs::RunReport::ScopedPhase phase{report, "detection_trials"};
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      tm::FailoverScenarioConfig trial = cfg;
      trial.run_for_s = 70.0;
      trial.edge.seed = seed;
      const auto r = tm::RunFailoverScenario(trial);
      if (r.detection_delay_s >= 0) {
        detections.push_back(r.detection_delay_s * 1000.0);
      }
    }
  }
  report.AddValue("trials.median_detection_ms", util::Median(detections));
  report.AddValue("trials.p95_detection_ms",
                  util::Percentile(detections, 95.0));
  const double rtt_ms = 2.0 * cfg.chosen_delay_s * 1000.0;
  std::cout << "\nDetection delay over " << detections.size()
            << " trials: median " << util::Table::Num(util::Median(detections), 1)
            << " ms (" << util::Table::Num(util::Median(detections) / rtt_ms, 2)
            << " RTT), p95 "
            << util::Table::Num(util::Percentile(detections, 95.0), 1)
            << " ms. Probe interval " << cfg.edge.probe_interval_s * 1000.0
            << " ms, path RTT " << rtt_ms << " ms.\n";

  // --- BGP churn after the withdrawal (right axis of Fig. 10). ---
  auto w = bench::MakeBenchWorld(42, 600, 10);
  std::vector<util::PeeringId> all;
  for (const auto& p : w.deployment->peerings()) all.push_back(p.id);
  // Withdraw everything at the busiest PoP (PoP-A's failure).
  const util::PopId dead_pop = w.deployment->pops().front().id;
  bgpsim::Announcement before{util::PrefixId{0}, w.deployment->cloud_as(), {}};
  bgpsim::Announcement after = before;
  for (const auto& sess : w.deployment->peerings()) {
    before.to_neighbors.push_back(sess.peer);
    if (sess.pop != dead_pop) after.to_neighbors.push_back(sess.peer);
  }
  bgpsim::BgpEngine engine{w.internet().graph};
  util::Rng rng{7};
  auto churn_timer = std::make_unique<obs::RunReport::ScopedPhase>(
      report, "withdrawal_churn");
  const auto trace = bgpsim::SimulateWithdrawal(
      engine, before, after, w.deployment->ugs().front().as,
      bgpsim::ConvergenceParams{}, rng);
  churn_timer.reset();
  report.AddValue("anycast_converged_s", trace.converged_seconds);

  // Bin updates per 2 s window.
  std::cout << "\nBGP updates after withdrawal (RIPE-RIS-style churn):\n";
  util::Table churn{{"window (s)", "updates"}};
  double window = 2.0;
  std::size_t idx = 0;
  for (double t0 = 0.0; t0 < trace.converged_seconds + window; t0 += window) {
    std::size_t count = 0;
    while (idx < trace.events.size() &&
           trace.events[idx].time_seconds < t0 + window) {
      count += trace.events[idx].updates;
      ++idx;
    }
    churn.AddRow({util::Table::Num(t0, 0) + "-" + util::Table::Num(t0 + window, 0),
                  std::to_string(count)});
  }
  churn.Print(std::cout);
  std::cout << "\nAnycast converged after "
            << util::Table::Num(trace.converged_seconds, 1)
            << " s of path exploration.\n";

  // --- The same withdrawal replayed at the BGP message level: real UPDATE /
  // WITHDRAW processing with Adj-RIB-In, loop prevention, and MRAI pacing
  // (bgpsim::MessageLevelSim, cross-validated against the static engine). ---
  {
    const obs::RunReport::ScopedPhase phase{report, "message_level_replay"};
    netsim::Simulator bgp_sim;
    bgpsim::MessageLevelSim msim{w.internet().graph, w.deployment->cloud_as(),
                                 bgp_sim,
                                 {.hop_delay_s = 0.15, .mrai_s = 3.0, .seed = 11}};
    // Deduplicate neighbor lists (session -> AS is many-to-one).
    auto unique_ases = [](const std::vector<util::AsId>& in) {
      std::vector<util::AsId> out = in;
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    };
    const auto all_ases = unique_ases(before.to_neighbors);
    // The failed PoP hosts the cloud's transit-provider sessions (the Fig. 1
    // scenario: the well-connected path dies); their withdrawal forces every
    // AS that routed through a provider onto peer-learned paths — real path
    // exploration, visible as MRAI-paced message waves.
    std::vector<util::AsId> dropped;
    for (const auto pid : w.deployment->TransitPeerings()) {
      dropped.push_back(w.deployment->peering(pid).peer);
    }
    dropped = unique_ases(dropped);
    msim.Announce(all_ases);
    bgp_sim.Run(1e6);
    const auto baseline = msim.ChurnLog().size();
    const double t0 = bgp_sim.Now();
    msim.Withdraw(dropped);
    bgp_sim.Run(t0 + 120.0);

    util::Table mchurn{{"window (s)", "messages"}};
    std::size_t idx2 = baseline;
    const auto& log = msim.ChurnLog();
    double last = t0;
    for (std::size_t i = baseline; i < log.size(); ++i) {
      last = std::max(last, log[i].first);
    }
    for (double w0 = 0.0; t0 + w0 < last + 2.0; w0 += 2.0) {
      std::size_t count = 0;
      while (idx2 < log.size() && log[idx2].first < t0 + w0 + 2.0) {
        count += log[idx2].second;
        ++idx2;
      }
      mchurn.AddRow({util::Table::Num(w0, 0) + "-" + util::Table::Num(w0 + 2, 0),
                     std::to_string(count)});
    }
    std::cout << "\nMessage-level BGP replay of the withdrawal (UPDATE/"
                 "WITHDRAW with MRAI pacing):\n";
    mchurn.Print(std::cout);
    report.AddValue("bgp_messages_processed",
                    static_cast<double>(msim.MessagesProcessed()));
    report.AddValue("bgp_quiet_after_s", last - t0);
    std::cout << "Messages processed during reconvergence: "
              << msim.MessagesProcessed() << "; quiet after "
              << util::Table::Num(last - t0, 1)
              << " s. (With full Adj-RIB-In retention each AS flips to its "
                 "pre-learned alternate in one step; the longer RIS tail in "
                 "the analytic model reflects the per-prefix path hunting "
                 "real routers exhibit at Internet scale.)\n";
  }
  std::cout << "\nAvailability gap comparison: PAINTER "
            << util::Table::Num(result.detection_delay_s * 1000.0, 0)
            << " ms | anycast ~" << util::Table::Num(
                   cfg.anycast_unreachable_s * 1000.0, 0)
            << " ms | DNS ~60000 ms (TTL).\n";
  report.AttachMetrics();
  report.Write(bench::ReportPath("fig10_failover"));
  return 0;
}
