// Ablations for the design choices DESIGN.md calls out:
//   1. prefix reuse (PAINTER's budget saver, §3.1),
//   2. routing-model learning (§3.1 / Fig. 6c),
//   3. selection hysteresis in the Traffic Manager (oscillation avoidance,
//      §3.2 following [38]),
//   4. congestion steering via RTT-sensed queueing (§1).
#include <iostream>

#include "bench/strategy_eval.h"
#include "core/sim_environment.h"
#include "tm/congestion_scenario.h"
#include "util/table.h"

namespace {

using namespace painter;

void AblateReuseAndLearning() {
  util::PrintFigureHeader(
      std::cout, "Ablation 1+2: prefix reuse and learning",
      "Realized improvement with each mechanism disabled, prototype world.");

  auto w = bench::PrototypeWorld();
  util::Rng rng{21};
  const auto instance = core::BuildMeasuredInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, rng);
  core::GroundTruthEvaluator eval{*w.deployment, *w.resolver, *w.oracle};

  util::Table table{{"budget", "PAINTER (ms)", "no reuse (ms)",
                     "no learning (ms)", "announcements full/no-reuse"}};
  for (const std::size_t budget : {1ul, 3ul, 10ul, 30ul}) {
    auto run = [&](bool reuse, bool learning) {
      core::OrchestratorConfig cfg;
      cfg.prefix_budget = budget;
      cfg.enable_reuse = reuse;
      cfg.enable_learning = learning;
      cfg.max_learning_iterations = 10;
      cfg.learning_stop_frac = -1.0;  // run all iterations
      core::Orchestrator orch{instance, cfg};
      core::SimEnvironment env{*w.resolver, *w.oracle, util::Rng{31}};
      const auto reports = orch.Learn(env);
      double best = 0.0;
      for (const auto& r : reports) best = std::max(best, r.realized_ms);
      return std::make_pair(best, reports.back().config.AnnouncementCount());
    };
    const auto [full, ann_full] = run(true, true);
    const auto [no_reuse, ann_nr] = run(false, true);
    const auto [no_learn, ann_nl] = run(true, false);
    table.AddRow({std::to_string(budget), util::Table::Num(full, 2),
                  util::Table::Num(no_reuse, 2),
                  util::Table::Num(no_learn, 2),
                  std::to_string(ann_full) + " / " + std::to_string(ann_nr)});
    (void)ann_nl;
  }
  table.Print(std::cout);
  std::cout << "Reuse packs many announcements into few prefixes — its value "
               "concentrates at tight budgets, and realizing it depends on "
               "learning (masked ingresses must be observed and re-placed); "
               "learning is also what closes the gap at every budget.\n";
}

void AblateHysteresis() {
  util::PrintFigureHeader(
      std::cout, "Ablation 3: selection hysteresis",
      "Destination switches with and without a switching margin on two "
      "nearly-equal jittery tunnels (oscillation avoidance, §3.2).");

  util::Table table{{"hysteresis (ms)", "switches in 60 s"}};
  for (const double margin : {0.0, 1.0, 3.0, 6.0}) {
    netsim::Simulator sim;
    tm::TmPop pop_a{sim, "A", {1}};
    tm::TmPop pop_b{sim, "B", {2}};
    std::vector<tm::TunnelConfig> tunnels;
    tunnels.push_back(tm::TunnelConfig{.name = "a",
                                       .remote_ip = 1,
                                       .path = netsim::PathModel::Fixed(0.0150),
                                       .pop = &pop_a});
    tunnels.push_back(tm::TunnelConfig{.name = "b",
                                       .remote_ip = 2,
                                       .path = netsim::PathModel::Fixed(0.0152),
                                       .pop = &pop_b});
    tm::TmEdge::Config cfg;
    cfg.switch_hysteresis_ms = margin;
    cfg.delay_jitter = 0.15;  // noisy enough to flip instantaneous ordering
    cfg.seed = 5;
    tm::TmEdge edge{sim, cfg, std::move(tunnels)};
    edge.Start();
    sim.Run(60.0);
    table.AddRow({util::Table::Num(margin, 1),
                  std::to_string(edge.failovers().size())});
  }
  table.Print(std::cout);
  std::cout << "Without a margin the edge flaps between near-equal paths; a "
               "few milliseconds of hysteresis pins it.\n";
}

void AblateCongestionSteering() {
  util::PrintFigureHeader(
      std::cout, "Ablation 4: congestion steering",
      "A bottlenecked preferred path congests for 30 s; the TM-Edge senses "
      "it through probe RTT/loss and steers.");

  tm::CongestionScenarioConfig cfg;
  const auto r = tm::RunCongestionScenario(cfg);
  std::cout << "Preferred-path RTT: " << util::Table::Num(r.rtt_before_ms, 1)
            << " ms before, peak " << util::Table::Num(r.rtt_during_peak_ms, 1)
            << " ms observed during congestion, "
            << util::Table::Num(r.rtt_after_ms, 1) << " ms after.\n";
  std::cout << "Bottleneck drops: " << r.bottleneck_drops << ".\n";
  std::cout << "Steered away during congestion: "
            << (r.steered_away ? "yes" : "NO") << "; steered back after: "
            << (r.steered_back ? "yes" : "NO") << ".\n";
  for (const auto& ev : r.switches) {
    if (ev.from < 0) continue;
    std::cout << "  switch at t=" << util::Table::Num(ev.t, 2) << " s: "
              << r.tunnel_names[ev.from] << " -> " << r.tunnel_names[ev.to]
              << "\n";
  }
}

}  // namespace

int main() {
  AblateReuseAndLearning();
  AblateHysteresis();
  AblateCongestionSteering();
  return 0;
}
