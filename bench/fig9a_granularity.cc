// Fig. 9a: the granularity at which BGP, DNS, and PAINTER control traffic,
// overall and for the top PoPs by volume. BGP's knob is a (peering, user AS)
// announcement update; DNS's is a recursive resolver; PAINTER's is a flow.
// Buckets are the share of the PoP's traffic one knob moves.
#include <iostream>

#include "bench/bench_common.h"
#include "dnssim/granularity.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 9a",
      "Fraction of PoP traffic controlled per knob-size bucket, per steering "
      "mechanism.");

  auto w = bench::AzureScaleWorld();
  const auto resolvers = dnssim::AssignResolvers(*w.deployment, {});
  std::cout << "Resolvers: " << resolvers.resolver_count << " ("
            << [&] {
                 std::size_t e = 0;
                 for (bool b : resolvers.resolver_supports_ecs) e += b;
                 return e;
               }()
            << " ECS-capable)\n\n";

  const auto rows =
      dnssim::AnalyzeGranularity(*w.deployment, *w.resolver, resolvers, {});

  const std::array<std::string, dnssim::kGranularityBuckets> bucket_names = {
      "<=0.01%", "0.01-0.1%", "0.1-1%", "1-10%", "10-100%"};

  for (const auto& mech : {std::string{"BGP"}, std::string{"DNS"},
                           std::string{"PAINTER"}}) {
    std::vector<std::string> headers{"PoP"};
    for (const auto& b : bucket_names) headers.push_back(b);
    util::Table table{headers};
    for (const auto& row : rows) {
      const auto& arr = mech == "BGP" ? row.bgp
                        : mech == "DNS" ? row.dns
                                        : row.painter;
      std::vector<std::string> cells{row.pop_name};
      for (const double v : arr) cells.push_back(util::Table::Pct(v));
      table.AddRow(std::move(cells));
    }
    std::cout << mech << " knob sizes (share of PoP traffic per knob):\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Paper shape: both BGP and DNS move traffic at coarse, "
               "PoP-dependent granularities (the paper notes the ordering "
               "varies significantly across PoPs); PAINTER controls every "
               "flow individually — all volume in the finest bucket.\n";
  return 0;
}
