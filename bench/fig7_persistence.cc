// Fig. 7: how long do advertisement benefits persist? A configuration solved
// from a week of measurements keeps ~97% of its benefit over the following
// 25 days when UGs can switch prefixes dynamically; freezing each UG's day-0
// prefix choice costs ~10% more — PAINTER's announcements age well because
// they expose backup paths, not because routing is static.
#include <iostream>

#include "bench/strategy_eval.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 7",
      "Benefit persistence over 25 days: dynamic vs static (day-0) prefix "
      "choices, per prefix budget.");

  auto w = bench::PrototypeWorld();
  util::Rng rng{21};
  const auto instance = core::BuildMeasuredInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, rng);

  core::GroundTruthEvaluator eval{*w.deployment, *w.resolver, *w.oracle};
  auto eval_possible = [&eval](const bench::BenchWorld& world, int day) {
    return eval.PossibleMeanImprovementMs(*world.catalog, day);
  };

  const std::size_t sessions = w.deployment->peerings().size();
  const std::vector<std::pair<std::string, std::size_t>> budgets = {
      {"0.5% budget", std::max<std::size_t>(1, sessions / 200)},
      {"2% budget", std::max<std::size_t>(2, sessions / 50)},
      {"10% budget", std::max<std::size_t>(4, sessions / 10)},
  };

  std::vector<double> xs;
  for (int day = 0; day <= 25; day += 5) xs.push_back(day);

  // Fraction of the *possible* benefit achieved each day. Latencies drift
  // (regime shifts hit anycast and alternates alike), so the paper's metric
  // recalculates "the fraction of benefit we achieve" against that day's
  // measurements rather than comparing raw milliseconds across days.
  std::vector<double> possible_by_day;
  for (const double day : xs) {
    possible_by_day.push_back(
        eval_possible(w, static_cast<int>(day)));
  }

  std::vector<util::Series> series;
  for (const auto& [label, budget] : budgets) {
    const auto cfg = bench::SolvePainter(instance, budget);
    eval.SetConfig(cfg);

    const auto choices = eval.Choices(0);
    util::Series dynamic{label + " dynamic", {}};
    util::Series fixed{label + " static", {}};
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const int d = static_cast<int>(xs[i]);
      const double possible = std::max(1e-9, possible_by_day[i]);
      dynamic.ys.push_back(100.0 * eval.MeanImprovementMs(d) / possible);
      fixed.ys.push_back(100.0 * eval.MeanImprovementStaticMs(choices, d) /
                         possible);
    }
    series.push_back(std::move(dynamic));
    series.push_back(std::move(fixed));
  }
  PrintSweep(std::cout, "day (%% of that day's possible benefit)", xs, series,
             1);

  std::cout << "\nPaper shape: dynamic choices hold ~95-100% of day-0 "
               "benefit for a month; static choices run ~10% lower — the "
               "announcements provide good backup paths, so reconfiguration "
               "is rarely needed (§5.1.3).\n";
  return 0;
}
