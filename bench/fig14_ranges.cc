// Fig. 14 (Appendix E.1): full benefit ranges per strategy. One-per-PoP
// strategies expose many possibly-poor ingresses per prefix, so their
// Lower/Upper range is huge (optimistically great, pessimistically nothing);
// PAINTER's reuse across far-apart PoPs and disjoint customer cones keeps
// its range tight; One-per-Peering has no uncertainty at all.
#include <iostream>

#include "bench/strategy_eval.h"
#include "measure/geolocation.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 14",
      "Benefit ranges (lower / mean / estimated / upper, % of possible) per "
      "strategy over prefix budget.");

  auto w = bench::AzureScaleWorld();
  const measure::GeoTargetCatalog targets{*w.oracle, {}};
  util::Rng rng{11};
  const auto instance = core::BuildEstimatedInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle,
      targets, rng, 450.0);
  const double possible = instance.TotalPossibleBenefitMs();

  const double d_reuse = 3000.0;
  const auto painter_full =
      bench::SolvePainter(instance, w.deployment->peerings().size(), d_reuse);
  const auto budgets = bench::BudgetPoints(w.deployment->peerings().size());
  const auto strategies =
      bench::PaperStrategies(w, instance, painter_full, d_reuse);
  const auto curves = bench::EvaluateModelCurves(instance, strategies,
                                                 budgets,
                                                 {.d_reuse_km = d_reuse});

  for (const auto& curve : curves) {
    std::cout << curve.name << ":\n";
    util::Table table{{"budget (% sessions)", "lower", "mean", "estimated",
                       "upper", "range width"}};
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      const auto& p = curve.predictions[i];
      const double pct = 100.0 * static_cast<double>(budgets[i]) /
                         static_cast<double>(w.deployment->peerings().size());
      table.AddRow({util::Table::Num(pct, 1),
                    util::Table::Pct(p.lower_ms / possible),
                    util::Table::Pct(p.mean_ms / possible),
                    util::Table::Pct(p.estimated_ms / possible),
                    util::Table::Pct(p.upper_ms / possible),
                    util::Table::Pct((p.upper_ms - p.lower_ms) / possible)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: One-per-PoP variants have the widest ranges "
               "(high Upper, low Lower/Estimated); One-per-Peering has zero "
               "width; PAINTER attains most benefit with little "
               "uncertainty.\n";
  return 0;
}
