// Microbenchmarks (google-benchmark) for the computational claims in §4:
// the Advertisement Orchestrator computes configurations at ~30 s/prefix
// with thousands of ingresses and tens of thousands of UGs — quick relative
// to how often it runs (monthly). Here we measure the per-prefix greedy
// cost, BGP propagation, and the Eq. 2 expectation primitive across world
// sizes, demonstrating the near-linear scaling the paper attributes to UGs
// having paths via a small fraction of ingresses.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <string_view>

#include "bench/bench_common.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/problem.h"
#include "obs/report.h"
#include "util/thread_pool.h"

namespace {

using namespace painter;

const bench::BenchWorld& SharedWorld(std::size_t stubs) {
  static std::map<std::size_t, std::unique_ptr<bench::BenchWorld>> cache;
  auto& slot = cache[stubs];
  if (!slot) {
    slot = std::make_unique<bench::BenchWorld>(
        bench::MakeBenchWorld(900 + stubs, stubs, 12));
  }
  return *slot;
}

const core::ProblemInstance& SharedInstance(std::size_t stubs) {
  static std::map<std::size_t, std::unique_ptr<core::ProblemInstance>> cache;
  auto& slot = cache[stubs];
  if (!slot) {
    const auto& w = SharedWorld(stubs);
    util::Rng rng{5};
    slot = std::make_unique<core::ProblemInstance>(core::BuildMeasuredInstance(
        w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, rng));
  }
  return *slot;
}

void BM_BgpPropagation(benchmark::State& state) {
  const auto& w = SharedWorld(static_cast<std::size_t>(state.range(0)));
  std::vector<util::PeeringId> all;
  for (const auto& p : w.deployment->peerings()) all.push_back(p.id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.resolver->Resolve(all));
  }
  state.SetLabel(std::to_string(w.internet().graph.size()) + " ASes");
}
BENCHMARK(BM_BgpPropagation)->Arg(200)->Arg(600)->Arg(1500);

void BM_Expectation(benchmark::State& state) {
  const auto& inst = SharedInstance(600);
  const core::RoutingModel model{inst.UgCount()};
  // A mid-size advertised set: the first UG's own compliant sessions.
  std::vector<util::PeeringId> advertised;
  for (const auto& opt : inst.options[0]) advertised.push_back(opt.peering);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeExpectation(inst, model, 0, advertised, {}));
  }
  state.SetLabel(std::to_string(advertised.size()) + " candidates");
}
BENCHMARK(BM_Expectation);

// Args: {stub count, num_threads, incremental_celf}. Compare rows at the
// same stub count to read the serial-vs-parallel speedup of the CELF seeding
// scan (thread count 1 forces the serial path) and the incremental-vs-naive
// speedup of the CELF engine (last arg 0 disables the cross-round marginal
// cache and the aggregate fast path). Results are bit-identical across every
// row at the same stub count — see the golden-schedule and property tests.
void BM_OrchestratorPerPrefix(benchmark::State& state) {
  const auto& inst = SharedInstance(static_cast<std::size_t>(state.range(0)));
  core::OrchestratorConfig cfg;
  cfg.prefix_budget = 8;
  cfg.num_threads = static_cast<std::size_t>(state.range(1));
  cfg.incremental_celf = state.range(2) != 0;
  for (auto _ : state) {
    core::Orchestrator orch{inst, cfg};
    benchmark::DoNotOptimize(orch.ComputeConfig());
  }
  state.counters["ugs"] = static_cast<double>(inst.UgCount());
  state.counters["sessions"] = static_cast<double>(inst.peering_count);
  state.counters["threads"] = static_cast<double>(cfg.num_threads);
  state.counters["incremental"] = cfg.incremental_celf ? 1.0 : 0.0;
  state.counters["s_per_prefix"] = benchmark::Counter(
      8.0, benchmark::Counter::kIsIterationInvariantRate |
               benchmark::Counter::kInvert);
}
BENCHMARK(BM_OrchestratorPerPrefix)
    ->Args({300, 1, 1})
    ->Args({600, 1, 0})
    ->Args({600, 1, 1})
    ->Args({600, 2, 1})
    ->Args({600, 8, 1})
    ->Args({1200, 1, 0})
    ->Args({1200, 1, 1})
    ->Args({1200, 2, 1})
    ->Args({1200, 8, 1})
    ->Unit(benchmark::kMillisecond);

// Arg: num_threads for the per-UG prediction loop (1 = serial baseline).
void BM_PredictBenefit(benchmark::State& state) {
  const auto& inst = SharedInstance(600);
  core::OrchestratorConfig cfg;
  cfg.prefix_budget = 10;
  core::Orchestrator orch{inst, cfg};
  const auto config = orch.ComputeConfig();
  const core::RoutingModel model{inst.UgCount()};
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::PredictBenefit(inst, model, config, {}, threads));
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_PredictBenefit)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Timed passes over the orchestrator paths at the largest stub count,
// written as a painter.bench.v1 report (BENCH_micro_orchestrator.json).
// Unlike the google-benchmark numbers above (human-readable, statistical),
// this is the machine-readable artifact tools/perf_check.sh diffs across
// commits via tools/bench_compare.py. Each phase records the best of three
// passes to damp scheduler noise.
void WriteRunReport() {
  constexpr std::size_t kStubs = 1200;
  constexpr std::size_t kBudget = 8;
  // At least 2 so the parallel path (and the pool's queue-wait telemetry) is
  // exercised even on single-core machines; on real hardware, all cores.
  const std::size_t threads =
      std::max<std::size_t>(2, util::EffectiveThreads(0));

  obs::RunReport report{"micro_orchestrator"};
  report.SetSeed(900 + kStubs);
  report.AddConfig("stubs", static_cast<double>(kStubs));
  report.AddConfig("prefix_budget", static_cast<double>(kBudget));
  report.AddConfig("threads", static_cast<double>(threads));

  const core::ProblemInstance* inst = nullptr;
  {
    const obs::RunReport::ScopedPhase phase{report, "build_world"};
    inst = &SharedInstance(kStubs);
  }

  auto time_compute = [&](std::size_t num_threads, bool incremental,
                          const char* phase_name) {
    core::OrchestratorConfig cfg;
    cfg.prefix_budget = kBudget;
    cfg.num_threads = num_threads;
    cfg.incremental_celf = incremental;
    double best_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      core::Orchestrator orch{*inst, cfg};
      const auto start = std::chrono::steady_clock::now();
      const auto config = orch.ComputeConfig();
      const auto elapsed = std::chrono::steady_clock::now() - start;
      best_ms = std::min(
          best_ms, std::chrono::duration<double, std::milli>(elapsed).count());
      benchmark::DoNotOptimize(config);
    }
    report.AddPhaseMs(phase_name, best_ms);
    return best_ms;
  };
  const double serial_ms = time_compute(1, true, "compute_serial");
  const double parallel_ms = time_compute(threads, true, "compute_parallel");
  const double naive_serial_ms =
      time_compute(1, false, "compute_naive_serial");
  const double naive_parallel_ms =
      time_compute(threads, false, "compute_naive_parallel");

  auto time_predict = [&](std::size_t num_threads, const char* phase_name) {
    core::OrchestratorConfig cfg;
    cfg.prefix_budget = kBudget;
    core::Orchestrator orch{*inst, cfg};
    const auto config = orch.ComputeConfig();
    const core::RoutingModel model{inst->UgCount()};
    double best_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const auto pred =
          core::PredictBenefit(*inst, model, config, {}, num_threads);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      best_ms = std::min(
          best_ms, std::chrono::duration<double, std::milli>(elapsed).count());
      benchmark::DoNotOptimize(pred);
    }
    report.AddPhaseMs(phase_name, best_ms);
    return best_ms;
  };
  const double predict_serial_ms = time_predict(1, "predict_serial");
  const double predict_parallel_ms = time_predict(threads, "predict_parallel");

  report.AddValue("compute_s_per_prefix_serial",
                  serial_ms / 1000.0 / static_cast<double>(kBudget));
  if (parallel_ms > 0.0) {
    report.AddValue("compute_speedup", serial_ms / parallel_ms);
  }
  if (serial_ms > 0.0) {
    report.AddValue("incremental_speedup_serial", naive_serial_ms / serial_ms);
  }
  if (parallel_ms > 0.0) {
    report.AddValue("incremental_speedup_parallel",
                    naive_parallel_ms / parallel_ms);
  }
  if (predict_parallel_ms > 0.0) {
    report.AddValue("predict_speedup", predict_serial_ms / predict_parallel_ms);
  }
  report.AttachMetrics();
  report.Write(bench::ReportPath("micro_orchestrator"));
}

}  // namespace

int main(int argc, char** argv) {
  // --report-only: skip the google-benchmark suite and just emit the
  // painter.bench.v1 report — what tools/perf_check.sh runs.
  bool report_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--report-only") {
      report_only = true;
      std::copy(argv + i + 1, argv + argc, argv + i);
      --argc;
      break;
    }
  }
  if (!report_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  WriteRunReport();
  return 0;
}
