// Microbenchmarks (google-benchmark) for the computational claims in §4:
// the Advertisement Orchestrator computes configurations at ~30 s/prefix
// with thousands of ingresses and tens of thousands of UGs — quick relative
// to how often it runs (monthly). Here we measure the per-prefix greedy
// cost, BGP propagation, and the Eq. 2 expectation primitive across world
// sizes, demonstrating the near-linear scaling the paper attributes to UGs
// having paths via a small fraction of ingresses.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/problem.h"

namespace {

using namespace painter;

const bench::BenchWorld& SharedWorld(std::size_t stubs) {
  static std::map<std::size_t, std::unique_ptr<bench::BenchWorld>> cache;
  auto& slot = cache[stubs];
  if (!slot) {
    slot = std::make_unique<bench::BenchWorld>(
        bench::MakeBenchWorld(900 + stubs, stubs, 12));
  }
  return *slot;
}

const core::ProblemInstance& SharedInstance(std::size_t stubs) {
  static std::map<std::size_t, std::unique_ptr<core::ProblemInstance>> cache;
  auto& slot = cache[stubs];
  if (!slot) {
    const auto& w = SharedWorld(stubs);
    util::Rng rng{5};
    slot = std::make_unique<core::ProblemInstance>(core::BuildMeasuredInstance(
        w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, rng));
  }
  return *slot;
}

void BM_BgpPropagation(benchmark::State& state) {
  const auto& w = SharedWorld(static_cast<std::size_t>(state.range(0)));
  std::vector<util::PeeringId> all;
  for (const auto& p : w.deployment->peerings()) all.push_back(p.id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.resolver->Resolve(all));
  }
  state.SetLabel(std::to_string(w.internet().graph.size()) + " ASes");
}
BENCHMARK(BM_BgpPropagation)->Arg(200)->Arg(600)->Arg(1500);

void BM_Expectation(benchmark::State& state) {
  const auto& inst = SharedInstance(600);
  const core::RoutingModel model{inst.UgCount()};
  // A mid-size advertised set: the first UG's own compliant sessions.
  std::vector<util::PeeringId> advertised;
  for (const auto& opt : inst.options[0]) advertised.push_back(opt.peering);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeExpectation(inst, model, 0, advertised, {}));
  }
  state.SetLabel(std::to_string(advertised.size()) + " candidates");
}
BENCHMARK(BM_Expectation);

// Args: {stub count, num_threads}. Compare rows at the same stub count to
// read the serial-vs-parallel speedup of the CELF seeding scan (thread
// count 1 forces the serial path; results are bit-identical either way —
// see core_orchestrator_test's determinism checks).
void BM_OrchestratorPerPrefix(benchmark::State& state) {
  const auto& inst = SharedInstance(static_cast<std::size_t>(state.range(0)));
  core::OrchestratorConfig cfg;
  cfg.prefix_budget = 5;
  cfg.num_threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    core::Orchestrator orch{inst, cfg};
    benchmark::DoNotOptimize(orch.ComputeConfig());
  }
  state.counters["ugs"] = static_cast<double>(inst.UgCount());
  state.counters["sessions"] = static_cast<double>(inst.peering_count);
  state.counters["threads"] = static_cast<double>(cfg.num_threads);
  state.counters["s_per_prefix"] = benchmark::Counter(
      5.0, benchmark::Counter::kIsIterationInvariantRate |
               benchmark::Counter::kInvert);
}
BENCHMARK(BM_OrchestratorPerPrefix)
    ->Args({300, 1})
    ->Args({600, 1})
    ->Args({600, 2})
    ->Args({600, 8})
    ->Args({1200, 1})
    ->Args({1200, 2})
    ->Args({1200, 8})
    ->Unit(benchmark::kMillisecond);

// Arg: num_threads for the per-UG prediction loop (1 = serial baseline).
void BM_PredictBenefit(benchmark::State& state) {
  const auto& inst = SharedInstance(600);
  core::OrchestratorConfig cfg;
  cfg.prefix_budget = 10;
  core::Orchestrator orch{inst, cfg};
  const auto config = orch.ComputeConfig();
  const core::RoutingModel model{inst.UgCount()};
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::PredictBenefit(inst, model, config, {}, threads));
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_PredictBenefit)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
