// Chaos runner: sweep random fault plans and check the §5.2.3 invariants.
//
// For each seed: generate a random TM world and a random FaultPlan, run the
// plan-driven scenario engine, and verify the four machine-checkable
// invariants (flow pinning, detection latency <= probe_interval + 1.3 RTT,
// no silent blackholing, reconvergence after faults clear). A subset of
// seeds re-runs under load: the workload engine drives a deterministic flow
// trace through the capacity-aware policy while the same faults play out
// (same four invariants, plus the policy contract). Another subset replays
// the plan's BGP events through the message-level simulation and checks
// convergence back to the static Gao–Rexford fixpoint.
//
// Everything is a pure function of the seeds: no wall-clock, fixed-order
// iteration, so `chaos_runner --seed S` is a one-line repro for any
// violating plan and its report is byte-identical across reruns (after
// obs::StripVolatile removes wall-ms noise). Exit status is the number of
// violating seeds (0 = all invariants held).
//
// Usage:
//   chaos_runner               # seeds 1..50
//   chaos_runner --seeds 200   # seeds 1..200
//   chaos_runner --seed 17     # just seed 17 (repro mode)
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bgpsim/session_sim.h"
#include "faultsim/bgp_replay.h"
#include "faultsim/fault_plan.h"
#include "faultsim/invariants.h"
#include "faultsim/scenario.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/chaos_load.h"

namespace {

using namespace painter;

faultsim::FaultPlan PlanForSeed(std::uint64_t seed,
                                const faultsim::FaultScenarioSpec& spec) {
  faultsim::PlanSpec ps;
  ps.tunnels = spec.tunnels.size();
  ps.pops = spec.pop_names.size();
  // Faults must clear well before the end of the run so the reconvergence
  // invariant is checkable: latest onset 60 + max duration 15 + settle 5
  // < run_for 90.
  ps.latest_s = 60.0;
  return faultsim::GenerateRandomPlan(seed, ps);
}

struct SeedResult {
  std::uint64_t seed = 0;
  std::size_t events = 0;
  std::size_t checks = 0;
  std::size_t failovers = 0;
  std::vector<std::string> violations;
  std::vector<double> detection_latencies_s;
};

SeedResult RunTmSeed(std::uint64_t seed) {
  const faultsim::FaultScenarioSpec spec = faultsim::GenerateRandomSpec(seed);
  const faultsim::FaultPlan plan = PlanForSeed(seed, spec);
  const faultsim::FaultScenarioResult result =
      faultsim::RunFaultScenario(spec, plan);
  const faultsim::InvariantReport rep =
      faultsim::CheckTmInvariants(spec, plan, result);
  return SeedResult{.seed = seed,
                    .events = plan.events.size(),
                    .checks = rep.checks,
                    .failovers = result.failovers.size(),
                    .violations = rep.violations,
                    .detection_latencies_s = rep.detection_latencies_s};
}

// BGP-layer replay on a shared bench world: schedule the seed's session
// events against the message-level sim and demand reconvergence to the
// static fixpoint. Returns violation messages.
std::vector<std::string> RunBgpSeed(std::uint64_t seed,
                                    const bench::BenchWorld& w,
                                    const std::vector<util::AsId>& neighbors) {
  netsim::Simulator sim;
  bgpsim::MessageLevelSim msim{
      w.internet().graph, w.deployment->cloud_as(), sim, {.seed = seed}};
  msim.Announce(neighbors);
  sim.Run(1e6);
  if (!sim.Empty()) return {"bgp: initial announcement never quiesced"};

  faultsim::PlanSpec ps;
  ps.neighbors = neighbors.size();
  const faultsim::FaultPlan plan = faultsim::GenerateRandomPlan(seed, ps);
  faultsim::ScheduleBgpFaults(plan, neighbors, msim, sim);
  sim.Run(sim.Now() + 1e6);
  if (!sim.Empty()) return {"bgp: replay never quiesced"};
  auto mismatches = faultsim::CheckBgpConvergence(
      w.internet().graph, w.deployment->cloud_as(), neighbors, msim);
  for (std::string& m : mismatches) {
    m += "  [" + faultsim::ToString(plan) + "]";
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t first_seed = 1;
  std::uint64_t last_seed = 50;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      last_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      first_seed = last_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "usage: chaos_runner [--seeds N | --seed S]\n";
      return 64;
    }
  }

  obs::Metrics().ResetValues();
  obs::RunReport report{"chaos_runner"};
  report.SetSeed(first_seed);
  report.AddConfig("first_seed", static_cast<double>(first_seed));
  report.AddConfig("last_seed", static_cast<double>(last_seed));

  std::vector<double> detections_ms;
  std::size_t total_checks = 0;
  std::size_t total_events = 0;
  std::size_t violating_seeds = 0;
  std::size_t violations = 0;
  {
    const obs::RunReport::ScopedPhase phase{report, "tm_sweep"};
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      const SeedResult r = RunTmSeed(seed);
      total_checks += r.checks;
      total_events += r.events;
      for (const double d : r.detection_latencies_s) {
        detections_ms.push_back(d * 1000.0);
      }
      if (!r.violations.empty()) {
        ++violating_seeds;
        violations += r.violations.size();
        for (const auto& v : r.violations) {
          std::cout << "VIOLATION seed=" << seed << ": " << v << "\n";
        }
      }
    }
  }

  // Chaos under load: every 5th seed re-runs its world and plan with the
  // workload engine admitting a deterministic flow trace through the
  // capacity-aware policy while the faults play out. Checks the same four
  // invariants plus the policy contract (zero down-picks) and liveness
  // (the workload actually started flows).
  std::size_t load_seeds = 0;
  std::size_t load_flows = 0;
  std::size_t load_trace_events = 0;
  std::size_t load_violations = 0;
  std::size_t load_violating_seeds = 0;
  {
    const obs::RunReport::ScopedPhase phase{report, "load_sweep"};
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      if (last_seed != first_seed && seed % 5 != 0) continue;
      ++load_seeds;
      const workload::ChaosLoadResult r = workload::RunChaosUnderLoad(seed);
      load_flows += r.load_stats.started;
      load_trace_events += r.trace_events;
      total_checks += r.invariants.checks;
      std::vector<std::string> all = r.invariants.violations;
      all.insert(all.end(), r.load_violations.begin(),
                 r.load_violations.end());
      if (!all.empty()) {
        ++load_violating_seeds;
        load_violations += all.size();
        for (const auto& v : all) {
          std::cout << "VIOLATION load seed=" << seed << ": " << v << "\n";
        }
      }
    }
  }

  // BGP replay on every 10th seed (session-level sims are ~100x costlier
  // than TM scenarios; sampling keeps the default sweep under a minute).
  std::size_t bgp_seeds = 0;
  std::size_t bgp_violations = 0;
  {
    const obs::RunReport::ScopedPhase phase{report, "bgp_replay"};
    const bench::BenchWorld w = bench::MakeBenchWorld(7, 200, 6);
    std::vector<util::AsId> neighbors;
    for (const auto& sess : w.deployment->peerings()) {
      if (std::find(neighbors.begin(), neighbors.end(), sess.peer) ==
          neighbors.end()) {
        neighbors.push_back(sess.peer);
      }
    }
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      if (last_seed != first_seed && seed % 10 != 0) continue;
      ++bgp_seeds;
      const auto mismatches = RunBgpSeed(seed, w, neighbors);
      bgp_violations += mismatches.size();
      for (const auto& m : mismatches) {
        std::cout << "VIOLATION seed=" << seed << ": " << m << "\n";
      }
    }
  }

  const std::size_t plans = last_seed - first_seed + 1;
  std::cout << "chaos_runner: " << plans << " plan(s), " << total_events
            << " fault events, " << total_checks << " invariant checks, "
            << violations << " TM violation(s), " << bgp_violations
            << " BGP violation(s) over " << bgp_seeds << " replay(s).\n";
  std::cout << "chaos under load: " << load_seeds << " plan(s), "
            << load_trace_events << " trace events, " << load_flows
            << " workload flows, " << load_violations << " violation(s).\n";
  if (!detections_ms.empty()) {
    std::cout << "detection latency over " << detections_ms.size()
              << " bounded onsets: median "
              << util::Table::Num(util::Median(detections_ms), 1)
              << " ms, p95 "
              << util::Table::Num(util::Percentile(detections_ms, 95.0), 1)
              << " ms (cf. Fig. 10: ~1.3 RTT of the dead path).\n";
  }

  report.AddValue("plans", static_cast<double>(plans));
  report.AddValue("fault_events", static_cast<double>(total_events));
  report.AddValue("invariant_checks", static_cast<double>(total_checks));
  report.AddValue("tm_violations", static_cast<double>(violations));
  report.AddValue("bgp_replays", static_cast<double>(bgp_seeds));
  report.AddValue("bgp_violations", static_cast<double>(bgp_violations));
  report.AddValue("load_plans", static_cast<double>(load_seeds));
  report.AddValue("load_trace_events",
                  static_cast<double>(load_trace_events));
  report.AddValue("load_flows", static_cast<double>(load_flows));
  report.AddValue("load_violations", static_cast<double>(load_violations));
  report.AddValue("detections", static_cast<double>(detections_ms.size()));
  if (!detections_ms.empty()) {
    report.AddValue("median_detection_ms", util::Median(detections_ms));
    report.AddValue("p95_detection_ms",
                    util::Percentile(detections_ms, 95.0));
  }
  report.AttachMetrics();
  report.Write(bench::ReportPath("chaos_runner"));

  return static_cast<int>(violating_seeds + load_violating_seeds +
                          (bgp_violations > 0 ? 1 : 0));
}
