// Chaos runner: sweep random fault plans and check the §5.2.3 invariants.
//
// For each seed: generate a random TM world and a random FaultPlan, run the
// plan-driven scenario engine, and verify the four machine-checkable
// invariants (flow pinning, detection latency <= probe_interval + 1.3 RTT,
// no silent blackholing, reconvergence after faults clear). A subset of
// seeds re-runs under load: the workload engine drives a deterministic flow
// trace through the capacity-aware policy while the same faults play out
// (same four invariants, plus the policy contract). Another subset replays
// the plan's BGP events through the message-level simulation and checks
// convergence back to the static Gao–Rexford fixpoint.
//
// Everything is a pure function of the seeds: no wall-clock, fixed-order
// iteration, so `chaos_runner --seed S` is a one-line repro for any
// violating plan and its report is byte-identical across reruns (after
// obs::StripVolatile removes wall-ms noise). Exit status is the number of
// violating seeds (0 = all invariants held).
//
// The --under_load mode is the detection-latency SLO harness: each seed runs
// its world twice — idle (two scripted flows) and loaded (the workload
// engine keeping a full flow table through the capacity-aware policy) — and
// the runner aggregates detection latency in RTTs of the dead path (the
// paper's unit; §5.2.3 quotes ~1.3 RTT). The exit status asserts the SLO
// (loaded p99 <= --slo_p99_rtts, default 8) on top of the invariant checks,
// and the run report carries a painter.timeseries.v1 block from the first
// loaded seed that is byte-identical across reruns and --threads 1/2/4
// (after obs::StripVolatile). perf_check.sh gates this report against a
// committed baseline.
//
// Usage:
//   chaos_runner               # seeds 1..50
//   chaos_runner --seeds 200   # seeds 1..200
//   chaos_runner --seed 17     # just seed 17 (repro mode)
//   chaos_runner --under_load [--seeds N] [--threads T] [--slo_p99_rtts X]
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bgpsim/session_sim.h"
#include "faultsim/bgp_replay.h"
#include "faultsim/fault_plan.h"
#include "faultsim/invariants.h"
#include "faultsim/scenario.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/chaos_load.h"

namespace {

using namespace painter;

faultsim::FaultPlan PlanForSeed(std::uint64_t seed,
                                const faultsim::FaultScenarioSpec& spec) {
  faultsim::PlanSpec ps;
  ps.tunnels = spec.tunnels.size();
  ps.pops = spec.pop_names.size();
  // Faults must clear well before the end of the run so the reconvergence
  // invariant is checkable: latest onset 60 + max duration 15 + settle 5
  // < run_for 90.
  ps.latest_s = 60.0;
  return faultsim::GenerateRandomPlan(seed, ps);
}

struct SeedResult {
  std::uint64_t seed = 0;
  std::size_t events = 0;
  std::size_t checks = 0;
  std::size_t failovers = 0;
  std::vector<std::string> violations;
  std::vector<double> detection_latencies_s;
  std::vector<faultsim::InvariantReport::Detection> detections;
};

SeedResult RunTmSeed(std::uint64_t seed) {
  const faultsim::FaultScenarioSpec spec = faultsim::GenerateRandomSpec(seed);
  const faultsim::FaultPlan plan = PlanForSeed(seed, spec);
  const faultsim::FaultScenarioResult result =
      faultsim::RunFaultScenario(spec, plan);
  const faultsim::InvariantReport rep =
      faultsim::CheckTmInvariants(spec, plan, result);
  return SeedResult{.seed = seed,
                    .events = plan.events.size(),
                    .checks = rep.checks,
                    .failovers = result.failovers.size(),
                    .violations = rep.violations,
                    .detection_latencies_s = rep.detection_latencies_s,
                    .detections = rep.detections};
}

// Detection latencies expressed in RTTs of the path that died.
std::vector<double> InRtts(
    const std::vector<faultsim::InvariantReport::Detection>& detections) {
  std::vector<double> rtts;
  rtts.reserve(detections.size());
  for (const auto& d : detections) {
    if (d.rtt_s > 0.0) rtts.push_back(d.latency_s / d.rtt_s);
  }
  return rtts;
}

// The --under_load SLO harness: idle vs loaded detection latency per seed,
// aggregated in RTTs. Returns the process exit status.
int RunUnderLoadMode(std::uint64_t first_seed, std::uint64_t last_seed,
                     std::size_t threads, double slo_p99_rtts) {
  obs::Metrics().ResetValues();
  obs::RunReport report{"chaos_under_load"};
  report.SetSeed(first_seed);
  report.AddConfig("first_seed", static_cast<double>(first_seed));
  report.AddConfig("last_seed", static_cast<double>(last_seed));
  report.AddConfig("slo_p99_rtts", slo_p99_rtts);

  // One streaming-telemetry registry, attached to the first loaded seed only
  // (every seed would multiply the report by the sweep width). Samplers
  // reference run-local objects, so the registry is only sampled during that
  // run and only exported afterwards.
  obs::TimeseriesRegistry timeseries{{.period_s = 1.0}};

  std::vector<double> idle_rtts;
  std::vector<double> loaded_rtts;
  std::size_t violating_seeds = 0;
  std::size_t loaded_flows = 0;
  double max_utilization = 0.0;
  {
    const obs::RunReport::ScopedPhase phase{report, "idle_sweep"};
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      const SeedResult r = RunTmSeed(seed);
      const std::vector<double> rtts = InRtts(r.detections);
      idle_rtts.insert(idle_rtts.end(), rtts.begin(), rtts.end());
      if (!r.violations.empty()) {
        ++violating_seeds;
        for (const auto& v : r.violations) {
          std::cout << "VIOLATION idle seed=" << seed << ": " << v << "\n";
        }
      }
    }
  }
  {
    const obs::RunReport::ScopedPhase phase{report, "loaded_sweep"};
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      workload::ChaosLoadConfig cfg;
      cfg.num_threads = threads;
      if (seed == first_seed) cfg.timeseries = &timeseries;
      const workload::ChaosLoadResult r =
          workload::RunChaosUnderLoad(seed, {}, cfg);
      const std::vector<double> rtts = InRtts(r.invariants.detections);
      loaded_rtts.insert(loaded_rtts.end(), rtts.begin(), rtts.end());
      loaded_flows += r.load_stats.started;
      max_utilization = std::max(max_utilization, r.load_stats.max_utilization);
      std::vector<std::string> all = r.invariants.violations;
      all.insert(all.end(), r.load_violations.begin(), r.load_violations.end());
      if (!all.empty()) {
        ++violating_seeds;
        for (const auto& v : all) {
          std::cout << "VIOLATION loaded seed=" << seed << ": " << v << "\n";
        }
      }
    }
  }

  const auto summarize = [&](const char* key, std::vector<double>& rtts) {
    report.AddValue(std::string{key} + "_detections",
                    static_cast<double>(rtts.size()));
    if (rtts.empty()) return 0.0;
    const double p50 = util::Percentile(rtts, 50.0);
    const double p99 = util::Percentile(rtts, 99.0);
    report.AddValue(std::string{key} + "_p50_rtts", p50);
    report.AddValue(std::string{key} + "_p99_rtts", p99);
    std::cout << key << " detection latency over " << rtts.size()
              << " bounded onsets: p50 " << util::Table::Num(p50, 2)
              << " RTTs, p99 " << util::Table::Num(p99, 2)
              << " RTTs (cf. Fig. 10: ~1.3 RTT of the dead path).\n";
    return p99;
  };
  summarize("idle", idle_rtts);
  const double loaded_p99 = summarize("loaded", loaded_rtts);

  // The SLO proper: under a full flow table, tail detection must stay within
  // the configured bound, and the sweep must actually produce detections to
  // measure (an empty histogram proves nothing).
  std::size_t slo_breaches = 0;
  if (loaded_rtts.empty()) {
    std::cout << "SLO BREACH: loaded sweep produced zero bounded detections\n";
    ++slo_breaches;
  } else if (loaded_p99 > slo_p99_rtts) {
    std::cout << "SLO BREACH: loaded p99 " << util::Table::Num(loaded_p99, 2)
              << " RTTs > bound " << util::Table::Num(slo_p99_rtts, 2)
              << " RTTs\n";
    ++slo_breaches;
  }

  std::cout << "chaos_under_load: " << (last_seed - first_seed + 1)
            << " seed(s) x {idle, loaded}, " << loaded_flows
            << " workload flows, " << violating_seeds << " violating seed(s), "
            << slo_breaches << " SLO breach(es).\n";

  report.AddValue("loaded_flows", static_cast<double>(loaded_flows));
  report.AddValue("max_utilization", max_utilization);
  report.AddValue("violating_seeds", static_cast<double>(violating_seeds));
  report.AddValue("slo_breaches", static_cast<double>(slo_breaches));
  report.AttachTimeseries(timeseries);
  report.AttachMetrics();
  report.Write(bench::ReportPath("chaos_under_load"));
  return static_cast<int>(violating_seeds + slo_breaches);
}

// BGP-layer replay on a shared bench world: schedule the seed's session
// events against the message-level sim and demand reconvergence to the
// static fixpoint. Returns violation messages.
std::vector<std::string> RunBgpSeed(std::uint64_t seed,
                                    const bench::BenchWorld& w,
                                    const std::vector<util::AsId>& neighbors) {
  netsim::Simulator sim;
  bgpsim::MessageLevelSim msim{
      w.internet().graph, w.deployment->cloud_as(), sim, {.seed = seed}};
  msim.Announce(neighbors);
  sim.Run(1e6);
  if (!sim.Empty()) return {"bgp: initial announcement never quiesced"};

  faultsim::PlanSpec ps;
  ps.neighbors = neighbors.size();
  const faultsim::FaultPlan plan = faultsim::GenerateRandomPlan(seed, ps);
  faultsim::ScheduleBgpFaults(plan, neighbors, msim, sim);
  sim.Run(sim.Now() + 1e6);
  if (!sim.Empty()) return {"bgp: replay never quiesced"};
  auto mismatches = faultsim::CheckBgpConvergence(
      w.internet().graph, w.deployment->cloud_as(), neighbors, msim);
  for (std::string& m : mismatches) {
    m += "  [" + faultsim::ToString(plan) + "]";
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t first_seed = 1;
  std::uint64_t last_seed = 50;
  bool under_load = false;
  std::size_t threads = 1;
  double slo_p99_rtts = 8.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      last_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      first_seed = last_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--under_load") == 0) {
      under_load = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--slo_p99_rtts") == 0 && i + 1 < argc) {
      slo_p99_rtts = std::strtod(argv[++i], nullptr);
    } else {
      std::cerr << "usage: chaos_runner [--seeds N | --seed S] [--under_load] "
                   "[--threads T] [--slo_p99_rtts X]\n";
      return 64;
    }
  }
  if (under_load) {
    return RunUnderLoadMode(first_seed, last_seed, threads, slo_p99_rtts);
  }

  obs::Metrics().ResetValues();
  obs::RunReport report{"chaos_runner"};
  report.SetSeed(first_seed);
  report.AddConfig("first_seed", static_cast<double>(first_seed));
  report.AddConfig("last_seed", static_cast<double>(last_seed));

  std::vector<double> detections_ms;
  std::size_t total_checks = 0;
  std::size_t total_events = 0;
  std::size_t violating_seeds = 0;
  std::size_t violations = 0;
  {
    const obs::RunReport::ScopedPhase phase{report, "tm_sweep"};
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      const SeedResult r = RunTmSeed(seed);
      total_checks += r.checks;
      total_events += r.events;
      for (const double d : r.detection_latencies_s) {
        detections_ms.push_back(d * 1000.0);
      }
      if (!r.violations.empty()) {
        ++violating_seeds;
        violations += r.violations.size();
        for (const auto& v : r.violations) {
          std::cout << "VIOLATION seed=" << seed << ": " << v << "\n";
        }
      }
    }
  }

  // Chaos under load: every 5th seed re-runs its world and plan with the
  // workload engine admitting a deterministic flow trace through the
  // capacity-aware policy while the faults play out. Checks the same four
  // invariants plus the policy contract (zero down-picks) and liveness
  // (the workload actually started flows).
  std::size_t load_seeds = 0;
  std::size_t load_flows = 0;
  std::size_t load_trace_events = 0;
  std::size_t load_violations = 0;
  std::size_t load_violating_seeds = 0;
  {
    const obs::RunReport::ScopedPhase phase{report, "load_sweep"};
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      if (last_seed != first_seed && seed % 5 != 0) continue;
      ++load_seeds;
      const workload::ChaosLoadResult r = workload::RunChaosUnderLoad(seed);
      load_flows += r.load_stats.started;
      load_trace_events += r.trace_events;
      total_checks += r.invariants.checks;
      std::vector<std::string> all = r.invariants.violations;
      all.insert(all.end(), r.load_violations.begin(),
                 r.load_violations.end());
      if (!all.empty()) {
        ++load_violating_seeds;
        load_violations += all.size();
        for (const auto& v : all) {
          std::cout << "VIOLATION load seed=" << seed << ": " << v << "\n";
        }
      }
    }
  }

  // BGP replay on every 10th seed (session-level sims are ~100x costlier
  // than TM scenarios; sampling keeps the default sweep under a minute).
  std::size_t bgp_seeds = 0;
  std::size_t bgp_violations = 0;
  {
    const obs::RunReport::ScopedPhase phase{report, "bgp_replay"};
    const bench::BenchWorld w = bench::MakeBenchWorld(7, 200, 6);
    std::vector<util::AsId> neighbors;
    for (const auto& sess : w.deployment->peerings()) {
      if (std::find(neighbors.begin(), neighbors.end(), sess.peer) ==
          neighbors.end()) {
        neighbors.push_back(sess.peer);
      }
    }
    for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      if (last_seed != first_seed && seed % 10 != 0) continue;
      ++bgp_seeds;
      const auto mismatches = RunBgpSeed(seed, w, neighbors);
      bgp_violations += mismatches.size();
      for (const auto& m : mismatches) {
        std::cout << "VIOLATION seed=" << seed << ": " << m << "\n";
      }
    }
  }

  const std::size_t plans = last_seed - first_seed + 1;
  std::cout << "chaos_runner: " << plans << " plan(s), " << total_events
            << " fault events, " << total_checks << " invariant checks, "
            << violations << " TM violation(s), " << bgp_violations
            << " BGP violation(s) over " << bgp_seeds << " replay(s).\n";
  std::cout << "chaos under load: " << load_seeds << " plan(s), "
            << load_trace_events << " trace events, " << load_flows
            << " workload flows, " << load_violations << " violation(s).\n";
  if (!detections_ms.empty()) {
    std::cout << "detection latency over " << detections_ms.size()
              << " bounded onsets: median "
              << util::Table::Num(util::Median(detections_ms), 1)
              << " ms, p95 "
              << util::Table::Num(util::Percentile(detections_ms, 95.0), 1)
              << " ms (cf. Fig. 10: ~1.3 RTT of the dead path).\n";
  }

  report.AddValue("plans", static_cast<double>(plans));
  report.AddValue("fault_events", static_cast<double>(total_events));
  report.AddValue("invariant_checks", static_cast<double>(total_checks));
  report.AddValue("tm_violations", static_cast<double>(violations));
  report.AddValue("bgp_replays", static_cast<double>(bgp_seeds));
  report.AddValue("bgp_violations", static_cast<double>(bgp_violations));
  report.AddValue("load_plans", static_cast<double>(load_seeds));
  report.AddValue("load_trace_events",
                  static_cast<double>(load_trace_events));
  report.AddValue("load_flows", static_cast<double>(load_flows));
  report.AddValue("load_violations", static_cast<double>(load_violations));
  report.AddValue("detections", static_cast<double>(detections_ms.size()));
  if (!detections_ms.empty()) {
    report.AddValue("median_detection_ms", util::Median(detections_ms));
    report.AddValue("p95_detection_ms",
                    util::Percentile(detections_ms, 95.0));
  }
  report.AttachMetrics();
  report.Write(bench::ReportPath("chaos_runner"));

  return static_cast<int>(violating_seeds + load_violating_seeds +
                          (bgp_violations > 0 ? 1 : 0));
}
