// Shared world construction for the figure-regeneration benches.
//
// Two standard worlds mirror the paper's two deployments:
//  - AzureScaleWorld: the "simulated Azure" setting — larger deployment,
//    latencies estimated via geolocated targets (Fig. 6a, 9, 11, 12, 14, 15).
//  - PrototypeWorld: the PEERING/Vultr-like prototype — 25 PoPs, latencies
//    measured by actually advertising into the BGP simulation (Fig. 6b, 6c, 7).
//
// Sizes are chosen so every bench finishes in seconds on one core while
// keeping thousands of UGs and hundreds of sessions in play.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>

#include "cloudsim/deployment.h"
#include "cloudsim/ingress.h"
#include "core/problem.h"
#include "measure/geolocation.h"
#include "measure/latency.h"
#include "obs/report.h"
#include "topo/generator.h"

namespace painter::bench {

// Where a bench's JSON run report lands: $PAINTER_REPORT_DIR/BENCH_<name>.json
// when the variable is set, else BENCH_<name>.json in the working directory.
// Schema: painter.bench.v1 (see obs/report.h). Every figure bench and
// micro_orchestrator write one of these so perf and result trajectories can
// be tracked across commits without scraping stdout.
inline std::string ReportPath(const std::string& name) {
  const char* dir = std::getenv("PAINTER_REPORT_DIR");
  std::string path = dir != nullptr ? std::string{dir} + "/" : std::string{};
  path += "BENCH_" + name + ".json";
  return path;
}

// The Internet is heap-allocated because the resolver/oracle hold pointers
// into it; moving a BenchWorld must not relocate it.
struct BenchWorld {
  std::unique_ptr<topo::Internet> internet_ptr;
  std::unique_ptr<cloudsim::Deployment> deployment;
  std::unique_ptr<cloudsim::PolicyCatalog> catalog;
  std::unique_ptr<cloudsim::IngressResolver> resolver;
  std::unique_ptr<measure::LatencyOracle> oracle;

  [[nodiscard]] const topo::Internet& internet() const { return *internet_ptr; }
};

inline BenchWorld MakeBenchWorld(std::uint64_t seed, std::size_t stubs,
                                 std::size_t pops, std::size_t transits = 40,
                                 std::size_t regionals = 120) {
  topo::InternetConfig icfg;
  icfg.seed = seed;
  icfg.tier1_count = 8;
  icfg.transit_count = transits;
  icfg.regional_count = regionals;
  icfg.stub_count = stubs;

  BenchWorld w;
  w.internet_ptr =
      std::make_unique<topo::Internet>(topo::GenerateInternet(icfg));

  cloudsim::DeploymentConfig dcfg;
  dcfg.seed = seed + 1;
  dcfg.pop_count = pops;
  w.deployment = std::make_unique<cloudsim::Deployment>(
      cloudsim::BuildDeployment(*w.internet_ptr, dcfg));
  w.catalog =
      std::make_unique<cloudsim::PolicyCatalog>(*w.internet_ptr, *w.deployment);
  w.resolver =
      std::make_unique<cloudsim::IngressResolver>(*w.internet_ptr, *w.deployment);
  measure::OracleConfig ocfg;
  ocfg.seed = seed + 2;
  w.oracle = std::make_unique<measure::LatencyOracle>(*w.internet_ptr,
                                                      *w.deployment, ocfg);
  return w;
}

// The "simulated Azure" world: broad deployment, many UGs.
inline BenchWorld AzureScaleWorld(std::uint64_t seed = 101) {
  return MakeBenchWorld(seed, /*stubs=*/1200, /*pops=*/20);
}

// The PEERING-prototype world: 25 PoPs like the Vultr deployment.
inline BenchWorld PrototypeWorld(std::uint64_t seed = 202) {
  return MakeBenchWorld(seed, /*stubs=*/800, /*pops=*/25);
}

}  // namespace painter::bench
