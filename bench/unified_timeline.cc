// Unified-timeline bench: one DES clock, every component, workload-weighted
// benefit curves.
//
// Replays a diurnal heavy-tailed workload trace through the TM-Edge while
// advertisement rounds, DNS TTL refreshes, and a fault plan run as events on
// the same netsim::Simulator (src/timeline/unified.h). Each round publishes
// a new configuration version; resolvers pick it up with TTL lag; every
// arriving flow is scored under the version its resolver serves. The output
// is the Fig. 6b/6c benefit re-derived under realized bytes — the
// workload-weighted curve — next to the static per-UG weighted mean the
// closed-form evaluation reports (EXPERIMENTS.md).
//
// Determinism: every non-wall value in the report is a pure function of the
// seed, and `summary_fnv64` fingerprints the full CanonicalSummary — the
// same seed must produce byte-identical stripped reports at any --threads
// value and across reruns (tests/timeline_test.cc and tools/ci_check.sh
// enforce this).
//
// Usage:
//   unified_timeline                     # full run (seed 7, 1 thread)
//   unified_timeline --seed 11 --threads 4
//   unified_timeline --smoke             # small world + short trace
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "timeline/unified.h"
#include "util/table.h"

namespace {

using namespace painter;

std::uint64_t Fnv64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  std::size_t threads = 1;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: unified_timeline [--seed S] [--threads N] "
                   "[--smoke]\n";
      return 64;
    }
  }

  util::PrintFigureHeader(
      std::cout, "Unified timeline",
      "Advertisement rounds, DNS TTL refresh, fault plan, and workload "
      "replay interleaved on one DES clock; benefit weighted by realized "
      "bytes.");

  obs::Metrics().ResetValues();
  obs::RunReport report{"unified_timeline"};
  report.SetSeed(seed);
  // Deliberately NOT recording --threads: results are thread-count-invariant
  // and the determinism gate diffs stripped reports across thread counts.
  report.AddConfig("smoke", smoke ? 1.0 : 0.0);

  timeline::UnifiedTimelineConfig cfg;
  cfg.seed = seed;
  cfg.num_threads = threads;
  if (smoke) {
    cfg.stubs = 80;
    cfg.pops = 5;
    cfg.transits = 10;
    cfg.regionals = 20;
    cfg.trace_duration_s = 180.0;
    cfg.mean_flows_per_s = 20.0;
    cfg.round_start_s = 10.0;
    cfg.round_interval_s = 60.0;
    cfg.max_rounds = 2;
    cfg.ttl_s = 30.0;
    cfg.curve_bucket_s = 30.0;
  }
  report.AddConfig("trace_duration_s", cfg.trace_duration_s);
  report.AddConfig("max_rounds", static_cast<double>(cfg.max_rounds));
  report.AddConfig("ttl_s", cfg.ttl_s);

  // Streaming telemetry for the whole run: occupancy, per-PoP utilization,
  // TTL staleness, per-round predicted/realized — attached to the report as
  // a painter.timeseries.v1 block (deterministic, thread-count-invariant).
  obs::TimeseriesRegistry timeseries{{.period_s = smoke ? 5.0 : 10.0}};
  cfg.timeseries = &timeseries;

  timeline::UnifiedTimelineResult result;
  {
    const obs::RunReport::ScopedPhase phase{report, "run"};
    result = timeline::RunUnifiedTimeline(cfg);
  }
  report.AttachTimeseries(timeseries);

  std::cout << "Advertisement rounds (on the shared clock):\n";
  util::Table rounds{{"round", "t (s)", "predicted (ms)", "realized (ms)",
                      "realized+ (ms)", "prefixes"}};
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    rounds.AddRow({std::to_string(i), util::Table::Num(r.t_s, 1),
                   util::Table::Num(r.predicted_mean_ms, 2),
                   util::Table::Num(r.realized_ms, 2),
                   util::Table::Num(r.realized_positive_ms, 2),
                   std::to_string(r.prefixes_used)});
  }
  rounds.Print(std::cout);

  std::cout << "\nWorkload-weighted benefit curve:\n";
  util::Table curve{{"t (s)", "GB", "benefit (ms)", "stale bytes %"}};
  for (const auto& c : result.curve) {
    const double stale_pct =
        c.bytes > 0.0 ? 100.0 * c.stale_bytes / c.bytes : 0.0;
    curve.AddRow({util::Table::Num(c.t_s, 0),
                  util::Table::Num(c.bytes / 1e9, 2),
                  util::Table::Num(c.benefit_ms, 2),
                  util::Table::Num(stale_pct, 1)});
  }
  curve.Print(std::cout);

  std::cout << "\nWorkload-weighted mean benefit: "
            << util::Table::Num(result.weighted_benefit_ms, 2)
            << " ms vs static per-UG mean "
            << util::Table::Num(result.static_mean_benefit_ms, 2)
            << " ms; stale-byte fraction "
            << util::Table::Num(100.0 * result.stale_byte_frac, 1) << "%\n";

  const std::string summary = timeline::CanonicalSummary(result);
  const std::uint64_t fingerprint = Fnv64(summary);

  report.AddValue("rounds", static_cast<double>(result.rounds.size()));
  report.AddValue("weighted_benefit_ms", result.weighted_benefit_ms);
  report.AddValue("static_mean_benefit_ms", result.static_mean_benefit_ms);
  report.AddValue("stale_byte_frac", result.stale_byte_frac);
  report.AddValue("workload.arrivals",
                  static_cast<double>(result.workload.arrivals));
  report.AddValue("workload.completed",
                  static_cast<double>(result.workload.completed));
  report.AddValue("workload.down_picks",
                  static_cast<double>(result.workload.down_picks));
  report.AddValue("workload.max_tick_skew_us",
                  static_cast<double>(result.workload.max_tick_skew_us));
  report.AddValue("ttl.refreshes", static_cast<double>(result.ttl.refreshes));
  report.AddValue("ttl.version_updates",
                  static_cast<double>(result.ttl.version_updates));
  report.AddValue("executed_events",
                  static_cast<double>(result.executed_events));
  report.AddValue("summary_fnv64_hi",
                  static_cast<double>(fingerprint >> 32));
  report.AddValue("summary_fnv64_lo",
                  static_cast<double>(fingerprint & 0xFFFFFFFFull));

  const std::string path = bench::ReportPath("unified_timeline");
  report.Write(path);
  std::cout << "\nReport: " << path << "\n";

  // Gates: >= 2 advertisement configurations actually interleaved with the
  // trace, tick grid exact, and the workload must have really run.
  const bool ok = result.rounds.size() >= 2 &&
                  result.workload.max_tick_skew_us == 0 &&
                  result.workload.arrivals > 0 && result.ttl.refreshes > 0;
  if (!ok) {
    std::cerr << "unified_timeline: acceptance gates failed\n";
    return 1;
  }
  return 0;
}
