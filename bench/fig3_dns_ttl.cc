// Fig. 3: of all traffic sent to Cloud A, ~80% is sent at least 5 minutes
// after DNS TTL expiration; ~20% of Cloud B/C traffic flows at least a
// minute after expiry. This is the motivation for per-flow steering: DNS
// cannot redirect traffic that ignores it (§2.2, Appendix A).
#include <iostream>

#include "dnssim/ttl_study.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 3",
      "Bytes that have yet to be sent at each offset from DNS record "
      "expiration (synthetic traces regenerating the Columbia residential "
      "capture's flow/TTL structure).");

  util::Rng rng{2022};
  const auto profiles = dnssim::DefaultCloudProfiles();

  const std::vector<double> offsets = {-60.0, -1.0, 0.0,    1.0,
                                       60.0,  300.0, 3600.0};
  const std::vector<std::string> labels = {"-1 min", "-1 s",  "0 s",  "+1 s",
                                           "+1 min", "+5 min", "+1 hr"};

  std::vector<std::string> headers{"cloud", "TTL (s)"};
  for (const auto& l : labels) headers.push_back(l);
  util::Table table{headers};

  for (const auto& profile : profiles) {
    const auto result =
        dnssim::RunTtlStudy(profile, /*sessions=*/400,
                            /*session_seconds=*/3600.0, rng);
    std::vector<std::string> row{profile.name,
                                 util::Table::Num(profile.ttl_seconds, 0)};
    for (const double x : offsets) {
      row.push_back(util::Table::Pct(dnssim::FractionAtOrAfter(result, x)));
    }
    table.AddRow(std::move(row));

    if (profile.name == "Cloud A") {
      std::cout << "Cloud A stale-byte mechanisms: live flows past expiry "
                << util::Table::Pct(result.live_past_expiry_bytes /
                                    result.total_bytes)
                << " of bytes, stale new flows "
                << util::Table::Pct(result.stale_new_flow_bytes /
                                    result.total_bytes)
                << " (paper observed roughly a 2:1 ratio).\n\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: Cloud A ~80% of bytes >= 5 min after expiry; "
               "Clouds B/C ~20% >= 1 min after expiry.\n";
  return 0;
}
