// Fig. 15 (Appendix E.2): scaling and the D_reuse knob.
// (a) the prefixes PAINTER needs for 90/95/99% of its saturated benefit grow
//     roughly linearly with deployment size;
// (b) raising the minimum reuse distance D_reuse lowers benefit uncertainty
//     (fewer risky reuse assumptions) but costs more prefixes.
#include <iostream>

#include "bench/strategy_eval.h"
#include "util/table.h"

namespace {

using namespace painter;

struct Solved {
  core::AdvertisementConfig config;
  core::ProblemInstance instance;
};

std::size_t PrefixesForPct(const core::ProblemInstance& instance,
                           const core::AdvertisementConfig& full,
                           double pct, double d_reuse) {
  const core::RoutingModel model{instance.UgCount()};
  const core::ExpectationParams params{.d_reuse_km = d_reuse};
  const double saturated =
      core::PredictBenefit(instance, model, full, params).mean_ms;
  for (std::size_t b = 1; b <= full.PrefixCount(); ++b) {
    const double v =
        core::PredictBenefit(instance, model, core::Truncate(full, b), params)
            .mean_ms;
    if (v >= pct * saturated) return b;
  }
  return full.PrefixCount();
}

}  // namespace

int main() {
  util::PrintFigureHeader(
      std::cout, "Figure 15a",
      "Prefixes required for 90/95/99% of saturated benefit vs deployment "
      "size.");

  // The paper subsamples its deployment's peers (x-axis: % of peers) and
  // reports the prefixes needed for 90/95/99% of the achievable benefit at
  // that subsample — more exposed peers means a longer tail of distinct UG
  // needs, so required prefixes grow with deployment size.
  auto w = bench::PrototypeWorld(404);
  util::Rng rng{17};
  const auto full_instance = core::BuildMeasuredInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, rng);

  auto filter_instance = [&](double keep_frac) {
    core::ProblemInstance inst = full_instance;
    util::Rng pick{909};
    std::vector<bool> keep(inst.peering_count, false);
    for (std::size_t g = 0; g < inst.peering_count; ++g) {
      keep[g] = pick.Uniform01() < keep_frac;
    }
    for (auto& opts : inst.options) {
      std::erase_if(opts, [&](const core::IngressOption& o) {
        return !keep[o.peering.value()];
      });
    }
    for (std::size_t g = 0; g < inst.peering_count; ++g) {
      if (!keep[g]) inst.ugs_with_peering[g].clear();
    }
    return inst;
  };

  util::Table scale{{"peers (%)", "sessions", "90% benefit", "95%", "99%"}};
  for (const double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto inst = filter_instance(frac);
    std::size_t sessions = 0;
    for (const auto& list : inst.ugs_with_peering) {
      sessions += list.empty() ? 0 : 1;
    }
    const auto full = bench::SolvePainter(inst, inst.peering_count);
    scale.AddRow({util::Table::Num(100.0 * frac, 0),
                  std::to_string(sessions),
                  std::to_string(PrefixesForPct(inst, full, 0.90, 3000)),
                  std::to_string(PrefixesForPct(inst, full, 0.95, 3000)),
                  std::to_string(PrefixesForPct(inst, full, 0.99, 3000))});
  }
  scale.Print(std::cout);
  std::cout << "\nPaper shape: required prefixes grow ~linearly with "
               "deployment size (so orchestrator overhead tracks cloud "
               "growth).\n";

  util::PrintFigureHeader(
      std::cout, "Figure 15b",
      "D_reuse sweep: prefixes for 99% benefit vs benefit uncertainty.");

  const auto& instance = full_instance;  // reuse the world from 15a
  util::Table dr{{"D_reuse (km)", "prefixes for 99%", "announcements",
                  "uncertainty at 99% (ms)"}};
  for (const double d_reuse : {500.0, 1000.0, 1500.0, 2000.0, 2500.0,
                               3000.0}) {
    const auto full = bench::SolvePainter(
        instance, w.deployment->peerings().size(), d_reuse);
    const std::size_t b99 = PrefixesForPct(instance, full, 0.99, d_reuse);
    const auto cfg = core::Truncate(full, b99);
    const core::RoutingModel model{instance.UgCount()};
    const auto pred = core::PredictBenefit(instance, model, cfg,
                                           {.d_reuse_km = d_reuse});
    // The paper quantifies uncertainty as upper minus estimated benefit at
    // the 99% point (App. E.2).
    dr.AddRow({util::Table::Num(d_reuse, 0), std::to_string(b99),
               std::to_string(cfg.AnnouncementCount()),
               util::Table::Num(pred.upper_ms - pred.estimated_ms, 2)});
  }
  dr.Print(std::cout);
  std::cout << "\nPaper shape: larger D_reuse -> less uncertainty but more "
               "prefixes; the paper uses 3,000 km as the tradeoff point.\n";
  return 0;
}
