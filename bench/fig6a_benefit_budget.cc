// Fig. 6a: estimated percent of total possible benefit vs prefix budget on
// the simulated-Azure deployment, for PAINTER and the baseline advertisement
// strategies. Latencies come from the Appendix-B geolocation heuristic at
// GP = 450 km, as in the paper; PAINTER should dominate every baseline at
// every budget, with ~3x fewer prefixes than One-per-Peering at 75% benefit.
#include <iostream>

#include "bench/strategy_eval.h"
#include "core/problem.h"
#include "measure/geolocation.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 6a",
      "Estimated % of possible benefit vs prefix budget (simulated Azure, "
      "GP = 450 km latency estimation).");

  auto w = bench::AzureScaleWorld();
  const measure::GeoTargetCatalog targets{*w.oracle, {}};
  util::Rng rng{11};
  const auto instance = core::BuildEstimatedInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle,
      targets, rng, 450.0);
  const double possible = instance.TotalPossibleBenefitMs();
  std::cout << "Deployment: " << w.deployment->pops().size() << " PoPs, "
            << w.deployment->peerings().size() << " sessions, "
            << instance.UgCount() << " UGs. Total possible benefit "
            << util::Table::Num(possible) << " ms (weighted avg).\n\n";

  const double d_reuse = 3000.0;
  const auto painter_full =
      bench::SolvePainter(instance, w.deployment->peerings().size(), d_reuse);
  std::cout << "PAINTER saturates at " << painter_full.NonEmptyPrefixCount()
            << " prefixes (" << painter_full.AnnouncementCount()
            << " announcements).\n\n";

  const auto budgets = bench::BudgetPoints(w.deployment->peerings().size());
  const auto strategies =
      bench::PaperStrategies(w, instance, painter_full, d_reuse);
  const auto curves = bench::EvaluateModelCurves(
      instance, strategies, budgets, {.d_reuse_km = d_reuse});

  std::vector<double> xs;
  for (const std::size_t b : budgets) {
    xs.push_back(100.0 * static_cast<double>(b) /
                 static_cast<double>(w.deployment->peerings().size()));
  }
  std::vector<util::Series> series;
  for (const auto& curve : curves) {
    util::Series s{curve.name, {}};
    for (const auto& pred : curve.predictions) {
      s.ys.push_back(100.0 * pred.estimated_ms / possible);
    }
    series.push_back(std::move(s));
  }
  PrintSweep(std::cout, "budget (% of sessions)", xs, series, 1);

  // Headline: prefixes to reach 75% benefit, PAINTER vs One-per-Peering.
  auto prefixes_for = [&](const bench::NamedStrategy& strategy,
                          double target_pct) -> std::size_t {
    for (std::size_t b = 1; b <= w.deployment->peerings().size(); b += 1) {
      const core::RoutingModel model{instance.UgCount()};
      const auto pred = core::PredictBenefit(instance, model,
                                             strategy.build(b),
                                             {.d_reuse_km = d_reuse});
      if (100.0 * pred.estimated_ms / possible >= target_pct) return b;
      if (b > 8) b += 3;  // coarser search at larger budgets
    }
    return w.deployment->peerings().size();
  };
  const std::size_t painter_75 = prefixes_for(strategies[0], 75.0);
  const std::size_t opg_75 = prefixes_for(strategies[1], 75.0);
  std::cout << "\nPrefixes for 75% benefit: PAINTER " << painter_75
            << ", One-per-Peering " << opg_75 << " ("
            << util::Table::Num(static_cast<double>(opg_75) /
                                    static_cast<double>(painter_75),
                                1)
            << "x; paper reports ~3x savings).\n";
  return 0;
}
