// Fig. 6b: average realized latency improvement (over clients with non-zero
// improvement) vs prefix budget on the PEERING-style prototype — here,
// advertisements actually executed against the BGP simulation, latencies
// measured through the resolved ingresses. PAINTER (after learning) reaches
// ~90%+ of its saturated benefit with ~10x fewer prefixes than
// One-per-Peering.
#include <iostream>

#include "bench/strategy_eval.h"
#include "core/sim_environment.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 6b",
      "Realized mean improvement (positive-improvement UGs) vs prefix "
      "budget, prototype deployment (25 PoPs).");

  auto w = bench::PrototypeWorld();
  util::Rng rng{21};
  const auto instance = core::BuildMeasuredInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, rng);
  std::cout << "Deployment: " << w.deployment->pops().size() << " PoPs, "
            << w.deployment->peerings().size() << " sessions, "
            << instance.UgCount() << " UGs.\n\n";

  // PAINTER runs its advertise/observe/learn loop at each budget point (as
  // the deployed system would); the curve reports the best iteration's
  // realized configuration. The full-budget solve anchors the saturation
  // headline.
  auto solve_painter = [&](std::size_t budget) {
    core::OrchestratorConfig ocfg;
    ocfg.prefix_budget = budget;
    ocfg.max_learning_iterations = 6;
    core::Orchestrator orch{instance, ocfg};
    core::SimEnvironment env{*w.resolver, *w.oracle, util::Rng{31}};
    const auto reports = orch.Learn(env);
    std::size_t best = 0;
    for (std::size_t i = 1; i < reports.size(); ++i) {
      if (reports[i].realized_ms > reports[best].realized_ms) best = i;
    }
    return reports[best].config;
  };
  const auto painter_full = solve_painter(w.deployment->peerings().size());
  std::cout << "PAINTER saturates at " << painter_full.NonEmptyPrefixCount()
            << " prefixes.\n\n";

  core::GroundTruthEvaluator eval{*w.deployment, *w.resolver, *w.oracle};
  // Fig. 6b averages over the clients that can improve at all (the paper saw
  // gains for ~8k of 40k UGs, concentrated in few ingresses).
  const auto benefiting = eval.BenefitingUgs(*w.catalog);
  std::cout << "UGs with any available improvement: " << benefiting.size()
            << " of " << instance.UgCount() << ".\n\n";
  const auto budgets = bench::BudgetPoints(w.deployment->peerings().size());
  const auto strategies = bench::PaperStrategies(w, instance, painter_full,
                                                 3000.0);

  std::vector<double> xs;
  for (const std::size_t b : budgets) {
    xs.push_back(100.0 * static_cast<double>(b) /
                 static_cast<double>(w.deployment->peerings().size()));
  }
  std::vector<util::Series> series;
  for (const auto& strategy : strategies) {
    const bool is_painter = strategy.name == "PAINTER";
    util::Series s{strategy.name, {}};
    for (const std::size_t b : budgets) {
      eval.SetConfig(is_painter ? solve_painter(b) : strategy.build(b));
      s.ys.push_back(eval.MeanImprovementOverUgsMs(benefiting, 0));
    }
    series.push_back(std::move(s));
  }
  PrintSweep(std::cout, "budget (% of sessions)", xs, series, 1);

  // Headline: budget PAINTER needs for 90% of its saturated benefit vs the
  // next-best strategy.
  eval.SetConfig(painter_full);
  const double saturated = eval.MeanImprovementOverUgsMs(benefiting, 0);
  auto budget_for = [&](const bench::NamedStrategy* strategy,
                        double target) -> std::size_t {
    for (std::size_t b = 1; b <= w.deployment->peerings().size();
         b = b < 16 ? b + 1 : b + b / 4) {
      eval.SetConfig(strategy != nullptr ? strategy->build(b)
                                         : solve_painter(b));
      if (eval.MeanImprovementOverUgsMs(benefiting, 0) >= target) return b;
    }
    return w.deployment->peerings().size();
  };
  const std::size_t painter_90 = budget_for(nullptr, 0.9 * saturated);
  const std::size_t opg_90 = budget_for(&strategies[1], 0.9 * saturated);
  std::cout << "\nSaturated PAINTER improvement: "
            << util::Table::Num(saturated, 1) << " ms (paper: ~60 ms).\n";
  std::cout << "Prefixes for 90% of that: PAINTER " << painter_90
            << ", One-per-Peering " << opg_90 << " ("
            << util::Table::Num(
                   static_cast<double>(opg_90) / static_cast<double>(painter_90),
                   1)
            << "x; paper reports ~10x).\n";
  return 0;
}
