// Fig. 12 (Appendix B): the coverage/accuracy tradeoff of the geolocation
// latency-estimation heuristic. (a) traffic-weighted coverage of
// policy-compliant (UG, ingress) pairs vs admitted target uncertainty;
// (b) median |estimated - actual| RTT vs the target's uncertainty bucket.
// The paper picked GP = 450 km: ~80% coverage at ~2 ms median error.
#include <iostream>

#include "bench/bench_common.h"
#include "measure/geolocation.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 12",
      "Geolocation-target coverage (12a) and estimation accuracy (12b) vs "
      "admitted uncertainty.");

  auto w = bench::AzureScaleWorld();
  const measure::GeoTargetCatalog targets{*w.oracle, {}};

  // --- 12a: coverage. Each UG's traffic divides evenly across its
  // policy-compliant ingresses; a pair is covered when the ingress has a
  // target within the uncertainty bound.
  const std::vector<double> bounds = {50,  100, 200, 300, 400,
                                      450, 500, 600, 700};
  util::Series coverage{"% volume covered", {}};
  for (const double bound : bounds) {
    double covered = 0.0;
    double total = 0.0;
    for (const auto& ug : w.deployment->ugs()) {
      const auto compliant = w.catalog->CompliantPeerings(ug.id);
      if (compliant.empty()) continue;
      const double share =
          ug.traffic_weight / static_cast<double>(compliant.size());
      for (const auto pid : compliant) {
        total += share;
        const auto t = targets.TargetFor(pid);
        if (t.has_value() && t->uncertainty_km <= bound) covered += share;
      }
    }
    coverage.ys.push_back(100.0 * covered / total);
  }
  std::cout << "Fig. 12a — coverage vs geolocation uncertainty:\n";
  util::PrintSweep(std::cout, "uncertainty (km)", bounds, {coverage}, 1);

  // --- 12b: accuracy. Bucket targets by uncertainty; median absolute error
  // of the estimate vs oracle truth across sampled UGs.
  std::cout << "\nFig. 12b — median |estimated - actual| RTT by target "
               "uncertainty bucket:\n";
  const std::vector<std::pair<double, double>> buckets = {
      {0, 100}, {100, 200}, {200, 300}, {300, 450}, {450, 700}};
  util::Table acc{{"uncertainty bucket (km)", "median abs error (ms)",
                   "samples"}};
  for (const auto& [lo, hi] : buckets) {
    std::vector<double> errors;
    for (const auto& ug : w.deployment->ugs()) {
      if (ug.id.value() % 7 != 0) continue;  // sample UGs for speed
      for (const auto pid : w.catalog->CompliantPeerings(ug.id)) {
        const auto t = targets.TargetFor(pid);
        if (!t.has_value() || t->uncertainty_km < lo ||
            t->uncertainty_km >= hi) {
          continue;
        }
        const auto est = targets.EstimateRtt(ug.id, pid, hi + 1.0);
        if (!est.has_value()) continue;
        errors.push_back(std::abs(est->count() -
                                  w.oracle->TrueRtt(ug.id, pid).count()));
      }
    }
    acc.AddRow({util::Table::Num(lo, 0) + "-" + util::Table::Num(hi, 0),
                util::Table::Num(util::Median(errors), 2),
                std::to_string(errors.size())});
  }
  acc.Print(std::cout);
  std::cout << "\nPaper anchors: coverage ~80% at 450 km with ~2 ms median "
               "error; knee of the coverage curve near 400 km.\n";
  return 0;
}
