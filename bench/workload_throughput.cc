// Workload-engine throughput: a simulated day of traffic through the TM-Edge.
//
// Three phases, one acceptance gate each:
//   generate   — produce >= 1M flow arrivals from synthetic UG profiles and
//                record the generation rate (flows/s of wall time) plus the
//                trace checksum (the determinism identity).
//   pin_lookup — microbench the sharded flow-pinning store: insert a large
//                working set, then time Find() batches and report p50/p99
//                per-lookup latency.
//   replay     — drive the full trace through a WorkloadEngine pinned to a
//                TM-Edge (8 tunnels, 4 PoPs), once under the classic
//                latency-only policy and once under the capacity-aware
//                policy, and demand >= 100k concurrently pinned flows.
//
// Determinism: every non-wall value in the report is a pure function of the
// seed. Wall-clock results live in "wall_*" keys / phase wall_ms, which
// obs::StripVolatile zeroes, so two runs at the same seed produce
// byte-identical stripped reports. Exit status is 0 only if the scale gates
// (events >= 1M, peak concurrent >= 100k, zero down-picks) hold.
//
// Usage:
//   workload_throughput                # full-scale run (default seed 7)
//   workload_throughput --seed 11
//   workload_throughput --smoke        # tiny trace; gates are skipped
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/engine.h"
#include "workload/flow_store.h"
#include "workload/load.h"
#include "workload/trace.h"

namespace {

using namespace painter;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string Hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

// The bench world: 8 tunnels round-robin over 4 PoPs with fixed one-way
// delays 10..24 ms, so latency-only piles everything onto tunnel 0's PoP
// while the capacity-aware policy spreads.
struct ReplayWorld {
  netsim::Simulator sim;
  std::vector<std::unique_ptr<tm::TmPop>> pops;
  std::unique_ptr<tm::TmEdge> edge;
  std::vector<int> tunnel_pop;
};

constexpr std::size_t kPops = 4;
constexpr std::size_t kTunnels = 8;

std::unique_ptr<ReplayWorld> MakeReplayWorld(std::uint64_t seed) {
  auto w = std::make_unique<ReplayWorld>();
  for (std::size_t p = 0; p < kPops; ++p) {
    w->pops.push_back(std::make_unique<tm::TmPop>(
        w->sim, "PoP-" + std::to_string(p),
        std::vector<netsim::IpAddr>{0x02020202u +
                                    0x01010101u *
                                        static_cast<netsim::IpAddr>(p)}));
  }
  std::vector<tm::TunnelConfig> tunnels;
  for (std::size_t i = 0; i < kTunnels; ++i) {
    const int pop = static_cast<int>(i % kPops);
    tunnels.push_back(tm::TunnelConfig{
        .name = "tunnel-" + std::to_string(i),
        .remote_ip = 0x0a0a0a00u + static_cast<netsim::IpAddr>(i),
        .path = netsim::PathModel::Fixed(0.010 + 0.002 * static_cast<double>(i)),
        .pop = w->pops[static_cast<std::size_t>(pop)].get()});
    w->tunnel_pop.push_back(pop);
  }
  tm::TmEdge::Config ecfg;
  ecfg.seed = seed;
  // The engine samples RTT views once per 100 ms tick; 10 ms probing would
  // only burn DES events without sharpening those views.
  ecfg.probe_interval_s = 0.050;
  w->edge = std::make_unique<tm::TmEdge>(w->sim, ecfg, std::move(tunnels));
  return w;
}

struct ReplayOutcome {
  workload::WorkloadEngine::Stats stats;
  double wall_ms = 0.0;
};

ReplayOutcome Replay(std::uint64_t seed, const workload::Trace& trace,
                     const workload::DestinationPolicy& policy,
                     double pop_capacity_bps) {
  auto w = MakeReplayWorld(seed);
  workload::LoadTracker load{std::vector<double>(kPops, pop_capacity_bps)};
  workload::EngineConfig ecfg;
  // 10 B/s of service per flow: a 2 kB min-size flow stays pinned ~200 s
  // (cap 600 s), which is what holds >= 100k flows concurrently pinned at
  // ~320 arrivals/s.
  ecfg.flow_bytes_per_s = 10.0;
  ecfg.min_duration_s = 60.0;
  ecfg.max_duration_s = 600.0;
  workload::WorkloadEngine engine{w->sim, *w->edge, w->tunnel_pop, load,
                                  policy, trace,    ecfg};
  const auto start = Clock::now();
  w->edge->Start();
  engine.Start();
  w->sim.Run(static_cast<double>(trace.duration_us) / 1e6 + 2.0);
  return ReplayOutcome{.stats = engine.stats(), .wall_ms = MsSince(start)};
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: workload_throughput [--seed S] [--smoke]\n";
      return 64;
    }
  }

  obs::Metrics().ResetValues();
  obs::RunReport report{"workload_throughput"};
  report.SetSeed(seed);

  // --- generate ---------------------------------------------------------
  workload::TraceConfig tc;
  tc.seed = seed;
  tc.duration_s = smoke ? 120.0 : 3600.0;
  tc.mean_flows_per_s = smoke ? 50.0 : 320.0;
  tc.num_threads = 0;  // hardware concurrency; trace is thread-count-invariant
  const std::vector<workload::UgProfile> profiles =
      workload::SyntheticUgProfiles(smoke ? 32 : 512, seed);

  workload::Trace trace;
  double gen_ms = 0.0;
  {
    const obs::RunReport::ScopedPhase phase{report, "generate"};
    const auto start = Clock::now();
    trace = workload::GenerateTrace(tc, profiles);
    gen_ms = MsSince(start);
  }
  const std::uint64_t checksum = workload::TraceChecksum(trace);
  report.AddConfig("duration_s", tc.duration_s);
  report.AddConfig("mean_flows_per_s", tc.mean_flows_per_s);
  report.AddConfig("ug_count", static_cast<double>(profiles.size()));
  report.AddConfig("trace_checksum", Hex64(checksum));
  report.AddValue("trace_events", static_cast<double>(trace.events.size()));
  report.AddValue("wall_gen_flows_per_s",
                  static_cast<double>(trace.events.size()) / (gen_ms / 1e3));
  std::cout << "generate: " << trace.events.size() << " flow events, checksum "
            << Hex64(checksum) << "\n";

  // --- pin_lookup -------------------------------------------------------
  // Time Find() over a large live set in batches; per-batch mean approximates
  // per-lookup latency well enough for a p50/p99 trajectory.
  std::vector<double> lookup_ns;
  std::size_t working_set = 0;
  std::uint64_t lookup_sink = 0;
  {
    const obs::RunReport::ScopedPhase phase{report, "pin_lookup"};
    workload::FlowStore<workload::PinnedFlow> store;
    working_set = std::min<std::size_t>(trace.events.size(), 200'000);
    std::vector<netsim::FlowKey> keys;
    keys.reserve(working_set);
    for (std::size_t i = 0; i < working_set; ++i) {
      const netsim::FlowKey key =
          workload::WorkloadEngine::KeyFor(trace.events[i]);
      store.Upsert(key).bytes = trace.events[i].bytes;
      keys.push_back(key);
    }
    constexpr std::size_t kBatch = 1024;
    // A large prime stride scatters the probe sequence across shards so the
    // batch isn't a cache-resident linear walk.
    const std::size_t stride = 104'729 % keys.size();
    std::size_t cursor = 0;
    const std::size_t batches = smoke ? 32 : 512;
    for (std::size_t b = 0; b < batches; ++b) {
      const auto start = Clock::now();
      for (std::size_t i = 0; i < kBatch; ++i) {
        cursor += stride;
        if (cursor >= keys.size()) cursor -= keys.size();
        const workload::PinnedFlow* f = store.Find(keys[cursor]);
        if (f != nullptr) lookup_sink += f->bytes;
      }
      lookup_ns.push_back(MsSince(start) * 1e6 / static_cast<double>(kBatch));
    }
  }
  report.AddValue("pin_lookup_set", static_cast<double>(working_set));
  report.AddValue("wall_pin_lookup_p50_ns", util::Median(lookup_ns));
  report.AddValue("wall_pin_lookup_p99_ns",
                  util::Percentile(lookup_ns, 99.0));
  std::cout << "pin_lookup: " << working_set << " live flows, p50 "
            << util::Table::Num(util::Median(lookup_ns), 1) << " ns, p99 "
            << util::Table::Num(util::Percentile(lookup_ns, 99.0), 1)
            << " ns/lookup (sink " << (lookup_sink & 0xFF) << ")\n";

  // --- replay: latency-only vs capacity-aware ---------------------------
  // Capacity sized so the aggregate offered load (~2.7 MB/s) fits across the
  // 4 PoPs (4 MB/s total) but overloads any single one: latency-only piles
  // onto the closest PoP, the load-aware policy spreads under threshold.
  const double pop_capacity_bps = smoke ? 2.0e5 : 1.0e6;
  workload::WorkloadEngine::Stats latency_stats;
  {
    const obs::RunReport::ScopedPhase phase{report, "replay_latency_only"};
    const workload::LatencyOnlyPolicy policy;
    latency_stats = Replay(seed, trace, policy, pop_capacity_bps).stats;
  }
  workload::WorkloadEngine::Stats aware_stats;
  double replay_ms = 0.0;
  {
    const obs::RunReport::ScopedPhase phase{report, "replay_load_aware"};
    const workload::LoadAwarePolicy policy{0.85};
    const ReplayOutcome out = Replay(seed, trace, policy, pop_capacity_bps);
    aware_stats = out.stats;
    replay_ms = out.wall_ms;
  }

  report.AddConfig("pop_capacity_bps", pop_capacity_bps);
  report.AddValue("latency_only_started",
                  static_cast<double>(latency_stats.started));
  report.AddValue("latency_only_max_utilization",
                  latency_stats.max_utilization);
  report.AddValue("latency_only_saturated",
                  static_cast<double>(latency_stats.saturated_assignments));
  report.AddValue("load_aware_started",
                  static_cast<double>(aware_stats.started));
  report.AddValue("load_aware_max_utilization", aware_stats.max_utilization);
  report.AddValue("load_aware_saturated",
                  static_cast<double>(aware_stats.saturated_assignments));
  report.AddValue("peak_concurrent",
                  static_cast<double>(aware_stats.peak_concurrent));
  report.AddValue("completed", static_cast<double>(aware_stats.completed));
  report.AddValue("down_picks",
                  static_cast<double>(latency_stats.down_picks +
                                      aware_stats.down_picks));
  report.AddValue("wall_replay_flows_per_s",
                  static_cast<double>(aware_stats.started) /
                      (replay_ms / 1e3));

  std::cout << "replay(latency_only): started " << latency_stats.started
            << ", max PoP utilization "
            << util::Table::Num(latency_stats.max_utilization, 2)
            << ", saturated admissions " << latency_stats.saturated_assignments
            << "\n";
  std::cout << "replay(load_aware):   started " << aware_stats.started
            << ", max PoP utilization "
            << util::Table::Num(aware_stats.max_utilization, 2)
            << ", saturated admissions " << aware_stats.saturated_assignments
            << ", peak concurrent " << aware_stats.peak_concurrent << "\n";

  report.AttachMetrics();
  report.Write(bench::ReportPath("workload_throughput"));

  if (smoke) return 0;
  // Acceptance gates (ISSUE: >= 1M generated events, >= 100k concurrently
  // pinned flows, zero policy-contract breaches).
  int failures = 0;
  if (trace.events.size() < 1'000'000) {
    std::cerr << "FAIL: generated " << trace.events.size()
              << " events (< 1M)\n";
    ++failures;
  }
  if (aware_stats.peak_concurrent < 100'000) {
    std::cerr << "FAIL: peak concurrent pinned " << aware_stats.peak_concurrent
              << " (< 100k)\n";
    ++failures;
  }
  if (latency_stats.down_picks + aware_stats.down_picks != 0) {
    std::cerr << "FAIL: policy picked a down tunnel\n";
    ++failures;
  }
  return failures;
}
