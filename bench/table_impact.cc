// §2.4 / §5.1.2: advertisement cost — IPv4 prefixes are expensive (> $20k
// per /24) and every announced prefix occupies slots in global BGP routing
// tables. The paper argues PAINTER must keep its footprint comparable to
// other hypergiants (8 of 22 advertise 500+ /24s) while noting that table
// impact, not just prefix count, is the Internet-wide cost.
//
// This bench prices each strategy's configuration at the budget where it
// first reaches 90% of its own saturated modeled benefit, and measures its
// *actual* RIB footprint: a prefix announced only via a low-cone peer sits
// in few routing tables, so PAINTER's reuse is even cheaper for the Internet
// than its prefix count suggests.
#include <iostream>

#include "bench/strategy_eval.h"
#include "core/prefix_pool.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Table: advertisement cost and BGP table impact (§2.4)",
      "Prefix bill and global RIB slots per strategy at 90% of its own "
      "saturated modeled benefit.");

  auto w = bench::PrototypeWorld();
  util::Rng rng{21};
  const auto instance = core::BuildMeasuredInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, rng);
  const core::RoutingModel model{instance.UgCount()};
  const core::ExpectationParams params;

  const auto painter_full =
      bench::SolvePainter(instance, w.deployment->peerings().size());
  const auto strategies =
      bench::PaperStrategies(w, instance, painter_full, 3000.0);

  util::Table table{{"strategy", "prefixes @90%", "cost (USD)",
                     "announcements", "RIB entries", "RIB entries/prefix"}};
  for (const auto& strategy : strategies) {
    // Saturated benefit for this strategy (full budget).
    const double saturated =
        core::PredictBenefit(instance, model,
                             strategy.build(w.deployment->peerings().size()),
                             params)
            .mean_ms;
    // Smallest budget reaching 90% of it.
    core::AdvertisementConfig chosen;
    for (std::size_t b = 1; b <= w.deployment->peerings().size();
         b = b < 16 ? b + 1 : b + b / 4) {
      chosen = strategy.build(b);
      if (core::PredictBenefit(instance, model, chosen, params).mean_ms >=
          0.9 * saturated) {
        break;
      }
    }
    core::PrefixPool pool{core::ParsePrefix("203.0.0.0/16").value(), 24,
                          20000.0};
    const auto plan = core::BindPrefixes(chosen, pool);
    const auto fp = core::ComputeRibFootprint(chosen, *w.resolver);
    table.AddRow(
        {strategy.name, std::to_string(chosen.PrefixCount()),
         util::Table::Num(plan.cost_usd, 0),
         std::to_string(chosen.AnnouncementCount()),
         std::to_string(fp.total_entries),
         util::Table::Num(static_cast<double>(fp.total_entries) /
                              std::max<std::size_t>(1, chosen.PrefixCount()),
                          0)});
  }
  table.Print(std::cout);

  std::cout
      << "\nContext (§5.1.2): 8 of 22 hypergiants advertise 500+ /24s; a "
         "couple hundred prefixes would get Azure ~90% of the possible "
         "benefit. PAINTER's total RIB impact at 90% benefit is an order "
         "of magnitude below One-per-Peering's, because reuse gets the same "
         "coverage from a handful of prefixes; prefixes announced only via "
         "low-cone peers would shrink the per-prefix footprint further.\n";
  return 0;
}
