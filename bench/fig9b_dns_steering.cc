// Fig. 9b: what coarse steering costs. PAINTER's advertisements steered via
// DNS (one prefix per recursive resolver, per-/24 for the ECS-capable one)
// lose roughly half the benefit of per-flow steering, because resolvers in
// exactly the regions with poor routing serve geographically disparate UGs
// with conflicting best prefixes (§5.2.2).
#include <iostream>

#include "bench/strategy_eval.h"
#include "dnssim/resolvers.h"
#include "measure/geolocation.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 9b",
      "Benefit vs budget: PAINTER with per-flow steering vs the same "
      "advertisements steered via DNS.");

  auto w = bench::AzureScaleWorld();
  const measure::GeoTargetCatalog targets{*w.oracle, {}};
  util::Rng rng{11};
  const auto instance = core::BuildEstimatedInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle,
      targets, rng, 450.0);
  const double possible = instance.TotalPossibleBenefitMs();

  const auto resolvers = dnssim::AssignResolvers(*w.deployment, {});
  const core::DnsSteeringInput dns{resolvers.resolver_of_ug,
                                   resolvers.resolver_supports_ecs};

  const auto painter_full =
      bench::SolvePainter(instance, w.deployment->peerings().size());
  const auto budgets = bench::BudgetPoints(w.deployment->peerings().size());
  const core::RoutingModel model{instance.UgCount()};
  const core::ExpectationParams params;

  std::vector<double> xs;
  util::Series per_flow{"PAINTER", {}};
  util::Series via_dns{"PAINTER w/ DNS", {}};
  for (const std::size_t b : budgets) {
    xs.push_back(100.0 * static_cast<double>(b) /
                 static_cast<double>(w.deployment->peerings().size()));
    const auto cfg = core::Truncate(painter_full, b);
    per_flow.ys.push_back(
        100.0 * core::PredictBenefit(instance, model, cfg, params).mean_ms /
        possible);
    via_dns.ys.push_back(
        100.0 * core::EvaluateDnsSteering(instance, model, cfg, params, dns) /
        possible);
  }
  util::PrintSweep(std::cout, "budget (% of sessions)", xs,
                   {per_flow, via_dns}, 1);

  const double loss =
      1.0 - via_dns.ys.back() / std::max(1e-9, per_flow.ys.back());
  std::cout << "\nAt full budget, DNS steering sacrifices "
            << util::Table::Pct(loss)
            << " of PAINTER's benefit (paper: roughly half).\n";
  return 0;
}
