// Fig. 11: path diversity and failure avoidance, PAINTER vs SD-WAN
// multihoming. (a) CDFs of the per-UG difference in exposed paths (lower
// bound: one per compliant peering at regional PoPs; upper bound: all
// policy-compliant paths) and nearby PoPs. (b) CDF of the fraction of
// default-path ASes each solution can route around.
#include <iostream>

#include "bench/bench_common.h"
#include "core/resilience.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 11",
      "Exposed paths / PoPs (PAINTER - SD-WAN) and intermediate-AS "
      "avoidance.");

  auto w = bench::AzureScaleWorld();
  const core::ResilienceAnalyzer analyzer{w.internet(), *w.deployment,
                                          *w.catalog};
  const auto results = analyzer.AnalyzeAll();

  util::EmpiricalCdf lb_diff, ub_diff, pop_diff, painter_avoid, sdwan_avoid;
  std::size_t painter_more = 0, painter_all = 0, sdwan_all = 0;
  util::Accumulator sdwan_paths;
  for (const auto& r : results) {
    lb_diff.Add(static_cast<double>(r.painter_paths_lb) -
                static_cast<double>(r.sdwan_paths));
    ub_diff.Add(static_cast<double>(r.painter_paths_ub) -
                static_cast<double>(r.sdwan_paths));
    pop_diff.Add(static_cast<double>(r.painter_pops) -
                 static_cast<double>(r.sdwan_pops));
    painter_avoid.Add(r.painter_avoid_frac);
    sdwan_avoid.Add(r.sdwan_avoid_frac);
    sdwan_paths.Add(static_cast<double>(r.sdwan_paths));
    if (r.painter_paths_lb > r.sdwan_paths) ++painter_more;
    if (r.painter_avoid_frac >= 1.0 - 1e-9) ++painter_all;
    if (r.sdwan_avoid_frac >= 1.0 - 1e-9) ++sdwan_all;
  }
  const double n = static_cast<double>(results.size());

  std::cout << "Fig. 11a — exposed path difference (PAINTER - SD-WAN):\n";
  util::Table table{{"quantile", "best-paths diff (LB)",
                     "all-paths diff (UB)", "PoPs diff"}};
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    table.AddRow({util::Table::Num(q, 2),
                  util::Table::Num(lb_diff.Quantile(q), 0),
                  util::Table::Num(ub_diff.Quantile(q), 0),
                  util::Table::Num(pop_diff.Quantile(q), 0)});
  }
  table.Print(std::cout);
  std::cout << "SD-WAN paths per UG: mean "
            << util::Table::Num(sdwan_paths.mean(), 1)
            << " (paper: most networks have 2-3 ISPs).\n";
  std::cout << "PAINTER exposes more paths than SD-WAN for "
            << util::Table::Pct(painter_more / n)
            << " of UGs; median extra paths "
            << util::Table::Num(lb_diff.Quantile(0.5), 0)
            << " (paper: >=23 more for most UGs).\n\n";

  std::cout << "Fig. 11b — fraction of default-path ASes avoidable:\n";
  util::Table avoid{{"quantile", "PAINTER", "SD-WAN"}};
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    avoid.AddRow({util::Table::Num(q, 2),
                  util::Table::Num(painter_avoid.Quantile(q), 2),
                  util::Table::Num(sdwan_avoid.Quantile(q), 2)});
  }
  avoid.Print(std::cout);
  std::cout << "Avoid ALL default-path ASes: PAINTER "
            << util::Table::Pct(painter_all / n) << " of UGs, SD-WAN "
            << util::Table::Pct(sdwan_all / n)
            << " (paper: 90.7% vs 69.5%).\n";
  return 0;
}
