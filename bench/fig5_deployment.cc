// Fig. 5 + §4: the deployment inventory. The paper's prototype spans 25
// Vultr PoPs on 6 continents with ~5,000 neighbor ASes and ~9,000 ingresses;
// Azure has ~200 PoPs and >4,000 peered networks, most connecting at one PoP.
// This bench prints the same inventory for the two simulated worlds and
// checks the "most networks connect at one PoP" skew.
#include <iostream>
#include <map>
#include <set>

#include "bench/bench_common.h"
#include "util/table.h"

namespace {

using namespace painter;

void Describe(const char* name, const bench::BenchWorld& w) {
  const auto& dep = *w.deployment;
  const auto& metros = w.internet().metros;

  std::set<std::uint32_t> neighbor_as;
  std::map<std::uint32_t, std::size_t> pops_of_as;
  for (const auto& sess : dep.peerings()) {
    neighbor_as.insert(sess.peer.value());
    ++pops_of_as[sess.peer.value()];
  }
  std::size_t single_pop = 0;
  for (const auto& [as, pops] : pops_of_as) {
    if (pops == 1) ++single_pop;
  }

  std::cout << name << ":\n";
  util::Table t{{"metric", "value"}};
  t.AddRow({"ASes in the internet", std::to_string(w.internet().graph.size())});
  t.AddRow({"PoPs", std::to_string(dep.pops().size())});
  t.AddRow({"peering sessions (ingresses)",
            std::to_string(dep.peerings().size())});
  t.AddRow({"distinct neighbor networks", std::to_string(neighbor_as.size())});
  t.AddRow({"neighbors at exactly one PoP",
            util::Table::Pct(static_cast<double>(single_pop) /
                             static_cast<double>(neighbor_as.size()))});
  t.AddRow({"transit-provider sessions",
            std::to_string(dep.TransitPeerings().size())});
  t.AddRow({"user groups", std::to_string(dep.ugs().size())});
  t.AddRow({"compliant ingresses per UG (mean)",
            util::Table::Num(w.catalog->MeanCompliantPerUg(), 1)});
  t.Print(std::cout);

  // Continental spread of PoPs (the Fig. 5 map, as a table).
  std::map<std::string, std::size_t> by_region;
  for (const auto& pop : dep.pops()) {
    const auto& loc = metros[pop.metro.value()].location;
    std::string region;
    if (loc.lon_deg < -30.0) {
      region = loc.lat_deg > 12.0 ? "North America" : "South America";
    } else if (loc.lon_deg < 60.0) {
      region = loc.lat_deg > 20.0 ? "Europe" : "Africa/Middle East";
    } else {
      region = loc.lat_deg < -10.0 ? "Oceania" : "Asia";
    }
    ++by_region[region];
  }
  util::Table spread{{"region", "PoPs"}};
  for (const auto& [region, count] : by_region) {
    spread.AddRow({region, std::to_string(count)});
  }
  spread.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  util::PrintFigureHeader(
      std::cout, "Figure 5 / §4",
      "Deployment inventory for the two simulated worlds (paper: 25 Vultr "
      "PoPs, 5k neighbor ASes, 9k ingresses; Azure ~200 PoPs, 4k networks, "
      "most at one PoP).");
  Describe("Prototype world (PEERING/Vultr analogue)",
           painter::bench::PrototypeWorld());
  Describe("Azure-scale world (simulated-Azure analogue)",
           painter::bench::AzureScaleWorld());
  return 0;
}
