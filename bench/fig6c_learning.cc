// Fig. 6c: PAINTER learns from incorrect routing assumptions over
// advertisement iterations — realized benefit rises and the gap between the
// model's prediction and reality narrows as observed ingress preferences and
// measured RTTs replace the equal-likelihood assumption. The paper's
// prototype went from 44 ms of uncertainty to 8 ms while realized benefit
// climbed toward ~60 ms.
//
// The prototype's environment was full of surprises (transits inflating
// routes over 10k+ km, New York users preferring Amsterdam ingresses), so
// this bench raises the exit-quirk rate: a quarter of (entry AS, metro)
// pairs route to a non-nearest PoP the model cannot know a priori.
#include <iostream>
#include <string>

#include "bench/strategy_eval.h"
#include "core/sim_environment.h"
#include "obs/report.h"
#include "util/table.h"

int main() {
  using namespace painter;

  util::PrintFigureHeader(
      std::cout, "Figure 6c",
      "Learning iterations: realized benefit climbs and prediction error "
      "shrinks as routing surprises are observed (high-quirk prototype).");

  obs::RunReport report{"fig6c_learning"};
  report.SetSeed(202);  // PrototypeWorld's seed
  report.AddConfig("exit_quirk_rate", 0.25);
  report.AddConfig("max_learning_iterations", 6.0);

  auto w = bench::PrototypeWorld();
  // A surprise-rich routing environment, resolved consistently everywhere.
  const cloudsim::IngressResolver resolver{w.internet(), *w.deployment,
                                           cloudsim::ExitQuirkConfig{0.25, 7}};
  util::Rng rng{21};
  const auto instance = core::BuildMeasuredInstance(
      w.internet(), *w.deployment, *w.catalog, resolver, *w.oracle, rng);

  for (const std::size_t budget : {5ul, 15ul, 40ul}) {
    core::OrchestratorConfig ocfg;
    ocfg.prefix_budget = budget;
    ocfg.d_reuse_km = 3000.0;
    ocfg.max_learning_iterations = 6;
    ocfg.learning_stop_frac = -1.0;  // run all iterations for the figure
    core::Orchestrator orch{instance, ocfg};
    core::SimEnvironment env{resolver, *w.oracle, util::Rng{31}};
    const obs::RunReport::ScopedPhase phase{
        report, "learn_budget_" + std::to_string(budget)};
    const auto reports = orch.Learn(env);

    std::cout << "Budget " << budget << " prefixes:\n";
    util::Table table{{"iteration", "realized (ms)", "realized+ (ms)",
                       "predicted mean (ms)", "prediction error (ms)",
                       "announcements"}};
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto& r = reports[i];
      table.AddRow({std::to_string(i + 1), util::Table::Num(r.realized_ms, 2),
                    util::Table::Num(r.realized_positive_ms, 2),
                    util::Table::Num(r.predicted.mean_ms, 2),
                    util::Table::Num(r.predicted.mean_ms - r.realized_ms, 2),
                    std::to_string(r.config.AnnouncementCount())});
    }
    table.Print(std::cout);
    const auto& first = reports.front();
    const auto& last = reports.back();
    const std::string key = "budget" + std::to_string(budget);
    report.AddValue(key + ".final_realized_ms", last.realized_ms);
    report.AddValue(key + ".learning_gain_ms",
                    last.realized_ms - first.realized_ms);
    report.AddValue(key + ".final_prediction_error_ms",
                    last.predicted.mean_ms - last.realized_ms);
    std::cout << "Learning gain: "
              << util::Table::Num(last.realized_ms - first.realized_ms, 2)
              << " ms realized; prediction error "
              << util::Table::Num(first.predicted.mean_ms - first.realized_ms,
                                  2)
              << " -> "
              << util::Table::Num(last.predicted.mean_ms - last.realized_ms, 2)
              << " ms.\n\n";
  }

  // Ablation: learning disabled == iteration 1 forever.
  core::OrchestratorConfig ab;
  ab.prefix_budget = 15;
  ab.enable_learning = false;
  core::Orchestrator no_learn{instance, ab};
  core::SimEnvironment env{resolver, *w.oracle, util::Rng{31}};
  const auto frozen = no_learn.Learn(env);
  std::cout << "Ablation (learning off, budget 15): realized stays at "
            << util::Table::Num(frozen.back().realized_ms, 2) << " ms.\n";
  report.AddValue("ablation.no_learning_realized_ms",
                  frozen.back().realized_ms);
  report.AttachMetrics();
  report.Write(bench::ReportPath("fig6c_learning"));
  return 0;
}
