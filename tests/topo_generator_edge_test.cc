// Edge cases of the Internet generator: degenerate sizes, provider-locality
// fallbacks, and structural soundness under unusual configurations.
#include <gtest/gtest.h>

#include <algorithm>

#include "topo/generator.h"

namespace painter::topo {
namespace {

InternetConfig Tiny() {
  InternetConfig cfg;
  cfg.seed = 9;
  cfg.tier1_count = 2;
  cfg.transit_count = 3;
  cfg.regional_count = 4;
  cfg.stub_count = 10;
  return cfg;
}

TEST(GeneratorEdge, TinyWorldIsSound) {
  const auto net = GenerateInternet(Tiny());
  EXPECT_EQ(net.graph.size(), 2u + 3u + 4u + 10u);
  for (auto s : net.graph.AsesOfTier(AsTier::kStub)) {
    EXPECT_FALSE(net.graph.providers(s).empty());
  }
}

TEST(GeneratorEdge, SingleTier1StillConnects) {
  auto cfg = Tiny();
  cfg.tier1_count = 1;
  const auto net = GenerateInternet(cfg);
  const auto t1 = net.graph.AsesOfTier(AsTier::kTier1).front();
  // Every transit must be the tier-1's customer (only provider available).
  for (auto tr : net.graph.AsesOfTier(AsTier::kTransit)) {
    EXPECT_TRUE(net.graph.InCustomerCone(tr, t1));
  }
}

TEST(GeneratorEdge, ProvidersAreNeverStubs) {
  const auto net = GenerateInternet(Tiny());
  for (auto s : net.graph.AsesOfTier(AsTier::kStub)) {
    for (auto p : net.graph.providers(s)) {
      EXPECT_NE(net.graph.info(p).tier, AsTier::kStub);
    }
  }
}

TEST(GeneratorEdge, RegionalFootprintsAreLocal) {
  InternetConfig cfg;
  cfg.seed = 13;
  cfg.regional_count = 60;
  cfg.stub_count = 50;
  const auto net = GenerateInternet(cfg);
  // Presence is drawn with a strong distance decay, so the bulk of regional
  // footprints stays continental; the occasional outlier is allowed (big
  // metros keep nonzero weight at any distance).
  std::size_t near = 0;
  std::size_t total = 0;
  for (auto r : net.graph.AsesOfTier(AsTier::kRegional)) {
    const auto& presence = net.graph.info(r).presence;
    ASSERT_FALSE(presence.empty());
    const auto& anchor = net.metros[presence.front().value()].location;
    for (auto m : presence) {
      ++total;
      if (Distance(anchor, net.metros[m.value()].location).count() < 5000.0) {
        ++near;
      }
    }
  }
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(total), 0.8);
}

TEST(GeneratorEdge, StubProvidersWithinServiceRadiusMostly) {
  InternetConfig cfg;
  cfg.seed = 17;
  cfg.stub_count = 400;
  const auto net = GenerateInternet(cfg);
  std::size_t far = 0;
  std::size_t total = 0;
  for (auto s : net.graph.AsesOfTier(AsTier::kStub)) {
    const auto& home =
        net.metros[net.graph.info(s).presence.front().value()].location;
    for (auto p : net.graph.providers(s)) {
      ++total;
      double nearest = 1e18;
      for (auto m : net.graph.info(p).presence) {
        nearest = std::min(nearest,
                           Distance(home, net.metros[m.value()].location)
                               .count());
      }
      if (nearest > 2500.0) ++far;
    }
  }
  ASSERT_GT(total, 0u);
  // The fallback path (nothing within the service radius) is rare.
  EXPECT_LT(static_cast<double>(far) / static_cast<double>(total), 0.02);
}

TEST(GeneratorEdge, ExitBiasIsAlwaysAPresenceMetro) {
  const auto net = GenerateInternet(Tiny());
  for (std::uint32_t v = 0; v < net.graph.size(); ++v) {
    const auto& info = net.graph.info(util::AsId{v});
    if (info.exit_policy != ExitPolicy::kFixedExit) continue;
    EXPECT_TRUE(std::find(info.presence.begin(), info.presence.end(),
                          info.exit_bias) != info.presence.end());
  }
}

TEST(GeneratorEdge, NoDuplicateProviderEdges) {
  const auto net = GenerateInternet(Tiny());
  for (std::uint32_t v = 0; v < net.graph.size(); ++v) {
    auto provs = net.graph.providers(util::AsId{v});
    std::vector<util::AsId> sorted(provs.begin(), provs.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(GeneratorEdge, RelationshipGraphIsAcyclic) {
  // Customer->provider edges must form a DAG, or cone computation and
  // valley-free counting would be ill-defined.
  const auto net = GenerateInternet(Tiny());
  const std::size_t n = net.graph.size();
  std::vector<int> state(n, 0);  // 0 unvisited, 1 in-progress, 2 done
  std::function<bool(util::AsId)> dfs = [&](util::AsId v) -> bool {
    if (state[v.value()] == 1) return false;  // cycle
    if (state[v.value()] == 2) return true;
    state[v.value()] = 1;
    for (auto p : net.graph.providers(v)) {
      if (!dfs(p)) return false;
    }
    state[v.value()] = 2;
    return true;
  };
  for (std::uint32_t v = 0; v < n; ++v) {
    EXPECT_TRUE(dfs(util::AsId{v})) << "cycle through AS " << v;
  }
}

}  // namespace
}  // namespace painter::topo
