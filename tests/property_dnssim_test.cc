// Property checks of the DNS TTL-violation synthesizer across parameters:
// the mechanisms must respond to their knobs in the physically sensible
// direction for any seed.
#include <gtest/gtest.h>

#include "dnssim/ttl_study.h"

namespace painter::dnssim {
namespace {

CloudTrafficProfile BaseProfile() {
  CloudTrafficProfile p = DefaultCloudProfiles()[1];  // Cloud B, mid-range
  return p;
}

class TtlPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TtlPropertyTest, LongerTtlMeansFewerStaleBytes) {
  auto p = BaseProfile();
  double prev = 1.1;
  for (const double ttl : {30.0, 120.0, 600.0, 3600.0}) {
    p.ttl_seconds = ttl;
    util::Rng rng{GetParam()};
    const auto r = RunTtlStudy(p, 150, 3600.0, rng);
    const double stale = FractionAtOrAfter(r, 0.0);
    EXPECT_LE(stale, prev + 0.03) << "ttl " << ttl;  // small sampling slack
    prev = stale;
  }
}

TEST_P(TtlPropertyTest, NoReuseMeansNoStaleNewFlows) {
  auto p = BaseProfile();
  p.stale_reuse_prob = 0.0;
  util::Rng rng{GetParam()};
  const auto r = RunTtlStudy(p, 100, 3600.0, rng);
  EXPECT_DOUBLE_EQ(r.stale_new_flow_bytes, 0.0);
  // Live flows can still outlast the record.
  EXPECT_GT(r.live_past_expiry_bytes, 0.0);
}

TEST_P(TtlPropertyTest, LongerFlowsMoreLiveViolations) {
  auto shorter = BaseProfile();
  shorter.duration_mu = 1.5;
  auto longer = BaseProfile();
  longer.duration_mu = 5.5;
  util::Rng rng_a{GetParam()};
  util::Rng rng_b{GetParam()};
  const auto a = RunTtlStudy(shorter, 150, 3600.0, rng_a);
  const auto b = RunTtlStudy(longer, 150, 3600.0, rng_b);
  EXPECT_GT(b.live_past_expiry_bytes / b.total_bytes,
            a.live_past_expiry_bytes / a.total_bytes);
}

TEST_P(TtlPropertyTest, ByteAccountingConsistent) {
  auto p = BaseProfile();
  util::Rng rng{GetParam()};
  const auto r = RunTtlStudy(p, 120, 3600.0, rng);
  EXPECT_GT(r.total_bytes, 0.0);
  EXPECT_LE(r.live_past_expiry_bytes + r.stale_new_flow_bytes,
            r.total_bytes + 1e-6);
  // CDF covers all bytes.
  EXPECT_NEAR(FractionAtOrAfter(r, -1e12), 1.0, 1e-12);
  EXPECT_NEAR(FractionAtOrAfter(r, 1e12), 0.0, 1e-12);
}

TEST_P(TtlPropertyTest, DeterministicPerSeed) {
  auto p = BaseProfile();
  util::Rng a{GetParam()};
  util::Rng b{GetParam()};
  const auto ra = RunTtlStudy(p, 60, 1800.0, a);
  const auto rb = RunTtlStudy(p, 60, 1800.0, b);
  EXPECT_DOUBLE_EQ(ra.total_bytes, rb.total_bytes);
  EXPECT_DOUBLE_EQ(ra.stale_new_flow_bytes, rb.stale_new_flow_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtlPropertyTest,
                         ::testing::Values(2, 11, 47, 203));

}  // namespace
}  // namespace painter::dnssim
