#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "dnssim/granularity.h"
#include "dnssim/resolvers.h"
#include "dnssim/ttl_study.h"
#include "tests/world_fixture.h"

namespace painter::dnssim {
namespace {

TEST(Resolvers, EveryUgAssigned) {
  const test::World& w = test::SharedWorld();
  const auto assignment = AssignResolvers(*w.deployment, {});
  ASSERT_EQ(assignment.resolver_of_ug.size(), w.deployment->ugs().size());
  for (const auto r : assignment.resolver_of_ug) {
    EXPECT_LT(r, assignment.resolver_count);
  }
}

TEST(Resolvers, EcsFlagsMatchConfig) {
  const test::World& w = test::SharedWorld();
  ResolverConfig cfg;
  cfg.ecs_resolver_count = 2;
  cfg.public_resolver_count = 5;
  const auto assignment = AssignResolvers(*w.deployment, cfg);
  std::size_t ecs = 0;
  for (const bool b : assignment.resolver_supports_ecs) {
    if (b) ++ecs;
  }
  EXPECT_EQ(ecs, 2u);
}

TEST(Resolvers, PublicResolversServeManyMetros) {
  const test::World& w = test::SharedWorld(11, 400);
  ResolverConfig cfg;
  cfg.public_resolver_frac = 0.5;
  const auto assignment = AssignResolvers(*w.deployment, cfg);
  // Resolver 0 (public) should serve UGs in several metros.
  std::set<std::uint32_t> metros;
  for (const auto& ug : w.deployment->ugs()) {
    if (assignment.resolver_of_ug[ug.id.value()] == 0) {
      metros.insert(ug.metro.value());
    }
  }
  EXPECT_GE(metros.size(), 3u);
}

TEST(Resolvers, LocalResolversServeOneMetro) {
  const test::World& w = test::SharedWorld(11, 400);
  const auto assignment = AssignResolvers(*w.deployment, {});
  ResolverConfig cfg;
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>> metros_of;
  for (const auto& ug : w.deployment->ugs()) {
    const auto r = assignment.resolver_of_ug[ug.id.value()];
    if (r >= cfg.public_resolver_count) {
      metros_of[r].insert(ug.metro.value());
    }
  }
  for (const auto& [r, metros] : metros_of) {
    EXPECT_EQ(metros.size(), 1u) << "local resolver " << r;
  }
}

TEST(TtlStudy, Fig3ShapeHolds) {
  // Fig. 3: ~80% of Cloud A's bytes are sent >= 5 minutes after the record
  // expired; Clouds B/C see >= ~20% of bytes a minute after expiry.
  util::Rng rng{31};
  const auto profiles = DefaultCloudProfiles();
  const auto a = RunTtlStudy(profiles[0], 300, 3600.0, rng);
  const auto b = RunTtlStudy(profiles[1], 300, 3600.0, rng);
  const auto c = RunTtlStudy(profiles[2], 300, 3600.0, rng);

  EXPECT_GT(FractionAtOrAfter(a, 300.0), 0.6);
  EXPECT_GT(FractionAtOrAfter(b, 60.0), 0.1);
  EXPECT_GT(FractionAtOrAfter(c, 60.0), 0.1);
  // Cloud A is the most extreme.
  EXPECT_GT(FractionAtOrAfter(a, 300.0), FractionAtOrAfter(b, 300.0));
  EXPECT_GT(FractionAtOrAfter(a, 300.0), FractionAtOrAfter(c, 300.0));
}

TEST(TtlStudy, FractionsMonotoneInOffset) {
  util::Rng rng{32};
  const auto r = RunTtlStudy(DefaultCloudProfiles()[1], 100, 3600.0, rng);
  double prev = 1.1;
  for (const double x : {-60.0, -1.0, 0.0, 1.0, 60.0, 300.0, 3600.0}) {
    const double f = FractionAtOrAfter(r, x);
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
}

TEST(TtlStudy, StaleMechanismsBothPresent) {
  util::Rng rng{33};
  const auto r = RunTtlStudy(DefaultCloudProfiles()[0], 300, 3600.0, rng);
  EXPECT_GT(r.live_past_expiry_bytes, 0.0);
  EXPECT_GT(r.stale_new_flow_bytes, 0.0);
  EXPECT_GT(r.total_bytes,
            r.live_past_expiry_bytes + r.stale_new_flow_bytes * 0.5);
}

TEST(Granularity, BucketBoundaries) {
  EXPECT_EQ(GranularityBucket(1e-5), 0u);
  EXPECT_EQ(GranularityBucket(5e-4), 1u);
  EXPECT_EQ(GranularityBucket(5e-3), 2u);
  EXPECT_EQ(GranularityBucket(5e-2), 3u);
  EXPECT_EQ(GranularityBucket(0.5), 4u);
}

class GranularityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld(13, 300);
    assignment_ = AssignResolvers(*w_.deployment, {});
    rows_ = AnalyzeGranularity(*w_.deployment, *w_.resolver, assignment_, {});
  }
  test::World w_;
  ResolverAssignment assignment_;
  std::vector<PopGranularity> rows_;
};

TEST_F(GranularityTest, FirstRowIsAggregate) {
  ASSERT_FALSE(rows_.empty());
  EXPECT_EQ(rows_.front().pop_name, "All");
}

TEST_F(GranularityTest, BucketsSumToOne) {
  for (const auto& row : rows_) {
    if (row.total_volume <= 0.0) continue;
    auto sum = [](const auto& arr) {
      double s = 0.0;
      for (const double v : arr) s += v;
      return s;
    };
    EXPECT_NEAR(sum(row.bgp), 1.0, 1e-6) << row.pop_name;
    EXPECT_NEAR(sum(row.dns), 1.0, 1e-6) << row.pop_name;
    EXPECT_NEAR(sum(row.painter), 1.0, 1e-6) << row.pop_name;
  }
}

TEST_F(GranularityTest, PainterFinestControl) {
  // PAINTER's per-flow knobs are overwhelmingly in the finest buckets; BGP's
  // (peering, AS) knobs are the coarsest of the three on aggregate.
  const auto& all = rows_.front();
  const double painter_fine = all.painter[0] + all.painter[1];
  const double bgp_fine = all.bgp[0] + all.bgp[1];
  EXPECT_GT(painter_fine, bgp_fine);
  const double bgp_coarse = all.bgp[3] + all.bgp[4];
  const double painter_coarse = all.painter[3] + all.painter[4];
  EXPECT_GT(bgp_coarse, painter_coarse);
}

TEST(DnsSteering, EcsMatchesPerFlowForSoleEcsPopulation) {
  // If every UG sits behind an ECS resolver, DNS steering equals PAINTER's
  // per-UG best (per-/24 == per-UG in our model).
  const test::World& w = test::SharedWorld();
  const auto inst = test::MakeInstance(w);
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 4;
  core::Orchestrator orch{inst, ocfg};
  const auto cfg = orch.ComputeConfig();

  core::DnsSteeringInput dns;
  dns.resolver_of_ug.assign(inst.UgCount(), 0);
  dns.resolver_supports_ecs = {true};
  const core::RoutingModel model{inst.UgCount()};
  const double via_dns =
      core::EvaluateDnsSteering(inst, model, cfg, {}, dns);
  const double per_flow =
      core::PredictBenefit(inst, model, cfg, {}).mean_ms;
  EXPECT_NEAR(via_dns, per_flow, 1e-9);
}

TEST(DnsSteering, SharedResolverLosesBenefit) {
  // One non-ECS resolver for everyone: a single prefix must serve all UGs,
  // which cannot beat per-flow steering.
  const test::World& w = test::SharedWorld();
  const auto inst = test::MakeInstance(w);
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 4;
  core::Orchestrator orch{inst, ocfg};
  const auto cfg = orch.ComputeConfig();

  core::DnsSteeringInput dns;
  dns.resolver_of_ug.assign(inst.UgCount(), 0);
  dns.resolver_supports_ecs = {false};
  const core::RoutingModel model{inst.UgCount()};
  const double via_dns = core::EvaluateDnsSteering(inst, model, cfg, {}, dns);
  const double per_flow = core::PredictBenefit(inst, model, cfg, {}).mean_ms;
  EXPECT_LE(via_dns, per_flow + 1e-9);
}

}  // namespace
}  // namespace painter::dnssim
