#include <gtest/gtest.h>

#include "tm/congestion_scenario.h"

namespace painter::tm {
namespace {

TEST(CongestionScenario, SteersAwayAndBack) {
  CongestionScenarioConfig cfg;
  const auto r = RunCongestionScenario(cfg);
  EXPECT_TRUE(r.steered_away);
  EXPECT_TRUE(r.steered_back);
  EXPECT_GT(r.bottleneck_drops, 0u);
}

TEST(CongestionScenario, SwitchHappensShortlyAfterOnset) {
  CongestionScenarioConfig cfg;
  const auto r = RunCongestionScenario(cfg);
  bool found = false;
  for (const auto& ev : r.switches) {
    if (ev.from == 0 && ev.to == 1) {
      EXPECT_GE(ev.t, cfg.congest_from_s);
      EXPECT_LT(ev.t, cfg.congest_from_s + 2.0);  // seconds, not TTLs
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CongestionScenario, ReturnsAfterDrain) {
  CongestionScenarioConfig cfg;
  const auto r = RunCongestionScenario(cfg);
  bool back = false;
  for (const auto& ev : r.switches) {
    if (ev.from == 1 && ev.to == 0 && ev.t >= cfg.congest_until_s) {
      EXPECT_LT(ev.t, cfg.congest_until_s + 5.0);
      back = true;
    }
  }
  EXPECT_TRUE(back);
}

TEST(CongestionScenario, NoCongestionNoSwitching) {
  CongestionScenarioConfig cfg;
  cfg.overload_factor = 0.0;  // pump sends nothing effective
  cfg.congest_from_s = cfg.congest_until_s;  // empty window
  const auto r = RunCongestionScenario(cfg);
  EXPECT_FALSE(r.steered_away);
  // Only the initial selection event.
  std::size_t real_switches = 0;
  for (const auto& ev : r.switches) {
    if (ev.from >= 0) ++real_switches;
  }
  EXPECT_EQ(real_switches, 0u);
  EXPECT_EQ(r.bottleneck_drops, 0u);
}

TEST(CongestionScenario, MildLoadInflatesRttWithoutSwitching) {
  // Below-capacity cross traffic: some queueing, no loss; the preferred
  // tunnel keeps winning because the inflation stays under the alternate's
  // RTT plus hysteresis.
  CongestionScenarioConfig cfg;
  cfg.overload_factor = 0.5;
  const auto r = RunCongestionScenario(cfg);
  EXPECT_EQ(r.bottleneck_drops, 0u);
  EXPECT_FALSE(r.steered_away);
  EXPECT_GE(r.rtt_during_peak_ms, r.rtt_before_ms);
}

TEST(TmEdgeReselect, RttDegradationTriggersSwitch) {
  // The chosen tunnel's delay rises mid-run (no loss): the edge must move
  // once the difference exceeds the hysteresis margin.
  netsim::Simulator sim;
  TmPop pop_a{sim, "A", {1}};
  TmPop pop_b{sim, "B", {2}};
  std::vector<TunnelConfig> tunnels;
  tunnels.push_back(TunnelConfig{
      .name = "degrades",
      .remote_ip = 1,
      .path = netsim::PathModel::Piecewise({
          {.start_s = 0.0, .delay_s = 0.010},
          {.start_s = 5.0, .delay_s = 0.040},
      }),
      .pop = &pop_a});
  tunnels.push_back(TunnelConfig{.name = "steady",
                                 .remote_ip = 2,
                                 .path = netsim::PathModel::Fixed(0.020),
                                 .pop = &pop_b});
  TmEdge::Config cfg;
  cfg.delay_jitter = 0.0;
  TmEdge edge{sim, cfg, std::move(tunnels)};
  edge.Start();
  sim.Run(15.0);
  EXPECT_EQ(edge.chosen(), 1);
  bool switched = false;
  for (const auto& ev : edge.failovers()) {
    if (ev.from == 0 && ev.to == 1 && ev.t > 5.0) {
      switched = true;
      EXPECT_LT(ev.t, 6.0);  // EWMA catches up within a second
    }
  }
  EXPECT_TRUE(switched);
}

}  // namespace
}  // namespace painter::tm
