#include <gtest/gtest.h>

#include <set>

#include "bgpsim/engine.h"
#include "bgpsim/session_sim.h"
#include "tests/world_fixture.h"

namespace painter::bgpsim {
namespace {

// Distinct neighbor ASes holding sessions in a world's deployment.
std::vector<util::AsId> NeighborAses(const test::World& w) {
  std::set<std::uint32_t> seen;
  std::vector<util::AsId> out;
  for (const auto& sess : w.deployment->peerings()) {
    if (seen.insert(sess.peer.value()).second) out.push_back(sess.peer);
  }
  return out;
}

void ExpectMatchesEngine(const test::World& w,
                         const std::vector<util::AsId>& announced,
                         const MessageLevelSim& msim) {
  const BgpEngine engine{w.internet().graph};
  const auto outcome = engine.Propagate(
      Announcement{util::PrefixId{0}, w.deployment->cloud_as(), announced});
  for (std::uint32_t v = 0; v < w.internet().graph.size(); ++v) {
    const util::AsId as{v};
    if (as == w.deployment->cloud_as()) continue;
    const auto got = msim.BestAsEngineRoute(as);
    ASSERT_EQ(got.has_value(), outcome.Reachable(as)) << "AS " << v;
    if (!got.has_value()) continue;
    const Route& want = outcome.RouteAt(as);
    EXPECT_EQ(got->learned_from, want.learned_from) << "AS " << v;
    EXPECT_EQ(got->path_length, want.path_length) << "AS " << v;
    EXPECT_EQ(got->next_hop, want.next_hop) << "AS " << v;
  }
}

class SessionSimTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionSimTest, ConvergesToStaticEngineFixpointFullAnnounce) {
  const test::World& w = test::SharedWorld(GetParam(), 100, 6);
  netsim::Simulator sim;
  MessageLevelSim msim{w.internet().graph, w.deployment->cloud_as(), sim,
                       {.seed = GetParam()}};
  const auto neighbors = NeighborAses(w);
  msim.Announce(neighbors);
  sim.Run(1e6);
  ASSERT_TRUE(sim.Empty());  // fully quiesced
  ExpectMatchesEngine(w, neighbors, msim);
}

TEST_P(SessionSimTest, ConvergesToStaticEngineOnSubsets) {
  const test::World& w = test::SharedWorld(GetParam(), 100, 6);
  util::Rng pick{GetParam() + 31};
  const auto all = NeighborAses(w);
  std::vector<util::AsId> subset;
  for (const auto n : all) {
    if (pick.Bernoulli(0.3)) subset.push_back(n);
  }
  if (subset.empty()) subset.push_back(all.front());

  netsim::Simulator sim;
  MessageLevelSim msim{w.internet().graph, w.deployment->cloud_as(), sim,
                       {.seed = GetParam()}};
  msim.Announce(subset);
  sim.Run(1e6);
  ExpectMatchesEngine(w, subset, msim);
}

TEST_P(SessionSimTest, WithdrawalReconvergesToReducedAnnouncement) {
  const test::World& w = test::SharedWorld(GetParam(), 100, 6);
  const auto all = NeighborAses(w);
  ASSERT_GT(all.size(), 2u);
  // Withdraw roughly half of the sessions (keep at least one).
  std::vector<util::AsId> kept;
  std::vector<util::AsId> dropped;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? kept : dropped).push_back(all[i]);
  }

  netsim::Simulator sim;
  MessageLevelSim msim{w.internet().graph, w.deployment->cloud_as(), sim,
                       {.seed = GetParam()}};
  msim.Announce(all);
  sim.Run(1e6);
  const auto msgs_before = msim.MessagesProcessed();

  msim.Withdraw(dropped);
  sim.Run(2e6);
  ASSERT_TRUE(sim.Empty());
  // The withdrawal generated real churn.
  EXPECT_GT(msim.MessagesProcessed(), msgs_before);
  ExpectMatchesEngine(w, kept, msim);
}

TEST_P(SessionSimTest, FullWithdrawalEmptiesEveryRib) {
  const test::World& w = test::SharedWorld(GetParam(), 80, 5);
  const auto all = NeighborAses(w);
  netsim::Simulator sim;
  MessageLevelSim msim{w.internet().graph, w.deployment->cloud_as(), sim,
                       {.seed = GetParam()}};
  msim.Announce(all);
  sim.Run(1e6);
  msim.Withdraw(all);
  sim.Run(2e6);
  for (std::uint32_t v = 0; v < w.internet().graph.size(); ++v) {
    if (util::AsId{v} == w.deployment->cloud_as()) continue;
    EXPECT_FALSE(msim.Reachable(util::AsId{v})) << "AS " << v;
  }
}

TEST_P(SessionSimTest, NoBestPathEverLoops) {
  const test::World& w = test::SharedWorld(GetParam(), 80, 5);
  netsim::Simulator sim;
  MessageLevelSim msim{w.internet().graph, w.deployment->cloud_as(), sim,
                       {.seed = GetParam()}};
  msim.Announce(NeighborAses(w));
  sim.Run(1e6);
  for (std::uint32_t v = 0; v < w.internet().graph.size(); ++v) {
    const auto best = msim.BestRoute(util::AsId{v});
    if (!best.has_value()) continue;
    std::set<std::uint32_t> seen;
    for (const auto hop : best->path) {
      EXPECT_TRUE(seen.insert(hop.value()).second)
          << "loop in best path of AS " << v;
    }
    EXPECT_EQ(best->path.back(), w.deployment->cloud_as());
  }
}

TEST_P(SessionSimTest, ChurnLogIsTimeOrderedWithinRuns) {
  const test::World& w = test::SharedWorld(GetParam(), 80, 5);
  netsim::Simulator sim;
  MessageLevelSim msim{w.internet().graph, w.deployment->cloud_as(), sim,
                       {.seed = GetParam()}};
  msim.Announce(NeighborAses(w));
  sim.Run(1e6);
  const auto& log = msim.ChurnLog();
  ASSERT_FALSE(log.empty());
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first);
    EXPECT_GT(log[i].second, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionSimTest,
                         ::testing::Values(1, 9, 77, 2024));

}  // namespace
}  // namespace painter::bgpsim
