// The SharedWorld cache contract: a cached world is indistinguishable from a
// freshly built one. World generation is a pure function of (seed, stubs,
// pops) and the oracle is stateless (callers supply the Rng), so the
// strongest check is to derive a full measured ProblemInstance from each and
// demand bit-identical contents — any hidden mutable state in the cached
// world would surface as a diff here.
#include "tests/world_fixture.h"

#include "gtest/gtest.h"

namespace painter::test {
namespace {

TEST(WorldFixture, CachedWorldMatchesFreshWorld) {
  // A key no other test uses, so this test exercises a cold insert too.
  const World& cached = SharedWorld(17, 100, 6);
  const World fresh = MakeWorld(17, 100, 6);

  const core::ProblemInstance a = MakeInstance(cached, 33);
  const core::ProblemInstance b = MakeInstance(fresh, 33);

  EXPECT_EQ(a.ug_weight, b.ug_weight);  // exact double equality throughout
  EXPECT_EQ(a.anycast_rtt_ms, b.anycast_rtt_ms);
  EXPECT_EQ(a.peering_count, b.peering_count);
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.ugs_with_peering, b.ugs_with_peering);
  ASSERT_EQ(a.options.size(), b.options.size());
  for (std::size_t ug = 0; ug < a.options.size(); ++ug) {
    ASSERT_EQ(a.options[ug].size(), b.options[ug].size()) << "ug " << ug;
    for (std::size_t k = 0; k < a.options[ug].size(); ++k) {
      EXPECT_EQ(a.options[ug][k].peering, b.options[ug][k].peering);
      EXPECT_EQ(a.options[ug][k].rtt_ms, b.options[ug][k].rtt_ms);
      EXPECT_EQ(a.options[ug][k].distance_km, b.options[ug][k].distance_km);
    }
  }
}

TEST(WorldFixture, SharedWorldIsCachedPerKey) {
  const World& w1 = SharedWorld(17, 100, 6);
  const World& w2 = SharedWorld(17, 100, 6);
  EXPECT_EQ(&w1, &w2);  // same key -> same object, built once

  const World& w3 = SharedWorld(18, 100, 6);
  EXPECT_NE(&w1, &w3);
}

}  // namespace
}  // namespace painter::test
