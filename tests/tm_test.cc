#include <gtest/gtest.h>

#include "core/baselines.h"
#include "tests/world_fixture.h"
#include "util/stats.h"
#include "tm/control.h"
#include "faultsim/failover_scenario.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"

namespace painter::tm {
namespace {

TEST(TmPopTest, AnswersProbesWithoutNat) {
  netsim::Simulator sim;
  TmPop pop{sim, "P", {1}};
  bool replied = false;
  netsim::Packet probe;
  probe.kind = netsim::PacketKind::kProbe;
  probe.probe_id = 7;
  pop.HandleArrival(probe, [&](netsim::Packet reply) {
    EXPECT_EQ(reply.kind, netsim::PacketKind::kProbeReply);
    EXPECT_EQ(reply.probe_id, 7u);
    replied = true;
  });
  sim.Run(1.0);
  EXPECT_TRUE(replied);
  EXPECT_EQ(pop.nat().ActiveBindings(), 0u);
  EXPECT_EQ(pop.stats().probe_packets, 1u);
}

TEST(TmPopTest, DataPacketNatsAndResponds) {
  netsim::Simulator sim;
  TmPop pop{sim, "P", {1}};
  netsim::Packet data;
  data.kind = netsim::PacketKind::kData;
  data.inner = netsim::FlowKey{.src_ip = 10, .dst_ip = 99, .src_port = 1234,
                               .dst_port = 443};
  data.payload_bytes = 100;
  std::optional<netsim::Packet> response;
  pop.HandleArrival(data, [&](netsim::Packet r) { response = r; });
  sim.Run(1.0);
  ASSERT_TRUE(response.has_value());
  // Response is addressed back to the client, swapped 5-tuple.
  EXPECT_EQ(response->inner.src_ip, 99u);
  EXPECT_EQ(response->inner.dst_ip, 10u);
  EXPECT_EQ(response->inner.dst_port, 1234);
  EXPECT_EQ(pop.nat().ActiveBindings(), 1u);
  EXPECT_EQ(pop.stats().responses_sent, 1u);
}

class EdgeFixture {
 public:
  explicit EdgeFixture(std::vector<double> delays,
                       TmEdge::Config cfg = DefaultCfg()) {
    pops_.reserve(delays.size());
    std::vector<TunnelConfig> tunnels;
    for (std::size_t i = 0; i < delays.size(); ++i) {
      pops_.push_back(std::make_unique<TmPop>(
          sim_, "P" + std::to_string(i),
          std::vector<netsim::IpAddr>{static_cast<netsim::IpAddr>(100 + i)}));
      tunnels.push_back(TunnelConfig{
          .name = "t" + std::to_string(i),
          .remote_ip = static_cast<netsim::IpAddr>(100 + i),
          .path = netsim::PathModel::Fixed(delays[i]),
          .pop = pops_.back().get()});
    }
    edge_ = std::make_unique<TmEdge>(sim_, cfg, std::move(tunnels));
  }

  static TmEdge::Config DefaultCfg() {
    TmEdge::Config cfg;
    cfg.delay_jitter = 0.0;  // deterministic unless a test wants jitter
    return cfg;
  }

  netsim::Simulator sim_;
  std::vector<std::unique_ptr<TmPop>> pops_;
  std::unique_ptr<TmEdge> edge_;
};

TEST(TmEdgeTest, SelectsLowestRttTunnel) {
  EdgeFixture f{{0.030, 0.010, 0.020}};
  f.edge_->Start();
  f.sim_.Run(1.0);
  EXPECT_EQ(f.edge_->chosen(), 1);
}

TEST(TmEdgeTest, RttEstimatesMatchPathDelay) {
  EdgeFixture f{{0.015}};
  f.edge_->Start();
  f.sim_.Run(1.0);
  const auto rtt = f.edge_->TunnelRttMs(0);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_NEAR(*rtt, 30.0, 2.0);
}

TEST(TmEdgeTest, HysteresisPreventsSmallSwitches) {
  // Nearly equal tunnels: after the initial selection, no oscillation.
  EdgeFixture f{{0.0100, 0.0101}};
  f.edge_->Start();
  f.sim_.Run(5.0);
  EXPECT_LE(f.edge_->failovers().size(), 1u);
}

TEST(TmEdgeTest, FailoverOnPathDeath) {
  netsim::Simulator sim;
  TmPop pop_a{sim, "A", {1}};
  TmPop pop_b{sim, "B", {2}};
  std::vector<TunnelConfig> tunnels;
  tunnels.push_back(TunnelConfig{.name = "dies",
                                 .remote_ip = 1,
                                 .path = netsim::PathModel::UpThenDown(0.010,
                                                                       2.0),
                                 .pop = &pop_a});
  tunnels.push_back(TunnelConfig{.name = "lives",
                                 .remote_ip = 2,
                                 .path = netsim::PathModel::Fixed(0.020),
                                 .pop = &pop_b});
  auto cfg = EdgeFixture::DefaultCfg();
  TmEdge edge{sim, cfg, std::move(tunnels)};
  edge.Start();
  sim.Run(10.0);
  EXPECT_EQ(edge.chosen(), 1);
  // Detection within a few probe intervals + 1.3 RTT of the failure at t=2.
  bool switched = false;
  for (const auto& ev : edge.failovers()) {
    if (ev.t >= 2.0 && ev.from == 0 && ev.to == 1) {
      switched = true;
      EXPECT_LT(ev.t - 2.0, 0.2);
    }
  }
  EXPECT_TRUE(switched);
}

TEST(TmEdgeTest, FlowPinningImmutable) {
  netsim::Simulator sim;
  TmPop pop_a{sim, "A", {1}};
  TmPop pop_b{sim, "B", {2}};
  std::vector<TunnelConfig> tunnels;
  tunnels.push_back(TunnelConfig{.name = "best-then-dead",
                                 .remote_ip = 1,
                                 .path = netsim::PathModel::UpThenDown(0.010,
                                                                       2.0),
                                 .pop = &pop_a});
  tunnels.push_back(TunnelConfig{.name = "backup",
                                 .remote_ip = 2,
                                 .path = netsim::PathModel::Fixed(0.020),
                                 .pop = &pop_b});
  TmEdge edge{sim, EdgeFixture::DefaultCfg(), std::move(tunnels)};
  edge.Start();
  const netsim::FlowKey flow{.src_ip = 1, .dst_ip = 2, .src_port = 10,
                             .dst_port = 443};
  sim.Schedule(1.0, [&] { edge.StartFlow(flow, 100, 0.05); });
  sim.Run(10.0);
  // The flow was pinned to tunnel 0 at t=1 and stays there even after the
  // failure at t=2 (immutable mapping, §3.2): packets after the death are
  // lost, so delivered < sent, and the recorded tunnel is still 0.
  const auto& stats = edge.flows().at(flow);
  EXPECT_EQ(stats.tunnel, 0);
  EXPECT_EQ(stats.sent, 100u);
  EXPECT_LT(stats.delivered, stats.sent);
  EXPECT_GT(stats.delivered, 0u);
}

TEST(TmEdgeTest, NewFlowsUseNewBest) {
  netsim::Simulator sim;
  TmPop pop_a{sim, "A", {1}};
  TmPop pop_b{sim, "B", {2}};
  std::vector<TunnelConfig> tunnels;
  tunnels.push_back(TunnelConfig{
      .name = "t0",
      .remote_ip = 1,
      .path = netsim::PathModel::UpThenDown(0.010, 2.0),
      .pop = &pop_a});
  tunnels.push_back(TunnelConfig{.name = "t1",
                                 .remote_ip = 2,
                                 .path = netsim::PathModel::Fixed(0.020),
                                 .pop = &pop_b});
  TmEdge edge{sim, EdgeFixture::DefaultCfg(), std::move(tunnels)};
  edge.Start();
  const netsim::FlowKey late{.src_ip = 1, .dst_ip = 2, .src_port = 11,
                             .dst_port = 443};
  sim.Schedule(5.0, [&] { edge.StartFlow(late, 10, 0.01); });
  sim.Run(10.0);
  const auto& stats = edge.flows().at(late);
  EXPECT_EQ(stats.tunnel, 1);
  EXPECT_EQ(stats.delivered, stats.sent);
}

TEST(FailoverScenario, MatchesFig10Shape) {
  FailoverScenarioConfig cfg;
  const auto result = RunFailoverScenario(cfg);

  // The TM-Edge initially chooses the PoP-A unicast prefix (tunnel 1).
  bool chose_unicast_before = false;
  for (const auto& s : result.samples) {
    if (s.t > 5.0 && s.t < 59.0 && s.chosen == 1) chose_unicast_before = true;
  }
  EXPECT_TRUE(chose_unicast_before);

  // Failover happened, quickly, to a PoP-B prefix (tunnel >= 2).
  ASSERT_GE(result.detection_delay_s, 0.0);
  EXPECT_LT(result.detection_delay_s, 0.25);  // paper: ~1 RTT + probe gap
  EXPECT_GE(result.failover_target, 2);

  // Both PoPs saw data traffic.
  EXPECT_GT(result.pop_a_data_packets, 0u);
  EXPECT_GT(result.pop_b_data_packets, 0u);
}

TEST(FailoverScenario, DetectionNearRttTimescale) {
  // Over several jittered runs, median detection should be within a few
  // probe intervals + ~1.3 RTT (paper: typical 1.3 RTT with continuous
  // probing; our probe interval adds up to 10 ms).
  std::vector<double> detections;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FailoverScenarioConfig cfg;
    cfg.run_for_s = 70.0;
    cfg.edge.seed = seed;
    cfg.edge.delay_jitter = 0.05;
    const auto r = RunFailoverScenario(cfg);
    ASSERT_GE(r.detection_delay_s, 0.0);
    detections.push_back(r.detection_delay_s);
  }
  const double median = util::Median(detections);
  const double rtt = 2.0 * 0.014;
  EXPECT_LT(median, 0.010 + 2.5 * rtt);
}

TEST(PrefixDirectoryTest, MapsPrefixesToPops) {
  const test::World& w = test::SharedWorld();
  PrefixDirectory dir{*w.deployment};
  const auto inst = test::MakeInstance(w);
  const auto cfg = core::OnePerPop(*w.deployment, inst, 3);
  dir.Install(cfg);
  EXPECT_EQ(dir.PrefixCount(), cfg.PrefixCount());
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    EXPECT_EQ(dir.PopsOfPrefix(p).size(), 1u);  // one PoP per prefix here
  }
}

TEST(PrefixDirectoryTest, ServiceRestrictionFilters) {
  const test::World& w = test::SharedWorld();
  PrefixDirectory dir{*w.deployment};
  const auto inst = test::MakeInstance(w);
  const auto cfg = core::OnePerPop(*w.deployment, inst, 3);
  dir.Install(cfg);

  const util::ServiceId svc{1};
  // Restrict to the PoP of prefix 0 only.
  dir.RestrictService(svc, dir.PopsOfPrefix(0));
  const auto dests = dir.DestinationsFor(svc);
  ASSERT_FALSE(dests.empty());
  for (const auto p : dests) {
    bool overlaps = false;
    for (const auto pop : dir.PopsOfPrefix(p)) {
      for (const auto want : dir.PopsOfPrefix(0)) {
        if (pop == want) overlaps = true;
      }
    }
    EXPECT_TRUE(overlaps);
  }

  // Unrestricted service sees every prefix.
  EXPECT_EQ(dir.DestinationsFor(util::ServiceId{2}).size(),
            cfg.PrefixCount());
}

}  // namespace
}  // namespace painter::tm
