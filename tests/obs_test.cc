#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tests/json_test_util.h"

namespace painter::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(MetricsRegistryTest, CounterAddAndValue) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("a.b");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(reg.CounterValue("a.b"), 42u);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, CounterMergesAcrossThreads) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("threads.total");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("g");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.Value(), -2.25);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("g"), -2.25);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram(
      "h", HistogramSpec{.min_bound = 1.0, .growth = 2.0, .buckets = 4});
  h.Record(0.5);   // underflow -> bucket 0
  h.Record(1.5);   // [1,2) -> bucket 1
  h.Record(3.0);   // [2,4) -> bucket 2
  h.Record(5.0);   // [4,..) -> bucket 3
  h.Record(1e9);   // overflow clamps to the last bucket
  h.Record(std::nan(""));  // NaN lands in the underflow bucket
  EXPECT_EQ(h.Count(), 6u);
  const auto buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 2u);
}

TEST(MetricsRegistryTest, HistogramMergesAcrossThreads) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("h");
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kRecords; ++i) h.Record(static_cast<double>(i));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kThreads) * kRecords);
  std::uint64_t total = 0;
  for (const std::uint64_t b : h.BucketCounts()) total += b;
  EXPECT_EQ(total, h.Count());
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.GetCounter("name");
  EXPECT_THROW(reg.GetGauge("name"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("name"), std::logic_error);
  reg.GetGauge("g");
  EXPECT_THROW(reg.GetCounter("g"), std::logic_error);
}

TEST(MetricsRegistryTest, UnknownNameThrows) {
  MetricsRegistry reg;
  EXPECT_THROW((void)reg.CounterValue("nope"), std::out_of_range);
  EXPECT_THROW((void)reg.GaugeValue("nope"), std::out_of_range);
}

TEST(MetricsRegistryTest, ResetValuesKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c");
  Gauge& g = reg.GetGauge("g");
  Histogram& h = reg.GetHistogram("h");
  c.Add(7);
  g.Set(3.0);
  h.Record(2.0);
  reg.ResetValues();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  // The same handles keep working after the reset.
  c.Add(2);
  h.Record(1.0);
  EXPECT_EQ(c.Value(), 2u);
  EXPECT_EQ(h.Count(), 1u);
}

TEST(MetricsRegistryTest, JsonIsValidAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b.count").Add(3);
  reg.GetCounter("a.zero");  // registered but never incremented
  reg.GetGauge("g.v").Set(1.5);
  reg.GetHistogram("h.wait",
                   HistogramSpec{.min_bound = 1.0, .growth = 2.0, .buckets = 3})
      .Record(1.5);
  const std::string json = reg.ToJson();
  const test::JsonValue doc = test::ParseJson(json);

  EXPECT_EQ(doc.At("counters").At("b.count").AsNumber(), 3.0);
  EXPECT_EQ(doc.At("counters").At("a.zero").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(doc.At("gauges").At("g.v").AsNumber(), 1.5);
  const test::JsonValue& h = doc.At("histograms").At("h.wait");
  EXPECT_EQ(h.At("count").AsNumber(), 1.0);
  EXPECT_EQ(h.At("min_bound").AsNumber(), 1.0);
  EXPECT_EQ(h.At("growth").AsNumber(), 2.0);
  ASSERT_TRUE(h.At("buckets").IsArray());
  EXPECT_EQ(h.At("buckets").AsArray().size(), 3u);

  // Section entries are sorted by metric name in the raw output.
  EXPECT_LT(json.find("\"a.zero\""), json.find("\"b.count\""));
}

TEST(MetricsRegistryTest, WallClockHistogramUsesWallKeys) {
  MetricsRegistry reg;
  reg.GetHistogram("q.wait_us", HistogramSpec{.min_bound = 1.0,
                                              .growth = 4.0,
                                              .buckets = 4,
                                              .wall_clock = true})
      .Record(10.0);
  const std::string json = reg.ToJson();
  const test::JsonValue doc = test::ParseJson(json);
  const test::JsonValue& h = doc.At("histograms").At("q.wait_us");
  // Value-bearing fields are wall_-prefixed so StripVolatile removes them;
  // the sample count is workload-determined and stays.
  EXPECT_TRUE(h.Has("wall_buckets"));
  EXPECT_TRUE(h.Has("wall_sum"));
  EXPECT_FALSE(h.Has("buckets"));
  EXPECT_FALSE(h.Has("sum"));
  EXPECT_EQ(h.At("count").AsNumber(), 1.0);
}

TEST(RunReportTest, SchemaAndContents) {
  MetricsRegistry reg;
  reg.GetCounter("c").Add(5);

  RunReport report{"unit"};
  report.SetSeed(99);
  report.AddConfig("stubs", 600.0);
  report.AddConfig("mode", std::string{"serial"});
  report.AddPhaseMs("build", 12.5);
  {
    const RunReport::ScopedPhase phase{report, "work"};
  }
  report.AddValue("speedup", 2.0);
  report.AttachMetrics(reg);

  const std::string json = report.ToJson();
  const test::JsonValue doc = test::ParseJson(json);
  EXPECT_EQ(doc.At("schema").AsString(), "painter.bench.v1");
  EXPECT_EQ(doc.At("name").AsString(), "unit");
  EXPECT_EQ(doc.At("seed").AsNumber(), 99.0);
  EXPECT_EQ(doc.At("config").At("stubs").AsNumber(), 600.0);
  EXPECT_EQ(doc.At("config").At("mode").AsString(), "serial");
  const auto& phases = doc.At("phases").AsArray();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].At("name").AsString(), "build");
  EXPECT_DOUBLE_EQ(phases[0].At("wall_ms").AsNumber(), 12.5);
  EXPECT_EQ(phases[1].At("name").AsString(), "work");
  EXPECT_DOUBLE_EQ(doc.At("values").At("speedup").AsNumber(), 2.0);
  EXPECT_EQ(doc.At("metrics").At("counters").At("c").AsNumber(), 5.0);
}

TEST(StripVolatileTest, ZeroesWallClockFieldsOnly) {
  MetricsRegistry reg;
  reg.GetCounter("kept").Add(7);
  reg.GetHistogram("wall.h", HistogramSpec{.wall_clock = true}).Record(3.0);

  RunReport report{"strip"};
  report.AddPhaseMs("phase", 123.456);
  report.AddValue("kept_value", 9.0);
  report.AttachMetrics(reg);

  const std::string stripped = StripVolatile(report.ToJson());
  const test::JsonValue doc = test::ParseJson(stripped);
  EXPECT_DOUBLE_EQ(doc.At("phases").AsArray()[0].At("wall_ms").AsNumber(),
                   0.0);
  EXPECT_DOUBLE_EQ(doc.At("values").At("kept_value").AsNumber(), 9.0);
  const test::JsonValue& h = doc.At("metrics").At("histograms").At("wall.h");
  EXPECT_DOUBLE_EQ(h.At("wall_sum").AsNumber(), 0.0);
  EXPECT_TRUE(h.At("wall_buckets").AsArray().empty());
  EXPECT_EQ(h.At("count").AsNumber(), 1.0);
  EXPECT_EQ(doc.At("metrics").At("counters").At("kept").AsNumber(), 7.0);

  // Idempotent: stripping a stripped document changes nothing.
  EXPECT_EQ(StripVolatile(stripped), stripped);
}

TEST(StripVolatileTest, HandlesTraceEvents) {
  const std::string trace =
      R"([{"name":"a","ph":"X","ts":12.5,"dur":3.25,"pid":1,"tid":0}])";
  const std::string stripped = StripVolatile(trace);
  const test::JsonValue doc = test::ParseJson(stripped);
  EXPECT_DOUBLE_EQ(doc.AsArray()[0].At("ts").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(doc.AsArray()[0].At("dur").AsNumber(), 0.0);
  EXPECT_EQ(doc.AsArray()[0].At("name").AsString(), "a");
}

TEST(TraceTest, EmitsValidChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  TraceSink::Enable(path);
  ASSERT_TRUE(TraceSink::Enabled());
  {
    const TraceSpan outer{"outer"};
    { const TraceSpan inner{"inner", "test"}; }
    TraceSink::Instant("marker");
  }
  TraceSink::Disable();
  EXPECT_FALSE(TraceSink::Enabled());

  const std::string text = ReadFile(path);
  const test::JsonValue doc = test::ParseJson(text);
  ASSERT_TRUE(doc.IsArray());
  const auto& events = doc.AsArray();
  ASSERT_EQ(events.size(), 3u);
  // Spans complete innermost-first; the instant fires before `outer` closes.
  EXPECT_EQ(events[0].At("name").AsString(), "inner");
  EXPECT_EQ(events[0].At("ph").AsString(), "X");
  EXPECT_EQ(events[0].At("cat").AsString(), "test");
  EXPECT_GE(events[0].At("dur").AsNumber(), 0.0);
  EXPECT_EQ(events[1].At("name").AsString(), "marker");
  EXPECT_EQ(events[1].At("ph").AsString(), "i");
  EXPECT_EQ(events[2].At("name").AsString(), "outer");
  for (const auto& e : events) {
    EXPECT_TRUE(e.Has("ts"));
    EXPECT_TRUE(e.Has("pid"));
    EXPECT_TRUE(e.Has("tid"));
  }
}

TEST(TraceTest, DisabledSpansWriteNothing) {
  const std::string path = ::testing::TempDir() + "obs_trace_off.json";
  TraceSink::Enable(path);
  TraceSink::Disable();
  const std::string finalized = ReadFile(path);
  {
    const TraceSpan span{"ignored"};
    TraceSink::Instant("also_ignored");
  }
  EXPECT_EQ(ReadFile(path), finalized);  // file untouched while disabled
  const test::JsonValue doc = test::ParseJson(finalized);
  EXPECT_TRUE(doc.IsArray());
  EXPECT_TRUE(doc.AsArray().empty());
}

TEST(TraceTest, ReEnableReplacesFile) {
  const std::string path = ::testing::TempDir() + "obs_trace_reuse.json";
  TraceSink::Enable(path);
  { const TraceSpan span{"first"}; }
  TraceSink::Enable(path);  // finalizes, then truncates and restarts
  { const TraceSpan span{"second"}; }
  TraceSink::Disable();
  const test::JsonValue doc = test::ParseJson(ReadFile(path));
  ASSERT_EQ(doc.AsArray().size(), 1u);
  EXPECT_EQ(doc.AsArray()[0].At("name").AsString(), "second");
}

}  // namespace
}  // namespace painter::obs
