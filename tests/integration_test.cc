// End-to-end integration: the full PAINTER loop on one world — measure,
// optimize, advertise, learn, steer — validating the cross-module contracts
// the figures rely on.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/sim_environment.h"
#include "dnssim/resolvers.h"
#include "tests/world_fixture.h"
#include "tm/control.h"

namespace painter {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld(23, 250, 10);
    inst_ = test::MakeInstance(w_);
  }
  test::World w_;
  core::ProblemInstance inst_;
};

TEST_F(IntegrationTest, FullLearningLoopRealizesBenefit) {
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 8;
  ocfg.max_learning_iterations = 4;
  core::Orchestrator orch{inst_, ocfg};
  core::SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{5}};
  const auto reports = orch.Learn(env);
  ASSERT_FALSE(reports.empty());

  // Realized improvement is positive and within the possible bound.
  core::GroundTruthEvaluator eval{*w_.deployment, *w_.resolver, *w_.oracle};
  eval.SetConfig(reports.back().config);
  const double realized = eval.MeanImprovementMs(0);
  const double possible = eval.PossibleMeanImprovementMs(*w_.catalog, 0);
  EXPECT_GT(realized, 0.0);
  EXPECT_LE(realized, possible + 1e-6);
  // A decent budget should capture a majority of the possible benefit.
  EXPECT_GT(realized, 0.4 * possible);
}

TEST_F(IntegrationTest, PainterBeatsOnePerPopGroundTruth) {
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 5;
  core::Orchestrator orch{inst_, ocfg};
  core::SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{6}};
  const auto reports = orch.Learn(env);

  core::GroundTruthEvaluator eval{*w_.deployment, *w_.resolver, *w_.oracle};
  eval.SetConfig(reports.back().config);
  const double painter = eval.MeanImprovementMs(0);

  eval.SetConfig(core::OnePerPop(*w_.deployment, inst_, 5));
  const double opp = eval.MeanImprovementMs(0);
  EXPECT_GE(painter, opp - 1e-6);
}

TEST_F(IntegrationTest, PersistenceDynamicBeatsStatic) {
  // Fig. 7's mechanism: across drifting days, dynamic prefix choice holds
  // benefit better than choices frozen at day 0.
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 6;
  core::Orchestrator orch{inst_, ocfg};
  const auto cfg = orch.ComputeConfig();

  core::GroundTruthEvaluator eval{*w_.deployment, *w_.resolver, *w_.oracle};
  eval.SetConfig(cfg);
  const auto day0_choices = eval.Choices(0);
  double dynamic_sum = 0.0;
  double static_sum = 0.0;
  for (int day = 5; day <= 25; day += 5) {
    dynamic_sum += eval.MeanImprovementMs(day);
    static_sum += eval.MeanImprovementStaticMs(day0_choices, day);
  }
  EXPECT_GE(dynamic_sum, static_sum - 1e-9);
}

TEST_F(IntegrationTest, DnsSteeringLosesBenefitOnRealResolvers) {
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 6;
  core::Orchestrator orch{inst_, ocfg};
  const auto cfg = orch.ComputeConfig();

  const auto resolvers = dnssim::AssignResolvers(*w_.deployment, {});
  core::DnsSteeringInput dns{resolvers.resolver_of_ug,
                             resolvers.resolver_supports_ecs};
  const core::RoutingModel model{inst_.UgCount()};
  const double with_dns =
      core::EvaluateDnsSteering(inst_, model, cfg, {}, dns);
  const double per_flow = core::PredictBenefit(inst_, model, cfg, {}).mean_ms;
  EXPECT_LE(with_dns, per_flow + 1e-9);
  EXPECT_GT(per_flow, 0.0);
}

TEST_F(IntegrationTest, ControlChannelSeesOrchestratorConfig) {
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 4;
  core::Orchestrator orch{inst_, ocfg};
  const auto cfg = orch.ComputeConfig();

  tm::PrefixDirectory dir{*w_.deployment};
  dir.Install(cfg);
  EXPECT_EQ(dir.PrefixCount(), cfg.PrefixCount());
  const auto dests = dir.DestinationsFor(util::ServiceId{0});
  EXPECT_EQ(dests.size(), cfg.PrefixCount());
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  auto run = [](std::uint64_t seed) {
    auto w = test::MakeWorld(seed, 120, 6);
    auto inst = test::MakeInstance(w, seed + 100);
    core::OrchestratorConfig ocfg;
    ocfg.prefix_budget = 4;
    core::Orchestrator orch{inst, ocfg};
    const auto cfg = orch.ComputeConfig();
    return orch.Predict(cfg).mean_ms;
  };
  EXPECT_DOUBLE_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace painter
