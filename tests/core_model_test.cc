#include <gtest/gtest.h>

#include "core/problem.h"
#include "core/routing_model.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

// Builds a tiny hand-rolled instance: 2 UGs, 4 sessions.
//   UG0: sessions {0:20ms @100km, 1:50ms @5000km, 2:30ms @800km}, anycast 40.
//   UG1: sessions {1:25ms @300km, 3:60ms @9000km}, anycast 35.
ProblemInstance TinyInstance() {
  ProblemInstance inst;
  inst.ug_weight = {2.0, 1.0};
  inst.anycast_rtt_ms = {40.0, 35.0};
  inst.options = {
      {{util::PeeringId{0}, 20.0, 100.0},
       {util::PeeringId{1}, 50.0, 5000.0},
       {util::PeeringId{2}, 30.0, 800.0}},
      {{util::PeeringId{1}, 25.0, 300.0},
       {util::PeeringId{3}, 60.0, 9000.0}},
  };
  inst.peering_count = 4;
  inst.ugs_with_peering = {{0}, {0, 1}, {0}, {1}};
  inst.total_weight = 3.0;
  return inst;
}

TEST(ProblemInstance, OptionLookup) {
  const auto inst = TinyInstance();
  ASSERT_NE(inst.Option(0, util::PeeringId{2}), nullptr);
  EXPECT_DOUBLE_EQ(inst.Option(0, util::PeeringId{2})->rtt_ms, 30.0);
  EXPECT_EQ(inst.Option(0, util::PeeringId{3}), nullptr);
}

TEST(ProblemInstance, TotalPossibleBenefit) {
  const auto inst = TinyInstance();
  // UG0 best 20 (saves 20, weight 2), UG1 best 25 (saves 10, weight 1).
  EXPECT_NEAR(inst.TotalPossibleBenefitMs(), (2 * 20 + 1 * 10) / 3.0, 1e-9);
}

TEST(Expectation, SingleCandidateExact) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  const util::PeeringId ad[] = {util::PeeringId{0}};
  const auto e = ComputeExpectation(inst, model, 0, ad, {});
  ASSERT_TRUE(e.usable);
  EXPECT_EQ(e.candidate_count, 1u);
  EXPECT_DOUBLE_EQ(e.mean_rtt, 20.0);
  EXPECT_DOUBLE_EQ(e.lower_rtt, 20.0);
  EXPECT_DOUBLE_EQ(e.upper_rtt, 20.0);
  EXPECT_DOUBLE_EQ(e.estimated_rtt, 20.0);
}

TEST(Expectation, NonCompliantPrefixUnusable) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  const util::PeeringId ad[] = {util::PeeringId{3}};
  EXPECT_FALSE(ComputeExpectation(inst, model, 0, ad, {}).usable);
}

TEST(Expectation, MeanOverCandidates) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  const util::PeeringId ad[] = {util::PeeringId{0}, util::PeeringId{2}};
  const auto e = ComputeExpectation(inst, model, 0, ad,
                                    ExpectationParams{.d_reuse_km = 10000});
  ASSERT_TRUE(e.usable);
  EXPECT_EQ(e.candidate_count, 2u);
  EXPECT_DOUBLE_EQ(e.mean_rtt, 25.0);
  EXPECT_DOUBLE_EQ(e.lower_rtt, 20.0);
  EXPECT_DOUBLE_EQ(e.upper_rtt, 30.0);
  // Estimated is inflation-weighted toward the nearer candidate.
  EXPECT_LT(e.estimated_rtt, e.mean_rtt);
}

TEST(Expectation, DreuseExcludesFarCandidates) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  // Sessions 0 (100 km) and 1 (5000 km): with D_reuse = 3000, the far one
  // is assumed unused; expectation collapses to session 0.
  const util::PeeringId ad[] = {util::PeeringId{0}, util::PeeringId{1}};
  const auto e = ComputeExpectation(inst, model, 0, ad,
                                    ExpectationParams{.d_reuse_km = 3000});
  ASSERT_TRUE(e.usable);
  EXPECT_EQ(e.candidate_count, 1u);
  EXPECT_DOUBLE_EQ(e.mean_rtt, 20.0);
}

TEST(Expectation, DreuseKeepsCandidatesWithinThreshold) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  const util::PeeringId ad[] = {util::PeeringId{0}, util::PeeringId{2}};
  const auto e = ComputeExpectation(inst, model, 0, ad,
                                    ExpectationParams{.d_reuse_km = 3000});
  EXPECT_EQ(e.candidate_count, 2u);  // 800 - 100 = 700 < 3000
}

TEST(RoutingModelTest, PreferenceExcludesDominated) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  const util::PeeringId cands[] = {util::PeeringId{0}, util::PeeringId{2}};
  // Observed: UG0 entered via session 2 when 0 and 2 were both advertised —
  // so 0 is dominated whenever 2 is active.
  model.ObservePreference(0, util::PeeringId{2}, cands);
  const auto e = ComputeExpectation(inst, model, 0, cands,
                                    ExpectationParams{.d_reuse_km = 10000});
  ASSERT_TRUE(e.usable);
  EXPECT_EQ(e.candidate_count, 1u);
  EXPECT_DOUBLE_EQ(e.mean_rtt, 30.0);  // only session 2 remains
}

TEST(RoutingModelTest, DominationOnlyWhenWinnerActive) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  const util::PeeringId cands[] = {util::PeeringId{0}, util::PeeringId{2}};
  model.ObservePreference(0, util::PeeringId{2}, cands);
  // Advertise only session 0: session 2 is absent, so no domination applies.
  const util::PeeringId ad[] = {util::PeeringId{0}};
  const auto e = ComputeExpectation(inst, model, 0, ad, {});
  ASSERT_TRUE(e.usable);
  EXPECT_DOUBLE_EQ(e.mean_rtt, 20.0);
}

TEST(RoutingModelTest, NewObservationRetractsOpposite) {
  RoutingModel model{1};
  const util::PeeringId cands[] = {util::PeeringId{0}, util::PeeringId{1}};
  model.ObservePreference(0, util::PeeringId{0}, cands);
  EXPECT_TRUE(model.IsDominated(0, util::PeeringId{1}, cands));
  // Routing changed: now 1 is observed chosen.
  model.ObservePreference(0, util::PeeringId{1}, cands);
  EXPECT_TRUE(model.IsDominated(0, util::PeeringId{0}, cands));
  EXPECT_FALSE(model.IsDominated(0, util::PeeringId{1}, cands));
}

TEST(RoutingModelTest, MeasuredLatencyOverridesEstimate) {
  const auto inst = TinyInstance();
  RoutingModel model{2};
  model.ObserveLatency(0, util::PeeringId{0}, 15.0);
  const util::PeeringId ad[] = {util::PeeringId{0}};
  const auto e = ComputeExpectation(inst, model, 0, ad, {});
  EXPECT_DOUBLE_EQ(e.mean_rtt, 15.0);
}

TEST(RoutingModelTest, PreferenceCountTracksPairs) {
  RoutingModel model{2};
  EXPECT_EQ(model.PreferenceCount(), 0u);
  const util::PeeringId cands[] = {util::PeeringId{0}, util::PeeringId{1},
                                   util::PeeringId{2}};
  model.ObservePreference(1, util::PeeringId{0}, cands);
  EXPECT_EQ(model.PreferenceCount(), 2u);
  // Re-observing the same choice must not double count...
  model.ObservePreference(1, util::PeeringId{0}, cands);
  EXPECT_EQ(model.PreferenceCount(), 2u);
  // ...and a contradicting observation retracts the opposite pair, so the
  // running count stays consistent with the stored pairs: 0>1 is replaced by
  // 1>0 while 1>2 is added (0>2 remains).
  model.ObservePreference(1, util::PeeringId{1}, cands);
  EXPECT_EQ(model.PreferenceCount(), 3u);
}

TEST(RoutingModelTest, HasPreferencesPerUg) {
  RoutingModel model{3};
  EXPECT_FALSE(model.HasPreferences(0));
  const util::PeeringId cands[] = {util::PeeringId{4}, util::PeeringId{9}};
  model.ObservePreference(2, util::PeeringId{4}, cands);
  EXPECT_TRUE(model.HasPreferences(2));
  EXPECT_FALSE(model.HasPreferences(0));  // other UGs unaffected
  // Measured latencies alone don't constitute preferences.
  model.ObserveLatency(0, util::PeeringId{4}, 12.0);
  EXPECT_FALSE(model.HasPreferences(0));
}

TEST(BuildInstance, MeasuredInstanceConsistentWithWorld) {
  const test::World& w = test::SharedWorld();
  const auto inst = test::MakeInstance(w);
  EXPECT_EQ(inst.UgCount(), w.deployment->ugs().size());
  EXPECT_EQ(inst.peering_count, w.deployment->peerings().size());
  EXPECT_GT(inst.total_weight, 0.0);
  // Options are exactly the compliant sets.
  for (const auto& ug : w.deployment->ugs()) {
    EXPECT_EQ(inst.options[ug.id.value()].size(),
              w.catalog->CompliantPeerings(ug.id).size());
  }
  // Measured RTTs are bounded below by the oracle's truth.
  for (const auto& opt : inst.options[0]) {
    EXPECT_GE(opt.rtt_ms,
              w.oracle->TrueRtt(util::UgId{0}, opt.peering).count());
  }
}

TEST(BuildInstance, InvertedIndexMatchesOptions) {
  const test::World& w = test::SharedWorld();
  const auto inst = test::MakeInstance(w);
  for (std::uint32_t g = 0; g < inst.peering_count; ++g) {
    for (std::uint32_t u : inst.ugs_with_peering[g]) {
      EXPECT_NE(inst.Option(u, util::PeeringId{g}), nullptr);
    }
  }
}

TEST(BuildInstance, EstimatedInstanceCoversSubset) {
  const test::World& w = test::SharedWorld();
  const measure::GeoTargetCatalog targets{*w.oracle, {}};
  util::Rng rng{77};
  const auto est = core::BuildEstimatedInstance(
      w.internet(), *w.deployment, *w.catalog, *w.resolver, *w.oracle, targets,
      rng, 450.0);
  const auto full = test::MakeInstance(w);
  for (std::uint32_t u = 0; u < est.UgCount(); ++u) {
    EXPECT_LE(est.options[u].size(), full.options[u].size());
  }
}

}  // namespace
}  // namespace painter::core
