// Workload property suite: the determinism and safety contracts the ISSUE
// pins down.
//
//  - Trace byte-identity: the same (seed, profiles) serialize to identical
//    bytes at 1, 2, and 4 generation threads, and survive a save/load
//    round-trip bit-for-bit.
//  - Store correctness: the sharded open-addressing store agrees with a
//    std::unordered_map reference model under randomized insert / erase /
//    batched-expiry churn that forces rehashes, and a pinned value written
//    at insertion never changes while the flow lives (pinning immutability,
//    §3.2).
//  - Policy safety: neither policy ever returns a tunnel whose view is
//    down, across randomized view sets and load states.
//  - Engine determinism: two runs of the same replay produce identical
//    stats.
//  - Chaos under load: random fault plans with the workload engine driving
//    traffic keep all four §5.2.3 invariants and the policy contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "netsim/packet.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"
#include "util/hashmix.h"
#include "util/rng.h"
#include "workload/chaos_load.h"
#include "workload/engine.h"
#include "workload/flow_store.h"
#include "workload/load.h"
#include "workload/trace.h"

namespace painter::workload {
namespace {

TEST(TraceProperty, ByteIdenticalAcrossThreadCounts) {
  const auto profiles = SyntheticUgProfiles(48, 21);
  TraceConfig tc;
  tc.seed = 21;
  tc.duration_s = 180.0;
  tc.mean_flows_per_s = 60.0;

  tc.num_threads = 1;
  const std::string one = SerializeTrace(GenerateTrace(tc, profiles));
  tc.num_threads = 2;
  const std::string two = SerializeTrace(GenerateTrace(tc, profiles));
  tc.num_threads = 4;
  const std::string four = SerializeTrace(GenerateTrace(tc, profiles));

  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_GT(one.size(), 32u);  // header + events, not an empty trace

  // Different seeds must diverge (the identity is not vacuous).
  tc.seed = 22;
  tc.num_threads = 1;
  EXPECT_NE(one, SerializeTrace(GenerateTrace(tc, profiles)));
}

TEST(TraceProperty, SaveLoadRoundTripsBitForBit) {
  TraceConfig tc;
  tc.seed = 33;
  tc.duration_s = 60.0;
  tc.mean_flows_per_s = 80.0;
  const Trace trace = GenerateTrace(tc, SyntheticUgProfiles(16, 33));
  ASSERT_GT(trace.events.size(), 0u);

  std::stringstream buf;
  SaveTrace(trace, buf);
  const Trace loaded = LoadTrace(buf);
  EXPECT_EQ(loaded.seed, trace.seed);
  EXPECT_EQ(loaded.duration_us, trace.duration_us);
  ASSERT_EQ(loaded.events.size(), trace.events.size());
  EXPECT_EQ(loaded.events, trace.events);
  EXPECT_EQ(SerializeTrace(loaded), SerializeTrace(trace));
  EXPECT_EQ(TraceChecksum(loaded), TraceChecksum(trace));

  std::stringstream bad{"not a trace"};
  EXPECT_THROW((void)LoadTrace(bad), std::runtime_error);
}

netsim::FlowKey RandomKey(util::Rng& rng, std::uint32_t space) {
  return netsim::FlowKey{
      .src_ip = static_cast<netsim::IpAddr>(rng.Index(space)),
      .dst_ip = 0x08080808u,
      .src_port = static_cast<netsim::Port>(rng.Index(4096)),
      .dst_port = 443,
      .proto = 6};
}

// Randomized differential test against std::unordered_map, with a small
// initial capacity so growth and tombstone-compaction rehashes both fire.
TEST(FlowStoreProperty, AgreesWithReferenceModelUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng{util::MixSeed(seed, 0xF10Fu)};
    FlowStoreConfig cfg;
    cfg.shard_bits = 2;
    cfg.min_shard_capacity = 8;
    FlowStore<std::uint64_t> store{cfg};
    std::unordered_map<netsim::FlowKey, std::uint64_t> ref;

    for (int op = 0; op < 6000; ++op) {
      const double r = rng.Uniform01();
      if (r < 0.6) {
        const netsim::FlowKey key = RandomKey(rng, 2000);
        // Value written at first insertion; identical on both sides and —
        // pinning immutability — never rewritten afterwards.
        const std::uint64_t pinned = util::MixSeed(seed, op);
        std::uint64_t& slot = store.Upsert(key);
        auto [it, inserted] = ref.emplace(key, pinned);
        if (inserted) {
          EXPECT_EQ(slot, 0u);  // fresh entry is value-initialized
          slot = pinned;
        } else {
          EXPECT_EQ(slot, it->second);  // the pin survived the churn
        }
      } else if (r < 0.9) {
        const netsim::FlowKey key = RandomKey(rng, 2000);
        EXPECT_EQ(store.Erase(key), ref.erase(key) > 0);
      } else {
        // Batched expiry of a pseudo-random stripe of the key space.
        const std::uint32_t stripe = static_cast<std::uint32_t>(rng.Index(7));
        const auto pred = [stripe](const netsim::FlowKey& k) {
          return k.src_ip % 7 == stripe;
        };
        const std::size_t removed = store.EraseIf(
            [&](const netsim::FlowKey& k, const std::uint64_t&) {
              return pred(k);
            });
        std::size_t ref_removed = 0;
        for (auto it = ref.begin(); it != ref.end();) {
          if (pred(it->first)) {
            it = ref.erase(it);
            ++ref_removed;
          } else {
            ++it;
          }
        }
        EXPECT_EQ(removed, ref_removed);
      }
      ASSERT_EQ(store.size(), ref.size());
    }

    // Full final audit: every surviving pin is intact, SortedItems is the
    // reference content in FlowKey order.
    EXPECT_GT(store.Rehashes(), 0u);
    const auto items = store.SortedItems();
    ASSERT_EQ(items.size(), ref.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) EXPECT_LT(items[i - 1].first, items[i].first);
      const auto it = ref.find(items[i].first);
      ASSERT_NE(it, ref.end());
      EXPECT_EQ(items[i].second, it->second);
    }
  }
}

TEST(PolicyProperty, NeverPicksADownTunnel) {
  const LatencyOnlyPolicy latency;
  const LoadAwarePolicy aware{0.85};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng{util::MixSeed(seed, 0xD0DEu)};
    const std::size_t pops = 1 + rng.Index(4);
    LoadTracker load{std::vector<double>(pops, 1000.0)};
    for (std::size_t p = 0; p < pops; ++p) {
      load.OnAssign(static_cast<int>(p), rng.Uniform(0.0, 1500.0));
    }
    std::vector<TunnelView> views;
    const std::size_t n = rng.Index(8);  // possibly empty
    for (std::size_t i = 0; i < n; ++i) {
      views.push_back(TunnelView{
          .tunnel = static_cast<int>(i),
          .pop = static_cast<int>(rng.Index(pops)),
          .usable = rng.Uniform01() < 0.6,
          .rtt_ms = rng.Uniform(1.0, 50.0)});
    }
    for (const DestinationPolicy* policy :
         {static_cast<const DestinationPolicy*>(&latency),
          static_cast<const DestinationPolicy*>(&aware)}) {
      const int pick = policy->Pick(views, load);
      bool any_usable = false;
      for (const TunnelView& v : views) any_usable = any_usable || v.usable;
      if (pick < 0) {
        EXPECT_FALSE(any_usable) << policy->name() << " seed " << seed;
      } else {
        ASSERT_LT(static_cast<std::size_t>(pick), views.size());
        EXPECT_TRUE(views[static_cast<std::size_t>(pick)].usable)
            << policy->name() << " seed " << seed;
      }
    }
  }
}

WorkloadEngine::Stats RunReplayOnce(std::uint64_t seed) {
  netsim::Simulator sim;
  tm::TmPop pop_a{sim, "A", {0x02020202u}};
  tm::TmPop pop_b{sim, "B", {0x03030303u}};
  std::vector<tm::TunnelConfig> tunnels;
  tunnels.push_back(tm::TunnelConfig{.name = "t0",
                                     .remote_ip = 0x0a0a0a00u,
                                     .path = netsim::PathModel::Fixed(0.012),
                                     .pop = &pop_a});
  tunnels.push_back(tm::TunnelConfig{.name = "t1",
                                     .remote_ip = 0x0a0a0a01u,
                                     .path = netsim::PathModel::Fixed(0.018),
                                     .pop = &pop_b});
  tm::TmEdge edge{sim, {.seed = seed}, std::move(tunnels)};

  TraceConfig tc;
  tc.seed = seed;
  tc.duration_s = 20.0;
  tc.mean_flows_per_s = 25.0;
  tc.size_max_bytes = 1.0e7;
  const Trace trace = GenerateTrace(tc, SyntheticUgProfiles(12, seed));

  LoadTracker load{{2.0e5, 2.0e5}};
  const LoadAwarePolicy policy{0.85};
  EngineConfig ecfg;
  ecfg.flow_bytes_per_s = 20.0e3;
  ecfg.min_duration_s = 1.0;
  ecfg.max_duration_s = 8.0;
  WorkloadEngine engine{sim, edge, {0, 1}, load, policy, trace, ecfg};
  edge.Start();
  engine.Start();
  sim.Run(tc.duration_s + 15.0);
  return engine.stats();
}

TEST(EngineProperty, ReplayIsSeedDeterministic) {
  for (std::uint64_t seed : {2ULL, 9ULL}) {
    const WorkloadEngine::Stats a = RunReplayOnce(seed);
    const WorkloadEngine::Stats b = RunReplayOnce(seed);
    EXPECT_GT(a.started, 0u);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.started, b.started);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.peak_concurrent, b.peak_concurrent);
    EXPECT_EQ(a.down_picks, 0u);
    EXPECT_EQ(a.bytes_offered, b.bytes_offered);
    EXPECT_EQ(a.max_utilization, b.max_utilization);
  }
}

// Random fault plans with the workload engine attached: the four §5.2.3
// invariants and the policy contract must hold, and the run must actually
// exercise load (flows admitted, trace non-empty).
TEST(ChaosLoadProperty, InvariantsHoldUnderWorkload) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ChaosLoadResult r = RunChaosUnderLoad(seed);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": "
                        << (r.invariants.violations.empty()
                                ? (r.load_violations.empty()
                                       ? ""
                                       : r.load_violations.front())
                                : r.invariants.violations.front());
    EXPECT_GT(r.trace_events, 0u);
    EXPECT_GT(r.load_stats.started, 0u);
    EXPECT_EQ(r.load_stats.down_picks, 0u);
    EXPECT_GT(r.invariants.checks, 0u);
  }
}

// Same chaos seed twice: byte-identical outcome (the attach hook must not
// perturb determinism).
TEST(ChaosLoadProperty, RunsAreSeedDeterministic) {
  const ChaosLoadResult a = RunChaosUnderLoad(3);
  const ChaosLoadResult b = RunChaosUnderLoad(3);
  EXPECT_EQ(a.load_stats.started, b.load_stats.started);
  EXPECT_EQ(a.load_stats.completed, b.load_stats.completed);
  EXPECT_EQ(a.load_stats.peak_concurrent, b.load_stats.peak_concurrent);
  EXPECT_EQ(a.load_stats.max_utilization, b.load_stats.max_utilization);
  EXPECT_EQ(a.invariants.checks, b.invariants.checks);
  EXPECT_EQ(a.invariants.violations, b.invariants.violations);
}

}  // namespace
}  // namespace painter::workload
