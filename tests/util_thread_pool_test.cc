#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace painter::util {
namespace {

TEST(EffectiveThreadsTest, ZeroResolvesToAtLeastOne) {
  EXPECT_GE(EffectiveThreads(0), 1u);
  EXPECT_EQ(EffectiveThreads(1), 1u);
  EXPECT_EQ(EffectiveThreads(8), 8u);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // join drains the queue
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  int calls = 0;
  const auto fn = [&](std::size_t, std::size_t) { ++calls; };
  ParallelFor(8, 5, 5, 4, fn);
  ParallelFor(8, 7, 3, 4, fn);  // begin > end is an empty range too
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  ParallelFor(8, 2, 9, 1000, [&](std::size_t b, std::size_t e) {
    chunks.emplace_back(b, e);  // single chunk => no concurrent writers
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{2, 9}));
}

TEST(ParallelForTest, ZeroGrainTreatedAsOne) {
  std::vector<int> hits(10, 0);
  ParallelFor(4, 0, hits.size(), 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(8, 0, kN, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  // The decomposition depends only on grain, so per-index outputs staged
  // into a buffer are bitwise identical at any thread count.
  constexpr std::size_t kN = 513;
  auto run = [&](std::size_t threads) {
    std::vector<double> out(kN, 0.0);
    ParallelFor(threads, 0, kN, 8, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] = std::sin(static_cast<double>(i)) * 1e6;
      }
    });
    return out;
  };
  const auto serial = run(1);
  for (const std::size_t t : {2ul, 3ul, 8ul}) {
    EXPECT_EQ(run(t), serial) << t << " threads";
  }
}

TEST(ParallelForTest, ExceptionPropagatesFromSerialPath) {
  EXPECT_THROW(ParallelFor(1, 0, 10, 2,
                           [](std::size_t b, std::size_t) {
                             if (b >= 4) throw std::runtime_error{"boom"};
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, ExceptionPropagatesFromParallelPath) {
  EXPECT_THROW(ParallelFor(8, 0, 100, 1,
                           [](std::size_t b, std::size_t) {
                             if (b == 57) throw std::runtime_error{"boom"};
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, PoolUsableAfterException) {
  try {
    ParallelFor(8, 0, 64, 1,
                [](std::size_t, std::size_t) { throw std::logic_error{"x"}; });
    FAIL() << "expected throw";
  } catch (const std::logic_error&) {
  }
  std::atomic<int> n{0};
  ParallelFor(8, 0, 64, 1, [&](std::size_t b, std::size_t e) {
    n.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(n.load(), 64);
}

}  // namespace
}  // namespace painter::util
