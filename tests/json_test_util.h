// Minimal recursive-descent JSON parser for tests that validate the
// observability layer's emitted documents (metrics snapshots, run reports,
// Chrome trace files). Test-only: strict enough to reject malformed output,
// small enough to avoid a third-party dependency.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace painter::test {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  [[nodiscard]] bool IsObject() const {
    return std::holds_alternative<JsonObject>(v);
  }
  [[nodiscard]] bool IsArray() const {
    return std::holds_alternative<JsonArray>(v);
  }
  [[nodiscard]] bool IsNumber() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool IsString() const {
    return std::holds_alternative<std::string>(v);
  }

  [[nodiscard]] const JsonObject& AsObject() const {
    return std::get<JsonObject>(v);
  }
  [[nodiscard]] const JsonArray& AsArray() const {
    return std::get<JsonArray>(v);
  }
  [[nodiscard]] double AsNumber() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& AsString() const {
    return std::get<std::string>(v);
  }

  // Object member access; throws if not an object or key absent.
  [[nodiscard]] const JsonValue& At(const std::string& key) const {
    const auto& obj = AsObject();
    const auto it = obj.find(key);
    if (it == obj.end()) {
      throw std::out_of_range{"JSON key not found: " + key};
    }
    return it->second;
  }
  [[nodiscard]] bool Has(const std::string& key) const {
    return IsObject() && AsObject().count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error{"JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what};
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  JsonValue ParseValue() {
    SkipWs();
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return JsonValue{ParseString()};
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      ParseLiteral("null");
      return JsonValue{nullptr};
    }
    return ParseNumber();
  }

  void ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      Fail("bad literal");
    }
    pos_ += lit.size();
  }

  JsonValue ParseBool() {
    if (Peek() == 't') {
      ParseLiteral("true");
      return JsonValue{true};
    }
    ParseLiteral("false");
    return JsonValue{false};
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("bad number");
    const std::string num{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) Fail("bad number: " + num);
    return JsonValue{d};
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Tests only need ASCII round-tripping; decode the code unit and
            // keep the low byte (the emitter only writes \u00XX for controls).
            if (pos_ + 4 > text_.size()) Fail("bad \\u escape");
            const std::string hex{text_.substr(pos_, 4)};
            pos_ += 4;
            out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default:
            Fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonArray arr;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    for (;;) {
      arr.push_back(ParseValue());
      SkipWs();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonObject obj;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    for (;;) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      obj.emplace(std::move(key), ParseValue());
      SkipWs();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline JsonValue ParseJson(std::string_view text) {
  return JsonParser{text}.Parse();
}

}  // namespace painter::test
