#include <gtest/gtest.h>

#include "core/resilience.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld();
    analyzer_ = std::make_unique<ResilienceAnalyzer>(w_.internet(),
                                                     *w_.deployment,
                                                     *w_.catalog);
    results_ = analyzer_->AnalyzeAll();
  }
  test::World w_;
  std::unique_ptr<ResilienceAnalyzer> analyzer_;
  std::vector<UgResilience> results_;
};

TEST_F(ResilienceTest, OneResultPerUg) {
  EXPECT_EQ(results_.size(), w_.deployment->ugs().size());
}

TEST_F(ResilienceTest, SdwanPathsMatchProviderCount) {
  const auto& g = w_.internet().graph;
  for (const auto& ug : w_.deployment->ugs()) {
    const auto& r = results_[ug.id.value()];
    const std::size_t direct =
        w_.deployment->PeeringsOfAs(ug.as).empty() ? 0 : 1;
    // Every provider is reachable under anycast in this world, so paths =
    // providers + direct.
    EXPECT_LE(r.sdwan_paths, g.providers(ug.as).size() + direct);
    EXPECT_GE(r.sdwan_paths, 1u);
  }
}

TEST_F(ResilienceTest, PainterLowerBoundAtMostUpperBound) {
  for (const auto& r : results_) {
    EXPECT_LE(r.painter_paths_lb, r.painter_paths_ub);
  }
}

TEST_F(ResilienceTest, PainterExposesMorePathsForMostUgs) {
  // Fig. 11a: PAINTER - SD-WAN path difference is positive for most UGs.
  std::size_t more = 0;
  for (const auto& r : results_) {
    if (r.painter_paths_lb > r.sdwan_paths) ++more;
  }
  EXPECT_GT(more, results_.size() / 2);
}

TEST_F(ResilienceTest, AvoidFractionsInRange) {
  for (const auto& r : results_) {
    EXPECT_GE(r.sdwan_avoid_frac, 0.0);
    EXPECT_LE(r.sdwan_avoid_frac, 1.0);
    EXPECT_GE(r.painter_avoid_frac, 0.0);
    EXPECT_LE(r.painter_avoid_frac, 1.0);
  }
}

TEST_F(ResilienceTest, PainterAvoidsAtLeastAsManyAsesOnAverage) {
  // Fig. 11b: PAINTER's avoidance CDF dominates SD-WAN's.
  double painter_sum = 0.0;
  double sdwan_sum = 0.0;
  for (const auto& r : results_) {
    painter_sum += r.painter_avoid_frac;
    sdwan_sum += r.sdwan_avoid_frac;
  }
  EXPECT_GE(painter_sum, sdwan_sum - 1e-9);
}

TEST_F(ResilienceTest, DirectlyConnectedUgAvoidsAllViaSdwan) {
  for (const auto& ug : w_.deployment->ugs()) {
    if (!w_.deployment->PeeringsOfAs(ug.as).empty()) {
      EXPECT_DOUBLE_EQ(results_[ug.id.value()].sdwan_avoid_frac, 1.0);
    }
  }
}

TEST_F(ResilienceTest, PainterPopsPositive) {
  std::size_t with_pops = 0;
  for (const auto& r : results_) {
    if (r.painter_pops > 0) ++with_pops;
  }
  EXPECT_GT(with_pops, results_.size() * 9 / 10);
}

}  // namespace
}  // namespace painter::core
