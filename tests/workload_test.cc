// Unit tests for the workload layer: the sharded flow-pinning store, the
// trace generator's distributions, capacity accounting, destination
// policies, and an end-to-end engine smoke run against a small TM-Edge.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "netsim/packet.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "tests/world_fixture.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"
#include "workload/engine.h"
#include "workload/flow_store.h"
#include "workload/load.h"
#include "workload/trace.h"

namespace painter::workload {
namespace {

netsim::FlowKey Key(std::uint32_t i) {
  return netsim::FlowKey{.src_ip = 0x0a000000u + i,
                         .dst_ip = 0x08080808u,
                         .src_port = static_cast<netsim::Port>(i & 0xFFFF),
                         .dst_port = 443,
                         .proto = 6};
}

TEST(FlowStoreTest, UpsertFindEraseRoundtrip) {
  FlowStore<int> store;
  EXPECT_TRUE(store.empty());
  store.Upsert(Key(1)) = 10;
  store.Upsert(Key(2)) = 20;
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.Find(Key(1)), nullptr);
  EXPECT_EQ(*store.Find(Key(1)), 10);
  EXPECT_EQ(store.at(Key(2)), 20);
  EXPECT_EQ(store.Find(Key(3)), nullptr);
  EXPECT_THROW(store.at(Key(3)), std::out_of_range);

  // Upsert on an existing key returns the same entry, not a fresh one.
  store.Upsert(Key(1)) += 5;
  EXPECT_EQ(store.at(Key(1)), 15);
  EXPECT_EQ(store.size(), 2u);

  EXPECT_TRUE(store.Erase(Key(1)));
  EXPECT_FALSE(store.Erase(Key(1)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find(Key(1)), nullptr);
}

TEST(FlowStoreTest, GrowsAndPreservesEntriesAcrossRehash) {
  FlowStoreConfig cfg;
  cfg.shard_bits = 2;
  cfg.min_shard_capacity = 8;
  FlowStore<std::uint32_t> store{cfg};
  constexpr std::uint32_t kN = 20'000;
  for (std::uint32_t i = 0; i < kN; ++i) store.Upsert(Key(i)) = i * 3u;
  EXPECT_EQ(store.size(), kN);
  EXPECT_GT(store.Rehashes(), 0u);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_NE(store.Find(Key(i)), nullptr) << i;
    EXPECT_EQ(*store.Find(Key(i)), i * 3u);
  }
}

TEST(FlowStoreTest, EraseIfSweepsInBatch) {
  FlowStore<std::uint32_t> store;
  for (std::uint32_t i = 0; i < 1000; ++i) store.Upsert(Key(i)) = i;
  const std::size_t removed = store.EraseIf(
      [](const netsim::FlowKey&, const std::uint32_t& v) { return v % 2 == 0; });
  EXPECT_EQ(removed, 500u);
  EXPECT_EQ(store.size(), 500u);
  EXPECT_EQ(store.Find(Key(0)), nullptr);
  ASSERT_NE(store.Find(Key(1)), nullptr);
}

TEST(FlowStoreTest, SortedItemsIsKeyOrderedAndComplete) {
  FlowStore<std::uint32_t> store;
  // Insert in descending order; the snapshot must come back ascending.
  for (std::uint32_t i = 300; i-- > 0;) store.Upsert(Key(i)) = i;
  const auto items = store.SortedItems();
  ASSERT_EQ(items.size(), 300u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].first, Key(static_cast<std::uint32_t>(i)));
    if (i > 0) EXPECT_LT(items[i - 1].first, items[i].first);
  }
}

TEST(FlowStoreTest, TombstoneHeavyShardCompactsWithoutGrowing) {
  FlowStoreConfig cfg;
  cfg.shard_bits = 0;  // one shard
  cfg.min_shard_capacity = 64;
  FlowStore<int> store{cfg};
  // Churn: insert/erase far more keys than capacity; live count stays tiny,
  // so rehashes must reclaim tombstones rather than growing without bound.
  for (std::uint32_t round = 0; round < 2000; ++round) {
    store.Upsert(Key(round)) = 1;
    store.Erase(Key(round));
  }
  EXPECT_EQ(store.size(), 0u);
  EXPECT_LE(store.Capacity(), 256u);
}

TEST(TraceTest, FlowEventDefaultsToZeroAndOrdersByStartTime) {
  const FlowEvent zero{};
  EXPECT_EQ(zero.start_us, 0u);
  EXPECT_EQ(zero.ug, 0u);
  EXPECT_EQ(zero.seq, 0u);
  EXPECT_EQ(zero.bytes, 0u);
  const FlowEvent later{.start_us = 1};
  EXPECT_LT(zero, later);
  EXPECT_EQ(zero, FlowEvent{});
  // The canonical sort is lexicographic (start_us, ug, seq, bytes); ties must
  // fall through to the later members so (ug, seq) uniqueness keeps the order
  // total.
  const FlowEvent base{.start_us = 1, .ug = 2, .seq = 3, .bytes = 4};
  EXPECT_LT(later, base);                                        // ug decides
  EXPECT_LT(base, (FlowEvent{.start_us = 1, .ug = 2, .seq = 7}));  // seq
  EXPECT_LT(base,
            (FlowEvent{.start_us = 1, .ug = 2, .seq = 3, .bytes = 9}));
}

TEST(TraceTest, BoundedParetoStaysInBoundsAndIsMonotone) {
  const double lo = 2e3, hi = 5e8, alpha = 1.3;
  EXPECT_DOUBLE_EQ(BoundedPareto(0.0, lo, hi, alpha), lo);
  // The implementation clamps u at 1 - 1e-12, so the top quantile lands a
  // hair under hi rather than exactly on it.
  EXPECT_NEAR(BoundedPareto(1.0 - 1e-13, lo, hi, alpha), hi, hi * 1e-4);
  double prev = 0.0;
  for (double u = 0.0; u < 1.0; u += 0.05) {
    const double x = BoundedPareto(u, lo, hi, alpha);
    EXPECT_GE(x, lo);
    EXPECT_LE(x, hi * (1.0 + 1e-9));
    EXPECT_GE(x, prev);
    prev = x;
  }
}

TEST(TraceTest, DiurnalFactorPeaksAtPeakHourWithUnitMean) {
  const double depth = 0.6;
  EXPECT_NEAR(DiurnalFactor(14.0 * 3600.0, 14.0, depth), 1.0 + depth, 1e-12);
  EXPECT_NEAR(DiurnalFactor(2.0 * 3600.0, 14.0, depth), 1.0 - depth, 1e-12);
  // Mean over one day is 1 (the cosine integrates to zero).
  double sum = 0.0;
  const int steps = 24 * 60;
  for (int i = 0; i < steps; ++i) {
    sum += DiurnalFactor(i * 60.0, 9.5, depth);
  }
  EXPECT_NEAR(sum / steps, 1.0, 1e-9);
}

TEST(TraceTest, GenerateTraceIsSortedUniqueAndSized) {
  TraceConfig tc;
  tc.seed = 5;
  tc.duration_s = 600.0;
  tc.mean_flows_per_s = 40.0;
  const auto profiles = SyntheticUgProfiles(16, 5);
  const Trace trace = GenerateTrace(tc, profiles);
  // Poisson with mean 24000: a +/-20% band is > 10 sigma.
  EXPECT_GT(trace.events.size(), 19'000u);
  EXPECT_LT(trace.events.size(), 29'000u);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1], trace.events[i]);
    EXPECT_NE(trace.events[i - 1], trace.events[i]);  // (ug, seq) unique
  }
  for (const FlowEvent& e : trace.events) {
    EXPECT_LT(e.start_us, trace.duration_us);
    EXPECT_GE(e.bytes, static_cast<std::uint64_t>(tc.size_min_bytes));
    EXPECT_LE(e.bytes, static_cast<std::uint64_t>(tc.size_max_bytes) + 1);
  }
}

TEST(TraceTest, SyntheticProfilesAreSeedDeterministic) {
  const auto a = SyntheticUgProfiles(64, 9);
  const auto b = SyntheticUgProfiles(64, 9);
  const auto c = SyntheticUgProfiles(64, 10);
  ASSERT_EQ(a.size(), 64u);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].weight, b[i].weight);
    EXPECT_EQ(a[i].peak_hour, b[i].peak_hour);
    differs = differs || a[i].weight != c[i].weight;
    EXPECT_GT(a[i].weight, 0.0);
    EXPECT_GE(a[i].peak_hour, 0.0);
    EXPECT_LT(a[i].peak_hour, 24.0);
  }
  EXPECT_TRUE(differs);
}

TEST(TraceTest, ProfilesFromDeploymentFollowWeightsAndLongitude) {
  const test::World& w = test::SharedWorld();
  const auto profiles = UgProfilesFromDeployment(w.internet(), *w.deployment);
  ASSERT_EQ(profiles.size(), w.deployment->ugs().size());
  for (const UgProfile& p : profiles) {
    EXPECT_GT(p.weight, 0.0);
    EXPECT_GE(p.peak_hour, 0.0);
    EXPECT_LT(p.peak_hour, 24.0);
  }
}

TEST(LoadTrackerTest, AccountsAssignReleaseAndClamps) {
  LoadTracker load{{1000.0, 2000.0}};
  EXPECT_EQ(load.PopCount(), 2u);
  load.OnAssign(0, 500.0);
  load.OnAssign(1, 500.0);
  EXPECT_DOUBLE_EQ(load.Utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(load.Utilization(1), 0.25);
  EXPECT_DOUBLE_EQ(load.MaxUtilization(), 0.5);
  load.OnRelease(0, 800.0);  // over-release clamps at zero
  EXPECT_DOUBLE_EQ(load.OfferedBps(0), 0.0);
  // Out-of-range pops are ignored / read as zero.
  load.OnAssign(7, 100.0);
  EXPECT_DOUBLE_EQ(load.Utilization(7), 0.0);
  EXPECT_DOUBLE_EQ(load.Utilization(-1), 0.0);
}

std::vector<TunnelView> Views() {
  return {
      TunnelView{.tunnel = 0, .pop = 0, .usable = true, .rtt_ms = 20.0},
      TunnelView{.tunnel = 1, .pop = 1, .usable = true, .rtt_ms = 10.0},
      TunnelView{.tunnel = 2, .pop = 1, .usable = false, .rtt_ms = 1.0},
      TunnelView{.tunnel = 3, .pop = 0, .usable = true, .rtt_ms = 10.0},
  };
}

TEST(PolicyTest, NamesAndThresholdIdentifyThePolicy) {
  // name() labels report keys; the strings are load-bearing for baselines.
  EXPECT_STREQ(LatencyOnlyPolicy{}.name(), "latency_only");
  const LoadAwarePolicy load_aware{0.7};
  EXPECT_STREQ(load_aware.name(), "load_aware");
  EXPECT_DOUBLE_EQ(load_aware.threshold(), 0.7);
}

TEST(PolicyTest, LatencyOnlyPicksLowestRttWithLowIndexTieBreak) {
  LoadTracker load{{1000.0, 1000.0}};
  const LatencyOnlyPolicy policy;
  // Tunnels 1 and 3 tie at 10 ms; the lower index wins. Tunnel 2 is faster
  // but down, so it must never be picked.
  EXPECT_EQ(policy.Pick(Views(), load), 1);
}

TEST(PolicyTest, LatencyOnlyReturnsMinusOneWhenNothingUsable) {
  LoadTracker load{{1000.0}};
  const LatencyOnlyPolicy policy;
  std::vector<TunnelView> views = Views();
  for (auto& v : views) v.usable = false;
  EXPECT_EQ(policy.Pick(views, load), -1);
}

TEST(PolicyTest, LoadAwareSkipsSaturatedPopAndFallsBack) {
  LoadTracker load{{1000.0, 1000.0}};
  const LoadAwarePolicy policy{0.85};
  // Pop 1 (tunnels 1, 2) over threshold: the pick moves to tunnel 3 (10 ms
  // on pop 0), not tunnel 0 (20 ms on pop 0).
  load.OnAssign(1, 900.0);
  EXPECT_EQ(policy.Pick(Views(), load), 3);
  // Both pops saturated: degrade to latency-only (tunnel 1), never -1.
  load.OnAssign(0, 900.0);
  EXPECT_EQ(policy.Pick(Views(), load), 1);
}

TEST(EngineTest, KeyForIsInjectiveOverUgAndSeq) {
  const auto a = WorkloadEngine::KeyFor(FlowEvent{.ug = 1, .seq = 2});
  const auto b = WorkloadEngine::KeyFor(FlowEvent{.ug = 1, .seq = 3});
  const auto c = WorkloadEngine::KeyFor(FlowEvent{.ug = 2, .seq = 2});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

// End-to-end smoke: a small trace replayed against a live TM-Edge. Every
// admitted flow must complete (load gauges drain to zero), nothing may pick
// a down tunnel, and accounting must balance.
TEST(EngineTest, ReplaysTraceAgainstEdgeAndDrains) {
  netsim::Simulator sim;
  tm::TmPop pop_a{sim, "A", {0x02020202u}};
  tm::TmPop pop_b{sim, "B", {0x03030303u}};
  std::vector<tm::TunnelConfig> tunnels;
  tunnels.push_back(tm::TunnelConfig{.name = "t0",
                                     .remote_ip = 0x0a0a0a00u,
                                     .path = netsim::PathModel::Fixed(0.010),
                                     .pop = &pop_a});
  tunnels.push_back(tm::TunnelConfig{.name = "t1",
                                     .remote_ip = 0x0a0a0a01u,
                                     .path = netsim::PathModel::Fixed(0.020),
                                     .pop = &pop_b});
  tm::TmEdge edge{sim, {.seed = 3}, std::move(tunnels)};

  TraceConfig tc;
  tc.seed = 3;
  tc.duration_s = 10.0;
  tc.mean_flows_per_s = 30.0;
  tc.size_max_bytes = 1.0e6;
  const Trace trace = GenerateTrace(tc, SyntheticUgProfiles(8, 3));
  ASSERT_GT(trace.events.size(), 0u);

  LoadTracker load{{5.0e5, 5.0e5}};
  const LoadAwarePolicy policy{0.85};
  EngineConfig ecfg;
  ecfg.flow_bytes_per_s = 50.0e3;
  ecfg.min_duration_s = 0.5;
  ecfg.max_duration_s = 4.0;
  WorkloadEngine engine{sim, edge, {0, 1}, load, policy, trace, ecfg};
  edge.Start();
  engine.Start();
  sim.Run(tc.duration_s + 10.0);

  const WorkloadEngine::Stats& s = engine.stats();
  EXPECT_EQ(s.arrivals, trace.events.size());
  EXPECT_EQ(s.started + s.rejected, s.arrivals);
  EXPECT_GT(s.started, 0u);
  EXPECT_EQ(s.down_picks, 0u);
  EXPECT_EQ(s.completed, s.started);  // final drain released everything
  EXPECT_EQ(engine.Concurrent(), 0u);
  EXPECT_GT(s.peak_concurrent, 0u);
  EXPECT_DOUBLE_EQ(load.OfferedBps(0), 0.0);
  EXPECT_DOUBLE_EQ(load.OfferedBps(1), 0.0);
  EXPECT_GT(s.max_utilization, 0.0);
}

}  // namespace
}  // namespace painter::workload
