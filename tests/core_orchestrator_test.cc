#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/sim_environment.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld();
    inst_ = test::MakeInstance(w_);
  }
  OrchestratorConfig Cfg(std::size_t budget) {
    OrchestratorConfig cfg;
    cfg.prefix_budget = budget;
    cfg.max_learning_iterations = 3;
    return cfg;
  }
  test::World w_;
  ProblemInstance inst_;
};

TEST_F(OrchestratorTest, RespectsBudget) {
  Orchestrator orch{inst_, Cfg(3)};
  const auto cfg = orch.ComputeConfig();
  EXPECT_LE(cfg.PrefixCount(), 3u);
}

TEST_F(OrchestratorTest, PredictedBenefitNonNegativeAndOrdered) {
  Orchestrator orch{inst_, Cfg(5)};
  const auto cfg = orch.ComputeConfig();
  const auto pred = orch.Predict(cfg);
  EXPECT_GE(pred.lower_ms, 0.0);
  EXPECT_LE(pred.lower_ms, pred.mean_ms + 1e-9);
  EXPECT_LE(pred.mean_ms, pred.upper_ms + 1e-9);
  EXPECT_GE(pred.estimated_ms, pred.lower_ms - 1e-9);
  EXPECT_LE(pred.estimated_ms, pred.upper_ms + 1e-9);
  EXPECT_GT(pred.mean_ms, 0.0);  // some UG must benefit in this world
}

TEST_F(OrchestratorTest, MoreBudgetNeverPredictsWorse) {
  Orchestrator orch{inst_, Cfg(8)};
  const auto cfg = orch.ComputeConfig();
  double prev = -1.0;
  for (std::size_t b = 1; b <= cfg.PrefixCount(); ++b) {
    const auto pred = orch.Predict(Truncate(cfg, b));
    EXPECT_GE(pred.mean_ms, prev - 1e-9);
    prev = pred.mean_ms;
  }
}

TEST_F(OrchestratorTest, EveryAdvertisedSessionHasAUser) {
  Orchestrator orch{inst_, Cfg(4)};
  const auto cfg = orch.ComputeConfig();
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    for (const auto sid : cfg.Sessions(p)) {
      EXPECT_FALSE(inst_.ugs_with_peering[sid.value()].empty());
    }
  }
}

TEST_F(OrchestratorTest, ReuseDisabledGivesSingletonPrefixes) {
  auto cfg = Cfg(4);
  cfg.enable_reuse = false;
  Orchestrator orch{inst_, cfg};
  const auto result = orch.ComputeConfig();
  for (std::size_t p = 0; p < result.PrefixCount(); ++p) {
    EXPECT_EQ(result.Sessions(p).size(), 1u);
  }
}

TEST_F(OrchestratorTest, ReuseUsesFewerPrefixesForSameBenefit) {
  // With reuse enabled, the same budget should predict at least the benefit
  // of the no-reuse ablation (it strictly generalizes it).
  Orchestrator with{inst_, Cfg(4)};
  auto cfg = Cfg(4);
  cfg.enable_reuse = false;
  Orchestrator without{inst_, cfg};
  const auto pw = with.Predict(with.ComputeConfig());
  const auto po = without.Predict(without.ComputeConfig());
  EXPECT_GE(pw.mean_ms, po.mean_ms - 1e-9);
}

TEST_F(OrchestratorTest, LearnImprovesOrHolds) {
  Orchestrator orch{inst_, Cfg(5)};
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{9}};
  const auto reports = orch.Learn(env);
  ASSERT_FALSE(reports.empty());
  // The best realized benefit across iterations >= the un-learned first
  // iteration (learning may transiently dip while digesting surprising
  // observations, but must not be strictly harmful overall).
  double best = 0.0;
  for (const auto& r : reports) best = std::max(best, r.realized_ms);
  EXPECT_GE(best, reports.front().realized_ms - 1e-6);
  for (const auto& r : reports) {
    EXPECT_GE(r.realized_ms, 0.0);
    EXPECT_LE(r.prefixes_used, 5u);
  }
}

TEST_F(OrchestratorTest, LearningShrinksUncertainty) {
  Orchestrator orch{inst_, Cfg(5)};
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{9}};
  const auto reports = orch.Learn(env);
  ASSERT_FALSE(reports.empty());
  // Some learned iteration must be at least as certain as the unlearned
  // first one (observations replace equal-likelihood assumptions; individual
  // iterations can widen if the greedy reuses more aggressively).
  const auto& first = reports.front().predicted;
  double narrowest = first.upper_ms - first.lower_ms;
  for (const auto& r : reports) {
    narrowest = std::min(narrowest, r.predicted.upper_ms - r.predicted.lower_ms);
  }
  EXPECT_LE(narrowest, first.upper_ms - first.lower_ms + 1e-6);
}

TEST_F(OrchestratorTest, AbsorbRecordsObservations) {
  Orchestrator orch{inst_, Cfg(3)};
  const auto cfg = orch.ComputeConfig();
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{4}};
  const auto obs = env.Execute(cfg);
  EXPECT_EQ(orch.model().PreferenceCount(), 0u);
  orch.Absorb(cfg, obs);
  // With multi-session prefixes and many UGs, some preference must be learned
  // unless every prefix is a singleton.
  bool any_multi = false;
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    if (cfg.Sessions(p).size() > 1) any_multi = true;
  }
  if (any_multi) {
    EXPECT_GT(orch.model().PreferenceCount(), 0u);
  }
}

TEST_F(OrchestratorTest, LearningDisabledDoesNotTouchModel) {
  auto c = Cfg(3);
  c.enable_learning = false;
  Orchestrator orch{inst_, c};
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{4}};
  const auto reports = orch.Learn(env);
  EXPECT_EQ(reports.size(), 1u);
  EXPECT_EQ(orch.model().PreferenceCount(), 0u);
}

TEST_F(OrchestratorTest, ZeroBudgetYieldsEmptyConfig) {
  Orchestrator orch{inst_, Cfg(0)};
  const auto cfg = orch.ComputeConfig();
  EXPECT_EQ(cfg.PrefixCount(), 0u);
  EXPECT_DOUBLE_EQ(orch.Predict(cfg).mean_ms, 0.0);
}

TEST_F(OrchestratorTest, ComputeConfigIdenticalAcrossThreadCounts) {
  // The parallel CELF seeding must be byte-identical to the serial path:
  // per-peering marginals are computed independently and committed to the
  // heap serially in peering order.
  auto run = [&](std::size_t threads) {
    auto c = Cfg(6);
    c.num_threads = threads;
    Orchestrator orch{inst_, c};
    return orch.ComputeConfig();
  };
  const auto ref = run(1);
  ASSERT_GT(ref.PrefixCount(), 0u);
  for (const std::size_t t : {2ul, 8ul}) {
    const auto got = run(t);
    ASSERT_EQ(got.PrefixCount(), ref.PrefixCount()) << t << " threads";
    for (std::size_t p = 0; p < ref.PrefixCount(); ++p) {
      EXPECT_EQ(got.Sessions(p), ref.Sessions(p))
          << "prefix " << p << " at " << t << " threads";
    }
  }
}

TEST_F(OrchestratorTest, PredictBitIdenticalAcrossThreadCounts) {
  auto base = Cfg(5);
  base.num_threads = 1;
  Orchestrator serial{inst_, base};
  const auto cfg = serial.ComputeConfig();
  const auto ref = serial.Predict(cfg);
  for (const std::size_t t : {2ul, 8ul}) {
    auto c = Cfg(5);
    c.num_threads = t;
    Orchestrator orch{inst_, c};
    const auto got = orch.Predict(cfg);
    EXPECT_EQ(got.lower_ms, ref.lower_ms) << t << " threads";
    EXPECT_EQ(got.mean_ms, ref.mean_ms) << t << " threads";
    EXPECT_EQ(got.estimated_ms, ref.estimated_ms) << t << " threads";
    EXPECT_EQ(got.upper_ms, ref.upper_ms) << t << " threads";
  }
}

TEST_F(OrchestratorTest, LearnIdenticalAcrossThreadCounts) {
  auto run = [&](std::size_t threads) {
    auto c = Cfg(4);
    c.num_threads = threads;
    Orchestrator orch{inst_, c};
    SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{9}};
    return orch.Learn(env);
  };
  const auto ref = run(1);
  const auto got = run(8);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].realized_ms, ref[i].realized_ms) << "iteration " << i;
    EXPECT_EQ(got[i].predicted.mean_ms, ref[i].predicted.mean_ms);
    EXPECT_EQ(got[i].prefixes_used, ref[i].prefixes_used);
  }
}

TEST(LearningTerminationTest, NegativeButImprovingDoesNotStop) {
  // Regression: with `best` initialized to 0 and a multiplicative-only
  // margin, an all-negative benefit sequence never advanced the best marker
  // and learning quit after `patience` rounds even while still improving.
  std::vector<double> realized;
  for (int i = 0; i < 6; ++i) {
    realized.push_back(-10.0 + i);  // strictly improving by 1 ms per round
    EXPECT_FALSE(LearningShouldStop(realized, 0.01, 1e-3, 2))
        << "after " << realized.size() << " reports";
  }
}

TEST(LearningTerminationTest, FlatNegativeStopsAfterPatience) {
  std::vector<double> realized{-3.0};
  EXPECT_FALSE(LearningShouldStop(realized, 0.01, 1e-3, 2));
  realized.push_back(-3.0);
  EXPECT_FALSE(LearningShouldStop(realized, 0.01, 1e-3, 2));
  realized.push_back(-3.0);
  EXPECT_TRUE(LearningShouldStop(realized, 0.01, 1e-3, 2));
}

TEST(LearningTerminationTest, ZeroBaselineNeedsAbsoluteEpsilon) {
  // Regression: at best == 0 the multiplicative tolerance is degenerate —
  // any ε > 0 used to count as an improvement and reset the patience clock.
  const std::vector<double> realized{0.0, 1e-9, 2e-9};
  EXPECT_TRUE(LearningShouldStop(realized, 0.01, 1e-3, 2));
}

TEST(LearningTerminationTest, RealImprovementResetsPatience) {
  const std::vector<double> improving{1.0, 1.0, 5.0};
  EXPECT_FALSE(LearningShouldStop(improving, 0.01, 1e-3, 2));
  const std::vector<double> flat{1.0, 5.0, 5.0, 5.0};
  EXPECT_TRUE(LearningShouldStop(flat, 0.01, 1e-3, 2));
}

TEST(AdvertisementConfigTest, AddAndQuery) {
  AdvertisementConfig cfg;
  const auto p = cfg.AddPrefix({util::PeeringId{3}, util::PeeringId{1},
                                util::PeeringId{3}});
  EXPECT_EQ(cfg.Sessions(p).size(), 2u);  // deduped
  EXPECT_EQ(cfg.Sessions(p).front(), util::PeeringId{1});  // sorted
  EXPECT_TRUE(cfg.Contains(p, util::PeeringId{3}));
  EXPECT_FALSE(cfg.Contains(p, util::PeeringId{2}));
  cfg.AddToPrefix(p, util::PeeringId{2});
  EXPECT_TRUE(cfg.Contains(p, util::PeeringId{2}));
  EXPECT_EQ(cfg.AnnouncementCount(), 3u);
  EXPECT_EQ(cfg.NonEmptyPrefixCount(), 1u);
}

TEST(SimEnvironmentTest, ObservationsMatchResolver) {
  const test::World& w = test::SharedWorld();
  SimEnvironment env{*w.resolver, *w.oracle, util::Rng{2}};
  AdvertisementConfig cfg;
  const util::PeeringId transit = w.deployment->TransitPeerings().front();
  cfg.AddPrefix({transit});
  const auto obs = env.Execute(cfg);
  ASSERT_EQ(obs.size(), 1u);
  const auto expected = w.resolver->Resolve(cfg.Sessions(0));
  for (std::uint32_t u = 0; u < expected.size(); ++u) {
    EXPECT_EQ(obs[0].ingress_of_ug[u], expected[u]);
    if (expected[u].has_value()) {
      EXPECT_GE(obs[0].rtt_ms_of_ug[u],
                w.oracle->TrueRtt(util::UgId{u}, *expected[u]).count());
    }
  }
}

}  // namespace
}  // namespace painter::core
