// Cross-module invariants over a sweep of deployment shapes: whatever the
// PoP count, peering density, or seed, the wired-up world must be coherent —
// these are the contracts every bench and experiment silently relies on.
#include <gtest/gtest.h>

#include <set>

#include "bgpsim/dynamics.h"
#include "tests/world_fixture.h"

namespace painter {
namespace {

struct WorldShape {
  std::uint64_t seed;
  std::size_t stubs;
  std::size_t pops;
};

class WorldInvariantsTest : public ::testing::TestWithParam<WorldShape> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    w_ = test::MakeWorld(p.seed, p.stubs, p.pops);
  }
  test::World w_;
};

TEST_P(WorldInvariantsTest, CloudPresentAtEveryPopMetro) {
  const auto& info = w_.internet().graph.info(w_.deployment->cloud_as());
  for (const auto& pop : w_.deployment->pops()) {
    EXPECT_TRUE(std::find(info.presence.begin(), info.presence.end(),
                          pop.metro) != info.presence.end());
  }
}

TEST_P(WorldInvariantsTest, SessionsReferenceValidEntities) {
  for (const auto& sess : w_.deployment->peerings()) {
    EXPECT_LT(sess.peer.value(), w_.internet().graph.size());
    EXPECT_LT(sess.pop.value(), w_.deployment->pops().size());
  }
}

TEST_P(WorldInvariantsTest, TransitSessionsExist) {
  // The cloud always buys transit, so anycast reaches the whole Internet.
  EXPECT_FALSE(w_.deployment->TransitPeerings().empty());
}

TEST_P(WorldInvariantsTest, AnycastReachesEveryUg) {
  std::vector<util::PeeringId> all;
  for (const auto& p : w_.deployment->peerings()) all.push_back(p.id);
  const auto ingress = w_.resolver->Resolve(all);
  for (const auto& ug : w_.deployment->ugs()) {
    EXPECT_TRUE(ingress[ug.id.value()].has_value()) << "UG " << ug.id;
  }
}

TEST_P(WorldInvariantsTest, CompliantSetsIncludeAllTransitSessions) {
  const auto& transits = w_.deployment->TransitPeerings();
  for (const auto& ug : w_.deployment->ugs()) {
    const auto compliant = w_.catalog->CompliantPeerings(ug.id);
    for (const auto t : transits) {
      EXPECT_TRUE(std::binary_search(compliant.begin(), compliant.end(), t));
    }
  }
}

TEST_P(WorldInvariantsTest, OracleStrictlyPositiveAndFinite) {
  for (const auto& ug : w_.deployment->ugs()) {
    if (ug.id.value() % 17 != 0) continue;  // sample
    for (const auto pid : w_.catalog->CompliantPeerings(ug.id)) {
      const double rtt = w_.oracle->TrueRtt(ug.id, pid).count();
      EXPECT_GT(rtt, 0.0);
      EXPECT_LT(rtt, 2000.0);  // sanity: nothing beyond 2 seconds
    }
  }
}

TEST_P(WorldInvariantsTest, InstanceMatchesWorld) {
  const auto inst = test::MakeInstance(w_, GetParam().seed + 1);
  EXPECT_EQ(inst.UgCount(), w_.deployment->ugs().size());
  EXPECT_EQ(inst.peering_count, w_.deployment->peerings().size());
  double weight = 0.0;
  for (const auto& ug : w_.deployment->ugs()) weight += ug.traffic_weight;
  EXPECT_NEAR(inst.total_weight, weight, weight * 1e-9);
  // Anycast baseline must be achievable: at least one option per UG is never
  // worse than ~the anycast ingress itself (the anycast choice is compliant).
  for (std::uint32_t u = 0; u < inst.UgCount(); ++u) {
    EXPECT_GT(inst.anycast_rtt_ms[u], 0.0);
  }
}

TEST_P(WorldInvariantsTest, WithdrawalOfEverythingKillsReachability) {
  bgpsim::Announcement before{util::PrefixId{0}, w_.deployment->cloud_as(), {}};
  std::set<std::uint32_t> seen;
  for (const auto& sess : w_.deployment->peerings()) {
    if (seen.insert(sess.peer.value()).second) {
      before.to_neighbors.push_back(sess.peer);
    }
  }
  const bgpsim::Announcement after{util::PrefixId{0},
                                   w_.deployment->cloud_as(), {}};
  bgpsim::BgpEngine engine{w_.internet().graph};
  util::Rng rng{3};
  const auto trace = bgpsim::SimulateWithdrawal(
      engine, before, after, w_.deployment->ugs().front().as,
      bgpsim::ConvergenceParams{}, rng);
  // No alternate announcement remains: the observer never recovers.
  EXPECT_DOUBLE_EQ(trace.reachable_again_seconds, -1.0);
  EXPECT_FALSE(trace.events.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WorldInvariantsTest,
    ::testing::Values(WorldShape{1, 80, 4}, WorldShape{2, 150, 8},
                      WorldShape{3, 150, 16}, WorldShape{4, 300, 12},
                      WorldShape{5, 60, 25}));

}  // namespace
}  // namespace painter
