// Golden pin of the Fig. 10 failover scenario (§5.2.3).
//
// The values below were captured from RunFailoverScenario BEFORE the
// scenario was rebuilt on the faultsim plan-driven engine, with EXPECT_EQ on
// raw doubles — not EXPECT_NEAR. The refactor routed the scripted PoP-A
// failure through FaultInjector (PathModel::Overlay + admission hooks), and
// the contract is that a plan reproducing the old schedule is BIT-IDENTICAL
// to the old hand-written run: same RNG draw sequence, same event order,
// same floating-point results. Any drift here means the engine perturbed
// Fig. 10 behaviour and the figure can no longer be trusted.
#include "faultsim/failover_scenario.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"

namespace painter::faultsim {
namespace {

TEST(FailoverGolden, DefaultConfigBitIdenticalToPreRefactor) {
  const FailoverScenarioResult r = RunFailoverScenario({});

  EXPECT_EQ(r.failover_target, 2);  // best PoP-B prefix (24 ms one-way)
  EXPECT_EQ(r.detection_delay_s, 0.026217206657634051);
  EXPECT_EQ(r.pop_a_data_packets, 1180u);
  EXPECT_EQ(r.pop_b_data_packets, 200u);
  EXPECT_EQ(r.failovers.size(), 2u);
  EXPECT_EQ(r.samples.size(), 257u);
}

TEST(FailoverGolden, DetectionLatencyAcrossSeedsBitIdentical) {
  // Per-seed detection delays (seconds), run_for_s = 70, seeds 1..20.
  const double kGolden[20] = {
      0.026217206657634051, 0.026623536067390319, 0.026447720029999289,
      0.026355767224927718, 0.026933934801803616, 0.026397546188491106,
      0.026859387218451047, 0.02640523961068908,  0.025959755365242643,
      0.026317066813447809, 0.026230075506767037, 0.026203385784008049,
      0.026418496275454117, 0.027299250126510799, 0.026953215174017942,
      0.026218261804608289, 0.02692894108502486,  0.026737238526997942,
      0.026699207408647396, 0.026523576409793748};

  std::vector<double> detections;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FailoverScenarioConfig cfg;
    cfg.run_for_s = 70.0;
    cfg.edge.seed = seed;
    const FailoverScenarioResult r = RunFailoverScenario(cfg);
    EXPECT_EQ(r.failover_target, 2) << "seed " << seed;
    EXPECT_EQ(r.detection_delay_s, kGolden[seed - 1]) << "seed " << seed;
    detections.push_back(r.detection_delay_s);
  }

  // The Fig. 10 headline: median detection latency ~1 RTT of the dead path
  // (RTT = 28 ms), far below anycast's seconds of unreachability.
  std::sort(detections.begin(), detections.end());
  const double median_s = 0.5 * (detections[9] + detections[10]);
  const double median_rtts = median_s / (2.0 * 0.014);
  EXPECT_GT(median_rtts, 0.8);
  EXPECT_LT(median_rtts, 1.3);
}

}  // namespace
}  // namespace painter::faultsim
