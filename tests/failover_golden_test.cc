// Golden pin of the Fig. 10 failover scenario (§5.2.3).
//
// The values below pin RunFailoverScenario with EXPECT_EQ on raw doubles —
// not EXPECT_NEAR. They were first captured when the scenario was rebuilt on
// the faultsim plan-driven engine (proving the FaultInjector path was
// bit-identical to the hand-written original), and re-pinned once when
// netsim::Simulator moved to the integer-microsecond clock: every event
// timestamp now quantizes to the µs grid, which shifted each detection
// latency by less than 30 µs while leaving the event ORDER, failover
// targets, per-PoP packet counts, and sample counts exactly unchanged
// (asserted below). Any further drift means the engine perturbed Fig. 10
// behaviour and the figure can no longer be trusted.
#include "faultsim/failover_scenario.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"

namespace painter::faultsim {
namespace {

TEST(FailoverGolden, DefaultConfigBitIdenticalToPreRefactor) {
  const FailoverScenarioResult r = RunFailoverScenario({});

  EXPECT_EQ(r.failover_target, 2);  // best PoP-B prefix (24 ms one-way)
  EXPECT_EQ(r.detection_delay_s, 0.026226999999998668);
  EXPECT_EQ(r.pop_a_data_packets, 1180u);
  EXPECT_EQ(r.pop_b_data_packets, 200u);
  EXPECT_EQ(r.failovers.size(), 2u);
  EXPECT_EQ(r.samples.size(), 257u);
}

TEST(FailoverGolden, DetectionLatencyAcrossSeedsBitIdentical) {
  // Per-seed detection delays (seconds), run_for_s = 70, seeds 1..20.
  const double kGolden[20] = {
      0.026226999999998668, 0.026327999999999463, 0.026354999999995243,
      0.025907999999994047, 0.026950999999996839, 0.026287999999993872,
      0.026660999999997159, 0.02689099999999911,  0.025945999999997582,
      0.026051999999999964, 0.025937999999996464, 0.02619399999999672,
      0.026232000000000255, 0.02709499999999565,  0.026783999999999253,
      0.026645999999999503, 0.026694999999996583, 0.026506999999995173,
      0.026502999999998167, 0.026583999999999719};

  std::vector<double> detections;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FailoverScenarioConfig cfg;
    cfg.run_for_s = 70.0;
    cfg.edge.seed = seed;
    const FailoverScenarioResult r = RunFailoverScenario(cfg);
    EXPECT_EQ(r.failover_target, 2) << "seed " << seed;
    EXPECT_EQ(r.detection_delay_s, kGolden[seed - 1]) << "seed " << seed;
    detections.push_back(r.detection_delay_s);
  }

  // The Fig. 10 headline: median detection latency ~1 RTT of the dead path
  // (RTT = 28 ms), far below anycast's seconds of unreachability.
  std::sort(detections.begin(), detections.end());
  const double median_s = 0.5 * (detections[9] + detections[10]);
  const double median_rtts = median_s / (2.0 * 0.014);
  EXPECT_GT(median_rtts, 0.8);
  EXPECT_LT(median_rtts, 1.3);
}

}  // namespace
}  // namespace painter::faultsim
