// Unified-timeline regression suite (DESIGN.md §11).
//
// Pins the three properties the integer-µs clock was built for:
//  - tick/bucket alignment: workload ticks sit exactly on the absolute
//    expiry-bucket grid over arbitrarily long traces (the old relative
//    rescheduling accumulated float error, so tick N fired at a drifted
//    sum while BucketOf indexed the exact grid — max_tick_skew_us > 0);
//  - exact boundary admission: an arrival due precisely on a tick boundary
//    is admitted in that tick (the old `trunc(Now()*1e6)` read 999999 for a
//    1.0 s boundary reached through ten 0.1 s steps, admitting one tick
//    late);
//  - same-seed byte identity of the unified timeline across thread counts
//    and reruns, plus Learn() == LearningTimeline report equivalence and
//    TTL refresh staleness convergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/learning_timeline.h"
#include "core/orchestrator.h"
#include "core/problem.h"
#include "core/sim_environment.h"
#include "cloudsim/deployment.h"
#include "cloudsim/ingress.h"
#include "dnssim/ttl_cache.h"
#include "measure/latency.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "timeline/unified.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"
#include "topo/generator.h"
#include "util/hashmix.h"
#include "util/rng.h"
#include "workload/engine.h"
#include "workload/load.h"
#include "workload/trace.h"

namespace painter {
namespace {

// Minimal TM world for engine tests: 4 tunnels over 2 PoPs, fixed delays.
struct EngineWorld {
  netsim::Simulator sim;
  std::vector<std::unique_ptr<tm::TmPop>> pops;
  std::unique_ptr<tm::TmEdge> edge;
  std::vector<int> tunnel_pop;
  workload::LoadTracker load{std::vector<double>(2, 1e9)};
  workload::LatencyOnlyPolicy policy;
};

std::unique_ptr<EngineWorld> MakeEngineWorld(std::uint64_t seed) {
  auto w = std::make_unique<EngineWorld>();
  for (std::size_t p = 0; p < 2; ++p) {
    w->pops.push_back(std::make_unique<tm::TmPop>(
        w->sim, "PoP-" + std::to_string(p),
        std::vector<netsim::IpAddr>{
            0x02020202u + 0x01010101u * static_cast<netsim::IpAddr>(p)}));
  }
  std::vector<tm::TunnelConfig> tunnels;
  for (std::size_t i = 0; i < 4; ++i) {
    const int pop = static_cast<int>(i % 2);
    tunnels.push_back(tm::TunnelConfig{
        .name = "tunnel-" + std::to_string(i),
        .remote_ip = 0x0a0a0a00u + static_cast<netsim::IpAddr>(i),
        .path = netsim::PathModel::Fixed(0.010 +
                                         0.002 * static_cast<double>(i)),
        .pop = w->pops[static_cast<std::size_t>(pop)].get()});
    w->tunnel_pop.push_back(pop);
  }
  tm::TmEdge::Config ecfg;
  ecfg.seed = seed;
  ecfg.probe_interval_s = 0.050;
  w->edge = std::make_unique<tm::TmEdge>(w->sim, ecfg, std::move(tunnels));
  return w;
}

TEST(WorkloadTickGrid, LongTraceStaysOnAbsoluteGridWithExactCounts) {
  // An hour of trace at a 100 ms tick = 36k+ ticks. Under the old relative
  // rescheduling, tick N fired at an accumulated float sum (off-grid after
  // a few thousand ticks); max_tick_skew_us pins the absolute grid.
  workload::TraceConfig tc;
  tc.seed = 91;
  tc.duration_s = 3600.0;
  tc.mean_flows_per_s = 30.0;
  const auto profiles = workload::SyntheticUgProfiles(64, tc.seed);
  const workload::Trace trace = workload::GenerateTrace(tc, profiles);
  ASSERT_GT(trace.events.size(), 50'000u);

  auto w = MakeEngineWorld(5);
  workload::EngineConfig ecfg;
  ecfg.tick_s = 0.1;
  workload::WorkloadEngine engine{w->sim,    *w->edge, w->tunnel_pop,
                                  w->load,   w->policy, trace,
                                  ecfg};
  w->edge->Start();
  engine.Start();
  w->sim.Run(tc.duration_s + 700.0);

  const auto& s = engine.stats();
  EXPECT_EQ(s.max_tick_skew_us, 0u);
  // Every trace event consumed, every admitted flow eventually expired.
  EXPECT_EQ(s.arrivals, trace.events.size());
  EXPECT_EQ(s.started + s.rejected, s.arrivals);
  EXPECT_EQ(s.completed, s.started);
  EXPECT_EQ(s.down_picks, 0u);
}

TEST(WorkloadTickGrid, BoundaryArrivalAdmittedInItsExactTick) {
  // Arrivals placed exactly on tick boundaries. The engine admits with
  // `start_us <= NowUs()` on the integer clock, so each must be admitted at
  // precisely its own boundary — the old float path (ten 0.1 s hops sum to
  // 0.9999999999999999, truncated to 999999 µs) admitted the 1.0 s arrival
  // one full tick late.
  workload::Trace trace;
  trace.seed = 1;
  trace.duration_us = 3'000'000;
  trace.events = {
      workload::FlowEvent{.start_us = 1'000'000, .ug = 0, .seq = 0,
                          .bytes = 10'000},
      workload::FlowEvent{.start_us = 2'000'000, .ug = 1, .seq = 0,
                          .bytes = 10'000},
      workload::FlowEvent{.start_us = 2'100'000, .ug = 2, .seq = 0,
                          .bytes = 10'000},
  };

  auto w = MakeEngineWorld(6);
  workload::EngineConfig ecfg;
  ecfg.tick_s = 0.1;
  std::vector<std::uint64_t> admit_at_us;
  ecfg.on_arrival = [&](const workload::FlowEvent&) {
    admit_at_us.push_back(w->sim.NowUs());
  };
  workload::WorkloadEngine engine{w->sim,    *w->edge, w->tunnel_pop,
                                  w->load,   w->policy, trace,
                                  ecfg};
  w->edge->Start();
  engine.Start();
  w->sim.Run(10.0);

  // Admission tick time == arrival time, exactly, for on-grid arrivals.
  ASSERT_EQ(admit_at_us.size(), 3u);
  EXPECT_EQ(admit_at_us[0], 1'000'000u);
  EXPECT_EQ(admit_at_us[1], 2'000'000u);
  EXPECT_EQ(admit_at_us[2], 2'100'000u);
  EXPECT_EQ(engine.stats().max_tick_skew_us, 0u);
  EXPECT_EQ(engine.stats().completed, engine.stats().started);
}

TEST(TtlCacheTest, ResolversConvergeWithinOneTtlOfPublish) {
  netsim::Simulator sim;
  dnssim::TtlCacheConfig cfg;
  cfg.ttl_s = 10.0;
  cfg.seed = 3;
  dnssim::TtlCache cache{sim, 16, cfg};
  cache.Start(100.0);

  sim.Run(20.0);
  for (std::uint32_t r = 0; r < 16; ++r) EXPECT_EQ(cache.VersionOf(r), 0u);

  cache.Publish(1);
  std::size_t stale_now = 0;
  for (std::uint32_t r = 0; r < 16; ++r) stale_now += cache.IsStale(r);
  EXPECT_EQ(stale_now, 16u);  // nobody sees it before a refresh

  sim.Run(30.0 + 1e-5);  // one full TTL later every cache refreshed
  for (std::uint32_t r = 0; r < 16; ++r) {
    EXPECT_EQ(cache.VersionOf(r), 1u) << "resolver " << r;
    EXPECT_FALSE(cache.IsStale(r));
  }
  // Refresh events sit on the per-resolver absolute grid: in [0, 30] each
  // of the 16 resolvers fires 3 or 4 times depending on phase.
  EXPECT_GE(cache.stats().refreshes, 16u * 3u);
  EXPECT_LE(cache.stats().refreshes, 16u * 4u);
  EXPECT_EQ(cache.stats().version_updates, 16u);
}

core::ProblemInstance SmallInstance(topo::Internet& internet,
                                    const cloudsim::Deployment& deployment,
                                    const cloudsim::PolicyCatalog& catalog,
                                    const cloudsim::IngressResolver& resolver,
                                    const measure::LatencyOracle& oracle) {
  util::Rng rng{util::MixSeed(77, 0x1D5Au)};
  return core::BuildMeasuredInstance(internet, deployment, catalog, resolver,
                                     oracle, rng);
}

TEST(LearningTimelineTest, EventDrivenRoundsMatchLearnBitForBit) {
  topo::InternetConfig icfg;
  icfg.seed = 77;
  icfg.tier1_count = 8;
  icfg.transit_count = 10;
  icfg.regional_count = 20;
  icfg.stub_count = 60;
  topo::Internet internet = topo::GenerateInternet(icfg);
  cloudsim::DeploymentConfig dcfg;
  dcfg.seed = 78;
  dcfg.pop_count = 5;
  const cloudsim::Deployment deployment =
      cloudsim::BuildDeployment(internet, dcfg);
  const cloudsim::PolicyCatalog catalog{internet, deployment};
  const cloudsim::IngressResolver resolver{internet, deployment};
  measure::OracleConfig ocfg;
  ocfg.seed = 79;
  const measure::LatencyOracle oracle{internet, deployment, ocfg};
  const core::ProblemInstance instance =
      SmallInstance(internet, deployment, catalog, resolver, oracle);

  core::OrchestratorConfig orch_cfg;
  orch_cfg.prefix_budget = 8;
  orch_cfg.max_learning_iterations = 4;

  // Classic external loop.
  core::Orchestrator a{instance, orch_cfg};
  core::SimEnvironment env_a{resolver, oracle, util::Rng{31}};
  const auto loop_reports = a.Learn(env_a);

  // Event-driven rounds on a simulator clock, same seeds.
  core::Orchestrator b{instance, orch_cfg};
  core::SimEnvironment env_b{resolver, oracle, util::Rng{31}};
  netsim::Simulator sim;
  core::LearningTimelineConfig ltcfg;
  ltcfg.start_s = 5.0;
  ltcfg.round_interval_s = 60.0;
  core::LearningTimeline timeline{sim, b, env_b, ltcfg};
  timeline.Start();
  sim.Run(5.0 + 60.0 * static_cast<double>(orch_cfg.max_learning_iterations));

  ASSERT_TRUE(timeline.Finished());
  const auto& event_reports = timeline.reports();
  ASSERT_EQ(event_reports.size(), loop_reports.size());
  for (std::size_t i = 0; i < loop_reports.size(); ++i) {
    EXPECT_EQ(event_reports[i].realized_ms, loop_reports[i].realized_ms) << i;
    EXPECT_EQ(event_reports[i].realized_positive_ms,
              loop_reports[i].realized_positive_ms)
        << i;
    EXPECT_EQ(event_reports[i].predicted.mean_ms,
              loop_reports[i].predicted.mean_ms)
        << i;
    EXPECT_EQ(event_reports[i].prefixes_used, loop_reports[i].prefixes_used)
        << i;
  }
}

timeline::UnifiedTimelineConfig TinyTimelineConfig(std::size_t threads) {
  timeline::UnifiedTimelineConfig cfg;
  cfg.seed = 13;
  cfg.num_threads = threads;
  cfg.stubs = 60;
  cfg.pops = 4;
  cfg.transits = 10;
  cfg.regionals = 20;
  cfg.trace_duration_s = 90.0;
  cfg.mean_flows_per_s = 15.0;
  cfg.round_start_s = 5.0;
  cfg.round_interval_s = 30.0;
  cfg.max_rounds = 2;
  cfg.ttl_s = 15.0;
  cfg.curve_bucket_s = 30.0;
  return cfg;
}

TEST(UnifiedTimelineTest, SameSeedByteIdenticalAcrossThreadsAndReruns) {
  const auto base = timeline::RunUnifiedTimeline(TinyTimelineConfig(1));
  const std::string summary1 = timeline::CanonicalSummary(base);
  ASSERT_FALSE(summary1.empty());

  // The trace really spanned >= 2 advertisement configurations with the
  // tick grid exact and DNS refreshes actually interleaved.
  EXPECT_GE(base.rounds.size(), 2u);
  EXPECT_EQ(base.workload.max_tick_skew_us, 0u);
  EXPECT_GT(base.workload.arrivals, 0u);
  EXPECT_GT(base.ttl.refreshes, 0u);

  const std::string rerun =
      timeline::CanonicalSummary(timeline::RunUnifiedTimeline(
          TinyTimelineConfig(1)));
  EXPECT_EQ(summary1, rerun);

  for (const std::size_t threads : {2ul, 4ul}) {
    const std::string other = timeline::CanonicalSummary(
        timeline::RunUnifiedTimeline(TinyTimelineConfig(threads)));
    EXPECT_EQ(summary1, other) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace painter
