// Property-based checks of the BGP engine over generated internetworks:
// every forwarding path must be valley-free, outcomes deterministic, and
// announcement semantics (transit reaches all, subsets pin entries) must
// hold for every seed.
#include <gtest/gtest.h>

#include <algorithm>

#include "bgpsim/engine.h"
#include "cloudsim/deployment.h"
#include "tests/world_fixture.h"

namespace painter::bgpsim {
namespace {

enum class Hop { kUp, kPeer, kDown, kNone };

Hop Classify(const topo::AsGraph& g, util::AsId from, util::AsId to) {
  const auto& provs = g.providers(from);
  if (std::find(provs.begin(), provs.end(), to) != provs.end()) {
    return Hop::kUp;
  }
  const auto& peers = g.peers(from);
  if (std::find(peers.begin(), peers.end(), to) != peers.end()) {
    return Hop::kPeer;
  }
  const auto& custs = g.customers(from);
  if (std::find(custs.begin(), custs.end(), to) != custs.end()) {
    return Hop::kDown;
  }
  return Hop::kNone;
}

// Valley-free: the forwarding path from a UG to the origin must look like
// up* (peer)? down* — once it turns downward or crosses a peer link it may
// never climb again, and at most one peer link appears.
bool ValleyFree(const topo::AsGraph& g, util::AsId start,
                const std::vector<util::AsId>& path) {
  util::AsId prev = start;
  int phase = 0;  // 0 = climbing, 1 = crossed peer, 2 = descending
  for (util::AsId next : path) {
    const Hop hop = Classify(g, prev, next);
    switch (hop) {
      case Hop::kNone:
        return false;  // non-adjacent hop
      case Hop::kUp:
        if (phase != 0) return false;
        break;
      case Hop::kPeer:
        if (phase != 0) return false;
        phase = 1;
        break;
      case Hop::kDown:
        phase = 2;
        break;
    }
    prev = next;
  }
  return true;
}

class BgpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpPropertyTest, AnycastPathsAreValleyFree) {
  const test::World& w = test::SharedWorld(GetParam(), 120, 8);
  std::vector<util::PeeringId> all;
  for (const auto& p : w.deployment->peerings()) all.push_back(p.id);
  const auto result = w.resolver->ResolveWithRoutes(all);
  for (const auto& ug : w.deployment->ugs()) {
    if (!result.outcome.Reachable(ug.as)) continue;
    const auto path = result.outcome.Path(ug.as);
    EXPECT_TRUE(ValleyFree(w.internet().graph, ug.as, path))
        << "seed " << GetParam() << " UG " << ug.id;
  }
}

TEST_P(BgpPropertyTest, SubsetAnnouncementPathsAreValleyFree) {
  const test::World& w = test::SharedWorld(GetParam(), 120, 8);
  util::Rng rng{GetParam() + 5};
  std::vector<util::PeeringId> subset;
  for (const auto& p : w.deployment->peerings()) {
    if (rng.Bernoulli(0.2)) subset.push_back(p.id);
  }
  if (subset.empty()) return;
  const auto result = w.resolver->ResolveWithRoutes(subset);
  for (const auto& ug : w.deployment->ugs()) {
    if (!result.outcome.Reachable(ug.as)) continue;
    EXPECT_TRUE(ValleyFree(w.internet().graph, ug.as,
                           result.outcome.Path(ug.as)));
  }
}

TEST_P(BgpPropertyTest, PropagationIsDeterministic) {
  const test::World& w = test::SharedWorld(GetParam(), 80, 6);
  std::vector<util::PeeringId> all;
  for (const auto& p : w.deployment->peerings()) all.push_back(p.id);
  const auto a = w.resolver->Resolve(all);
  const auto b = w.resolver->Resolve(all);
  EXPECT_EQ(a, b);
}

TEST_P(BgpPropertyTest, SupersetNeverLosesReachability) {
  // Announcing via more sessions can only keep or gain reachability.
  const test::World& w = test::SharedWorld(GetParam(), 100, 6);
  util::Rng rng{GetParam() + 9};
  std::vector<util::PeeringId> small;
  std::vector<util::PeeringId> big;
  for (const auto& p : w.deployment->peerings()) {
    const bool in_small = rng.Bernoulli(0.15);
    if (in_small) small.push_back(p.id);
    if (in_small || rng.Bernoulli(0.3)) big.push_back(p.id);
  }
  if (small.empty()) return;
  const auto s = w.resolver->Resolve(small);
  const auto b = w.resolver->Resolve(big);
  for (std::size_t u = 0; u < s.size(); ++u) {
    if (s[u].has_value()) {
      EXPECT_TRUE(b[u].has_value()) << "seed " << GetParam() << " ug " << u;
    }
  }
}

TEST_P(BgpPropertyTest, EntryAsAlwaysDirectlyAnnounced) {
  const test::World& w = test::SharedWorld(GetParam(), 100, 6);
  util::Rng rng{GetParam() + 13};
  std::vector<util::PeeringId> subset;
  std::set<std::uint32_t> announced_as;
  for (const auto& p : w.deployment->peerings()) {
    if (rng.Bernoulli(0.25)) {
      subset.push_back(p.id);
      announced_as.insert(p.peer.value());
    }
  }
  if (subset.empty()) return;
  const auto result = w.resolver->ResolveWithRoutes(subset);
  for (const auto& ug : w.deployment->ugs()) {
    if (!result.outcome.Reachable(ug.as)) continue;
    const auto entry = result.outcome.EntryAs(ug.as);
    ASSERT_TRUE(entry.has_value());
    EXPECT_TRUE(announced_as.contains(entry->value()));
  }
}

TEST_P(BgpPropertyTest, PathLengthMatchesRouteMetadata) {
  const test::World& w = test::SharedWorld(GetParam(), 80, 6);
  std::vector<util::PeeringId> all;
  for (const auto& p : w.deployment->peerings()) all.push_back(p.id);
  const auto result = w.resolver->ResolveWithRoutes(all);
  for (const auto& ug : w.deployment->ugs()) {
    if (!result.outcome.Reachable(ug.as)) continue;
    const auto& route = result.outcome.RouteAt(ug.as);
    EXPECT_EQ(result.outcome.Path(ug.as).size(), route.path_length);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpPropertyTest,
                         ::testing::Values(1, 7, 42, 99, 1234, 555, 2023,
                                           31337));

}  // namespace
}  // namespace painter::bgpsim
