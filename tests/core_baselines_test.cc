#include <gtest/gtest.h>

#include <set>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld();
    inst_ = test::MakeInstance(w_);
  }
  test::World w_;
  ProblemInstance inst_;
};

TEST_F(BaselinesTest, AnycastCoversAllSessions) {
  const auto cfg = AnycastConfig(*w_.deployment);
  ASSERT_EQ(cfg.PrefixCount(), 1u);
  EXPECT_EQ(cfg.Sessions(0).size(), w_.deployment->peerings().size());
}

TEST_F(BaselinesTest, OnePerPopUsesOnePrefixPerPop) {
  const auto cfg = OnePerPop(*w_.deployment, inst_, 4);
  EXPECT_LE(cfg.PrefixCount(), 4u);
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    std::set<std::uint32_t> pops;
    for (const auto sid : cfg.Sessions(p)) {
      pops.insert(w_.deployment->peering(sid).pop.value());
    }
    EXPECT_EQ(pops.size(), 1u);
  }
}

TEST_F(BaselinesTest, OnePerPopDistinctPops) {
  const auto cfg = OnePerPop(*w_.deployment, inst_, 100);
  std::set<std::uint32_t> pops;
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    pops.insert(
        w_.deployment->peering(cfg.Sessions(p).front()).pop.value());
  }
  EXPECT_EQ(pops.size(), cfg.PrefixCount());
}

TEST_F(BaselinesTest, OnePerPopWithReuseRespectsDistance) {
  const double d_reuse = 3000.0;
  const auto cfg = OnePerPopWithReuse(w_.internet(), *w_.deployment, inst_, 3,
                                      d_reuse);
  EXPECT_LE(cfg.PrefixCount(), 3u);
  const auto& metros = w_.internet().metros;
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    std::set<std::uint32_t> pops;
    for (const auto sid : cfg.Sessions(p)) {
      pops.insert(w_.deployment->peering(sid).pop.value());
    }
    // All pairwise PoP distances within a prefix >= d_reuse.
    for (auto a : pops) {
      for (auto b : pops) {
        if (a >= b) continue;
        const auto& la =
            metros[w_.deployment->pop(util::PopId{a}).metro.value()].location;
        const auto& lb =
            metros[w_.deployment->pop(util::PopId{b}).metro.value()].location;
        EXPECT_GE(topo::Distance(la, lb).count(), d_reuse);
      }
    }
  }
}

TEST_F(BaselinesTest, OnePerPopWithReusePacksMorePops) {
  const auto plain = OnePerPop(*w_.deployment, inst_, 3);
  const auto reuse = OnePerPopWithReuse(w_.internet(), *w_.deployment, inst_, 3,
                                        3000.0);
  auto pops_covered = [&](const AdvertisementConfig& cfg) {
    std::set<std::uint32_t> pops;
    for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
      for (const auto sid : cfg.Sessions(p)) {
        pops.insert(w_.deployment->peering(sid).pop.value());
      }
    }
    return pops.size();
  };
  EXPECT_GE(pops_covered(reuse), pops_covered(plain));
}

TEST_F(BaselinesTest, OnePerPeeringSingletons) {
  const auto cfg = OnePerPeering(*w_.deployment, inst_, 10);
  EXPECT_LE(cfg.PrefixCount(), 10u);
  std::set<std::uint32_t> seen;
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    ASSERT_EQ(cfg.Sessions(p).size(), 1u);
    EXPECT_TRUE(seen.insert(cfg.Sessions(p).front().value()).second);
  }
}

TEST_F(BaselinesTest, OnePerPeeringFullBudgetGetsAllBenefit) {
  const auto cfg =
      OnePerPeering(*w_.deployment, inst_, w_.deployment->peerings().size());
  RoutingModel model{inst_.UgCount()};
  const auto pred = PredictBenefit(inst_, model, cfg, {});
  EXPECT_NEAR(pred.mean_ms, inst_.TotalPossibleBenefitMs(),
              inst_.TotalPossibleBenefitMs() * 1e-6 + 1e-9);
  // No uncertainty: lower == upper.
  EXPECT_NEAR(pred.lower_ms, pred.upper_ms, 1e-9);
}

TEST_F(BaselinesTest, RegionalTransitOnlyTransitSessions) {
  const auto cfg = RegionalTransit(w_.internet(), *w_.deployment, 3);
  for (std::size_t p = 0; p < cfg.PrefixCount(); ++p) {
    for (const auto sid : cfg.Sessions(p)) {
      EXPECT_TRUE(w_.deployment->peering(sid).transit);
    }
  }
}

TEST_F(BaselinesTest, PainterBeatsBaselinesAtSameBudget) {
  // The paper's headline (Fig. 6a): PAINTER attains more modeled benefit per
  // prefix than every baseline.
  constexpr std::size_t kBudget = 4;
  OrchestratorConfig ocfg;
  ocfg.prefix_budget = kBudget;
  Orchestrator orch{inst_, ocfg};
  const RoutingModel empty{inst_.UgCount()};
  const ExpectationParams params;

  const double painter =
      PredictBenefit(inst_, empty, orch.ComputeConfig(), params).estimated_ms;
  const double opp =
      PredictBenefit(inst_, empty, OnePerPop(*w_.deployment, inst_, kBudget),
                     params)
          .estimated_ms;
  const double oppr = PredictBenefit(inst_, empty,
                                     OnePerPopWithReuse(w_.internet(),
                                                        *w_.deployment, inst_,
                                                        kBudget, 3000.0),
                                     params)
                          .estimated_ms;
  const double opg =
      PredictBenefit(inst_, empty,
                     OnePerPeering(*w_.deployment, inst_, kBudget), params)
          .estimated_ms;
  EXPECT_GE(painter, opp - 1e-9);
  EXPECT_GE(painter, oppr - 1e-9);
  EXPECT_GE(painter, opg - 1e-9);
}

TEST_F(BaselinesTest, TruncateKeepsPrefixOrder) {
  const auto cfg = OnePerPeering(*w_.deployment, inst_, 5);
  const auto cut = Truncate(cfg, 2);
  ASSERT_LE(cut.PrefixCount(), 2u);
  for (std::size_t p = 0; p < cut.PrefixCount(); ++p) {
    EXPECT_EQ(cut.Sessions(p), cfg.Sessions(p));
  }
}

}  // namespace
}  // namespace painter::core
