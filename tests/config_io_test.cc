#include <gtest/gtest.h>

#include <sstream>

#include "core/config_io.h"
#include "core/orchestrator.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

AdvertisementConfig Sample() {
  AdvertisementConfig cfg;
  cfg.AddPrefix({util::PeeringId{3}, util::PeeringId{17}, util::PeeringId{42}});
  cfg.AddPrefix({util::PeeringId{5}});
  return cfg;
}

TEST(ConfigIo, RoundTrip) {
  const auto original = Sample();
  const auto parsed = ConfigFromString(ConfigToString(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->PrefixCount(), original.PrefixCount());
  for (std::size_t p = 0; p < original.PrefixCount(); ++p) {
    EXPECT_EQ(parsed->Sessions(p), original.Sessions(p));
  }
}

TEST(ConfigIo, WritesStableFormat) {
  const std::string text = ConfigToString(Sample());
  EXPECT_EQ(text,
            "# painter-advertisement-config v1\n"
            "prefix 0: 3 17 42\n"
            "prefix 1: 5\n");
}

TEST(ConfigIo, EmptyConfigRoundTrips) {
  const auto parsed = ConfigFromString(ConfigToString(AdvertisementConfig{}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->PrefixCount(), 0u);
}

TEST(ConfigIo, RejectsMissingHeader) {
  ParseError err;
  EXPECT_FALSE(ConfigFromString("prefix 0: 1\n", nullptr, &err).has_value());
  EXPECT_EQ(err.line, 1u);
}

TEST(ConfigIo, RejectsOutOfOrderPrefixes) {
  ParseError err;
  const std::string text =
      "# painter-advertisement-config v1\nprefix 1: 3\n";
  EXPECT_FALSE(ConfigFromString(text, nullptr, &err).has_value());
  EXPECT_EQ(err.line, 2u);
}

TEST(ConfigIo, RejectsMalformedSessionId) {
  ParseError err;
  const std::string text =
      "# painter-advertisement-config v1\nprefix 0: 3 x\n";
  EXPECT_FALSE(ConfigFromString(text, nullptr, &err).has_value());
  EXPECT_NE(err.message.find("malformed"), std::string::npos);
}

TEST(ConfigIo, RejectsEmptyPrefix) {
  ParseError err;
  const std::string text = "# painter-advertisement-config v1\nprefix 0:\n";
  EXPECT_FALSE(ConfigFromString(text, nullptr, &err).has_value());
}

TEST(ConfigIo, SkipsCommentsAndBlankLines) {
  const std::string text =
      "# painter-advertisement-config v1\n"
      "# produced by the orchestrator\n"
      "\n"
      "prefix 0: 7\n";
  const auto parsed = ConfigFromString(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->PrefixCount(), 1u);
}

TEST(ConfigIo, ValidatesAgainstDeployment) {
  const test::World& w = test::SharedWorld();
  AdvertisementConfig cfg;
  cfg.AddPrefix({w.deployment->peerings().front().id});
  const auto ok = ConfigFromString(ConfigToString(cfg), w.deployment.get());
  EXPECT_TRUE(ok.has_value());

  AdvertisementConfig bad;
  bad.AddPrefix({util::PeeringId{10'000'000}});
  ParseError err;
  EXPECT_FALSE(ConfigFromString(ConfigToString(bad), w.deployment.get(), &err)
                   .has_value());
  EXPECT_NE(err.message.find("not in the deployment"), std::string::npos);
}

TEST(ConfigIo, OrchestratorOutputRoundTripsAgainstDeployment) {
  const test::World& w = test::SharedWorld();
  const auto inst = test::MakeInstance(w);
  OrchestratorConfig ocfg;
  ocfg.prefix_budget = 4;
  Orchestrator orch{inst, ocfg};
  const auto cfg = orch.ComputeConfig();
  const auto parsed =
      ConfigFromString(ConfigToString(cfg), w.deployment.get());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AnnouncementCount(), cfg.AnnouncementCount());
}

}  // namespace
}  // namespace painter::core
