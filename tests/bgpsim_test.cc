#include <gtest/gtest.h>

#include "bgpsim/dynamics.h"
#include "bgpsim/engine.h"
#include "topo/generator.h"

namespace painter::bgpsim {
namespace {

using topo::AsGraph;
using topo::AsTier;
using util::AsId;
using util::MetroId;

// A hand-built diamond topology:
//
//        t1a ---peer--- t1b          (tier-1 mesh)
//        /  \            |
//      trA  trB         trC          (transits, customers of tier-1s)
//       |     \         /
//      stub    \       /
//     (origin)  cloud--+             (cloud buys transit from trB, peers trC)
class FixtureGraph {
 public:
  FixtureGraph() {
    auto add = [&](AsTier tier, const char* name) {
      return g.AddAs(tier, name, {MetroId{0}});
    };
    t1a = add(AsTier::kTier1, "t1a");
    t1b = add(AsTier::kTier1, "t1b");
    trA = add(AsTier::kTransit, "trA");
    trB = add(AsTier::kTransit, "trB");
    trC = add(AsTier::kTransit, "trC");
    stub = add(AsTier::kStub, "stub");
    cloud = add(AsTier::kCloud, "cloud");

    g.AddPeerEdge(t1a, t1b);
    g.AddProviderEdge(t1a, trA);
    g.AddProviderEdge(t1a, trB);
    g.AddProviderEdge(t1b, trC);
    g.AddProviderEdge(trA, stub);
    // Cloud: customer of trB (transit), peer of trC.
    g.AddProviderEdge(trB, cloud);
    g.AddPeerEdge(cloud, trC);
  }

  AsGraph g;
  AsId t1a, t1b, trA, trB, trC, stub, cloud;
};

TEST(BgpPreference, CustomerBeatsShorterPeer) {
  Route customer{.reachable = true,
                 .learned_from = LearnedFrom::kCustomer,
                 .path_length = 5,
                 .next_hop = AsId{1}};
  Route peer{.reachable = true,
             .learned_from = LearnedFrom::kPeer,
             .path_length = 1,
             .next_hop = AsId{2}};
  EXPECT_TRUE(Preferred(customer, peer));
  EXPECT_FALSE(Preferred(peer, customer));
}

TEST(BgpPreference, ShorterPathWinsWithinClass) {
  Route a{.reachable = true,
          .learned_from = LearnedFrom::kPeer,
          .path_length = 2,
          .next_hop = AsId{9}};
  Route b{.reachable = true,
          .learned_from = LearnedFrom::kPeer,
          .path_length = 3,
          .next_hop = AsId{1}};
  EXPECT_TRUE(Preferred(a, b));
}

TEST(BgpPreference, TieBreakLowestNextHop) {
  Route a{.reachable = true,
          .learned_from = LearnedFrom::kPeer,
          .path_length = 2,
          .next_hop = AsId{1}};
  Route b{.reachable = true,
          .learned_from = LearnedFrom::kPeer,
          .path_length = 2,
          .next_hop = AsId{2}};
  EXPECT_TRUE(Preferred(a, b));
}

TEST(BgpPreference, UnreachableNeverPreferred) {
  Route up{.reachable = true,
           .learned_from = LearnedFrom::kProvider,
           .path_length = 9,
           .next_hop = AsId{1}};
  Route down{};
  EXPECT_TRUE(Preferred(up, down));
  EXPECT_FALSE(Preferred(down, up));
}

TEST(BgpEngine, TransitAnnouncementReachesEveryone) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  // Announce only via trB (the cloud's transit provider).
  const auto out = engine.Propagate(
      Announcement{util::PrefixId{0}, f.cloud, {f.trB}});
  for (AsId as : {f.t1a, f.t1b, f.trA, f.trB, f.trC, f.stub}) {
    EXPECT_TRUE(out.Reachable(as)) << "AS " << as;
    EXPECT_EQ(out.EntryAs(as), f.trB);
  }
}

TEST(BgpEngine, PeerAnnouncementStaysInPeerConeAndPeers) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  // Announce only via trC (a settlement-free peer): trC will not export a
  // peer route to its provider t1b, so the stub (under t1a/trA) cannot reach.
  const auto out = engine.Propagate(
      Announcement{util::PrefixId{0}, f.cloud, {f.trC}});
  EXPECT_TRUE(out.Reachable(f.trC));
  EXPECT_FALSE(out.Reachable(f.stub));
  EXPECT_FALSE(out.Reachable(f.t1a));
}

TEST(BgpEngine, PathReconstructionEndsAtOrigin) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  const auto out = engine.Propagate(
      Announcement{util::PrefixId{0}, f.cloud, {f.trB}});
  const auto path = out.Path(f.stub);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), f.cloud);
  // stub -> trA -> t1a -> trB -> cloud.
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], f.trA);
  EXPECT_EQ(path[1], f.t1a);
  EXPECT_EQ(path[2], f.trB);
}

TEST(BgpEngine, CustomerRoutePreferredOverPeerRoute) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  // trB hears the route as a customer route (cloud is its customer); trC as
  // a peer route. t1a can reach via customer trB; t1b could reach via peer
  // trC only if trC exported (it won't, peer->provider is invalid), so t1b
  // goes through its peer t1a... but peer routes don't propagate from peers
  // of peers. t1b must use t1a? t1a has a customer route and exports to its
  // peer t1b.
  const auto out = engine.Propagate(
      Announcement{util::PrefixId{0}, f.cloud, {f.trB, f.trC}});
  EXPECT_TRUE(out.Reachable(f.t1a));
  EXPECT_EQ(out.RouteAt(f.t1a).learned_from, LearnedFrom::kCustomer);
  EXPECT_EQ(out.EntryAs(f.t1a), f.trB);
  EXPECT_TRUE(out.Reachable(f.t1b));
  EXPECT_EQ(out.RouteAt(f.t1b).learned_from, LearnedFrom::kPeer);
}

TEST(BgpEngine, ValleyFreeNoPeerProviderLeak) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  const auto out = engine.Propagate(
      Announcement{util::PrefixId{0}, f.cloud, {f.trC}});
  // trC's providers must not learn the peer route.
  EXPECT_FALSE(out.Reachable(f.t1b));
}

TEST(BgpEngine, DuplicateAndUnorderedSeedsMatchCanonical) {
  // Propagate dedupes the receiving-neighbor set with sort+unique; listing a
  // session several times, in any order, must yield the canonical outcome.
  FixtureGraph f;
  BgpEngine engine{f.g};
  const auto canonical = engine.Propagate(
      Announcement{util::PrefixId{0}, f.cloud, {f.trB, f.trC}});
  const auto dup = engine.Propagate(Announcement{
      util::PrefixId{0}, f.cloud, {f.trC, f.trB, f.trC, f.trB, f.trB}});
  for (std::uint32_t v = 0; v < f.g.size(); ++v) {
    const AsId as{v};
    ASSERT_EQ(dup.Reachable(as), canonical.Reachable(as)) << "AS " << as;
    if (canonical.Reachable(as)) {
      EXPECT_EQ(dup.Path(as), canonical.Path(as)) << "AS " << as;
    }
  }
}

TEST(BgpEngine, AnnouncementToNonNeighborThrows) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  EXPECT_THROW(
      (void)engine.Propagate(Announcement{util::PrefixId{0}, f.cloud, {f.t1a}}),
      std::invalid_argument);
}

TEST(BgpEngine, EmptyAnnouncementReachesNobody) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  const auto out =
      engine.Propagate(Announcement{util::PrefixId{0}, f.cloud, {}});
  for (AsId as : {f.t1a, f.t1b, f.trA, f.trB, f.trC, f.stub}) {
    EXPECT_FALSE(out.Reachable(as));
  }
}

TEST(BgpEngine, DirectNeighborEntryAsIsItself) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  const auto out = engine.Propagate(
      Announcement{util::PrefixId{0}, f.cloud, {f.trB}});
  EXPECT_EQ(out.EntryAs(f.trB), f.trB);
  EXPECT_EQ(out.Path(f.trB).size(), 1u);
}

TEST(BgpEngine, GeneratedInternetAnycastMostlyReachable) {
  topo::InternetConfig cfg;
  cfg.seed = 3;
  cfg.tier1_count = 4;
  cfg.transit_count = 12;
  cfg.regional_count = 24;
  cfg.stub_count = 200;
  auto net = topo::GenerateInternet(cfg);
  // Attach a cloud: customer of two tier-1s.
  const auto tier1s = net.graph.AsesOfTier(AsTier::kTier1);
  const AsId cloud = net.graph.AddAs(AsTier::kCloud, "cloud", {MetroId{0}});
  net.graph.AddProviderEdge(tier1s[0], cloud);
  net.graph.AddProviderEdge(tier1s[1], cloud);

  BgpEngine engine{net.graph};
  const auto out = engine.Propagate(
      Announcement{util::PrefixId{0}, cloud, {tier1s[0], tier1s[1]}});
  std::size_t reachable = 0;
  const auto stubs = net.graph.AsesOfTier(AsTier::kStub);
  for (AsId s : stubs) {
    if (out.Reachable(s)) ++reachable;
  }
  EXPECT_EQ(reachable, stubs.size());  // transit announcements reach all
}

TEST(BgpDynamics, WithdrawalProducesChurnAndRecovery) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  const Announcement before{util::PrefixId{0}, f.cloud, {f.trB, f.trC}};
  const Announcement after{util::PrefixId{0}, f.cloud, {f.trC}};
  util::Rng rng{1};
  const auto trace = SimulateWithdrawal(engine, before, after, f.trC,
                                        ConvergenceParams{}, rng);
  // Everyone whose path went through trB must re-converge -> updates exist.
  EXPECT_FALSE(trace.events.empty());
  EXPECT_GT(trace.converged_seconds, 0.0);
  // Events sorted by time.
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].time_seconds, trace.events[i].time_seconds);
  }
}

TEST(BgpDynamics, ObserverWithSurvivingRouteHasNoGap) {
  FixtureGraph f;
  BgpEngine engine{f.g};
  const Announcement before{util::PrefixId{0}, f.cloud, {f.trB, f.trC}};
  const Announcement after{util::PrefixId{0}, f.cloud, {f.trB}};
  util::Rng rng{1};
  // trA's route goes via trB which survives; withdrawal of trC is invisible.
  const auto trace = SimulateWithdrawal(engine, before, after, f.trA,
                                        ConvergenceParams{}, rng);
  EXPECT_DOUBLE_EQ(trace.reachable_again_seconds, 0.0);
}

}  // namespace
}  // namespace painter::bgpsim
