#include <gtest/gtest.h>

#include <algorithm>

#include "topo/as_graph.h"
#include "topo/generator.h"
#include "topo/geo.h"

namespace painter::topo {
namespace {

TEST(Geo, DistanceZeroForSamePoint) {
  GeoPoint p{40.0, -74.0};
  EXPECT_NEAR(Distance(p, p).count(), 0.0, 1e-9);
}

TEST(Geo, DistanceSymmetric) {
  GeoPoint a{40.71, -74.01};  // New York
  GeoPoint b{51.51, -0.13};   // London
  EXPECT_NEAR(Distance(a, b).count(), Distance(b, a).count(), 1e-9);
}

TEST(Geo, KnownDistanceNewYorkLondon) {
  GeoPoint ny{40.71, -74.01};
  GeoPoint ldn{51.51, -0.13};
  // Great-circle NYC-London is ~5570 km.
  EXPECT_NEAR(Distance(ny, ldn).count(), 5570.0, 60.0);
}

TEST(Geo, AntipodalIsHalfCircumference) {
  GeoPoint a{0.0, 0.0};
  GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(Distance(a, b).count(), 20015.0, 20.0);
}

TEST(Geo, MinLatencyUsesFiberSpeed) {
  GeoPoint a{0.0, 0.0};
  GeoPoint b{0.0, 1.0};  // ~111 km on the equator
  EXPECT_NEAR(MinLatency(a, b).count(), 111.2 / 200.0, 0.01);
}

TEST(Geo, WorldMetrosHaveUniqueIdsAndPositiveWeights) {
  const auto metros = WorldMetros();
  EXPECT_GE(metros.size(), 40u);
  for (std::size_t i = 0; i < metros.size(); ++i) {
    EXPECT_EQ(metros[i].id.value(), i);
    EXPECT_GT(metros[i].population_weight, 0.0);
  }
}

class AsGraphTest : public ::testing::Test {
 protected:
  util::AsId Add(AsTier tier) {
    return g_.AddAs(tier, "as", {util::MetroId{0}});
  }
  AsGraph g_;
};

TEST_F(AsGraphTest, AddAsAssignsSequentialIds) {
  EXPECT_EQ(Add(AsTier::kStub).value(), 0u);
  EXPECT_EQ(Add(AsTier::kStub).value(), 1u);
  EXPECT_EQ(g_.size(), 2u);
}

TEST_F(AsGraphTest, EmptyPresenceRejected) {
  EXPECT_THROW(g_.AddAs(AsTier::kStub, "bad", {}), std::invalid_argument);
}

TEST_F(AsGraphTest, ProviderEdgeVisibleBothSides) {
  const auto p = Add(AsTier::kTransit);
  const auto c = Add(AsTier::kStub);
  g_.AddProviderEdge(p, c);
  ASSERT_EQ(g_.customers(p).size(), 1u);
  EXPECT_EQ(g_.customers(p)[0], c);
  ASSERT_EQ(g_.providers(c).size(), 1u);
  EXPECT_EQ(g_.providers(c)[0], p);
}

TEST_F(AsGraphTest, SelfEdgesRejected) {
  const auto a = Add(AsTier::kStub);
  EXPECT_THROW(g_.AddProviderEdge(a, a), std::invalid_argument);
  EXPECT_THROW(g_.AddPeerEdge(a, a), std::invalid_argument);
}

TEST_F(AsGraphTest, UnknownIdThrows) {
  EXPECT_THROW((void)g_.info(util::AsId{5}), std::out_of_range);
  EXPECT_THROW((void)g_.providers(util::AsId{}), std::out_of_range);
}

TEST_F(AsGraphTest, PeerEdgeSymmetric) {
  const auto a = Add(AsTier::kTransit);
  const auto b = Add(AsTier::kTransit);
  g_.AddPeerEdge(a, b);
  ASSERT_EQ(g_.peers(a).size(), 1u);
  ASSERT_EQ(g_.peers(b).size(), 1u);
  EXPECT_EQ(g_.peers(a)[0], b);
  EXPECT_EQ(g_.peers(b)[0], a);
}

TEST_F(AsGraphTest, CustomerConeTransitive) {
  // t1 -> tr -> stub ; cone(t1) = {t1, tr, stub}.
  const auto t1 = Add(AsTier::kTier1);
  const auto tr = Add(AsTier::kTransit);
  const auto st = Add(AsTier::kStub);
  g_.AddProviderEdge(t1, tr);
  g_.AddProviderEdge(tr, st);
  EXPECT_TRUE(g_.InCustomerCone(st, t1));
  EXPECT_TRUE(g_.InCustomerCone(tr, t1));
  EXPECT_TRUE(g_.InCustomerCone(t1, t1));
  EXPECT_FALSE(g_.InCustomerCone(t1, st));
  EXPECT_EQ(g_.CustomerCone(t1).size(), 3u);
}

TEST_F(AsGraphTest, PeersNotInCone) {
  const auto a = Add(AsTier::kTransit);
  const auto b = Add(AsTier::kTransit);
  g_.AddPeerEdge(a, b);
  EXPECT_FALSE(g_.InCustomerCone(b, a));
}

TEST_F(AsGraphTest, ConeCacheInvalidatedOnMutation) {
  const auto a = Add(AsTier::kTransit);
  const auto b = Add(AsTier::kStub);
  EXPECT_FALSE(g_.InCustomerCone(b, a));
  g_.AddProviderEdge(a, b);
  EXPECT_TRUE(g_.InCustomerCone(b, a));
}

TEST_F(AsGraphTest, AsesOfTierFilters) {
  Add(AsTier::kTier1);
  Add(AsTier::kStub);
  Add(AsTier::kStub);
  EXPECT_EQ(g_.AsesOfTier(AsTier::kTier1).size(), 1u);
  EXPECT_EQ(g_.AsesOfTier(AsTier::kStub).size(), 2u);
  EXPECT_TRUE(g_.AsesOfTier(AsTier::kCloud).empty());
}

class GeneratorTest : public ::testing::Test {
 protected:
  static InternetConfig SmallConfig() {
    InternetConfig cfg;
    cfg.seed = 5;
    cfg.tier1_count = 4;
    cfg.transit_count = 10;
    cfg.regional_count = 20;
    cfg.stub_count = 100;
    return cfg;
  }
};

TEST_F(GeneratorTest, GeneratesRequestedCounts) {
  const auto net = GenerateInternet(SmallConfig());
  EXPECT_EQ(net.graph.AsesOfTier(AsTier::kTier1).size(), 4u);
  EXPECT_EQ(net.graph.AsesOfTier(AsTier::kTransit).size(), 10u);
  EXPECT_EQ(net.graph.AsesOfTier(AsTier::kRegional).size(), 20u);
  EXPECT_EQ(net.graph.AsesOfTier(AsTier::kStub).size(), 100u);
}

TEST_F(GeneratorTest, Tier1FullMesh) {
  const auto net = GenerateInternet(SmallConfig());
  for (auto t1 : net.graph.AsesOfTier(AsTier::kTier1)) {
    EXPECT_GE(net.graph.peers(t1).size(), 3u);  // the other tier-1s at least
    EXPECT_TRUE(net.graph.providers(t1).empty());  // transit-free
  }
}

TEST_F(GeneratorTest, EveryStubHasAProvider) {
  const auto net = GenerateInternet(SmallConfig());
  for (auto s : net.graph.AsesOfTier(AsTier::kStub)) {
    EXPECT_FALSE(net.graph.providers(s).empty());
  }
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  const auto a = GenerateInternet(SmallConfig());
  const auto b = GenerateInternet(SmallConfig());
  ASSERT_EQ(a.graph.size(), b.graph.size());
  for (std::uint32_t v = 0; v < a.graph.size(); ++v) {
    const util::AsId id{v};
    EXPECT_EQ(a.graph.providers(id), b.graph.providers(id));
    EXPECT_EQ(a.graph.peers(id), b.graph.peers(id));
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  auto cfg = SmallConfig();
  const auto a = GenerateInternet(cfg);
  cfg.seed = 6;
  const auto b = GenerateInternet(cfg);
  bool any_diff = false;
  for (std::uint32_t v = 0; v < std::min(a.graph.size(), b.graph.size()); ++v) {
    if (a.graph.providers(util::AsId{v}) != b.graph.providers(util::AsId{v})) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(GeneratorTest, StubsReachableFromSomeTier1) {
  // Every stub should be inside at least one tier-1 customer cone — the
  // hierarchy is connected upward.
  const auto net = GenerateInternet(SmallConfig());
  const auto tier1s = net.graph.AsesOfTier(AsTier::kTier1);
  for (auto s : net.graph.AsesOfTier(AsTier::kStub)) {
    const bool covered =
        std::any_of(tier1s.begin(), tier1s.end(), [&](util::AsId t) {
          return net.graph.InCustomerCone(s, t);
        });
    EXPECT_TRUE(covered) << "stub " << s << " not in any tier-1 cone";
  }
}

TEST_F(GeneratorTest, MultihomingDistributionRoughlyMatches) {
  auto cfg = SmallConfig();
  cfg.stub_count = 1000;
  const auto net = GenerateInternet(cfg);
  std::size_t multihomed = 0;
  for (auto s : net.graph.AsesOfTier(AsTier::kStub)) {
    if (net.graph.providers(s).size() >= 2) ++multihomed;
  }
  // Config: 55% of stubs want >=2 providers; allow slack for provider-pool
  // exhaustion in tiny metros.
  EXPECT_GT(multihomed, 350u);
  EXPECT_LT(multihomed, 750u);
}

}  // namespace
}  // namespace painter::topo
