// Property-based checks of Algorithm 1 across seeded worlds: budget and
// validity invariants, monotonicity in budget, bounds against the possible
// benefit, reuse dominating its ablation in the model, and determinism.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/sim_environment.h"
#include "obs/metrics.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

class OrchestratorPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld(GetParam(), 130, 8);
    inst_ = test::MakeInstance(w_, GetParam() + 77);
  }
  test::World w_;
  ProblemInstance inst_;
};

TEST_P(OrchestratorPropertyTest, ConfigIsValid) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 6;
  Orchestrator orch{inst_, cfg};
  const auto config = orch.ComputeConfig();
  EXPECT_LE(config.PrefixCount(), 6u);
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    EXPECT_FALSE(config.Sessions(p).empty());
    for (const auto sid : config.Sessions(p)) {
      // Every advertised session exists in the deployment...
      EXPECT_LT(sid.value(), w_.deployment->peerings().size());
      // ...and serves at least one UG.
      EXPECT_FALSE(inst_.ugs_with_peering[sid.value()].empty());
    }
    // Sessions within a prefix are unique and sorted.
    const auto& s = config.Sessions(p);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
  }
}

TEST_P(OrchestratorPropertyTest, PredictedBenefitWithinBounds) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 8;
  Orchestrator orch{inst_, cfg};
  const auto pred = orch.Predict(orch.ComputeConfig());
  EXPECT_GE(pred.mean_ms, 0.0);
  EXPECT_LE(pred.upper_ms, inst_.TotalPossibleBenefitMs() + 1e-6);
}

TEST_P(OrchestratorPropertyTest, BudgetMonotonicity) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 10;
  Orchestrator orch{inst_, cfg};
  const auto full = orch.ComputeConfig();
  double prev = -1.0;
  for (std::size_t b = 0; b <= full.PrefixCount(); ++b) {
    const double v = orch.Predict(Truncate(full, b)).mean_ms;
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

TEST_P(OrchestratorPropertyTest, ReuseAtLeastAsGoodInModel) {
  OrchestratorConfig with;
  with.prefix_budget = 4;
  OrchestratorConfig without = with;
  without.enable_reuse = false;
  Orchestrator a{inst_, with};
  Orchestrator b{inst_, without};
  EXPECT_GE(a.Predict(a.ComputeConfig()).mean_ms,
            b.Predict(b.ComputeConfig()).mean_ms - 1e-9);
}

TEST_P(OrchestratorPropertyTest, Deterministic) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 5;
  Orchestrator a{inst_, cfg};
  Orchestrator b{inst_, cfg};
  const auto ca = a.ComputeConfig();
  const auto cb = b.ComputeConfig();
  ASSERT_EQ(ca.PrefixCount(), cb.PrefixCount());
  for (std::size_t p = 0; p < ca.PrefixCount(); ++p) {
    EXPECT_EQ(ca.Sessions(p), cb.Sessions(p));
  }
}

// The incremental CELF engine (cross-round seed-marginal cache + aggregate
// fast path) must produce the exact schedule of a from-scratch recompute, at
// any thread count. DESIGN.md "Incremental CELF evaluation" argues why; this
// checks it across seeded worlds.
TEST_P(OrchestratorPropertyTest, IncrementalMatchesNaiveRecompute) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
    OrchestratorConfig fast;
    fast.prefix_budget = 7;
    fast.num_threads = threads;
    fast.incremental_celf = true;
    OrchestratorConfig slow = fast;
    slow.incremental_celf = false;
    Orchestrator a{inst_, fast};
    Orchestrator b{inst_, slow};
    const auto ca = a.ComputeConfig();
    const auto cb = b.ComputeConfig();
    ASSERT_EQ(ca.PrefixCount(), cb.PrefixCount()) << "threads=" << threads;
    for (std::size_t p = 0; p < ca.PrefixCount(); ++p) {
      EXPECT_EQ(ca.Sessions(p), cb.Sessions(p))
          << "threads=" << threads << " prefix=" << p;
    }
  }
}

// Same equivalence once the model holds learned preferences and measured
// RTTs — the regime where the aggregate fast path must detect that an
// exclusion can fire and fall back to the from-scratch expectation.
TEST_P(OrchestratorPropertyTest, IncrementalMatchesNaiveWithLearnedModel) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 6;
  cfg.max_learning_iterations = 3;
  Orchestrator learned{inst_, cfg};
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{GetParam() + 9}};
  (void)learned.Learn(env);
  ASSERT_GT(learned.model().PreferenceCount() +
                obs::Metrics().GetCounter("model.rtt_observations").Value(),
            0u);

  OrchestratorConfig naive_cfg = cfg;
  naive_cfg.incremental_celf = false;
  Orchestrator naive{inst_, naive_cfg};
  naive.mutable_model() = learned.model();
  const auto ca = learned.ComputeConfig();
  const auto cb = naive.ComputeConfig();
  ASSERT_EQ(ca.PrefixCount(), cb.PrefixCount());
  for (std::size_t p = 0; p < ca.PrefixCount(); ++p) {
    EXPECT_EQ(ca.Sessions(p), cb.Sessions(p)) << "prefix=" << p;
  }
}

// The seed-marginal cache must actually engage: across a multi-prefix run,
// later rounds reuse cached marginals (hits) and invalidate only peerings
// whose UGs improved (invalidation counts stay below the all-dirty total).
TEST_P(OrchestratorPropertyTest, SeedMarginalCacheEngages) {
  OrchestratorConfig cfg;
  // These fixture worlds are small and dense (most peerings serve an
  // improved UG most rounds), so a deep budget is needed before clean
  // peerings appear. Every seed yields hits by budget 8.
  cfg.prefix_budget = 8;
  Orchestrator orch{inst_, cfg};
  const auto hits0 = obs::Metrics().GetCounter("orchestrator.celf.cache_hits").Value();
  const auto inv0 =
      obs::Metrics().GetCounter("orchestrator.celf.cache_invalidations").Value();
  const auto config = orch.ComputeConfig();
  ASSERT_GT(config.PrefixCount(), 1u);
  const auto hits =
      obs::Metrics().GetCounter("orchestrator.celf.cache_hits").Value() - hits0;
  const auto invalidations =
      obs::Metrics().GetCounter("orchestrator.celf.cache_invalidations").Value() -
      inv0;
  // Round 1 marks everything dirty; with every later round all-dirty too the
  // hit count would be zero.
  EXPECT_GT(hits, 0u);
  EXPECT_GT(invalidations, 0u);
}

TEST_P(OrchestratorPropertyTest, RealizedNonNegativeAndBounded) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 6;
  cfg.max_learning_iterations = 2;
  Orchestrator orch{inst_, cfg};
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{GetParam() + 3}};
  const auto reports = orch.Learn(env);
  GroundTruthEvaluator eval{*w_.deployment, *w_.resolver, *w_.oracle};
  const double possible = eval.PossibleMeanImprovementMs(*w_.catalog, 0);
  for (const auto& r : reports) {
    EXPECT_GE(r.realized_ms, 0.0);
    EXPECT_LE(r.realized_ms, possible + 1.0);  // probe noise allowance
  }
}

TEST_P(OrchestratorPropertyTest, ObservationsOnlyFromAdvertisedSessions) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 4;
  Orchestrator orch{inst_, cfg};
  const auto config = orch.ComputeConfig();
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{GetParam() + 4}};
  const auto obs = env.Execute(config);
  ASSERT_EQ(obs.size(), config.PrefixCount());
  for (std::size_t p = 0; p < obs.size(); ++p) {
    const auto& sessions = config.Sessions(p);
    for (const auto& ingress : obs[p].ingress_of_ug) {
      if (!ingress.has_value()) continue;
      EXPECT_TRUE(std::binary_search(sessions.begin(), sessions.end(),
                                     *ingress));
    }
  }
}

TEST_P(OrchestratorPropertyTest, PainterDominatesBaselinesInModel) {
  // The Fig. 6a invariant, per seed: PAINTER's modeled estimated benefit at
  // a small budget is at least every baseline's.
  constexpr std::size_t kBudget = 3;
  OrchestratorConfig cfg;
  cfg.prefix_budget = kBudget;
  Orchestrator orch{inst_, cfg};
  const RoutingModel model{inst_.UgCount()};
  const ExpectationParams params;
  const double painter =
      PredictBenefit(inst_, model, orch.ComputeConfig(), params).estimated_ms;
  EXPECT_GE(painter,
            PredictBenefit(inst_, model,
                           OnePerPop(*w_.deployment, inst_, kBudget), params)
                    .estimated_ms -
                1e-9);
  EXPECT_GE(painter,
            PredictBenefit(inst_, model,
                           OnePerPeering(*w_.deployment, inst_, kBudget),
                           params)
                    .estimated_ms -
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrchestratorPropertyTest,
                         ::testing::Values(3, 17, 64, 301, 888));

}  // namespace
}  // namespace painter::core
