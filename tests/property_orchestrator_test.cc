// Property-based checks of Algorithm 1 across seeded worlds: budget and
// validity invariants, monotonicity in budget, bounds against the possible
// benefit, reuse dominating its ablation in the model, and determinism.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/sim_environment.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

class OrchestratorPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld(GetParam(), 130, 8);
    inst_ = test::MakeInstance(w_, GetParam() + 77);
  }
  test::World w_;
  ProblemInstance inst_;
};

TEST_P(OrchestratorPropertyTest, ConfigIsValid) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 6;
  Orchestrator orch{inst_, cfg};
  const auto config = orch.ComputeConfig();
  EXPECT_LE(config.PrefixCount(), 6u);
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    EXPECT_FALSE(config.Sessions(p).empty());
    for (const auto sid : config.Sessions(p)) {
      // Every advertised session exists in the deployment...
      EXPECT_LT(sid.value(), w_.deployment->peerings().size());
      // ...and serves at least one UG.
      EXPECT_FALSE(inst_.ugs_with_peering[sid.value()].empty());
    }
    // Sessions within a prefix are unique and sorted.
    const auto& s = config.Sessions(p);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
  }
}

TEST_P(OrchestratorPropertyTest, PredictedBenefitWithinBounds) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 8;
  Orchestrator orch{inst_, cfg};
  const auto pred = orch.Predict(orch.ComputeConfig());
  EXPECT_GE(pred.mean_ms, 0.0);
  EXPECT_LE(pred.upper_ms, inst_.TotalPossibleBenefitMs() + 1e-6);
}

TEST_P(OrchestratorPropertyTest, BudgetMonotonicity) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 10;
  Orchestrator orch{inst_, cfg};
  const auto full = orch.ComputeConfig();
  double prev = -1.0;
  for (std::size_t b = 0; b <= full.PrefixCount(); ++b) {
    const double v = orch.Predict(Truncate(full, b)).mean_ms;
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

TEST_P(OrchestratorPropertyTest, ReuseAtLeastAsGoodInModel) {
  OrchestratorConfig with;
  with.prefix_budget = 4;
  OrchestratorConfig without = with;
  without.enable_reuse = false;
  Orchestrator a{inst_, with};
  Orchestrator b{inst_, without};
  EXPECT_GE(a.Predict(a.ComputeConfig()).mean_ms,
            b.Predict(b.ComputeConfig()).mean_ms - 1e-9);
}

TEST_P(OrchestratorPropertyTest, Deterministic) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 5;
  Orchestrator a{inst_, cfg};
  Orchestrator b{inst_, cfg};
  const auto ca = a.ComputeConfig();
  const auto cb = b.ComputeConfig();
  ASSERT_EQ(ca.PrefixCount(), cb.PrefixCount());
  for (std::size_t p = 0; p < ca.PrefixCount(); ++p) {
    EXPECT_EQ(ca.Sessions(p), cb.Sessions(p));
  }
}

TEST_P(OrchestratorPropertyTest, RealizedNonNegativeAndBounded) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 6;
  cfg.max_learning_iterations = 2;
  Orchestrator orch{inst_, cfg};
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{GetParam() + 3}};
  const auto reports = orch.Learn(env);
  GroundTruthEvaluator eval{*w_.deployment, *w_.resolver, *w_.oracle};
  const double possible = eval.PossibleMeanImprovementMs(*w_.catalog, 0);
  for (const auto& r : reports) {
    EXPECT_GE(r.realized_ms, 0.0);
    EXPECT_LE(r.realized_ms, possible + 1.0);  // probe noise allowance
  }
}

TEST_P(OrchestratorPropertyTest, ObservationsOnlyFromAdvertisedSessions) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 4;
  Orchestrator orch{inst_, cfg};
  const auto config = orch.ComputeConfig();
  SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{GetParam() + 4}};
  const auto obs = env.Execute(config);
  ASSERT_EQ(obs.size(), config.PrefixCount());
  for (std::size_t p = 0; p < obs.size(); ++p) {
    const auto& sessions = config.Sessions(p);
    for (const auto& ingress : obs[p].ingress_of_ug) {
      if (!ingress.has_value()) continue;
      EXPECT_TRUE(std::binary_search(sessions.begin(), sessions.end(),
                                     *ingress));
    }
  }
}

TEST_P(OrchestratorPropertyTest, PainterDominatesBaselinesInModel) {
  // The Fig. 6a invariant, per seed: PAINTER's modeled estimated benefit at
  // a small budget is at least every baseline's.
  constexpr std::size_t kBudget = 3;
  OrchestratorConfig cfg;
  cfg.prefix_budget = kBudget;
  Orchestrator orch{inst_, cfg};
  const RoutingModel model{inst_.UgCount()};
  const ExpectationParams params;
  const double painter =
      PredictBenefit(inst_, model, orch.ComputeConfig(), params).estimated_ms;
  EXPECT_GE(painter,
            PredictBenefit(inst_, model,
                           OnePerPop(*w_.deployment, inst_, kBudget), params)
                    .estimated_ms -
                1e-9);
  EXPECT_GE(painter,
            PredictBenefit(inst_, model,
                           OnePerPeering(*w_.deployment, inst_, kBudget),
                           params)
                    .estimated_ms -
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrchestratorPropertyTest,
                         ::testing::Values(3, 17, 64, 301, 888));

}  // namespace
}  // namespace painter::core
