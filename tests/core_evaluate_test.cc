#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

class EvaluateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld();
    inst_ = test::MakeInstance(w_);
    eval_ = std::make_unique<GroundTruthEvaluator>(*w_.deployment,
                                                   *w_.resolver, *w_.oracle);
  }
  AdvertisementConfig Painter(std::size_t budget) {
    OrchestratorConfig cfg;
    cfg.prefix_budget = budget;
    Orchestrator orch{inst_, cfg};
    return orch.ComputeConfig();
  }
  test::World w_;
  ProblemInstance inst_;
  std::unique_ptr<GroundTruthEvaluator> eval_;
};

TEST_F(EvaluateTest, PredictRangesOrdered) {
  const RoutingModel model{inst_.UgCount()};
  const auto cfg = OnePerPop(*w_.deployment, inst_, 4);
  const auto pred = PredictBenefit(inst_, model, cfg, {});
  EXPECT_LE(pred.lower_ms, pred.mean_ms + 1e-9);
  EXPECT_LE(pred.mean_ms, pred.upper_ms + 1e-9);
  EXPECT_GE(pred.estimated_ms, pred.lower_ms - 1e-9);
  EXPECT_LE(pred.estimated_ms, pred.upper_ms + 1e-9);
  EXPECT_GE(pred.lower_ms, 0.0);
}

TEST_F(EvaluateTest, OnePerPeeringHasNoUncertainty) {
  const RoutingModel model{inst_.UgCount()};
  const auto cfg = OnePerPeering(*w_.deployment, inst_, 10);
  const auto pred = PredictBenefit(inst_, model, cfg, {});
  EXPECT_NEAR(pred.lower_ms, pred.upper_ms, 1e-9);
  EXPECT_NEAR(pred.mean_ms, pred.estimated_ms, 1e-9);
}

TEST_F(EvaluateTest, PerPopHasWiderRangeThanPerPeering) {
  // The Fig. 14 structure: per-PoP prefixes expose many possibly-poor
  // candidates per UG, so their benefit range is wider.
  const RoutingModel model{inst_.UgCount()};
  const auto pop = PredictBenefit(inst_, model,
                                  OnePerPop(*w_.deployment, inst_, 6), {});
  const auto peering = PredictBenefit(
      inst_, model, OnePerPeering(*w_.deployment, inst_, 6), {});
  EXPECT_GT(pop.upper_ms - pop.lower_ms,
            peering.upper_ms - peering.lower_ms - 1e-9);
}

TEST_F(EvaluateTest, EmptyConfigPredictsZero) {
  const RoutingModel model{inst_.UgCount()};
  const auto pred = PredictBenefit(inst_, model, AdvertisementConfig{}, {});
  EXPECT_DOUBLE_EQ(pred.mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(pred.upper_ms, 0.0);
}

TEST_F(EvaluateTest, GroundTruthBoundedByPossible) {
  const auto cfg = Painter(6);
  eval_->SetConfig(cfg);
  const double realized = eval_->MeanImprovementMs(0);
  const double possible = eval_->PossibleMeanImprovementMs(*w_.catalog, 0);
  EXPECT_GE(realized, 0.0);
  EXPECT_LE(realized, possible + 1e-9);
}

TEST_F(EvaluateTest, DynamicAtLeastStatic) {
  const auto cfg = Painter(6);
  eval_->SetConfig(cfg);
  const auto choices = eval_->Choices(0);
  for (int day = 0; day <= 20; day += 4) {
    EXPECT_GE(eval_->MeanImprovementMs(day) + 1e-9,
              eval_->MeanImprovementStaticMs(choices, day));
  }
}

TEST_F(EvaluateTest, ChoicesIndexValidPrefixes) {
  const auto cfg = Painter(5);
  eval_->SetConfig(cfg);
  const auto choices = eval_->Choices(0);
  ASSERT_EQ(choices.size(), w_.deployment->ugs().size());
  for (const int c : choices) {
    EXPECT_GE(c, -1);
    EXPECT_LT(c, static_cast<int>(cfg.PrefixCount()));
  }
}

TEST_F(EvaluateTest, StaticChoiceAtDayZeroMatchesDynamic) {
  const auto cfg = Painter(5);
  eval_->SetConfig(cfg);
  const auto choices = eval_->Choices(0);
  EXPECT_NEAR(eval_->MeanImprovementStaticMs(choices, 0),
              eval_->MeanImprovementMs(0), 1e-9);
}

TEST_F(EvaluateTest, BenefitingUgsHaveRealHeadroom) {
  const auto benefiting = eval_->BenefitingUgs(*w_.catalog, 1.0);
  EXPECT_FALSE(benefiting.empty());
  EXPECT_LT(benefiting.size(), w_.deployment->ugs().size());
  for (const std::uint32_t u : benefiting) {
    const util::UgId id{u};
    double best = 1e18;
    for (const auto pid : w_.catalog->CompliantPeerings(id)) {
      best = std::min(best, w_.oracle->TrueRtt(id, pid).count());
    }
    // Anycast must exceed the best compliant option by > 1 ms.
    eval_->SetConfig(AdvertisementConfig{});
    EXPECT_GT(inst_.anycast_rtt_ms[u], best);  // probes only add latency
  }
}

TEST_F(EvaluateTest, HigherThresholdShrinksBenefitingSet) {
  const auto loose = eval_->BenefitingUgs(*w_.catalog, 0.5);
  const auto tight = eval_->BenefitingUgs(*w_.catalog, 20.0);
  EXPECT_LE(tight.size(), loose.size());
}

TEST_F(EvaluateTest, MeanOverUgsMatchesManualAverage) {
  const auto cfg = Painter(4);
  eval_->SetConfig(cfg);
  const auto subset = eval_->BenefitingUgs(*w_.catalog);
  const double reported = eval_->MeanImprovementOverUgsMs(subset, 0);
  EXPECT_GE(reported, 0.0);
  // Averaging over everyone dilutes relative to the benefiting subset.
  std::vector<std::uint32_t> everyone;
  for (const auto& ug : w_.deployment->ugs()) everyone.push_back(ug.id.value());
  EXPECT_GE(reported + 1e-9, eval_->MeanImprovementOverUgsMs(everyone, 0));
}

TEST_F(EvaluateTest, BenefitingUgsUsesRequestedDay) {
  // Regression: BenefitingUgs used the day-0 truth (TrueRtt / RttOf day 0)
  // regardless of the day the caller evaluated improvements at. Both sides
  // must come from the requested day's ground truth.
  const int day = 15;
  std::vector<util::PeeringId> all;
  for (const auto& p : w_.deployment->peerings()) all.push_back(p.id);
  const auto anycast = w_.resolver->Resolve(all);
  const auto benefiting = eval_->BenefitingUgs(*w_.catalog, 1.0, day);
  EXPECT_FALSE(benefiting.empty());
  for (const std::uint32_t u : benefiting) {
    const util::UgId id{u};
    ASSERT_TRUE(anycast.at(u).has_value());
    const double any =
        w_.oracle->TrueRttOnDay(id, *anycast.at(u), day).count();
    double best = any;
    for (const auto pid : w_.catalog->CompliantPeerings(id)) {
      best = std::min(best, w_.oracle->TrueRttOnDay(id, pid, day).count());
    }
    EXPECT_GT(any - best, 1.0) << "ug " << u << " at day " << day;
  }
}

TEST_F(EvaluateTest, BenefitingUgsDefaultsToDayZero) {
  EXPECT_EQ(eval_->BenefitingUgs(*w_.catalog, 1.0),
            eval_->BenefitingUgs(*w_.catalog, 1.0, 0));
}

TEST_F(EvaluateTest, GroundTruthParallelBitIdenticalToSerial) {
  const auto cfg = Painter(5);
  eval_->SetConfig(cfg);
  const int day = 3;
  const double mean = eval_->MeanImprovementMs(day);
  const double positive = eval_->PositiveMeanImprovementMs(day);
  const auto choices = eval_->Choices(day);
  const auto benefiting = eval_->BenefitingUgs(*w_.catalog, 1.0, day);
  const double possible = eval_->PossibleMeanImprovementMs(*w_.catalog, day);
  for (const std::size_t t : {2ul, 8ul}) {
    eval_->SetNumThreads(t);
    EXPECT_EQ(eval_->MeanImprovementMs(day), mean) << t << " threads";
    EXPECT_EQ(eval_->PositiveMeanImprovementMs(day), positive);
    EXPECT_EQ(eval_->Choices(day), choices);
    EXPECT_EQ(eval_->BenefitingUgs(*w_.catalog, 1.0, day), benefiting);
    EXPECT_EQ(eval_->PossibleMeanImprovementMs(*w_.catalog, day), possible);
    // The parallel prefix resolution of SetConfig must land each prefix's
    // ingresses in the same rows the serial fill produces.
    eval_->SetConfig(cfg);
    EXPECT_EQ(eval_->MeanImprovementMs(day), mean) << t << " threads";
    EXPECT_EQ(eval_->Choices(day), choices);
  }
  eval_->SetNumThreads(1);
  eval_->SetConfig(cfg);
}

TEST_F(EvaluateTest, PredictAndDnsSteeringParallelBitIdenticalToSerial) {
  const auto cfg = Painter(5);
  const RoutingModel model{inst_.UgCount()};
  DnsSteeringInput dns;
  dns.resolver_supports_ecs = {false, true, false, false};
  dns.resolver_of_ug.resize(inst_.UgCount());
  for (std::uint32_t u = 0; u < inst_.UgCount(); ++u) {
    dns.resolver_of_ug[u] = u % dns.resolver_supports_ecs.size();
  }
  const auto pred = PredictBenefit(inst_, model, cfg, {}, 1);
  const double steered = EvaluateDnsSteering(inst_, model, cfg, {}, dns, 1);
  for (const std::size_t t : {2ul, 8ul}) {
    const auto p = PredictBenefit(inst_, model, cfg, {}, t);
    EXPECT_EQ(p.lower_ms, pred.lower_ms) << t << " threads";
    EXPECT_EQ(p.mean_ms, pred.mean_ms);
    EXPECT_EQ(p.estimated_ms, pred.estimated_ms);
    EXPECT_EQ(p.upper_ms, pred.upper_ms);
    EXPECT_EQ(EvaluateDnsSteering(inst_, model, cfg, {}, dns, t), steered);
  }
}

TEST_F(EvaluateTest, TruncateMonotoneInModel) {
  const auto cfg = Painter(8);
  const RoutingModel model{inst_.UgCount()};
  double prev = -1.0;
  for (std::size_t b = 0; b <= cfg.PrefixCount(); ++b) {
    const double v = PredictBenefit(inst_, model, Truncate(cfg, b), {}).mean_ms;
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

TEST_F(EvaluateTest, DnsSteeringNeverBeatsPerFlow) {
  const auto cfg = Painter(6);
  const RoutingModel model{inst_.UgCount()};
  const double per_flow = PredictBenefit(inst_, model, cfg, {}).mean_ms;
  // Sweep resolver counts: any resolver partition is at most per-flow.
  for (const std::size_t resolvers : {1ul, 2ul, 8ul}) {
    DnsSteeringInput dns;
    dns.resolver_supports_ecs.assign(resolvers, false);
    dns.resolver_of_ug.resize(inst_.UgCount());
    for (std::uint32_t u = 0; u < inst_.UgCount(); ++u) {
      dns.resolver_of_ug[u] = u % resolvers;
    }
    EXPECT_LE(EvaluateDnsSteering(inst_, model, cfg, {}, dns),
              per_flow + 1e-9);
  }
}

TEST_F(EvaluateTest, FinerResolversGiveMoreDnsBenefit) {
  const auto cfg = Painter(6);
  const RoutingModel model{inst_.UgCount()};
  auto run = [&](std::size_t resolvers) {
    DnsSteeringInput dns;
    dns.resolver_supports_ecs.assign(resolvers, false);
    dns.resolver_of_ug.resize(inst_.UgCount());
    for (std::uint32_t u = 0; u < inst_.UgCount(); ++u) {
      dns.resolver_of_ug[u] = u % resolvers;
    }
    return EvaluateDnsSteering(inst_, model, cfg, {}, dns);
  };
  // A strictly finer partition by UG id refines the coarser one.
  EXPECT_LE(run(1), run(4) + 1e-9);
  EXPECT_LE(run(4), run(32) + 1e-9);
}

}  // namespace
}  // namespace painter::core
