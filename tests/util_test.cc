#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "util/ids.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace painter::util {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  AsId id;
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, ValueRoundTrip) {
  AsId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(AsId{1}, AsId{2});
  EXPECT_EQ(AsId{7}, AsId{7});
  EXPECT_NE(AsId{7}, AsId{8});
}

TEST(StrongId, DistinctTypesDoNotMix) {
  // Compile-time property; hashing works per type.
  std::unordered_set<AsId> as_set{AsId{1}, AsId{2}, AsId{1}};
  EXPECT_EQ(as_set.size(), 2u);
  std::unordered_set<PopId> pop_set{PopId{1}};
  EXPECT_EQ(pop_set.size(), 1u);
}

TEST(Units, MillisArithmetic) {
  Millis a{10.0};
  Millis b{2.5};
  EXPECT_DOUBLE_EQ((a + b).count(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).count(), 7.5);
  EXPECT_DOUBLE_EQ((a * 2.0).count(), 20.0);
  EXPECT_DOUBLE_EQ((a / 2.0).count(), 5.0);
  EXPECT_LT(b, a);
}

TEST(Units, FiberLatencyMatchesSpeedOfLightInFiber) {
  // 200 km of fiber is 1 ms one-way, 2 ms RTT.
  EXPECT_DOUBLE_EQ(FiberLatency(Km{200.0}).count(), 1.0);
  EXPECT_DOUBLE_EQ(FiberRtt(Km{200.0}).count(), 2.0);
}

TEST(Rng, Deterministic) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform01() != b.Uniform01()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng{7};
  const double w[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(w), 1u);
  }
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  Rng rng{7};
  const double w[] = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(w), 2u);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(5.0, 1.5), 5.0);
  }
}

TEST(Stats, MeanAndVariance) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Variance(xs), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Stats, WeightedMean) {
  const double xs[] = {1.0, 10.0};
  const double ws[] = {9.0, 1.0};
  EXPECT_NEAR(WeightedMean(xs, ws), 1.9, 1e-12);
}

TEST(Stats, WeightedMeanSizeMismatchThrows) {
  const double xs[] = {1.0};
  const double ws[] = {1.0, 2.0};
  EXPECT_THROW((void)WeightedMean(xs, ws), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const double xs[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 10.0);
}

TEST(Stats, PercentileOutOfRangeThrows) {
  const double xs[] = {1.0};
  EXPECT_THROW((void)Percentile(xs, 101.0), std::invalid_argument);
}

TEST(EmpiricalCdfTest, FractionAndQuantile) {
  EmpiricalCdf cdf;
  cdf.Add(1.0);
  cdf.Add(2.0);
  cdf.Add(3.0);
  cdf.Add(4.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.0);
}

TEST(EmpiricalCdfTest, Weighted) {
  EmpiricalCdf cdf;
  cdf.Add(1.0, 3.0);
  cdf.Add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.75);
}

TEST(EmpiricalCdfTest, NegativeWeightThrows) {
  EmpiricalCdf cdf;
  EXPECT_THROW(cdf.Add(1.0, -1.0), std::invalid_argument);
}

TEST(EmpiricalCdfTest, SeriesCoversRange) {
  EmpiricalCdf cdf;
  for (int i = 0; i <= 10; ++i) cdf.Add(i);
  const auto series = cdf.Series(5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 10.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(EmpiricalCdfTest, WeightedQuantile) {
  // Quantile is the first sample whose cumulative weight reaches q * total:
  // with (1, w=1) and (2, w=3), a quarter of the mass sits at 1.
  EmpiricalCdf cdf;
  cdf.Add(2.0, 3.0);
  cdf.Add(1.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.26), 2.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);  // smallest sample
}

TEST(EmpiricalCdfTest, QuantileOutOfRangeThrows) {
  EmpiricalCdf cdf;
  cdf.Add(1.0);
  EXPECT_THROW((void)cdf.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)cdf.Quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdfTest, SeriesEndpointsAreMinAndMax) {
  EmpiricalCdf cdf;
  cdf.Add(2.0);
  cdf.Add(4.0);
  cdf.Add(6.0);
  cdf.Add(8.0);
  const auto series = cdf.Series(4);
  ASSERT_EQ(series.size(), 4u);
  // First point sits at the minimum with that sample's own mass...
  EXPECT_DOUBLE_EQ(series.front().first, 2.0);
  EXPECT_DOUBLE_EQ(series.front().second, 0.25);
  // ...and the last point closes the CDF at (max, 1.0).
  EXPECT_DOUBLE_EQ(series.back().first, 8.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(EmpiricalCdfTest, SingleSample) {
  EmpiricalCdf cdf;
  cdf.Add(5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(4.9), 0.0);
  const auto series = cdf.Series(10);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series.front().first, 5.0);
  EXPECT_DOUBLE_EQ(series.front().second, 1.0);
}

TEST(EmpiricalCdfTest, AllEqualSamplesCollapseToOnePoint) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 7; ++i) cdf.Add(3.0);
  const auto series = cdf.Series(5);
  ASSERT_EQ(series.size(), 1u);  // lo == hi: a single (value, 1.0) point
  EXPECT_DOUBLE_EQ(series.front().first, 3.0);
  EXPECT_DOUBLE_EQ(series.front().second, 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 3.0);
}

TEST(EmpiricalCdfTest, EmptyCdf) {
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.Series(5).empty());
}

TEST(Accumulator, TracksMinMeanMax) {
  Accumulator acc;
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(9.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
}

TEST(TableTest, PrintsAlignedRows) {
  Table t{{"a", "long_header"}};
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(TableTest, WrongCellCountThrows) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumAndPctFormat) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Pct(0.5, 1), "50.0%");
}

TEST(SweepTest, MismatchedSeriesThrows) {
  std::ostringstream os;
  EXPECT_THROW(
      PrintSweep(os, "x", {1.0, 2.0}, {Series{"s", {1.0}}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace painter::util
