// Chaos property suite: random worlds × random FaultPlans × thread counts.
//
// For every seed we generate a small TM world (PoPs, tunnels with random
// steady delays, client flows) and a random fault plan, run them through the
// plan-driven scenario engine, and demand the four §5.2.3 invariants
// (pinning, detection latency, no silent blackholing, reconvergence). On
// top of that:
//  - the whole batch must produce bit-identical results at 1, 2, and 4
//    worker threads (the determinism rule from DESIGN.md), and
//  - a painter.bench.v1 report for a fixed seed must be byte-identical
//    across reruns once obs::StripVolatile removes wall-clock noise, and
//  - BGP-layer replays (session flaps, peering withdrawals) must converge
//    back to the static Gao–Rexford fixpoint once the plan clears.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bgpsim/session_sim.h"
#include "faultsim/bgp_replay.h"
#include "faultsim/fault_plan.h"
#include "faultsim/invariants.h"
#include "faultsim/scenario.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "tests/world_fixture.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace painter::faultsim {
namespace {

FaultPlan RandomPlan(std::uint64_t seed, const FaultScenarioSpec& spec) {
  PlanSpec ps;
  ps.tunnels = spec.tunnels.size();
  ps.pops = spec.pop_names.size();
  // Faults must clear well before the end so reconvergence is checkable:
  // latest onset 60 + max duration 15 + settle 5 < run_for 90.
  ps.latest_s = 60.0;
  return GenerateRandomPlan(seed, ps);
}

struct SeedOutcome {
  std::size_t checks = 0;
  std::size_t failovers = 0;
  std::size_t samples = 0;
  std::vector<std::string> violations;
};

SeedOutcome RunSeed(std::uint64_t seed) {
  const FaultScenarioSpec spec = GenerateRandomSpec(seed);
  const FaultPlan plan = RandomPlan(seed, spec);
  const FaultScenarioResult result = RunFaultScenario(spec, plan);
  const InvariantReport rep = CheckTmInvariants(spec, plan, result);
  return SeedOutcome{.checks = rep.checks,
                     .failovers = result.failovers.size(),
                     .samples = result.samples.size(),
                     .violations = rep.violations};
}

TEST(FaultsimProperty, InvariantsHoldAcrossRandomPlans) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const SeedOutcome out = RunSeed(seed);
    EXPECT_GT(out.samples, 0u) << "seed " << seed;
    EXPECT_GT(out.checks, 0u) << "seed " << seed;
    for (const std::string& v : out.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
  }
}

TEST(FaultsimProperty, BatchIsBitIdenticalAtAnyThreadCount) {
  constexpr std::size_t kSeeds = 8;
  const auto run_batch = [](std::size_t num_threads) {
    std::vector<SeedOutcome> out(kSeeds);
    util::ParallelFor(num_threads, 0, kSeeds, 1,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t s = lo; s < hi; ++s) {
                          out[s] = RunSeed(100 + s);
                        }
                      });
    return out;
  };

  const auto serial = run_batch(1);
  for (const std::size_t threads : {2u, 4u}) {
    const auto parallel = run_batch(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t s = 0; s < kSeeds; ++s) {
      EXPECT_EQ(parallel[s].checks, serial[s].checks)
          << threads << " threads, seed " << 100 + s;
      EXPECT_EQ(parallel[s].failovers, serial[s].failovers);
      EXPECT_EQ(parallel[s].samples, serial[s].samples);
      EXPECT_EQ(parallel[s].violations, serial[s].violations);
    }
  }
}

std::string ReportJsonForSeed(std::uint64_t seed) {
  obs::Metrics().ResetValues();
  const FaultScenarioSpec spec = GenerateRandomSpec(seed);
  const FaultPlan plan = RandomPlan(seed, spec);
  const FaultScenarioResult result = RunFaultScenario(spec, plan);
  const InvariantReport rep = CheckTmInvariants(spec, plan, result);

  obs::RunReport report{"property_faultsim"};
  report.SetSeed(seed);
  report.AddConfig("plan", ToString(plan));
  report.AddValue("checks", static_cast<double>(rep.checks));
  report.AddValue("violations", static_cast<double>(rep.violations.size()));
  report.AddValue("failovers", static_cast<double>(result.failovers.size()));
  report.AddValue("samples", static_cast<double>(result.samples.size()));
  report.AttachMetrics();
  return obs::StripVolatile(report.ToJson());
}

TEST(FaultsimProperty, SameSeedReportsAreByteIdentical) {
  const std::string a = ReportJsonForSeed(7);
  const std::string b = ReportJsonForSeed(7);
  EXPECT_EQ(a, b);
  const std::string c = ReportJsonForSeed(8);
  EXPECT_NE(a, c);  // and the seed actually matters
}

// Distinct neighbor ASes holding sessions in a world's deployment.
std::vector<util::AsId> NeighborAses(const test::World& w) {
  std::vector<util::AsId> out;
  for (const auto& sess : w.deployment->peerings()) {
    if (std::find(out.begin(), out.end(), sess.peer) == out.end()) {
      out.push_back(sess.peer);
    }
  }
  return out;
}

TEST(FaultsimProperty, BgpReplayConvergesBackToFixpoint) {
  for (const std::uint64_t seed : {3u, 21u, 64u}) {
    const test::World& w = test::SharedWorld(seed, 80, 5);
    const auto neighbors = NeighborAses(w);
    ASSERT_FALSE(neighbors.empty());

    netsim::Simulator sim;
    bgpsim::MessageLevelSim msim{
        w.internet().graph, w.deployment->cloud_as(), sim, {.seed = seed}};
    msim.Announce(neighbors);
    sim.Run(1e6);
    ASSERT_TRUE(sim.Empty());

    PlanSpec ps;
    ps.neighbors = neighbors.size();
    const FaultPlan plan = GenerateRandomPlan(seed, ps);
    ASSERT_TRUE(plan.HasBgpEvents());  // only BGP targets are drawable
    const BgpReplayStats stats =
        ScheduleBgpFaults(plan, neighbors, msim, sim);
    EXPECT_GT(stats.events_applied, 0u);
    EXPECT_EQ(stats.withdraw_ops, stats.announce_ops);

    const auto msgs_before = msim.MessagesProcessed();
    sim.Run(sim.Now() + 1e6);
    ASSERT_TRUE(sim.Empty());  // fully quiesced after the plan
    EXPECT_GT(msim.MessagesProcessed(), msgs_before);  // real churn happened

    const auto mismatches = CheckBgpConvergence(
        w.internet().graph, w.deployment->cloud_as(), neighbors, msim);
    for (const std::string& m : mismatches) {
      ADD_FAILURE() << "seed " << seed << ": " << m;
    }
  }
}

}  // namespace
}  // namespace painter::faultsim
