// End-to-end observability check: run the learning loop on a small world
// with metrics and tracing enabled, then parse the emitted JSON and verify
// the acceptance-level telemetry is present — per-iteration realized
// benefit, CELF evaluation counts, the thread-pool queue-wait histogram —
// and that two identical runs produce byte-identical documents once the
// wall-clock fields are stripped (the determinism contract from DESIGN.md).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/sim_environment.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tests/json_test_util.h"
#include "tests/world_fixture.h"

namespace painter {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld();
    inst_ = test::MakeInstance(w_);
  }

  // One full learning run with fixed seeds, instrumented registry-wide.
  // Returns the metrics snapshot taken right after the run.
  std::string RunLearningOnce(const std::string& trace_path) {
    obs::Metrics().ResetValues();
    if (!trace_path.empty()) obs::TraceSink::Enable(trace_path);

    core::OrchestratorConfig cfg;
    cfg.prefix_budget = 4;
    cfg.max_learning_iterations = 3;
    cfg.learning_stop_frac = -1.0;  // run all 3 iterations every time
    cfg.num_threads = 4;
    core::Orchestrator orch{inst_, cfg};
    core::SimEnvironment env{*w_.resolver, *w_.oracle, util::Rng{9}};
    const auto reports = orch.Learn(env);
    EXPECT_FALSE(reports.empty());
    last_realized_ms_ = reports.back().realized_ms;

    if (!trace_path.empty()) obs::TraceSink::Disable();
    return obs::Metrics().ToJson();
  }

  test::World w_;
  core::ProblemInstance inst_;
  double last_realized_ms_ = 0.0;
};

TEST_F(ObsIntegrationTest, MetricsCaptureLearningRun) {
  const std::string json = RunLearningOnce("");
  const test::JsonValue doc = test::ParseJson(json);

  const test::JsonValue& counters = doc.At("counters");
  // CELF work actually happened and was counted.
  EXPECT_GT(counters.At("orchestrator.celf.evaluations").AsNumber(), 0.0);
  EXPECT_GT(counters.At("orchestrator.celf.commits").AsNumber(), 0.0);
  EXPECT_EQ(counters.At("orchestrator.learn.iterations").AsNumber(), 3.0);
  EXPECT_GT(counters.At("orchestrator.model.observations").AsNumber(), 0.0);
  EXPECT_GT(counters.At("model.preferences_learned").AsNumber(), 0.0);
  EXPECT_GT(counters.At("evaluator.predict.calls").AsNumber(), 0.0);
  EXPECT_GT(counters.At("bgpsim.propagations").AsNumber(), 0.0);
  // The parallel seeding scan ran through the pool.
  EXPECT_GT(counters.At("threadpool.parallel_for.calls").AsNumber(), 0.0);

  // Per-iteration learning telemetry, one gauge set per iteration.
  const test::JsonValue& gauges = doc.At("gauges");
  for (int iter = 0; iter < 3; ++iter) {
    const std::string prefix =
        "orchestrator.learn.iter" + std::to_string(iter) + ".";
    EXPECT_TRUE(gauges.Has(prefix + "realized_ms")) << prefix;
    EXPECT_TRUE(gauges.Has(prefix + "predicted_mean_ms")) << prefix;
    EXPECT_TRUE(gauges.Has(prefix + "prefixes_used")) << prefix;
    EXPECT_TRUE(gauges.Has(prefix + "preferences_total")) << prefix;
  }
  // The exported gauge agrees with the run's actual result.
  EXPECT_DOUBLE_EQ(
      gauges.At("orchestrator.learn.iter2.realized_ms").AsNumber(),
      last_realized_ms_);
  EXPECT_LE(gauges.At("orchestrator.prefix_budget.used").AsNumber(),
            gauges.At("orchestrator.prefix_budget.total").AsNumber());

  // Thread-pool queue-wait histogram: wall-clock values under wall_ keys,
  // with a workload-driven sample count.
  const test::JsonValue& hist =
      doc.At("histograms").At("threadpool.queue_wait_us");
  EXPECT_GT(hist.At("count").AsNumber(), 0.0);
  EXPECT_TRUE(hist.Has("wall_buckets"));
}

TEST_F(ObsIntegrationTest, TraceFileIsLoadableAndCoversTheRun) {
  const std::string path = ::testing::TempDir() + "obs_integration_trace.json";
  RunLearningOnce(path);

  const test::JsonValue doc = test::ParseJson(ReadFile(path));
  ASSERT_TRUE(doc.IsArray());
  const auto& events = doc.AsArray();
  ASSERT_FALSE(events.empty());

  int compute_config = 0;
  int learn_iteration = 0;
  int predict = 0;
  for (const auto& e : events) {
    const std::string& name = e.At("name").AsString();
    EXPECT_TRUE(e.Has("ts"));
    EXPECT_TRUE(e.Has("ph"));
    if (name == "orchestrator.ComputeConfig") ++compute_config;
    if (name == "orchestrator.learn.iteration") ++learn_iteration;
    if (name == "orchestrator.Predict") ++predict;
  }
  EXPECT_GE(compute_config, 1);
  EXPECT_EQ(learn_iteration, 3);
  EXPECT_GE(predict, 1);
}

TEST_F(ObsIntegrationTest, IdenticalRunsProduceByteIdenticalReports) {
  const std::string trace_a = ::testing::TempDir() + "obs_det_a.json";
  const std::string trace_b = ::testing::TempDir() + "obs_det_b.json";
  const std::string metrics_a = RunLearningOnce(trace_a);
  const std::string metrics_b = RunLearningOnce(trace_b);

  // Metrics: every non-wall-clock value (counters, gauges, histogram counts)
  // must match exactly; stripping only removes the wall_* timing payloads.
  EXPECT_EQ(obs::StripVolatile(metrics_a), obs::StripVolatile(metrics_b));

  // Trace: same span sequence, differing only in ts/dur.
  EXPECT_EQ(obs::StripVolatile(ReadFile(trace_a)),
            obs::StripVolatile(ReadFile(trace_b)));
}

TEST_F(ObsIntegrationTest, RunReportRoundTripsThroughDisk) {
  const std::string metrics_json = RunLearningOnce("");

  obs::RunReport report{"integration"};
  report.SetSeed(11);
  report.AddConfig("stubs", 150.0);
  report.AddPhaseMs("learn", 1.0);
  report.AddValue("realized_ms", last_realized_ms_);
  report.AttachMetrics();

  const std::string path = ::testing::TempDir() + "obs_integration_report.json";
  report.Write(path);
  const test::JsonValue doc = test::ParseJson(ReadFile(path));
  EXPECT_EQ(doc.At("schema").AsString(), "painter.bench.v1");
  EXPECT_DOUBLE_EQ(doc.At("values").At("realized_ms").AsNumber(),
                   last_realized_ms_);
  // The attached metrics are the live registry — same counters the direct
  // snapshot saw.
  const test::JsonValue direct = test::ParseJson(metrics_json);
  EXPECT_EQ(doc.At("metrics")
                .At("counters")
                .At("orchestrator.celf.evaluations")
                .AsNumber(),
            direct.At("counters")
                .At("orchestrator.celf.evaluations")
                .AsNumber());
}

}  // namespace
}  // namespace painter
