#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/orchestrator.h"
#include "core/prefix_pool.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

TEST(Ipv4PrefixTest, ToStringFormats) {
  EXPECT_EQ((Ipv4Prefix{0xCB007B00u, 24}.ToString()), "203.0.123.0/24");
  EXPECT_EQ((Ipv4Prefix{0x01010100u, 24}.ToString()), "1.1.1.0/24");
}

TEST(Ipv4PrefixTest, ParseRoundTrip) {
  for (const char* text : {"203.0.123.0/24", "10.0.0.0/8", "1.1.1.0/24",
                           "192.168.4.128/25", "0.0.0.0/0"}) {
    const auto p = ParsePrefix(text);
    ASSERT_TRUE(p.has_value()) << text;
    EXPECT_EQ(p->ToString(), text);
  }
}

TEST(Ipv4PrefixTest, ParseRejectsMalformed) {
  for (const char* text :
       {"", "1.2.3.4", "1.2.3/24", "256.0.0.0/8", "1.2.3.4/33",
        "1.2.3.4/-1", "a.b.c.d/24", "1.2.3.4/24x"}) {
    EXPECT_FALSE(ParsePrefix(text).has_value()) << text;
  }
}

TEST(Ipv4PrefixTest, ParseRejectsHostBits) {
  EXPECT_FALSE(ParsePrefix("1.2.3.4/24").has_value());
  EXPECT_TRUE(ParsePrefix("1.2.3.4/32").has_value());
}

TEST(Ipv4PrefixTest, Contains) {
  const auto p = ParsePrefix("203.0.16.0/20").value();
  EXPECT_TRUE(p.Contains(0xCB001001u));   // 203.0.16.1
  EXPECT_TRUE(p.Contains(0xCB001FFFu));   // 203.0.31.255
  EXPECT_FALSE(p.Contains(0xCB002000u));  // 203.0.32.0
}

TEST(PrefixPoolTest, CapacityFromSupernet) {
  PrefixPool pool{ParsePrefix("203.0.0.0/16").value(), 24};
  EXPECT_EQ(pool.Capacity(), 256u);
  EXPECT_EQ(pool.Allocated(), 0u);
}

TEST(PrefixPoolTest, AllocateSequentialDisjoint) {
  PrefixPool pool{ParsePrefix("203.0.0.0/22").value(), 24};
  const auto a = pool.Allocate();
  const auto b = pool.Allocate();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(a->ToString(), "203.0.0.0/24");
  EXPECT_EQ(b->ToString(), "203.0.1.0/24");
}

TEST(PrefixPoolTest, ExhaustionAndRelease) {
  PrefixPool pool{ParsePrefix("203.0.0.0/23").value(), 24};
  const auto a = pool.Allocate();
  const auto b = pool.Allocate();
  EXPECT_FALSE(pool.Allocate().has_value());
  EXPECT_TRUE(pool.Release(*a));
  EXPECT_FALSE(pool.Release(*a));  // double release
  const auto c = pool.Allocate();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *a);
  (void)b;
}

TEST(PrefixPoolTest, ReleaseRejectsForeignPrefix) {
  PrefixPool pool{ParsePrefix("203.0.0.0/20").value(), 24};
  EXPECT_FALSE(pool.Release(ParsePrefix("10.0.0.0/24").value()));
  EXPECT_FALSE(pool.Release(ParsePrefix("203.0.0.0/25").value()));
}

TEST(PrefixPoolTest, CostAccounting) {
  PrefixPool pool{ParsePrefix("203.0.0.0/20").value(), 24, 20000.0};
  (void)pool.Allocate();
  (void)pool.Allocate();
  (void)pool.Allocate();
  EXPECT_DOUBLE_EQ(pool.TotalCostUsd(), 60000.0);
}

TEST(PrefixPoolTest, InvalidConfigThrows) {
  EXPECT_THROW(PrefixPool(ParsePrefix("203.0.0.0/24").value(), 16),
               std::invalid_argument);
  EXPECT_THROW(PrefixPool(ParsePrefix("0.0.0.0/0").value(), 24),
               std::invalid_argument);
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld();
    inst_ = test::MakeInstance(w_);
  }
  test::World w_;
  ProblemInstance inst_;
};

TEST_F(PlanTest, BindPrefixesAssignsDistinctBlocks) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 4;
  Orchestrator orch{inst_, cfg};
  const auto config = orch.ComputeConfig();

  PrefixPool pool{ParsePrefix("203.0.0.0/16").value(), 24};
  const auto plan = BindPrefixes(config, pool);
  ASSERT_EQ(plan.prefix_of_index.size(), config.PrefixCount());
  for (std::size_t i = 0; i < plan.prefix_of_index.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.prefix_of_index.size(); ++j) {
      EXPECT_NE(plan.prefix_of_index[i], plan.prefix_of_index[j]);
    }
  }
  EXPECT_DOUBLE_EQ(plan.cost_usd,
                   20000.0 * static_cast<double>(config.PrefixCount()));
}

TEST_F(PlanTest, BindPrefixesExhaustionRollsBack) {
  AdvertisementConfig config;
  for (int i = 0; i < 3; ++i) {
    config.AddPrefix({w_.deployment->peerings()[i].id});
  }
  PrefixPool pool{ParsePrefix("203.0.0.0/23").value(), 24};  // only 2 blocks
  EXPECT_THROW((void)BindPrefixes(config, pool), std::runtime_error);
  EXPECT_EQ(pool.Allocated(), 0u);  // all-or-nothing
}

TEST_F(PlanTest, RibFootprintAnycastInEveryReachableRib) {
  const auto anycast = AnycastConfig(*w_.deployment);
  const auto fp = ComputeRibFootprint(anycast, *w_.resolver);
  ASSERT_EQ(fp.ases_carrying.size(), 1u);
  // Transit announcements put the anycast prefix in essentially every RIB
  // (all ASes that can reach the cloud at all).
  EXPECT_GT(fp.ases_carrying[0], w_.internet().graph.size() * 9 / 10);
}

TEST_F(PlanTest, PeerOnlyPrefixStaysInCustomerCone) {
  // A prefix announced only via one non-transit peer occupies RIB slots only
  // inside that peer's customer cone (plus the peer itself).
  for (const auto& sess : w_.deployment->peerings()) {
    if (sess.transit) continue;
    AdvertisementConfig config;
    config.AddPrefix({sess.id});
    const auto fp = ComputeRibFootprint(config, *w_.resolver);
    const auto cone = w_.internet().graph.CustomerCone(sess.peer);
    EXPECT_LE(fp.ases_carrying[0], cone.size());
    break;
  }
}

TEST_F(PlanTest, PainterFootprintBelowPrefixTimesAll) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = 5;
  Orchestrator orch{inst_, cfg};
  const auto config = orch.ComputeConfig();
  const auto fp = ComputeRibFootprint(config, *w_.resolver);
  EXPECT_EQ(fp.ases_carrying.size(), config.PrefixCount());
  EXPECT_LE(fp.total_entries,
            config.PrefixCount() * w_.internet().graph.size());
  EXPECT_GT(fp.total_entries, 0u);
}

}  // namespace
}  // namespace painter::core
