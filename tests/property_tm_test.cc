// Property checks of the Traffic Manager scenarios across seeds: the
// RTT-timescale failover claim (§5.2.3) must hold for every jitter draw, and
// the state machine must respect its invariants under randomized paths.
#include <gtest/gtest.h>

#include "faultsim/failover_scenario.h"
#include "util/rng.h"

namespace painter::tm {
namespace {

class FailoverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailoverPropertyTest, DetectionStaysAtRttTimescale) {
  FailoverScenarioConfig cfg;
  cfg.run_for_s = 70.0;
  cfg.edge.seed = GetParam();
  cfg.edge.delay_jitter = 0.05;
  const auto r = RunFailoverScenario(cfg);
  ASSERT_GE(r.detection_delay_s, 0.0) << "never failed over";
  // Upper bound: probe interval + 1.3 x RTT + generous slack; far below the
  // ~1 s anycast gap and the 60 s DNS TTL.
  const double rtt = 2.0 * cfg.chosen_delay_s;
  EXPECT_LT(r.detection_delay_s, cfg.edge.probe_interval_s + 3.0 * rtt);
  EXPECT_GE(r.failover_target, 2);  // one of the PoP-B prefixes
}

TEST_P(FailoverPropertyTest, ChosenTunnelAlwaysUsable) {
  // At every sample, the chosen tunnel (if any) reports an RTT — the edge
  // never points flows at a tunnel it believes is down.
  FailoverScenarioConfig cfg;
  cfg.run_for_s = 90.0;
  cfg.edge.seed = GetParam();
  const auto r = RunFailoverScenario(cfg);
  for (const auto& s : r.samples) {
    if (s.chosen < 0) continue;
    if (s.t < 0.5) continue;  // boot
    EXPECT_TRUE(s.rtt_ms[static_cast<std::size_t>(s.chosen)].has_value())
        << "t=" << s.t;
  }
}

TEST_P(FailoverPropertyTest, FailoversAlternateConsistently) {
  FailoverScenarioConfig cfg;
  cfg.run_for_s = 90.0;
  cfg.edge.seed = GetParam();
  const auto r = RunFailoverScenario(cfg);
  // Each failover's `from` must equal the previous `to`.
  int cur = -1;
  for (const auto& ev : r.failovers) {
    EXPECT_EQ(ev.from, cur);
    EXPECT_NE(ev.to, ev.from);
    cur = ev.to;
  }
}

TEST_P(FailoverPropertyTest, PostFailureTrafficAvoidsDeadPop) {
  FailoverScenarioConfig cfg;
  cfg.run_for_s = 100.0;
  cfg.edge.seed = GetParam();
  const auto r = RunFailoverScenario(cfg);
  for (const auto& s : r.samples) {
    if (s.t > cfg.fail_at_s + 1.0) {
      EXPECT_NE(s.chosen, 1) << "still on the dead PoP-A prefix at t=" << s.t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace painter::tm
