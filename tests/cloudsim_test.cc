#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "tests/world_fixture.h"

namespace painter::cloudsim {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  void SetUp() override { w_ = test::MakeWorld(); }
  test::World w_;
};

TEST_F(DeploymentTest, CloudIsLastAsAndCloudTier) {
  const auto& g = w_.internet().graph;
  const auto info = g.info(w_.deployment->cloud_as());
  EXPECT_EQ(info.tier, topo::AsTier::kCloud);
}

TEST_F(DeploymentTest, PopsPlacedInDistinctMetros) {
  std::set<std::uint32_t> metros;
  for (const auto& pop : w_.deployment->pops()) {
    metros.insert(pop.metro.value());
  }
  EXPECT_EQ(metros.size(), w_.deployment->pops().size());
}

TEST_F(DeploymentTest, PeeringsOnlyAtPopMetros) {
  std::set<std::uint32_t> pop_metros;
  for (const auto& pop : w_.deployment->pops()) {
    pop_metros.insert(pop.metro.value());
  }
  for (const auto& sess : w_.deployment->peerings()) {
    const auto& peer_info = w_.internet().graph.info(sess.peer);
    const auto pop_metro = w_.deployment->pop(sess.pop).metro;
    EXPECT_TRUE(pop_metros.contains(pop_metro.value()));
    // The peer must actually be present at that metro.
    const bool present =
        std::find(peer_info.presence.begin(), peer_info.presence.end(),
                  pop_metro) != peer_info.presence.end();
    EXPECT_TRUE(present) << "session " << sess.id << " peer not present";
  }
}

TEST_F(DeploymentTest, TransitPeeringsAreWithCloudProviders) {
  const auto& g = w_.internet().graph;
  const auto& providers = g.providers(w_.deployment->cloud_as());
  EXPECT_FALSE(w_.deployment->TransitPeerings().empty());
  for (util::PeeringId pid : w_.deployment->TransitPeerings()) {
    const auto& sess = w_.deployment->peering(pid);
    EXPECT_TRUE(sess.transit);
    EXPECT_TRUE(std::find(providers.begin(), providers.end(), sess.peer) !=
                providers.end());
  }
}

TEST_F(DeploymentTest, UgsHavePositiveWeights) {
  EXPECT_FALSE(w_.deployment->ugs().empty());
  double total = 0.0;
  for (const auto& ug : w_.deployment->ugs()) {
    EXPECT_GT(ug.traffic_weight, 0.0);
    total += ug.traffic_weight;
  }
  EXPECT_NEAR(w_.deployment->TotalTrafficWeight(), total, total * 1e-9);
}

TEST_F(DeploymentTest, PeeringsOfAsIndexConsistent) {
  for (const auto& sess : w_.deployment->peerings()) {
    const auto list = w_.deployment->PeeringsOfAs(sess.peer);
    EXPECT_TRUE(std::find(list.begin(), list.end(), sess.id) != list.end());
  }
  EXPECT_TRUE(w_.deployment->PeeringsOfAs(util::AsId{0xfffffff0 & 0xfff}).empty() ||
              true);  // unknown AS returns empty span (no throw)
}

TEST_F(DeploymentTest, AccessorsRejectInvalidIds) {
  EXPECT_THROW((void)w_.deployment->pop(util::PopId{}), std::out_of_range);
  EXPECT_THROW((void)w_.deployment->peering(util::PeeringId{999999}),
               std::out_of_range);
  EXPECT_THROW((void)w_.deployment->ug(util::UgId{999999}), std::out_of_range);
}

class IngressTest : public ::testing::Test {
 protected:
  void SetUp() override { w_ = test::MakeWorld(); }

  std::vector<util::PeeringId> AllSessions() const {
    std::vector<util::PeeringId> all;
    for (const auto& p : w_.deployment->peerings()) all.push_back(p.id);
    return all;
  }
  test::World w_;
};

TEST_F(IngressTest, AnycastResolvesEveryUg) {
  const auto ingress = w_.resolver->Resolve(AllSessions());
  for (const auto& ug : w_.deployment->ugs()) {
    EXPECT_TRUE(ingress[ug.id.value()].has_value())
        << "UG " << ug.id << " has no anycast route";
  }
}

TEST_F(IngressTest, SingleSessionAdvertisementPinsEntry) {
  // Advertise via exactly one transit session: every UG that can reach it
  // must ingress through exactly that session's peer AS.
  const util::PeeringId only = w_.deployment->TransitPeerings().front();
  const auto ingress = w_.resolver->Resolve({&only, 1});
  const util::AsId expected_peer = w_.deployment->peering(only).peer;
  for (const auto& ug : w_.deployment->ugs()) {
    const auto& got = ingress[ug.id.value()];
    ASSERT_TRUE(got.has_value());  // transit reaches everyone
    EXPECT_EQ(w_.deployment->peering(*got).peer, expected_peer);
  }
}

TEST_F(IngressTest, ResolvedIngressIsAlwaysAdvertised) {
  // Property: whatever subset we advertise, resolved ingresses come from it.
  const auto all = AllSessions();
  util::Rng rng{3};
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<util::PeeringId> subset;
    for (const auto pid : all) {
      if (rng.Bernoulli(0.3)) subset.push_back(pid);
    }
    if (subset.empty()) continue;
    const auto ingress = w_.resolver->Resolve(subset);
    for (const auto& choice : ingress) {
      if (!choice.has_value()) continue;
      EXPECT_TRUE(std::find(subset.begin(), subset.end(), *choice) !=
                  subset.end());
    }
  }
}

TEST_F(IngressTest, ResolvedIngressIsPolicyCompliant) {
  const auto ingress = w_.resolver->Resolve(AllSessions());
  for (const auto& ug : w_.deployment->ugs()) {
    const auto& choice = ingress[ug.id.value()];
    ASSERT_TRUE(choice.has_value());
    EXPECT_TRUE(w_.catalog->IsCompliant(ug.id, *choice))
        << "UG " << ug.id << " resolved to non-compliant ingress";
  }
}

TEST_F(IngressTest, EarlyExitPicksNearestPop) {
  // For an early-exit entry AS with several sessions, PickExit must choose
  // the PoP closest to the UG metro — with exit quirks disabled.
  const cloudsim::IngressResolver pure{w_.internet(), *w_.deployment,
                                       cloudsim::ExitQuirkConfig{0.0, 1}};
  for (const auto& sess : w_.deployment->peerings()) {
    const auto sessions = w_.deployment->PeeringsOfAs(sess.peer);
    if (sessions.size() < 2) continue;
    const auto& info = w_.internet().graph.info(sess.peer);
    if (info.exit_policy != topo::ExitPolicy::kEarlyExit) continue;
    const util::MetroId ug_metro = w_.deployment->ugs().front().metro;
    const auto picked = pure.PickExit(sess.peer, ug_metro, sessions);
    const auto& metros = w_.internet().metros;
    const auto loc = metros[ug_metro.value()].location;
    double picked_d = topo::Distance(
        loc, metros[w_.deployment->pop(w_.deployment->peering(picked).pop)
                        .metro.value()]
                 .location).count();
    for (const auto pid : sessions) {
      const double d = topo::Distance(
          loc, metros[w_.deployment->pop(w_.deployment->peering(pid).pop)
                          .metro.value()]
                   .location).count();
      EXPECT_LE(picked_d, d + 1e-9);
    }
    break;  // one AS is enough
  }
}

TEST_F(IngressTest, PolicyCatalogTransitCompliantForAll) {
  for (util::PeeringId pid : w_.deployment->TransitPeerings()) {
    for (const auto& ug : w_.deployment->ugs()) {
      EXPECT_TRUE(w_.catalog->IsCompliant(ug.id, pid));
    }
  }
}

TEST_F(IngressTest, PolicyCatalogConeRule) {
  // A non-transit session is compliant iff the UG is in the peer's cone (or
  // is the peer itself).
  const auto& g = w_.internet().graph;
  for (const auto& sess : w_.deployment->peerings()) {
    if (sess.transit) continue;
    for (const auto& ug : w_.deployment->ugs()) {
      const bool expect = ug.as == sess.peer ||
                          g.InCustomerCone(ug.as, sess.peer);
      EXPECT_EQ(w_.catalog->IsCompliant(ug.id, sess.id), expect);
    }
    break;  // one session suffices; the loop over UGs is the point
  }
}

TEST_F(IngressTest, MeanCompliantPerUgPositive) {
  EXPECT_GT(w_.catalog->MeanCompliantPerUg(), 1.0);
}

}  // namespace
}  // namespace painter::cloudsim
