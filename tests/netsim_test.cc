#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "netsim/nat.h"
#include "netsim/packet.h"
#include "netsim/path.h"
#include "netsim/sim.h"

namespace painter::netsim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Run(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.ExecutedEvents(), 3u);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(1.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(3); });
  sim.Run(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunStopsAtDeadline) {
  Simulator sim;
  bool late = false;
  sim.Schedule(5.0, [&] { late = true; });
  sim.Run(4.0);
  EXPECT_FALSE(late);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.0);
  sim.Run(6.0);
  EXPECT_TRUE(late);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int hits = 0;
  std::function<void()> tick = [&] {
    ++hits;
    if (hits < 5) sim.Schedule(1.0, tick);
  };
  sim.Schedule(0.0, tick);
  sim.Run(100.0);
  EXPECT_EQ(hits, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 100.0);
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.Schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, PastAbsoluteTimeThrows) {
  Simulator sim;
  sim.Schedule(5.0, [] {});
  sim.Run(5.0);
  EXPECT_THROW(sim.ScheduleAt(4.0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, IntegerClockQuantizesToNearestMicrosecond) {
  Simulator sim;
  SimTime seen = 0;
  // 0.1 is not representable in binary; ten accumulated doubles sum to
  // 0.9999999999999999. The integer clock rounds each *delay* to the grid,
  // so ten relative 0.1 s steps land on exactly 1'000'000 µs.
  std::function<void()> step = [&] {
    seen = sim.NowUs();
    if (seen < 1'000'000) sim.Schedule(0.1, step);
  };
  sim.Schedule(0.1, step);
  sim.Run(10.0);
  EXPECT_EQ(seen, 1'000'000u);

  EXPECT_EQ(UsFromSeconds(0.1), 100'000u);
  EXPECT_EQ(UsFromSeconds(0.9999999999999999), 1'000'000u);  // round, not trunc
  EXPECT_THROW(UsFromSeconds(-0.5), std::invalid_argument);
}

TEST(SimulatorTest, ScheduleAtUsRunsOnExactGrid) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime k = 1; k <= 5; ++k) {
    sim.ScheduleAtUs(k * 250'000, [&fired, &sim] { fired.push_back(sim.NowUs()); });
  }
  sim.RunUntilUs(2'000'000);
  EXPECT_EQ(fired, (std::vector<SimTime>{250'000, 500'000, 750'000,
                                         1'000'000, 1'250'000}));
  EXPECT_EQ(sim.NowUs(), 2'000'000u);
}

TEST(SimulatorTest, MoveOnlyHandlersRun) {
  Simulator sim;
  auto token = std::make_unique<int>(41);
  int result = 0;
  // A unique_ptr capture makes the lambda move-only; the old
  // std::function-based queue could not even compile this.
  sim.Schedule(1.0, [token = std::move(token), &result] { result = *token + 1; });
  sim.Run(2.0);
  EXPECT_EQ(result, 42);
}

TEST(PacketTest, EncapOverheadCounted) {
  Packet p;
  p.payload_bytes = 1400;
  EXPECT_EQ(p.WireBytes(), 1400u);
  p.outer = FlowKey{};
  EXPECT_EQ(p.WireBytes(), 1400u + Packet::kEncapOverheadBytes);
}

TEST(FlowKeyTest, HashAndEquality) {
  FlowKey a{.src_ip = 1, .dst_ip = 2, .src_port = 3, .dst_port = 4};
  FlowKey b = a;
  EXPECT_EQ(a, b);
  b.src_port = 5;
  EXPECT_NE(a, b);
  std::unordered_map<FlowKey, int> m;
  m[a] = 1;
  m[b] = 2;
  EXPECT_EQ(m.size(), 2u);
}

TEST(NatTest, BindIsStablePerFlow) {
  NatTable nat{{0xC0000201}};
  FlowKey f{.src_ip = 10, .dst_ip = 20, .src_port = 1000, .dst_port = 443};
  const auto b1 = nat.Bind(f);
  const auto b2 = nat.Bind(f);
  ASSERT_TRUE(b1.has_value());
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b1->nat_port, b2->nat_port);
  EXPECT_EQ(nat.ActiveBindings(), 1u);
}

TEST(NatTest, LookupReturnsClientFlow) {
  NatTable nat{{0xC0000201}};
  FlowKey f{.src_ip = 10, .dst_ip = 20, .src_port = 1000, .dst_port = 443};
  const auto b = nat.Bind(f);
  ASSERT_TRUE(b.has_value());
  const auto back = nat.Lookup(b->nat_ip, b->nat_port);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(NatTest, DistinctFlowsDistinctPorts) {
  NatTable nat{{0xC0000201}};
  FlowKey f1{.src_ip = 10, .dst_ip = 20, .src_port = 1000, .dst_port = 443};
  FlowKey f2{.src_ip = 10, .dst_ip = 20, .src_port = 1001, .dst_port = 443};
  const auto b1 = nat.Bind(f1);
  const auto b2 = nat.Bind(f2);
  EXPECT_NE(std::make_pair(b1->nat_ip, b1->nat_port),
            std::make_pair(b2->nat_ip, b2->nat_port));
}

TEST(NatTest, ReleaseFreesSlot) {
  NatTable nat{{0xC0000201}};
  FlowKey f{.src_ip = 10, .dst_ip = 20, .src_port = 1000, .dst_port = 443};
  const auto b = nat.Bind(f);
  EXPECT_TRUE(nat.Release(f));
  EXPECT_FALSE(nat.Release(f));
  EXPECT_FALSE(nat.Lookup(b->nat_ip, b->nat_port).has_value());
  EXPECT_EQ(nat.ActiveBindings(), 0u);
}

TEST(NatTest, CapacityIs65kPerIp) {
  NatTable one{{1}};
  EXPECT_EQ(one.Capacity(), NatTable::kPortsPerIp);
  NatTable three{{1, 2, 3}};
  EXPECT_EQ(three.Capacity(), 3 * NatTable::kPortsPerIp);
}

TEST(NatTest, ExhaustionReturnsNullopt) {
  // Tiny capacity via a single IP: fill a few thousand and verify behavior
  // at the boundary using a reduced test through release/rebind cycling.
  NatTable nat{{1}};
  std::size_t bound = 0;
  for (std::uint32_t i = 0; i < NatTable::kPortsPerIp; ++i) {
    FlowKey f{.src_ip = i + 1, .dst_ip = 20, .src_port = 80, .dst_port = 443};
    if (nat.Bind(f).has_value()) ++bound;
  }
  EXPECT_EQ(bound, NatTable::kPortsPerIp);
  FlowKey extra{.src_ip = 999999, .dst_ip = 20, .src_port = 81,
                .dst_port = 443};
  EXPECT_FALSE(nat.Bind(extra).has_value());
  // Release one, the slot becomes available again.
  FlowKey f0{.src_ip = 1, .dst_ip = 20, .src_port = 80, .dst_port = 443};
  EXPECT_TRUE(nat.Release(f0));
  EXPECT_TRUE(nat.Bind(extra).has_value());
}

TEST(NatTest, NoExternalIpThrows) {
  EXPECT_THROW(NatTable{{}}, std::invalid_argument);
}

TEST(PathTest, FixedAlwaysUp) {
  const auto p = PathModel::Fixed(0.01);
  EXPECT_DOUBLE_EQ(p.OneWayDelay(0.0).value(), 0.01);
  EXPECT_DOUBLE_EQ(p.OneWayDelay(1e9).value(), 0.01);
}

TEST(PathTest, UpThenDownCutsOver) {
  const auto p = PathModel::UpThenDown(0.01, 60.0);
  EXPECT_TRUE(p.OneWayDelay(59.999).has_value());
  EXPECT_FALSE(p.OneWayDelay(60.0).has_value());
  EXPECT_FALSE(p.OneWayDelay(100.0).has_value());
}

TEST(PathTest, PiecewiseSegments) {
  const auto p = PathModel::Piecewise({
      {.start_s = 0.0, .delay_s = 0.015},
      {.start_s = 60.0, .delay_s = std::nullopt},
      {.start_s = 61.0, .delay_s = 0.032},
      {.start_s = 75.0, .delay_s = 0.024},
  });
  EXPECT_DOUBLE_EQ(p.OneWayDelay(10.0).value(), 0.015);
  EXPECT_FALSE(p.OneWayDelay(60.5).has_value());
  EXPECT_DOUBLE_EQ(p.OneWayDelay(61.0).value(), 0.032);
  EXPECT_DOUBLE_EQ(p.OneWayDelay(100.0).value(), 0.024);
}

TEST(PathTest, PiecewiseValidation) {
  EXPECT_THROW(PathModel::Piecewise({}), std::invalid_argument);
  EXPECT_THROW(PathModel::Piecewise({{.start_s = 5.0, .delay_s = 0.1},
                                     {.start_s = 1.0, .delay_s = 0.1}}),
               std::invalid_argument);
}

TEST(PathTest, DefaultPathIsDown) {
  PathModel p;
  EXPECT_FALSE(p.OneWayDelay(0.0).has_value());
}

}  // namespace
}  // namespace painter::netsim
