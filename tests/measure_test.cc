#include <gtest/gtest.h>

#include "measure/geolocation.h"
#include "tests/world_fixture.h"

namespace painter::measure {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override { w_ = test::MakeWorld(); }
  util::UgId Ug0() const { return w_.deployment->ugs().front().id; }
  util::PeeringId Sess0() const { return w_.deployment->peerings().front().id; }
  test::World w_;
};

TEST_F(OracleTest, TrueRttDeterministic) {
  const auto a = w_.oracle->TrueRtt(Ug0(), Sess0());
  const auto b = w_.oracle->TrueRtt(Ug0(), Sess0());
  EXPECT_DOUBLE_EQ(a.count(), b.count());
}

TEST_F(OracleTest, TrueRttAboveFiberFloor) {
  // Ground truth must never beat the straight-fiber RTT plus overheads.
  const auto& metros = w_.internet().metros;
  for (const auto& ug : w_.deployment->ugs()) {
    for (const auto& sess : w_.deployment->peerings()) {
      const double d =
          topo::Distance(metros[ug.metro.value()].location,
                         metros[w_.deployment->pop(sess.pop).metro.value()]
                             .location)
              .count();
      const double floor = util::FiberRtt(util::Km{d}).count();
      EXPECT_GE(w_.oracle->TrueRtt(ug.id, sess.id).count(), floor);
    }
    if (ug.id.value() > 20) break;  // bounded runtime
  }
}

TEST_F(OracleTest, ProbeNeverBelowTruth) {
  util::Rng rng{5};
  const double truth = w_.oracle->TrueRtt(Ug0(), Sess0()).count();
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(w_.oracle->ProbeOnce(Ug0(), Sess0(), rng).count(), truth);
  }
}

TEST_F(OracleTest, MinOfManyPingsApproachesTruth) {
  util::Rng rng{5};
  const double truth = w_.oracle->TrueRtt(Ug0(), Sess0()).count();
  const double measured =
      w_.oracle->MeasureMin(Ug0(), Sess0(), rng, 31).count();
  EXPECT_GE(measured, truth);
  EXPECT_LE(measured - truth, 2.0);  // min of 31 exponential(1.5ms) draws
}

TEST_F(OracleTest, Day0MatchesBaseline) {
  EXPECT_DOUBLE_EQ(w_.oracle->TrueRttOnDay(Ug0(), Sess0(), 0).count(),
                   w_.oracle->TrueRtt(Ug0(), Sess0()).count());
}

TEST_F(OracleTest, RegimeShiftsOnlyInflate) {
  for (int day = 1; day <= 30; ++day) {
    for (std::uint32_t s = 0; s < 5; ++s) {
      const util::PeeringId sess{s};
      EXPECT_GE(w_.oracle->TrueRttOnDay(Ug0(), sess, day).count(),
                w_.oracle->TrueRtt(Ug0(), sess).count() - 1e-9);
    }
  }
}

TEST_F(OracleTest, SomeRegimeShiftOccursOverAMonth) {
  // With 4%/day shift probability across many (ug, session) pairs, some day
  // must show inflation.
  bool any = false;
  for (const auto& ug : w_.deployment->ugs()) {
    for (std::uint32_t s = 0; s < 10 && !any; ++s) {
      const util::PeeringId sess{s};
      const double base = w_.oracle->TrueRtt(ug.id, sess).count();
      for (int day = 1; day <= 25; ++day) {
        if (w_.oracle->TrueRttOnDay(ug.id, sess, day).count() > base * 1.2) {
          any = true;
          break;
        }
      }
    }
    if (any || ug.id.value() > 40) break;
  }
  EXPECT_TRUE(any);
}

TEST_F(OracleTest, TransitSessionsInflateMoreOnAverage) {
  // The config gives transit/tier-1 entry ASes extra inflation; verify the
  // aggregate ordering holds (this is what makes PAINTER's learning matter).
  double transit_sum = 0.0, transit_n = 0.0, other_sum = 0.0, other_n = 0.0;
  const auto& metros = w_.internet().metros;
  for (const auto& ug : w_.deployment->ugs()) {
    if (ug.id.value() > 60) break;
    for (const auto& sess : w_.deployment->peerings()) {
      const double d =
          topo::Distance(metros[ug.metro.value()].location,
                         metros[w_.deployment->pop(sess.pop).metro.value()]
                             .location)
              .count();
      if (d < 500.0) continue;  // inflation factor meaningless at zero range
      const double fiber = util::FiberRtt(util::Km{d}).count();
      const double excess =
          (w_.oracle->TrueRtt(ug.id, sess.id).count()) / fiber;
      const auto tier = w_.internet().graph.info(sess.peer).tier;
      if (tier == topo::AsTier::kTier1 || tier == topo::AsTier::kTransit) {
        transit_sum += excess;
        transit_n += 1;
      } else {
        other_sum += excess;
        other_n += 1;
      }
    }
  }
  ASSERT_GT(transit_n, 0.0);
  ASSERT_GT(other_n, 0.0);
  EXPECT_GT(transit_sum / transit_n, other_sum / other_n);
}

class GeoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = test::MakeWorld();
    targets_ = std::make_unique<GeoTargetCatalog>(*w_.oracle,
                                                  GeoTargetConfig{});
  }
  test::World w_;
  std::unique_ptr<GeoTargetCatalog> targets_;
};

TEST_F(GeoTest, SomeTargetsMissingSomePrecise) {
  std::size_t missing = 0, precise = 0, coarse = 0;
  for (const auto& sess : w_.deployment->peerings()) {
    const auto t = targets_->TargetFor(sess.id);
    if (!t.has_value()) {
      ++missing;
    } else if (t->uncertainty_km == 0.0) {
      ++precise;
    } else {
      ++coarse;
    }
  }
  EXPECT_GT(missing, 0u);
  EXPECT_GT(precise, 0u);
  EXPECT_GT(coarse, 0u);
}

TEST_F(GeoTest, EstimateRespectsUncertaintyBound) {
  for (const auto& sess : w_.deployment->peerings()) {
    const auto t = targets_->TargetFor(sess.id);
    const auto est = targets_->EstimateRtt(w_.deployment->ugs().front().id,
                                           sess.id, 100.0);
    if (!t.has_value() || t->uncertainty_km > 100.0) {
      EXPECT_FALSE(est.has_value());
    } else {
      EXPECT_TRUE(est.has_value());
    }
  }
}

TEST_F(GeoTest, PreciseTargetsEstimateAccurately) {
  const auto ug = w_.deployment->ugs().front().id;
  for (const auto& sess : w_.deployment->peerings()) {
    const auto t = targets_->TargetFor(sess.id);
    if (!t.has_value() || t->uncertainty_km > 1.0) continue;
    const auto est = targets_->EstimateRtt(ug, sess.id, 450.0);
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->count(), w_.oracle->TrueRtt(ug, sess.id).count(), 0.6);
  }
}

TEST_F(GeoTest, EstimateErrorBoundedByDisplacement) {
  const auto ug = w_.deployment->ugs().front().id;
  for (const auto& sess : w_.deployment->peerings()) {
    const auto t = targets_->TargetFor(sess.id);
    if (!t.has_value()) continue;
    const auto est = targets_->EstimateRtt(ug, sess.id, 1e9);
    ASSERT_TRUE(est.has_value());
    // Error is bounded by the detour the displacement implies (the estimator
    // applies a detour factor of 1.8 over the straight-line fiber RTT).
    const double err =
        std::abs(est->count() - w_.oracle->TrueRtt(ug, sess.id).count());
    EXPECT_LE(err,
              1.8 * util::FiberRtt(util::Km{t->uncertainty_km}).count() + 1e-9);
  }
}

TEST(MixSeedTest, OrderSensitive) {
  EXPECT_NE(MixSeed(1, 2), MixSeed(2, 1));
  EXPECT_EQ(MixSeed(1, 2, 3), MixSeed(1, 2, 3));
}

}  // namespace
}  // namespace painter::measure
