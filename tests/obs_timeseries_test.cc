// Streaming-telemetry tests: timeseries rings, grid alignment, export
// determinism, and the flight recorder's ring/disabled-path contracts.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/sim.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeseries.h"

namespace painter {
namespace {

// --- TimeseriesRegistry -----------------------------------------------------

TEST(TimeseriesTest, SamplesOnExactIntegerGrid) {
  obs::TimeseriesRegistry reg{{.period_s = 0.25}};
  netsim::Simulator sim;
  double v = 0.0;
  reg.RegisterSampler("test.grid", [&v]() { return v += 1.0; });
  reg.StartSampling(sim, 2.0);
  sim.Run(3.0);

  // 9 grid points: k = 0..8 at k * 250000 µs (horizon 2 s inclusive).
  EXPECT_EQ(reg.SamplesTaken(), 9u);
  EXPECT_EQ(reg.MaxSampleSkewUs(), 0u);
  const auto view = reg.View("test.grid");
  ASSERT_EQ(view.t_us.size(), 9u);
  for (std::size_t k = 0; k < view.t_us.size(); ++k) {
    EXPECT_EQ(view.t_us[k], k * 250000u);
    EXPECT_DOUBLE_EQ(view.values[k], static_cast<double>(k + 1));
  }
}

TEST(TimeseriesTest, EventRingWrapsAndKeepsExactTimes) {
  obs::TimeseriesRegistry reg{{.period_s = 1.0, .capacity = 4}};
  // 10 appends into a capacity-4 ring: only the last 4 survive, and their
  // reconstructed absolute times must be exact despite the delta encoding
  // folding evicted deltas into the base.
  for (std::uint64_t k = 0; k < 10; ++k) {
    reg.Append("test.events", 1000 + 7 * k, static_cast<double>(100 + k));
  }
  const auto view = reg.View("test.events");
  EXPECT_FALSE(view.sampled);
  EXPECT_EQ(view.dropped, 6u);
  ASSERT_EQ(view.t_us.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t k = 6 + i;
    EXPECT_EQ(view.t_us[i], 1000 + 7 * k);
    EXPECT_DOUBLE_EQ(view.values[i], static_cast<double>(100 + k));
  }
}

TEST(TimeseriesTest, SampledRingEvictsOldest) {
  obs::TimeseriesRegistry reg{{.period_s = 1.0, .capacity = 3}};
  double v = 0.0;
  reg.RegisterSampler("test.sampled", [&v]() { return v += 1.0; });
  for (std::uint64_t k = 0; k < 5; ++k) reg.SampleNow(k * 1000000u);
  const auto view = reg.View("test.sampled");
  EXPECT_EQ(view.dropped, 2u);
  ASSERT_EQ(view.values.size(), 3u);
  EXPECT_DOUBLE_EQ(view.values.front(), 3.0);  // samples 3, 4, 5 retained
  EXPECT_EQ(view.t_us.front(), 2000000u);
}

TEST(TimeseriesTest, ExportIsDeterministicAcrossIdenticalRuns) {
  const auto run = []() {
    obs::TimeseriesRegistry reg{{.period_s = 0.5}};
    netsim::Simulator sim;
    std::uint64_t ticks = 0;
    reg.RegisterSampler("z.gauge", [&ticks]() {
      return static_cast<double>(ticks++);
    });
    reg.RegisterSampler("a.frac", []() { return 0.25; });
    reg.Append("m.events", 123456, 7.0);
    reg.Append("m.events", 654321, 9.5);
    reg.StartSampling(sim, 5.0);
    sim.Run(6.0);
    return reg.ToJson();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"painter.timeseries.v1\""), std::string::npos);
  // Series are sorted by name in the export regardless of registration order.
  EXPECT_LT(a.find("\"a.frac\""), a.find("\"m.events\""));
  EXPECT_LT(a.find("\"m.events\""), a.find("\"z.gauge\""));
}

TEST(TimeseriesTest, StripVolatileEmptiesWallClockSeries) {
  obs::TimeseriesRegistry reg{{.period_s = 1.0}};
  reg.RegisterSampler("test.sim_ms", []() { return 42.0; });
  reg.RegisterSampler("test.rss_bytes", []() { return 1234.5; },
                      /*wall_clock=*/true);
  reg.SampleNow(0);
  reg.SampleNow(1000000);
  const std::string json = reg.ToJson();
  // Wall-clock series export under a wall_-prefixed sample key...
  EXPECT_NE(json.find("\"wall_samples\""), std::string::npos);
  const std::string stripped = obs::StripVolatile(json);
  // ...which StripVolatile empties, leaving the deterministic series alone.
  EXPECT_NE(stripped.find("\"wall_samples\":[]"), std::string::npos);
  EXPECT_EQ(stripped.find("1234.5"), std::string::npos);
  EXPECT_NE(stripped.find("42"), std::string::npos);
  // Same sim-time inputs -> the stripped export is stable.
  EXPECT_EQ(stripped, obs::StripVolatile(reg.ToJson()));
}

TEST(TimeseriesTest, DuplicateAndCrossKindNamesThrow) {
  obs::TimeseriesRegistry reg;
  reg.RegisterSampler("dup.name", []() { return 0.0; });
  EXPECT_THROW(reg.RegisterSampler("dup.name", []() { return 1.0; }),
               std::logic_error);
  EXPECT_THROW(reg.Append("dup.name", 0, 1.0), std::logic_error);
  reg.Append("ev.series", 10, 1.0);
  EXPECT_THROW(reg.Append("ev.series", 5, 2.0), std::invalid_argument);
}

TEST(TimeseriesTest, ReportAttachesTimeseriesBlock) {
  obs::TimeseriesRegistry reg{{.period_s = 1.0}};
  reg.Append("attach.check", 42, 3.0);
  obs::RunReport report{"timeseries_attach_test"};
  report.SetSeed(1);
  report.AttachTimeseries(reg);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"timeseries\":{\"schema\":\"painter.timeseries.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"attach.check\""), std::string::npos);
}

// --- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorderTest, DisabledPathRecordsNothing) {
  obs::FlightRecorder::Disable();
  obs::FlightRecorder::Record(1, "test", obs::Severity::kInfo, "ignored",
                              {{"k", 1.0}});
  EXPECT_FALSE(obs::FlightRecorder::Enabled());
  EXPECT_EQ(obs::FlightRecorder::EventCount(), 0u);
  EXPECT_EQ(obs::FlightRecorder::Recorded(), 0u);
  // A Trip with no recorder and no PAINTER_POSTMORTEM_DIR produces no file.
  EXPECT_TRUE(obs::FlightRecorder::Trip(2, "test", "no dump").empty());
}

TEST(FlightRecorderTest, RingWrapsKeepingMostRecent) {
  obs::FlightRecorder::Enable(/*capacity=*/4);
  for (std::uint64_t k = 0; k < 10; ++k) {
    obs::FlightRecorder::Record(100 + k, "test.ring", obs::Severity::kInfo,
                                "ev", {{"k", static_cast<double>(k)}});
  }
  EXPECT_EQ(obs::FlightRecorder::EventCount(), 4u);
  EXPECT_EQ(obs::FlightRecorder::Recorded(), 10u);
  const auto events = obs::FlightRecorder::Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].t_us, 106 + i);  // oldest-first: k = 6..9
    ASSERT_EQ(events[i].kvs.size(), 1u);
    EXPECT_DOUBLE_EQ(events[i].kvs[0].second, static_cast<double>(6 + i));
  }
  obs::FlightRecorder::Disable();
}

TEST(FlightRecorderTest, PostMortemJsonIsStructuredAndDeterministic) {
  obs::FlightRecorder::Enable(8);
  obs::FlightRecorder::Record(10, "tm.edge", obs::Severity::kWarn,
                              "tunnel_down", {{"tunnel", 2.0}});
  obs::FlightRecorder::Record(20, "faultsim", obs::Severity::kError,
                              "violation");
  std::ostringstream a;
  obs::FlightRecorder::WritePostMortem(a, "test reason", 30);
  std::ostringstream b;
  obs::FlightRecorder::WritePostMortem(b, "test reason", 30);
  EXPECT_EQ(obs::StripVolatile(a.str()), obs::StripVolatile(b.str()));
  const std::string json = a.str();
  EXPECT_NE(json.find("\"schema\":\"painter.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"test reason\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"tm.edge\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  obs::FlightRecorder::Disable();
}

TEST(FlightRecorderTest, ResetClearsJournalButKeepsEnabledState) {
  obs::FlightRecorder::Enable(4);
  obs::FlightRecorder::Record(1, "test", obs::Severity::kInfo, "ev");
  obs::FlightRecorder::Reset();
  EXPECT_TRUE(obs::FlightRecorder::Enabled());
  EXPECT_EQ(obs::FlightRecorder::EventCount(), 0u);
  EXPECT_EQ(obs::FlightRecorder::Recorded(), 0u);
  obs::FlightRecorder::Disable();
}

}  // namespace
}  // namespace painter
