// Golden-schedule determinism test for the CELF engine.
//
// The schedules below were produced by the pre-incremental from-scratch
// engine (every seeding scan re-evaluates every peering, every expectation
// re-walks its candidate list) on the fixture worlds. The incremental engine
// — cross-round seed-marginal caching with dirty-UG invalidation, running
// per-UG aggregates, flat hot-path layouts — is required to reproduce them
// byte-for-byte at any thread count, in both engine modes. A mismatch here
// means the "bit-identical" contract of OrchestratorConfig::incremental_celf
// broke, even if the result is still a valid greedy schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/orchestrator.h"
#include "tests/world_fixture.h"

namespace painter::core {
namespace {

using Schedule = std::vector<std::vector<std::uint32_t>>;

Schedule ComputeSchedule(const ProblemInstance& inst, std::size_t budget,
                         std::size_t threads, bool incremental) {
  OrchestratorConfig cfg;
  cfg.prefix_budget = budget;
  cfg.num_threads = threads;
  cfg.incremental_celf = incremental;
  const Orchestrator orch{inst, cfg};
  const auto config = orch.ComputeConfig();
  Schedule out;
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    auto& prefix = out.emplace_back();
    for (const auto sid : config.Sessions(p)) prefix.push_back(sid.value());
  }
  return out;
}

void ExpectGolden(const ProblemInstance& inst, std::size_t budget,
                  const Schedule& golden) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const bool incremental : {true, false}) {
      const Schedule got = ComputeSchedule(inst, budget, threads, incremental);
      EXPECT_EQ(got, golden) << "threads=" << threads
                             << " incremental=" << incremental;
    }
  }
}

TEST(CelfGoldenSchedule, DefaultWorldBudget8) {
  const test::World& w = test::SharedWorld();
  const auto inst = test::MakeInstance(w);
  const Schedule golden{
      {9, 15, 18, 21, 41, 45, 46, 49, 50, 56, 82, 127, 129},
      {10, 12, 22, 27, 28, 29, 30, 52, 77, 84, 87, 95, 101, 107, 110, 117,
       128},
      {7, 26, 41, 44, 61, 63, 73, 89, 129},
      {13, 15, 36, 37, 56, 66, 82, 115, 117, 125},
      {2, 3, 11, 28, 51, 88, 104},
      {23, 26, 28, 30, 52, 82, 88, 100, 104, 106},
      {1, 4, 6, 8, 56, 115},
      {17, 19, 32, 66, 99},
  };
  ExpectGolden(inst, 8, golden);
}

struct SeededGolden {
  std::uint64_t seed;
  Schedule golden;
};

class CelfGoldenSeeds : public ::testing::TestWithParam<SeededGolden> {};

TEST_P(CelfGoldenSeeds, Budget5) {
  const auto& param = GetParam();
  const test::World& w = test::SharedWorld(param.seed, 130, 8);
  const auto inst = test::MakeInstance(w, param.seed + 77);
  ExpectGolden(inst, 5, param.golden);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CelfGoldenSeeds,
    ::testing::Values(
        SeededGolden{3,
                     {{14, 19, 30, 37, 55, 56, 68, 69, 80, 96, 121},
                      {1, 4, 5, 26, 27, 36, 64, 79, 100, 117},
                      {21, 26, 29, 51, 80, 94, 96, 109, 117, 125},
                      {26, 56, 61, 63, 94, 106, 111, 112, 119},
                      {7, 9, 55, 70, 79, 113}}},
        SeededGolden{17,
                     {{11, 17, 21, 30, 35, 51, 63, 88, 98, 117, 121, 125},
                      {6, 8, 10, 11, 55, 56, 59, 72, 81, 88, 126},
                      {1, 17, 35, 47, 48, 51, 64, 69, 77, 81, 82},
                      {14, 24, 27, 29, 85, 93, 94, 115, 116},
                      {20, 26, 28, 46, 55, 62, 98, 111, 117}}},
        SeededGolden{64,
                     {{2, 8, 12, 13, 20, 24, 77, 89, 93, 102, 121, 130},
                      {6, 26, 29, 31, 37, 57, 91, 102, 129},
                      {22, 23, 38, 50, 55, 57, 74, 89},
                      {1, 15, 29, 46, 52, 87, 88, 89, 92},
                      {13, 17, 28, 29, 39, 121}}},
        SeededGolden{301,
                     {{8, 9, 10, 32, 34, 35, 36, 41, 48, 56, 57, 73, 87, 88,
                       94, 110},
                      {17, 18, 21, 35, 56, 80, 88, 89},
                      {20, 33, 40, 54, 59, 65, 69, 72, 73, 81, 83, 88, 97,
                       109},
                      {29, 32, 35, 51, 56, 59, 61, 67, 73, 105},
                      {8, 24, 31, 54, 55, 80, 97}}},
        SeededGolden{888,
                     {{9, 17, 20, 21, 22, 27, 31, 34, 45, 52, 89, 100, 105,
                       111, 112, 119},
                      {10, 15, 31, 54, 87, 89, 90, 93, 109},
                      {12, 16, 31, 35, 39, 41, 58, 72, 99, 108},
                      {13, 14, 34, 52, 61, 89, 99, 112, 113, 115, 119},
                      {11, 24, 31, 65, 73, 90, 103, 113}}}));

}  // namespace
}  // namespace painter::core
