#include <gtest/gtest.h>

#include "netsim/link.h"

namespace painter::netsim {
namespace {

Packet DataPacket(std::uint32_t bytes) {
  Packet p;
  p.kind = PacketKind::kData;
  p.payload_bytes = bytes;
  return p;
}

TEST(QueuedLink, DeliversAfterPropagationPlusSerialization) {
  Simulator sim;
  QueuedLink link{sim, {.propagation_s = 0.010,
                        .bandwidth_bytes_per_s = 1e6,
                        .queue_limit_bytes = 100000}};
  double arrived_at = -1.0;
  ASSERT_TRUE(link.Send(DataPacket(1000),
                        [&](const Packet&) { arrived_at = sim.Now(); }));
  sim.Run(1.0);
  // 1000 B at 1 MB/s = 1 ms serialization + 10 ms propagation.
  EXPECT_NEAR(arrived_at, 0.011, 1e-9);
}

TEST(QueuedLink, BackToBackPacketsQueue) {
  Simulator sim;
  QueuedLink link{sim, {.propagation_s = 0.0,
                        .bandwidth_bytes_per_s = 1e6,
                        .queue_limit_bytes = 100000}};
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(link.Send(DataPacket(1000),
                          [&](const Packet&) { arrivals.push_back(sim.Now()); }));
  }
  sim.Run(1.0);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 0.001, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.002, 1e-9);
  EXPECT_NEAR(arrivals[2], 0.003, 1e-9);
}

TEST(QueuedLink, QueueingDelayTracksBacklog) {
  Simulator sim;
  QueuedLink link{sim, {.propagation_s = 0.0,
                        .bandwidth_bytes_per_s = 1e6,
                        .queue_limit_bytes = 1000000}};
  EXPECT_DOUBLE_EQ(link.CurrentQueueingDelay(), 0.0);
  ASSERT_TRUE(link.Send(DataPacket(10000), [](const Packet&) {}));
  EXPECT_NEAR(link.CurrentQueueingDelay(), 0.010, 1e-9);
  EXPECT_EQ(link.QueuedBytes(), 10000u);
}

TEST(QueuedLink, OverflowDrops) {
  Simulator sim;
  QueuedLink link{sim, {.propagation_s = 0.0,
                        .bandwidth_bytes_per_s = 1e6,
                        .queue_limit_bytes = 2500}};
  EXPECT_TRUE(link.Send(DataPacket(1000), [](const Packet&) {}));
  EXPECT_TRUE(link.Send(DataPacket(1000), [](const Packet&) {}));
  // Third packet would exceed the 2500-byte queue bound.
  EXPECT_FALSE(link.Send(DataPacket(1000), [](const Packet&) {}));
  EXPECT_EQ(link.stats().dropped, 1u);
  EXPECT_EQ(link.stats().delivered, 2u);
}

TEST(QueuedLink, DrainsAndAcceptsAgain) {
  Simulator sim;
  QueuedLink link{sim, {.propagation_s = 0.0,
                        .bandwidth_bytes_per_s = 1e6,
                        .queue_limit_bytes = 1500}};
  EXPECT_TRUE(link.Send(DataPacket(1400), [](const Packet&) {}));
  EXPECT_FALSE(link.Send(DataPacket(1400), [](const Packet&) {}));
  sim.Run(0.01);  // queue drains in 1.4 ms
  EXPECT_TRUE(link.Send(DataPacket(1400), [](const Packet&) {}));
}

TEST(QueuedLink, EncapOverheadCountsAgainstCapacity) {
  Simulator sim;
  QueuedLink link{sim, {.propagation_s = 0.0,
                        .bandwidth_bytes_per_s = 1e6,
                        .queue_limit_bytes = 1410}};
  Packet p = DataPacket(1400);
  p.outer = FlowKey{};  // +16 bytes of encapsulation
  EXPECT_FALSE(link.Send(p, [](const Packet&) {}));  // 1416 > 1410
  p.outer.reset();
  EXPECT_TRUE(link.Send(p, [](const Packet&) {}));
}

TEST(QueuedLink, SustainedOverloadDropsProportionally) {
  Simulator sim;
  QueuedLink link{sim, {.propagation_s = 0.001,
                        .bandwidth_bytes_per_s = 1e6,
                        .queue_limit_bytes = 10000}};
  // Offer 2x capacity for one second: 2000 packets of 1000 B.
  std::size_t accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    sim.ScheduleAt(i * 0.0005, [&]() {
      if (link.Send(DataPacket(1000), [](const Packet&) {})) ++accepted;
    });
  }
  sim.Run(3.0);
  // Capacity over the window is ~1000 packets (+ queue);
  // roughly half must be dropped.
  EXPECT_NEAR(static_cast<double>(accepted), 1000.0, 60.0);
  EXPECT_NEAR(static_cast<double>(link.stats().dropped), 1000.0, 60.0);
}

}  // namespace
}  // namespace painter::netsim
