// Shared test fixture: a small but fully wired world — generated Internet,
// cloud deployment, policy catalog, ingress resolver, latency oracle, and a
// measured problem instance. Sized to keep the whole suite fast while still
// exercising multi-PoP, multi-peering, multi-UG behaviour.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "cloudsim/deployment.h"
#include "cloudsim/ingress.h"
#include "core/problem.h"
#include "measure/latency.h"
#include "topo/generator.h"

namespace painter::test {

// The Internet is heap-allocated because the resolver/oracle hold pointers
// into it; moving a World must not relocate it.
struct World {
  std::unique_ptr<topo::Internet> internet_ptr;
  std::unique_ptr<cloudsim::Deployment> deployment;
  std::unique_ptr<cloudsim::PolicyCatalog> catalog;
  std::unique_ptr<cloudsim::IngressResolver> resolver;
  std::unique_ptr<measure::LatencyOracle> oracle;

  [[nodiscard]] const topo::Internet& internet() const { return *internet_ptr; }
};

inline World MakeWorld(std::uint64_t seed = 11, std::size_t stubs = 150,
                       std::size_t pops = 8) {
  topo::InternetConfig icfg;
  icfg.seed = seed;
  icfg.tier1_count = 4;
  icfg.transit_count = 12;
  icfg.regional_count = 30;
  icfg.stub_count = stubs;

  World w;
  w.internet_ptr =
      std::make_unique<topo::Internet>(topo::GenerateInternet(icfg));

  cloudsim::DeploymentConfig dcfg;
  dcfg.seed = seed + 1;
  dcfg.pop_count = pops;
  w.deployment = std::make_unique<cloudsim::Deployment>(
      cloudsim::BuildDeployment(*w.internet_ptr, dcfg));
  w.catalog = std::make_unique<cloudsim::PolicyCatalog>(*w.internet_ptr,
                                                        *w.deployment);
  w.resolver = std::make_unique<cloudsim::IngressResolver>(*w.internet_ptr,
                                                           *w.deployment);
  measure::OracleConfig ocfg;
  ocfg.seed = seed + 2;
  w.oracle = std::make_unique<measure::LatencyOracle>(*w.internet_ptr,
                                                      *w.deployment, ocfg);
  return w;
}

inline core::ProblemInstance MakeInstance(const World& w,
                                          std::uint64_t seed = 21) {
  util::Rng rng{seed};
  return core::BuildMeasuredInstance(w.internet(), *w.deployment, *w.catalog,
                                     *w.resolver, *w.oracle, rng);
}

// Process-wide world cache. World construction (topology generation +
// deployment + catalog + oracle) dominates the runtime of tests that only
// *read* the world; tests that call MakeWorld with the same parameters used
// to pay that cost once per TEST() body. SharedWorld builds each distinct
// (seed, stubs, pops) once per binary and hands out a const reference.
//
// World generation is a pure function of its parameters (seeded Rng, no
// wall-clock), so a cached world is indistinguishable from a fresh one —
// world_fixture_test asserts this. Only use the cache for read-only access;
// a test that needs to mutate the world must still call MakeWorld.
inline const World& SharedWorld(std::uint64_t seed = 11,
                                std::size_t stubs = 150,
                                std::size_t pops = 8) {
  using Key = std::tuple<std::uint64_t, std::size_t, std::size_t>;
  static std::map<Key, World> cache;
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock{mu};
  const Key key{seed, stubs, pops};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, MakeWorld(seed, stubs, pops)).first;
  }
  return it->second;
}

}  // namespace painter::test
