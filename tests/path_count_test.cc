#include <gtest/gtest.h>

#include "bgpsim/engine.h"
#include "bgpsim/path_count.h"
#include "tests/world_fixture.h"

namespace painter::bgpsim {
namespace {

using topo::AsGraph;
using topo::AsTier;
using util::AsId;
using util::MetroId;

AsId Add(AsGraph& g, AsTier tier, const char* name) {
  return g.AddAs(tier, name, {MetroId{0}});
}

TEST(PathCount, DirectProviderEdge) {
  // provider -> cloud (cloud is the customer): exactly one path.
  AsGraph g;
  const AsId p = Add(g, AsTier::kTier1, "p");
  const AsId cloud = Add(g, AsTier::kCloud, "c");
  g.AddProviderEdge(p, cloud);
  const auto counts = CountValleyFreePaths(g, cloud);
  EXPECT_DOUBLE_EQ(counts.total[p.value()], 1.0);
}

TEST(PathCount, DirectPeerEdge) {
  AsGraph g;
  const AsId p = Add(g, AsTier::kTransit, "p");
  const AsId cloud = Add(g, AsTier::kCloud, "c");
  g.AddPeerEdge(p, cloud);
  const auto counts = CountValleyFreePaths(g, cloud);
  EXPECT_DOUBLE_EQ(counts.total[p.value()], 1.0);
}

TEST(PathCount, StubThroughChain) {
  // stub -> regional -> transit -> cloud(customer of transit): one path.
  AsGraph g;
  const AsId tr = Add(g, AsTier::kTransit, "tr");
  const AsId r = Add(g, AsTier::kRegional, "r");
  const AsId s = Add(g, AsTier::kStub, "s");
  const AsId cloud = Add(g, AsTier::kCloud, "c");
  g.AddProviderEdge(tr, r);
  g.AddProviderEdge(r, s);
  g.AddProviderEdge(tr, cloud);
  const auto counts = CountValleyFreePaths(g, cloud);
  EXPECT_DOUBLE_EQ(counts.total[s.value()], 1.0);
  EXPECT_DOUBLE_EQ(counts.total[r.value()], 1.0);
}

TEST(PathCount, TwoDisjointChainsAdd) {
  // Stub with two providers, each with its own session: two paths.
  AsGraph g;
  const AsId r1 = Add(g, AsTier::kRegional, "r1");
  const AsId r2 = Add(g, AsTier::kRegional, "r2");
  const AsId s = Add(g, AsTier::kStub, "s");
  const AsId cloud = Add(g, AsTier::kCloud, "c");
  g.AddProviderEdge(r1, s);
  g.AddProviderEdge(r2, s);
  g.AddPeerEdge(r1, cloud);
  g.AddPeerEdge(r2, cloud);
  const auto counts = CountValleyFreePaths(g, cloud);
  EXPECT_DOUBLE_EQ(counts.total[s.value()], 2.0);
}

TEST(PathCount, PeerThenDownAllowedOnce) {
  // s -> r1 -peer- r2 -> (cloud customer of r2): valid (up, peer, down).
  AsGraph g;
  const AsId r1 = Add(g, AsTier::kRegional, "r1");
  const AsId r2 = Add(g, AsTier::kRegional, "r2");
  const AsId s = Add(g, AsTier::kStub, "s");
  const AsId cloud = Add(g, AsTier::kCloud, "c");
  g.AddProviderEdge(r1, s);
  g.AddPeerEdge(r1, r2);
  g.AddProviderEdge(r2, cloud);  // cloud is r2's customer
  const auto counts = CountValleyFreePaths(g, cloud);
  EXPECT_DOUBLE_EQ(counts.total[s.value()], 1.0);
}

TEST(PathCount, ValleyRejected) {
  // s -> r1 (up), r1's *provider* t has the session; then t -> cloud is a
  // peer edge: path s-r1-t-cloud is up,up,peer = valid. But r2 that can only
  // be reached down from t must not route back up.
  AsGraph g;
  const AsId t = Add(g, AsTier::kTransit, "t");
  const AsId r1 = Add(g, AsTier::kRegional, "r1");
  const AsId r2 = Add(g, AsTier::kRegional, "r2");
  const AsId s = Add(g, AsTier::kStub, "s");
  const AsId cloud = Add(g, AsTier::kCloud, "c");
  g.AddProviderEdge(t, r1);
  g.AddProviderEdge(t, r2);
  g.AddProviderEdge(r1, s);
  g.AddPeerEdge(r2, cloud);  // only r2 connects
  // Valid path: s -> r1 -> t -> r2 -> cloud? t->r2 is DOWN, r2->cloud is
  // PEER after a down hop: invalid (peer must come before any down hop).
  const auto counts = CountValleyFreePaths(g, cloud);
  EXPECT_DOUBLE_EQ(counts.total[s.value()], 0.0);
  EXPECT_DOUBLE_EQ(counts.total[r2.value()], 1.0);  // r2 itself is fine
}

TEST(PathCount, OriginHasNoSelfCount) {
  AsGraph g;
  const AsId p = Add(g, AsTier::kTier1, "p");
  const AsId cloud = Add(g, AsTier::kCloud, "c");
  g.AddProviderEdge(p, cloud);
  const auto counts = CountValleyFreePaths(g, cloud);
  EXPECT_DOUBLE_EQ(counts.total[cloud.value()], 0.0);
}

TEST(PathCount, AtLeastOnePathWheneverBgpReaches) {
  // Consistency with the engine: if the stable outcome reaches an AS, at
  // least one valley-free path must exist for it.
  const test::World& w = test::SharedWorld(29, 150, 8);
  const auto counts = CountValleyFreePaths(w.internet().graph,
                                           w.deployment->cloud_as());
  std::vector<util::PeeringId> all;
  for (const auto& p : w.deployment->peerings()) all.push_back(p.id);
  const auto result = w.resolver->ResolveWithRoutes(all);
  for (const auto& ug : w.deployment->ugs()) {
    if (result.outcome.Reachable(ug.as)) {
      EXPECT_GE(counts.total[ug.as.value()], 1.0) << "UG " << ug.id;
    }
  }
}

TEST(PathCount, MultihomingMultipliesPaths) {
  // More providers -> at least as many paths.
  const test::World& w = test::SharedWorld(31, 200, 8);
  const auto counts = CountValleyFreePaths(w.internet().graph,
                                           w.deployment->cloud_as());
  const auto& g = w.internet().graph;
  // Aggregate: mean path count of multihomed stubs exceeds single-homed.
  double multi = 0.0, multi_n = 0.0, single = 0.0, single_n = 0.0;
  for (const auto& ug : w.deployment->ugs()) {
    if (g.providers(ug.as).size() >= 2) {
      multi += counts.total[ug.as.value()];
      multi_n += 1.0;
    } else {
      single += counts.total[ug.as.value()];
      single_n += 1.0;
    }
  }
  ASSERT_GT(multi_n, 0.0);
  ASSERT_GT(single_n, 0.0);
  EXPECT_GT(multi / multi_n, single / single_n);
}

}  // namespace
}  // namespace painter::bgpsim
