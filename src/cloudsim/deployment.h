// Cloud deployment model: PoPs, peerings, transit providers, user groups.
//
// Mirrors the structure the paper describes for Azure (§4): ~200 PoPs in major
// metros, peering routers connecting thousands of networks, a handful of
// transit providers, and user groups (UG = AS × metro) weighted by traffic
// volume. The deployment is attached to a generated Internet: the cloud AS is
// inserted into the AS graph as a peer / customer of networks co-located at
// its PoP metros.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/generator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace painter::cloudsim {

struct Pop {
  util::PopId id;
  util::MetroId metro;
  std::string name;
};

// One interconnection between the cloud and a neighbor AS at a PoP. The same
// neighbor may peer at several PoPs ("some networks connect at multiple PoPs,
// most only at one", §4).
struct Peering {
  util::PeeringId id;
  util::AsId peer;
  util::PopId pop;
  // True if this session is with a transit provider of the cloud (the cloud
  // is the customer). Transit announcements reach the whole Internet; peer
  // announcements reach only the peer's customer cone.
  bool transit = false;
};

struct UserGroup {
  util::UgId id;
  util::AsId as;
  util::MetroId metro;
  // Traffic volume weight w(UG) in Eq. 1.
  double traffic_weight = 1.0;
};

struct DeploymentConfig {
  std::uint64_t seed = 7;
  // Number of PoPs; placed in the highest-weight metros.
  std::size_t pop_count = 24;
  // Number of distinct transit providers (tier-1s the cloud buys from).
  std::size_t transit_provider_count = 3;
  // Probability that a transit/regional AS present at a PoP metro peers
  // there. Regional peering is sparse — most enterprises reach the cloud
  // through a transit ("most benefit was through transit providers", §5.1.2).
  double transit_peer_prob = 0.85;
  double regional_peer_prob = 0.15;
  // Probability that a stub AS at a PoP metro connects directly.
  double stub_peer_prob = 0.02;
  // Traffic heavy-tail shape for UG volumes.
  double ug_volume_pareto_alpha = 1.2;
};

class Deployment {
 public:
  Deployment(util::AsId cloud_as, std::vector<Pop> pops,
             std::vector<Peering> peerings, std::vector<UserGroup> ugs);

  [[nodiscard]] util::AsId cloud_as() const { return cloud_as_; }
  [[nodiscard]] const std::vector<Pop>& pops() const { return pops_; }
  [[nodiscard]] const std::vector<Peering>& peerings() const {
    return peerings_;
  }
  [[nodiscard]] const std::vector<UserGroup>& ugs() const { return ugs_; }

  [[nodiscard]] const Pop& pop(util::PopId id) const;
  [[nodiscard]] const Peering& peering(util::PeeringId id) const;
  [[nodiscard]] const UserGroup& ug(util::UgId id) const;

  // All peering sessions with a given neighbor AS (possibly several PoPs).
  [[nodiscard]] std::span<const util::PeeringId> PeeringsOfAs(
      util::AsId as) const;

  // Peering session ids marked as transit.
  [[nodiscard]] const std::vector<util::PeeringId>& TransitPeerings() const {
    return transit_peerings_;
  }

  [[nodiscard]] double TotalTrafficWeight() const { return total_weight_; }

 private:
  util::AsId cloud_as_;
  std::vector<Pop> pops_;
  std::vector<Peering> peerings_;
  std::vector<UserGroup> ugs_;
  std::unordered_map<util::AsId, std::vector<util::PeeringId>> by_as_;
  std::vector<util::PeeringId> transit_peerings_;
  double total_weight_ = 0.0;
};

// Inserts the cloud into `internet` (mutating its AS graph) and returns the
// deployment. PoPs are placed in the top-weight metros; sessions are created
// with co-located networks; UGs are derived from stub ASes.
[[nodiscard]] Deployment BuildDeployment(topo::Internet& internet,
                                         const DeploymentConfig& config);

}  // namespace painter::cloudsim
