#include "cloudsim/ingress.h"

#include <algorithm>
#include <unordered_map>

#include "util/hashmix.h"

namespace painter::cloudsim {

IngressResolver::IngressResolver(const topo::Internet& internet,
                                 const Deployment& deployment,
                                 ExitQuirkConfig quirks)
    : internet_(&internet), deployment_(&deployment), quirks_(quirks),
      engine_(internet.graph) {}

util::PeeringId IngressResolver::PickExit(
    util::AsId entry, util::MetroId ug_metro,
    std::span<const util::PeeringId> options) const {
  const topo::AsInfo& info = internet_->graph.info(entry);
  const auto& metros = internet_->metros;

  // Quirky (entry AS, client metro) pairs exit at their rendezvous-hash
  // session — stable across advertisement changes, so the orchestrator can
  // learn the preference, but frequently not the nearest PoP. Quirks stay at
  // continental scale (the paper's New York→Amsterdam example): antipodal
  // exits are excluded.
  if (options.size() > 1) {
    util::Rng qrng{util::MixSeed(quirks_.seed, 0x88, entry.value(),
                                    ug_metro.value())};
    if (qrng.Bernoulli(quirks_.quirk_prob)) {
      constexpr double kQuirkMaxKm = 7000.0;
      const topo::GeoPoint& home =
          internet_->metros[ug_metro.value()].location;
      util::PeeringId best;
      std::uint64_t best_hash = 0;
      for (util::PeeringId pid : options) {
        const auto& pop_loc =
            internet_->metros[deployment_->pop(deployment_->peering(pid).pop)
                                  .metro.value()]
                .location;
        if (topo::Distance(home, pop_loc).count() > kQuirkMaxKm) continue;
        const std::uint64_t h = util::MixSeed(
            quirks_.seed, 0x99, util::MixSeed(entry.value(), ug_metro.value()),
            deployment_->peering(pid).pop.value());
        if (!best.valid() || h > best_hash) {
          best = pid;
          best_hash = h;
        }
      }
      if (best.valid()) return best;
    }
  }
  const util::MetroId target =
      info.exit_policy == topo::ExitPolicy::kEarlyExit ? ug_metro
                                                       : info.exit_bias;
  const topo::GeoPoint& anchor = metros[target.value()].location;

  util::PeeringId best;
  double best_dist = 0.0;
  for (util::PeeringId pid : options) {
    const Peering& sess = deployment_->peering(pid);
    const topo::GeoPoint& pop_loc =
        metros[deployment_->pop(sess.pop).metro.value()].location;
    const double d = topo::Distance(anchor, pop_loc).count();
    if (!best.valid() || d < best_dist ||
        (d == best_dist && pid < best)) {
      best = pid;
      best_dist = d;
    }
  }
  return best;
}

IngressResolver::Result IngressResolver::ResolveWithRoutes(
    std::span<const util::PeeringId> advertised) const {
  // Group the advertised sessions by neighbor AS.
  std::unordered_map<util::AsId, std::vector<util::PeeringId>> by_as;
  bgpsim::Announcement ann{.prefix = util::PrefixId{0},
                           .origin = deployment_->cloud_as(),
                           .to_neighbors = {}};
  for (util::PeeringId pid : advertised) {
    auto& bucket = by_as[deployment_->peering(pid).peer];
    if (bucket.empty()) ann.to_neighbors.push_back(deployment_->peering(pid).peer);
    bucket.push_back(pid);
  }

  bgpsim::RoutingOutcome outcome = engine_.Propagate(ann);

  std::vector<std::optional<util::PeeringId>> ingress(
      deployment_->ugs().size());
  for (const UserGroup& ug : deployment_->ugs()) {
    if (!outcome.Reachable(ug.as)) continue;
    const auto entry = outcome.EntryAs(ug.as);
    if (!entry.has_value()) continue;
    const auto it = by_as.find(*entry);
    if (it == by_as.end()) continue;  // should not happen for valid outcomes
    ingress[ug.id.value()] = PickExit(*entry, ug.metro, it->second);
  }
  return Result{std::move(ingress), std::move(outcome)};
}

std::vector<std::optional<util::PeeringId>> IngressResolver::Resolve(
    std::span<const util::PeeringId> advertised) const {
  return ResolveWithRoutes(advertised).ingress_of_ug;
}

PolicyCatalog::PolicyCatalog(const topo::Internet& internet,
                             const Deployment& deployment) {
  const topo::AsGraph& g = internet.graph;
  compliant_.resize(deployment.ugs().size());

  // Precompute, per distinct neighbor AS, whether each UG's AS is in its
  // customer cone; transit sessions are compliant for everyone.
  std::unordered_map<util::AsId, std::vector<util::PeeringId>> sessions_by_as;
  for (const Peering& p : deployment.peerings()) {
    sessions_by_as[p.peer].push_back(p.id);
  }
  for (const auto& [peer, sessions] : sessions_by_as) {
    const bool transit = deployment.peering(sessions.front()).transit;
    for (const UserGroup& ug : deployment.ugs()) {
      const bool direct = ug.as == peer;
      if (transit || direct || g.InCustomerCone(ug.as, peer)) {
        auto& list = compliant_[ug.id.value()];
        list.insert(list.end(), sessions.begin(), sessions.end());
      }
    }
  }
  for (auto& list : compliant_) std::sort(list.begin(), list.end());
}

bool PolicyCatalog::IsCompliant(util::UgId ug, util::PeeringId peering) const {
  const auto& list = compliant_.at(ug.value());
  return std::binary_search(list.begin(), list.end(), peering);
}

double PolicyCatalog::MeanCompliantPerUg() const {
  if (compliant_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : compliant_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(compliant_.size());
}

}  // namespace painter::cloudsim
