#include "cloudsim/deployment.h"

#include <algorithm>
#include <stdexcept>

namespace painter::cloudsim {

Deployment::Deployment(util::AsId cloud_as, std::vector<Pop> pops,
                       std::vector<Peering> peerings,
                       std::vector<UserGroup> ugs)
    : cloud_as_(cloud_as),
      pops_(std::move(pops)),
      peerings_(std::move(peerings)),
      ugs_(std::move(ugs)) {
  for (const Peering& p : peerings_) {
    by_as_[p.peer].push_back(p.id);
    if (p.transit) transit_peerings_.push_back(p.id);
  }
  for (const UserGroup& ug : ugs_) total_weight_ += ug.traffic_weight;
}

const Pop& Deployment::pop(util::PopId id) const {
  if (!id.valid() || id.value() >= pops_.size()) {
    throw std::out_of_range{"Deployment::pop"};
  }
  return pops_[id.value()];
}

const Peering& Deployment::peering(util::PeeringId id) const {
  if (!id.valid() || id.value() >= peerings_.size()) {
    throw std::out_of_range{"Deployment::peering"};
  }
  return peerings_[id.value()];
}

const UserGroup& Deployment::ug(util::UgId id) const {
  if (!id.valid() || id.value() >= ugs_.size()) {
    throw std::out_of_range{"Deployment::ug"};
  }
  return ugs_[id.value()];
}

std::span<const util::PeeringId> Deployment::PeeringsOfAs(
    util::AsId as) const {
  const auto it = by_as_.find(as);
  if (it == by_as_.end()) return {};
  return it->second;
}

Deployment BuildDeployment(topo::Internet& internet,
                           const DeploymentConfig& config) {
  util::Rng rng{config.seed};
  topo::AsGraph& g = internet.graph;
  const auto& metros = internet.metros;

  // --- Place PoPs in the highest-weight metros. ---
  std::vector<std::size_t> metro_order(metros.size());
  for (std::size_t i = 0; i < metros.size(); ++i) metro_order[i] = i;
  std::sort(metro_order.begin(), metro_order.end(), [&](std::size_t a,
                                                        std::size_t b) {
    return metros[a].population_weight > metros[b].population_weight;
  });
  const std::size_t pop_count = std::min(config.pop_count, metros.size());
  std::vector<Pop> pops;
  std::vector<util::MetroId> pop_metros;
  for (std::size_t i = 0; i < pop_count; ++i) {
    const topo::Metro& m = metros[metro_order[i]];
    pops.push_back(Pop{.id = util::PopId{static_cast<std::uint32_t>(i)},
                       .metro = m.id,
                       .name = "PoP-" + m.name});
    pop_metros.push_back(m.id);
  }

  // --- Insert the cloud AS, present at every PoP metro. ---
  const util::AsId cloud = g.AddAs(topo::AsTier::kCloud, "CLOUD", pop_metros,
                                   topo::ExitPolicy::kEarlyExit,
                                   pop_metros.front());

  // --- Transit providers: the cloud buys transit from a few tier-1s. ---
  const auto tier1s = g.AsesOfTier(topo::AsTier::kTier1);
  std::vector<util::AsId> transit_providers;
  for (std::size_t i = 0;
       i < config.transit_provider_count && i < tier1s.size(); ++i) {
    transit_providers.push_back(tier1s[i]);
    g.AddProviderEdge(/*provider=*/tier1s[i], /*customer=*/cloud);
  }

  // --- Peerings: sessions with networks co-located at PoP metros. ---
  // An AS peers with the cloud at every PoP metro where both are present,
  // subject to a per-tier probability of peering at all. Transit providers
  // get sessions at all shared PoPs.
  std::vector<Peering> peerings;
  auto add_session = [&](util::AsId peer, util::PopId pop, bool transit) {
    peerings.push_back(
        Peering{.id = util::PeeringId{static_cast<std::uint32_t>(peerings.size())},
                .peer = peer,
                .pop = pop,
                .transit = transit});
  };
  auto pop_at_metro = [&](util::MetroId m) -> std::optional<util::PopId> {
    for (const Pop& p : pops) {
      if (p.metro == m) return p.id;
    }
    return std::nullopt;
  };

  for (std::uint32_t v = 0; v + 1 < g.size(); ++v) {  // excludes the cloud AS
    const util::AsId as{v};
    const topo::AsInfo& info = g.info(as);
    const bool is_transit_provider =
        std::find(transit_providers.begin(), transit_providers.end(), as) !=
        transit_providers.end();
    double prob = 0.0;
    switch (info.tier) {
      case topo::AsTier::kTier1:
        prob = is_transit_provider ? 1.0 : config.transit_peer_prob;
        break;
      case topo::AsTier::kTransit:
        prob = config.transit_peer_prob;
        break;
      case topo::AsTier::kRegional:
        prob = config.regional_peer_prob;
        break;
      case topo::AsTier::kStub:
        prob = config.stub_peer_prob;
        break;
      case topo::AsTier::kCloud:
        continue;
    }
    if (!is_transit_provider && !rng.Bernoulli(prob)) continue;

    bool any_session = false;
    for (util::MetroId m : info.presence) {
      const auto pop = pop_at_metro(m);
      if (!pop.has_value()) continue;
      add_session(as, *pop, is_transit_provider);
      any_session = true;
    }
    if (any_session && !is_transit_provider &&
        info.tier != topo::AsTier::kStub) {
      // Register the settlement-free peering in the AS graph so BGP policy
      // (export only to customers) applies to the cloud's announcements.
      g.AddPeerEdge(cloud, as);
    } else if (any_session && info.tier == topo::AsTier::kStub) {
      // Directly-connected enterprises buy a connection: cloud treats them as
      // peers as well (paths are customer-like but symmetric for our needs).
      g.AddPeerEdge(cloud, as);
    }
  }

  // --- User groups: one per stub AS at its home metro. ---
  std::vector<UserGroup> ugs;
  for (util::AsId as : g.AsesOfTier(topo::AsTier::kStub)) {
    const topo::AsInfo& info = g.info(as);
    const double metro_w = metros[info.presence.front().value()].population_weight;
    const double volume =
        metro_w * rng.Pareto(1.0, config.ug_volume_pareto_alpha);
    ugs.push_back(UserGroup{
        .id = util::UgId{static_cast<std::uint32_t>(ugs.size())},
        .as = as,
        .metro = info.presence.front(),
        .traffic_weight = volume,
    });
  }

  return Deployment{cloud, std::move(pops), std::move(peerings),
                    std::move(ugs)};
}

}  // namespace painter::cloudsim
