// Ingress resolution: where traffic actually enters the cloud.
//
// Given an advertisement (a set of peering sessions carrying a prefix), the
// interdomain outcome determines, per user group, the *entry AS* (BGP, policy
// driven, latency oblivious) and then the entry AS's exit policy picks the
// PoP among the sessions where it heard the prefix (hot potato for most ASes,
// fixed/cold potato for some — the paper's inflating transit providers). This
// file also derives the *policy-compliant ingress* catalog the orchestrator
// reasons over: a peering can serve a UG if the UG's AS is in the peer's
// customer cone or the peering is with one of the cloud's transit providers
// (§3.1).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bgpsim/engine.h"
#include "cloudsim/deployment.h"

namespace painter::cloudsim {

// Intra-AS exit idiosyncrasies. Predicting where traffic ingresses is hard
// (§3.1, [64, 111]): some (entry AS, client region) pairs consistently exit
// toward a PoP that is *not* the nearest — the paper's "many New York users
// preferred an ingress in Amsterdam" surprise, which the Advertisement
// Orchestrator must learn. Quirky pairs pick their exit by rendezvous
// hashing over the AS's advertised sessions, so the choice is stable across
// advertisement changes (and therefore learnable).
struct ExitQuirkConfig {
  double quirk_prob = 0.03;  // fraction of (AS, metro) pairs with a quirk
  std::uint64_t seed = 0x9e37;
};

class IngressResolver {
 public:
  IngressResolver(const topo::Internet& internet, const Deployment& deployment,
                  ExitQuirkConfig quirks = {});

  // Resolves, for every UG, the peering its traffic ingresses through when
  // `advertised` carries the prefix. nullopt = no route (prefix unreachable
  // from that UG).
  [[nodiscard]] std::vector<std::optional<util::PeeringId>> Resolve(
      std::span<const util::PeeringId> advertised) const;

  // Same resolution but also exposes the interdomain routing outcome (used by
  // the resilience analysis, which needs full AS paths).
  struct Result {
    std::vector<std::optional<util::PeeringId>> ingress_of_ug;
    bgpsim::RoutingOutcome outcome;
  };
  [[nodiscard]] Result ResolveWithRoutes(
      std::span<const util::PeeringId> advertised) const;

  // The PoP the entry AS would exit through for this UG, among `options`
  // (session ids all belonging to `entry`). Applies the entry AS exit policy.
  [[nodiscard]] util::PeeringId PickExit(
      util::AsId entry, util::MetroId ug_metro,
      std::span<const util::PeeringId> options) const;

  [[nodiscard]] const topo::AsGraph& graph() const { return internet_->graph; }

 private:
  const topo::Internet* internet_;
  const Deployment* deployment_;
  ExitQuirkConfig quirks_;
  bgpsim::BgpEngine engine_;
};

// Policy-compliant ingress catalog: for each UG, the sessions that could
// carry its traffic under some advertisement. Exact here (we own the ground
// truth relationships); in the paper this is inferred from BGP feeds +
// ProbLink cones and validated at ~96% (§3.1).
class PolicyCatalog {
 public:
  PolicyCatalog(const topo::Internet& internet, const Deployment& deployment);

  [[nodiscard]] std::span<const util::PeeringId> CompliantPeerings(
      util::UgId ug) const {
    return compliant_.at(ug.value());
  }

  [[nodiscard]] bool IsCompliant(util::UgId ug, util::PeeringId peering) const;

  // Average number of compliant sessions per UG (the paper notes UGs have
  // paths via a small fraction of ingresses, which keeps Alg. 1 fast, §4).
  [[nodiscard]] double MeanCompliantPerUg() const;

 private:
  std::vector<std::vector<util::PeeringId>> compliant_;
};

}  // namespace painter::cloudsim
