#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace painter::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table::AddRow: wrong cell count"};
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::Pct(double fraction, int precision) {
  return Num(fraction * 100.0, precision) + "%";
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintSweep(std::ostream& os, const std::string& x_label,
                const std::vector<double>& xs,
                const std::vector<Series>& series, int precision) {
  std::vector<std::string> headers{x_label};
  for (const auto& s : series) {
    headers.push_back(s.name);
    if (s.ys.size() != xs.size()) {
      throw std::invalid_argument{"PrintSweep: series length mismatch"};
    }
  }
  Table t{headers};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{Table::Num(xs[i], precision)};
    for (const auto& s : series) row.push_back(Table::Num(s.ys[i], precision));
    t.AddRow(std::move(row));
  }
  t.Print(os);
}

void PrintFigureHeader(std::ostream& os, const std::string& figure,
                       const std::string& caption) {
  os << "\n=== " << figure << " ===\n" << caption << "\n\n";
}

}  // namespace painter::util
