// Strong identifier types shared across PAINTER modules.
//
// Every entity in the simulation (AS, PoP, peering, prefix, user group, ...)
// is referred to by a small integer id. Raw integers invite cross-wiring an
// AsId into a PopId slot, so each id is a distinct type with explicit
// construction and a `value()` accessor. Ids are hashable and ordered so they
// work as keys in standard containers.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace painter::util {

// CRTP base giving each id type value semantics, comparisons, and hashing.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  static constexpr value_type kInvalidValue =
      std::numeric_limits<value_type>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : v_(v) {}

  [[nodiscard]] constexpr value_type value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalidValue; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.v_;
  }

 private:
  value_type v_ = kInvalidValue;
};

struct AsTag {};
struct PopTag {};
struct PeeringTag {};
struct PrefixTag {};
struct UgTag {};
struct MetroTag {};
struct ResolverTag {};
struct NodeTag {};
struct ServiceTag {};

using AsId = StrongId<AsTag>;            // autonomous system
using PopId = StrongId<PopTag>;          // cloud point of presence
using PeeringId = StrongId<PeeringTag>;  // (peer AS, PoP) interconnection
using PrefixId = StrongId<PrefixTag>;    // an advertisable IP prefix
using UgId = StrongId<UgTag>;            // user group: (AS, metro)
using MetroId = StrongId<MetroTag>;      // metropolitan area
using ResolverId = StrongId<ResolverTag>;  // recursive DNS resolver
using NodeId = StrongId<NodeTag>;        // packet-simulator node
using ServiceId = StrongId<ServiceTag>;  // cloud service / tenant

}  // namespace painter::util

namespace std {
template <typename Tag>
struct hash<painter::util::StrongId<Tag>> {
  size_t operator()(painter::util::StrongId<Tag> id) const noexcept {
    return std::hash<typename painter::util::StrongId<Tag>::value_type>{}(
        id.value());
  }
};
}  // namespace std
