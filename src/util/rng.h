// Deterministic random number generation.
//
// All stochastic pieces of the reproduction (topology generation, latency
// inflation draws, probe jitter, flow arrivals) draw from an Rng that is
// explicitly seeded. There is no global RNG and no time-based seeding, so a
// given seed reproduces an experiment bit-for-bit.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>

namespace painter::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derive an independent child stream; used so that sub-generators (e.g. one
  // per UG) do not perturb each other when call order changes.
  [[nodiscard]] Rng Fork() { return Rng{engine_()}; }

  [[nodiscard]] double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  [[nodiscard]] double Uniform01() { return Uniform(0.0, 1.0); }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  [[nodiscard]] std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  [[nodiscard]] bool Bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  [[nodiscard]] double Exponential(double rate) {
    return std::exponential_distribution<double>{rate}(engine_);
  }

  [[nodiscard]] double Normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  [[nodiscard]] double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  // Pareto variate with scale x_m and shape alpha; heavy-tailed volumes and
  // flow durations use this.
  [[nodiscard]] double Pareto(double x_m, double alpha) {
    const double u = Uniform01();
    return x_m / std::pow(1.0 - u, 1.0 / alpha);
  }

  // Sample an index proportionally to non-negative weights. Returns n if all
  // weights are zero (caller decides the fallback).
  [[nodiscard]] std::size_t WeightedIndex(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.size();
    double x = Uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  void Shuffle(std::span<T> items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace painter::util
