// Physical units used throughout the simulation.
//
// Latencies are milliseconds, distances kilometers, traffic volumes bytes.
// Thin wrappers keep the axes from being mixed up in arithmetic-heavy code
// (benefit calculations multiply weights by latencies by probabilities) while
// still converting cheaply to double for math.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace painter::util {

// Milliseconds of network latency. Negative values are meaningful as
// improvements (deltas), so no invariant is enforced.
class Millis {
 public:
  constexpr Millis() = default;
  constexpr explicit Millis(double ms) : ms_(ms) {}

  [[nodiscard]] constexpr double count() const { return ms_; }

  friend constexpr Millis operator+(Millis a, Millis b) {
    return Millis{a.ms_ + b.ms_};
  }
  friend constexpr Millis operator-(Millis a, Millis b) {
    return Millis{a.ms_ - b.ms_};
  }
  friend constexpr Millis operator*(Millis a, double k) {
    return Millis{a.ms_ * k};
  }
  friend constexpr Millis operator*(double k, Millis a) { return a * k; }
  friend constexpr Millis operator/(Millis a, double k) {
    return Millis{a.ms_ / k};
  }
  constexpr Millis& operator+=(Millis o) {
    ms_ += o.ms_;
    return *this;
  }
  friend constexpr auto operator<=>(Millis, Millis) = default;
  friend std::ostream& operator<<(std::ostream& os, Millis m) {
    return os << m.ms_ << " ms";
  }

 private:
  double ms_ = 0.0;
};

// Kilometers of geographic distance.
class Km {
 public:
  constexpr Km() = default;
  constexpr explicit Km(double km) : km_(km) {}

  [[nodiscard]] constexpr double count() const { return km_; }

  friend constexpr Km operator+(Km a, Km b) { return Km{a.km_ + b.km_}; }
  friend constexpr Km operator-(Km a, Km b) { return Km{a.km_ - b.km_}; }
  friend constexpr Km operator*(Km a, double k) { return Km{a.km_ * k}; }
  friend constexpr auto operator<=>(Km, Km) = default;
  friend std::ostream& operator<<(std::ostream& os, Km k) {
    return os << k.km_ << " km";
  }

 private:
  double km_ = 0.0;
};

// Bytes of traffic volume (weights in Eq. 1 are traffic volumes).
using Bytes = std::uint64_t;

// Speed of light in fiber is roughly 2/3 c; the paper's geolocation checks use
// speed-of-light-in-fiber constraints (Appendix B). One-way propagation.
inline constexpr double kFiberKmPerMs = 200.0;

// One-way propagation delay over a great-circle fiber run of `d`.
[[nodiscard]] constexpr Millis FiberLatency(Km d) {
  return Millis{d.count() / kFiberKmPerMs};
}

// Round-trip propagation delay over distance `d`.
[[nodiscard]] constexpr Millis FiberRtt(Km d) {
  return Millis{2.0 * d.count() / kFiberKmPerMs};
}

}  // namespace painter::util
