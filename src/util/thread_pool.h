// Fixed-size, work-stealing-free thread pool plus a deterministic
// ParallelFor used by the orchestrator's and evaluators' embarrassingly
// parallel loops.
//
// Design constraints (see DESIGN.md's determinism rule — a seed reproduces
// every experiment bit-for-bit, at any thread count):
//  - The chunk decomposition of [begin, end) depends only on `grain`, never
//    on the number of threads, so callers can stage per-index results into
//    pre-sized buffers and reduce them serially in fixed index order.
//  - Worker participation is capped by the caller (`num_threads`), with 1
//    forcing fully inline serial execution — the "old code path".
//  - Exceptions thrown by the body are captured and the first one observed
//    is rethrown on the calling thread after all chunks have stopped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace painter::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();  // drains already-submitted tasks, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  // Enqueues a task. Tasks must not block waiting for other pool tasks
  // (ParallelFor keeps the calling thread working, so it never deadlocks
  // even when the pool is saturated).
  void Submit(std::function<void()> task);

  // Process-wide pool sized to hardware_concurrency(), created on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Resolves a thread-count knob: 0 means hardware_concurrency() (at least 1).
[[nodiscard]] std::size_t EffectiveThreads(std::size_t requested);

// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of at
// most `grain` indices. At most `num_threads` threads participate (the
// caller plus workers borrowed from ThreadPool::Shared()); num_threads <= 1
// runs every chunk inline, in order. Blocks until all chunks completed or
// one threw; the first captured exception is rethrown.
void ParallelFor(std::size_t num_threads, std::size_t begin, std::size_t end,
                 std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace painter::util
