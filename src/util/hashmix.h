// Deterministic 64-bit mixing for hash-seeded draws.
//
// Stochastic-but-stable properties (a UG's latency through a peering, an
// AS's exit quirk for a region) are derived by mixing ids into a seed, so
// the same (seed, ids...) always yields the same value regardless of query
// order. Uses the splitmix64 finalizer.
#pragma once

#include <cstdint>

namespace painter::util {

[[nodiscard]] constexpr std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b,
                                              std::uint64_t c = 0,
                                              std::uint64_t d = 0) {
  auto mix = [](std::uint64_t x) constexpr {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  std::uint64_t h = mix(a);
  h = mix(h ^ b);
  h = mix(h ^ c);
  h = mix(h ^ d);
  return h;
}

}  // namespace painter::util
