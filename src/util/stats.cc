#include "util/stats.h"

#include <numeric>

namespace painter::util {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double WeightedMean(std::span<const double> xs,
                    std::span<const double> weights) {
  if (xs.size() != weights.size()) {
    throw std::invalid_argument{"WeightedMean: size mismatch"};
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * weights[i];
    den += weights[i];
  }
  return den == 0.0 ? 0.0 : num / den;
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Percentile(std::span<const double> xs, double pct) {
  if (xs.empty()) return 0.0;
  if (pct < 0.0 || pct > 100.0) {
    throw std::invalid_argument{"Percentile: pct out of range"};
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void EmpiricalCdf::Add(double x, double weight) {
  if (weight < 0.0) throw std::invalid_argument{"EmpiricalCdf: negative weight"};
  samples_.emplace_back(x, weight);
  total_weight_ += weight;
  sorted_ = false;
}

void EmpiricalCdf::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::FractionAtOrBelow(double x) const {
  if (samples_.empty() || total_weight_ == 0.0) return 0.0;
  Sort();
  double acc = 0.0;
  for (const auto& [v, w] : samples_) {
    if (v > x) break;
    acc += w;
  }
  return acc / total_weight_;
}

double EmpiricalCdf::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"Quantile: q out of range"};
  Sort();
  const double target = q * total_weight_;
  double acc = 0.0;
  for (const auto& [v, w] : samples_) {
    acc += w;
    if (acc >= target) return v;
  }
  return samples_.back().first;
}

std::vector<std::pair<double, double>> EmpiricalCdf::Series(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  Sort();
  const double lo = samples_.front().first;
  const double hi = samples_.back().first;
  if (lo == hi) {
    out.emplace_back(lo, 1.0);
    return out;
  }
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, FractionAtOrBelow(x));
  }
  return out;
}

}  // namespace painter::util
