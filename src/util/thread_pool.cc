#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "obs/metrics.h"

namespace painter::util {
namespace {

// Pool telemetry (README "Observability"): how many tasks ran, and how long
// each sat in the queue between Submit and dequeue. Queue waits are
// wall-clock — the histogram is registered wall_clock so run-diffing tools
// strip its value fields; the task *count* is workload-determined and stays
// comparable across runs.
obs::Counter& TasksCounter() {
  static obs::Counter& c = obs::Metrics().GetCounter("threadpool.tasks");
  return c;
}

obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& h = obs::Metrics().GetHistogram(
      "threadpool.queue_wait_us",
      obs::HistogramSpec{.min_bound = 1.0,
                         .growth = 4.0,
                         .buckets = 16,
                         .wall_clock = true});
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Wrap to measure queue wait (enqueue -> dequeue) at execution time.
  const auto enqueued = std::chrono::steady_clock::now();
  auto timed = [task = std::move(task), enqueued] {
    const auto waited = std::chrono::steady_clock::now() - enqueued;
    QueueWaitHistogram().Record(
        std::chrono::duration<double, std::micro>(waited).count());
    TasksCounter().Add();
    task();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(timed));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool{EffectiveThreads(0)};
  return pool;
}

std::size_t EffectiveThreads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

namespace {

// Shared state of one ParallelFor call. Chunks are claimed from an atomic
// counter; which thread runs which chunk is unspecified, but the chunk
// boundaries themselves are fixed, so data-independent bodies stay
// deterministic. The caller waits for every helper before returning, so the
// (stack-allocated) state strictly outlives all references to it.
struct ForState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::size_t active_helpers = 0;
  std::exception_ptr error;

  void RunChunks() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunk_count) return;
      const std::size_t b = begin + c * grain;
      try {
        (*fn)(b, std::min(end, b + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

void ParallelFor(std::size_t num_threads, std::size_t begin, std::size_t end,
                 std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t chunk_count = (end - begin + grain - 1) / grain;
  const std::size_t effective = EffectiveThreads(num_threads);

  static obs::Counter& pf_calls =
      obs::Metrics().GetCounter("threadpool.parallel_for.calls");
  static obs::Counter& pf_chunks =
      obs::Metrics().GetCounter("threadpool.parallel_for.chunks");
  pf_calls.Add();
  pf_chunks.Add(chunk_count);

  if (effective <= 1 || chunk_count <= 1) {
    // Serial path: same chunk boundaries, executed in order, inline.
    for (std::size_t c = 0; c < chunk_count; ++c) {
      const std::size_t b = begin + c * grain;
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  ForState st;
  st.begin = begin;
  st.end = end;
  st.grain = grain;
  st.chunk_count = chunk_count;
  st.fn = &fn;

  ThreadPool& pool = ThreadPool::Shared();
  const std::size_t helpers =
      std::min({effective - 1, pool.thread_count(), chunk_count - 1});
  st.active_helpers = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.Submit([&st] {
      st.RunChunks();
      std::lock_guard<std::mutex> lock(st.mu);
      if (--st.active_helpers == 0) st.cv.notify_all();
    });
  }
  st.RunChunks();  // the calling thread always participates
  {
    std::unique_lock<std::mutex> lock(st.mu);
    st.cv.wait(lock, [&st] { return st.active_helpers == 0; });
  }
  if (st.error) std::rethrow_exception(st.error);
}

}  // namespace painter::util
