// Summary statistics and empirical distributions.
//
// The evaluation figures are mostly CDFs, percentiles, and weighted averages;
// this header centralizes those so every bench reports them the same way.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace painter::util {

[[nodiscard]] double Mean(std::span<const double> xs);
[[nodiscard]] double WeightedMean(std::span<const double> xs,
                                  std::span<const double> weights);
[[nodiscard]] double Variance(std::span<const double> xs);
[[nodiscard]] double StdDev(std::span<const double> xs);

// Percentile in [0, 100] with linear interpolation between order statistics.
[[nodiscard]] double Percentile(std::span<const double> xs, double pct);

[[nodiscard]] inline double Median(std::span<const double> xs) {
  return Percentile(xs, 50.0);
}

// Empirical CDF over accumulated samples, optionally weighted.
class EmpiricalCdf {
 public:
  void Add(double x, double weight = 1.0);

  // Fraction of weight at or below x.
  [[nodiscard]] double FractionAtOrBelow(double x) const;

  // Smallest sample value with CDF >= q (q in [0,1]).
  [[nodiscard]] double Quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // Evenly spaced (value, cumulative fraction) points for printing a CDF
  // series; at most `points` entries.
  [[nodiscard]] std::vector<std::pair<double, double>> Series(
      std::size_t points = 20) const;

 private:
  void Sort() const;

  mutable std::vector<std::pair<double, double>> samples_;  // (value, weight)
  mutable bool sorted_ = true;
  double total_weight_ = 0.0;
};

// Online mean/min/max accumulator for streaming measurements.
class Accumulator {
 public:
  void Add(double x) {
    ++n_;
    sum_ += x;
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace painter::util
