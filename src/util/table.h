// ASCII table / data-series printing for benchmark harnesses.
//
// Every bench binary regenerates a paper figure as text: a table of rows
// (figures with discrete buckets) or an (x, series...) sweep (line plots).
// This keeps the output format uniform so EXPERIMENTS.md can quote it.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace painter::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string Num(double v, int precision = 2);
  [[nodiscard]] static std::string Pct(double fraction, int precision = 1);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// A named line in a line-plot style figure.
struct Series {
  std::string name;
  std::vector<double> ys;
};

// Prints "x  series1  series2 ..." rows for a figure with a shared x axis.
void PrintSweep(std::ostream& os, const std::string& x_label,
                const std::vector<double>& xs,
                const std::vector<Series>& series, int precision = 2);

// Prints a figure banner so bench output is self-describing.
void PrintFigureHeader(std::ostream& os, const std::string& figure,
                       const std::string& caption);

}  // namespace painter::util
