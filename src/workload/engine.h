// Workload engine: replays a flow trace against a TM-Edge at scale.
//
// The engine is the bridge between the trace generator and the
// discrete-event Traffic Manager. It does NOT simulate per-packet dynamics
// for workload flows (a million flows a day at per-packet granularity would
// drown the DES); instead it advances in fixed ticks and, per tick:
//
//   1. admits every trace arrival due by now: snapshots the TM-Edge's tunnel
//      views (probed-up state + RTT EWMA), asks the DestinationPolicy for a
//      destination, pins the flow in the sharded FlowStore, and adds its
//      service rate to the target PoP's LoadTracker gauge;
//   2. expires flows in batch: each pinned flow carries its expiry tick, so
//      expiry is a bucket drain (lookup, release load, erase), never a scan
//      of the whole table.
//
// Ticks live on the simulator's absolute integer-µs grid: tick k fires at
// exactly start + (k+1) * tick_us via ScheduleAtUs, never by accumulating
// relative delays, so tick times and the expiry-bucket grid (bucket =
// expiry_us / tick_us) index the same arithmetic progression on traces of
// any length. Admission compares integer µs (`start_us <= now_us`), so an
// arrival due exactly on a tick boundary is admitted in that tick — there is
// no float truncation anywhere on the admission or expiry path.
// Stats::max_tick_skew_us watermarks |actual - expected| tick time and must
// stay 0; the timeline regression test asserts it.
//
// Pinning is immutable (§3.2): a flow's record never changes destination
// after admission, across any number of store rehashes or expiry sweeps.
// The engine draws no randomness at all — everything derives from the trace
// and the deterministic TM-Edge state — so a run is a pure function of
// (trace, world, config) and can execute alongside fault injection without
// perturbing the TM-Edge's event sequence (it only reads edge state).
//
// Optionally (place_edge_flows) the engine also installs itself as the
// TM-Edge's flow placer, so scripted per-packet flows started through
// TmEdge::StartFlow get the same capacity-aware destination selection.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netsim/sim.h"
#include "tm/tm_edge.h"
#include "workload/flow_store.h"
#include "workload/load.h"
#include "workload/trace.h"

namespace painter::obs {
class TimeseriesRegistry;
}  // namespace painter::obs

namespace painter::workload {

// A pinned workload flow. The destination is immutable after admission.
struct PinnedFlow {
  std::int32_t tunnel = -1;
  std::int32_t pop = -1;
  std::uint64_t bytes = 0;
  std::uint64_t expiry_us = 0;
  double rate_bps = 0.0;  // what OnRelease must subtract
};

struct EngineConfig {
  double tick_s = 0.1;  // batch granularity for admission and expiry (>= 1µs)
  // Per-flow service rate: a flow of B bytes stays pinned for B / rate
  // seconds (clamped below), occupying rate bytes/s of its PoP's capacity.
  double flow_bytes_per_s = 100.0e3;
  double min_duration_s = 1.0;
  double max_duration_s = 600.0;
  // Install the capacity-aware placer on the TM-Edge so scripted flows
  // (per-packet, via StartFlow) follow the same policy as workload flows.
  bool place_edge_flows = false;
  // Called once per consumed trace event, before admission, with the engine
  // already at the event's governing tick. The unified-timeline bench uses
  // this to weight benefit curves by the realized byte mix; the hook must be
  // deterministic and must not mutate the engine or the edge.
  std::function<void(const FlowEvent&)> on_arrival;
  FlowStoreConfig store;
  // Optional streaming telemetry. When set, Start() registers sampled series
  // for flow-table occupancy and per-PoP utilization on the registry's grid.
  // Samplers are pure reads of engine/load state; the registry must outlive
  // the run. Null leaves the tick sequence untouched.
  obs::TimeseriesRegistry* timeseries = nullptr;
};

class WorkloadEngine {
 public:
  struct Stats {
    std::uint64_t arrivals = 0;   // trace events consumed
    std::uint64_t started = 0;    // pinned successfully
    std::uint64_t rejected = 0;   // no usable tunnel at admission
    std::uint64_t completed = 0;  // expired and released
    std::uint64_t peak_concurrent = 0;
    // Policy-contract violations: picks of a tunnel whose view was unusable.
    // Must stay 0; the chaos-under-load sweep asserts it.
    std::uint64_t down_picks = 0;
    // Admissions onto a PoP already at/over the load-aware threshold-like
    // utilization of 1.0 (i.e. saturated at admission time).
    std::uint64_t saturated_assignments = 0;
    double bytes_offered = 0.0;
    double max_utilization = 0.0;  // high-water mark across PoPs and ticks
    // Largest |tick fire time - its absolute-grid slot| seen, in µs. Always
    // 0 on the ScheduleAtUs grid; nonzero means tick scheduling drifted off
    // the expiry-bucket grid (the pre-integer-clock relative-rescheduling
    // bug). Pinned to 0 by tests/timeline_test.cc.
    std::uint64_t max_tick_skew_us = 0;
  };

  // `tunnel_pop[i]` maps the edge's tunnel i to a LoadTracker PoP index.
  // All references must outlive the engine; the trace must stay alive and
  // unmodified while the simulation runs.
  WorkloadEngine(netsim::Simulator& sim, tm::TmEdge& edge,
                 std::vector<int> tunnel_pop, LoadTracker& load,
                 const DestinationPolicy& policy, const Trace& trace,
                 EngineConfig config = {});

  // Schedules the tick loop (first tick one tick_s from now) and, when
  // configured, installs the edge flow placer.
  void Start();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const FlowStore<PinnedFlow>& store() const { return store_; }
  [[nodiscard]] std::size_t Concurrent() const { return store_.size(); }

  // Current per-tunnel views from the TM-Edge (usable = probed up with a
  // measured RTT, exactly TmEdge::TunnelRttMs's notion).
  [[nodiscard]] std::vector<TunnelView> CurrentViews() const;

  // The 5-tuple a trace event is pinned under; injective in (ug, seq) for
  // seq < 2^28.
  [[nodiscard]] static netsim::FlowKey KeyFor(const FlowEvent& event);

 private:
  void Tick();
  void Admit(const FlowEvent& event, const std::vector<TunnelView>& views);
  void ExpireBucket(std::size_t bucket);
  [[nodiscard]] std::size_t BucketOf(std::uint64_t expiry_us) const;

  netsim::Simulator* sim_;
  tm::TmEdge* edge_;
  std::vector<int> tunnel_pop_;
  LoadTracker* load_;
  const DestinationPolicy* policy_;
  const Trace* trace_;
  EngineConfig config_;

  FlowStore<PinnedFlow> store_;
  netsim::SimTime tick_us_ = 0;   // quantized EngineConfig::tick_s
  netsim::SimTime start_us_ = 0;  // grid anchor: sim time at Start()
  std::size_t cursor_ = 0;  // next unconsumed trace event
  std::size_t tick_index_ = 0;
  // expiry_buckets_[k]: keys whose flows expire within tick k.
  std::vector<std::vector<netsim::FlowKey>> expiry_buckets_;
  Stats stats_;
};

}  // namespace painter::workload
