#include "workload/engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace painter::workload {
namespace {

struct EngineMetrics {
  obs::Counter& started =
      obs::Metrics().GetCounter("workload.engine.flows_started");
  obs::Counter& rejected =
      obs::Metrics().GetCounter("workload.engine.flows_rejected");
  obs::Counter& completed =
      obs::Metrics().GetCounter("workload.engine.flows_completed");
  obs::Counter& down_picks =
      obs::Metrics().GetCounter("workload.engine.down_picks");

  static EngineMetrics& Get() {
    static EngineMetrics m;
    return m;
  }
};

}  // namespace

WorkloadEngine::WorkloadEngine(netsim::Simulator& sim, tm::TmEdge& edge,
                               std::vector<int> tunnel_pop, LoadTracker& load,
                               const DestinationPolicy& policy,
                               const Trace& trace, EngineConfig config)
    : sim_(&sim),
      edge_(&edge),
      tunnel_pop_(std::move(tunnel_pop)),
      load_(&load),
      policy_(&policy),
      trace_(&trace),
      config_(config),
      store_(config.store),
      tick_us_(netsim::UsFromSeconds(config.tick_s)) {
  if (tick_us_ == 0) {
    throw std::invalid_argument{"WorkloadEngine: tick_s below 1 microsecond"};
  }
  // One bucket per tick of the trace, plus one absorbing bucket for flows
  // whose (clamped) lifetime outlives the trace — drained by the final tick.
  // Pure integer arithmetic: the bucket count and BucketOf divide the same
  // integer tick, so the last in-trace expiry always lands in-range.
  const std::size_t ticks =
      static_cast<std::size_t>(trace.duration_us / tick_us_) + 2;
  expiry_buckets_.resize(ticks);
}

netsim::FlowKey WorkloadEngine::KeyFor(const FlowEvent& event) {
  // 20.0.0.0/8 client space, disjoint from the scripted scenario flows
  // (192.168/16) and the tunnel outer tuples (10/8).
  return netsim::FlowKey{
      .src_ip = 0x14000000u | (event.ug & 0x00FFFFFFu),
      .dst_ip = 0x08080808u,
      .src_port = static_cast<netsim::Port>(event.seq & 0xFFFFu),
      .dst_port = static_cast<netsim::Port>(0x2000u + ((event.seq >> 16) &
                                                       0x0FFFu)),
      .proto = 6};
}

std::vector<TunnelView> WorkloadEngine::CurrentViews() const {
  std::vector<TunnelView> views;
  views.reserve(edge_->TunnelCount());
  for (std::size_t i = 0; i < edge_->TunnelCount(); ++i) {
    const auto rtt = edge_->TunnelRttMs(i);
    views.push_back(TunnelView{
        .tunnel = static_cast<int>(i),
        .pop = i < tunnel_pop_.size() ? tunnel_pop_[i] : -1,
        .usable = rtt.has_value(),
        .rtt_ms = rtt.value_or(0.0)});
  }
  return views;
}

void WorkloadEngine::Start() {
  if (config_.place_edge_flows) {
    edge_->SetFlowPlacer([this](const netsim::FlowKey&, int chosen) {
      const std::vector<TunnelView> views = CurrentViews();
      const int pick = policy_->Pick(views, *load_);
      return pick >= 0 ? pick : chosen;
    });
  }
  // Anchor the tick grid at the attach time: tick k fires at exactly
  // start_us_ + (k+1) * tick_us_, an integer arithmetic progression the
  // rescheduling in Tick() re-derives from tick_index_ every time instead of
  // accumulating relative delays.
  start_us_ = sim_->NowUs();
  sim_->ScheduleAtUs(start_us_ + tick_us_, [this]() { Tick(); });

  // Streaming telemetry: occupancy and per-PoP utilization, sampled on the
  // registry's own grid. Pure reads — the samplers never touch engine state.
  if (config_.timeseries != nullptr) {
    config_.timeseries->RegisterSampler(
        "workload.engine.concurrent_flows",
        [this]() { return static_cast<double>(store_.size()); });
    for (std::size_t p = 0; p < load_->PopCount(); ++p) {
      config_.timeseries->RegisterSampler(
          "workload.load.pop" + std::to_string(p) + ".utilization",
          [this, p]() { return load_->Utilization(static_cast<int>(p)); });
    }
  }
}

std::size_t WorkloadEngine::BucketOf(std::uint64_t expiry_us) const {
  // expiry_us is trace time; bucket k is drained by tick k, which fires at
  // trace time (k+1) * tick_us_ >= every expiry in [k*tick, (k+1)*tick).
  const auto bucket = static_cast<std::size_t>(expiry_us / tick_us_);
  return std::min(bucket, expiry_buckets_.size() - 1);
}

void WorkloadEngine::Admit(const FlowEvent& event,
                           const std::vector<TunnelView>& views) {
  ++stats_.arrivals;
  const int pick = policy_->Pick(views, *load_);
  if (pick < 0 || static_cast<std::size_t>(pick) >= views.size()) {
    ++stats_.rejected;
    EngineMetrics::Get().rejected.Add();
    return;
  }
  if (!views[static_cast<std::size_t>(pick)].usable) {
    // Policy contract breach — count it loudly instead of crashing, the
    // chaos sweep turns a non-zero count into a violation.
    ++stats_.down_picks;
    EngineMetrics::Get().down_picks.Add();
    obs::FlightRecorder::Record(
        sim_->NowUs(), "workload.engine", obs::Severity::kError, "down_pick",
        {{"tunnel", static_cast<double>(pick)},
         {"concurrent", static_cast<double>(store_.size())}});
    ++stats_.rejected;
    return;
  }
  const int pop = views[static_cast<std::size_t>(pick)].pop;
  const double duration_s =
      std::clamp(static_cast<double>(event.bytes) / config_.flow_bytes_per_s,
                 config_.min_duration_s, config_.max_duration_s);
  const double rate_bps = static_cast<double>(event.bytes) / duration_s;

  if (load_->Utilization(pop) >= 1.0) ++stats_.saturated_assignments;

  PinnedFlow& flow = store_.Upsert(KeyFor(event));
  flow.tunnel = pick;
  flow.pop = pop;
  flow.bytes = event.bytes;
  flow.expiry_us = event.start_us + netsim::UsFromSeconds(duration_s);
  flow.rate_bps = rate_bps;

  load_->OnAssign(pop, rate_bps);
  stats_.max_utilization =
      std::max(stats_.max_utilization, load_->Utilization(pop));
  stats_.bytes_offered += static_cast<double>(event.bytes);
  ++stats_.started;
  EngineMetrics::Get().started.Add();
  expiry_buckets_[BucketOf(flow.expiry_us)].push_back(KeyFor(event));
}

void WorkloadEngine::ExpireBucket(std::size_t bucket) {
  for (const netsim::FlowKey& key : expiry_buckets_[bucket]) {
    const PinnedFlow* flow = store_.Find(key);
    if (flow == nullptr) continue;  // already expired (defensive; unique keys)
    load_->OnRelease(flow->pop, flow->rate_bps);
    store_.Erase(key);
    ++stats_.completed;
    EngineMetrics::Get().completed.Add();
  }
  expiry_buckets_[bucket].clear();
  expiry_buckets_[bucket].shrink_to_fit();
}

void WorkloadEngine::Tick() {
  // Trace time, exact on the integer clock — no float round-trip, so an
  // arrival due precisely on the tick boundary satisfies `<= now_us`.
  const std::uint64_t now_us = sim_->NowUs() - start_us_;
  const std::uint64_t expected_us = (tick_index_ + 1) * tick_us_;
  stats_.max_tick_skew_us =
      std::max(stats_.max_tick_skew_us, now_us > expected_us
                                            ? now_us - expected_us
                                            : expected_us - now_us);
  const std::vector<TunnelView> views = CurrentViews();
  const std::vector<FlowEvent>& events = trace_->events;
  while (cursor_ < events.size() && events[cursor_].start_us <= now_us) {
    if (config_.on_arrival) config_.on_arrival(events[cursor_]);
    Admit(events[cursor_], views);
    ++cursor_;
  }
  stats_.peak_concurrent =
      std::max<std::uint64_t>(stats_.peak_concurrent, store_.size());

  if (tick_index_ < expiry_buckets_.size()) ExpireBucket(tick_index_);
  ++tick_index_;

  const bool trace_done = cursor_ >= events.size();
  const bool drained = store_.empty();
  const bool past_end = now_us >= trace_->duration_us + 1'000'000u;
  if (trace_done && (drained || past_end)) {
    // Final drain: release whatever outlived the trace so the load gauges
    // settle back to zero, then stop rescheduling.
    for (std::size_t b = tick_index_; b < expiry_buckets_.size(); ++b) {
      ExpireBucket(b);
    }
    load_->ExportGauges();
    return;
  }
  // Next tick on the absolute grid — re-derived, never accumulated.
  sim_->ScheduleAtUs(start_us_ + (tick_index_ + 1) * tick_us_,
                     [this]() { Tick(); });
}

}  // namespace painter::workload
