#include "workload/chaos_load.h"

#include <optional>

#include "faultsim/fault_plan.h"
#include "obs/timeseries.h"
#include "util/hashmix.h"

namespace painter::workload {

ChaosLoadResult RunChaosUnderLoad(std::uint64_t seed,
                                  const faultsim::WorldSpec& world,
                                  const ChaosLoadConfig& config) {
  faultsim::FaultScenarioSpec spec = faultsim::GenerateRandomSpec(seed, world);

  // Mirrors the chaos runner's plan shaping: faults clear well before the
  // end so the reconvergence invariant stays checkable.
  faultsim::PlanSpec ps;
  ps.tunnels = spec.tunnels.size();
  ps.pops = spec.pop_names.size();
  ps.latest_s = 60.0;
  const faultsim::FaultPlan plan = faultsim::GenerateRandomPlan(seed, ps);

  // A dedicated trace-seed stream: the scenario RNG and the TmEdge RNG stay
  // byte-identical to the load-free sweep for the same chaos seed.
  const std::vector<UgProfile> profiles =
      SyntheticUgProfiles(config.ug_count, util::MixSeed(seed, 0x10ADu));
  TraceConfig tc;
  tc.seed = util::MixSeed(seed, 0x712ACEu);
  tc.duration_s = spec.run_for_s;
  tc.mean_flows_per_s = config.mean_flows_per_s;
  tc.num_threads = config.num_threads;
  // Flow lifetimes comparable to the fault windows, so outages hit a busy
  // table and expiry churns during the run.
  tc.size_min_bytes = 5.0e3;
  tc.size_max_bytes = 5.0e6;
  const Trace trace = GenerateTrace(tc, profiles);

  LoadTracker load{
      std::vector<double>(spec.pop_names.size(), config.pop_capacity_bps)};
  const LoadAwarePolicy policy{config.utilization_threshold};

  spec.timeseries = config.timeseries;

  EngineConfig ecfg = config.engine;
  ecfg.timeseries = config.timeseries;
  ecfg.place_edge_flows = true;
  ecfg.flow_bytes_per_s = 1.0e3;  // B/s: a 5 kB..5 MB flow lives 5..600 s
  ecfg.min_duration_s = 2.0;
  ecfg.max_duration_s = 0.5 * spec.run_for_s;

  std::optional<WorkloadEngine> engine;
  spec.attach = [&](netsim::Simulator& sim, tm::TmEdge& edge,
                    const std::vector<int>& tunnel_pop) {
    engine.emplace(sim, edge, tunnel_pop, load, policy, trace, ecfg);
    engine->Start();
  };

  const faultsim::FaultScenarioResult result =
      faultsim::RunFaultScenario(spec, plan);

  ChaosLoadResult out;
  out.invariants = faultsim::CheckTmInvariants(spec, plan, result);
  out.trace_events = trace.events.size();
  if (config.timeseries != nullptr) {
    for (const auto& d : out.invariants.detections) {
      config.timeseries->Append("faultsim.detection_latency_rtts",
                                netsim::UsFromSeconds(d.onset_s),
                                d.rtt_s > 0.0 ? d.latency_s / d.rtt_s : 0.0);
    }
  }
  if (engine.has_value()) {
    out.load_stats = engine->stats();
    if (out.load_stats.down_picks > 0) {
      out.load_violations.push_back(
          "load: policy picked a perceived-down tunnel " +
          std::to_string(out.load_stats.down_picks) + " time(s)  [" +
          faultsim::ToString(plan) + "]");
    }
    if (out.load_stats.started == 0) {
      out.load_violations.push_back(
          "load: workload admitted zero flows  [" + faultsim::ToString(plan) +
          "]");
    }
  } else {
    out.load_violations.push_back("load: engine never attached");
  }
  return out;
}

}  // namespace painter::workload
