#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/hashmix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace painter::workload {
namespace {

constexpr char kMagic[8] = {'P', 'W', 'L', 'T', '1', 0, 0, 0};
constexpr double kDayS = 86400.0;

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t ReadU32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw std::runtime_error{"trace: truncated stream"};
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t ReadU64(std::istream& is) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  if (!is) throw std::runtime_error{"trace: truncated stream"};
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

// Arrivals for one UG: thinning over the diurnal envelope. The per-UG Rng is
// hash-seeded from (trace seed, ug id), so UGs are independent streams and
// the thread decomposition cannot perturb any of them.
void GenerateForUg(const TraceConfig& config, const UgProfile& profile,
                   double base_rate, std::vector<FlowEvent>& out) {
  if (base_rate <= 0.0) return;
  util::Rng rng{util::MixSeed(config.seed, profile.ug, 0x7ACEu)};
  const double depth = std::clamp(config.diurnal_depth, 0.0, 0.99);
  const double lambda_max = base_rate * (1.0 + depth);
  const std::uint64_t duration_us =
      static_cast<std::uint64_t>(config.duration_s * 1e6);
  double t = 0.0;
  std::uint32_t seq = 0;
  for (;;) {
    t += rng.Exponential(lambda_max);
    const auto start_us = static_cast<std::uint64_t>(t * 1e6);
    if (!(t < config.duration_s) || start_us >= duration_us) break;
    const double lambda =
        base_rate * DiurnalFactor(t, profile.peak_hour, depth);
    if (rng.Uniform01() * lambda_max > lambda) continue;  // thinned out
    const double bytes =
        BoundedPareto(rng.Uniform01(), config.size_min_bytes,
                      config.size_max_bytes, config.size_alpha);
    out.push_back(FlowEvent{.start_us = start_us,
                            .ug = profile.ug,
                            .seq = seq++,
                            .bytes = static_cast<std::uint64_t>(bytes)});
  }
}

}  // namespace

double BoundedPareto(double u, double lo, double hi, double alpha) {
  u = std::clamp(u, 0.0, 1.0 - 1e-12);
  const double ratio = std::pow(lo / hi, alpha);
  return lo * std::pow(1.0 - u * (1.0 - ratio), -1.0 / alpha);
}

double DiurnalFactor(double t_s, double peak_hour, double depth) {
  const double hours = t_s / 3600.0;
  const double phase = 2.0 * M_PI * (hours - peak_hour) / 24.0;
  return 1.0 + depth * std::cos(phase);
}

Trace GenerateTrace(const TraceConfig& config,
                    std::span<const UgProfile> profiles) {
  Trace trace;
  trace.seed = config.seed;
  trace.duration_us = static_cast<std::uint64_t>(config.duration_s * 1e6);

  double total_weight = 0.0;
  for (const UgProfile& p : profiles) total_weight += std::max(p.weight, 0.0);
  if (total_weight <= 0.0 || config.mean_flows_per_s <= 0.0) return trace;

  // Per-UG buffers: the decomposition into chunks cannot affect the content
  // of any buffer, only which thread fills it.
  std::vector<std::vector<FlowEvent>> per_ug(profiles.size());
  const std::size_t threads = util::EffectiveThreads(config.num_threads);
  util::ParallelFor(threads, 0, profiles.size(), /*grain=*/8,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const double base_rate =
                            config.mean_flows_per_s *
                            std::max(profiles[i].weight, 0.0) / total_weight;
                        GenerateForUg(config, profiles[i], base_rate,
                                      per_ug[i]);
                      }
                    });

  std::size_t total = 0;
  for (const auto& v : per_ug) total += v.size();
  trace.events.reserve(total);
  for (auto& v : per_ug) {
    trace.events.insert(trace.events.end(), v.begin(), v.end());
    v.clear();
    v.shrink_to_fit();
  }
  // Canonical order: (start_us, ug, seq) — exactly FlowEvent's default
  // comparison. (ug, seq) is unique, so the order is total and the merged
  // stream is independent of the per-UG concatenation order above.
  std::sort(trace.events.begin(), trace.events.end());

  obs::Metrics().GetCounter("workload.trace.events").Add(trace.events.size());
  return trace;
}

std::vector<UgProfile> UgProfilesFromDeployment(
    const topo::Internet& internet, const cloudsim::Deployment& deployment) {
  std::vector<UgProfile> profiles;
  profiles.reserve(deployment.ugs().size());
  for (const cloudsim::UserGroup& ug : deployment.ugs()) {
    const topo::Metro& metro = internet.metros.at(ug.metro.value());
    UgProfile p;
    p.ug = ug.id.value();
    p.weight = ug.traffic_weight * metro.population_weight;
    // Local solar time runs 1 h per 15 degrees of longitude; sources peak in
    // their local afternoon (14:00), expressed here as hours UTC.
    p.peak_hour = std::fmod(14.0 - metro.location.lon_deg / 15.0 + 48.0, 24.0);
    profiles.push_back(p);
  }
  return profiles;
}

std::vector<UgProfile> SyntheticUgProfiles(std::size_t count,
                                           std::uint64_t seed) {
  util::Rng rng{util::MixSeed(seed, 0x06u, count)};
  std::vector<UgProfile> profiles;
  profiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    UgProfile p;
    p.ug = static_cast<std::uint32_t>(i);
    p.weight = rng.Pareto(1.0, 1.2);
    p.peak_hour = rng.Uniform(0.0, 24.0);
    profiles.push_back(p);
  }
  return profiles;
}

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  out.reserve(sizeof(kMagic) + 24 + trace.events.size() * 24);
  out.append(kMagic, sizeof(kMagic));
  AppendU64(out, trace.seed);
  AppendU64(out, trace.duration_us);
  AppendU64(out, trace.events.size());
  for (const FlowEvent& e : trace.events) {
    AppendU64(out, e.start_us);
    AppendU32(out, e.ug);
    AppendU32(out, e.seq);
    AppendU64(out, e.bytes);
  }
  return out;
}

void SaveTrace(const Trace& trace, std::ostream& os) {
  const std::string bytes = SerializeTrace(trace);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Trace LoadTrace(std::istream& is) {
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || !std::equal(magic, magic + sizeof(magic), kMagic)) {
    throw std::runtime_error{"trace: bad magic"};
  }
  Trace trace;
  trace.seed = ReadU64(is);
  trace.duration_us = ReadU64(is);
  const std::uint64_t count = ReadU64(is);
  trace.events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FlowEvent e;
    e.start_us = ReadU64(is);
    e.ug = ReadU32(is);
    e.seq = ReadU32(is);
    e.bytes = ReadU64(is);
    trace.events.push_back(e);
  }
  return trace;
}

std::uint64_t TraceChecksum(const Trace& trace) {
  const std::string bytes = SerializeTrace(trace);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace painter::workload
