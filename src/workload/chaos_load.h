// Chaos-under-load: the faultsim plan engine with the workload engine
// driving traffic.
//
// The chaos runner's original sweep checks the four §5.2.3 invariants with
// two scripted flows in play; this wrapper re-runs the same (seed -> world,
// seed -> plan) construction with a deterministic trace of workload flows
// admitted through the capacity-aware policy while the faults play out, and
// the TM-Edge's scripted flows routed through the same policy (the engine
// installs itself as the edge's flow placer). Checked per seed:
//
//   - the four TM invariants (pinning, detection bound, no silent
//     blackholing, reconvergence) on the scripted flows, unchanged;
//   - the policy contract: zero picks of a perceived-down tunnel;
//   - liveness: the workload actually started flows (a sweep that admits
//     nothing proves nothing).
//
// Everything is a pure function of the seed, like the rest of faultsim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faultsim/invariants.h"
#include "faultsim/scenario.h"
#include "workload/engine.h"

namespace painter::workload {

struct ChaosLoadConfig {
  // Trace shape: aggregate arrival rate over the scenario's run_for_s.
  double mean_flows_per_s = 40.0;
  std::size_t ug_count = 32;
  // Small PoP capacities so the load-aware threshold actually binds.
  double pop_capacity_bps = 2.0e6;
  double utilization_threshold = 0.85;
  // Worker threads for trace generation only (thread-count-invariant by
  // contract); the DES itself is single-threaded. Results are identical at
  // any value — the under-load byte-identity test pins this.
  std::size_t num_threads = 1;
  EngineConfig engine;
  // Optional streaming telemetry: threaded to both the scenario (edge
  // samplers, switchover events) and the engine (occupancy, utilization),
  // plus a `faultsim.detection_latency_rtts` event series — one point per
  // bounded detection, stamped at the fault onset. Null disables all of it.
  obs::TimeseriesRegistry* timeseries = nullptr;
};

struct ChaosLoadResult {
  faultsim::InvariantReport invariants;
  WorkloadEngine::Stats load_stats;
  std::vector<std::string> load_violations;  // policy-contract breaches
  std::size_t trace_events = 0;

  [[nodiscard]] bool ok() const {
    return invariants.ok() && load_violations.empty();
  }
};

// Runs seed's random world + random plan with the workload engine attached.
[[nodiscard]] ChaosLoadResult RunChaosUnderLoad(
    std::uint64_t seed, const faultsim::WorldSpec& world = {},
    const ChaosLoadConfig& config = {});

}  // namespace painter::workload
