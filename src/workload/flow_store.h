// Sharded open-addressing flow-pinning store.
//
// The Traffic Manager pins every flow to a destination for its lifetime
// (§3.2), so under heavy traffic the flow table is the hottest structure in
// the TM-Edge: one lookup per delivered response and one insert per flow
// arrival. A node-based unordered_map pays a pointer chase and an allocation
// per flow; this store keeps keys, values, and slot states in flat parallel
// arrays — linear probing within a shard, shard selected by the high bits of
// a strong 64-bit fingerprint (netsim::FlowKeyFingerprint), probe start from
// the low bits. Deletion uses tombstones so probe chains stay intact;
// rehashing compacts them away (a mostly-tombstone shard rebuilds at the
// same capacity instead of growing).
//
// Iteration order over slots is an implementation detail that depends on the
// insert/erase history, never on pointer values — it is deterministic for a
// deterministic op sequence, but NOT key-ordered. Anything that feeds results
// or reports must use SortedItems(), which snapshots in FlowKey order (the
// fix for the unordered_map iteration-order dependence the old TmEdge table
// had).
//
// Single-threaded by design: the discrete-event simulator owns the hot path.
// Sharding is about cache-sized probe neighborhoods and cheap batched expiry
// (EraseIf walks one flat array per shard), not concurrency.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "netsim/packet.h"

namespace painter::workload {

struct FlowStoreConfig {
  // log2 of the shard count; the top shard_bits of the fingerprint pick the
  // shard. 4 => 16 shards.
  std::size_t shard_bits = 4;
  // Initial (and minimum) slot count per shard; power of two.
  std::size_t min_shard_capacity = 64;
  // A shard rehashes when (live + tombstones) exceeds this fraction of its
  // capacity. Probe chains stay short well below 0.8 for linear probing.
  double max_load_factor = 0.7;
};

template <typename Value>
class FlowStore {
 public:
  using Key = netsim::FlowKey;

  explicit FlowStore(FlowStoreConfig config = {}) : config_(config) {
    if (config_.shard_bits > 16) config_.shard_bits = 16;
    if (config_.min_shard_capacity < 8) config_.min_shard_capacity = 8;
    // Round the minimum capacity up to a power of two once, here.
    std::size_t cap = 8;
    while (cap < config_.min_shard_capacity) cap <<= 1;
    config_.min_shard_capacity = cap;
    if (config_.max_load_factor < 0.1) config_.max_load_factor = 0.1;
    if (config_.max_load_factor > 0.9) config_.max_load_factor = 0.9;
    shards_.resize(std::size_t{1} << config_.shard_bits);
    for (Shard& s : shards_) Rebuild(s, config_.min_shard_capacity);
  }

  // Finds or default-inserts. The reference is invalidated by the next
  // insert into the same shard (it may rehash) — use it immediately.
  Value& Upsert(const Key& key) {
    const std::uint64_t h = netsim::FlowKeyFingerprint(key);
    Shard& shard = ShardOf(h);
    MaybeRehash(shard);
    std::size_t slot = 0;
    if (Locate(shard, key, h, &slot)) return shard.values[slot];
    // `slot` is the insert position (first tombstone on the probe path, else
    // the terminating empty slot).
    if (shard.state[slot] == kEmpty) ++shard.used;
    shard.state[slot] = kFull;
    shard.keys[slot] = key;
    shard.values[slot] = Value{};
    ++shard.live;
    ++size_;
    return shard.values[slot];
  }

  [[nodiscard]] Value* Find(const Key& key) {
    const std::uint64_t h = netsim::FlowKeyFingerprint(key);
    Shard& shard = ShardOf(h);
    std::size_t slot = 0;
    return Locate(shard, key, h, &slot) ? &shard.values[slot] : nullptr;
  }
  [[nodiscard]] const Value* Find(const Key& key) const {
    return const_cast<FlowStore*>(this)->Find(key);
  }

  // unordered_map-compatible point read (tm_test and friends use it).
  [[nodiscard]] const Value& at(const Key& key) const {
    const Value* v = Find(key);
    if (v == nullptr) throw std::out_of_range{"FlowStore::at: unknown flow"};
    return *v;
  }

  bool Erase(const Key& key) {
    const std::uint64_t h = netsim::FlowKeyFingerprint(key);
    Shard& shard = ShardOf(h);
    std::size_t slot = 0;
    if (!Locate(shard, key, h, &slot)) return false;
    shard.state[slot] = kTomb;
    --shard.live;
    --size_;
    return true;
  }

  // Batched expiry: one flat sweep per shard, no per-element hashing.
  // Removes every entry for which pred(key, value) is true; returns the
  // number removed. Tombstones are reclaimed by the next rehash.
  template <typename Pred>
  std::size_t EraseIf(Pred pred) {
    std::size_t removed = 0;
    for (Shard& shard : shards_) {
      for (std::size_t i = 0; i < shard.state.size(); ++i) {
        if (shard.state[i] != kFull) continue;
        if (!pred(static_cast<const Key&>(shard.keys[i]),
                  static_cast<const Value&>(shard.values[i]))) {
          continue;
        }
        shard.state[i] = kTomb;
        --shard.live;
        --size_;
        ++removed;
      }
    }
    return removed;
  }

  // Visits every live entry in slot order (deterministic for a deterministic
  // op history, not key-ordered — see header comment).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Shard& shard : shards_) {
      for (std::size_t i = 0; i < shard.state.size(); ++i) {
        if (shard.state[i] == kFull) fn(shard.keys[i], shard.values[i]);
      }
    }
  }

  // Snapshot in FlowKey order — the canonical iteration for anything that
  // lands in results, reports, or goldens.
  [[nodiscard]] std::vector<std::pair<Key, Value>> SortedItems() const {
    std::vector<std::pair<Key, Value>> items;
    items.reserve(size_);
    ForEach([&](const Key& k, const Value& v) { items.emplace_back(k, v); });
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return items;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t ShardCount() const { return shards_.size(); }
  [[nodiscard]] std::uint64_t Rehashes() const { return rehashes_; }
  [[nodiscard]] std::size_t Capacity() const {
    std::size_t cap = 0;
    for (const Shard& s : shards_) cap += s.state.size();
    return cap;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTomb = 2;

  struct Shard {
    std::vector<Key> keys;
    std::vector<Value> values;
    std::vector<std::uint8_t> state;
    std::size_t live = 0;  // kFull slots
    std::size_t used = 0;  // kFull + kTomb slots (probe-chain occupancy)
  };

  Shard& ShardOf(std::uint64_t h) {
    // shard_bits == 0 is a single shard; `h >> 64` would be UB.
    if (config_.shard_bits == 0) return shards_[0];
    return shards_[h >> (64 - config_.shard_bits)];
  }

  // True if `key` is present (slot set to its position); false with slot set
  // to the preferred insert position.
  bool Locate(Shard& shard, const Key& key, std::uint64_t h,
              std::size_t* slot) const {
    const std::size_t mask = shard.state.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    std::size_t first_tomb = shard.state.size();  // sentinel: none seen
    for (;;) {
      const std::uint8_t st = shard.state[i];
      if (st == kEmpty) {
        *slot = first_tomb != shard.state.size() ? first_tomb : i;
        return false;
      }
      if (st == kFull && shard.keys[i] == key) {
        *slot = i;
        return true;
      }
      if (st == kTomb && first_tomb == shard.state.size()) first_tomb = i;
      i = (i + 1) & mask;
    }
  }

  void MaybeRehash(Shard& shard) {
    if (static_cast<double>(shard.used + 1) <=
        config_.max_load_factor * static_cast<double>(shard.state.size())) {
      return;
    }
    // Grow only if live entries justify it; otherwise rebuild at the same
    // capacity to shed tombstones.
    std::size_t cap = shard.state.size();
    while (static_cast<double>(shard.live + 1) >
           0.5 * config_.max_load_factor * static_cast<double>(cap)) {
      cap <<= 1;
    }
    Rebuild(shard, cap);
    ++rehashes_;
  }

  void Rebuild(Shard& shard, std::size_t cap) {
    std::vector<Key> old_keys = std::move(shard.keys);
    std::vector<Value> old_values = std::move(shard.values);
    std::vector<std::uint8_t> old_state = std::move(shard.state);
    shard.keys.assign(cap, Key{});
    shard.values.assign(cap, Value{});
    shard.state.assign(cap, kEmpty);
    shard.used = shard.live;
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j =
          static_cast<std::size_t>(netsim::FlowKeyFingerprint(old_keys[i])) &
          mask;
      while (shard.state[j] != kEmpty) j = (j + 1) & mask;
      shard.state[j] = kFull;
      shard.keys[j] = old_keys[i];
      shard.values[j] = std::move(old_values[i]);
    }
  }

  FlowStoreConfig config_;
  std::vector<Shard> shards_;
  std::size_t size_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace painter::workload
