// Deterministic large-scale traffic trace generation.
//
// PAINTER's evaluation weighs everything by user-group traffic volume
// (Eq. 1); the Traffic Manager claims (§3.2, App. D) are about sustaining
// real client load, not one scripted probe. This module turns a cloudsim
// deployment into a day of flow arrivals: each UG is an independent
// non-homogeneous Poisson source whose rate follows its traffic weight and a
// diurnal curve phased by its metro's longitude (metros peak in their local
// afternoon), with bounded-Pareto flow sizes (heavy tail, finite cap).
//
// Determinism contract: a trace is a pure function of (config, profiles).
// Every UG draws from its own hash-seeded Rng stream, generation
// parallelises over UGs with per-UG output buffers, and the merged stream is
// canonically sorted by (start_us, ug, seq) — so the same seed produces a
// byte-identical trace at any thread count, and SerializeTrace/LoadTrace
// round-trips it for replay without regeneration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "cloudsim/deployment.h"
#include "topo/generator.h"

namespace painter::workload {

// One flow arrival. 24 bytes; a day at a million flows costs ~24 MB.
struct FlowEvent {
  std::uint64_t start_us = 0;  // arrival time, microseconds of simulated time
  std::uint32_t ug = 0;        // UgId value of the source user group
  std::uint32_t seq = 0;       // per-UG arrival index; (ug, seq) is unique
  std::uint64_t bytes = 0;     // flow volume (bounded Pareto)

  friend constexpr auto operator<=>(const FlowEvent&,
                                    const FlowEvent&) = default;
};

// Per-UG arrival-process parameters, derived from the deployment or drawn
// synthetically.
struct UgProfile {
  std::uint32_t ug = 0;
  double weight = 1.0;     // relative share of the aggregate arrival rate
  double peak_hour = 14.0; // diurnal peak, hours UTC (local afternoon)
};

struct TraceConfig {
  std::uint64_t seed = 1;
  double duration_s = 86400.0;      // one simulated day
  double mean_flows_per_s = 50.0;   // aggregate, time-averaged over the day
  double diurnal_depth = 0.6;       // in [0, 1): 0 = flat, ~1 = full swing
  // Bounded Pareto flow-size distribution.
  double size_min_bytes = 2.0e3;
  double size_max_bytes = 5.0e8;
  double size_alpha = 1.3;
  std::size_t num_threads = 1;      // 0 = hardware concurrency
};

struct Trace {
  std::uint64_t seed = 0;
  std::uint64_t duration_us = 0;
  std::vector<FlowEvent> events;  // sorted by (start_us, ug, seq)
};

// Generates the trace; byte-identical for the same (config, profiles) at any
// num_threads (see determinism contract above).
[[nodiscard]] Trace GenerateTrace(const TraceConfig& config,
                                  std::span<const UgProfile> profiles);

// Profiles from a deployment: weight = UG traffic weight x metro population
// weight, peak hour from the metro's longitude (15 degrees per hour).
[[nodiscard]] std::vector<UgProfile> UgProfilesFromDeployment(
    const topo::Internet& internet, const cloudsim::Deployment& deployment);

// Hash-seeded synthetic profiles (Pareto weights, uniform peak hours) for
// worlds without a deployment, e.g. the chaos-under-load sweep.
[[nodiscard]] std::vector<UgProfile> SyntheticUgProfiles(std::size_t count,
                                                         std::uint64_t seed);

// Binary serialization (PWLT1 header + little-endian events). The format is
// platform-independent; the same trace always serializes to the same bytes.
[[nodiscard]] std::string SerializeTrace(const Trace& trace);
void SaveTrace(const Trace& trace, std::ostream& os);
// Throws std::runtime_error on a bad header or truncated stream.
[[nodiscard]] Trace LoadTrace(std::istream& is);

// FNV-1a over SerializeTrace bytes: the one-number identity reports carry.
[[nodiscard]] std::uint64_t TraceChecksum(const Trace& trace);

// Inverse-CDF bounded Pareto on [lo, hi] with shape alpha; u in [0, 1).
[[nodiscard]] double BoundedPareto(double u, double lo, double hi,
                                   double alpha);

// Diurnal rate multiplier at simulated time t_s for a source peaking at
// peak_hour (UTC). Mean over a full day is exactly 1.
[[nodiscard]] double DiurnalFactor(double t_s, double peak_hour, double depth);

}  // namespace painter::workload
