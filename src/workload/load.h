// Capacity-aware load accounting and destination selection.
//
// The paper's Traffic Manager shifts load across advertised prefixes (§3.2):
// the edge does not only chase the lowest RTT, it must keep ingress PoPs
// under capacity. LoadTracker keeps exact per-PoP offered-rate accounting
// (flows add their service rate when pinned, subtract it when they expire),
// and DestinationPolicy turns that plus the TM-Edge's probe state into a
// pluggable pinning decision:
//
//  - LatencyOnlyPolicy: the classic TM-Edge rule — lowest measured RTT.
//  - LoadAwarePolicy:   lowest-RTT tunnel whose target PoP is under the
//                       utilization threshold; if every usable PoP is over,
//                       it degrades to latency-only (overload is better than
//                       rejecting traffic a competitor PoP could absorb).
//
// Both are deterministic: ties break toward the lower tunnel index, and a
// policy never returns a tunnel whose view says it is unusable (down /
// unmeasured) — the property suite enforces exactly that.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace painter::workload {

class LoadTracker {
 public:
  // One capacity per PoP, bytes/second of offered load it absorbs cleanly.
  explicit LoadTracker(std::vector<double> pop_capacity_bps);

  void OnAssign(int pop, double bytes_per_s);
  void OnRelease(int pop, double bytes_per_s);

  [[nodiscard]] std::size_t PopCount() const { return capacity_.size(); }
  [[nodiscard]] double OfferedBps(int pop) const;
  [[nodiscard]] double CapacityBps(int pop) const;
  // offered / capacity; 0 for an out-of-range pop.
  [[nodiscard]] double Utilization(int pop) const;
  [[nodiscard]] double MaxUtilization() const;

  // Publishes `<prefix>.pop<i>.utilization` gauges to the global registry.
  void ExportGauges(const std::string& prefix = "workload.load") const;

 private:
  std::vector<double> capacity_;
  std::vector<double> offered_;
};

// What a policy sees about one tunnel at decision time. `usable` mirrors the
// TM-Edge's own notion (probed up with a measured RTT).
struct TunnelView {
  int tunnel = -1;
  int pop = -1;
  bool usable = false;
  double rtt_ms = 0.0;
};

class DestinationPolicy {
 public:
  virtual ~DestinationPolicy() = default;
  // Returns the tunnel index to pin a new flow to, or -1 when no view is
  // usable. Must be a pure function of (views, load) — no RNG, no state.
  [[nodiscard]] virtual int Pick(std::span<const TunnelView> views,
                                 const LoadTracker& load) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

class LatencyOnlyPolicy final : public DestinationPolicy {
 public:
  [[nodiscard]] int Pick(std::span<const TunnelView> views,
                         const LoadTracker& load) const override;
  [[nodiscard]] const char* name() const override { return "latency_only"; }
};

class LoadAwarePolicy final : public DestinationPolicy {
 public:
  explicit LoadAwarePolicy(double utilization_threshold = 0.85)
      : threshold_(utilization_threshold) {}
  [[nodiscard]] int Pick(std::span<const TunnelView> views,
                         const LoadTracker& load) const override;
  [[nodiscard]] const char* name() const override { return "load_aware"; }
  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace painter::workload
