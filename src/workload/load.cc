#include "workload/load.h"

#include <algorithm>

#include "obs/metrics.h"

namespace painter::workload {
namespace {

bool InRange(int pop, std::size_t n) {
  return pop >= 0 && static_cast<std::size_t>(pop) < n;
}

// Lowest-RTT usable view among those satisfying `admit`; ties break toward
// the lower tunnel index because views arrive in index order and only a
// strictly better RTT displaces the incumbent.
template <typename Admit>
int BestByRtt(std::span<const TunnelView> views, Admit admit) {
  int best = -1;
  double best_rtt = 0.0;
  for (const TunnelView& v : views) {
    if (!v.usable || !admit(v)) continue;
    if (best < 0 || v.rtt_ms < best_rtt) {
      best = v.tunnel;
      best_rtt = v.rtt_ms;
    }
  }
  return best;
}

}  // namespace

LoadTracker::LoadTracker(std::vector<double> pop_capacity_bps)
    : capacity_(std::move(pop_capacity_bps)), offered_(capacity_.size(), 0.0) {}

void LoadTracker::OnAssign(int pop, double bytes_per_s) {
  if (!InRange(pop, offered_.size())) return;
  offered_[static_cast<std::size_t>(pop)] += bytes_per_s;
}

void LoadTracker::OnRelease(int pop, double bytes_per_s) {
  if (!InRange(pop, offered_.size())) return;
  double& o = offered_[static_cast<std::size_t>(pop)];
  o = std::max(0.0, o - bytes_per_s);
}

double LoadTracker::OfferedBps(int pop) const {
  return InRange(pop, offered_.size()) ? offered_[static_cast<std::size_t>(pop)]
                                       : 0.0;
}

double LoadTracker::CapacityBps(int pop) const {
  return InRange(pop, capacity_.size())
             ? capacity_[static_cast<std::size_t>(pop)]
             : 0.0;
}

double LoadTracker::Utilization(int pop) const {
  if (!InRange(pop, capacity_.size())) return 0.0;
  const double cap = capacity_[static_cast<std::size_t>(pop)];
  if (cap <= 0.0) return 0.0;
  return offered_[static_cast<std::size_t>(pop)] / cap;
}

double LoadTracker::MaxUtilization() const {
  double m = 0.0;
  for (std::size_t p = 0; p < capacity_.size(); ++p) {
    m = std::max(m, Utilization(static_cast<int>(p)));
  }
  return m;
}

void LoadTracker::ExportGauges(const std::string& prefix) const {
  for (std::size_t p = 0; p < capacity_.size(); ++p) {
    obs::Metrics()
        .GetGauge(prefix + ".pop" + std::to_string(p) + ".utilization")
        .Set(Utilization(static_cast<int>(p)));
  }
}

int LatencyOnlyPolicy::Pick(std::span<const TunnelView> views,
                            const LoadTracker& /*load*/) const {
  return BestByRtt(views, [](const TunnelView&) { return true; });
}

int LoadAwarePolicy::Pick(std::span<const TunnelView> views,
                          const LoadTracker& load) const {
  const int under = BestByRtt(views, [&](const TunnelView& v) {
    return load.Utilization(v.pop) < threshold_;
  });
  if (under >= 0) return under;
  // Every usable PoP is saturated: fall back to pure latency rather than
  // refusing traffic (the threshold shapes load, it is not an admission cap).
  return BestByRtt(views, [](const TunnelView&) { return true; });
}

}  // namespace painter::workload
