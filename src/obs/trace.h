// Trace spans: RAII scoped timers emitting Chrome-trace-event JSON.
//
// The output is the Trace Event Format's JSON-array flavor ("X" complete
// events), loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. One event per line, so the file is also greppable as
// JSONL between the array brackets.
//
// Cost model: tracing is off by default; a TraceSpan on a cold path then
// costs one relaxed atomic load and two dead branches — no clock read, no
// allocation, no lock. Enabled, each span costs two steady_clock reads and
// one short critical section to append the event line.
//
// Enabling:
//  - at runtime: TraceSink::Enable("/path/out.json") / TraceSink::Disable();
//  - via environment: PAINTER_TRACE=/path/out.json (checked on first use).
//
// The file is finalized (closing bracket) on Disable() or process exit.
//
// Determinism: spans are emitted in completion order under a lock. All
// instrumentation sites in this repo are on the orchestration thread (hot
// parallel loops carry counters, not spans), so with a fixed seed the event
// sequence — minus the `ts`/`dur` wall-clock fields — is reproducible;
// obs::StripVolatile (report.h) removes those fields for diffing.
#pragma once

#include <string>

namespace painter::obs {

class TraceSink {
 public:
  // True when a trace file is open. First call consults PAINTER_TRACE.
  [[nodiscard]] static bool Enabled();

  // Opens `path` (truncating) and starts the event array. Replaces any
  // previously open trace file (which is finalized first).
  static void Enable(const std::string& path);

  // Finalizes and closes the trace file. No-op when disabled.
  static void Disable();

  // Appends one complete ("X") event. Times are microseconds; `ts` is
  // relative to the process-wide steady-clock epoch.
  static void Emit(const char* name, const char* cat, double ts_us,
                   double dur_us);

  // Appends an instant ("i") event — a point-in-time marker.
  static void Instant(const char* name, const char* cat = "painter");

  // Microseconds since the process-wide steady-clock epoch.
  [[nodiscard]] static double NowUs();
};

// RAII span: records the enclosing scope as one complete event named `name`.
// The name/category pointers must outlive the span (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "painter");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace painter::obs
