// Minimal streaming JSON writer shared by the observability sinks (metrics
// export, trace events, bench run reports).
//
// Deliberately tiny: objects/arrays are emitted in the order the caller walks
// them, keys are escaped, and doubles print with max_digits10 so a value
// round-trips exactly — two runs that compute the same doubles produce
// byte-identical JSON, which the determinism tests rely on.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace painter::obs {

inline void WriteJsonEscaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Formats a double deterministically. Non-finite values are not valid JSON;
// they are emitted as quoted strings ("inf", "-inf", "nan") so a report can
// still record them.
inline void WriteJsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (std::isnan(v) ? "\"nan\"" : (v > 0 ? "\"inf\"" : "\"-inf\""));
    return;
  }
  // Integral doubles print without an exponent or trailing ".0" noise.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

// Nesting-aware writer: tracks whether a comma is due before the next
// element. Usage:
//   JsonWriter w{os};
//   w.BeginObject();
//   w.Key("name"); w.String("x");
//   w.Key("values"); w.BeginArray(); w.Number(1); w.Number(2); w.EndArray();
//   w.EndObject();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  void BeginObject() {
    Separate();
    *os_ << '{';
    stack_.push_back(false);
  }
  void EndObject() {
    stack_.pop_back();
    *os_ << '}';
  }
  void BeginArray() {
    Separate();
    *os_ << '[';
    stack_.push_back(false);
  }
  void EndArray() {
    stack_.pop_back();
    *os_ << ']';
  }
  void Key(std::string_view k) {
    Separate();
    *os_ << '"';
    WriteJsonEscaped(*os_, k);
    *os_ << "\":";
    pending_value_ = true;
  }
  void String(std::string_view v) {
    Separate();
    *os_ << '"';
    WriteJsonEscaped(*os_, v);
    *os_ << '"';
  }
  void Number(double v) {
    Separate();
    WriteJsonNumber(*os_, v);
  }
  void Number(std::uint64_t v) {
    Separate();
    *os_ << v;
  }
  void Bool(bool v) {
    Separate();
    *os_ << (v ? "true" : "false");
  }

 private:
  // Emits the comma owed before a new element, unless this element is the
  // value belonging to a just-written key.
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) *os_ << ',';
      stack_.back() = true;
    }
  }

  std::ostream* os_;
  std::vector<bool> stack_;  // per level: "an element was already written"
  bool pending_value_ = false;
};

}  // namespace painter::obs
