// Machine-readable run reports for the benches (BENCH_*.json).
//
// Every bench run can emit one JSON document capturing what ran (name,
// seed, config), how long each phase took (wall-clock), the key result
// values, and a full metrics-registry snapshot — the perf trajectory every
// future optimisation PR measures itself against.
//
// Schema (painter.bench.v1):
//   {
//     "schema": "painter.bench.v1",
//     "name": "orchestrator",
//     "seed": 900,
//     "config": {"stubs": 600, "threads": 8, ...},       // insertion order
//     "phases": [{"name": "compute", "wall_ms": 12.3}, ...],
//     "values": {"speedup": 3.1, ...},                   // key results
//     "metrics": { ... MetricsRegistry::WriteJson ... }  // optional
//   }
//
// Wall-clock fields are exactly the keys "wall_ms" here and the "wall_*" /
// "ts" / "dur" keys in metrics and trace output; StripVolatile() zeroes all
// of them so two runs with the same seed can be diffed byte-for-byte (the
// determinism tests do exactly that).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace painter::obs {

class TimeseriesRegistry;

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  void SetSeed(std::uint64_t seed) {
    seed_ = seed;
    have_seed_ = true;
  }

  void AddConfig(std::string key, std::string value);
  void AddConfig(std::string key, double value);
  void AddPhaseMs(std::string name, double wall_ms);
  void AddValue(std::string key, double value);

  // Embeds a snapshot of `reg` under "metrics".
  void AttachMetrics(const MetricsRegistry& reg = Metrics());

  // Embeds a `painter.timeseries.v1` block (timeseries.h) under
  // "timeseries" — the when-on-the-sim-clock record to go with the metrics
  // section's end-of-run totals.
  void AttachTimeseries(const TimeseriesRegistry& reg);

  // RAII phase timer: adds a phase entry with the scope's wall time.
  class ScopedPhase {
   public:
    ScopedPhase(RunReport& report, std::string name)
        : report_(&report),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    ~ScopedPhase() {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      report_->AddPhaseMs(
          name_, std::chrono::duration<double, std::milli>(elapsed).count());
    }
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

   private:
    RunReport* report_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] std::string ToJson() const;

  // Writes ToJson() to `path` (e.g. "BENCH_orchestrator.json").
  void Write(const std::string& path) const;

 private:
  struct ConfigEntry {
    std::string key;
    std::string str_value;
    double num_value = 0.0;
    bool is_number = false;
  };

  std::string name_;
  std::uint64_t seed_ = 0;
  bool have_seed_ = false;
  std::vector<ConfigEntry> config_;
  std::vector<std::pair<std::string, double>> phases_;  // (name, wall_ms)
  std::vector<std::pair<std::string, double>> values_;
  std::string metrics_json_;     // empty = no metrics section
  std::string timeseries_json_;  // empty = no timeseries section
};

// Zeroes every wall-clock-derived value in a JSON document produced by this
// layer: the value after any key named "wall_ms", "ts", "dur", or starting
// with "wall_" becomes 0 (arrays become []). Everything else — structure,
// names, counts, seeds, deterministic metric values — passes through
// untouched, so reports from two identical runs compare byte-for-byte.
[[nodiscard]] std::string StripVolatile(std::string_view json);

}  // namespace painter::obs
