// Sim-time streaming telemetry: periodic sampling of registered sources
// into bounded, delta-encoded ring-buffered series.
//
// The metrics registry (metrics.h) answers "how much, in total, by the end
// of the run"; this registry answers "when, on the simulated timeline". A
// TimeseriesRegistry is a per-run object (never global — samplers capture
// pointers into run-scoped components, so tying the registry's lifetime to
// the run makes dangling callbacks impossible by construction). Two series
// forms:
//
//  - Sampled series: a callback registered with RegisterSampler is read at
//    every grid point. StartSampling schedules sample k at exactly
//    anchor + k * period_us on the shared netsim::Simulator's absolute
//    integer-µs grid (re-derived from k, never accumulated — the same rule
//    as every other grid scheduler, DESIGN.md §11), so sample timestamps are
//    implicit: only the values are stored.
//  - Event series: point-in-time appends (a detection latency when a fault
//    is detected, a round's realized benefit when it completes). Timestamps
//    are stored delta-encoded in the ring: the series keeps the absolute
//    time of its oldest retained point plus per-point deltas, and evicting
//    the oldest point folds its delta into the base — so a wrapped ring
//    still reconstructs exact absolute times.
//
// Rings are bounded (TimeseriesConfig::capacity): an always-on run holds the
// most recent N points per series and counts what it dropped. Export is the
// `painter.timeseries.v1` JSON block (WriteJson / RunReport::AttachTimeseries):
// values whose samples are all integral are emitted as first-value +
// integer deltas ("samples_delta" / "values_delta" keys) — exact, since
// integral doubles subtract exactly — and fractional series fall back to raw
// arrays. Series registered with wall_clock=true carry `wall_`-prefixed
// sample keys so obs::StripVolatile empties them when diffing runs; all
// other fields are pure functions of sim time and byte-identical across
// reruns and thread counts.
//
// Thread-safety: none. Sampling, appends, and export all happen on the
// simulator thread (the DES loop is single-threaded); hot parallel loops
// feed counters, and counters are what samplers read.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/sim.h"

namespace painter::obs {

struct TimeseriesConfig {
  double period_s = 1.0;        // sampling grid spacing (>= 1 µs)
  std::size_t capacity = 4096;  // ring capacity, per series (>= 2)
};

class TimeseriesRegistry {
 public:
  explicit TimeseriesRegistry(TimeseriesConfig config = {});

  // Registers a sampled series. `fn` is called at every grid point, in
  // registration order; it must be a pure read (no mutation, no RNG) so the
  // sampling events cannot perturb the run they observe. Registering a name
  // twice throws std::logic_error. `wall_clock` marks the series' values as
  // wall-clock-derived: the export prefixes its sample key with `wall_`.
  void RegisterSampler(std::string name, std::function<double()> fn,
                       bool wall_clock = false);

  // Appends one point to the named event series (created on first use; the
  // name must not collide with a sampled series). `t_us` must be
  // non-decreasing per series — event sources fire in DES order, so this
  // holds for free; a regression throws std::invalid_argument.
  void Append(std::string_view name, netsim::SimTime t_us, double value);

  // Schedules the sampling chain on `sim`: sample k at NowUs() + k * period
  // for every k with k * period <= horizon_s (quantized). Call at most once.
  void StartSampling(netsim::Simulator& sim, double horizon_s);

  // Takes one sample of every registered sampler at `t_us` (tests and
  // non-DES callers; StartSampling's events call this too).
  void SampleNow(netsim::SimTime t_us);

  [[nodiscard]] std::size_t SeriesCount() const { return series_.size(); }
  [[nodiscard]] std::uint64_t SamplesTaken() const { return samples_taken_; }
  // Largest |fire time - grid slot| over all sampling events, µs. Stays 0 on
  // the absolute grid; the alignment test pins it.
  [[nodiscard]] std::uint64_t MaxSampleSkewUs() const { return max_skew_us_; }

  // Read-back for tests: reconstructed absolute times and raw values of the
  // retained window, oldest first. Throws std::out_of_range on unknown name.
  struct SeriesView {
    bool sampled = false;  // false: event series
    bool wall_clock = false;
    std::uint64_t dropped = 0;  // points evicted by the ring
    std::vector<netsim::SimTime> t_us;
    std::vector<double> values;
  };
  [[nodiscard]] SeriesView View(std::string_view name) const;

  // `painter.timeseries.v1` block: {"schema":...,"period_us":...,
  // "anchor_us":...,"series":{...}} with series sorted by name.
  void WriteJson(std::ostream& os) const;
  [[nodiscard]] std::string ToJson() const;

 private:
  struct Series {
    std::string name;
    bool sampled = false;
    bool wall_clock = false;
    std::function<double()> fn;  // sampled series only
    // Bounded ring, oldest first (kept compacted: eviction pops the front
    // after folding its time delta into base_t_us; capacity is small and
    // eviction is O(capacity) only after the ring fills).
    std::vector<double> values;
    std::vector<std::uint64_t> t_delta_us;  // event series only
    netsim::SimTime base_t_us = 0;          // absolute time of values.front()
    netsim::SimTime last_t_us = 0;
    std::uint64_t dropped = 0;
  };

  void Push(Series& s, netsim::SimTime t_us, double value);
  void ScheduleSample(netsim::Simulator& sim, std::uint64_t index);
  [[nodiscard]] const Series& Find(std::string_view name) const;

  TimeseriesConfig config_;
  netsim::SimTime period_us_ = 0;
  netsim::SimTime anchor_us_ = 0;
  netsim::SimTime horizon_us_ = 0;
  bool sampling_started_ = false;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t max_skew_us_ = 0;
  std::vector<Series> series_;  // registration order; export sorts by name
};

}  // namespace painter::obs
