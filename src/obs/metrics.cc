#include "obs/metrics.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace painter::obs {

// One thread's private slice of every metric. Writers lock only their own
// shard's mutex (uncontended in steady state — each shard has exactly one
// writing thread); Collect/Reset lock the registry, then each shard, in
// registration order. Lock order is always registry -> shard, never the
// reverse, so the two sides cannot deadlock.
struct MetricsRegistry::Shard {
  std::mutex mu;
  std::vector<std::uint64_t> counters;  // by counter id; grown on demand
  struct HistShard {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<HistShard> hists;  // by histogram id; grown on demand
};

namespace {

// Registries get process-unique serials so the thread-local shard cache can
// never confuse a new registry allocated at a freed registry's address.
std::atomic<std::uint64_t> g_registry_serial{1};

thread_local struct ShardCache {
  struct Slot {
    std::uint64_t serial;
    MetricsRegistry::Shard* shard;
  };
  std::vector<Slot> slots;
} t_shards;

struct SerialMap {
  std::mutex mu;
  std::map<const MetricsRegistry*, std::uint64_t> serials;
  static SerialMap& Get() {
    static SerialMap* m = new SerialMap();  // outlives all registries
    return *m;
  }
};

std::uint64_t SerialOf(const MetricsRegistry* reg) {
  SerialMap& m = SerialMap::Get();
  std::lock_guard<std::mutex> lock(m.mu);
  auto [it, inserted] = m.serials.emplace(reg, 0);
  if (inserted) it->second = g_registry_serial.fetch_add(1);
  return it->second;
}

// A destroyed registry must drop its serial: a later registry allocated at
// the same address would otherwise inherit it and hit stale (dangling) shard
// pointers in other threads' caches.
void ForgetSerial(const MetricsRegistry* reg) {
  SerialMap& m = SerialMap::Get();
  std::lock_guard<std::mutex> lock(m.mu);
  m.serials.erase(reg);
}

std::size_t BucketOf(double v, const HistogramSpec& spec) {
  if (!(v >= spec.min_bound)) return 0;  // underflow (and NaN) bucket
  const std::size_t i =
      1 + static_cast<std::size_t>(
              std::floor(std::log(v / spec.min_bound) / std::log(spec.growth)));
  return std::min(i, spec.buckets - 1);
}

}  // namespace

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  const std::uint64_t serial = SerialOf(this);
  for (const auto& slot : t_shards.slots) {
    if (slot.serial == serial) return *slot.shard;
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(shard));
  }
  t_shards.slots.push_back({serial, raw});
  return *raw;
}

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry() { ForgetSerial(this); }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = [] {
    auto* reg = new MetricsRegistry();  // never destroyed, by design
    if (const char* path = std::getenv("PAINTER_METRICS")) {
      static std::string out_path;
      out_path = path;
      std::atexit([] {
        std::ofstream os(out_path);
        if (os) Global().WriteJson(os);
      });
    }
    return reg;
  }();
  return *g;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauge_ids_.count(name) || histogram_ids_.count(name)) {
    throw std::logic_error{"metric kind mismatch: " + std::string(name)};
  }
  auto [it, inserted] =
      counter_ids_.emplace(std::string(name),
                           static_cast<std::uint32_t>(counters_.size()));
  if (inserted) {
    counters_.push_back(CounterInfo{std::string(name), nullptr});
    counters_.back().handle.reset(new Counter(this, it->second));
  }
  return *counters_[it->second].handle;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counter_ids_.count(name) || histogram_ids_.count(name)) {
    throw std::logic_error{"metric kind mismatch: " + std::string(name)};
  }
  auto [it, inserted] = gauge_ids_.emplace(
      std::string(name), static_cast<std::uint32_t>(gauges_.size()));
  if (inserted) {
    gauges_.push_back(GaugeInfo{std::string(name), 0.0, false, nullptr});
    gauges_.back().handle.reset(new Gauge(this, it->second));
  }
  return *gauges_[it->second].handle;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         HistogramSpec spec) {
  if (spec.buckets < 2 || spec.growth <= 1.0 || spec.min_bound <= 0.0) {
    throw std::invalid_argument{"HistogramSpec: need buckets >= 2, growth > 1, "
                                "min_bound > 0"};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (counter_ids_.count(name) || gauge_ids_.count(name)) {
    throw std::logic_error{"metric kind mismatch: " + std::string(name)};
  }
  auto [it, inserted] = histogram_ids_.emplace(
      std::string(name), static_cast<std::uint32_t>(histograms_.size()));
  if (inserted) {
    histograms_.push_back(HistogramInfo{std::string(name), spec, nullptr});
    histograms_.back().handle.reset(new Histogram(this, it->second));
  }
  return *histograms_[it->second].handle;
}

void Counter::Add(std::uint64_t n) {
  MetricsRegistry::Shard& s = reg_->LocalShard();
  std::lock_guard<std::mutex> lock(s.mu);
  if (id_ >= s.counters.size()) s.counters.resize(id_ + 1, 0);
  s.counters[id_] += n;
}

std::uint64_t MetricsRegistry::MergedCounter(std::uint32_t id) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (id < shard->counters.size()) total += shard->counters[id];
  }
  return total;
}

std::uint64_t Counter::Value() const {
  std::lock_guard<std::mutex> lock(reg_->mu_);
  return reg_->MergedCounter(id_);
}

void Gauge::Set(double v) {
  std::lock_guard<std::mutex> lock(reg_->mu_);
  reg_->gauges_[id_].value = v;
  reg_->gauges_[id_].set = true;
}

double Gauge::Value() const {
  std::lock_guard<std::mutex> lock(reg_->mu_);
  return reg_->gauges_[id_].value;
}

void Histogram::Record(double v) {
  const HistogramSpec spec = [&] {
    std::lock_guard<std::mutex> lock(reg_->mu_);
    return reg_->histograms_[id_].spec;
  }();
  MetricsRegistry::Shard& s = reg_->LocalShard();
  std::lock_guard<std::mutex> lock(s.mu);
  if (id_ >= s.hists.size()) s.hists.resize(id_ + 1);
  auto& h = s.hists[id_];
  if (h.buckets.empty()) h.buckets.assign(spec.buckets, 0);
  ++h.buckets[BucketOf(v, spec)];
  if (h.count == 0 || v < h.min) h.min = v;
  if (h.count == 0 || v > h.max) h.max = v;
  ++h.count;
  h.sum += v;
}

std::uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(reg_->mu_);
  std::uint64_t total = 0;
  for (const auto& shard : reg_->shards_) {
    std::lock_guard<std::mutex> slock(shard->mu);
    if (id_ < shard->hists.size()) total += shard->hists[id_].count;
  }
  return total;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(reg_->mu_);
  std::vector<std::uint64_t> out(reg_->histograms_[id_].spec.buckets, 0);
  for (const auto& shard : reg_->shards_) {
    std::lock_guard<std::mutex> slock(shard->mu);
    if (id_ >= shard->hists.size()) continue;
    const auto& h = shard->hists[id_];
    for (std::size_t b = 0; b < h.buckets.size() && b < out.size(); ++b) {
      out[b] += h.buckets[b];
    }
  }
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> slock(shard->mu);
    shard->counters.assign(shard->counters.size(), 0);
    shard->hists.assign(shard->hists.size(), {});
  }
  for (auto& g : gauges_) {
    g.value = 0.0;
    g.set = false;
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w{os};
  w.BeginObject();

  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, id] : counter_ids_) {  // map: sorted by name
    w.Key(name);
    w.Number(MergedCounter(id));
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, id] : gauge_ids_) {
    if (!gauges_[id].set) continue;
    w.Key(name);
    w.Number(gauges_[id].value);
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, id] : histogram_ids_) {
    const HistogramSpec& spec = histograms_[id].spec;
    // Merge this histogram across shards in registration order.
    std::vector<std::uint64_t> buckets(spec.buckets, 0);
    std::uint64_t count = 0;
    double sum = 0.0, mn = 0.0, mx = 0.0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> slock(shard->mu);
      if (id >= shard->hists.size()) continue;
      const auto& h = shard->hists[id];
      if (h.count == 0) continue;
      for (std::size_t b = 0; b < h.buckets.size() && b < buckets.size(); ++b) {
        buckets[b] += h.buckets[b];
      }
      if (count == 0 || h.min < mn) mn = h.min;
      if (count == 0 || h.max > mx) mx = h.max;
      count += h.count;
      sum += h.sum;
    }
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Number(count);
    w.Key("min_bound");
    w.Number(spec.min_bound);
    w.Key("growth");
    w.Number(spec.growth);
    // Wall-clock-derived values get `wall_` keys: they are legitimate
    // measurements but not reproducible across runs, and StripVolatile
    // removes them when diffing reports for determinism.
    const char* sum_key = spec.wall_clock ? "wall_sum" : "sum";
    const char* min_key = spec.wall_clock ? "wall_min" : "min";
    const char* max_key = spec.wall_clock ? "wall_max" : "max";
    const char* buckets_key = spec.wall_clock ? "wall_buckets" : "buckets";
    if (count > 0) {
      w.Key(sum_key);
      w.Number(sum);
      w.Key(min_key);
      w.Number(mn);
      w.Key(max_key);
      w.Number(mx);
    }
    w.Key(buckets_key);
    w.BeginArray();
    for (const std::uint64_t b : buckets) w.Number(b);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  os << '\n';
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counter_ids_.find(name);
  if (it == counter_ids_.end()) {
    throw std::out_of_range{"no counter named " + std::string(name)};
  }
  return MergedCounter(it->second);
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauge_ids_.find(name);
  if (it == gauge_ids_.end()) {
    throw std::out_of_range{"no gauge named " + std::string(name)};
  }
  return gauges_[it->second].value;
}

}  // namespace painter::obs
