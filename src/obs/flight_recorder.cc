#include "obs/flight_recorder.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace painter::obs {
namespace {

struct Journal {
  std::mutex mu;
  std::vector<FlightRecorder::Event> ring;  // capacity-bounded
  std::size_t capacity = 1024;
  std::size_t head = 0;       // next write slot when the ring is full
  bool wrapped = false;       // ring filled at least once
  std::uint64_t recorded = 0;  // total events ever recorded
  std::uint64_t dumps = 0;     // post-mortem sequence number

  static Journal& Get() {
    static Journal* j = new Journal();  // never destroyed, like the registry
    return *j;
  }
};

// The single hot-path flag: Record() bails on one relaxed load of this.
std::atomic<bool> g_enabled{false};

bool ConsultEnvOnce() {
  static const bool enabled_by_env = [] {
    if (const char* cap = std::getenv("PAINTER_FLIGHT_RECORDER")) {
      const long n = std::strtol(cap, nullptr, 10);
      FlightRecorder::Enable(n >= 1 ? static_cast<std::size_t>(n) : 1024);
      return true;
    }
    return false;
  }();
  return enabled_by_env;
}

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

bool FlightRecorder::Enabled() {
  ConsultEnvOnce();
  return g_enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::Enable(std::size_t capacity) {
  Journal& j = Journal::Get();
  std::lock_guard<std::mutex> lock(j.mu);
  j.capacity = capacity < 1 ? 1 : capacity;
  j.ring.clear();
  j.ring.reserve(j.capacity);
  j.head = 0;
  j.wrapped = false;
  g_enabled.store(true, std::memory_order_relaxed);
}

void FlightRecorder::Disable() {
  Journal& j = Journal::Get();
  std::lock_guard<std::mutex> lock(j.mu);
  g_enabled.store(false, std::memory_order_relaxed);
  j.ring.clear();
  j.head = 0;
  j.wrapped = false;
}

void FlightRecorder::Record(std::uint64_t t_us, const char* component,
                            Severity severity, const char* message,
                            std::initializer_list<KV> kvs) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Event ev;
  ev.t_us = t_us;
  ev.severity = severity;
  ev.component = component;
  ev.message = message;
  ev.kvs.reserve(kvs.size());
  for (const KV& kv : kvs) ev.kvs.emplace_back(kv.key, kv.value);

  Journal& j = Journal::Get();
  std::lock_guard<std::mutex> lock(j.mu);
  if (!g_enabled.load(std::memory_order_relaxed)) return;  // Disable raced
  ++j.recorded;
  if (j.ring.size() < j.capacity) {
    j.ring.push_back(std::move(ev));
    return;
  }
  j.ring[j.head] = std::move(ev);
  j.head = (j.head + 1) % j.capacity;
  j.wrapped = true;
}

std::size_t FlightRecorder::EventCount() {
  Journal& j = Journal::Get();
  std::lock_guard<std::mutex> lock(j.mu);
  return j.ring.size();
}

std::uint64_t FlightRecorder::Recorded() {
  Journal& j = Journal::Get();
  std::lock_guard<std::mutex> lock(j.mu);
  return j.recorded;
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() {
  Journal& j = Journal::Get();
  std::lock_guard<std::mutex> lock(j.mu);
  std::vector<Event> out;
  out.reserve(j.ring.size());
  const std::size_t start = j.wrapped ? j.head : 0;
  for (std::size_t k = 0; k < j.ring.size(); ++k) {
    out.push_back(j.ring[(start + k) % j.ring.size()]);
  }
  return out;
}

void FlightRecorder::Reset() {
  Journal& j = Journal::Get();
  std::lock_guard<std::mutex> lock(j.mu);
  j.ring.clear();
  j.head = 0;
  j.wrapped = false;
  j.recorded = 0;
  j.dumps = 0;
}

void FlightRecorder::WritePostMortem(std::ostream& os,
                                     const std::string& reason,
                                     std::uint64_t t_us) {
  const std::vector<Event> events = Snapshot();
  std::uint64_t recorded = 0;
  {
    Journal& j = Journal::Get();
    std::lock_guard<std::mutex> lock(j.mu);
    recorded = j.recorded;
  }
  std::ostringstream body;
  JsonWriter w{body};
  w.BeginObject();
  w.Key("schema");
  w.String("painter.postmortem.v1");
  w.Key("reason");
  w.String(reason);
  w.Key("t_us");
  w.Number(t_us);
  w.Key("events_recorded");
  w.Number(recorded);
  w.Key("events_retained");
  w.Number(static_cast<std::uint64_t>(events.size()));
  w.Key("events");
  w.BeginArray();
  for (const Event& ev : events) {
    w.BeginObject();
    w.Key("t_us");
    w.Number(ev.t_us);
    w.Key("severity");
    w.String(SeverityName(ev.severity));
    w.Key("component");
    w.String(ev.component);
    w.Key("message");
    w.String(ev.message);
    if (!ev.kvs.empty()) {
      w.Key("kv");
      w.BeginObject();
      for (const auto& [key, value] : ev.kvs) {
        w.Key(key);
        w.Number(value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  // Full registry snapshot — every gauge the run had set at trip time, plus
  // counters and histograms. The registry serializes itself; splice the
  // already-serialized object in verbatim (the RunReport::ToJson technique).
  w.Key("metrics");
  w.Number(std::uint64_t{0});  // placeholder, replaced below
  w.EndObject();
  std::string out = body.str();
  out.resize(out.size() - 2);  // drop the placeholder '0' and closing '}'
  std::string metrics = Metrics().ToJson();
  while (!metrics.empty() &&
         (metrics.back() == '\n' || metrics.back() == ' ')) {
    metrics.pop_back();
  }
  out += metrics;
  out += '}';
  os << out << '\n';
}

std::string FlightRecorder::Trip(std::uint64_t t_us, const char* component,
                                 const std::string& reason) {
  Record(t_us, component, Severity::kError, reason.c_str());
  const char* dir = std::getenv("PAINTER_POSTMORTEM_DIR");
  if (dir == nullptr && !Enabled()) return {};
  std::uint64_t seq = 0;
  {
    Journal& j = Journal::Get();
    std::lock_guard<std::mutex> lock(j.mu);
    seq = j.dumps++;
  }
  std::string path = dir != nullptr ? std::string{dir} + "/" : std::string{};
  path += "POSTMORTEM_" + std::to_string(seq) + ".json";
  std::ofstream os(path, std::ios::trunc);
  if (!os) return {};
  WritePostMortem(os, reason, t_us);
  return path;
}

}  // namespace painter::obs
