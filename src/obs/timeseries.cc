#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace painter::obs {

TimeseriesRegistry::TimeseriesRegistry(TimeseriesConfig config)
    : config_(config), period_us_(netsim::UsFromSeconds(config.period_s)) {
  if (period_us_ == 0) {
    throw std::invalid_argument{"TimeseriesRegistry: period below 1 µs"};
  }
  if (config_.capacity < 2) {
    throw std::invalid_argument{"TimeseriesRegistry: capacity below 2"};
  }
}

void TimeseriesRegistry::RegisterSampler(std::string name,
                                         std::function<double()> fn,
                                         bool wall_clock) {
  for (const Series& s : series_) {
    if (s.name == name) {
      throw std::logic_error{"timeseries name already registered: " + name};
    }
  }
  Series s;
  s.name = std::move(name);
  s.sampled = true;
  s.wall_clock = wall_clock;
  s.fn = std::move(fn);
  series_.push_back(std::move(s));
}

void TimeseriesRegistry::Push(Series& s, netsim::SimTime t_us, double value) {
  if (!s.values.empty() && t_us < s.last_t_us) {
    throw std::invalid_argument{"timeseries " + s.name +
                                ": non-monotonic timestamp"};
  }
  if (s.values.size() == config_.capacity) {
    // Evict the oldest point; folding its delta keeps the chain exact.
    if (!s.t_delta_us.empty()) {
      s.base_t_us += s.t_delta_us.front();
      s.t_delta_us.erase(s.t_delta_us.begin());
      if (!s.t_delta_us.empty()) {
        // base_t_us now names the new front; its own delta becomes 0.
        s.base_t_us += s.t_delta_us.front();
        s.t_delta_us.front() = 0;
      }
    }
    s.values.erase(s.values.begin());
    ++s.dropped;
  }
  if (s.values.empty()) {
    s.base_t_us = t_us;
    s.t_delta_us.clear();
    if (!s.sampled) s.t_delta_us.push_back(0);
  } else if (!s.sampled) {
    s.t_delta_us.push_back(t_us - s.last_t_us);
  }
  s.values.push_back(value);
  s.last_t_us = t_us;
}

void TimeseriesRegistry::Append(std::string_view name, netsim::SimTime t_us,
                                double value) {
  for (Series& s : series_) {
    if (s.name == name) {
      if (s.sampled) {
        throw std::logic_error{"timeseries kind mismatch: " +
                               std::string(name)};
      }
      Push(s, t_us, value);
      return;
    }
  }
  Series s;
  s.name = std::string(name);
  s.sampled = false;
  series_.push_back(std::move(s));
  Push(series_.back(), t_us, value);
}

void TimeseriesRegistry::SampleNow(netsim::SimTime t_us) {
  for (Series& s : series_) {
    if (s.sampled) Push(s, t_us, s.fn());
  }
  ++samples_taken_;
}

void TimeseriesRegistry::ScheduleSample(netsim::Simulator& sim,
                                        std::uint64_t index) {
  const netsim::SimTime slot = anchor_us_ + index * period_us_;
  sim.ScheduleAtUs(slot, [this, &sim, index, slot]() {
    const netsim::SimTime now = sim.NowUs();
    max_skew_us_ = std::max(max_skew_us_, now > slot ? now - slot : slot - now);
    SampleNow(now);
    if (anchor_us_ + (index + 1) * period_us_ <= horizon_us_) {
      ScheduleSample(sim, index + 1);
    }
  });
}

void TimeseriesRegistry::StartSampling(netsim::Simulator& sim,
                                       double horizon_s) {
  if (sampling_started_) {
    throw std::logic_error{"TimeseriesRegistry: StartSampling called twice"};
  }
  sampling_started_ = true;
  anchor_us_ = sim.NowUs();
  horizon_us_ = anchor_us_ + netsim::UsFromSeconds(horizon_s);
  ScheduleSample(sim, 0);
}

const TimeseriesRegistry::Series& TimeseriesRegistry::Find(
    std::string_view name) const {
  for (const Series& s : series_) {
    if (s.name == name) return s;
  }
  throw std::out_of_range{"no timeseries named " + std::string(name)};
}

TimeseriesRegistry::SeriesView TimeseriesRegistry::View(
    std::string_view name) const {
  const Series& s = Find(name);
  SeriesView v;
  v.sampled = s.sampled;
  v.wall_clock = s.wall_clock;
  v.dropped = s.dropped;
  v.values = s.values;
  if (s.sampled) {
    // Implicit grid times: the oldest retained sample is sample `dropped`.
    for (std::size_t k = 0; k < s.values.size(); ++k) {
      v.t_us.push_back(anchor_us_ + (s.dropped + k) * period_us_);
    }
  } else {
    netsim::SimTime t = s.base_t_us;
    for (std::size_t k = 0; k < s.t_delta_us.size(); ++k) {
      t += s.t_delta_us[k];
      v.t_us.push_back(t);
    }
  }
  return v;
}

namespace {

bool AllIntegral(const std::vector<double>& values) {
  return std::all_of(values.begin(), values.end(), [](double v) {
    return std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15;
  });
}

}  // namespace

void TimeseriesRegistry::WriteJson(std::ostream& os) const {
  std::vector<const Series*> sorted;
  sorted.reserve(series_.size());
  for (const Series& s : series_) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });

  JsonWriter w{os};
  w.BeginObject();
  w.Key("schema");
  w.String("painter.timeseries.v1");
  w.Key("period_us");
  w.Number(static_cast<std::uint64_t>(period_us_));
  w.Key("anchor_us");
  w.Number(static_cast<std::uint64_t>(anchor_us_));
  w.Key("samples_taken");
  w.Number(samples_taken_);
  w.Key("series");
  w.BeginObject();
  for (const Series* s : sorted) {
    w.Key(s->name);
    w.BeginObject();
    w.Key("kind");
    w.String(s->sampled ? "sampled" : "events");
    w.Key("dropped");
    w.Number(s->dropped);
    if (s->sampled) {
      // The oldest retained sample's grid index (== dropped) locates the
      // window; times are implicit at anchor + index * period.
      w.Key("first_index");
      w.Number(s->dropped);
    } else {
      w.Key("base_t_us");
      w.Number(static_cast<std::uint64_t>(s->base_t_us));
      w.Key("t_us_delta");
      w.BeginArray();
      for (const std::uint64_t d : s->t_delta_us) w.Number(d);
      w.EndArray();
    }
    // Integral series delta-encode (exact for integral doubles); fractional
    // series emit raw values. Wall-clock series get `wall_` keys so
    // StripVolatile empties them.
    const bool delta = AllIntegral(s->values) && !s->values.empty();
    std::string key = delta ? "samples_delta" : "samples";
    if (s->wall_clock) key = "wall_" + key;
    w.Key(key);
    w.BeginArray();
    if (delta) {
      double prev = 0.0;
      for (std::size_t k = 0; k < s->values.size(); ++k) {
        w.Number(k == 0 ? s->values[k] : s->values[k] - prev);
        prev = s->values[k];
      }
    } else {
      for (const double v : s->values) w.Number(v);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string TimeseriesRegistry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

}  // namespace painter::obs
