// Flight recorder: a bounded, structured event journal with post-mortem
// dumps — one-file crash forensics to go with the one-flag seed repro.
//
// Components on the DES thread record noteworthy moments (a failover, a
// fault onset, a policy-contract breach) as structured events: sim-time µs,
// component, severity, message, and a handful of key/value pairs. The
// journal is a fixed-capacity ring holding the most recent N events; when a
// faultsim invariant trips (Trip()), the ring plus a full gauge/counter
// snapshot of the global metrics registry is dumped to a post-mortem JSON
// file (`painter.postmortem.v1`), so the forensic record of *what led up to
// the violation* survives even when the run itself is a 50-seed sweep.
//
// Cost model (mirrors TraceSpan's): the recorder is DISABLED by default, and
// a Record() call then costs one relaxed atomic load and a dead branch — no
// allocation, no lock, no clock read; the KV list is a stack-built
// initializer_list of PODs that is never touched. Enabled, each event copies
// its strings under a short critical section.
//
// Enabling:
//  - at runtime: FlightRecorder::Enable(capacity) / Disable();
//  - via environment: PAINTER_FLIGHT_RECORDER=<capacity> (checked on first
//    use; any value >= 1).
// Post-mortem files land in $PAINTER_POSTMORTEM_DIR (or the working
// directory when Trip() fires with the recorder enabled and the variable
// unset) as POSTMORTEM_<seq>.json with a process-local sequence number.
//
// Determinism: every producer in this repo records from the single-threaded
// DES loop with sim-time timestamps and seed-derived values, so with the
// same seed the journal — and therefore the post-mortem JSON — is
// byte-identical across reruns and worker-thread counts. (The recorder
// still takes a mutex when enabled, so an off-loop producer is safe, merely
// unordered.)
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace painter::obs {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

[[nodiscard]] const char* SeverityName(Severity s);

class FlightRecorder {
 public:
  // Key/value attachment: POD, so building the initializer_list on a
  // disabled path allocates nothing. Keys must be string literals (or
  // otherwise outlive the call).
  struct KV {
    const char* key;
    double value;
  };

  struct Event {
    std::uint64_t t_us = 0;  // sim time
    Severity severity = Severity::kInfo;
    std::string component;
    std::string message;
    std::vector<std::pair<std::string, double>> kvs;
  };

  // True when the journal is recording. First call consults
  // PAINTER_FLIGHT_RECORDER. One relaxed atomic load afterwards.
  [[nodiscard]] static bool Enabled();

  // Starts recording into a fresh ring of `capacity` events (>= 1).
  static void Enable(std::size_t capacity = 1024);

  // Stops recording and drops the journal.
  static void Disable();

  // Appends one event at sim time `t_us`. No-op when disabled.
  static void Record(std::uint64_t t_us, const char* component,
                     Severity severity, const char* message,
                     std::initializer_list<KV> kvs = {});

  // Records an error event and, when the recorder is enabled or
  // PAINTER_POSTMORTEM_DIR is set, writes a post-mortem dump. The sequence
  // number increments per dump, so a sweep that trips twice leaves
  // POSTMORTEM_0.json and POSTMORTEM_1.json. Returns the path written
  // (empty when no dump was produced).
  static std::string Trip(std::uint64_t t_us, const char* component,
                          const std::string& reason);

  // Writes the last-N journal plus a full metrics snapshot (gauges,
  // counters, histograms) as `painter.postmortem.v1` JSON.
  static void WritePostMortem(std::ostream& os, const std::string& reason,
                              std::uint64_t t_us);

  // --- introspection (tests) ---
  [[nodiscard]] static std::size_t EventCount();   // events currently held
  [[nodiscard]] static std::uint64_t Recorded();   // total ever recorded
  [[nodiscard]] static std::vector<Event> Snapshot();  // oldest first
  // Clears the journal and resets the recorded/dump counters, keeping the
  // enabled state. Tests use it to isolate runs.
  static void Reset();
};

}  // namespace painter::obs
