#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/json.h"

namespace painter::obs {
namespace {

// 0 = uninitialized (environment not yet consulted), 1 = disabled,
// 2 = enabled. Span constructors read this with a relaxed load; transitions
// happen under g_mu.
std::atomic<int> g_state{0};

std::mutex g_mu;
std::ofstream* g_file = nullptr;  // non-null iff state == 2
bool g_first_event = true;

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Stable small thread ids for the `tid` field, assigned on first emission.
std::uint32_t LocalTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

// Must be called with g_mu held and g_file open.
void FinalizeLocked() {
  *g_file << "\n]\n";
  g_file->close();
  delete g_file;
  g_file = nullptr;
  g_first_event = true;
  g_state.store(1, std::memory_order_release);
}

void EmitLocked(const char* name, const char* cat, const char* ph,
                double ts_us, double dur_us) {
  if (g_file == nullptr) return;
  *g_file << (g_first_event ? "\n" : ",\n");
  g_first_event = false;
  JsonWriter w{*g_file};
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.Key("cat");
  w.String(cat);
  w.Key("ph");
  w.String(ph);
  w.Key("pid");
  w.Number(std::uint64_t{1});
  w.Key("tid");
  w.Number(static_cast<std::uint64_t>(LocalTid()));
  w.Key("ts");
  w.Number(ts_us);
  if (ph[0] == 'X') {
    w.Key("dur");
    w.Number(dur_us);
  } else if (ph[0] == 'i') {
    w.Key("s");
    w.String("t");  // instant scope: thread
  }
  w.EndObject();
}

void InitFromEnvOnce() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    ProcessEpoch();  // pin the epoch early
    if (const char* path = std::getenv("PAINTER_TRACE");
        path != nullptr && path[0] != '\0') {
      TraceSink::Enable(path);
    } else {
      g_state.store(1, std::memory_order_release);
    }
  });
}

}  // namespace

bool TraceSink::Enabled() {
  int s = g_state.load(std::memory_order_relaxed);
  if (s == 0) {
    InitFromEnvOnce();
    s = g_state.load(std::memory_order_relaxed);
  }
  return s == 2;
}

double TraceSink::NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

void TraceSink::Enable(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_file != nullptr) FinalizeLocked();
  auto* file = new std::ofstream(path, std::ios::trunc);
  if (!*file) {
    delete file;
    g_state.store(1, std::memory_order_release);
    return;
  }
  g_file = file;
  g_first_event = true;
  *g_file << '[';
  g_state.store(2, std::memory_order_release);
  // Finalize on exit so an un-Disabled trace is still a valid JSON array.
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit([] { TraceSink::Disable(); });
  }
}

void TraceSink::Disable() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_file != nullptr) FinalizeLocked();
  if (g_state.load(std::memory_order_relaxed) == 0) {
    g_state.store(1, std::memory_order_release);
  }
}

void TraceSink::Emit(const char* name, const char* cat, double ts_us,
                     double dur_us) {
  std::lock_guard<std::mutex> lock(g_mu);
  EmitLocked(name, cat, "X", ts_us, dur_us);
}

void TraceSink::Instant(const char* name, const char* cat) {
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(g_mu);
  EmitLocked(name, cat, "i", now, 0.0);
}

TraceSpan::TraceSpan(const char* name, const char* cat)
    : name_(name), cat_(cat) {
  if (!TraceSink::Enabled()) return;
  active_ = true;
  start_us_ = TraceSink::NowUs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  // Re-check: tracing may have been disabled mid-span; Emit handles the
  // closed-file case by dropping the event.
  TraceSink::Emit(name_, cat_, start_us_, TraceSink::NowUs() - start_us_);
}

}  // namespace painter::obs
