// Metrics registry: named counters, gauges, and fixed-bucket exponential
// histograms, exported as JSON.
//
// Thread-safety follows the same discipline as util::ParallelFor's
// fixed-order reduction (DESIGN.md's determinism rule): writers touch only a
// per-thread shard (no contention on the hot path), and Collect() merges
// shards in their fixed registration order. Counter and histogram-bucket
// merges are integer sums — order-independent, hence bit-identical across
// runs with the same workload regardless of which worker incremented what.
// Histogram value sums are doubles; they are merged in shard order, which is
// deterministic within a run, and are anyway only used for wall-clock
// measurements whose *values* differ run to run (those fields are emitted
// under `wall_*` keys so consumers can strip them when diffing runs — see
// StripVolatile in report.h).
//
// Metric naming convention (README "Observability"): lowercase
// dot-separated paths, `<subsystem>.<object>.<event-or-quantity>`, with a
// unit suffix where the value has one (`_ms`, `_us`, `_km`). Per-iteration
// series append `.iterN`: e.g. `orchestrator.learn.iter2.realized_ms`.
//
// Handles returned by the registry are stable for the registry's lifetime;
// call sites cache them in function-local statics:
//
//   static obs::Counter& evals =
//       obs::MetricsRegistry::Global().GetCounter("orchestrator.celf.evals");
//   evals.Add();
//
// ResetValues() zeroes every value but keeps registrations (and therefore
// cached handles) valid — tests use it to isolate runs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace painter::obs {

class MetricsRegistry;

// Monotonic event count. Add() is wait-free after the first call on a thread.
class Counter {
 public:
  void Add(std::uint64_t n = 1);
  [[nodiscard]] std::uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_;
  std::uint32_t id_;
};

// Last-written value. Set() takes the registry mutex — gauges record
// per-phase results (iteration benefit, detection delay), not hot-loop data.
class Gauge {
 public:
  void Set(double v);
  [[nodiscard]] double Value() const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_;
  std::uint32_t id_;
};

// Fixed-bucket exponential histogram: bucket i counts samples in
// [min_bound * growth^(i-1), min_bound * growth^i), bucket 0 is the
// underflow bucket (< min_bound), the last bucket absorbs overflow.
struct HistogramSpec {
  double min_bound = 1.0;
  double growth = 2.0;
  std::size_t buckets = 32;  // including the underflow bucket
  // True when the recorded values derive from wall-clock time (queue waits,
  // phase durations): their distribution is not reproducible across runs, so
  // the JSON export prefixes the value fields with `wall_` for stripping.
  bool wall_clock = false;
};

class Histogram {
 public:
  void Record(double v);

  [[nodiscard]] std::uint64_t Count() const;
  // Merged bucket counts, underflow first.
  [[nodiscard]] std::vector<std::uint64_t> BucketCounts() const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_;
  std::uint32_t id_;
};

class MetricsRegistry {
 public:
  // Out of line: the shard deque needs Shard complete at instantiation.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry. Never destroyed (worker threads may outlive every
  // static destructor). If PAINTER_METRICS=<path> is set in the environment,
  // the merged registry is written there as JSON at process exit.
  static MetricsRegistry& Global();

  // Get-or-create by name. The kind of an existing name must match (throws
  // std::logic_error otherwise). Returned references stay valid for the
  // registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, HistogramSpec spec = {});

  // Zeroes all values; registrations and handles stay valid.
  void ResetValues();

  // Merged snapshot as JSON: {"counters":{...},"gauges":{...},
  // "histograms":{...}}, each section sorted by metric name. Counters whose
  // merged value is zero are included (a zero is information).
  void WriteJson(std::ostream& os) const;
  [[nodiscard]] std::string ToJson() const;

  // Point reads for tests; throw std::out_of_range on unknown names.
  [[nodiscard]] std::uint64_t CounterValue(std::string_view name) const;
  [[nodiscard]] double GaugeValue(std::string_view name) const;

  // Opaque per-thread shard (defined in metrics.cc; public only so the
  // thread-local shard cache can name the type).
  struct Shard;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct CounterInfo {
    std::string name;
    std::unique_ptr<Counter> handle;
  };
  struct GaugeInfo {
    std::string name;
    double value = 0.0;
    bool set = false;
    std::unique_ptr<Gauge> handle;
  };
  struct HistogramInfo {
    std::string name;
    HistogramSpec spec;
    std::unique_ptr<Histogram> handle;
  };

  Shard& LocalShard();
  [[nodiscard]] std::uint64_t MergedCounter(std::uint32_t id) const;

  mutable std::mutex mu_;
  // deque: growth never relocates existing entries, so handle references and
  // shard indices stay stable without holding mu_ on the read side.
  std::deque<CounterInfo> counters_;
  std::deque<GaugeInfo> gauges_;
  std::deque<HistogramInfo> histograms_;
  std::map<std::string, std::uint32_t, std::less<>> counter_ids_;
  std::map<std::string, std::uint32_t, std::less<>> gauge_ids_;
  std::map<std::string, std::uint32_t, std::less<>> histogram_ids_;
  // Shards in registration order (the deterministic merge order).
  std::deque<std::unique_ptr<Shard>> shards_;
};

// Convenience accessor used throughout the instrumented subsystems.
inline MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

}  // namespace painter::obs
