#include "obs/report.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/timeseries.h"

namespace painter::obs {

namespace {

// The registry/timeseries serializers end with a newline; inlining into the
// report drops it.
std::string TrimTrailing(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

}  // namespace

void RunReport::AddConfig(std::string key, std::string value) {
  config_.push_back(ConfigEntry{std::move(key), std::move(value), 0.0, false});
}

void RunReport::AddConfig(std::string key, double value) {
  config_.push_back(ConfigEntry{std::move(key), {}, value, true});
}

void RunReport::AddPhaseMs(std::string name, double wall_ms) {
  phases_.emplace_back(std::move(name), wall_ms);
}

void RunReport::AddValue(std::string key, double value) {
  values_.emplace_back(std::move(key), value);
}

void RunReport::AttachMetrics(const MetricsRegistry& reg) {
  metrics_json_ = TrimTrailing(reg.ToJson());
}

void RunReport::AttachTimeseries(const TimeseriesRegistry& reg) {
  timeseries_json_ = TrimTrailing(reg.ToJson());
}

std::string RunReport::ToJson() const {
  std::ostringstream os;
  JsonWriter w{os};
  w.BeginObject();
  w.Key("schema");
  w.String("painter.bench.v1");
  w.Key("name");
  w.String(name_);
  if (have_seed_) {
    w.Key("seed");
    w.Number(static_cast<std::uint64_t>(seed_));
  }
  w.Key("config");
  w.BeginObject();
  for (const ConfigEntry& e : config_) {
    w.Key(e.key);
    if (e.is_number) {
      w.Number(e.num_value);
    } else {
      w.String(e.str_value);
    }
  }
  w.EndObject();
  w.Key("phases");
  w.BeginArray();
  for (const auto& [name, wall_ms] : phases_) {
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("wall_ms");
    w.Number(wall_ms);
    w.EndObject();
  }
  w.EndArray();
  w.Key("values");
  w.BeginObject();
  for (const auto& [key, value] : values_) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();
  // Already-serialized sections (metrics snapshot, timeseries block) are
  // spliced in verbatim after the writer-built prefix; "schema" guarantees
  // the object is non-empty, so the leading comma is always correct.
  std::string body = os.str();
  const auto splice = [&body](const char* key, const std::string& raw) {
    if (raw.empty()) return;
    body += ",\"";
    body += key;
    body += "\":";
    body += raw;
  };
  splice("timeseries", timeseries_json_);
  splice("metrics", metrics_json_);
  body += '}';
  return body;
}

void RunReport::Write(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  os << ToJson() << '\n';
}

namespace {

bool IsVolatileKey(std::string_view key) {
  return key == "ts" || key == "dur" || key == "wall_ms" ||
         key.substr(0, 5) == "wall_";
}

}  // namespace

std::string StripVolatile(std::string_view json) {
  std::string out;
  out.reserve(json.size());
  std::size_t i = 0;
  const std::size_t n = json.size();
  while (i < n) {
    const char c = json[i];
    if (c != '"') {
      out += c;
      ++i;
      continue;
    }
    // Copy the quoted string, tracking its content for the key test.
    const std::size_t start = i++;
    std::string content;
    while (i < n && json[i] != '"') {
      if (json[i] == '\\' && i + 1 < n) {
        content += json[i];
        content += json[i + 1];
        i += 2;
      } else {
        content += json[i];
        ++i;
      }
    }
    if (i < n) ++i;  // closing quote
    out.append(json.substr(start, i - start));
    // A key is a quoted string followed (modulo whitespace) by a colon.
    std::size_t j = i;
    while (j < n && (json[j] == ' ' || json[j] == '\n' || json[j] == '\t')) {
      ++j;
    }
    if (j >= n || json[j] != ':' || !IsVolatileKey(content)) continue;
    // Copy the colon, then replace the value.
    out.append(json.substr(i, j + 1 - i));
    i = j + 1;
    while (i < n && (json[i] == ' ' || json[i] == '\n' || json[i] == '\t')) {
      ++i;
    }
    if (i < n && json[i] == '[') {
      // Skip the (flat, numeric) array.
      int depth = 0;
      while (i < n) {
        if (json[i] == '[') ++depth;
        if (json[i] == ']' && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
      out += "[]";
    } else {
      while (i < n && json[i] != ',' && json[i] != '}' && json[i] != ']' &&
             json[i] != '\n') {
        ++i;
      }
      out += '0';
    }
  }
  return out;
}

}  // namespace painter::obs
