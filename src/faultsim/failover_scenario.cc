#include "faultsim/failover_scenario.h"

#include "netsim/path.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace painter::faultsim {

FaultScenarioSpec Fig10Spec(const FailoverScenarioConfig& config) {
  FaultScenarioSpec spec;
  spec.run_for_s = config.run_for_s;
  spec.sample_every_s = config.sample_every_s;
  spec.edge = config.edge;
  spec.pop_names = {"PoP-A", "PoP-B"};

  // Tunnel 0: anycast (1.1.1.0/24). Before failure it lands at PoP-A; after
  // the blackhole it re-emerges at PoP-B with a transient path, settling
  // once BGP converges. The TM-PoP behind it changes with the reroute; for
  // the latency/selection dynamics what matters is the path profile, so we
  // keep PoP-B as its host after failure via a piecewise path and route the
  // pre-failure segment to PoP-A's address space. The reroute profile is
  // anycast's own (BGP) behaviour, so it lives in the base path, not the
  // fault plan — and being time-varying it opts out of the reconvergence
  // invariant (steady_delay_s = 0).
  spec.tunnels.push_back(ScenarioTunnel{
      .name = "1.1.1.0/24 anycast",
      .remote_ip = 0x01010101,
      .base_path = netsim::PathModel::Piecewise({
          {.start_s = 0.0, .delay_s = config.anycast_delay_before_s},
          {.start_s = config.fail_at_s, .delay_s = std::nullopt},
          {.start_s = config.fail_at_s + config.anycast_unreachable_s,
           .delay_s = config.anycast_delay_during_s},
          {.start_s = config.fail_at_s + config.anycast_converge_s,
           .delay_s = config.anycast_delay_after_s},
      }),
      .pop = 1,
      .steady_delay_s = 0.0});
  // Tunnel 1: the chosen unicast prefix at PoP-A. Its base path is healthy
  // forever; death at fail_at_s comes from the plan's PoP-A outage.
  spec.tunnels.push_back(ScenarioTunnel{
      .name = "2.2.2.0/24 @ PoP-A",
      .remote_ip = 0x02020202,
      .base_path = netsim::PathModel::Fixed(config.chosen_delay_s),
      .pop = 0,
      .steady_delay_s = config.chosen_delay_s});
  // Remaining tunnels: single-transit prefixes at PoP-B, unaffected.
  for (std::size_t k = 0; k < config.alt_delays_s.size(); ++k) {
    spec.tunnels.push_back(ScenarioTunnel{
        .name = std::to_string(k + 3) + "." + std::to_string(k + 3) + "." +
                std::to_string(k + 3) + ".0/24 @ PoP-B",
        .remote_ip = 0x03030300u + static_cast<netsim::IpAddr>(k),
        .base_path = netsim::PathModel::Fixed(config.alt_delays_s[k]),
        .pop = 1,
        .steady_delay_s = config.alt_delays_s[k]});
  }

  // Client traffic: a long-lived flow started shortly after boot (it will be
  // pinned to the pre-failure best and break when PoP-A dies, per the
  // immutable-mapping rule) and a fresh flow after the failure (lands on the
  // new best).
  spec.flows.push_back(ScenarioFlow{
      .start_s = 1.0,
      .key = netsim::FlowKey{.src_ip = 0xc0a80001,
                             .dst_ip = 0x08080808,
                             .src_port = 5001,
                             .dst_port = 443},
      .packets = config.flow_packets,
      .interval_s = config.flow_packet_interval_s});
  spec.flows.push_back(ScenarioFlow{
      .start_s = config.fail_at_s + 5.0,
      .key = netsim::FlowKey{.src_ip = 0xc0a80001,
                             .dst_ip = 0x08080808,
                             .src_port = 5002,
                             .dst_port = 443},
      .packets = 200,
      .interval_s = 0.05});
  return spec;
}

FaultPlan Fig10Plan(const FailoverScenarioConfig& config) {
  FaultPlan plan;
  plan.seed = 0;
  plan.events.push_back(FaultEvent{.type = FaultType::kTmPopOutage,
                                   .start_s = config.fail_at_s,
                                   .duration_s = -1.0,  // PoP-A never returns
                                   .severity = 1.0,
                                   .target = 0});
  return plan;
}

FailoverScenarioResult RunFailoverScenario(
    const FailoverScenarioConfig& config) {
  const obs::TraceSpan span{"tm.RunFailoverScenario"};
  const FaultScenarioResult run =
      RunFaultScenario(Fig10Spec(config), Fig10Plan(config));

  FailoverScenarioResult result;
  result.tunnel_names = run.tunnel_names;
  result.samples = run.samples;
  result.failovers = run.failovers;
  result.pop_a_data_packets = run.pop_data_packets.at(0);
  result.pop_b_data_packets = run.pop_data_packets.at(1);

  // Detection: the first failover away from tunnel 1 after the failure.
  for (const auto& ev : result.failovers) {
    if (ev.t >= config.fail_at_s && ev.from == 1) {
      result.detection_delay_s = ev.t - config.fail_at_s;
      result.failover_target = ev.to;
      break;
    }
  }

  // Paper §5.2 frames detection latency in units of the dead path's RTT
  // (2 × one-way delay); export both forms plus the switchover count.
  obs::Metrics()
      .GetGauge("tm.failover.detection_ms")
      .Set(result.detection_delay_s * 1000.0);
  if (config.chosen_delay_s > 0.0) {
    obs::Metrics()
        .GetGauge("tm.failover.detection_rtts")
        .Set(result.detection_delay_s / (2.0 * config.chosen_delay_s));
  }
  obs::Metrics()
      .GetGauge("tm.failover.switchovers")
      .Set(static_cast<double>(result.failovers.size()));
  return result;
}

}  // namespace painter::faultsim
