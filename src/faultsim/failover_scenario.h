// The Fig. 10 failover experiment as a reusable scenario.
//
// Setup mirrors §5.2.3: an anycast prefix (1.1.1.0/24) served from two PoPs,
// one single-transit prefix at PoP-A (2.2.2.0/24, lowest latency and
// initially chosen) and several at PoP-B (3.3.3.0/24, ...). At fail_at_s,
// PoP-A fails: its unicast prefix is withdrawn and the anycast prefix
// blackholes for ~1 s, then reconverges through PoP-B with degraded latency
// until BGP settles ~15 s later. The TM-Edge should detect the loss within
// ~1.3 RTT and switch to the next-best prefix at PoP-B.
//
// Since the faultsim refactor this is a thin wrapper: Fig10Spec() declares
// the world (tunnels, base paths, client flows) and Fig10Plan() expresses
// "PoP-A dies at fail_at_s" as a one-event FaultPlan; RunFailoverScenario()
// runs them through the plan-driven engine. The failover golden test pins
// the pre-refactor numbers bit for bit.
#pragma once

#include <string>
#include <vector>

#include "faultsim/fault_plan.h"
#include "faultsim/scenario.h"
#include "tm/tm_edge.h"

namespace painter::faultsim {

struct FailoverScenarioConfig {
  double run_for_s = 128.0;
  double fail_at_s = 60.0;
  double sample_every_s = 0.5;

  // One-way delays (seconds). RTT = 2x. As in Fig. 10, the anycast path is
  // inflated relative to PAINTER's unicast choices.
  double chosen_delay_s = 0.014;               // 2.2.2.0/24 via PoP-A
  std::vector<double> alt_delays_s = {0.024, 0.027, 0.029};  // PoP-B prefixes

  double anycast_delay_before_s = 0.031;  // anycast lands at PoP-A, inflated
  double anycast_unreachable_s = 1.0;     // blackhole after withdrawal
  double anycast_delay_during_s = 0.032;  // transient post-failure path
  double anycast_converge_s = 15.0;       // churn duration until final path
  double anycast_delay_after_s = 0.024;   // settled path via PoP-B

  tm::TmEdge::Config edge;
  // Client traffic: one long-lived flow plus periodic short flows.
  std::size_t flow_packets = 2000;
  double flow_packet_interval_s = 0.05;
};

struct FailoverScenarioResult {
  std::vector<std::string> tunnel_names;
  std::vector<tm::TmEdge::Sample> samples;
  std::vector<tm::TmEdge::FailoverEvent> failovers;
  // Time from the failure to the TM-Edge switching away from the dead
  // prefix; negative if it never switched.
  double detection_delay_s = -1.0;
  // Which tunnel it switched to (index), -1 if none.
  int failover_target = -1;
  std::size_t pop_a_data_packets = 0;
  std::size_t pop_b_data_packets = 0;
};

// The Fig. 10 world: PoPs {A, B}, the anycast/chosen/alternate tunnels with
// their fault-free base paths (the anycast reroute profile is part of the
// base path — it is BGP behaviour, not an injected fault), and the client
// flows. Usable as a template world for chaos plans beyond Fig. 10.
[[nodiscard]] FaultScenarioSpec Fig10Spec(const FailoverScenarioConfig& config);

// The scripted failure as a plan: one permanent kTmPopOutage of PoP-A at
// fail_at_s.
[[nodiscard]] FaultPlan Fig10Plan(const FailoverScenarioConfig& config);

[[nodiscard]] FailoverScenarioResult RunFailoverScenario(
    const FailoverScenarioConfig& config);

}  // namespace painter::faultsim

// The scenario began life in painter::tm and is used from there throughout
// the tests, benches, and examples; keep those spellings valid.
namespace painter::tm {
using faultsim::FailoverScenarioConfig;
using faultsim::FailoverScenarioResult;
using faultsim::RunFailoverScenario;
}  // namespace painter::tm
