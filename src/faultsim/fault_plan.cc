#include "faultsim/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/hashmix.h"
#include "util/rng.h"

namespace painter::faultsim {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kLinkDegrade: return "link_degrade";
    case FaultType::kProbeBlackhole: return "probe_blackhole";
    case FaultType::kBgpSessionFlap: return "bgp_session_flap";
    case FaultType::kPeeringWithdraw: return "peering_withdraw";
    case FaultType::kTmPopOutage: return "tm_pop_outage";
    case FaultType::kIngressBrownout: return "ingress_brownout";
  }
  return "unknown";
}

double FaultPlan::LastClearS() const {
  double last = 0.0;
  for (const FaultEvent& ev : events) last = std::max(last, ev.end_s());
  return last;
}

bool FaultPlan::HasBgpEvents() const {
  return std::any_of(events.begin(), events.end(),
                     [](const FaultEvent& ev) { return ev.IsBgp(); });
}

bool FaultPlan::HasTmEvents() const {
  return std::any_of(events.begin(), events.end(),
                     [](const FaultEvent& ev) { return !ev.IsBgp(); });
}

FaultPlan GenerateRandomPlan(std::uint64_t seed, const PlanSpec& spec) {
  // A dedicated stream derived from the seed: the plan does not perturb (and
  // is not perturbed by) any other draw in the run.
  util::Rng rng{util::MixSeed(seed, 0xFA017D1AULL)};  // "fault plan" stream
  FaultPlan plan;
  plan.seed = seed;

  std::vector<FaultType> drawable;
  if (spec.tunnels > 0) {
    drawable.push_back(FaultType::kLinkDegrade);
    drawable.push_back(FaultType::kProbeBlackhole);
  }
  if (spec.pops > 0) {
    drawable.push_back(FaultType::kTmPopOutage);
    drawable.push_back(FaultType::kIngressBrownout);
  }
  if (spec.neighbors > 0) {
    drawable.push_back(FaultType::kBgpSessionFlap);
    drawable.push_back(FaultType::kPeeringWithdraw);
  }
  if (drawable.empty()) return plan;

  const std::size_t count = static_cast<std::size_t>(rng.UniformInt(
      static_cast<std::int64_t>(spec.min_events),
      static_cast<std::int64_t>(spec.max_events)));
  plan.events.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    FaultEvent ev;
    ev.type = drawable[rng.Index(drawable.size())];
    ev.start_s = rng.Uniform(spec.earliest_s, spec.latest_s);
    ev.duration_s = rng.Uniform(spec.min_duration_s, spec.max_duration_s);
    ev.severity = rng.Uniform(spec.min_severity, spec.max_severity);
    switch (ev.type) {
      case FaultType::kLinkDegrade:
      case FaultType::kProbeBlackhole:
        ev.target = static_cast<int>(rng.Index(spec.tunnels));
        break;
      case FaultType::kTmPopOutage:
      case FaultType::kIngressBrownout:
        ev.target = static_cast<int>(rng.Index(spec.pops));
        break;
      case FaultType::kBgpSessionFlap:
      case FaultType::kPeeringWithdraw:
        ev.target = static_cast<int>(rng.Index(spec.neighbors));
        break;
    }
    plan.events.push_back(ev);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              if (a.type != b.type) return a.type < b.type;
              return a.target < b.target;
            });
  return plan;
}

std::string ToString(const FaultPlan& plan) {
  std::string out = "plan seed=" + std::to_string(plan.seed) + ":";
  if (plan.events.empty()) return out + " (no events)";
  char buf[128];
  for (const FaultEvent& ev : plan.events) {
    const char* domain = ev.IsBgp() ? "nbr"
                         : (ev.type == FaultType::kTmPopOutage ||
                            ev.type == FaultType::kIngressBrownout)
                             ? "pop"
                             : "tun";
    std::snprintf(buf, sizeof(buf), " %s(%s=%d t=%.3f+%.3f sev=%.2f);",
                  FaultTypeName(ev.type), domain, ev.target, ev.start_s,
                  ev.duration_s, ev.severity);
    out += buf;
  }
  return out;
}

}  // namespace painter::faultsim
