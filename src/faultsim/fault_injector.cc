#include "faultsim/fault_injector.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/hashmix.h"

namespace painter::faultsim {
namespace {

// Deterministic uniform draw in [0, 1) from mixed identifiers. Used for loss
// decisions so that injected randomness never touches the TmEdge RNG stream.
double HashUniform(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                   std::uint64_t d) {
  const std::uint64_t h = util::MixSeed(a, b, c, d);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Packet identity for the loss draw: probes are identified by probe_id, data
// packets by their inner flow and per-flow ordinal proxy (send time bits).
std::uint64_t PacketTag(const netsim::Packet& p) {
  if (p.kind != netsim::PacketKind::kData) return p.probe_id;
  const std::uint64_t flow =
      (static_cast<std::uint64_t>(p.inner.src_ip) << 32) | p.inner.dst_ip;
  const std::uint64_t ports =
      (static_cast<std::uint64_t>(p.inner.src_port) << 16) | p.inner.dst_port;
  return util::MixSeed(flow, ports);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::vector<int> tunnel_pop)
    : plan_(std::move(plan)), tunnel_pop_(std::move(tunnel_pop)) {}

bool FaultInjector::EventHitsTunnel(const FaultEvent& ev,
                                    std::size_t tunnel) const {
  switch (ev.type) {
    case FaultType::kLinkDegrade:
    case FaultType::kProbeBlackhole:
      return ev.target == static_cast<int>(tunnel);
    case FaultType::kTmPopOutage:
    case FaultType::kIngressBrownout:
      return tunnel < tunnel_pop_.size() &&
             ev.target == tunnel_pop_[tunnel];
    case FaultType::kBgpSessionFlap:
    case FaultType::kPeeringWithdraw:
      return false;  // BGP-layer events; see bgp_replay.h
  }
  return false;
}

bool FaultInjector::HardDownAt(std::size_t tunnel, double t) const {
  for (const FaultEvent& ev : plan_.events) {
    if (ev.type == FaultType::kTmPopOutage && EventHitsTunnel(ev, tunnel) &&
        ev.ActiveAt(t)) {
      return true;
    }
  }
  return false;
}

double FaultInjector::DelayFactorAt(std::size_t tunnel, double t) const {
  double factor = 1.0;
  for (const FaultEvent& ev : plan_.events) {
    if (ev.type == FaultType::kLinkDegrade && EventHitsTunnel(ev, tunnel) &&
        ev.ActiveAt(t)) {
      factor *= 1.0 + 2.0 * ev.severity;
    }
  }
  return factor;
}

double FaultInjector::LossProbAt(std::size_t tunnel, double t) const {
  double pass = 1.0;  // probability the packet survives every active event
  for (const FaultEvent& ev : plan_.events) {
    if (!EventHitsTunnel(ev, tunnel) || !ev.ActiveAt(t)) continue;
    if (ev.type == FaultType::kLinkDegrade) {
      pass *= 1.0 - 0.3 * ev.severity;
    } else if (ev.type == FaultType::kIngressBrownout) {
      pass *= 1.0 - std::min(ev.severity, 0.9);
    }
  }
  return 1.0 - pass;
}

bool FaultInjector::ProbesBlackholedAt(std::size_t tunnel, double t) const {
  for (const FaultEvent& ev : plan_.events) {
    if (ev.type == FaultType::kProbeBlackhole && EventHitsTunnel(ev, tunnel) &&
        ev.ActiveAt(t)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::PerceivedDownAt(std::size_t tunnel, double t) const {
  return HardDownAt(tunnel, t) || ProbesBlackholedAt(tunnel, t);
}

netsim::PathModel FaultInjector::WrapPath(std::size_t tunnel,
                                          netsim::PathModel base) const {
  // Fast path: nothing in the plan ever touches this tunnel's path.
  const bool touched = std::any_of(
      plan_.events.begin(), plan_.events.end(), [&](const FaultEvent& ev) {
        return EventHitsTunnel(ev, tunnel) &&
               (ev.type == FaultType::kTmPopOutage ||
                ev.type == FaultType::kLinkDegrade);
      });
  if (!touched) return base;

  return netsim::PathModel::Overlay(
      std::move(base),
      [this, tunnel](double now,
                     std::optional<double> delay) -> std::optional<double> {
        if (!delay.has_value()) return std::nullopt;
        if (HardDownAt(tunnel, now)) return std::nullopt;
        return *delay * DelayFactorAt(tunnel, now);
      });
}

std::function<bool(const netsim::Packet&, double)> FaultInjector::AdmitFilter(
    std::size_t tunnel) const {
  const bool touched = std::any_of(
      plan_.events.begin(), plan_.events.end(), [&](const FaultEvent& ev) {
        return EventHitsTunnel(ev, tunnel) &&
               (ev.type == FaultType::kProbeBlackhole ||
                ev.type == FaultType::kLinkDegrade ||
                ev.type == FaultType::kIngressBrownout);
      });
  if (!touched) return nullptr;

  const std::uint64_t seed = plan_.seed;
  return [this, tunnel, seed](const netsim::Packet& p, double now) {
    if (p.kind == netsim::PacketKind::kProbe &&
        ProbesBlackholedAt(tunnel, now)) {
      return false;
    }
    const double loss = LossProbAt(tunnel, now);
    if (loss <= 0.0) return true;
    return HashUniform(seed, tunnel, std::bit_cast<std::uint64_t>(now),
                       PacketTag(p)) >= loss;
  };
}

std::array<std::size_t, kFaultTypeCount> FaultInjector::InjectedTmCounts()
    const {
  std::array<std::size_t, kFaultTypeCount> counts{};
  for (const FaultEvent& ev : plan_.events) {
    if (ev.IsBgp()) continue;
    counts[static_cast<std::size_t>(ev.type)] += 1;
  }
  return counts;
}

}  // namespace painter::faultsim
