// Machine-verifiable invariants over a fault-scenario run.
//
// The four properties the chaos runner and the property suite enforce after
// every plan (§5.2.3's operational claims, turned into checks):
//
//  1. Pinning — a flow's tunnel (and therefore its TM-PoP) never changes
//     after the flow starts (§3.2 immutable mapping).
//  2. Detection latency — when the chosen tunnel becomes perceived-down
//     (hard outage or probe blackhole) while a live, already-measured
//     alternative exists, the TM-Edge switches away within
//     probe_interval + 1.3 x RTT (plus explicit jitter/grid slack).
//  3. No silent blackholing — past that detection bound, no sample may still
//     show the dead tunnel as chosen.
//  4. Reconvergence — after every fault clears and a settle period passes,
//     every live tunnel is probed back up, and the chosen tunnel's
//     steady-state RTT is within the hysteresis margin (plus measurement
//     jitter) of the best available.
//
// The checker re-derives each tunnel's perceived-down timeline from the
// spec's base paths and the injector's deterministic views on a fine time
// grid; it never re-runs the simulation. Every violation message embeds
// ToString(plan) — a one-line repro.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "faultsim/fault_injector.h"
#include "faultsim/scenario.h"

namespace painter::faultsim {

struct InvariantConfig {
  // Extra allowance on the detection bound: probe scheduling phase, the
  // +/- delay jitter on the RTT the timeout is armed with, and the grid
  // resolution used to locate the perceived-down onset.
  double detection_slack_s = 0.010;
  // Time after FaultPlan::LastClearS() before the reconvergence check; must
  // cover a few probe intervals plus EWMA recovery.
  double settle_s = 5.0;
  // Resolution of the perceived-down timeline reconstruction.
  double grid_s = 0.010;
};

struct InvariantReport {
  std::size_t checks = 0;  // individual conditions evaluated
  std::vector<std::string> violations;
  // One entry per bounded up->down onset the checker demanded detection for:
  // time from the onset to the edge switching away. The chaos runner
  // aggregates these into the Fig. 10 detection-latency distribution.
  std::vector<double> detection_latencies_s;
  // The same onsets, typed: onset time, latency, and the dead tunnel's
  // steady-state RTT, so latency can be expressed in RTTs of the path that
  // died (the paper's unit — §5.2.3 quotes ~1.3 RTT). Parallel to
  // detection_latencies_s, which is kept for existing consumers.
  struct Detection {
    double onset_s = 0.0;
    double latency_s = 0.0;
    double rtt_s = 0.0;  // 2 x steady one-way delay; last sampled RTT if the
                         // base path is time-varying
    int tunnel = -1;
  };
  std::vector<Detection> detections;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

// Checks all four invariants. Bumps the global `faultsim.violations`
// counter once per violation found, records each violation in the flight
// recorder, and — when the recorder or PAINTER_POSTMORTEM_DIR is active —
// dumps a post-mortem JSON (obs::FlightRecorder::Trip) capturing the event
// journal and gauge snapshot that led up to the breach.
[[nodiscard]] InvariantReport CheckTmInvariants(
    const FaultScenarioSpec& spec, const FaultPlan& plan,
    const FaultScenarioResult& result, const InvariantConfig& config = {});

}  // namespace painter::faultsim
