// Seed-deterministic fault plans.
//
// PAINTER's robustness claims (§5.2.3–§5.2.4) are about behaviour *under
// failure*: TM-Edge fails over between advertised prefixes at RTT timescales
// while anycast suffers seconds of unreachability, and the exposed path
// diversity routes around failures SD-WAN cannot. A FaultPlan is a typed,
// seedable schedule of adversarial events — the generative counterpart of
// the single scripted PoP withdrawal in the original Fig. 10 scenario. Every
// plan is a pure function of its seed (no wall-clock, fixed-order
// iteration), so any plan that violates an invariant is a one-line repro.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace painter::faultsim {

enum class FaultType : std::uint8_t {
  kLinkDegrade = 0,   // one tunnel's path: delay inflation + random loss
  kProbeBlackhole,    // one tunnel: probes dropped, data still flows
  kBgpSessionFlap,    // one neighbor's BGP session bounces (withdraw/announce)
  kPeeringWithdraw,   // one neighbor's announcement withdrawn for the window
  kTmPopOutage,       // a TM-PoP dies: every tunnel it hosts goes dark
  kIngressBrownout,   // partial loss on every tunnel of one PoP
};
inline constexpr std::size_t kFaultTypeCount = 6;

// Stable lowercase name used in metrics (`faultsim.injected.<name>`) and
// plan repro lines.
[[nodiscard]] const char* FaultTypeName(FaultType type);

struct FaultEvent {
  FaultType type = FaultType::kLinkDegrade;
  double start_s = 0.0;
  // Window length; <= 0 means the fault never clears.
  double duration_s = -1.0;
  // In [0, 1]; per-type meaning documented on FaultInjector.
  double severity = 1.0;
  // Tunnel index (kLinkDegrade, kProbeBlackhole), PoP index (kTmPopOutage,
  // kIngressBrownout), or neighbor index (BGP events).
  int target = 0;

  [[nodiscard]] double end_s() const {
    return duration_s <= 0.0 ? std::numeric_limits<double>::infinity()
                             : start_s + duration_s;
  }
  [[nodiscard]] bool ActiveAt(double t) const {
    return t >= start_s && t < end_s();
  }
  [[nodiscard]] bool IsBgp() const {
    return type == FaultType::kBgpSessionFlap ||
           type == FaultType::kPeeringWithdraw;
  }
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  // When the last fault clears: 0 with no events, +inf if any is permanent.
  [[nodiscard]] double LastClearS() const;
  [[nodiscard]] bool HasBgpEvents() const;
  [[nodiscard]] bool HasTmEvents() const;
};

// Target-domain sizes and ranges for the generator. A type is only drawn
// when its target domain is non-empty (e.g. no BGP events with zero
// neighbors).
struct PlanSpec {
  std::size_t min_events = 1;
  std::size_t max_events = 5;
  double earliest_s = 5.0;   // first possible event start
  double latest_s = 60.0;    // last possible event start
  double min_duration_s = 1.0;
  double max_duration_s = 15.0;
  double min_severity = 0.2;
  double max_severity = 1.0;
  std::size_t tunnels = 0;
  std::size_t pops = 0;
  std::size_t neighbors = 0;
};

// Draws a plan from `seed` alone: same (seed, spec) -> same plan, bit for
// bit. Events come out sorted by (start, type, target).
[[nodiscard]] FaultPlan GenerateRandomPlan(std::uint64_t seed,
                                           const PlanSpec& spec);

// One-line repro form, e.g.
//   plan seed=7: tm_pop_outage(pop=1 t=12.50+4.20 sev=1.00); ...
[[nodiscard]] std::string ToString(const FaultPlan& plan);

}  // namespace painter::faultsim
