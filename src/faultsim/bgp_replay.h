// BGP-layer fault replay: compiles a FaultPlan's session events onto the
// message-level BGP simulation.
//
// kPeeringWithdraw withdraws the target neighbor's announcement at the
// event start and re-announces when the window closes; kBgpSessionFlap runs
// several withdraw/re-announce cycles across the window (session bounce).
// Both replay real UPDATE/WITHDRAW processing — Adj-RIB-In, loop
// prevention, MRAI pacing — through bgpsim::MessageLevelSim, so path
// exploration and churn are genuine, not modelled.
//
// The invariant on this layer: once every event has cleared and the event
// queue drains, each AS's chosen route must equal the static Gao–Rexford
// fixpoint for the full announcement — the dynamics may wander but must
// come home.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bgpsim/session_sim.h"
#include "faultsim/fault_plan.h"
#include "netsim/sim.h"
#include "topo/as_graph.h"

namespace painter::faultsim {

struct BgpReplayStats {
  std::size_t withdraw_ops = 0;
  std::size_t announce_ops = 0;
  std::size_t events_applied = 0;
};

// Schedules the plan's BGP events relative to the simulator's current time
// (event at start_s fires at Now() + start_s). `neighbors` indexes the
// event targets (taken modulo its size); `bgp` must already have announced
// to all of them. Also bumps `faultsim.injected.<type>` counters. Every
// scheduled sequence ends re-announced, so a quiesced run converges to the
// full announcement.
BgpReplayStats ScheduleBgpFaults(const FaultPlan& plan,
                                 const std::vector<util::AsId>& neighbors,
                                 bgpsim::MessageLevelSim& bgp,
                                 netsim::Simulator& sim, int flap_cycles = 2);

// Post-quiescence check: every AS's best route under `bgp` matches the
// static engine fixpoint for `announced`. Returns one message per
// mismatching AS (empty = converged). Bumps `faultsim.violations`.
[[nodiscard]] std::vector<std::string> CheckBgpConvergence(
    const topo::AsGraph& graph, util::AsId origin,
    const std::vector<util::AsId>& announced,
    const bgpsim::MessageLevelSim& bgp);

}  // namespace painter::faultsim
