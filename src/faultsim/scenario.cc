#include "faultsim/scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "netsim/sim.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "tm/tm_pop.h"
#include "util/hashmix.h"
#include "util/rng.h"

namespace painter::faultsim {
namespace {

// PoP addresses follow the Fig. 10 convention: PoP k serves 0x02020202 +
// k * 0x01010101 (PoP-A = 2.2.2.2, PoP-B = 3.3.3.3, ...), which keeps the
// refactored failover scenario bit-identical to the hand-written original.
netsim::IpAddr PopAddress(std::size_t pop_index) {
  return 0x02020202u + 0x01010101u * static_cast<netsim::IpAddr>(pop_index);
}

void CountInjected(const FaultInjector& injector, FaultScenarioResult& result) {
  result.injected = injector.InjectedTmCounts();
  for (std::size_t t = 0; t < kFaultTypeCount; ++t) {
    if (result.injected[t] == 0) continue;
    obs::Metrics()
        .GetCounter(std::string{"faultsim.injected."} +
                    FaultTypeName(static_cast<FaultType>(t)))
        .Add(result.injected[t]);
  }
}

}  // namespace

FaultScenarioResult RunFaultScenario(const FaultScenarioSpec& spec,
                                     const FaultPlan& plan) {
  const obs::TraceSpan span{"faultsim.RunFaultScenario"};
  netsim::Simulator sim;

  std::vector<std::unique_ptr<tm::TmPop>> pops;
  pops.reserve(spec.pop_names.size());
  for (std::size_t p = 0; p < spec.pop_names.size(); ++p) {
    pops.push_back(std::make_unique<tm::TmPop>(
        sim, spec.pop_names[p], std::vector<netsim::IpAddr>{PopAddress(p)}));
  }

  std::vector<int> tunnel_pop;
  tunnel_pop.reserve(spec.tunnels.size());
  for (const ScenarioTunnel& t : spec.tunnels) tunnel_pop.push_back(t.pop);
  const FaultInjector injector{plan, tunnel_pop};

  std::vector<tm::TunnelConfig> tunnels;
  tunnels.reserve(spec.tunnels.size());
  for (std::size_t i = 0; i < spec.tunnels.size(); ++i) {
    const ScenarioTunnel& t = spec.tunnels[i];
    tunnels.push_back(tm::TunnelConfig{
        .name = t.name,
        .remote_ip = t.remote_ip,
        .path = injector.WrapPath(i, t.base_path),
        .pop = pops.at(static_cast<std::size_t>(t.pop)).get(),
        .admit = injector.AdmitFilter(i)});
  }

  tm::TmEdge edge{sim, spec.edge, std::move(tunnels)};
  edge.Start();
  edge.SampleEvery(spec.sample_every_s, spec.run_for_s);

  FaultScenarioResult result;

  // Pinning recorder: read-only snapshots of the flow table on the sample
  // grid (no RNG draws, so it cannot perturb the TmEdge event sequence).
  // SortedItems() is already FlowKey-ordered — the store's slot order never
  // leaks into results. Sample k lands at exactly k * sample_us on the
  // absolute integer grid, never at an accumulated relative sum.
  const netsim::SimTime sample_us =
      netsim::UsFromSeconds(spec.sample_every_s);
  std::function<void(std::uint64_t)> record_pinning =
      [&](std::uint64_t sample_index) {
        if (sim.Now() > spec.run_for_s) return;
        FaultScenarioResult::PinningSnapshot snap;
        snap.t = sim.Now();
        for (const auto& [key, stats] : edge.flows().SortedItems()) {
          snap.flow_tunnels.emplace_back(key, stats.tunnel);
        }
        result.pinning.push_back(std::move(snap));
        sim.ScheduleAtUs((sample_index + 1) * sample_us,
                         [&record_pinning, sample_index]() {
                           record_pinning(sample_index + 1);
                         });
      };
  record_pinning(0);

  if (spec.attach) spec.attach(sim, edge, tunnel_pop);

  // Streaming telemetry: sampled edge state on the registry's grid. The
  // samplers are pure reads of edge state, so they cannot perturb the run.
  if (spec.timeseries != nullptr) {
    spec.timeseries->RegisterSampler(
        "tm.edge.chosen_tunnel",
        [&edge]() { return static_cast<double>(edge.chosen()); });
    spec.timeseries->RegisterSampler("tm.edge.tunnels_up", [&edge]() {
      std::size_t up = 0;
      for (std::size_t i = 0; i < edge.TunnelCount(); ++i) {
        if (edge.TunnelRttMs(i).has_value()) ++up;
      }
      return static_cast<double>(up);
    });
    spec.timeseries->StartSampling(sim, spec.run_for_s);
  }

  // Flight-recorder journal: each plan event's onset and clear, stamped at
  // the moment it takes effect on the timeline. Scheduled only when the
  // recorder is on, so a disabled run's event sequence is untouched.
  if (obs::FlightRecorder::Enabled()) {
    for (const FaultEvent& ev : plan.events) {
      sim.Schedule(ev.start_s, [&sim, ev]() {
        obs::FlightRecorder::Record(
            sim.NowUs(), "faultsim", obs::Severity::kWarn,
            FaultTypeName(ev.type),
            {{"target", static_cast<double>(ev.target)},
             {"severity", ev.severity},
             {"duration_s", ev.duration_s}});
      });
      if (std::isfinite(ev.end_s()) && ev.end_s() <= spec.run_for_s) {
        sim.Schedule(ev.end_s(), [&sim, ev]() {
          obs::FlightRecorder::Record(
              sim.NowUs(), "faultsim", obs::Severity::kInfo, "fault_cleared",
              {{"target", static_cast<double>(ev.target)}});
        });
      }
    }
  }

  for (const ScenarioFlow& flow : spec.flows) {
    sim.Schedule(flow.start_s, [&edge, flow]() {
      edge.StartFlow(flow.key, flow.packets, flow.interval_s,
                     flow.payload_bytes);
    });
  }

  sim.Run(spec.run_for_s);

  for (std::size_t i = 0; i < edge.TunnelCount(); ++i) {
    result.tunnel_names.push_back(edge.TunnelName(i));
  }
  result.samples = edge.samples();
  result.failovers = edge.failovers();
  for (const auto& pop : pops) {
    result.pop_data_packets.push_back(pop->stats().data_packets);
  }
  result.flow_stats = edge.flows().SortedItems();

  // Switchover event series: exact failover times (not the sample grid),
  // value = tunnel switched to. Appended post-run so it cannot interleave
  // with the sampling chain.
  if (spec.timeseries != nullptr) {
    for (const tm::TmEdge::FailoverEvent& ev : result.failovers) {
      spec.timeseries->Append("tm.edge.switchover", netsim::UsFromSeconds(ev.t),
                              static_cast<double>(ev.to));
    }
  }

  CountInjected(injector, result);
  return result;
}

FaultScenarioSpec GenerateRandomSpec(std::uint64_t seed,
                                     const WorldSpec& world) {
  util::Rng rng{util::MixSeed(seed, 0x5EC0ULL)};
  FaultScenarioSpec spec;
  spec.run_for_s = world.run_for_s;
  spec.sample_every_s = world.sample_every_s;
  spec.edge.seed = seed;

  const std::size_t pops =
      world.min_pops + rng.Index(world.max_pops - world.min_pops + 1);
  for (std::size_t p = 0; p < pops; ++p) {
    spec.pop_names.push_back("PoP-" + std::to_string(p));
  }
  const std::size_t tunnels =
      world.min_tunnels + rng.Index(world.max_tunnels - world.min_tunnels + 1);
  for (std::size_t i = 0; i < tunnels; ++i) {
    const double delay_s = rng.Uniform(world.min_delay_s, world.max_delay_s);
    spec.tunnels.push_back(ScenarioTunnel{
        .name = "tunnel-" + std::to_string(i),
        .remote_ip = 0x0a0a0a00u + static_cast<netsim::IpAddr>(i),
        .base_path = netsim::PathModel::Fixed(delay_s),
        .pop = static_cast<int>(i % pops),
        .steady_delay_s = delay_s});
  }

  spec.flows.push_back(ScenarioFlow{
      .start_s = 1.0,
      .key = netsim::FlowKey{.src_ip = 0xc0a80001,
                             .dst_ip = 0x08080808,
                             .src_port = 5001,
                             .dst_port = 443},
      .packets = 1200,
      .interval_s = 0.05});
  spec.flows.push_back(ScenarioFlow{
      .start_s = world.run_for_s * 0.45,
      .key = netsim::FlowKey{.src_ip = 0xc0a80002,
                             .dst_ip = 0x08080808,
                             .src_port = 5002,
                             .dst_port = 443},
      .packets = 400,
      .interval_s = 0.05});
  return spec;
}

}  // namespace painter::faultsim
