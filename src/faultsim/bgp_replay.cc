#include "faultsim/bgp_replay.h"

#include <cmath>

#include "bgpsim/engine.h"
#include "obs/metrics.h"

namespace painter::faultsim {

BgpReplayStats ScheduleBgpFaults(const FaultPlan& plan,
                                 const std::vector<util::AsId>& neighbors,
                                 bgpsim::MessageLevelSim& bgp,
                                 netsim::Simulator& sim, int flap_cycles) {
  BgpReplayStats stats;
  if (neighbors.empty()) return stats;
  const double t0 = sim.Now();

  for (const FaultEvent& ev : plan.events) {
    if (!ev.IsBgp()) continue;
    const util::AsId neighbor =
        neighbors[static_cast<std::size_t>(ev.target) % neighbors.size()];
    const double start = t0 + ev.start_s;
    // Permanent BGP events would leave the session withdrawn forever; clamp
    // to a finite window so the convergence invariant stays checkable.
    const double duration =
        std::isfinite(ev.end_s()) ? ev.duration_s : 30.0;

    obs::Metrics()
        .GetCounter(std::string{"faultsim.injected."} + FaultTypeName(ev.type))
        .Add();
    ++stats.events_applied;

    if (ev.type == FaultType::kPeeringWithdraw) {
      sim.ScheduleAt(start, [&bgp, neighbor]() { bgp.Withdraw({neighbor}); });
      sim.ScheduleAt(start + duration,
                     [&bgp, neighbor]() { bgp.Announce({neighbor}); });
      ++stats.withdraw_ops;
      ++stats.announce_ops;
    } else {  // kBgpSessionFlap: several down/up cycles across the window
      const int cycles = std::max(1, flap_cycles);
      const double period = duration / static_cast<double>(cycles);
      for (int c = 0; c < cycles; ++c) {
        const double down_at = start + static_cast<double>(c) * period;
        sim.ScheduleAt(down_at,
                       [&bgp, neighbor]() { bgp.Withdraw({neighbor}); });
        sim.ScheduleAt(down_at + 0.5 * period,
                       [&bgp, neighbor]() { bgp.Announce({neighbor}); });
        ++stats.withdraw_ops;
        ++stats.announce_ops;
      }
    }
  }
  return stats;
}

std::vector<std::string> CheckBgpConvergence(
    const topo::AsGraph& graph, util::AsId origin,
    const std::vector<util::AsId>& announced,
    const bgpsim::MessageLevelSim& bgp) {
  std::vector<std::string> mismatches;
  const bgpsim::BgpEngine engine{graph};
  const bgpsim::RoutingOutcome outcome = engine.Propagate(
      bgpsim::Announcement{util::PrefixId{0}, origin, announced});

  obs::Counter& violations =
      obs::Metrics().GetCounter("faultsim.violations");
  for (std::uint32_t v = 0; v < graph.size(); ++v) {
    const util::AsId as{v};
    if (as == origin) continue;
    const auto got = bgp.BestAsEngineRoute(as);
    const bool want_reachable = outcome.Reachable(as);
    if (got.has_value() != want_reachable) {
      mismatches.push_back("bgp: AS " + std::to_string(v) +
                           (want_reachable ? " lost its route after faults"
                                           : " kept a stale route"));
      violations.Add();
      continue;
    }
    if (!got.has_value()) continue;
    const bgpsim::Route& want = outcome.RouteAt(as);
    if (got->learned_from != want.learned_from ||
        got->path_length != want.path_length ||
        got->next_hop != want.next_hop) {
      mismatches.push_back("bgp: AS " + std::to_string(v) +
                           " converged to a non-fixpoint route");
      violations.Add();
    }
  }
  return mismatches;
}

}  // namespace painter::faultsim
