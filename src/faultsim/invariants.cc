#include "faultsim/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace painter::faultsim {
namespace {

// Chosen tunnel strictly before time t, reconstructed from the failover log
// (exact switch times, unlike the coarse sample grid).
int ChosenBefore(const std::vector<tm::TmEdge::FailoverEvent>& failovers,
                 double t) {
  int chosen = -1;
  for (const auto& ev : failovers) {
    if (ev.t < t) {
      chosen = ev.to;
    } else {
      break;
    }
  }
  return chosen;
}

std::string Fmt(const char* fmt, double a, double b = 0.0, double c = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b, c);
  return buf;
}

}  // namespace

InvariantReport CheckTmInvariants(const FaultScenarioSpec& spec,
                                  const FaultPlan& plan,
                                  const FaultScenarioResult& result,
                                  const InvariantConfig& config) {
  InvariantReport rep;
  obs::Counter& violations_counter =
      obs::Metrics().GetCounter("faultsim.violations");
  const auto violate = [&](const std::string& what) {
    rep.violations.push_back(what + "  [" + ToString(plan) + "]");
    violations_counter.Add();
    // One-file crash forensics: the trip dumps the flight-recorder journal
    // (fault onsets, switchovers, admissions) plus a full gauge snapshot.
    // The checker runs post-run, so the trip is stamped with the scenario
    // end time; the violation text carries the in-run times.
    obs::FlightRecorder::Trip(netsim::UsFromSeconds(spec.run_for_s),
                              "faultsim.invariants", rep.violations.back());
  };

  std::vector<int> tunnel_pop;
  for (const ScenarioTunnel& t : spec.tunnels) tunnel_pop.push_back(t.pop);
  const FaultInjector injector{plan, std::move(tunnel_pop)};
  const std::size_t n_tunnels = spec.tunnels.size();

  // ---- 1. Pinning: a flow's tunnel never changes once assigned. ----
  std::map<netsim::FlowKey, int> pinned;
  for (const auto& snap : result.pinning) {
    for (const auto& [key, tunnel] : snap.flow_tunnels) {
      ++rep.checks;
      const auto [it, inserted] = pinned.emplace(key, tunnel);
      if (!inserted && it->second != tunnel) {
        violate(Fmt("pinning: flow re-mapped from tunnel %.0f to %.0f at t=%.2f",
                    static_cast<double>(it->second),
                    static_cast<double>(tunnel), snap.t));
      }
    }
  }
  for (const auto& [key, stats] : result.flow_stats) {
    const auto it = pinned.find(key);
    if (it != pinned.end() && stats.tunnel != it->second) {
      ++rep.checks;
      violate("pinning: final flow table disagrees with observed pinning");
    }
  }

  // ---- Perceived-down timelines on a fine grid. ----
  const double grid = config.grid_s;
  const std::size_t steps =
      static_cast<std::size_t>(spec.run_for_s / grid) + 1;
  std::vector<std::vector<bool>> down(n_tunnels);
  for (std::size_t i = 0; i < n_tunnels; ++i) {
    down[i].resize(steps);
    for (std::size_t k = 0; k < steps; ++k) {
      const double t = static_cast<double>(k) * grid;
      down[i][k] =
          !spec.tunnels[i].base_path.OneWayDelay(t).has_value() ||
          injector.PerceivedDownAt(i, t);
    }
  }

  // Last sampled RTT of tunnel i at or before time t (ms), or < 0 if none.
  const auto last_rtt_ms = [&](std::size_t i, double t) {
    double rtt = -1.0;
    for (const auto& s : result.samples) {
      if (s.t > t) break;
      if (i < s.rtt_ms.size() && s.rtt_ms[i].has_value()) rtt = *s.rtt_ms[i];
    }
    return rtt;
  };

  // Detection bound after an onset at t0 for tunnel i: one probe interval to
  // send the first doomed probe, plus the timeout it was armed with. The
  // timeout derives from the RTT EWMA, which tracks the (possibly degraded,
  // jittered) path; bound it by the worst deterministic RTT over the last
  // second plus the configured jitter.
  const auto detection_bound = [&](std::size_t i, double t0,
                                   double sampled_rtt_ms) {
    double rtt_ub_s = sampled_rtt_ms / 1000.0;
    if (spec.tunnels[i].steady_delay_s > 0.0) {
      double worst_factor = 1.0;
      // Whole-history worst factor: the RTT EWMA can freeze at an inflated
      // value through a blackhole window (no replies, no updates), so the
      // timeout may be armed with a delay seen arbitrarily far back.
      for (double t = 0.0; t <= t0; t += grid) {
        worst_factor = std::max(worst_factor, injector.DelayFactorAt(i, t));
      }
      rtt_ub_s = std::max(
          rtt_ub_s, 2.0 * spec.tunnels[i].steady_delay_s * worst_factor);
    }
    rtt_ub_s *= 1.0 + spec.edge.delay_jitter;
    const double timeout =
        std::max(spec.edge.min_probe_timeout_s,
                 rtt_ub_s * spec.edge.failover_rtt_multiplier);
    return spec.edge.probe_interval_s + timeout + config.detection_slack_s +
           grid;
  };

  // ---- 2 + 3. Detection latency and no silent blackholing. ----
  for (std::size_t i = 0; i < n_tunnels; ++i) {
    for (std::size_t k = 1; k < steps; ++k) {
      if (!down[i][k] || down[i][k - 1]) continue;  // not an up->down onset
      const double t0 = static_cast<double>(k) * grid;
      if (ChosenBefore(result.failovers, t0) != static_cast<int>(i)) continue;
      const double rtt_ms = last_rtt_ms(i, t0);
      if (rtt_ms < 0.0) continue;  // never measured: cold-start timeout rules
      const double bound = detection_bound(i, t0, rtt_ms);

      // The down window must outlast the bound, otherwise the edge may
      // legitimately never notice.
      const std::size_t k_bound =
          k + static_cast<std::size_t>(bound / grid) + 1;
      if (k_bound >= steps) continue;
      bool down_throughout = true;
      for (std::size_t kk = k; kk <= k_bound; ++kk) {
        down_throughout = down_throughout && down[i][kk];
      }
      if (!down_throughout) continue;

      // A live, clean, already-measured alternative must exist through the
      // detection window for the bound to be demanded.
      bool has_alternative = false;
      for (std::size_t j = 0; j < n_tunnels && !has_alternative; ++j) {
        if (j == i || last_rtt_ms(j, t0) < 0.0) continue;
        bool clean = true;
        for (std::size_t kk = k; kk <= k_bound && clean; ++kk) {
          const double t = static_cast<double>(kk) * grid;
          clean = !down[j][kk] && injector.LossProbAt(j, t) <= 0.0;
        }
        has_alternative = clean;
      }
      if (!has_alternative) continue;

      ++rep.checks;
      // First switch away from i at or after the (grid-resolved) onset.
      double switched_at = -1.0;
      for (const auto& ev : result.failovers) {
        if (ev.from == static_cast<int>(i) && ev.t >= t0 - grid) {
          switched_at = ev.t;
          break;
        }
      }
      if (switched_at < 0.0 || switched_at > t0 + bound) {
        violate(Fmt("detection: tunnel down at t=%.3f not abandoned within "
                    "%.1f ms (switched %+.1f ms)",
                    t0, bound * 1000.0,
                    switched_at < 0.0 ? -1.0 : (switched_at - t0) * 1000.0));
      } else {
        const double latency = std::max(0.0, switched_at - t0);
        rep.detection_latencies_s.push_back(latency);
        rep.detections.push_back(InvariantReport::Detection{
            .onset_s = t0,
            .latency_s = latency,
            .rtt_s = spec.tunnels[i].steady_delay_s > 0.0
                         ? 2.0 * spec.tunnels[i].steady_delay_s
                         : rtt_ms / 1000.0,
            .tunnel = static_cast<int>(i)});
      }

      // 3. No sample past the bound may still show i as chosen while the
      // window persists.
      const double window_end_k = [&] {
        std::size_t kk = k;
        while (kk + 1 < steps && down[i][kk + 1]) ++kk;
        return static_cast<double>(kk) * grid;
      }();
      for (const auto& s : result.samples) {
        if (s.t <= t0 + bound || s.t > window_end_k) continue;
        ++rep.checks;
        if (s.chosen == static_cast<int>(i)) {
          violate(Fmt("blackhole: dead tunnel still chosen at t=%.2f "
                      "(down since t=%.3f)",
                      s.t, t0));
        }
      }
    }
  }

  // ---- 4. Reconvergence to steady state after all TM faults clear. ----
  double last_clear = 0.0;
  for (const FaultEvent& ev : plan.events) {
    if (!ev.IsBgp()) last_clear = std::max(last_clear, ev.end_s());
  }
  if (std::isfinite(last_clear) && !result.samples.empty()) {
    const auto& final_sample = result.samples.back();
    if (final_sample.t >= last_clear + config.settle_s) {
      // Every tunnel whose fault-free path is up must be probed back up.
      std::vector<std::size_t> eligible;
      for (std::size_t j = 0; j < n_tunnels; ++j) {
        if (!spec.tunnels[j].base_path.OneWayDelay(final_sample.t)
                 .has_value()) {
          continue;
        }
        eligible.push_back(j);
        ++rep.checks;
        if (j < final_sample.rtt_ms.size() &&
            !final_sample.rtt_ms[j].has_value()) {
          violate(Fmt("reconvergence: tunnel %.0f still down at t=%.2f after "
                      "faults cleared at t=%.2f",
                      static_cast<double>(j), final_sample.t, last_clear));
        }
      }

      const bool steady_known =
          !eligible.empty() &&
          std::all_of(eligible.begin(), eligible.end(), [&](std::size_t j) {
            return spec.tunnels[j].steady_delay_s > 0.0;
          });
      if (steady_known) {
        ++rep.checks;
        if (final_sample.chosen < 0) {
          violate(Fmt("reconvergence: no tunnel chosen at t=%.2f with %.0f "
                      "live tunnels",
                      final_sample.t, static_cast<double>(eligible.size())));
        } else {
          // The incumbent may keep a within-hysteresis-margin worse tunnel;
          // beyond margin + measurement jitter it must have moved back.
          const double chosen_rtt =
              2.0 * spec.tunnels[static_cast<std::size_t>(final_sample.chosen)]
                        .steady_delay_s;
          double best_rtt = chosen_rtt;
          for (const std::size_t j : eligible) {
            best_rtt = std::min(best_rtt, 2.0 * spec.tunnels[j].steady_delay_s);
          }
          const double margin =
              spec.edge.switch_hysteresis_ms / 1000.0 +
              spec.edge.delay_jitter * (chosen_rtt + best_rtt) + 1e-6;
          if (chosen_rtt - best_rtt > margin) {
            violate(Fmt("reconvergence: chosen RTT %.1f ms vs best %.1f ms "
                        "exceeds hysteresis at end of run",
                        chosen_rtt * 1000.0, best_rtt * 1000.0));
          }
        }
      }
    }
  }

  return rep;
}

}  // namespace painter::faultsim
