// Plan-driven Traffic Manager scenario engine.
//
// Generalizes the original Fig. 10 script (one PoP withdrawal at a fixed
// time) into: a declarative world (PoPs, tunnels with fault-free base paths,
// client flows) plus a FaultPlan compiled onto it by FaultInjector. The
// engine wires TmPops and a TmEdge onto a fresh netsim::Simulator exactly
// the way the hand-written scenario did, so a plan that reproduces the old
// schedule is bit-identical to the old run (the failover golden test proves
// it), and any other plan is a new adversarial experiment at zero marginal
// code.
//
// Determinism: everything derives from (spec, plan). No wall-clock, no
// global state besides obs counters; same inputs -> byte-identical results.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "faultsim/fault_injector.h"
#include "faultsim/fault_plan.h"
#include "netsim/packet.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "tm/tm_edge.h"

namespace painter::obs {
class TimeseriesRegistry;
}  // namespace painter::obs

namespace painter::faultsim {

struct ScenarioTunnel {
  std::string name;
  netsim::IpAddr remote_ip = 0;
  netsim::PathModel base_path;  // the path with no faults injected
  int pop = 0;                  // index into FaultScenarioSpec::pop_names
  // Steady-state one-way delay (seconds) for invariant checking; <= 0 when
  // the base path is itself time-varying (then the reconvergence invariant
  // skips this tunnel).
  double steady_delay_s = 0.0;
};

struct ScenarioFlow {
  double start_s = 0.0;
  netsim::FlowKey key;
  std::size_t packets = 0;
  double interval_s = 0.05;
  std::uint32_t payload_bytes = 1400;
};

struct FaultScenarioSpec {
  double run_for_s = 120.0;
  double sample_every_s = 0.5;
  tm::TmEdge::Config edge;
  std::vector<std::string> pop_names;
  std::vector<ScenarioTunnel> tunnels;
  std::vector<ScenarioFlow> flows;

  // Optional traffic driver, invoked once after the edge starts probing and
  // before the event loop runs: the workload engine attaches here to drive
  // large-scale load through the same simulator while the plan's faults
  // play out (chaos-under-load). `tunnel_pop[i]` is the PoP index of tunnel
  // i, spec order. The hook must be deterministic and must not draw from
  // the TmEdge's RNG, so an absent or no-op hook leaves the run
  // bit-identical.
  std::function<void(netsim::Simulator& sim, tm::TmEdge& edge,
                     const std::vector<int>& tunnel_pop)>
      attach;

  // Optional streaming telemetry. When set, the scenario registers sampled
  // series for the edge (chosen tunnel, probed-up count), appends a
  // switchover event series after the run, and starts the registry's
  // sampling chain on the scenario simulator for run_for_s. The registry
  // must outlive the call; its samplers are only valid during the run. A
  // null registry leaves the run's event sequence bit-identical (sampling
  // events are pure reads but do occupy queue slots).
  obs::TimeseriesRegistry* timeseries = nullptr;
};

struct FaultScenarioResult {
  std::vector<std::string> tunnel_names;
  std::vector<tm::TmEdge::Sample> samples;
  std::vector<tm::TmEdge::FailoverEvent> failovers;
  std::vector<std::size_t> pop_data_packets;  // per PoP, spec order

  // Flow→tunnel pinning observed at every sample tick, flows in FlowKey
  // order (fixed-order iteration; the pinning invariant walks this).
  struct PinningSnapshot {
    double t = 0.0;
    std::vector<std::pair<netsim::FlowKey, int>> flow_tunnels;
  };
  std::vector<PinningSnapshot> pinning;

  // Per-flow delivery counts at end of run, FlowKey order.
  std::vector<std::pair<netsim::FlowKey, tm::TmEdge::FlowStats>> flow_stats;

  // TM-applicable events injected, per FaultType (faultsim.injected.*).
  std::array<std::size_t, kFaultTypeCount> injected{};
};

// Runs `spec` under `plan`. Also bumps the global `faultsim.injected.<type>`
// counters once per applied event.
[[nodiscard]] FaultScenarioResult RunFaultScenario(
    const FaultScenarioSpec& spec, const FaultPlan& plan);

// Shape of the randomized TM worlds the chaos runner and the property suite
// sweep: `pops` in [min_pops, max_pops], `tunnels` in [min_tunnels,
// max_tunnels] (round-robin across PoPs) with steady one-way delays in
// [min_delay_s, max_delay_s], a long-lived flow from t=1 s and a mid-run
// flow at run_for_s * 0.45.
struct WorldSpec {
  double run_for_s = 90.0;
  double sample_every_s = 0.5;
  std::size_t min_pops = 2;
  std::size_t max_pops = 3;
  std::size_t min_tunnels = 3;
  std::size_t max_tunnels = 6;
  double min_delay_s = 0.010;
  double max_delay_s = 0.035;
};

// Pure function of (seed, spec): the same seed always yields the same world,
// drawn from a dedicated Rng stream (never the TmEdge's).
[[nodiscard]] FaultScenarioSpec GenerateRandomSpec(std::uint64_t seed,
                                                   const WorldSpec& world = {});

}  // namespace painter::faultsim
