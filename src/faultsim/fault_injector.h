// Compiles a FaultPlan into hooks on the existing layers.
//
// The injector owns no simulation state of its own — it turns the plan's
// typed events into:
//  - netsim perturbations: a PathModel::Overlay per tunnel that masks the
//    base path during TM-PoP outages and inflates delay during link
//    degradation,
//  - TM-Edge admission filters: probe blackholing and probabilistic loss
//    (link degrade / ingress brownout), drawn deterministically from
//    (plan seed, tunnel, packet identity) via hash mixing — never from the
//    TmEdge's own RNG, so a plan with no events leaves behaviour
//    bit-identical to an un-injected run,
//  - bgpsim replay: see bgp_replay.h for the UPDATE/WITHDRAW schedule.
//
// Per-type severity semantics (severity in [0, 1]):
//   kLinkDegrade:     one-way delay x (1 + 2*severity); forward loss with
//                     probability 0.3*severity
//   kProbeBlackhole:  probes (not data) dropped on the forward direction
//   kTmPopOutage:     every tunnel of the PoP hard-down (severity ignored)
//   kIngressBrownout: forward loss with probability min(severity, 0.9) on
//                     every tunnel of the PoP — partial, so the TM-Edge may
//                     legitimately ride it out
//
// The deterministic component (hard-down windows, delay factors, loss
// probabilities, blackhole windows) is exposed for the invariant checker,
// which must reason about what the plan *did* without re-running it.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "faultsim/fault_plan.h"
#include "netsim/packet.h"
#include "netsim/path.h"

namespace painter::faultsim {

class FaultInjector {
 public:
  // `tunnel_pop[i]` is the PoP index hosting tunnel i (PoP-targeted events
  // fan out to every tunnel of the PoP).
  FaultInjector(FaultPlan plan, std::vector<int> tunnel_pop);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t TunnelCount() const { return tunnel_pop_.size(); }

  // netsim hook: the tunnel's effective path under the plan.
  [[nodiscard]] netsim::PathModel WrapPath(std::size_t tunnel,
                                           netsim::PathModel base) const;

  // tm hook: forward-direction admission filter (TunnelConfig::admit).
  // Deterministic in (packet, send time); null-equivalent when the plan has
  // no loss/blackhole events for this tunnel.
  [[nodiscard]] std::function<bool(const netsim::Packet&, double)> AdmitFilter(
      std::size_t tunnel) const;

  // Deterministic views for the invariant checker.
  [[nodiscard]] bool HardDownAt(std::size_t tunnel, double t) const;
  [[nodiscard]] double DelayFactorAt(std::size_t tunnel, double t) const;
  [[nodiscard]] double LossProbAt(std::size_t tunnel, double t) const;
  [[nodiscard]] bool ProbesBlackholedAt(std::size_t tunnel, double t) const;
  // Hard-down or probe-blackholed: the TM-Edge *must* perceive the tunnel as
  // dead (unanswered probes), bounding its detection latency.
  [[nodiscard]] bool PerceivedDownAt(std::size_t tunnel, double t) const;

  // Events applicable to the TM scenario (non-BGP, valid target), counted
  // per type — the `faultsim.injected.*` series.
  [[nodiscard]] std::array<std::size_t, kFaultTypeCount> InjectedTmCounts()
      const;

 private:
  [[nodiscard]] bool EventHitsTunnel(const FaultEvent& ev,
                                     std::size_t tunnel) const;

  FaultPlan plan_;
  std::vector<int> tunnel_pop_;
};

}  // namespace painter::faultsim
