#include "topo/generator.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>

namespace painter::topo {
namespace {

// Picks `n` distinct metros, weighted by population, biased to be near
// `anchor` when `local` is true (regional ISPs cluster geographically).
std::vector<util::MetroId> PickPresence(const std::vector<Metro>& metros,
                                        util::Rng& rng, std::size_t n,
                                        const Metro* anchor, bool local) {
  std::vector<double> weights(metros.size());
  for (std::size_t i = 0; i < metros.size(); ++i) {
    double w = metros[i].population_weight;
    if (local && anchor != nullptr) {
      const double d =
          Distance(anchor->location, metros[i].location).count();
      // Strong distance decay: ~halves every 1500 km.
      w *= std::exp(-d / 2000.0);
    }
    weights[i] = w;
  }
  std::vector<util::MetroId> picked;
  picked.reserve(n);
  for (std::size_t k = 0; k < n && k < metros.size(); ++k) {
    const std::size_t idx = rng.WeightedIndex(weights);
    if (idx >= weights.size()) break;
    picked.push_back(metros[idx].id);
    weights[idx] = 0.0;  // without replacement
  }
  if (picked.empty()) picked.push_back(metros.front().id);
  return picked;
}

std::size_t DrawProviderCount(util::Rng& rng,
                              std::span<const double> weights) {
  const std::size_t i = rng.WeightedIndex(weights);
  return i >= weights.size() ? 1 : i + 1;
}

// Chooses providers present near the customer. Customers buy connectivity
// from ISPs that operate where they are: the decay is sharp and providers
// with no presence within a service radius are ineligible (falling back to
// whatever is nearest only if nothing qualifies).
std::vector<util::AsId> PickProviders(const AsGraph& g,
                                      const std::vector<Metro>& metros,
                                      util::Rng& rng,
                                      const std::vector<util::AsId>& pool,
                                      util::MetroId customer_home,
                                      std::size_t count) {
  constexpr double kServiceRadiusKm = 2500.0;
  const GeoPoint& home = metros[customer_home.value()].location;
  std::vector<double> weights(pool.size());
  double nearest_km = 1e18;
  std::size_t nearest_idx = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const AsInfo& cand = g.info(pool[i]);
    double best_km = 1e18;
    for (util::MetroId m : cand.presence) {
      best_km = std::min(
          best_km, Distance(home, metros[m.value()].location).count());
    }
    weights[i] = best_km <= kServiceRadiusKm ? std::exp(-best_km / 800.0) : 0.0;
    if (best_km < nearest_km) {
      nearest_km = best_km;
      nearest_idx = i;
    }
  }
  std::vector<util::AsId> chosen;
  for (std::size_t k = 0; k < count && k < pool.size(); ++k) {
    const std::size_t idx = rng.WeightedIndex(weights);
    if (idx >= weights.size()) {
      // Nothing within the service radius: take the closest option once.
      if (chosen.empty() && !pool.empty()) chosen.push_back(pool[nearest_idx]);
      break;
    }
    chosen.push_back(pool[idx]);
    weights[idx] = 0.0;
  }
  return chosen;
}

ExitPolicy DrawExit(util::Rng& rng, double fixed_frac) {
  return rng.Bernoulli(fixed_frac) ? ExitPolicy::kFixedExit
                                   : ExitPolicy::kEarlyExit;
}

}  // namespace

Internet GenerateInternet(const InternetConfig& config) {
  Internet net;
  net.metros = WorldMetros();
  util::Rng rng{config.seed};
  AsGraph& g = net.graph;

  // --- Tier-1 backbones: global presence, full peer mesh. ---
  std::vector<util::AsId> tier1;
  for (std::size_t i = 0; i < config.tier1_count; ++i) {
    auto presence = PickPresence(net.metros, rng, 45, nullptr, false);
    const util::MetroId bias = presence[rng.Index(presence.size())];
    tier1.push_back(g.AddAs(AsTier::kTier1, "T1-" + std::to_string(i),
                            std::move(presence),
                            DrawExit(rng, config.tier1_fixed_exit_frac), bias));
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      g.AddPeerEdge(tier1[i], tier1[j]);
    }
  }

  // --- Transit providers: customers of 1-3 tier-1s, continental footprints.
  std::vector<util::AsId> transits;
  for (std::size_t i = 0; i < config.transit_count; ++i) {
    const Metro& anchor = net.metros[rng.Index(net.metros.size())];
    // Broad, globally spread footprints: a transit that interconnects with
    // the cloud tends to do so near most of the cloud's PoPs, so (a) its
    // early-exit anycast choice lands users at a nearby PoP (anycast is
    // near-optimal for most users, §2.1) and (b) its ingress choice is
    // *correlated* across per-PoP prefixes — per-PoP advertisement cannot
    // escape a poorly-performing transit.
    auto presence = PickPresence(net.metros, rng, 40, &anchor, false);
    const util::MetroId bias = presence.front();
    const util::AsId id =
        g.AddAs(AsTier::kTransit, "TR-" + std::to_string(i),
                std::move(presence),
                DrawExit(rng, config.transit_fixed_exit_frac), bias);
    const std::size_t np = 1 + rng.Index(3);
    for (util::AsId p :
         PickProviders(g, net.metros, rng, tier1, anchor.id, np)) {
      g.AddProviderEdge(p, id);
    }
    transits.push_back(id);
  }
  // Peer transits that share a metro.
  for (std::size_t i = 0; i < transits.size(); ++i) {
    for (std::size_t j = i + 1; j < transits.size(); ++j) {
      const auto& pa = g.info(transits[i]).presence;
      const auto& pb = g.info(transits[j]).presence;
      const bool share = std::any_of(pa.begin(), pa.end(), [&](util::MetroId m) {
        return std::find(pb.begin(), pb.end(), m) != pb.end();
      });
      if (share && rng.Bernoulli(config.transit_peering_prob)) {
        g.AddPeerEdge(transits[i], transits[j]);
      }
    }
  }

  // --- Regional ISPs: customers of transits (sometimes tier-1s). ---
  std::vector<util::AsId> regionals;
  for (std::size_t i = 0; i < config.regional_count; ++i) {
    const Metro& anchor = net.metros[rng.Index(net.metros.size())];
    auto presence = PickPresence(net.metros, rng, 3, &anchor, true);
    const util::MetroId bias = presence.front();
    const util::AsId id =
        g.AddAs(AsTier::kRegional, "R-" + std::to_string(i),
                std::move(presence),
                DrawExit(rng, config.regional_fixed_exit_frac), bias);
    const std::size_t np =
        DrawProviderCount(rng, config.provider_count_weights);
    const auto& pool = rng.Bernoulli(0.85) ? transits : tier1;
    for (util::AsId p : PickProviders(g, net.metros, rng, pool, anchor.id, np)) {
      g.AddProviderEdge(p, id);
    }
    regionals.push_back(id);
  }
  // Occasional regional peering within a metro.
  for (std::size_t i = 0; i < regionals.size(); ++i) {
    for (std::size_t j = i + 1; j < regionals.size(); ++j) {
      const auto& pa = g.info(regionals[i]).presence;
      const auto& pb = g.info(regionals[j]).presence;
      const bool share = std::any_of(pa.begin(), pa.end(), [&](util::MetroId m) {
        return std::find(pb.begin(), pb.end(), m) != pb.end();
      });
      if (share && rng.Bernoulli(config.regional_peering_prob)) {
        g.AddPeerEdge(regionals[i], regionals[j]);
      }
    }
  }

  // --- Stubs: enterprises and eyeballs; multihomed to regionals/transits. ---
  // Stub home metros follow population weight, so UGs and traffic concentrate
  // in large metros the way cloud traffic does.
  std::vector<double> metro_weights(net.metros.size());
  for (std::size_t i = 0; i < net.metros.size(); ++i) {
    metro_weights[i] = net.metros[i].population_weight;
  }
  for (std::size_t i = 0; i < config.stub_count; ++i) {
    const std::size_t mi = rng.WeightedIndex(metro_weights);
    const Metro& home = net.metros[mi >= net.metros.size() ? 0 : mi];
    const util::AsId id = g.AddAs(AsTier::kStub, "S-" + std::to_string(i),
                                  {home.id}, ExitPolicy::kEarlyExit, home.id);
    const std::size_t np =
        DrawProviderCount(rng, config.provider_count_weights);
    // 80% of provider slots go to regionals, the rest to transits.
    std::size_t wanted_regional = 0;
    for (std::size_t k = 0; k < np; ++k) {
      if (rng.Bernoulli(0.8)) ++wanted_regional;
    }
    auto provs = PickProviders(g, net.metros, rng, regionals, home.id,
                               wanted_regional);
    const auto more = PickProviders(g, net.metros, rng, transits, home.id,
                                    np - provs.size());
    provs.insert(provs.end(), more.begin(), more.end());
    if (provs.empty()) provs.push_back(transits[rng.Index(transits.size())]);
    for (util::AsId p : provs) g.AddProviderEdge(p, id);
  }

  return net;
}

}  // namespace painter::topo
