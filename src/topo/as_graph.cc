#include "topo/as_graph.h"

#include <stdexcept>

namespace painter::topo {

util::AsId AsGraph::AddAs(AsTier tier, std::string name,
                          std::vector<util::MetroId> presence,
                          ExitPolicy exit_policy, util::MetroId exit_bias) {
  const util::AsId id{static_cast<std::uint32_t>(infos_.size())};
  if (presence.empty()) {
    throw std::invalid_argument{"AddAs: AS must be present in >=1 metro"};
  }
  infos_.push_back(AsInfo{.id = id,
                          .tier = tier,
                          .name = std::move(name),
                          .presence = std::move(presence),
                          .exit_policy = exit_policy,
                          .exit_bias = exit_bias});
  providers_.emplace_back();
  customers_.emplace_back();
  peers_.emplace_back();
  InvalidateCaches();
  return id;
}

void AsGraph::CheckId(util::AsId id) const {
  if (!id.valid() || id.value() >= infos_.size()) {
    throw std::out_of_range{"AsGraph: unknown AS id"};
  }
}

void AsGraph::AddProviderEdge(util::AsId provider, util::AsId customer) {
  CheckId(provider);
  CheckId(customer);
  if (provider == customer) {
    throw std::invalid_argument{"AddProviderEdge: self edge"};
  }
  customers_[provider.value()].push_back(customer);
  providers_[customer.value()].push_back(provider);
  InvalidateCaches();
}

void AsGraph::AddPeerEdge(util::AsId a, util::AsId b) {
  CheckId(a);
  CheckId(b);
  if (a == b) throw std::invalid_argument{"AddPeerEdge: self edge"};
  peers_[a.value()].push_back(b);
  peers_[b.value()].push_back(a);
  InvalidateCaches();
}

const AsInfo& AsGraph::info(util::AsId id) const {
  CheckId(id);
  return infos_[id.value()];
}

const std::vector<util::AsId>& AsGraph::providers(util::AsId id) const {
  CheckId(id);
  return providers_[id.value()];
}

const std::vector<util::AsId>& AsGraph::customers(util::AsId id) const {
  CheckId(id);
  return customers_[id.value()];
}

const std::vector<util::AsId>& AsGraph::peers(util::AsId id) const {
  CheckId(id);
  return peers_[id.value()];
}

void AsGraph::InvalidateCaches() {
  cone_cache_.assign(infos_.size(), {});
  cone_cached_.assign(infos_.size(), false);
}

const std::unordered_set<std::uint32_t>& AsGraph::ConeSet(
    util::AsId root) const {
  CheckId(root);
  if (!cone_cached_[root.value()]) {
    // Depth-first walk over customer edges. The relationship graph is a DAG
    // in practice; visited-set also guards against accidental cycles.
    std::unordered_set<std::uint32_t>& cone = cone_cache_[root.value()];
    std::vector<util::AsId> stack{root};
    while (!stack.empty()) {
      const util::AsId cur = stack.back();
      stack.pop_back();
      if (!cone.insert(cur.value()).second) continue;
      for (util::AsId c : customers_[cur.value()]) stack.push_back(c);
    }
    cone_cached_[root.value()] = true;
  }
  return cone_cache_[root.value()];
}

bool AsGraph::InCustomerCone(util::AsId descendant, util::AsId ancestor) const {
  CheckId(descendant);
  return ConeSet(ancestor).contains(descendant.value());
}

std::vector<util::AsId> AsGraph::CustomerCone(util::AsId root) const {
  const auto& set = ConeSet(root);
  std::vector<util::AsId> out;
  out.reserve(set.size());
  for (std::uint32_t v : set) out.push_back(util::AsId{v});
  return out;
}

std::vector<util::AsId> AsGraph::AsesOfTier(AsTier tier) const {
  std::vector<util::AsId> out;
  for (const auto& info : infos_) {
    if (info.tier == tier) out.push_back(info.id);
  }
  return out;
}

}  // namespace painter::topo
