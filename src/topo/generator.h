// Synthetic Internet generator.
//
// The paper evaluates against the real Internet (Azure BGP feeds, the PEERING
// testbed). That substrate is a deployment gate for a reproduction, so we
// generate a structurally similar internetwork: a small clique of tier-1
// backbones, a layer of transit providers, regional ISPs, and thousands of
// stub (enterprise / eyeball) networks with realistic multihoming — "most
// networks have only 2 or three ISPs" (§5.2.4). ASes are geo-embedded in the
// world metro catalog so that distance, and therefore latency and D_reuse,
// are meaningful.
#pragma once

#include <cstdint>

#include "topo/as_graph.h"
#include "util/rng.h"

namespace painter::topo {

struct InternetConfig {
  std::uint64_t seed = 1;

  std::size_t tier1_count = 10;
  std::size_t transit_count = 60;
  std::size_t regional_count = 240;
  std::size_t stub_count = 2400;

  // Multihoming distribution for stubs/regionals: probability of having
  // exactly 1, 2, 3, 4 providers (normalized internally).
  double provider_count_weights[4] = {0.45, 0.35, 0.15, 0.05};

  // Probability that two transit ASes sharing a metro peer with each other.
  double transit_peering_prob = 0.30;
  // Probability that two regional ASes sharing a metro peer with each other.
  double regional_peering_prob = 0.08;

  // Fraction of ASes per tier routing with a fixed (cold-potato) exit.
  // Kept modest: anycast reaches a nearby PoP for most users (§3, [21, 54]);
  // the dominant pathology is *which AS* carries the traffic, not which PoP.
  double tier1_fixed_exit_frac = 0.04;
  double transit_fixed_exit_frac = 0.06;
  double regional_fixed_exit_frac = 0.05;
};

struct Internet {
  std::vector<Metro> metros;
  AsGraph graph;
};

// Builds the internetwork deterministically from `config.seed`.
[[nodiscard]] Internet GenerateInternet(const InternetConfig& config);

}  // namespace painter::topo
