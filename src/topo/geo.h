// Geographic primitives: coordinates, great-circle distance, and the world's
// metropolitan areas used to place PoPs, user groups, and probes.
//
// The paper reasons about distance constantly: D_reuse excludes ingresses more
// than a threshold farther than the closest advertising PoP (§3.1), geolocation
// targets are accepted within GP km of a PoP (§5.1.1 / App. B), and speed of
// light in fiber bounds feasible latencies.
#pragma once

#include <string>
#include <vector>

#include "util/ids.h"
#include "util/units.h"

namespace painter::topo {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

// Great-circle distance (haversine) on a spherical Earth.
[[nodiscard]] util::Km Distance(const GeoPoint& a, const GeoPoint& b);

// Lower bound on one-way latency between two points (straight fiber).
[[nodiscard]] util::Millis MinLatency(const GeoPoint& a, const GeoPoint& b);

// A metropolitan area: user groups are (AS, metro) pairs, per the paper's UG
// definition ("users in the same AS and large metropolitan area").
struct Metro {
  util::MetroId id;
  std::string name;
  GeoPoint location;
  // Relative population weight; drives traffic volume and UG placement.
  double population_weight = 1.0;
};

// A fixed catalog of world metros, spread across six continents like the
// paper's Vultr deployment (Fig. 5). Deterministic: no RNG involved.
[[nodiscard]] std::vector<Metro> WorldMetros();

}  // namespace painter::topo
