// AS-level Internet topology with business relationships.
//
// PAINTER's advertisement reasoning is built on interdomain routing policy:
// which peerings are policy-compliant ingresses for a user group is derived
// from BGP feeds and from *customer cones* computed over AS relationships
// (§3.1, using ProbLink-style inference in the paper; here relationships are
// ground truth because we generate the topology). The graph stores
// customer→provider and peer→peer edges and answers cone/reachability queries.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "topo/geo.h"
#include "util/ids.h"

namespace painter::topo {

enum class AsTier : std::uint8_t {
  kTier1,     // global transit-free backbone, fully meshed peers
  kTransit,   // national/continental transit provider
  kRegional,  // regional ISP
  kStub,      // enterprise / eyeball network (UGs live here)
  kCloud,     // the cloud provider running PAINTER
};

// How an AS picks its exit point toward a destination reachable at several of
// its interconnection locations. Early-exit (hot potato) is the common case;
// fixed-exit models coarse intra-AS routing that drags traffic to a preferred
// region first — the paper observed transit providers "inflate routes even
// over very large distances" (§5.1.2).
enum class ExitPolicy : std::uint8_t { kEarlyExit, kFixedExit };

struct AsInfo {
  util::AsId id;
  AsTier tier = AsTier::kStub;
  std::string name;
  // Metros where this AS has routers; peerings with the cloud can exist only
  // in presence metros.
  std::vector<util::MetroId> presence;
  ExitPolicy exit_policy = ExitPolicy::kEarlyExit;
  // For kFixedExit: traffic funnels through the presence metro nearest this.
  util::MetroId exit_bias;
};

class AsGraph {
 public:
  // Adds an AS and returns its id (ids are dense, assigned sequentially).
  util::AsId AddAs(AsTier tier, std::string name,
                   std::vector<util::MetroId> presence,
                   ExitPolicy exit_policy = ExitPolicy::kEarlyExit,
                   util::MetroId exit_bias = util::MetroId{});

  // Records a customer→provider relationship (customer pays provider).
  void AddProviderEdge(util::AsId provider, util::AsId customer);

  // Records a settlement-free peer↔peer relationship.
  void AddPeerEdge(util::AsId a, util::AsId b);

  [[nodiscard]] std::size_t size() const { return infos_.size(); }
  [[nodiscard]] const AsInfo& info(util::AsId id) const;

  [[nodiscard]] const std::vector<util::AsId>& providers(util::AsId id) const;
  [[nodiscard]] const std::vector<util::AsId>& customers(util::AsId id) const;
  [[nodiscard]] const std::vector<util::AsId>& peers(util::AsId id) const;

  // True if `descendant` can reach `ancestor` by following only
  // customer→provider links (i.e. descendant is in ancestor's customer cone).
  // Cones are computed lazily and cached; an AS is in its own cone.
  [[nodiscard]] bool InCustomerCone(util::AsId descendant,
                                    util::AsId ancestor) const;

  // All ASes in `root`'s customer cone, including `root`.
  [[nodiscard]] std::vector<util::AsId> CustomerCone(util::AsId root) const;

  // Invalidates cached cones; called automatically by mutators.
  void InvalidateCaches();

  [[nodiscard]] std::vector<util::AsId> AsesOfTier(AsTier tier) const;

 private:
  void CheckId(util::AsId id) const;
  const std::unordered_set<std::uint32_t>& ConeSet(util::AsId root) const;

  std::vector<AsInfo> infos_;
  std::vector<std::vector<util::AsId>> providers_;
  std::vector<std::vector<util::AsId>> customers_;
  std::vector<std::vector<util::AsId>> peers_;

  // Lazy per-root cone cache (root id -> set of member ids).
  mutable std::vector<std::unordered_set<std::uint32_t>> cone_cache_;
  mutable std::vector<bool> cone_cached_;
};

}  // namespace painter::topo
