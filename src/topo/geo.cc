#include "topo/geo.h"

#include <cmath>

namespace painter::topo {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;

double Radians(double deg) { return deg * kPi / 180.0; }
}  // namespace

util::Km Distance(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = Radians(a.lat_deg);
  const double lat2 = Radians(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = Radians(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return util::Km{2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)))};
}

util::Millis MinLatency(const GeoPoint& a, const GeoPoint& b) {
  return util::FiberLatency(Distance(a, b));
}

std::vector<Metro> WorldMetros() {
  // (name, lat, lon, population weight). Weights roughly follow metro size so
  // that synthetic traffic volume concentrates the way cloud traffic does.
  struct Raw {
    const char* name;
    double lat, lon, weight;
  };
  static constexpr Raw kRaw[] = {
      // North America
      {"NewYork", 40.71, -74.01, 10.0},
      {"Ashburn", 39.04, -77.49, 6.0},
      {"Chicago", 41.88, -87.63, 7.0},
      {"Dallas", 32.78, -96.80, 6.0},
      {"Miami", 25.76, -80.19, 4.5},
      {"Atlanta", 33.75, -84.39, 5.0},
      {"LosAngeles", 34.05, -118.24, 9.0},
      {"Seattle", 47.61, -122.33, 4.5},
      {"SiliconValley", 37.37, -122.04, 6.0},
      {"Toronto", 43.65, -79.38, 4.5},
      {"MexicoCity", 19.43, -99.13, 6.0},
      {"Denver", 39.74, -104.99, 2.5},
      {"Honolulu", 21.31, -157.86, 0.8},
      // South America
      {"SaoPaulo", -23.55, -46.63, 8.0},
      {"Santiago", -33.45, -70.67, 3.0},
      {"Bogota", 4.71, -74.07, 3.5},
      {"BuenosAires", -34.60, -58.38, 4.0},
      // Europe
      {"London", 51.51, -0.13, 9.0},
      {"Amsterdam", 52.37, 4.90, 5.0},
      {"Frankfurt", 50.11, 8.68, 6.0},
      {"Paris", 48.86, 2.35, 7.0},
      {"Madrid", 40.42, -3.70, 4.0},
      {"Milan", 45.46, 9.19, 4.0},
      {"Stockholm", 59.33, 18.07, 2.5},
      {"Warsaw", 52.23, 21.01, 3.0},
      {"Moscow", 55.76, 37.62, 5.0},
      // Africa / Middle East
      {"Johannesburg", -26.20, 28.05, 4.0},
      {"Lagos", 6.52, 3.38, 5.0},
      {"Cairo", 30.04, 31.24, 5.0},
      {"Dubai", 25.20, 55.27, 3.5},
      {"TelAviv", 32.07, 34.78, 2.0},
      // Asia
      {"Mumbai", 19.08, 72.88, 8.0},
      {"Delhi", 28.70, 77.10, 8.0},
      {"Bangalore", 12.97, 77.59, 5.0},
      {"Singapore", 1.35, 103.82, 5.0},
      {"Tokyo", 35.68, 139.69, 9.0},
      {"Osaka", 34.69, 135.50, 4.5},
      {"Seoul", 37.57, 126.98, 6.0},
      {"HongKong", 22.32, 114.17, 4.5},
      {"Taipei", 25.03, 121.57, 3.0},
      {"Jakarta", -6.21, 106.85, 6.0},
      {"Bangkok", 13.76, 100.50, 4.0},
      // Oceania
      {"Sydney", -33.87, 151.21, 4.0},
      {"Melbourne", -37.81, 144.96, 3.5},
      {"Auckland", -36.85, 174.76, 1.2},
  };
  std::vector<Metro> metros;
  metros.reserve(std::size(kRaw));
  for (std::size_t i = 0; i < std::size(kRaw); ++i) {
    metros.push_back(Metro{
        .id = util::MetroId{static_cast<std::uint32_t>(i)},
        .name = kRaw[i].name,
        .location = GeoPoint{kRaw[i].lat, kRaw[i].lon},
        .population_weight = kRaw[i].weight,
    });
  }
  return metros;
}

}  // namespace painter::topo
