// Event-driven recursive-resolver TTL cache on the shared DES timeline.
//
// The closed-form TTL study (ttl_study.h) answers "how many bytes move after
// a record expires" in isolation; this cache is the live counterpart the
// unified timeline needs (DESIGN.md §11): when the orchestrator publishes a
// new advertisement configuration, resolvers do NOT see it instantly — each
// recursive resolver re-fetches the record only when its cached copy's TTL
// runs out (§2.2, Fig. 3 is about what happens in between). The cache models
// exactly that lag: the authoritative side publishes monotonically increasing
// configuration versions, and every resolver holds the version it fetched at
// its last refresh until its next TTL boundary.
//
// All refresh activity is ordinary simulator events on the absolute
// integer-µs grid: resolver r refreshes at phase_r + k * ttl_us, where
// phase_r is a deterministic per-resolver stagger drawn from the seed (real
// resolver caches expire at client-driven, uncorrelated instants, not in
// lockstep). No randomness is drawn during the run, so interleaving with the
// TM-Edge, workload ticks, and advertisement rounds is a pure function of
// (seed, config) and the published-version sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/sim.h"

namespace painter::obs {
class TimeseriesRegistry;
}  // namespace painter::obs

namespace painter::dnssim {

struct TtlCacheConfig {
  double ttl_s = 60.0;       // record TTL; refresh period per resolver
  std::uint64_t seed = 17;   // drives the per-resolver phase stagger only
};

class TtlCache {
 public:
  struct Stats {
    std::uint64_t refreshes = 0;       // refresh events executed
    std::uint64_t version_updates = 0; // refreshes that changed the version
  };

  // The cache schedules nothing until Start(); `sim` must outlive it.
  TtlCache(netsim::Simulator& sim, std::size_t resolver_count,
           TtlCacheConfig config = {});

  // Schedules each resolver's refresh chain (phase_r + k * ttl) up to and
  // including `horizon_s`. Call once, before running the simulator.
  void Start(double horizon_s);

  // Authoritative record update (advertisement round completed): resolvers
  // pick `version` up at their next refresh, not before. Versions must be
  // non-decreasing; the caller owns their meaning. Journaled in the flight
  // recorder (when enabled) with the stale count at publish time.
  void Publish(std::uint64_t version);

  // Resolvers still serving an older version than the authoritative one.
  [[nodiscard]] std::size_t StaleCount() const;

  // Registers a `dnssim.ttl_cache.stale_resolvers` sampled series on `reg`.
  // The sampler reads this cache; `reg` must not outlive it.
  void RegisterTimeseries(obs::TimeseriesRegistry& reg) const;

  // The version resolver r currently serves to its clients.
  [[nodiscard]] std::uint64_t VersionOf(std::uint32_t resolver) const {
    return cached_version_.at(resolver);
  }
  // True while r still serves an older version than the authoritative one.
  [[nodiscard]] bool IsStale(std::uint32_t resolver) const {
    return cached_version_.at(resolver) != authoritative_version_;
  }
  [[nodiscard]] std::uint64_t AuthoritativeVersion() const {
    return authoritative_version_;
  }
  [[nodiscard]] std::size_t ResolverCount() const {
    return cached_version_.size();
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void Refresh(std::uint32_t resolver);

  netsim::Simulator* sim_;
  netsim::SimTime ttl_us_;
  std::vector<netsim::SimTime> phase_us_;       // per-resolver grid offset
  std::vector<std::uint64_t> refresh_index_;    // k of the next refresh
  std::vector<std::uint64_t> cached_version_;   // what each resolver serves
  std::uint64_t authoritative_version_ = 0;
  netsim::SimTime start_us_ = 0;
  netsim::SimTime horizon_us_ = 0;
  Stats stats_;
};

}  // namespace painter::dnssim
