#include "dnssim/granularity.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace painter::dnssim {

std::size_t GranularityBucket(double share) {
  if (share <= 1e-4) return 0;
  if (share <= 1e-3) return 1;
  if (share <= 1e-2) return 2;
  if (share <= 1e-1) return 3;
  return 4;
}

std::vector<PopGranularity> AnalyzeGranularity(
    const cloudsim::Deployment& deployment,
    const cloudsim::IngressResolver& resolver,
    const ResolverAssignment& resolvers, const GranularityConfig& config) {
  // Anycast resolution assigns each UG an ingress (peering -> PoP).
  std::vector<util::PeeringId> all;
  for (const auto& p : deployment.peerings()) all.push_back(p.id);
  const auto ingress = resolver.Resolve(all);

  struct PopState {
    double total = 0.0;
    // knob key -> volume. BGP knob: (peering, user AS). DNS knob: resolver.
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> bgp;
    std::map<std::uint32_t, double> dns;
  };
  // +1 pseudo-PoP for the aggregate "All" row.
  std::vector<PopState> state(deployment.pops().size() + 1);
  const std::size_t all_idx = deployment.pops().size();

  for (const cloudsim::UserGroup& ug : deployment.ugs()) {
    const auto& choice = ingress[ug.id.value()];
    if (!choice.has_value()) continue;
    const cloudsim::Peering& sess = deployment.peering(*choice);
    const double v = ug.traffic_weight;
    const std::uint32_t res = resolvers.resolver_of_ug[ug.id.value()];

    // BGP's knob is (peering, user AS) where "user AS" is the origin network
    // the cloud sees in BGP — enterprises live inside their access ISP's
    // aggregates, so a targeted announcement moves the whole ISP's customer
    // base, not one enterprise.
    const auto& providers = resolver.graph().providers(ug.as);
    const std::uint32_t user_as =
        providers.empty() ? ug.as.value() : providers.front().value();

    for (const std::size_t idx : {static_cast<std::size_t>(sess.pop.value()),
                                  all_idx}) {
      PopState& ps = state[idx];
      ps.total += v;
      ps.bgp[{sess.id.value(), user_as}] += v;
      ps.dns[res] += v;
    }
  }

  // Rank real PoPs by volume; build the output rows.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < deployment.pops().size(); ++i) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return state[a].total > state[b].total;
  });
  order.insert(order.begin(), all_idx);
  if (order.size() > config.top_pops + 1) order.resize(config.top_pops + 1);

  std::vector<PopGranularity> out;
  for (std::size_t idx : order) {
    const PopState& ps = state[idx];
    PopGranularity row;
    row.pop_name =
        idx == all_idx ? "All" : deployment.pops()[idx].name;
    row.total_volume = ps.total;
    if (ps.total <= 0.0) {
      out.push_back(row);
      continue;
    }
    for (const auto& [key, v] : ps.bgp) {
      row.bgp[GranularityBucket(v / ps.total)] += v / ps.total;
    }
    for (const auto& [key, v] : ps.dns) {
      row.dns[GranularityBucket(v / ps.total)] += v / ps.total;
    }
    // PAINTER: every flow is its own knob; all flows of a UG share the same
    // per-flow share, so bucket the UG's full volume at its flow size.
    for (const cloudsim::UserGroup& ug : deployment.ugs()) {
      const auto& choice = ingress[ug.id.value()];
      if (!choice.has_value()) continue;
      const bool in_pop = idx == all_idx ||
                          deployment.peering(*choice).pop.value() == idx;
      if (!in_pop) continue;
      const double flows =
          std::max(1.0, ug.traffic_weight * config.flows_per_weight);
      const double flow_share = ug.traffic_weight / flows / ps.total;
      row.painter[GranularityBucket(flow_share)] +=
          ug.traffic_weight / ps.total;
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace painter::dnssim
