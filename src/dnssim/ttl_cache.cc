#include "dnssim/ttl_cache.h"

#include <stdexcept>

#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "util/hashmix.h"
#include "util/rng.h"

namespace painter::dnssim {

TtlCache::TtlCache(netsim::Simulator& sim, std::size_t resolver_count,
                   TtlCacheConfig config)
    : sim_(&sim), ttl_us_(netsim::UsFromSeconds(config.ttl_s)) {
  if (ttl_us_ == 0) {
    throw std::invalid_argument{"TtlCache: ttl_s below 1 microsecond"};
  }
  phase_us_.reserve(resolver_count);
  util::Rng rng{util::MixSeed(config.seed, 0x77Au)};
  for (std::size_t r = 0; r < resolver_count; ++r) {
    // Uncorrelated expiry instants across resolvers: a fixed per-resolver
    // offset in [0, ttl), drawn once here — never during the run.
    phase_us_.push_back(static_cast<netsim::SimTime>(rng.UniformInt(
        0, static_cast<std::int64_t>(ttl_us_) - 1)));
  }
  refresh_index_.assign(resolver_count, 0);
  cached_version_.assign(resolver_count, 0);
}

void TtlCache::Start(double horizon_s) {
  start_us_ = sim_->NowUs();
  horizon_us_ = start_us_ + netsim::UsFromSeconds(horizon_s);
  for (std::uint32_t r = 0; r < cached_version_.size(); ++r) {
    const netsim::SimTime first = start_us_ + phase_us_[r];
    if (first > horizon_us_) continue;
    sim_->ScheduleAtUs(first, [this, r]() { Refresh(r); });
  }
}

void TtlCache::Publish(std::uint64_t version) {
  authoritative_version_ = version;
  obs::FlightRecorder::Record(
      sim_->NowUs(), "dnssim.ttl_cache", obs::Severity::kInfo, "publish",
      {{"version", static_cast<double>(version)},
       {"stale", static_cast<double>(StaleCount())}});
}

std::size_t TtlCache::StaleCount() const {
  std::size_t stale = 0;
  for (const std::uint64_t v : cached_version_) {
    if (v != authoritative_version_) ++stale;
  }
  return stale;
}

void TtlCache::RegisterTimeseries(obs::TimeseriesRegistry& reg) const {
  reg.RegisterSampler("dnssim.ttl_cache.stale_resolvers", [this]() {
    return static_cast<double>(StaleCount());
  });
}

void TtlCache::Refresh(std::uint32_t resolver) {
  ++stats_.refreshes;
  if (cached_version_[resolver] != authoritative_version_) {
    cached_version_[resolver] = authoritative_version_;
    ++stats_.version_updates;
  }
  const std::uint64_t k = ++refresh_index_[resolver];
  // Next refresh on the absolute grid: phase_r + (k+... ) * ttl. Re-derived
  // from the refresh index, never accumulated, so a billion refreshes stay
  // exactly on-grid.
  const netsim::SimTime next = start_us_ + phase_us_[resolver] + k * ttl_us_;
  if (next > horizon_us_) return;
  sim_->ScheduleAtUs(next, [this, resolver]() { Refresh(resolver); });
}

}  // namespace painter::dnssim
