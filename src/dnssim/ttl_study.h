// DNS TTL-violation study (§2.2, Fig. 3, Appendix A).
//
// The paper passively captured residential traffic, matched flows to the DNS
// records that produced their destination IPs, and measured how many bytes
// are sent relative to the record's expiration: 80% of bytes to "Cloud A"
// flow at least five minutes *after* the record expired, so DNS cannot
// redirect that traffic. Two mechanisms produce stale traffic (observed at a
// roughly 2:1 byte ratio): long-lived flows outliving the record, and clients
// caching the resolved IP and starting new flows after expiry.
//
// The trace synthesizer regenerates the figure from those mechanisms: flows
// arrive Poisson per client session, durations and byte volumes are heavy
// tailed (per-cloud parameters — conferencing-heavy Cloud A has much longer
// flows than web-ish Clouds B/C), each flow's bytes are spread uniformly over
// its lifetime, and each byte is bucketed by (send time - record expiry).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace painter::dnssim {

struct CloudTrafficProfile {
  std::string name;
  double ttl_seconds = 60.0;
  // Flow duration: lognormal (seconds).
  double duration_mu = 3.0;
  double duration_sigma = 1.5;
  // Per-flow throughput: lognormal (bytes/second). Flow volume is
  // throughput x duration, so long flows carry proportionally more bytes —
  // the property that makes conferencing traffic dominate Cloud A's bytes.
  double rate_mu = 9.0;   // ~8 KB/s median
  double rate_sigma = 1.0;
  // Client IP caching beyond TTL: probability a new flow reuses the stale
  // cached address rather than re-resolving, and how long caches persist.
  double stale_reuse_prob = 0.6;
  double client_cache_mean_seconds = 1800.0;
  // Poisson flow arrivals per client session per second.
  double flow_rate_per_second = 0.05;
};

// Paper-motivated parameterizations for the three large clouds of Fig. 3.
[[nodiscard]] std::vector<CloudTrafficProfile> DefaultCloudProfiles();

struct TtlStudyResult {
  std::string cloud;
  // CDF of bytes by (send time - record expiry) in seconds; negative =
  // before expiration.
  util::EmpiricalCdf bytes_by_offset;
  double total_bytes = 0.0;
  // Byte ratio of stale traffic: live-flows-past-expiry vs stale-new-flows.
  double live_past_expiry_bytes = 0.0;
  double stale_new_flow_bytes = 0.0;
};

// Synthesizes `sessions` client sessions of `session_seconds` each and
// accounts every byte against its governing DNS record.
[[nodiscard]] TtlStudyResult RunTtlStudy(const CloudTrafficProfile& profile,
                                         std::size_t sessions,
                                         double session_seconds,
                                         util::Rng& rng);

// Fraction of bytes sent at or after `offset_seconds` relative to expiry
// (the "bytes that have yet to be sent" axis of Fig. 3 at that x).
[[nodiscard]] double FractionAtOrAfter(const TtlStudyResult& result,
                                       double offset_seconds);

}  // namespace painter::dnssim
