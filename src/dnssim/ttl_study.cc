#include "dnssim/ttl_study.h"

#include <algorithm>
#include <cmath>

namespace painter::dnssim {

std::vector<CloudTrafficProfile> DefaultCloudProfiles() {
  // Cloud A: conferencing/real-time heavy — very long flows, aggressive
  // client-side caching, short TTLs. Clouds B and C: shorter, web-like flows
  // with moderate caching.
  return {
      CloudTrafficProfile{.name = "Cloud A",
                          .ttl_seconds = 60.0,
                          .duration_mu = 7.2,   // ~22 min median
                          .duration_sigma = 1.2,
                          .rate_mu = 10.5,      // conferencing bitrates
                          .rate_sigma = 0.8,
                          .stale_reuse_prob = 0.55,
                          .client_cache_mean_seconds = 5400.0,
                          .flow_rate_per_second = 0.012},
      CloudTrafficProfile{.name = "Cloud B",
                          .ttl_seconds = 120.0,
                          .duration_mu = 2.8,   // ~16 s median
                          .duration_sigma = 1.6,
                          .rate_mu = 9.0,
                          .rate_sigma = 1.0,
                          .stale_reuse_prob = 0.35,
                          .client_cache_mean_seconds = 900.0,
                          .flow_rate_per_second = 0.08},
      CloudTrafficProfile{.name = "Cloud C",
                          .ttl_seconds = 300.0,
                          .duration_mu = 2.4,
                          .duration_sigma = 1.6,
                          .rate_mu = 9.0,
                          .rate_sigma = 1.0,
                          .stale_reuse_prob = 0.4,
                          .client_cache_mean_seconds = 900.0,
                          .flow_rate_per_second = 0.10},
  };
}

TtlStudyResult RunTtlStudy(const CloudTrafficProfile& profile,
                           std::size_t sessions, double session_seconds,
                           util::Rng& rng) {
  TtlStudyResult result;
  result.cloud = profile.name;

  for (std::size_t s = 0; s < sessions; ++s) {
    // Per-session DNS state: when the current record was fetched and the
    // stale cached address (if any) the client might keep using.
    double record_fetch_time = -1.0;  // no record yet
    double cache_deadline = -1.0;     // how long the client keeps stale IPs

    double t = rng.Exponential(profile.flow_rate_per_second);
    while (t < session_seconds) {
      const double expiry = record_fetch_time + profile.ttl_seconds;
      bool stale_start = false;
      if (record_fetch_time < 0.0) {
        // First flow: resolve fresh.
        record_fetch_time = t;
        cache_deadline =
            t + rng.Exponential(1.0 / profile.client_cache_mean_seconds);
      } else if (t > expiry) {
        // Record expired. The client either keeps using the cached address
        // (TTL violation) or re-resolves.
        if (t < cache_deadline && rng.Bernoulli(profile.stale_reuse_prob)) {
          stale_start = true;  // stale new flow on the old record
        } else {
          record_fetch_time = t;
          cache_deadline =
              t + rng.Exponential(1.0 / profile.client_cache_mean_seconds);
        }
      }
      const double governing_expiry = record_fetch_time + profile.ttl_seconds;

      const double duration =
          rng.LogNormal(profile.duration_mu, profile.duration_sigma);
      const double bytes =
          duration * rng.LogNormal(profile.rate_mu, profile.rate_sigma);

      // Spread the flow's bytes over its lifetime in coarse slices and bucket
      // each slice by its offset from the governing record's expiry.
      constexpr int kSlices = 8;
      for (int k = 0; k < kSlices; ++k) {
        const double when =
            t + duration * (static_cast<double>(k) + 0.5) / kSlices;
        const double offset = when - governing_expiry;
        const double slice_bytes = bytes / kSlices;
        result.bytes_by_offset.Add(offset, slice_bytes);
        result.total_bytes += slice_bytes;
        if (offset > 0.0) {
          if (stale_start) {
            result.stale_new_flow_bytes += slice_bytes;
          } else if (t <= governing_expiry) {
            result.live_past_expiry_bytes += slice_bytes;
          } else {
            result.stale_new_flow_bytes += slice_bytes;
          }
        }
      }
      t += rng.Exponential(profile.flow_rate_per_second);
    }
  }
  return result;
}

double FractionAtOrAfter(const TtlStudyResult& result, double offset_seconds) {
  if (result.bytes_by_offset.empty()) return 0.0;
  return 1.0 - result.bytes_by_offset.FractionAtOrBelow(offset_seconds);
}

}  // namespace painter::dnssim
