// Recursive resolver population.
//
// DNS-based steering operates per recursive resolver (§2.2): a record handed
// to a resolver steers *all* of its clients. Enterprises mostly use a local
// resolver (same metro, homogeneous clients), but a large share of users sit
// behind big public resolvers serving geographically disparate UGs — the
// paper found regions with poor routing correlate with LDNS serving
// disparate users (§5.2.2), which is exactly what caps DNS steering benefit.
// One public resolver (modeled on Google Public DNS) supports ECS and can
// tailor records per client /24.
#pragma once

#include <cstdint>
#include <vector>

#include "cloudsim/deployment.h"
#include "util/rng.h"

namespace painter::dnssim {

struct ResolverConfig {
  std::uint64_t seed = 17;
  // Fraction of UGs behind a big public resolver rather than a local one.
  double public_resolver_frac = 0.50;
  std::size_t public_resolver_count = 6;
  // Of the public resolvers, how many support ECS (Google Public DNS).
  std::size_t ecs_resolver_count = 1;
  // Share of public-resolver users on the ECS-capable one.
  double ecs_user_share = 0.25;
  // Fraction of (non-public) UGs running their own on-premises resolver.
  double own_resolver_frac = 0.15;
  // Shared local resolvers per metro (ISP/enterprise-hoster resolvers).
  std::size_t locals_per_metro = 6;
};

struct ResolverAssignment {
  // resolver id per UG (dense resolver ids).
  std::vector<std::uint32_t> resolver_of_ug;
  std::vector<bool> resolver_supports_ecs;
  std::size_t resolver_count = 0;
};

// Assigns each UG to a resolver: local per-metro resolvers for most, public
// (geo-spanning) resolvers for the configured fraction.
[[nodiscard]] ResolverAssignment AssignResolvers(
    const cloudsim::Deployment& deployment, const ResolverConfig& config);

}  // namespace painter::dnssim
