#include "dnssim/resolvers.h"

#include <unordered_map>

namespace painter::dnssim {

ResolverAssignment AssignResolvers(const cloudsim::Deployment& deployment,
                                   const ResolverConfig& config) {
  util::Rng rng{config.seed};
  ResolverAssignment out;
  out.resolver_of_ug.resize(deployment.ugs().size());

  // Public resolvers first (stable ids), then one local resolver per metro
  // allocated on demand.
  out.resolver_supports_ecs.assign(config.public_resolver_count, false);
  for (std::size_t i = 0;
       i < config.ecs_resolver_count && i < config.public_resolver_count; ++i) {
    out.resolver_supports_ecs[i] = true;
  }
  // Shared local resolvers are allocated lazily per (metro, slot).
  std::unordered_map<std::uint64_t, std::uint32_t> local_of_slot;

  for (const cloudsim::UserGroup& ug : deployment.ugs()) {
    std::uint32_t resolver;
    if (rng.Bernoulli(config.public_resolver_frac) &&
        config.public_resolver_count > 0) {
      if (rng.Bernoulli(config.ecs_user_share) &&
          config.ecs_resolver_count > 0) {
        resolver = static_cast<std::uint32_t>(rng.Index(config.ecs_resolver_count));
      } else if (config.public_resolver_count > config.ecs_resolver_count) {
        resolver = static_cast<std::uint32_t>(
            config.ecs_resolver_count +
            rng.Index(config.public_resolver_count - config.ecs_resolver_count));
      } else {
        resolver = 0;
      }
    } else if (rng.Bernoulli(config.own_resolver_frac)) {
      // On-premises resolver serving only this UG.
      resolver = static_cast<std::uint32_t>(out.resolver_supports_ecs.size());
      out.resolver_supports_ecs.push_back(false);
    } else {
      const std::size_t slots = std::max<std::size_t>(1, config.locals_per_metro);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(ug.metro.value()) << 8) |
          rng.Index(slots);
      const auto [it, inserted] = local_of_slot.try_emplace(
          key, static_cast<std::uint32_t>(out.resolver_supports_ecs.size()));
      if (inserted) out.resolver_supports_ecs.push_back(false);
      resolver = it->second;
    }
    out.resolver_of_ug[ug.id.value()] = resolver;
  }
  out.resolver_count = out.resolver_supports_ecs.size();
  return out;
}

}  // namespace painter::dnssim
