// Traffic-control granularity analysis (§5.2.2, Fig. 9a).
//
// How much traffic does one "control knob" move?
//  - BGP: the finest practical knob is a targeted announcement update
//    affecting all traffic from one user AS entering via one peering — the
//    (peering, user AS) pair.
//  - DNS: a changed record affects every client of a recursive resolver.
//  - PAINTER: the TM-Edge steers individual flows.
//
// For each PoP (and overall) we bucket traffic volume by the share of that
// PoP's traffic its controlling knob moves: e.g. "64% of PoP A's traffic
// comes from (peering, AS) pairs responsible for 10-100% of the PoP's
// traffic" means BGP steering there shifts >=10% of the PoP's load en masse.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cloudsim/ingress.h"
#include "dnssim/resolvers.h"

namespace painter::dnssim {

// Buckets of knob share (fraction of PoP traffic a knob controls):
// (0] <=0.01%  (1] 0.01-0.1%  (2] 0.1-1%  (3] 1-10%  (4] 10-100%.
inline constexpr std::size_t kGranularityBuckets = 5;

struct PopGranularity {
  std::string pop_name;          // "All" for the aggregate row
  double total_volume = 0.0;
  // Fraction of the PoP's volume whose controlling knob falls in bucket i.
  std::array<double, kGranularityBuckets> bgp{};
  std::array<double, kGranularityBuckets> dns{};
  std::array<double, kGranularityBuckets> painter{};
};

struct GranularityConfig {
  // Mean flows per unit of traffic weight, for the PAINTER per-flow buckets.
  double flows_per_weight = 50.0;
  std::size_t top_pops = 10;
};

// Computes Fig. 9a's rows: the aggregate plus the top PoPs by volume. Traffic
// is assigned to PoPs by the anycast resolution.
[[nodiscard]] std::vector<PopGranularity> AnalyzeGranularity(
    const cloudsim::Deployment& deployment,
    const cloudsim::IngressResolver& resolver,
    const ResolverAssignment& resolvers, const GranularityConfig& config);

// Bucket index for a knob controlling `share` of a PoP's traffic.
[[nodiscard]] std::size_t GranularityBucket(double share);

}  // namespace painter::dnssim
