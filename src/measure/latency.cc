#include "measure/latency.h"

#include <cmath>

namespace painter::measure {

LatencyOracle::LatencyOracle(const topo::Internet& internet,
                             const cloudsim::Deployment& deployment,
                             OracleConfig config)
    : internet_(&internet), deployment_(&deployment), config_(config) {}

double LatencyOracle::LastMileMs(util::UgId ug) const {
  util::Rng rng{MixSeed(config_.seed, 0x11, ug.value())};
  return rng.LogNormal(config_.last_mile_mu, config_.last_mile_sigma);
}

double LatencyOracle::InflationFactor(util::UgId ug,
                                      util::PeeringId peering) const {
  const cloudsim::Peering& sess = deployment_->peering(peering);
  const topo::AsInfo& entry = internet_->graph.info(sess.peer);

  // Bimodal per-(UG, entry AS): a few direct ("good") paths, the rest
  // mediocre. Mediocre paths share a per-UG level (the region's interdomain
  // detours are common to most of its paths) with a small per-AS jitter, so
  // bouncing between mediocre ASes gains almost nothing. A small per-session
  // component differentiates a given AS's PoPs.
  util::Rng as_rng{MixSeed(config_.seed, 0x22, ug.value(), sess.peer.value())};
  const bool good = as_rng.Bernoulli(config_.good_path_prob);
  double mu = 0.0;
  double sigma = 0.0;
  if (good) {
    mu = config_.good_inflation_mu;
    sigma = config_.good_inflation_sigma;
  } else {
    util::Rng ug_rng{MixSeed(config_.seed, 0x77, ug.value())};
    // The per-UG mediocre level, identical across this UG's mediocre ASes.
    mu = config_.inflation_mu +
         ug_rng.Normal(0.0, config_.inflation_sigma);
    sigma = config_.mediocre_as_jitter_sigma;
  }
  if (entry.tier == topo::AsTier::kTier1 ||
      entry.tier == topo::AsTier::kTransit) {
    mu += config_.transit_inflation_bonus_mu;
  }
  if (entry.exit_policy == topo::ExitPolicy::kFixedExit) {
    mu += config_.fixed_exit_bonus_mu;
  }
  util::Rng sess_rng{MixSeed(config_.seed, 0x33, ug.value(), peering.value())};
  const double as_part = as_rng.LogNormal(mu, sigma);
  const double sess_part = sess_rng.LogNormal(0.0, 0.08);
  return std::max(1.0, as_part * sess_part);
}

util::Millis LatencyOracle::TrueRtt(util::UgId ug,
                                    util::PeeringId peering) const {
  const cloudsim::Peering& sess = deployment_->peering(peering);
  const cloudsim::UserGroup& user = deployment_->ug(ug);
  const auto& metros = internet_->metros;
  const topo::GeoPoint& a = metros[user.metro.value()].location;
  const topo::GeoPoint& b =
      metros[deployment_->pop(sess.pop).metro.value()].location;
  const double fiber_rtt = util::FiberRtt(topo::Distance(a, b)).count();
  return util::Millis{LastMileMs(ug) + fiber_rtt * InflationFactor(ug, peering) +
                      config_.session_overhead_ms};
}

util::Millis LatencyOracle::TrueRttOnDay(util::UgId ug,
                                         util::PeeringId peering,
                                         int day) const {
  double rtt = TrueRtt(ug, peering).count();
  if (day <= 0) return util::Millis{rtt};

  // A degraded regime starting on day s covers [s, s + duration). Scan the
  // possible start days that could still be active; durations are geometric
  // with a short mean, so a bounded lookback window (covering >99.9% of the
  // mass) is enough and keeps the query O(window).
  const int lookback =
      static_cast<int>(std::ceil(config_.shift_mean_duration_days * 6.0));
  for (int s = std::max(1, day - lookback); s <= day; ++s) {
    util::Rng rng{MixSeed(config_.seed, 0x44, MixSeed(ug.value(), peering.value()),
                          static_cast<std::uint64_t>(s))};
    if (!rng.Bernoulli(config_.daily_shift_prob)) continue;
    const double duration =
        1.0 + rng.Exponential(1.0 / config_.shift_mean_duration_days);
    if (day < s + static_cast<int>(duration)) {
      const double penalty =
          rng.LogNormal(config_.shift_penalty_mu, config_.shift_penalty_sigma);
      rtt *= std::max(1.0, penalty);
      break;  // one active regime at a time
    }
  }
  return util::Millis{rtt};
}

util::Millis LatencyOracle::ProbeOnce(util::UgId ug, util::PeeringId peering,
                                      util::Rng& rng, int day) const {
  const double truth = TrueRttOnDay(ug, peering, day).count();
  // Queueing/processing noise: exponential tail, occasionally a large spike.
  double noise = rng.Exponential(1.0 / 1.5);
  if (rng.Bernoulli(0.05)) noise += rng.Exponential(1.0 / 20.0);
  return util::Millis{truth + noise};
}

util::Millis LatencyOracle::MeasureMin(util::UgId ug, util::PeeringId peering,
                                       util::Rng& rng, int count,
                                       int day) const {
  double best = ProbeOnce(ug, peering, rng, day).count();
  for (int i = 1; i < count; ++i) {
    best = std::min(best, ProbeOnce(ug, peering, rng, day).count());
  }
  return util::Millis{best};
}

}  // namespace painter::measure
