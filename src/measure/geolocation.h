// Geolocation-based ingress latency estimation (Appendix B).
//
// For the Azure evaluation the paper could not advertise, so it estimated the
// latency through an ingress as the latency to a responsive IP address in the
// peer's space geolocated within GP km of the PoP. Coverage and accuracy both
// depend on the admitted geolocation uncertainty: more uncertainty covers
// more ingresses (Fig. 12a) but degrades the estimate (Fig. 12b), with the
// paper choosing GP = 450 km (~80% volume coverage, ~2 ms median error).
//
// We model each peering's best available measurement target: some sessions
// have an address right on the peering subnet (near-zero uncertainty), most
// have a crawled/geolocated address some distance away, and some have none.
// The estimated latency is the true latency perturbed by the detour implied
// by the target's displacement.
#pragma once

#include <optional>

#include "measure/latency.h"

namespace painter::measure {

struct GeoTargetConfig {
  std::uint64_t seed = 99;
  // Fraction of sessions whose peering-subnet address responds (precise).
  double precise_target_frac = 0.12;
  // Fraction with no usable target at all.
  double missing_target_frac = 0.08;
  // Remaining targets: uncertainty ~ lognormal (km).
  double uncertainty_mu = 5.6;     // exp(5.6) ~ 270 km median
  double uncertainty_sigma = 0.7;
};

struct GeoTarget {
  util::PeeringId peering;
  double uncertainty_km = 0.0;
};

class GeoTargetCatalog {
 public:
  GeoTargetCatalog(const LatencyOracle& oracle, GeoTargetConfig config);

  // The target for a session, or nullopt if none responded.
  [[nodiscard]] std::optional<GeoTarget> TargetFor(
      util::PeeringId peering) const;

  // Latency estimate through `peering` for `ug` using its target: the truth
  // plus an error that grows with the target's displacement. nullopt if the
  // session has no target or its uncertainty exceeds `max_uncertainty_km`.
  [[nodiscard]] std::optional<util::Millis> EstimateRtt(
      util::UgId ug, util::PeeringId peering,
      double max_uncertainty_km) const;

 private:
  const LatencyOracle* oracle_;
  GeoTargetConfig config_;
  std::vector<std::optional<GeoTarget>> targets_;  // indexed by peering id
};

}  // namespace painter::measure
