// Ground-truth latency model and probe measurements.
//
// The paper measures UG→ingress RTTs with pings (min of 7 to approximate
// propagation delay, §5.1.1). A reproduction has no Internet to ping, so this
// module owns the *ground truth*: a deterministic RTT for every (UG, peering)
// pair, composed of last-mile delay, great-circle fiber propagation, and a
// per-(UG, entry-AS) inflation factor — higher through transit providers,
// which the paper found "inflate routes even over very large distances"
// (§5.1.2). A probe layer adds queueing jitter on top, so min-of-N pings
// converges to the truth the way real pings do.
//
// Time variation (Fig. 7) is modelled as day-indexed multiplicative regime
// shifts: most days a path keeps its baseline; occasionally a routing change
// inflates it for a stretch of days. All draws are hash-seeded: the same
// (seed, ug, peering, day) always yields the same latency.
#pragma once

#include <cstdint>
#include <optional>

#include "cloudsim/deployment.h"
#include "topo/generator.h"
#include "util/hashmix.h"
#include "util/rng.h"
#include "util/units.h"

namespace painter::measure {

struct OracleConfig {
  std::uint64_t seed = 42;

  // Last-mile RTT, lognormal across UGs.
  double last_mile_mu = 1.4;     // exp(1.4) ~ 4 ms median
  double last_mile_sigma = 0.5;

  // Path inflation over straight fiber is *bimodal* per (UG, AS): most
  // interdomain paths are mediocre (circuitous at the AS level), while a
  // small fraction are direct. This matches the paper's finding that latency
  // gains are concentrated in a few ingresses for each user (8k UGs improved
  // through 250 of 9,000 ingresses, §5.1.1): escaping a mediocre anycast
  // path requires hitting one of the UG's few *good* ingresses — a random
  // entry-AS change (per-PoP prefixes, blanket transit announcements) just
  // lands on another mediocre path.
  // Mediocre paths are *correlated within a UG*: the region's interdomain
  // paths toward the cloud share most of their shape, so escaping a mediocre
  // anycast path by bouncing to another mediocre AS gains almost nothing —
  // only the UG's few good ingresses do.
  double good_path_prob = 0.10;
  double good_inflation_mu = 0.05;   // ~1.05x, tight
  double good_inflation_sigma = 0.12;
  double inflation_mu = 0.85;        // mediocre level, ~2.3x median, per UG
  double inflation_sigma = 0.35;     // spread of the per-UG mediocre level
  double mediocre_as_jitter_sigma = 0.10;  // per-AS wiggle around the level
  // Extra inflation applied when the entry AS is a transit/tier-1 network
  // ("transit providers tended to inflate routes even over very large
  // distances", §5.1.2). Applied to both modes.
  double transit_inflation_bonus_mu = 0.08;
  // Extra inflation when the entry AS routes with a fixed (cold-potato) exit.
  double fixed_exit_bonus_mu = 0.30;

  // Fixed per-session overhead (peering router, cloud front-end terminate).
  double session_overhead_ms = 1.0;

  // --- Temporal dynamics (Fig. 7). ---
  // Probability a (UG, peering) path enters a degraded regime on a given day.
  double daily_shift_prob = 0.04;
  // Degraded regimes last this many days on average (geometric).
  double shift_mean_duration_days = 4.0;
  // Multiplicative RTT penalty while degraded, lognormal.
  double shift_penalty_mu = 0.7;  // ~2x median
  double shift_penalty_sigma = 0.5;
};

class LatencyOracle {
 public:
  LatencyOracle(const topo::Internet& internet,
                const cloudsim::Deployment& deployment, OracleConfig config);

  // Baseline (day 0) ground-truth RTT through a peering.
  [[nodiscard]] util::Millis TrueRtt(util::UgId ug,
                                     util::PeeringId peering) const;

  // Ground-truth RTT on a given day, including regime shifts.
  [[nodiscard]] util::Millis TrueRttOnDay(util::UgId ug,
                                          util::PeeringId peering,
                                          int day) const;

  // One ping: truth plus queueing jitter (always >= truth).
  [[nodiscard]] util::Millis ProbeOnce(util::UgId ug, util::PeeringId peering,
                                       util::Rng& rng, int day = 0) const;

  // Min over `count` pings — the paper's measurement primitive.
  [[nodiscard]] util::Millis MeasureMin(util::UgId ug, util::PeeringId peering,
                                        util::Rng& rng, int count = 7,
                                        int day = 0) const;

  [[nodiscard]] const cloudsim::Deployment& deployment() const {
    return *deployment_;
  }
  [[nodiscard]] const topo::Internet& internet() const { return *internet_; }

 private:
  [[nodiscard]] double LastMileMs(util::UgId ug) const;
  [[nodiscard]] double InflationFactor(util::UgId ug,
                                       util::PeeringId peering) const;

  const topo::Internet* internet_;
  const cloudsim::Deployment* deployment_;
  OracleConfig config_;
};

// Deterministic 64-bit mix for hash-seeded draws (now in util/hashmix.h;
// alias kept since every stochastic component of the oracle uses it).
using util::MixSeed;

}  // namespace painter::measure
