#include "measure/geolocation.h"

#include <cmath>

namespace painter::measure {

GeoTargetCatalog::GeoTargetCatalog(const LatencyOracle& oracle,
                                   GeoTargetConfig config)
    : oracle_(&oracle), config_(config) {
  const auto& sessions = oracle.deployment().peerings();
  targets_.resize(sessions.size());
  for (const cloudsim::Peering& sess : sessions) {
    util::Rng rng{MixSeed(config_.seed, 0x55, sess.id.value())};
    const double u = rng.Uniform01();
    if (u < config_.missing_target_frac) {
      continue;  // unresponsive / anycast-suspected target, excluded
    }
    double uncertainty_km = 0.0;
    if (u >= config_.missing_target_frac + config_.precise_target_frac) {
      uncertainty_km =
          rng.LogNormal(config_.uncertainty_mu, config_.uncertainty_sigma);
    }
    targets_[sess.id.value()] =
        GeoTarget{.peering = sess.id, .uncertainty_km = uncertainty_km};
  }
}

std::optional<GeoTarget> GeoTargetCatalog::TargetFor(
    util::PeeringId peering) const {
  return targets_.at(peering.value());
}

std::optional<util::Millis> GeoTargetCatalog::EstimateRtt(
    util::UgId ug, util::PeeringId peering, double max_uncertainty_km) const {
  const auto target = targets_.at(peering.value());
  if (!target.has_value() || target->uncertainty_km > max_uncertainty_km) {
    return std::nullopt;
  }
  const double truth = oracle_->TrueRtt(ug, peering).count();
  // The target sits somewhere within `uncertainty_km` of the PoP, and the
  // path toward it can detour beyond the straight displacement (the paper's
  // close inspection attributed residual disagreement to inflation inside
  // the peer's AS, App. B). Error is signed: a target short of the PoP
  // underestimates, past it overestimates.
  constexpr double kDetourFactor = 1.8;
  util::Rng rng{MixSeed(config_.seed, 0x66, ug.value(), peering.value())};
  const double displacement = target->uncertainty_km * rng.Uniform01();
  const double error_rtt = util::FiberRtt(util::Km{displacement}).count() *
                           kDetourFactor * rng.Uniform(-1.0, 1.0);
  return util::Millis{std::max(0.5, truth + error_rtt)};
}

}  // namespace painter::measure
