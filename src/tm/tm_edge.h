// TM-Edge: the edge-proxy Traffic Manager node (§3.2).
//
// Sits in a cloud-edge network stack inside the enterprise. It maintains one
// tunnel per available destination prefix (resolved from the Advertisement
// Orchestrator via the control channel), continuously probes every tunnel,
// selects the best destination with hysteresis to avoid oscillation, pins
// each flow to a destination for its lifetime (immutable mapping, §3.2), and
// fails over within ~1.3 RTT when the chosen path stops answering (§5.2.3).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/link.h"
#include "netsim/packet.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "tm/tm_pop.h"
#include "util/rng.h"
#include "workload/flow_store.h"

namespace painter::tm {

struct TunnelConfig {
  std::string name;              // e.g. "2.2.2.0/24 @ PoP-A"
  netsim::IpAddr remote_ip = 0;  // destination address within the prefix
  netsim::PathModel path;        // bidirectional path to the TM-PoP
  TmPop* pop = nullptr;
  // Optional capacity-constrained forward (edge→PoP) hop. When set, packets
  // traverse it before the PathModel delay: queueing inflates measured RTT
  // and overload drops packets, which is how the TM-Edge senses congestion
  // on an ingress path (§1) without any explicit signal.
  netsim::QueuedLink* bottleneck = nullptr;
  // Optional admission hook on the forward (edge→PoP) direction: returning
  // false silently drops the packet before it enters the path. Fault
  // injection uses this for probe blackholing and lossy brownouts; the hook
  // must be deterministic in (packet, send time) — it runs before any RNG
  // draw, so a null or all-pass hook leaves behaviour bit-identical.
  std::function<bool(const netsim::Packet&, double now_s)> admit = nullptr;
};

class TmEdge {
 public:
  struct Config {
    double probe_interval_s = 0.010;
    // Failure declared when a probe goes unanswered for rtt * multiplier
    // (the paper measured typical detection at 1.3 RTT).
    double failover_rtt_multiplier = 1.3;
    double min_probe_timeout_s = 0.004;
    // Only switch destinations when the challenger is better by this margin
    // (oscillation avoidance, following [38]).
    double switch_hysteresis_ms = 3.0;
    double rtt_ewma_alpha = 0.3;
    // Multiplicative jitter applied to path delays (fraction, +/-).
    double delay_jitter = 0.05;
    std::uint64_t seed = 1;
  };

  struct Sample {
    double t = 0.0;
    int chosen = -1;  // tunnel index, -1 = none usable
    std::vector<std::optional<double>> rtt_ms;  // per tunnel; nullopt = down
  };

  struct FailoverEvent {
    double t = 0.0;
    int from = -1;
    int to = -1;
  };

  struct FlowStats {
    int tunnel = -1;
    std::size_t sent = 0;
    std::size_t delivered = 0;  // responses received by the client
  };

  // Flow table: sharded open-addressing store (flat arrays, linear probing)
  // instead of a node-based unordered_map — the pin lookup on every
  // delivered response is the TM-Edge's hottest path under load. Iterate via
  // FlowTable::SortedItems() (FlowKey order); slot order is not meaningful.
  using FlowTable = workload::FlowStore<FlowStats>;

  // Picks the tunnel a new flow is pinned to, given the edge's current
  // choice; returning a negative or out-of-range index falls back to
  // `chosen`. Installed by the workload engine for capacity-aware placement;
  // when unset, flows pin to the probing loop's chosen tunnel (the classic
  // lowest-RTT rule). Must be deterministic and must not mutate the edge.
  using FlowPlacer = std::function<int(const netsim::FlowKey& flow,
                                       int chosen)>;

  TmEdge(netsim::Simulator& sim, Config config,
         std::vector<TunnelConfig> tunnels);

  // Begins probing all tunnels and selects an initial destination.
  void Start();

  // Starts a client flow: `packets` data packets at `interval_s` spacing,
  // pinned to the destination that is best at the first packet.
  void StartFlow(const netsim::FlowKey& flow, std::size_t packets,
                 double interval_s, std::uint32_t payload_bytes = 1400);

  // Samples the per-tunnel state every `interval_s` until `until_s`.
  void SampleEvery(double interval_s, double until_s);

  [[nodiscard]] int chosen() const { return chosen_; }
  [[nodiscard]] std::size_t TunnelCount() const { return tunnels_.size(); }
  [[nodiscard]] const std::string& TunnelName(std::size_t i) const {
    return tunnels_[i].config.name;
  }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const std::vector<FailoverEvent>& failovers() const {
    return failovers_;
  }
  [[nodiscard]] const FlowTable& flows() const { return flows_; }
  [[nodiscard]] std::optional<double> TunnelRttMs(std::size_t i) const;

  void SetFlowPlacer(FlowPlacer placer) { placer_ = std::move(placer); }

 private:
  struct Tunnel {
    TunnelConfig config;
    bool up = false;
    double rtt_ewma_s = 0.0;
    bool have_rtt = false;
    std::uint64_t next_probe_id = 1;
    // probe id -> send time, for timeout detection.
    std::unordered_map<std::uint64_t, double> outstanding;
  };

  void ProbeTunnel(std::size_t i);
  void OnProbeReply(std::size_t i, std::uint64_t probe_id);
  void OnProbeTimeout(std::size_t i, std::uint64_t probe_id);
  void Reselect();
  [[nodiscard]] double ProbeTimeout(const Tunnel& t) const;
  // Sends a packet over tunnel i; schedules arrival at the TM-PoP (or drops
  // it if the path is down at send time / the bottleneck queue overflows).
  void SendViaTunnel(std::size_t i, netsim::Packet packet);
  // Hands an arrived packet to the tunnel's TM-PoP and wires the reply path.
  void DeliverToPop(std::size_t i, const netsim::Packet& packet);
  [[nodiscard]] double Jitter();

  netsim::Simulator* sim_;
  Config config_;
  std::vector<Tunnel> tunnels_;
  util::Rng rng_;
  int chosen_ = -1;
  std::vector<Sample> samples_;
  std::vector<FailoverEvent> failovers_;
  FlowTable flows_;
  FlowPlacer placer_;
};

}  // namespace painter::tm
