#include "tm/tm_edge.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace painter::tm {
namespace {

// TM telemetry. The event-driven simulator is single-threaded and seeded, so
// every one of these counts is deterministic for a given scenario config.
struct TmMetrics {
  obs::Counter& probes_sent = obs::Metrics().GetCounter("tm.edge.probes_sent");
  obs::Counter& probe_replies =
      obs::Metrics().GetCounter("tm.edge.probe_replies");
  obs::Counter& probe_timeouts =
      obs::Metrics().GetCounter("tm.edge.probe_timeouts");
  obs::Counter& tunnel_down_events =
      obs::Metrics().GetCounter("tm.edge.tunnel_down_events");
  obs::Counter& switchovers = obs::Metrics().GetCounter("tm.edge.switchovers");

  static TmMetrics& Get() {
    static TmMetrics m;
    return m;
  }
};

}  // namespace

TmEdge::TmEdge(netsim::Simulator& sim, Config config,
               std::vector<TunnelConfig> tunnels)
    : sim_(&sim), config_(config), rng_(config.seed) {
  tunnels_.reserve(tunnels.size());
  for (auto& t : tunnels) {
    Tunnel tun;
    tun.config = std::move(t);
    tunnels_.push_back(std::move(tun));
  }
}

double TmEdge::Jitter() {
  return 1.0 + config_.delay_jitter * rng_.Uniform(-1.0, 1.0);
}

void TmEdge::Start() {
  for (std::size_t i = 0; i < tunnels_.size(); ++i) ProbeTunnel(i);
}

double TmEdge::ProbeTimeout(const Tunnel& t) const {
  const double rtt = t.have_rtt ? t.rtt_ewma_s : 0.2;  // generous cold start
  return std::max(config_.min_probe_timeout_s,
                  rtt * config_.failover_rtt_multiplier);
}

void TmEdge::SendViaTunnel(std::size_t i, netsim::Packet packet) {
  Tunnel& tun = tunnels_[i];
  packet.outer = netsim::FlowKey{.src_ip = 0x0a000001,
                                 .dst_ip = tun.config.remote_ip,
                                 .src_port = 40000,
                                 .dst_port = 4500,
                                 .proto = 17};
  packet.sent_at = sim_->Now();
  if (tun.config.admit && !tun.config.admit(packet, sim_->Now())) {
    return;  // injected fault: packet swallowed before entering the path
  }
  const auto delay = tun.config.path.OneWayDelay(sim_->Now());
  if (!delay.has_value()) return;  // path down: packet lost in flight

  // Through the bottleneck hop first (queueing + possible drop), then the
  // propagation path.
  if (tun.config.bottleneck != nullptr) {
    const double path_delay = *delay * Jitter();
    tun.config.bottleneck->Send(packet, [this, i, path_delay](
                                            const netsim::Packet& p) {
      sim_->Schedule(path_delay, [this, i, p]() { DeliverToPop(i, p); });
    });
    return;
  }

  const double arrive = *delay * Jitter();
  sim_->Schedule(arrive, [this, i, packet]() { DeliverToPop(i, packet); });
}

void TmEdge::DeliverToPop(std::size_t i, const netsim::Packet& packet) {
  Tunnel& tun = tunnels_[i];
  if (tun.config.pop == nullptr) return;
  tun.config.pop->HandleArrival(packet, [this, i](netsim::Packet reply) {
    // Reverse direction over the same tunnel path.
    const auto back = tunnels_[i].config.path.OneWayDelay(sim_->Now());
    if (!back.has_value()) return;  // reply lost
    sim_->Schedule(*back * Jitter(), [this, i, reply]() {
      if (reply.kind == netsim::PacketKind::kProbeReply) {
        OnProbeReply(i, reply.probe_id);
      } else {
        // Data response delivered to the client.
        const netsim::FlowKey forward{.src_ip = reply.inner.dst_ip,
                                      .dst_ip = reply.inner.src_ip,
                                      .src_port = reply.inner.dst_port,
                                      .dst_port = reply.inner.src_port,
                                      .proto = reply.inner.proto};
        FlowStats* stats = flows_.Find(forward);
        if (stats != nullptr) ++stats->delivered;
      }
    });
  });
}

void TmEdge::ProbeTunnel(std::size_t i) {
  Tunnel& tun = tunnels_[i];
  const std::uint64_t id = tun.next_probe_id++;
  tun.outstanding.emplace(id, sim_->Now());
  TmMetrics::Get().probes_sent.Add();

  netsim::Packet probe;
  probe.kind = netsim::PacketKind::kProbe;
  probe.probe_id = id;
  probe.payload_bytes = 64;
  SendViaTunnel(i, probe);

  sim_->Schedule(ProbeTimeout(tun), [this, i, id]() { OnProbeTimeout(i, id); });
  sim_->Schedule(config_.probe_interval_s, [this, i]() { ProbeTunnel(i); });
}

void TmEdge::OnProbeReply(std::size_t i, std::uint64_t probe_id) {
  Tunnel& tun = tunnels_[i];
  const auto it = tun.outstanding.find(probe_id);
  if (it == tun.outstanding.end()) return;  // already timed out
  TmMetrics::Get().probe_replies.Add();
  const double rtt = sim_->Now() - it->second;
  tun.outstanding.erase(it);

  if (!tun.have_rtt) {
    tun.rtt_ewma_s = rtt;
    tun.have_rtt = true;
  } else {
    tun.rtt_ewma_s = config_.rtt_ewma_alpha * rtt +
                     (1.0 - config_.rtt_ewma_alpha) * tun.rtt_ewma_s;
  }
  tun.up = true;
  // Continuous selection: every fresh measurement can change the best
  // destination (rising queueing delay on the chosen path, recovery of a
  // better one). Hysteresis inside Reselect keeps near-ties from flapping.
  Reselect();
}

void TmEdge::OnProbeTimeout(std::size_t i, std::uint64_t probe_id) {
  Tunnel& tun = tunnels_[i];
  const auto it = tun.outstanding.find(probe_id);
  if (it == tun.outstanding.end()) return;  // answered in time
  TmMetrics::Get().probe_timeouts.Add();
  tun.outstanding.erase(it);
  if (tun.up) {
    tun.up = false;
    TmMetrics::Get().tunnel_down_events.Add();
    obs::FlightRecorder::Record(
        sim_->NowUs(), "tm.edge", obs::Severity::kWarn, "tunnel_down",
        {{"tunnel", static_cast<double>(i)},
         {"was_chosen", chosen_ == static_cast<int>(i) ? 1.0 : 0.0}});
    if (chosen_ == static_cast<int>(i)) Reselect();
  }
}

void TmEdge::Reselect() {
  int best = -1;
  double best_rtt = 0.0;
  for (std::size_t i = 0; i < tunnels_.size(); ++i) {
    const Tunnel& t = tunnels_[i];
    if (!t.up || !t.have_rtt) continue;
    if (best < 0 || t.rtt_ewma_s < best_rtt) {
      best = static_cast<int>(i);
      best_rtt = t.rtt_ewma_s;
    }
  }
  if (best == chosen_) return;

  // Hysteresis: keep the incumbent unless it is down or the challenger is
  // better by the configured margin.
  if (chosen_ >= 0 && tunnels_[chosen_].up && best >= 0) {
    const double margin_s = config_.switch_hysteresis_ms / 1000.0;
    if (tunnels_[chosen_].rtt_ewma_s - best_rtt < margin_s) return;
  }
  TmMetrics::Get().switchovers.Add();
  obs::FlightRecorder::Record(sim_->NowUs(), "tm.edge", obs::Severity::kInfo,
                              "switchover",
                              {{"from", static_cast<double>(chosen_)},
                               {"to", static_cast<double>(best)}});
  failovers_.push_back(FailoverEvent{sim_->Now(), chosen_, best});
  chosen_ = best;
}

void TmEdge::StartFlow(const netsim::FlowKey& flow, std::size_t packets,
                       double interval_s, std::uint32_t payload_bytes) {
  // Pin the flow to the destination that is best right now; the mapping is
  // immutable for the flow's lifetime (§3.2) — packets keep using it even if
  // a better destination appears (or this one dies). A placer (capacity-aware
  // selection) may override the probing loop's choice at pin time only.
  int target = chosen_;
  if (placer_) {
    const int picked = placer_(flow, chosen_);
    if (picked >= 0 && picked < static_cast<int>(tunnels_.size())) {
      target = picked;
    }
  }
  FlowStats& stats = flows_.Upsert(flow);
  stats.tunnel = target;
  if (stats.tunnel < 0) return;  // nothing usable; flow fails to start

  for (std::size_t k = 0; k < packets; ++k) {
    sim_->Schedule(interval_s * static_cast<double>(k),
                   [this, flow, payload_bytes]() {
                     FlowStats* stats = flows_.Find(flow);
                     if (stats == nullptr || stats->tunnel < 0) return;
                     netsim::Packet p;
                     p.kind = netsim::PacketKind::kData;
                     p.inner = flow;
                     p.payload_bytes = payload_bytes;
                     ++stats->sent;
                     SendViaTunnel(static_cast<std::size_t>(stats->tunnel), p);
                   });
  }
}

std::optional<double> TmEdge::TunnelRttMs(std::size_t i) const {
  const Tunnel& t = tunnels_.at(i);
  if (!t.up || !t.have_rtt) return std::nullopt;
  return t.rtt_ewma_s * 1000.0;
}

void TmEdge::SampleEvery(double interval_s, double until_s) {
  if (sim_->Now() > until_s) return;
  Sample s;
  s.t = sim_->Now();
  s.chosen = chosen_;
  for (std::size_t i = 0; i < tunnels_.size(); ++i) {
    s.rtt_ms.push_back(TunnelRttMs(i));
  }
  samples_.push_back(std::move(s));
  sim_->Schedule(interval_s,
                 [this, interval_s, until_s]() { SampleEvery(interval_s, until_s); });
}

}  // namespace painter::tm
