#include "tm/congestion_scenario.h"

#include <algorithm>

namespace painter::tm {

CongestionScenarioResult RunCongestionScenario(
    const CongestionScenarioConfig& config) {
  netsim::Simulator sim;

  TmPop pop_a{sim, "PoP-A", {0x02020202}};
  TmPop pop_b{sim, "PoP-B", {0x03030303}};
  netsim::QueuedLink bottleneck{sim, config.bottleneck};

  std::vector<TunnelConfig> tunnels;
  tunnels.push_back(TunnelConfig{
      .name = "preferred (bottlenecked)",
      .remote_ip = 0x02020202,
      .path = netsim::PathModel::Fixed(config.preferred_delay_s),
      .pop = &pop_a,
      .bottleneck = &bottleneck,
      .admit = {}});
  tunnels.push_back(TunnelConfig{
      .name = "alternate (clean)",
      .remote_ip = 0x03030303,
      .path = netsim::PathModel::Fixed(config.alternate_delay_s),
      .pop = &pop_b,
      .bottleneck = nullptr,
      .admit = {}});

  TmEdge edge{sim, config.edge, std::move(tunnels)};
  edge.Start();
  edge.SampleEvery(config.sample_every_s, config.run_for_s);

  // Background cross-traffic: packets pushed straight into the bottleneck at
  // overload_factor x capacity during the congestion window.
  const double pkt_interval =
      config.cross_packet_bytes /
      (config.bottleneck.bandwidth_bytes_per_s * config.overload_factor);
  std::function<void()> pump = [&]() {
    const double now = sim.Now();
    if (now >= config.congest_until_s) return;
    if (now >= config.congest_from_s) {
      netsim::Packet cross;
      cross.kind = netsim::PacketKind::kData;
      cross.payload_bytes =
          static_cast<std::uint32_t>(config.cross_packet_bytes);
      bottleneck.Send(cross, [](const netsim::Packet&) {});
    }
    sim.Schedule(pkt_interval, pump);
  };
  sim.ScheduleAt(config.congest_from_s, pump);

  sim.Run(config.run_for_s);

  CongestionScenarioResult result;
  for (std::size_t i = 0; i < edge.TunnelCount(); ++i) {
    result.tunnel_names.push_back(edge.TunnelName(i));
  }
  result.samples = edge.samples();
  result.switches = edge.failovers();
  result.bottleneck_drops = bottleneck.stats().dropped;

  // Summaries per phase.
  double peak = 0.0;
  for (const auto& s : result.samples) {
    const auto& rtt = s.rtt_ms[0];
    if (!rtt.has_value()) continue;
    if (s.t < config.congest_from_s) {
      result.rtt_before_ms = *rtt;
    } else if (s.t < config.congest_until_s) {
      peak = std::max(peak, *rtt);
    } else if (s.t > config.congest_until_s + 5.0) {
      result.rtt_after_ms = *rtt;
    }
  }
  result.rtt_during_peak_ms = peak;

  // Steering: chosen moved 0 -> 1 during congestion, then back to 0.
  bool away = false;
  for (const auto& s : result.samples) {
    if (s.t >= config.congest_from_s && s.t < config.congest_until_s &&
        s.chosen == 1) {
      away = true;
    }
    if (away && s.t > config.congest_until_s + 5.0 && s.chosen == 0) {
      result.steered_back = true;
    }
  }
  result.steered_away = away;
  return result;
}

}  // namespace painter::tm
