// Control channel: resolving available destinations (§3.2).
//
// "Each TM-Edge resolves the set of available TM-PoPs via communication with
// an Azure service. TM-Edge queries TM-PoP for the available set of ingress
// IP addresses for each service... Upon establishing tunnels with each
// available destination, each TM-Edge identifies the TM-PoP it communicates
// with along that tunnel" — the destination→PoP mapping is discovered, not
// computed a priori, because a reused prefix lives at several PoPs at once.
//
// The directory is fed by the Advertisement Orchestrator when it installs a
// configuration; services may be restricted to a subset of PoPs.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/advertisement.h"
#include "cloudsim/deployment.h"

namespace painter::tm {

class PrefixDirectory {
 public:
  explicit PrefixDirectory(const cloudsim::Deployment& deployment);

  // Installs the current advertisement configuration (orchestrator side).
  void Install(const core::AdvertisementConfig& config);

  // Restricts a service to a set of PoPs (empty = served everywhere).
  void RestrictService(util::ServiceId service, std::vector<util::PopId> pops);

  // Destinations (prefix indices) usable for a service: prefixes announced
  // at one or more of the service's PoPs. The anycast prefix (index -1 by
  // convention) is always available and not included here.
  [[nodiscard]] std::vector<std::size_t> DestinationsFor(
      util::ServiceId service) const;

  // PoPs at which a prefix is announced (a reused prefix has several).
  [[nodiscard]] std::vector<util::PopId> PopsOfPrefix(std::size_t prefix) const;

  [[nodiscard]] std::size_t PrefixCount() const { return pops_of_prefix_.size(); }

 private:
  const cloudsim::Deployment* deployment_;
  std::vector<std::vector<util::PopId>> pops_of_prefix_;
  std::unordered_map<util::ServiceId, std::vector<util::PopId>> restrictions_;
};

}  // namespace painter::tm
