#include "tm/control.h"

#include <algorithm>

namespace painter::tm {

PrefixDirectory::PrefixDirectory(const cloudsim::Deployment& deployment)
    : deployment_(&deployment) {}

void PrefixDirectory::Install(const core::AdvertisementConfig& config) {
  pops_of_prefix_.assign(config.PrefixCount(), {});
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    std::unordered_set<std::uint32_t> pops;
    for (util::PeeringId sid : config.Sessions(p)) {
      pops.insert(deployment_->peering(sid).pop.value());
    }
    auto& list = pops_of_prefix_[p];
    list.reserve(pops.size());
    for (std::uint32_t v : pops) list.push_back(util::PopId{v});
    std::sort(list.begin(), list.end());
  }
}

void PrefixDirectory::RestrictService(util::ServiceId service,
                                      std::vector<util::PopId> pops) {
  std::sort(pops.begin(), pops.end());
  restrictions_[service] = std::move(pops);
}

std::vector<std::size_t> PrefixDirectory::DestinationsFor(
    util::ServiceId service) const {
  const auto it = restrictions_.find(service);
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < pops_of_prefix_.size(); ++p) {
    if (pops_of_prefix_[p].empty()) continue;
    if (it == restrictions_.end() || it->second.empty()) {
      out.push_back(p);
      continue;
    }
    const bool overlap = std::any_of(
        pops_of_prefix_[p].begin(), pops_of_prefix_[p].end(),
        [&](util::PopId pop) {
          return std::binary_search(it->second.begin(), it->second.end(), pop);
        });
    if (overlap) out.push_back(p);
  }
  return out;
}

std::vector<util::PopId> PrefixDirectory::PopsOfPrefix(
    std::size_t prefix) const {
  return pops_of_prefix_.at(prefix);
}

}  // namespace painter::tm
