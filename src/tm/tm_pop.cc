#include "tm/tm_pop.h"

#include <utility>

namespace painter::tm {

TmPop::TmPop(netsim::Simulator& sim, std::string name,
             std::vector<netsim::IpAddr> addresses, double service_delay_s)
    : sim_(&sim),
      name_(std::move(name)),
      nat_(std::move(addresses)),
      service_delay_s_(service_delay_s) {}

void TmPop::HandleArrival(const netsim::Packet& packet,
                          std::function<void(netsim::Packet)> send_back) {
  if (packet.kind == netsim::PacketKind::kProbe) {
    ++stats_.probe_packets;
    netsim::Packet reply = packet;
    reply.kind = netsim::PacketKind::kProbeReply;
    reply.outer.reset();
    send_back(reply);
    return;
  }

  ++stats_.data_packets;
  // Decapsulate and NAT the inner flow so the service's response comes back
  // to this TM-PoP (not directly to the client).
  const auto binding = nat_.Bind(packet.inner);
  if (!binding.has_value()) {
    ++stats_.nat_exhaustions;
    return;  // drop: no NAT capacity
  }

  // Relay to the service and return the response after the intra-cloud
  // round trip. The response is looked up in the Known Flows table and
  // re-encapsulated toward the TM-Edge.
  netsim::Packet request = packet;
  request.outer.reset();
  sim_->Schedule(service_delay_s_, [this, request,
                                    send_back = std::move(send_back),
                                    b = *binding]() {
    const auto client = nat_.Lookup(b.nat_ip, b.nat_port);
    if (!client.has_value()) return;  // binding released mid-flight
    netsim::Packet response;
    response.kind = netsim::PacketKind::kData;
    response.inner = netsim::FlowKey{.src_ip = client->dst_ip,
                                     .dst_ip = client->src_ip,
                                     .src_port = client->dst_port,
                                     .dst_port = client->src_port,
                                     .proto = client->proto};
    response.payload_bytes = request.payload_bytes;
    response.sent_at = sim_->Now();
    ++stats_.responses_sent;
    send_back(response);
  });
}

}  // namespace painter::tm
