// Congestion steering scenario.
//
// PAINTER's second headline problem (besides path inflation) is congestion
// (§1, §3.1): a previously-best ingress path can degrade when a shared
// bottleneck fills. The TM-Edge sees the queueing delay in its probe RTTs —
// no explicit congestion signal exists — and steers new flows to an
// alternate prefix once the inflated RTT crosses the hysteresis margin,
// returning after the bottleneck drains.
//
// Scenario: two PAINTER prefixes; the preferred one (lower base RTT)
// traverses a capacity-constrained hop. Background cross-traffic saturates
// that hop during [congest_from_s, congest_until_s).
#pragma once

#include <string>
#include <vector>

#include "tm/tm_edge.h"

namespace painter::tm {

struct CongestionScenarioConfig {
  double run_for_s = 90.0;
  double congest_from_s = 30.0;
  double congest_until_s = 60.0;
  double sample_every_s = 0.5;

  double preferred_delay_s = 0.012;  // one-way, through the bottleneck
  double alternate_delay_s = 0.020;  // one-way, clean path

  netsim::QueuedLink::Config bottleneck{
      .propagation_s = 0.0,  // propagation lives in the PathModel
      .bandwidth_bytes_per_s = 12.5e6,
      .queue_limit_bytes = 400'000,
  };
  // Cross-traffic intensity while congested, as a multiple of capacity.
  double overload_factor = 1.4;
  double cross_packet_bytes = 1400.0;

  TmEdge::Config edge;
};

struct CongestionScenarioResult {
  std::vector<std::string> tunnel_names;
  std::vector<TmEdge::Sample> samples;
  std::vector<TmEdge::FailoverEvent> switches;
  // RTT on the preferred tunnel before / during / after congestion (ms).
  double rtt_before_ms = 0.0;
  double rtt_during_peak_ms = 0.0;
  double rtt_after_ms = 0.0;
  // Whether the TM-Edge moved to the alternate while congested and back.
  bool steered_away = false;
  bool steered_back = false;
  std::uint64_t bottleneck_drops = 0;
};

[[nodiscard]] CongestionScenarioResult RunCongestionScenario(
    const CongestionScenarioConfig& config);

}  // namespace painter::tm
