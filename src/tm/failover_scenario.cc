#include "tm/failover_scenario.h"

#include <memory>

#include "netsim/path.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace painter::tm {

FailoverScenarioResult RunFailoverScenario(
    const FailoverScenarioConfig& config) {
  const obs::TraceSpan span{"tm.RunFailoverScenario"};
  netsim::Simulator sim;

  TmPop pop_a{sim, "PoP-A", {0x02020202}};
  TmPop pop_b{sim, "PoP-B", {0x03030303}};

  std::vector<TunnelConfig> tunnels;
  // Tunnel 0: anycast (1.1.1.0/24). Before failure it lands at PoP-A; after
  // the blackhole it re-emerges at PoP-B with a transient path, settling
  // once BGP converges. The TM-PoP behind it changes with the reroute; for
  // the latency/selection dynamics what matters is the path profile, so we
  // keep PoP-B as its host after failure via a piecewise path and route the
  // pre-failure segment to PoP-A's address space.
  tunnels.push_back(TunnelConfig{
      .name = "1.1.1.0/24 anycast",
      .remote_ip = 0x01010101,
      .path = netsim::PathModel::Piecewise({
          {.start_s = 0.0, .delay_s = config.anycast_delay_before_s},
          {.start_s = config.fail_at_s, .delay_s = std::nullopt},
          {.start_s = config.fail_at_s + config.anycast_unreachable_s,
           .delay_s = config.anycast_delay_during_s},
          {.start_s = config.fail_at_s + config.anycast_converge_s,
           .delay_s = config.anycast_delay_after_s},
      }),
      .pop = &pop_b});
  // Tunnel 1: the chosen unicast prefix at PoP-A; dies at fail_at_s.
  tunnels.push_back(TunnelConfig{
      .name = "2.2.2.0/24 @ PoP-A",
      .remote_ip = 0x02020202,
      .path = netsim::PathModel::UpThenDown(config.chosen_delay_s,
                                            config.fail_at_s),
      .pop = &pop_a});
  // Remaining tunnels: single-transit prefixes at PoP-B, unaffected.
  for (std::size_t k = 0; k < config.alt_delays_s.size(); ++k) {
    tunnels.push_back(TunnelConfig{
        .name = std::to_string(k + 3) + "." + std::to_string(k + 3) + "." +
                std::to_string(k + 3) + ".0/24 @ PoP-B",
        .remote_ip = 0x03030300u + static_cast<netsim::IpAddr>(k),
        .path = netsim::PathModel::Fixed(config.alt_delays_s[k]),
        .pop = &pop_b});
  }

  TmEdge edge{sim, config.edge, std::move(tunnels)};
  edge.Start();
  edge.SampleEvery(config.sample_every_s, config.run_for_s);

  // Client traffic: a long-lived flow started shortly after boot (it will be
  // pinned to the pre-failure best and break when PoP-A dies, per the
  // immutable-mapping rule) and a fresh flow after the failure (lands on the
  // new best).
  sim.Schedule(1.0, [&edge, &config]() {
    edge.StartFlow(netsim::FlowKey{.src_ip = 0xc0a80001,
                                   .dst_ip = 0x08080808,
                                   .src_port = 5001,
                                   .dst_port = 443},
                   config.flow_packets, config.flow_packet_interval_s);
  });
  sim.Schedule(config.fail_at_s + 5.0, [&edge]() {
    edge.StartFlow(netsim::FlowKey{.src_ip = 0xc0a80001,
                                   .dst_ip = 0x08080808,
                                   .src_port = 5002,
                                   .dst_port = 443},
                   200, 0.05);
  });

  sim.Run(config.run_for_s);

  FailoverScenarioResult result;
  for (std::size_t i = 0; i < edge.TunnelCount(); ++i) {
    result.tunnel_names.push_back(edge.TunnelName(i));
  }
  result.samples = edge.samples();
  result.failovers = edge.failovers();
  result.pop_a_data_packets = pop_a.stats().data_packets;
  result.pop_b_data_packets = pop_b.stats().data_packets;

  // Detection: the first failover away from tunnel 1 after the failure.
  for (const auto& ev : edge.failovers()) {
    if (ev.t >= config.fail_at_s && ev.from == 1) {
      result.detection_delay_s = ev.t - config.fail_at_s;
      result.failover_target = ev.to;
      break;
    }
  }

  // Paper §5.2 frames detection latency in units of the dead path's RTT
  // (2 × one-way delay); export both forms plus the switchover count.
  obs::Metrics()
      .GetGauge("tm.failover.detection_ms")
      .Set(result.detection_delay_s * 1000.0);
  if (config.chosen_delay_s > 0.0) {
    obs::Metrics()
        .GetGauge("tm.failover.detection_rtts")
        .Set(result.detection_delay_s / (2.0 * config.chosen_delay_s));
  }
  obs::Metrics()
      .GetGauge("tm.failover.switchovers")
      .Set(static_cast<double>(result.failovers.size()));
  return result;
}

}  // namespace painter::tm
