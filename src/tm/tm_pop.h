// TM-PoP: the cloud-side Traffic Manager node (§3.2, Appendix D).
//
// Lives at a PoP, integrated with the front-ends: decapsulates tunneled
// client traffic, NATs the inner flow into the cloud (storing the client in
// the Known Flows table so responses return through the tunnel), relays to
// the service, and re-encapsulates responses back to the TM-Edge. Probes are
// answered immediately without touching the NAT.
#pragma once

#include <functional>
#include <string>

#include "netsim/nat.h"
#include "netsim/packet.h"
#include "netsim/sim.h"

namespace painter::tm {

class TmPop {
 public:
  struct Stats {
    std::size_t data_packets = 0;
    std::size_t probe_packets = 0;
    std::size_t nat_exhaustions = 0;
    std::size_t responses_sent = 0;
  };

  TmPop(netsim::Simulator& sim, std::string name,
        std::vector<netsim::IpAddr> addresses,
        double service_delay_s = 0.0005);

  // Handles a packet that arrived through a tunnel. `send_back` delivers a
  // response packet onto the reverse tunnel path (the caller models the
  // path); it is invoked when the TM-PoP emits the response.
  void HandleArrival(const netsim::Packet& packet,
                     std::function<void(netsim::Packet)> send_back);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] netsim::NatTable& nat() { return nat_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  netsim::Simulator* sim_;
  std::string name_;
  netsim::NatTable nat_;
  double service_delay_s_;
  Stats stats_;
};

}  // namespace painter::tm
