#include "bgpsim/engine.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "obs/metrics.h"

namespace painter::bgpsim {

bool Preferred(const Route& a, const Route& b) {
  if (!a.reachable) return false;
  if (!b.reachable) return true;
  if (a.learned_from != b.learned_from) return a.learned_from < b.learned_from;
  if (a.path_length != b.path_length) return a.path_length < b.path_length;
  return a.next_hop < b.next_hop;
}

std::vector<util::AsId> RoutingOutcome::Path(util::AsId as) const {
  std::vector<util::AsId> path;
  if (!Reachable(as)) return path;
  util::AsId cur = as;
  // Guard against malformed chains; a valid path is at most as_count hops.
  for (std::size_t guard = 0; guard <= routes_.size(); ++guard) {
    const Route& r = routes_.at(cur.value());
    if (!r.reachable) return {};
    path.push_back(r.next_hop);
    if (r.next_hop == origin_) return path;
    cur = r.next_hop;
  }
  throw std::logic_error{"RoutingOutcome::Path: forwarding loop"};
}

std::optional<util::AsId> RoutingOutcome::EntryAs(util::AsId as) const {
  const auto path = Path(as);
  if (path.size() < 2) {
    // Path == [origin]: `as` itself is adjacent to the origin.
    return Reachable(as) ? std::optional<util::AsId>{as} : std::nullopt;
  }
  return path[path.size() - 2];
}

BgpEngine::BgpEngine(const topo::AsGraph& graph) : graph_(&graph) {
  rel_.resize(graph.size());
  for (std::uint32_t v = 0; v < graph.size(); ++v) {
    const util::AsId id{v};
    auto& row = rel_[v];
    for (util::AsId c : graph.customers(id)) row.emplace_back(c.value(), Rel::kCustomer);
    for (util::AsId p : graph.peers(id)) row.emplace_back(p.value(), Rel::kPeer);
    for (util::AsId p : graph.providers(id)) row.emplace_back(p.value(), Rel::kProvider);
    std::sort(row.begin(), row.end());
  }
}

BgpEngine::Rel BgpEngine::RelOf(util::AsId a, util::AsId b) const {
  const auto& row = rel_[a.value()];
  const auto it = std::lower_bound(
      row.begin(), row.end(), std::make_pair(b.value(), Rel::kNone),
      [](const auto& x, const auto& y) { return x.first < y.first; });
  if (it == row.end() || it->first != b.value()) return Rel::kNone;
  return it->second;
}

RoutingOutcome BgpEngine::Propagate(const Announcement& ann) const {
  // Sharded counter: Propagate runs from ParallelFor workers during ingress
  // resolution, so this must not contend on a shared cell.
  static obs::Counter& propagations =
      obs::Metrics().GetCounter("bgpsim.propagations");
  propagations.Add();
  const topo::AsGraph& g = *graph_;
  RoutingOutcome out{g.size(), ann.origin};

  // Validate and dedupe the receiving-neighbor set. Sort+unique instead of a
  // per-element linear scan: announcements can list hundreds of sessions, and
  // the stable outcome is seed-order independent (route selection keeps the
  // max under the strict `Preferred` order, and each BFS level dedupes), so
  // reordering the seeds cannot change the result.
  std::vector<util::AsId> seeds;
  seeds.reserve(ann.to_neighbors.size());
  for (util::AsId n : ann.to_neighbors) {
    if (RelOf(ann.origin, n) == Rel::kNone) {
      throw std::invalid_argument{
          "Propagate: announcement to non-adjacent neighbor"};
    }
    seeds.push_back(n);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  auto consider = [&](util::AsId as, const Route& cand) {
    Route& cur = out.MutableRoute(as);
    if (Preferred(cand, cur)) {
      cur = cand;
      return true;
    }
    return false;
  };

  // --- Phase 1: customer routes climb provider links. ---
  // Seeds: neighbors for which the origin is a customer (i.e. the origin's
  // providers, among the selected receivers).
  //
  // Level-synchronized BFS so that an AS's route is final before it exports;
  // within a level all candidates compete under the full decision process.
  std::vector<util::AsId> frontier;
  for (util::AsId n : seeds) {
    if (RelOf(n, ann.origin) == Rel::kCustomer) {
      Route r{.reachable = true,
              .learned_from = LearnedFrom::kCustomer,
              .path_length = 1,
              .next_hop = ann.origin};
      if (consider(n, r)) frontier.push_back(n);
    }
  }
  while (!frontier.empty()) {
    // Collect candidate updates for the next level, then commit the best.
    std::vector<util::AsId> next;
    for (util::AsId u : frontier) {
      const Route& ru = out.RouteAt(u);
      for (util::AsId prov : g.providers(u)) {
        Route cand{.reachable = true,
                   .learned_from = LearnedFrom::kCustomer,
                   .path_length = ru.path_length + 1,
                   .next_hop = u};
        if (consider(prov, cand)) next.push_back(prov);
      }
    }
    // Dedupe: an AS updated twice in a level should appear once.
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
  }

  // --- Phase 2: peer routes cross exactly one peer link. ---
  // Direct peers of the origin among the seeds:
  std::vector<std::pair<util::AsId, Route>> peer_cands;
  for (util::AsId n : seeds) {
    if (RelOf(n, ann.origin) == Rel::kPeer) {
      peer_cands.emplace_back(n, Route{.reachable = true,
                                       .learned_from = LearnedFrom::kPeer,
                                       .path_length = 1,
                                       .next_hop = ann.origin});
    }
  }
  // ASes with customer routes export them to peers.
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const Route& r = out.RouteAt(util::AsId{v});
    if (!r.reachable || r.learned_from != LearnedFrom::kCustomer) continue;
    for (util::AsId peer : g.peers(util::AsId{v})) {
      peer_cands.emplace_back(peer,
                              Route{.reachable = true,
                                    .learned_from = LearnedFrom::kPeer,
                                    .path_length = r.path_length + 1,
                                    .next_hop = util::AsId{v}});
    }
  }
  for (const auto& [as, cand] : peer_cands) consider(as, cand);

  // --- Phase 3: routes descend provider->customer links. ---
  // Origin's selected customers learn directly from their provider (origin).
  frontier.clear();
  for (util::AsId n : seeds) {
    if (RelOf(n, ann.origin) == Rel::kProvider) {
      // From n's perspective the origin is its provider.
      Route r{.reachable = true,
              .learned_from = LearnedFrom::kProvider,
              .path_length = 1,
              .next_hop = ann.origin};
      if (consider(n, r)) frontier.push_back(n);
    }
  }
  // Every AS holding any route exports it to customers. BFS by levels over
  // path length; customer/peer-routed ASes are all sources at their existing
  // lengths. To keep level semantics we expand from all routed ASes, shortest
  // paths first, using a simple monotone worklist keyed by candidate length.
  std::deque<util::AsId> work;
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    if (out.Reachable(util::AsId{v})) work.push_back(util::AsId{v});
  }
  for (util::AsId f : frontier) work.push_back(f);
  // Bellman-Ford-style relaxation: provider routes can only lengthen down a
  // DAG (provider->customer edges), so this terminates quickly.
  while (!work.empty()) {
    const util::AsId u = work.front();
    work.pop_front();
    const Route ru = out.RouteAt(u);
    if (!ru.reachable) continue;
    for (util::AsId cust : g.customers(u)) {
      Route cand{.reachable = true,
                 .learned_from = LearnedFrom::kProvider,
                 .path_length = ru.path_length + 1,
                 .next_hop = u};
      if (consider(cust, cand)) work.push_back(cust);
    }
  }

  return out;
}

}  // namespace painter::bgpsim
