// Exact counting of valley-free paths to an origin.
//
// Fig. 11a's upper bound is "All Policy-Compliant Paths": every distinct
// Gao–Rexford-valid AS path a hypothetical orchestrator could expose with
// advertisement attributes (prepending etc., [100]). Enumerating them is
// exponential, but *counting* is linear: a valley-free path is
// up* (peer)? down*, so per-AS suffix counts factor into three dynamic
// programs over the relationship DAG:
//
//   D(v) = suffixes that only descend   (provider→customer edges)
//   A(v) = suffixes from the path apex  (down, or one peer edge then down)
//   U(v) = suffixes that may still climb (customer→provider edges)
//
// Counts use double (they grow combinatorially; exactness beyond 2^53 is
// irrelevant for a CDF of differences).
#pragma once

#include <vector>

#include "topo/as_graph.h"
#include "util/ids.h"

namespace painter::bgpsim {

struct PathCounts {
  // Indexed by AS id value; number of valley-free paths to the origin.
  std::vector<double> total;
};

// Counts valley-free paths from every AS to `origin`, where `origin`'s
// adjacencies (providers / peers / customers as recorded in the graph) are
// the entry edges. ASes with no valid path have count 0.
[[nodiscard]] PathCounts CountValleyFreePaths(const topo::AsGraph& graph,
                                              util::AsId origin);

}  // namespace painter::bgpsim
