#include "bgpsim/dynamics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace painter::bgpsim {
namespace {

// Collects the set of ASes whose stable route used a withdrawn edge, i.e.
// everyone who must re-converge. An AS is affected if its path's entry AS
// (the origin-adjacent hop) lost its direct announcement, or if any upstream
// hop on its path is itself affected.
std::vector<util::AsId> AffectedAses(const topo::AsGraph& g,
                                     const RoutingOutcome& before,
                                     const std::unordered_set<std::uint32_t>&
                                         lost_direct) {
  std::vector<util::AsId> affected;
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const util::AsId as{v};
    if (!before.Reachable(as)) continue;
    const auto entry = before.EntryAs(as);
    if (entry.has_value() && lost_direct.contains(entry->value())) {
      affected.push_back(as);
    }
  }
  return affected;
}

}  // namespace

ConvergenceTrace SimulateWithdrawal(const BgpEngine& engine,
                                    const Announcement& before_ann,
                                    const Announcement& after_ann,
                                    util::AsId observer,
                                    const ConvergenceParams& params,
                                    util::Rng& rng) {
  const obs::TraceSpan span{"bgpsim.SimulateWithdrawal"};
  const topo::AsGraph& g = engine.graph();
  const RoutingOutcome before = engine.Propagate(before_ann);
  const RoutingOutcome after = engine.Propagate(after_ann);

  // Which neighbors lost their direct session announcement.
  std::unordered_set<std::uint32_t> kept;
  for (util::AsId n : after_ann.to_neighbors) kept.insert(n.value());
  std::unordered_set<std::uint32_t> lost_direct;
  for (util::AsId n : before_ann.to_neighbors) {
    if (!kept.contains(n.value())) lost_direct.insert(n.value());
  }

  const std::vector<util::AsId> affected =
      AffectedAses(g, before, lost_direct);

  static obs::Counter& simulations =
      obs::Metrics().GetCounter("bgpsim.convergence.simulations");
  static obs::Counter& affected_ases =
      obs::Metrics().GetCounter("bgpsim.convergence.affected_ases");
  simulations.Add();
  affected_ases.Add(affected.size());

  ConvergenceTrace trace;

  // Path exploration: an affected AS at distance d from the withdrawal point
  // learns of the failure after d hop-delays, then emits updates in MRAI-paced
  // waves while it walks down its preference list. The number of exploration
  // steps shrinks as the new stable route is closer in preference to the old
  // one; we bound it by the AS's degree (it can try each neighbor once).
  double worst_converged = 0.0;
  for (util::AsId as : affected) {
    const Route& old_route = before.RouteAt(as);
    const double jitter =
        1.0 + params.hop_delay_jitter * (rng.Uniform01() - 0.5) * 2.0;
    const double notify_time =
        static_cast<double>(old_route.path_length) *
        params.hop_delay_seconds * jitter;

    const std::size_t degree = g.providers(as).size() + g.peers(as).size() +
                               g.customers(as).size();
    // Exploration steps: a few for well-connected ASes, at least one.
    const std::size_t steps =
        std::max<std::size_t>(1, std::min<std::size_t>(degree, 1 + rng.Index(4)));
    for (std::size_t k = 0; k < steps; ++k) {
      const double t = notify_time +
                       static_cast<double>(k) * params.mrai_seconds *
                           (0.75 + 0.5 * rng.Uniform01());
      // Each exploration step sends an update to each neighbor session.
      trace.events.push_back(UpdateEvent{t, degree});
      worst_converged = std::max(worst_converged, t);
    }
  }
  std::sort(trace.events.begin(), trace.events.end(),
            [](const UpdateEvent& a, const UpdateEvent& b) {
              return a.time_seconds < b.time_seconds;
            });
  static obs::Counter& update_waves =
      obs::Metrics().GetCounter("bgpsim.convergence.update_waves");
  update_waves.Add(trace.events.size());

  // Observer reachability: unreachable from the withdrawal until the wave of
  // withdrawals reaches it AND it selects its post-withdrawal route. If its
  // route did not traverse a withdrawn edge, there is no gap.
  const bool observer_affected =
      std::find(affected.begin(), affected.end(), observer) != affected.end();
  if (observer_affected && after.Reachable(observer)) {
    const Route& new_route = after.RouteAt(observer);
    // Downtime =~ time for the withdrawal to propagate to the observer plus
    // one decision round; alternate-path announcements race in behind it.
    trace.reachable_again_seconds =
        static_cast<double>(before.RouteAt(observer).path_length) *
            params.hop_delay_seconds +
        static_cast<double>(new_route.path_length) * params.hop_delay_seconds;
  } else if (observer_affected) {
    trace.reachable_again_seconds = -1.0;  // never: no alternate route
  }
  trace.converged_seconds = worst_converged;
  return trace;
}

}  // namespace painter::bgpsim
