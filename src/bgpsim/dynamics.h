// BGP convergence dynamics after a withdrawal.
//
// Fig. 10 contrasts PAINTER's RTT-timescale failover with anycast
// reconvergence: after the chosen PoP's prefixes are withdrawn, the anycast
// address is unreachable for ~1 s, and RIPE RIS collectors see an update
// spike that decays over ~15 s as ASes explore alternate paths under MRAI
// pacing. We model that process explicitly: each AS whose best route died
// re-runs the decision process, withdraws/advertises to neighbors on an MRAI
// timer, and the trace of (time, update count) plus the reachability gap are
// the figure's right axis and red region.
#pragma once

#include <cstdint>
#include <vector>

#include "bgpsim/engine.h"
#include "util/rng.h"
#include "util/units.h"

namespace painter::bgpsim {

struct ConvergenceParams {
  // Min route advertisement interval; real routers default to ~30 s for eBGP
  // but widely deploy much smaller values; we use seconds-scale pacing which
  // reproduces the observed ~15 s convergence tail.
  double mrai_seconds = 2.0;
  // Per-hop propagation/processing delay for an update message.
  double hop_delay_seconds = 0.15;
  double hop_delay_jitter = 0.5;  // multiplicative jitter, +/- fraction
};

struct UpdateEvent {
  double time_seconds;   // since the withdrawal
  std::size_t updates;   // BGP update messages emitted in this wave
};

struct ConvergenceTrace {
  // Waves of update messages (for the "# BGP updates" axis of Fig. 10).
  std::vector<UpdateEvent> events;
  // When the observer AS regained any route (the loss-of-reachability gap).
  double reachable_again_seconds = 0.0;
  // When the observer AS's route stopped changing (full convergence).
  double converged_seconds = 0.0;
};

// Simulates reconvergence for `observer` after the origin withdraws the
// announcement edges in `withdrawn` from configuration `before` -> `after`.
//
// `before`/`after` are stable outcomes computed by BgpEngine for the full and
// post-withdrawal announcements; the dynamics model fills in the transient:
// ASes whose paths traversed withdrawn edges explore progressively worse
// alternatives (path exploration), each exploration step paced by MRAI.
[[nodiscard]] ConvergenceTrace SimulateWithdrawal(
    const BgpEngine& engine, const Announcement& before_ann,
    const Announcement& after_ann, util::AsId observer,
    const ConvergenceParams& params, util::Rng& rng);

}  // namespace painter::bgpsim
