#include "bgpsim/session_sim.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace painter::bgpsim {
namespace {

// Total order over candidate routes at a node: relationship class, then
// AS-path length, then lowest neighbor id — identical to the static engine.
struct Candidate {
  LearnedFrom cls;
  std::uint32_t length;
  std::uint32_t neighbor;
};

bool Better(const Candidate& a, const Candidate& b) {
  if (a.cls != b.cls) return a.cls < b.cls;
  if (a.length != b.length) return a.length < b.length;
  return a.neighbor < b.neighbor;
}

}  // namespace

MessageLevelSim::MessageLevelSim(const topo::AsGraph& graph, util::AsId origin,
                                 netsim::Simulator& sim, Params params)
    : graph_(&graph),
      origin_(origin),
      sim_(&sim),
      params_(params),
      rng_(params.seed),
      nodes_(graph.size()) {}

MessageLevelSim::Rel MessageLevelSim::RelOf(util::AsId a, util::AsId b) const {
  const auto& custs = graph_->customers(a);
  if (std::find(custs.begin(), custs.end(), b) != custs.end()) {
    return Rel::kCustomer;
  }
  const auto& peers = graph_->peers(a);
  if (std::find(peers.begin(), peers.end(), b) != peers.end()) {
    return Rel::kPeer;
  }
  const auto& provs = graph_->providers(a);
  if (std::find(provs.begin(), provs.end(), b) != provs.end()) {
    return Rel::kProvider;
  }
  return Rel::kNone;
}

LearnedFrom MessageLevelSim::ClassOf(util::AsId self, util::AsId from) const {
  switch (RelOf(self, from)) {
    case Rel::kCustomer:
      return LearnedFrom::kCustomer;
    case Rel::kPeer:
      return LearnedFrom::kPeer;
    default:
      return LearnedFrom::kProvider;
  }
}

void MessageLevelSim::Announce(const std::vector<util::AsId>& to_neighbors) {
  std::size_t sent = 0;
  for (util::AsId n : to_neighbors) {
    SendMessage(origin_, n, PathRoute{{origin_}});
    ++sent;
  }
  if (sent > 0) churn_log_.emplace_back(sim_->Now(), sent);
}

void MessageLevelSim::Withdraw(const std::vector<util::AsId>& from_neighbors) {
  std::size_t sent = 0;
  for (util::AsId n : from_neighbors) {
    SendMessage(origin_, n, std::nullopt);
    ++sent;
  }
  if (sent > 0) churn_log_.emplace_back(sim_->Now(), sent);
}

void MessageLevelSim::RegisterTimeseries(obs::TimeseriesRegistry& reg) const {
  reg.RegisterSampler("bgpsim.session.processed_msgs", [this]() {
    return static_cast<double>(processed_);
  });
}

void MessageLevelSim::SendMessage(util::AsId from, util::AsId to,
                                  std::optional<PathRoute> route) {
  const double jitter =
      1.0 + params_.hop_jitter * (rng_.Uniform01() - 0.5) * 2.0;
  const double delay = params_.hop_delay_s * jitter;
  sim_->Schedule(delay, [this, from, to, route = std::move(route)]() {
    Receive(to, from, route);
  });
}

void MessageLevelSim::Receive(util::AsId self, util::AsId from,
                              std::optional<PathRoute> route) {
  ++processed_;
  static obs::Counter& messages =
      obs::Metrics().GetCounter("bgpsim.session.messages_processed");
  messages.Add();
  Node& node = nodes_[self.value()];

  if (route.has_value()) {
    // AS-path loop prevention: a route already containing us is unusable —
    // treat like a withdrawal from that neighbor.
    const bool loops =
        std::find(route->path.begin(), route->path.end(), self) !=
        route->path.end();
    if (loops) {
      node.adj_in.erase(from.value());
    } else {
      node.adj_in[from.value()] = *route;
    }
  } else {
    node.adj_in.erase(from.value());
  }
  Reselect(self);
}

void MessageLevelSim::Reselect(util::AsId self) {
  Node& node = nodes_[self.value()];

  bool found = false;
  Candidate best_cand{LearnedFrom::kProvider, 0, 0};
  const PathRoute* best_route = nullptr;
  for (const auto& [neighbor, route] : node.adj_in) {
    const Candidate cand{ClassOf(self, util::AsId{neighbor}), route.Length(),
                         neighbor};
    if (!found || Better(cand, best_cand)) {
      found = true;
      best_cand = cand;
      best_route = &route;
    }
  }

  const bool changed =
      found != node.has_best ||
      (found && (node.best.path != best_route->path));
  if (!changed) return;

  node.has_best = found;
  if (found) {
    node.best = *best_route;
  } else {
    node.best.path.clear();
  }

  // Withdrawals are not MRAI-delayed (RFC 4271 §9.2.1.1): any neighbor that
  // can no longer receive our route hears about it immediately. Iterate in
  // sorted neighbor order, not hash order: each SendMessage draws jitter from
  // the shared RNG, so the send order is part of the deterministic event
  // schedule (DESIGN.md determinism rule).
  std::vector<std::uint32_t> advertised_neighbors;
  advertised_neighbors.reserve(node.advertised_to.size());
  for (const auto& [neighbor, was_advertised] : node.advertised_to) {
    if (was_advertised) advertised_neighbors.push_back(neighbor);
  }
  std::sort(advertised_neighbors.begin(), advertised_neighbors.end());
  std::size_t withdrawals = 0;
  for (const std::uint32_t neighbor : advertised_neighbors) {
    if (!node.has_best || !ShouldExport(self, util::AsId{neighbor})) {
      SendMessage(self, util::AsId{neighbor}, std::nullopt);
      node.advertised_to[neighbor] = false;
      ++withdrawals;
    }
  }
  if (withdrawals > 0) churn_log_.emplace_back(sim_->Now(), withdrawals);

  ScheduleFlush(self);
}

bool MessageLevelSim::ShouldExport(util::AsId self, util::AsId to) const {
  const Node& node = nodes_[self.value()];
  if (!node.has_best) return false;
  // Split horizon: never export back toward the next hop.
  if (!node.best.path.empty() && node.best.path.front() == to) return false;
  if (to == origin_) return false;
  // Valley-free export: customer-learned routes go everywhere; peer- and
  // provider-learned routes go only to customers.
  const LearnedFrom cls = ClassOf(self, node.best.path.front());
  if (cls == LearnedFrom::kCustomer) return true;
  return RelOf(self, to) == Rel::kCustomer;
}

void MessageLevelSim::ScheduleFlush(util::AsId self) {
  Node& node = nodes_[self.value()];
  if (node.flush_scheduled) return;
  node.flush_scheduled = true;
  const double at = std::max(sim_->Now(), node.mrai_ready_at);
  sim_->ScheduleAt(at, [this, self]() { Flush(self); });
}

void MessageLevelSim::Flush(util::AsId self) {
  Node& node = nodes_[self.value()];
  node.flush_scheduled = false;

  std::size_t sent = 0;
  // Neighbors = union of all adjacency kinds.
  auto consider = [&](util::AsId neighbor) {
    const bool want = ShouldExport(self, neighbor);
    auto& advertised = node.advertised_to[neighbor.value()];
    if (want) {
      // (Re-)announce our best with ourselves prepended.
      PathRoute exported;
      exported.path.reserve(node.best.path.size() + 1);
      exported.path.push_back(self);
      exported.path.insert(exported.path.end(), node.best.path.begin(),
                           node.best.path.end());
      SendMessage(self, neighbor, std::move(exported));
      advertised = true;
      ++sent;
    } else if (advertised) {
      SendMessage(self, neighbor, std::nullopt);
      advertised = false;
      ++sent;
    }
  };
  for (util::AsId n : graph_->customers(self)) consider(n);
  for (util::AsId n : graph_->peers(self)) consider(n);
  for (util::AsId n : graph_->providers(self)) consider(n);

  if (sent > 0) {
    churn_log_.emplace_back(sim_->Now(), sent);
    node.mrai_ready_at =
        sim_->Now() + params_.mrai_s * (0.75 + 0.5 * rng_.Uniform01());
  }
}

std::optional<MessageLevelSim::PathRoute> MessageLevelSim::BestRoute(
    util::AsId as) const {
  const Node& node = nodes_[as.value()];
  if (!node.has_best) return std::nullopt;
  return node.best;
}

bool MessageLevelSim::Reachable(util::AsId as) const {
  return nodes_[as.value()].has_best;
}

std::optional<Route> MessageLevelSim::BestAsEngineRoute(util::AsId as) const {
  const Node& node = nodes_[as.value()];
  if (!node.has_best) return std::nullopt;
  return Route{.reachable = true,
               .learned_from = ClassOf(as, node.best.path.front()),
               .path_length = node.best.Length(),
               .next_hop = node.best.path.front()};
}

}  // namespace painter::bgpsim
