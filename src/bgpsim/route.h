// BGP route and announcement types.
//
// The Advertisement Orchestrator's primitive operation is "announce prefix P
// via this subset of the cloud's interconnections" (§3.1). At the AS level an
// announcement is the origin AS plus the set of neighbor ASes that receive it;
// the PoP at which a neighbor receives it is tracked by cloudsim, since BGP
// policy operates per AS while ingress selection operates per PoP.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace painter::bgpsim {

// Relationship class of the neighbor a route was learned from, in standard
// local-preference order: routes from customers are preferred over routes
// from peers over routes from providers (Gao–Rexford).
enum class LearnedFrom : std::uint8_t { kCustomer = 0, kPeer = 1, kProvider = 2 };

struct Route {
  bool reachable = false;
  LearnedFrom learned_from = LearnedFrom::kProvider;
  // Number of AS hops to the origin (next_hop chain length).
  std::uint32_t path_length = 0;
  // The neighbor this AS forwards to.
  util::AsId next_hop;
};

struct Announcement {
  util::PrefixId prefix;
  util::AsId origin;
  // Neighbors of `origin` that receive the announcement. Duplicates are
  // ignored; neighbors not adjacent to origin are rejected by the engine.
  std::vector<util::AsId> to_neighbors;
};

// Returns true if `a` is strictly preferred to `b` under the standard BGP
// decision process: local preference (relationship), then shortest AS path,
// then lowest next-hop id as the deterministic tie-break.
[[nodiscard]] bool Preferred(const Route& a, const Route& b);

}  // namespace painter::bgpsim
