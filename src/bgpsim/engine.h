// Static interdomain routing engine.
//
// Computes, for one announcement, the stable Gao–Rexford routing outcome for
// every AS: which neighbor it forwards through and the full AS path. The
// computation is the standard three-phase propagation over the relationship
// hierarchy:
//
//   1. customer routes climb provider links (an AS learns from its customer),
//   2. peer routes cross a single peer link,
//   3. remaining routes descend provider->customer links,
//
// which yields exactly the valley-free routes BGP export policies permit, with
// each AS applying local-pref (customer > peer > provider), AS-path length,
// and a deterministic tie-break. This is the "BGP routes by nature encode
// policy-compliant routes" substrate the paper's ingress inference relies on
// (§3.1), and the mechanism by which anycast picks latency-oblivious — and
// sometimes badly inflated — ingresses (§2.2).
#pragma once

#include <optional>
#include <vector>

#include "bgpsim/route.h"
#include "topo/as_graph.h"

namespace painter::bgpsim {

// Stable routing state for one prefix: a route (or unreachable) per AS.
class RoutingOutcome {
 public:
  explicit RoutingOutcome(std::size_t as_count, util::AsId origin)
      : origin_(origin), routes_(as_count) {}

  [[nodiscard]] const Route& RouteAt(util::AsId as) const {
    return routes_.at(as.value());
  }
  [[nodiscard]] bool Reachable(util::AsId as) const {
    return routes_.at(as.value()).reachable;
  }

  // Full AS path from `as` (exclusive) to the origin (inclusive). Empty if
  // unreachable. The first element adjacent to the origin is the entry AS —
  // the neighbor whose peering the traffic ingresses through.
  [[nodiscard]] std::vector<util::AsId> Path(util::AsId as) const;

  // The cloud-adjacent AS on `as`'s path (last element before origin), i.e.
  // the AS whose peering with the cloud carries the traffic in.
  [[nodiscard]] std::optional<util::AsId> EntryAs(util::AsId as) const;

  [[nodiscard]] util::AsId origin() const { return origin_; }

  Route& MutableRoute(util::AsId as) { return routes_.at(as.value()); }

 private:
  util::AsId origin_;
  std::vector<Route> routes_;
};

class BgpEngine {
 public:
  explicit BgpEngine(const topo::AsGraph& graph);

  // Computes the stable outcome for `ann`. Throws std::invalid_argument if a
  // listed neighbor is not adjacent to the origin.
  [[nodiscard]] RoutingOutcome Propagate(const Announcement& ann) const;

  [[nodiscard]] const topo::AsGraph& graph() const { return *graph_; }

 private:
  enum class Rel : std::uint8_t { kNone, kCustomer, kPeer, kProvider };
  // Relationship of `b` from `a`'s point of view (b is a's customer, ...).
  [[nodiscard]] Rel RelOf(util::AsId a, util::AsId b) const;

  const topo::AsGraph* graph_;
  // Dense adjacency-relationship matrix is too big; use per-AS sorted vectors.
  std::vector<std::vector<std::pair<std::uint32_t, Rel>>> rel_;
};

}  // namespace painter::bgpsim
