#include "bgpsim/path_count.h"

#include <algorithm>
#include <functional>

namespace painter::bgpsim {

PathCounts CountValleyFreePaths(const topo::AsGraph& graph,
                                util::AsId origin) {
  const std::size_t n = graph.size();
  enum class State : std::uint8_t { kUnvisited, kInProgress, kDone };

  // D(v): only provider→customer hops remain. Terminal: the origin is a
  // direct customer of v.
  std::vector<double> d(n, 0.0);
  std::vector<State> d_state(n, State::kUnvisited);
  std::function<double(util::AsId)> down = [&](util::AsId v) -> double {
    auto& st = d_state[v.value()];
    if (st == State::kDone) return d[v.value()];
    if (st == State::kInProgress) return 0.0;  // defensive: cycle guard
    st = State::kInProgress;
    double acc = 0.0;
    for (util::AsId c : graph.customers(v)) {
      if (c == origin) {
        acc += 1.0;
      } else {
        acc += down(c);
      }
    }
    d[v.value()] = acc;
    st = State::kDone;
    return acc;
  };

  // A(v): at the apex — descend directly, terminate across a peer edge to
  // the origin, or cross one peer edge and then descend.
  auto apex = [&](util::AsId v) -> double {
    double acc = down(v);
    for (util::AsId p : graph.peers(v)) {
      if (p == origin) {
        acc += 1.0;
      } else {
        acc += down(p);
      }
    }
    // Direct provider edge to the origin (origin is v's customer) is already
    // inside down(v); direct customer edge (origin is v's provider) is an
    // *up* hop and handled in U.
    return acc;
  };

  // U(v): may still climb. Terminal up-hop: the origin is v's provider.
  std::vector<double> u(n, 0.0);
  std::vector<State> u_state(n, State::kUnvisited);
  std::function<double(util::AsId)> up = [&](util::AsId v) -> double {
    auto& st = u_state[v.value()];
    if (st == State::kDone) return u[v.value()];
    if (st == State::kInProgress) return 0.0;  // cycle guard
    st = State::kInProgress;
    double acc = apex(v);
    for (util::AsId q : graph.providers(v)) {
      if (q == origin) {
        acc += 1.0;
      } else {
        acc += up(q);
      }
    }
    u[v.value()] = acc;
    st = State::kDone;
    return acc;
  };

  PathCounts out;
  out.total.assign(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (util::AsId{v} == origin) continue;
    out.total[v] = up(util::AsId{v});
  }
  return out;
}

}  // namespace painter::bgpsim
