// Message-level BGP simulation.
//
// The static engine (engine.h) computes the Gao–Rexford fixpoint directly;
// this module reaches the same fixpoint the way real routers do — UPDATE and
// WITHDRAW messages over sessions, per-AS Adj-RIB-In, AS-path loop
// prevention, best-path selection, export filtering, and MRAI-paced
// re-advertisement. Two things need it:
//
//  - validation: at quiescence the chosen route at every AS must match the
//    static engine (a strong cross-check of both implementations), and
//  - dynamics: withdrawing a PoP's announcements produces *real* path
//    exploration and update churn, the right axis of Fig. 10, including the
//    transient use of longer policy-valid routes while convergence runs.
//
// The event loop is netsim::Simulator; per-hop propagation delay and MRAI
// are configurable, with deterministic seeded jitter.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgpsim/route.h"
#include "netsim/sim.h"
#include "topo/as_graph.h"
#include "util/rng.h"

namespace painter::obs {
class TimeseriesRegistry;
}  // namespace painter::obs

namespace painter::bgpsim {

class MessageLevelSim {
 public:
  struct Params {
    double hop_delay_s = 0.05;   // session propagation + processing
    double hop_jitter = 0.3;     // +/- fraction on each message
    double mrai_s = 2.0;         // min route advertisement interval per AS
    std::uint64_t seed = 1;
  };

  // A route as carried in UPDATE messages: the full AS path (loop
  // prevention) ending at the origin.
  struct PathRoute {
    std::vector<util::AsId> path;  // path[0] = sender ... back() = origin
    [[nodiscard]] std::uint32_t Length() const {
      return static_cast<std::uint32_t>(path.size());
    }
  };

  MessageLevelSim(const topo::AsGraph& graph, util::AsId origin,
                  netsim::Simulator& sim, Params params);

  // Origin-side operations: announce to / withdraw from direct neighbors at
  // the simulator's current time.
  void Announce(const std::vector<util::AsId>& to_neighbors);
  void Withdraw(const std::vector<util::AsId>& from_neighbors);

  // Current best route of an AS (nullopt if it has none).
  [[nodiscard]] std::optional<PathRoute> BestRoute(util::AsId as) const;
  [[nodiscard]] bool Reachable(util::AsId as) const;

  // Relationship class / selection metadata of the current best, matching
  // the static engine's Route for cross-validation.
  [[nodiscard]] std::optional<Route> BestAsEngineRoute(util::AsId as) const;

  // Total UPDATE/WITHDRAW messages processed so far.
  [[nodiscard]] std::uint64_t MessagesProcessed() const { return processed_; }

  // (time, messages emitted) per flush — the churn series.
  [[nodiscard]] const std::vector<std::pair<double, std::size_t>>& ChurnLog()
      const {
    return churn_log_;
  }

  // Registers a `bgpsim.session.processed_msgs` sampled series on `reg`
  // (cumulative messages processed; churn rate is its discrete derivative).
  // The sampler reads this sim; `reg` must not outlive it.
  void RegisterTimeseries(obs::TimeseriesRegistry& reg) const;

 private:
  enum class Rel : std::uint8_t { kNone, kCustomer, kPeer, kProvider };

  struct Node {
    // Adj-RIB-In: best route heard from each neighbor (value absent = none).
    std::unordered_map<std::uint32_t, PathRoute> adj_in;
    // Currently selected best (empty path = none).
    PathRoute best;
    bool has_best = false;
    // What we last advertised to each neighbor (true = announced).
    std::unordered_map<std::uint32_t, bool> advertised_to;
    double mrai_ready_at = 0.0;
    bool flush_scheduled = false;
  };

  [[nodiscard]] Rel RelOf(util::AsId a, util::AsId b) const;
  [[nodiscard]] LearnedFrom ClassOf(util::AsId self, util::AsId from) const;

  // Message arrival at `self` from `from`; `route` empty => withdraw.
  void Receive(util::AsId self, util::AsId from,
               std::optional<PathRoute> route);
  // Re-runs best-path selection; schedules an export flush if best changed.
  void Reselect(util::AsId self);
  void ScheduleFlush(util::AsId self);
  void Flush(util::AsId self);
  void SendMessage(util::AsId from, util::AsId to,
                   std::optional<PathRoute> route);
  [[nodiscard]] bool ShouldExport(util::AsId self, util::AsId to) const;

  const topo::AsGraph* graph_;
  util::AsId origin_;
  netsim::Simulator* sim_;
  Params params_;
  util::Rng rng_;
  std::vector<Node> nodes_;
  std::uint64_t processed_ = 0;
  std::vector<std::pair<double, std::size_t>> churn_log_;
};

}  // namespace painter::bgpsim
