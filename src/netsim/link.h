// Capacity-constrained links with queueing.
//
// PAINTER "mitigates network problems such as path inflation and congestion"
// (§1): the TM-Edge's continuous RTT measurements see queueing delay build up
// on a congested ingress path and steer new flows away. This link model adds
// the missing piece to PathModel's pure propagation delay: a FIFO service
// queue with finite capacity, so offered load above the drain rate inflates
// RTT smoothly and eventually drops packets.
#pragma once

#include <cstdint>

#include "netsim/packet.h"
#include "netsim/sim.h"

namespace painter::netsim {

class QueuedLink {
 public:
  struct Config {
    double propagation_s = 0.010;  // one-way propagation delay
    double bandwidth_bytes_per_s = 12.5e6;  // 100 Mbit/s
    std::uint32_t queue_limit_bytes = 250'000;  // ~20 ms at 100 Mbit/s
  };

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bytes_delivered = 0;
  };

  QueuedLink(Simulator& sim, Config config);

  // Sends a packet; `deliver` runs at arrival time, or never if the queue
  // overflows. Returns false on drop.
  bool Send(const Packet& packet, std::function<void(const Packet&)> deliver);

  // Degrades (factor < 1) or restores (factor = 1) the effective drain rate:
  // a brownout on the ingress hop serves the same queue with less capacity,
  // so RTT inflates and drops start earlier. Applies to subsequent sends;
  // already-queued bytes keep their departure times. Factor must be > 0.
  void SetCapacityFactor(double factor);
  [[nodiscard]] double CapacityFactor() const { return capacity_factor_; }

  // Queueing delay a packet sent now would experience (excl. propagation).
  [[nodiscard]] double CurrentQueueingDelay() const;

  // Instantaneous queue occupancy in bytes.
  [[nodiscard]] std::uint32_t QueuedBytes() const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void Drain(double now);

  [[nodiscard]] double EffectiveBandwidth() const {
    return config_.bandwidth_bytes_per_s * capacity_factor_;
  }

  Simulator* sim_;
  Config config_;
  Stats stats_;
  double capacity_factor_ = 1.0;
  // The transmit queue is modelled analytically: busy_until_ is when the
  // serializer frees up; queued bytes = what it still has to push.
  double busy_until_ = 0.0;
};

}  // namespace painter::netsim
