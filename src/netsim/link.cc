#include "netsim/link.h"

#include <algorithm>

namespace painter::netsim {

QueuedLink::QueuedLink(Simulator& sim, Config config)
    : sim_(&sim), config_(config) {}

double QueuedLink::CurrentQueueingDelay() const {
  return std::max(0.0, busy_until_ - sim_->Now());
}

std::uint32_t QueuedLink::QueuedBytes() const {
  return static_cast<std::uint32_t>(CurrentQueueingDelay() *
                                    config_.bandwidth_bytes_per_s);
}

bool QueuedLink::Send(const Packet& packet,
                      std::function<void(const Packet&)> deliver) {
  const double now = sim_->Now();
  const double wire_bytes = static_cast<double>(packet.WireBytes());

  if (QueuedBytes() + packet.WireBytes() > config_.queue_limit_bytes) {
    ++stats_.dropped;
    return false;
  }

  const double start = std::max(now, busy_until_);
  const double serialize = wire_bytes / config_.bandwidth_bytes_per_s;
  busy_until_ = start + serialize;

  const double arrive_at = busy_until_ + config_.propagation_s;
  ++stats_.delivered;
  stats_.bytes_delivered += packet.WireBytes();
  sim_->ScheduleAt(arrive_at, [packet, deliver = std::move(deliver)]() {
    deliver(packet);
  });
  return true;
}

}  // namespace painter::netsim
