#include "netsim/link.h"

#include <algorithm>
#include <stdexcept>

namespace painter::netsim {

QueuedLink::QueuedLink(Simulator& sim, Config config)
    : sim_(&sim), config_(config) {}

void QueuedLink::SetCapacityFactor(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument{"SetCapacityFactor: factor must be > 0"};
  }
  capacity_factor_ = factor;
}

double QueuedLink::CurrentQueueingDelay() const {
  return std::max(0.0, busy_until_ - sim_->Now());
}

std::uint32_t QueuedLink::QueuedBytes() const {
  return static_cast<std::uint32_t>(CurrentQueueingDelay() *
                                    EffectiveBandwidth());
}

bool QueuedLink::Send(const Packet& packet,
                      std::function<void(const Packet&)> deliver) {
  const double now = sim_->Now();
  const double wire_bytes = static_cast<double>(packet.WireBytes());

  if (QueuedBytes() + packet.WireBytes() > config_.queue_limit_bytes) {
    ++stats_.dropped;
    return false;
  }

  const double start = std::max(now, busy_until_);
  const double serialize = wire_bytes / EffectiveBandwidth();
  busy_until_ = start + serialize;

  const double arrive_at = busy_until_ + config_.propagation_s;
  ++stats_.delivered;
  stats_.bytes_delivered += packet.WireBytes();
  sim_->ScheduleAt(arrive_at, [packet, deliver = std::move(deliver)]() {
    deliver(packet);
  });
  return true;
}

}  // namespace painter::netsim
