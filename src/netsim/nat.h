// The TM-PoP "Known Flows" NAT table (Appendix D).
//
// TM-PoP NATs decapsulated client traffic so that service responses return
// through the tunnel rather than directly to the client: the client's source
// IP and port are stored, keyed by the allocated (TM-PoP IP, port). Each
// TM-PoP IP address serves 65k connections; the table spans multiple
// addresses and reports exhaustion explicitly.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "netsim/packet.h"

namespace painter::netsim {

class NatTable {
 public:
  // `external_ips`: the TM-PoP's addresses; capacity = 65535 ports per IP.
  explicit NatTable(std::vector<IpAddr> external_ips);

  struct Binding {
    IpAddr nat_ip = 0;
    Port nat_port = 0;
  };

  // Returns the existing binding for the inner flow, or allocates one.
  // nullopt = table exhausted.
  [[nodiscard]] std::optional<Binding> Bind(const FlowKey& inner);

  // Looks up the client flow for return traffic addressed to (ip, port).
  [[nodiscard]] std::optional<FlowKey> Lookup(IpAddr nat_ip,
                                              Port nat_port) const;

  // Removes a binding (flow ended); false if it did not exist.
  bool Release(const FlowKey& inner);

  [[nodiscard]] std::size_t ActiveBindings() const { return forward_.size(); }
  [[nodiscard]] std::size_t Capacity() const {
    return external_ips_.size() * kPortsPerIp;
  }

  static constexpr std::size_t kPortsPerIp = 65535;

 private:
  std::vector<IpAddr> external_ips_;
  std::size_t next_slot_ = 0;  // round-robin allocation cursor
  std::unordered_map<FlowKey, Binding> forward_;
  // (ip, port) packed -> inner flow.
  std::unordered_map<std::uint64_t, FlowKey> reverse_;

  static std::uint64_t Pack(IpAddr ip, Port port) {
    return (static_cast<std::uint64_t>(ip) << 16) | port;
  }
};

}  // namespace painter::netsim
