#include "netsim/path.h"

#include <stdexcept>

namespace painter::netsim {

PathModel PathModel::Fixed(double delay_s) {
  return PathModel{[delay_s](double) { return std::optional<double>{delay_s}; }};
}

PathModel PathModel::UpThenDown(double delay_s, double down_at_s) {
  return PathModel{[delay_s, down_at_s](double now) -> std::optional<double> {
    if (now >= down_at_s) return std::nullopt;
    return delay_s;
  }};
}

PathModel PathModel::Piecewise(std::vector<Segment> segments) {
  if (segments.empty()) {
    throw std::invalid_argument{"Piecewise: no segments"};
  }
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].start_s < segments[i - 1].start_s) {
      throw std::invalid_argument{"Piecewise: segments out of order"};
    }
  }
  return PathModel{[segs = std::move(segments)](
                       double now) -> std::optional<double> {
    if (now < segs.front().start_s) return std::nullopt;  // not yet up
    // Last segment whose start <= now.
    const Segment* cur = &segs.front();
    for (const Segment& s : segs) {
      if (s.start_s <= now) cur = &s;
      else break;
    }
    return cur->delay_s;
  }};
}

PathModel PathModel::Overlay(PathModel base, OverlayFn overlay) {
  if (!overlay) {
    throw std::invalid_argument{"Overlay: empty overlay function"};
  }
  return PathModel{[base = std::move(base), overlay = std::move(overlay)](
                       double now) -> std::optional<double> {
    return overlay(now, base.OneWayDelay(now));
  }};
}

}  // namespace painter::netsim
