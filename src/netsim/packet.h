// Packets and flow identification.
//
// The Traffic Manager's tunneling mechanism (Appendix D) works on 5-tuples:
// the TM-Edge encapsulates client packets in UDP datagrams addressed to an
// ingress prefix; the TM-PoP decapsulates, NATs the inner flow (storing the
// client's address and port in a Known Flows table), and relays to the
// service. A Packet here carries the inner client 5-tuple and, while inside
// a tunnel, the outer UDP 5-tuple.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>

#include "util/hashmix.h"

namespace painter::netsim {

using IpAddr = std::uint32_t;  // IPv4 address as an integer
using Port = std::uint16_t;

struct FlowKey {
  IpAddr src_ip = 0;
  IpAddr dst_ip = 0;
  Port src_port = 0;
  Port dst_port = 0;
  std::uint8_t proto = 6;  // TCP by default

  friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

// Full-width 64-bit fingerprint of a flow key. The sharded flow-pinning
// store (workload/flow_store.h) derives both the shard index (high bits) and
// the in-shard probe start (low bits) from one value, so the mix quality
// matters more than for std::hash (which feeds bucketed unordered_maps and
// is left untouched to preserve their iteration orders).
[[nodiscard]] constexpr std::uint64_t FlowKeyFingerprint(const FlowKey& k) {
  const std::uint64_t addrs =
      (static_cast<std::uint64_t>(k.src_ip) << 32) | k.dst_ip;
  const std::uint64_t rest = (static_cast<std::uint64_t>(k.src_port) << 32) |
                             (static_cast<std::uint64_t>(k.dst_port) << 8) |
                             k.proto;
  return util::MixSeed(addrs, rest);
}

enum class PacketKind : std::uint8_t {
  kData,
  kProbe,      // TM path measurement request
  kProbeReply,
};

struct Packet {
  PacketKind kind = PacketKind::kData;
  FlowKey inner;                  // client 5-tuple (or probe endpoints)
  std::optional<FlowKey> outer;   // UDP encapsulation while tunneled
  std::uint32_t payload_bytes = 0;
  std::uint64_t probe_id = 0;     // for kProbe/kProbeReply matching
  double sent_at = 0.0;           // stamped by the sender

  // Appendix D: the UDP encapsulation adds ~16 bytes per packet.
  static constexpr std::uint32_t kEncapOverheadBytes = 16;

  [[nodiscard]] std::uint32_t WireBytes() const {
    return payload_bytes + (outer.has_value() ? kEncapOverheadBytes : 0);
  }
};

}  // namespace painter::netsim

namespace std {
template <>
struct hash<painter::netsim::FlowKey> {
  size_t operator()(const painter::netsim::FlowKey& k) const noexcept {
    std::uint64_t a = (static_cast<std::uint64_t>(k.src_ip) << 32) | k.dst_ip;
    std::uint64_t b = (static_cast<std::uint64_t>(k.src_port) << 24) |
                      (static_cast<std::uint64_t>(k.dst_port) << 8) | k.proto;
    a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
    return static_cast<size_t>(a);
  }
};
}  // namespace std
