#include "netsim/nat.h"

#include <stdexcept>

namespace painter::netsim {

NatTable::NatTable(std::vector<IpAddr> external_ips)
    : external_ips_(std::move(external_ips)) {
  if (external_ips_.empty()) {
    throw std::invalid_argument{"NatTable: needs at least one external IP"};
  }
}

std::optional<NatTable::Binding> NatTable::Bind(const FlowKey& inner) {
  if (const auto it = forward_.find(inner); it != forward_.end()) {
    return it->second;
  }
  if (forward_.size() >= Capacity()) return std::nullopt;

  // Round-robin over (ip, port) slots, skipping occupied ones. Ports start
  // at 1 (0 is reserved).
  const std::size_t total = Capacity();
  for (std::size_t attempt = 0; attempt < total; ++attempt) {
    const std::size_t slot = next_slot_;
    next_slot_ = (next_slot_ + 1) % total;
    const IpAddr ip = external_ips_[slot / kPortsPerIp];
    const Port port = static_cast<Port>(slot % kPortsPerIp + 1);
    if (reverse_.contains(Pack(ip, port))) continue;
    const Binding b{ip, port};
    forward_.emplace(inner, b);
    reverse_.emplace(Pack(ip, port), inner);
    return b;
  }
  return std::nullopt;
}

std::optional<FlowKey> NatTable::Lookup(IpAddr nat_ip, Port nat_port) const {
  const auto it = reverse_.find(Pack(nat_ip, nat_port));
  if (it == reverse_.end()) return std::nullopt;
  return it->second;
}

bool NatTable::Release(const FlowKey& inner) {
  const auto it = forward_.find(inner);
  if (it == forward_.end()) return false;
  reverse_.erase(Pack(it->second.nat_ip, it->second.nat_port));
  forward_.erase(it);
  return true;
}

}  // namespace painter::netsim
