// Discrete-event simulator core — the single clock for every component.
//
// A minimal, deterministic event loop: handlers scheduled at absolute times,
// FIFO among equal timestamps (insertion order breaks ties, so runs are
// reproducible). The Traffic Manager prototype (Fig. 10) runs on top of
// this — probes, tunnels, NAT, timers, failure injection — and so do the
// workload engine's admission ticks, DNS TTL refresh events, and the
// orchestrator's advertisement rounds (DESIGN.md §11 "Timeline ownership").
//
// Time is integer microseconds internally (`SimTime`). Every scheduling call
// quantizes to the µs grid at entry, so two components that compute "the
// same instant" through different floating-point routes land on the same
// integer timestamp and interleave purely by (time, insertion seq). The
// double-seconds API below is a compatibility shim over the integer clock;
// grid-anchored schedulers (workload ticks, TTL refresh, advertisement
// rounds) should use the *Us entry points and integer multiples directly,
// which makes accumulated-rounding drift impossible by construction.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace painter::netsim {

// Absolute simulation time in integer microseconds since t = 0.
using SimTime = std::uint64_t;

// Seconds -> µs, rounding to the nearest tick of the grid (never truncating:
// a boundary computed as 0.999999999… s must land on the boundary, not one
// µs early). Negative and non-finite inputs throw — a time that cannot be
// placed on the grid is a caller bug, not something to clamp silently.
[[nodiscard]] inline SimTime UsFromSeconds(double seconds) {
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) {
    throw std::invalid_argument{"UsFromSeconds: negative or non-finite time"};
  }
  return static_cast<SimTime>(std::llround(seconds * 1e6));
}

[[nodiscard]] constexpr double SecondsFromUs(SimTime us) {
  return static_cast<double>(us) * 1e-6;
}

class Simulator {
 public:
  // Move-only type-erased callable. Unlike std::function, it never copies
  // the captured state: events move through the heap, and handlers owning
  // move-only resources (unique_ptr captures, one-shot tokens) are legal.
  // Copyable callables (including std::function values) still convert.
  class Handler {
   public:
    Handler() = default;
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Handler> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    Handler(F&& fn)  // NOLINT(google-explicit-constructor): function-like
        : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {
    }
    Handler(Handler&&) noexcept = default;
    Handler& operator=(Handler&&) noexcept = default;
    Handler(const Handler&) = delete;
    Handler& operator=(const Handler&) = delete;

    void operator()() { impl_->Call(); }
    [[nodiscard]] explicit operator bool() const { return impl_ != nullptr; }

   private:
    struct Concept {
      virtual ~Concept() = default;
      virtual void Call() = 0;
    };
    template <typename F>
    struct Model final : Concept {
      explicit Model(F&& fn) : fn(std::move(fn)) {}
      explicit Model(const F& fn) : fn(fn) {}
      void Call() override { fn(); }
      F fn;
    };
    std::unique_ptr<Concept> impl_;
  };

  // --- Integer-µs native interface (preferred for grid schedulers). ---

  // Schedules `fn` at absolute µs time `at_us` (>= NowUs()).
  void ScheduleAtUs(SimTime at_us, Handler fn);

  // Schedules `fn` `delay_us` µs from now.
  void ScheduleUs(SimTime delay_us, Handler fn) {
    ScheduleAtUs(now_us_ + delay_us, std::move(fn));
  }

  // Runs events with timestamp <= until_us, then advances the clock to
  // until_us even if the queue drained early.
  void RunUntilUs(SimTime until_us);

  [[nodiscard]] SimTime NowUs() const { return now_us_; }

  // --- Double-seconds compatibility shims (quantize at entry). ---

  // Schedules `fn` to run `delay_s` seconds from now (>= 0). The *delay* is
  // quantized and added to the integer clock, so repeated relative
  // scheduling of the same delay walks an exact arithmetic progression.
  void Schedule(double delay_s, Handler fn);

  // Schedules `fn` at absolute simulation time `at_s` (>= Now()).
  void ScheduleAt(double at_s, Handler fn);

  // Runs events until the queue empties or simulation time passes `until_s`.
  void Run(double until_s) { RunUntilUs(UsFromSeconds(until_s)); }

  [[nodiscard]] double Now() const { return SecondsFromUs(now_us_); }
  [[nodiscard]] std::size_t ExecutedEvents() const { return executed_; }
  [[nodiscard]] bool Empty() const { return heap_.empty(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    Handler fn;
  };
  // Max-heap comparator that puts the *earliest* (at, seq) on top.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_us_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  // Explicit binary heap over a vector (std::push_heap/std::pop_heap) rather
  // than std::priority_queue: pop_heap moves the top element to the back, so
  // Run() extracts each Event — handler included — by move. No per-event
  // copy of the handler's captured state on the hottest loop in the repo.
  std::vector<Event> heap_;
};

}  // namespace painter::netsim
