// Discrete-event simulator core.
//
// A minimal, deterministic event loop: handlers scheduled at absolute times,
// FIFO among equal timestamps (insertion order breaks ties, so runs are
// reproducible). The Traffic Manager prototype (Fig. 10) runs on top of
// this: probes, tunnels, NAT, timers, and failure injection are all events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace painter::netsim {

class Simulator {
 public:
  using Handler = std::function<void()>;

  // Schedules `fn` to run `delay_s` seconds from now (>= 0).
  void Schedule(double delay_s, Handler fn);

  // Schedules `fn` at absolute simulation time `at_s` (>= Now()).
  void ScheduleAt(double at_s, Handler fn);

  // Runs events until the queue empties or simulation time passes `until_s`.
  void Run(double until_s);

  [[nodiscard]] double Now() const { return now_; }
  [[nodiscard]] std::size_t ExecutedEvents() const { return executed_; }
  [[nodiscard]] bool Empty() const { return queue_.empty(); }

 private:
  struct Event {
    double at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace painter::netsim
