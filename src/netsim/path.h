// Time-varying network paths.
//
// The failover experiment needs paths whose one-way delay and reachability
// change over time: the chosen unicast prefix dies when its PoP fails; the
// anycast prefix blackholes for about a second, then reconverges through the
// surviving PoP with transient churn before settling (Fig. 10). A PathModel
// answers "if a packet is sent now, when does it arrive?" — nullopt means
// the packet is lost.
#pragma once

#include <functional>
#include <optional>
#include <vector>

namespace painter::netsim {

using PathDelayFn = std::function<std::optional<double>(double now_s)>;

class PathModel {
 public:
  PathModel() : fn_([](double) { return std::nullopt; }) {}
  explicit PathModel(PathDelayFn fn) : fn_(std::move(fn)) {}

  // One-way delay in seconds for a packet sent at `now_s`; nullopt = lost.
  [[nodiscard]] std::optional<double> OneWayDelay(double now_s) const {
    return fn_(now_s);
  }

  // Always-up path with constant one-way delay.
  [[nodiscard]] static PathModel Fixed(double delay_s);

  // Up with `delay_s` until `down_at_s`, then permanently down.
  [[nodiscard]] static PathModel UpThenDown(double delay_s, double down_at_s);

  // Piecewise schedule: each segment [start, next start) has a delay or is
  // down. Segments must be sorted by start time.
  struct Segment {
    double start_s = 0.0;
    std::optional<double> delay_s;  // nullopt = down
  };
  [[nodiscard]] static PathModel Piecewise(std::vector<Segment> segments);

  // Wraps `base` with a transformation of its answer: the overlay sees the
  // send time and the base delay and may pass it through, inflate it, or turn
  // it into a loss (and vice versa). Fault injection composes path
  // perturbations this way without touching the underlying model.
  using OverlayFn =
      std::function<std::optional<double>(double now_s,
                                          std::optional<double> base_delay_s)>;
  [[nodiscard]] static PathModel Overlay(PathModel base, OverlayFn overlay);

 private:
  PathDelayFn fn_;
};

}  // namespace painter::netsim
