#include "netsim/sim.h"

#include <algorithm>

namespace painter::netsim {

void Simulator::Schedule(double delay_s, Handler fn) {
  if (delay_s < 0.0) throw std::invalid_argument{"Schedule: negative delay"};
  ScheduleAtUs(now_us_ + UsFromSeconds(delay_s), std::move(fn));
}

void Simulator::ScheduleAt(double at_s, Handler fn) {
  ScheduleAtUs(UsFromSeconds(at_s), std::move(fn));
}

void Simulator::ScheduleAtUs(SimTime at_us, Handler fn) {
  if (at_us < now_us_) {
    throw std::invalid_argument{"ScheduleAt: time in the past"};
  }
  heap_.push_back(Event{at_us, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::RunUntilUs(SimTime until_us) {
  while (!heap_.empty() && heap_.front().at <= until_us) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_us_ = ev.at;
    ++executed_;
    ev.fn();
  }
  if (now_us_ < until_us) now_us_ = until_us;
}

}  // namespace painter::netsim
