#include "netsim/sim.h"

#include <stdexcept>
#include <utility>

namespace painter::netsim {

void Simulator::Schedule(double delay_s, Handler fn) {
  if (delay_s < 0.0) throw std::invalid_argument{"Schedule: negative delay"};
  ScheduleAt(now_ + delay_s, std::move(fn));
}

void Simulator::ScheduleAt(double at_s, Handler fn) {
  if (at_s < now_) throw std::invalid_argument{"ScheduleAt: time in the past"};
  queue_.push(Event{at_s, next_seq_++, std::move(fn)});
}

void Simulator::Run(double until_s) {
  while (!queue_.empty() && queue_.top().at <= until_s) {
    // priority_queue::top is const; move out via const_cast-free copy of the
    // handler after popping the metadata.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
  if (now_ < until_s) now_ = until_s;
}

}  // namespace painter::netsim
