// Baseline advertisement strategies the paper compares against (§5.1.2).
//
//  - Anycast: the default configuration D — one prefix via every peering.
//  - One per PoP: each PoP announces its own prefix via all of its peerings;
//    a budget of b prefixes covers the b most valuable PoPs.
//  - One per PoP w/ Reuse: as above, but PoPs at least D_reuse km apart may
//    share a prefix, packing all PoPs into fewer prefixes.
//  - One per Peering: a unique prefix per peering session — no reuse, no
//    uncertainty, guaranteed full benefit at full budget; sessions are ranked
//    by their standalone weighted improvement so partial budgets take the
//    most valuable sessions first.
//  - Regional transit: one prefix per geographic region announced via the
//    transit-provider sessions at that region's PoPs (the strategy Azure uses
//    for some services; the paper found it adds little and drops it from the
//    figures — we keep it for the same comparison).
#pragma once

#include "core/advertisement.h"
#include "core/problem.h"
#include "cloudsim/deployment.h"
#include "topo/generator.h"

namespace painter::core {

[[nodiscard]] AdvertisementConfig AnycastConfig(
    const cloudsim::Deployment& deployment);

[[nodiscard]] AdvertisementConfig OnePerPop(
    const cloudsim::Deployment& deployment, const ProblemInstance& instance,
    std::size_t budget);

[[nodiscard]] AdvertisementConfig OnePerPopWithReuse(
    const topo::Internet& internet, const cloudsim::Deployment& deployment,
    const ProblemInstance& instance, std::size_t budget, double d_reuse_km);

[[nodiscard]] AdvertisementConfig OnePerPeering(
    const cloudsim::Deployment& deployment, const ProblemInstance& instance,
    std::size_t budget);

[[nodiscard]] AdvertisementConfig RegionalTransit(
    const topo::Internet& internet, const cloudsim::Deployment& deployment,
    std::size_t regions);

}  // namespace painter::core
