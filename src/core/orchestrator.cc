#include "core/orchestrator.h"

#include "core/evaluate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <string>

namespace painter::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Orchestrator telemetry (README "Observability"). Counter values are
// workload-determined — identical at any thread count, since the greedy
// schedule itself is (see the fixed-order reduction notes below).
struct OrchestratorMetrics {
  obs::Counter& celf_evals =
      obs::Metrics().GetCounter("orchestrator.celf.evaluations");
  obs::Counter& celf_stale_reevals =
      obs::Metrics().GetCounter("orchestrator.celf.stale_reevals");
  // Incremental-engine telemetry: seed marginals served from the cross-round
  // cache vs re-evaluated after a dirty-UG invalidation, and expectation
  // evaluations that had to fall off the running-aggregate fast path.
  obs::Counter& celf_cache_hits =
      obs::Metrics().GetCounter("orchestrator.celf.cache_hits");
  obs::Counter& celf_cache_invalidations =
      obs::Metrics().GetCounter("orchestrator.celf.cache_invalidations");
  obs::Counter& celf_expectation_fallbacks =
      obs::Metrics().GetCounter("orchestrator.celf.expectation_fallbacks");
  obs::Counter& celf_commits =
      obs::Metrics().GetCounter("orchestrator.celf.commits");
  obs::Counter& reuse_accepts =
      obs::Metrics().GetCounter("orchestrator.reuse.accepts");
  obs::Counter& reuse_rejects =
      obs::Metrics().GetCounter("orchestrator.reuse.rejects");
  obs::Counter& prefixes_allocated =
      obs::Metrics().GetCounter("orchestrator.prefixes.allocated");
  obs::Counter& learn_iterations =
      obs::Metrics().GetCounter("orchestrator.learn.iterations");
  obs::Counter& observations =
      obs::Metrics().GetCounter("orchestrator.model.observations");

  static OrchestratorMetrics& Get() {
    static OrchestratorMetrics m;
    return m;
  }
};

}  // namespace

Orchestrator::Orchestrator(const ProblemInstance& instance,
                           OrchestratorConfig config)
    : instance_(&instance),
      config_(config),
      model_(instance.UgCount()),
      flat_(instance) {}

AdvertisementConfig Orchestrator::ComputeConfig() const {
  const obs::TraceSpan span{"orchestrator.ComputeConfig"};
  OrchestratorMetrics& metrics = OrchestratorMetrics::Get();
  const ProblemInstance& inst = *instance_;
  const ExpectationParams params = config_.Expectation();
  const std::size_t n_ug = inst.UgCount();
  const bool incremental = config_.incremental_celf;

  AdvertisementConfig cc;

  // Best expected RTT per UG over anycast + all *completed* prefixes. The
  // prefix currently under construction is tracked separately since adding a
  // peering can change (even worsen) its expectation.
  std::vector<double> base_best(inst.anycast_rtt_ms);

  std::vector<double> cur_e(n_ug, kInf);  // E of the in-progress prefix
  std::vector<util::PeeringId> sessions;  // its advertised sessions, sorted
  // Per-UG candidate list for the in-progress prefix: the UG's compliant
  // options among `sessions`, maintained incrementally so each marginal
  // evaluation is O(|candidates|) instead of an intersection walk.
  std::vector<std::vector<const IngressOption*>> cands(n_ug);
  // Running aggregates over the raw (exclusion-free) candidate list, in
  // append order: the Eq. 2 mean of a grown-by-one list is
  // (sum + rtt) / (count + 1) whenever neither exclusion can fire, which
  // the min/max-distance spread and RoutingModel::HasPreferences detect
  // exactly. Sums accumulate in the same order the from-scratch walk would,
  // so the fast path is bit-identical to it.
  std::vector<std::uint32_t> cand_count(n_ug, 0);
  std::vector<double> cand_sum(n_ug, 0.0);
  std::vector<double> cand_min_km(n_ug, 0.0);
  std::vector<double> cand_max_km(n_ug, 0.0);

  // Effective single-candidate RTT per flat-index entry: the measured RTT
  // when the model has one, else the instance estimate — exactly the value
  // ComputeExpectationFromCandidates would derive for that option. The model
  // is fixed for the whole greedy pass, so fill once per call.
  std::vector<double> eff_rtt(flat_.EntryCount());
  util::ParallelFor(
      config_.num_threads, 0, inst.peering_count, /*grain=*/8,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t g = chunk_begin; g < chunk_end; ++g) {
          for (std::size_t i = flat_.offset[g]; i < flat_.offset[g + 1]; ++i) {
            const IngressOption* opt = flat_.option[i];
            eff_rtt[i] = model_.MeasuredRtt(flat_.ug[i], opt->peering)
                             .value_or(opt->rtt_ms);
          }
        }
      });

  // Cross-round seed-marginal cache. A peering's *seed* marginal (evaluated
  // against an empty in-progress prefix) depends only on base_best over its
  // UGs, so committing a prefix invalidates exactly the peerings whose UG
  // sets intersect the UGs whose base_best dropped — the dirty-UG rule.
  std::vector<double> seed_delta(inst.peering_count, 0.0);
  std::vector<std::uint8_t> seed_dirty(inst.peering_count, 1);

  // Eq. 2 mean of cands[u] + opt (kInf when unusable), without mutating
  // state. Fast path: a lone candidate is exclusion-free by construction,
  // and a multi-candidate list with no learned preferences and a distance
  // spread within D_reuse keeps every candidate, so the mean is a running
  // sum away. Anything else falls back to the from-scratch walk (which IS
  // the reference semantics, so both paths agree bit-for-bit).
  auto expected_with = [&](std::uint32_t u, const IngressOption* opt,
                           double rtt) {
    const std::uint32_t count = cand_count[u];
    if (incremental) {
      if (count == 0) return rtt;
      if (!model_.HasPreferences(u)) {
        const double min_km = std::min(cand_min_km[u], opt->distance_km);
        const double max_km = std::max(cand_max_km[u], opt->distance_km);
        if (max_km - min_km <= params.d_reuse_km) {
          // No exclusion can fire: the mean is over the full grown list.
          return (cand_sum[u] + rtt) / static_cast<double>(count + 1);
        }
        if (opt->distance_km - cand_min_km[u] > params.d_reuse_km) {
          // The new option is excluded by D_reuse itself and (being farther
          // than the current min) cannot shift the min, so the surviving set
          // is exactly that of the current list — whose expectation cur_e[u]
          // already is.
          return cur_e[u];
        }
        if (cand_min_km[u] - opt->distance_km > params.d_reuse_km) {
          // The new option undercuts every current candidate by more than
          // D_reuse: they are all excluded and it alone survives.
          return rtt;
        }
      }
      metrics.celf_expectation_fallbacks.Add();  // sharded: worker-safe
    }
    // Scratch reused across calls; thread_local so the concurrent seeding
    // scan below can evaluate marginals on pool workers without sharing.
    thread_local std::vector<const IngressOption*> trial;
    trial.assign(cands[u].begin(), cands[u].end());
    trial.push_back(opt);
    const PrefixExpectation e =
        ComputeExpectationFromCandidates(model_, u, trial, params);
    return e.usable ? e.mean_rtt : kInf;
  };

  // Eq. 1 marginal benefit of adding `gid` to the in-progress prefix.
  auto marginal_of = [&](util::PeeringId gid) {
    metrics.celf_evals.Add();  // sharded: safe from the concurrent scan
    double delta = 0.0;
    const std::size_t lo = flat_.offset[gid.value()];
    const std::size_t hi = flat_.offset[gid.value() + 1];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t u = flat_.ug[i];
      const double new_e = expected_with(u, flat_.option[i], eff_rtt[i]);
      const double old_best = std::min(base_best[u], cur_e[u]);
      const double new_best = std::min(base_best[u], new_e);
      delta += inst.ug_weight[u] * (old_best - new_best);
    }
    return delta;
  };

  for (std::size_t p = 0; p < config_.prefix_budget; ++p) {
    sessions.clear();
    std::fill(cur_e.begin(), cur_e.end(), kInf);
    for (auto& c : cands) c.clear();
    std::fill(cand_count.begin(), cand_count.end(), 0u);
    std::fill(cand_sum.begin(), cand_sum.end(), 0.0);
    // min/max km are only read when cand_count > 0; no reset needed.

    // Inner loop of Algorithm 1: add peerings while one yields positive
    // marginal benefit (Eq. 1 over modelled expectations).
    //
    // Lazy (CELF-style) selection: marginal benefits only shrink as the
    // configuration accumulates sessions (each UG's best expected RTT is
    // monotonically non-increasing), so a candidate whose *stale* marginal
    // already trails the current best fresh one need not be re-evaluated.
    // This turns the O(#sessions) rescan per commit into a handful of
    // re-evaluations. (Reuse can occasionally *raise* a marginal by harming
    // a UG's expectation on this prefix — a second-order effect the lazy
    // schedule may miss; Algorithm 1 is a greedy heuristic either way.)
    struct Scored {
      double delta;
      std::uint64_t round;  // commit-round the delta was computed at
      util::PeeringId peering;
      bool operator<(const Scored& o) const {
        if (delta != o.delta) return delta < o.delta;
        return o.peering < peering;  // deterministic: lower id first
      }
    };
    std::priority_queue<Scored> heap;
    std::uint64_t round = 0;
    {
      // Seed the CELF heap. Each peering's marginal touches only read-only
      // shared state (base_best / cur_e / cands / the routing model), so the
      // scan is embarrassingly parallel; the heap is then built serially in
      // peering order, making the result bit-identical to the serial scan.
      // With the incremental engine, only dirty peerings are re-evaluated —
      // the rest reuse the cached marginal from the previous round, which a
      // fresh evaluation would reproduce bit-for-bit.
      if (incremental) {
        std::uint64_t hits = 0;
        std::uint64_t invalidations = 0;
        for (std::size_t g = 0; g < inst.peering_count; ++g) {
          if (flat_.offset[g + 1] == flat_.offset[g]) continue;
          if (seed_dirty[g]) {
            ++invalidations;
          } else {
            ++hits;
          }
        }
        metrics.celf_cache_hits.Add(hits);
        metrics.celf_cache_invalidations.Add(invalidations);
      }
      util::ParallelFor(
          config_.num_threads, 0, inst.peering_count, /*grain=*/8,
          [&](std::size_t chunk_begin, std::size_t chunk_end) {
            for (std::size_t g = chunk_begin; g < chunk_end; ++g) {
              if (flat_.offset[g + 1] == flat_.offset[g]) continue;
              if (incremental && !seed_dirty[g]) continue;  // cache hit
              seed_delta[g] =
                  marginal_of(util::PeeringId{static_cast<std::uint32_t>(g)});
            }
          });
      std::fill(seed_dirty.begin(), seed_dirty.end(),
                static_cast<std::uint8_t>(0));
      for (std::uint32_t g = 0; g < inst.peering_count; ++g) {
        if (flat_.offset[g + 1] == flat_.offset[g]) continue;
        if (seed_delta[g] > 0.0) {
          heap.push(Scored{seed_delta[g], round, util::PeeringId{g}});
        }
      }
    }

    while (!heap.empty()) {
      Scored top = heap.top();
      heap.pop();
      if (std::binary_search(sessions.begin(), sessions.end(), top.peering)) {
        continue;
      }
      if (top.round != round) {
        metrics.celf_stale_reevals.Add();
        const double fresh = marginal_of(top.peering);
        if (fresh > 0.0) {
          heap.push(Scored{fresh, round, top.peering});
        } else if (!sessions.empty()) {
          // A reuse candidate whose refreshed marginal no longer helps.
          metrics.reuse_rejects.Add();
        }
        continue;
      }
      // Fresh and at the top: this is the argmax. Commit it.
      metrics.celf_commits.Add();
      if (!sessions.empty()) metrics.reuse_accepts.Add();
      ++round;
      sessions.insert(
          std::lower_bound(sessions.begin(), sessions.end(), top.peering),
          top.peering);
      const std::size_t lo = flat_.offset[top.peering.value()];
      const std::size_t hi = flat_.offset[top.peering.value() + 1];
      for (std::size_t i = lo; i < hi; ++i) {
        const std::uint32_t u = flat_.ug[i];
        const IngressOption* opt = flat_.option[i];
        cur_e[u] = expected_with(u, opt, eff_rtt[i]);
        cands[u].push_back(opt);
        if (cand_count[u] == 0) {
          cand_min_km[u] = opt->distance_km;
          cand_max_km[u] = opt->distance_km;
        } else {
          cand_min_km[u] = std::min(cand_min_km[u], opt->distance_km);
          cand_max_km[u] = std::max(cand_max_km[u], opt->distance_km);
        }
        cand_sum[u] += eff_rtt[i];
        ++cand_count[u];
      }
      if (!config_.enable_reuse) break;  // ablation: one peering per prefix
    }

    if (sessions.empty()) break;  // no peering helps; further prefixes won't
    metrics.prefixes_allocated.Add();
    cc.AddPrefix(sessions);
    for (std::uint32_t u = 0; u < n_ug; ++u) {
      if (cur_e[u] < base_best[u]) {
        base_best[u] = cur_e[u];
        // Dirty-UG -> dirty-peering via the forward option list: every
        // peering serving u must re-derive its seed marginal next round.
        for (const IngressOption& opt : inst.options[u]) {
          seed_dirty[opt.peering.value()] = 1;
        }
      }
    }
  }
  // Prefix-budget consumption: the greedy pass stops early when no peering
  // adds benefit, so used < budget is a signal the budget is oversized.
  static obs::Gauge& budget_used =
      obs::Metrics().GetGauge("orchestrator.prefix_budget.used");
  static obs::Gauge& budget_total =
      obs::Metrics().GetGauge("orchestrator.prefix_budget.total");
  budget_used.Set(static_cast<double>(cc.PrefixCount()));
  budget_total.Set(static_cast<double>(config_.prefix_budget));
  return cc;
}

bool LearningShouldStop(const std::vector<double>& realized, double stop_frac,
                        double abs_epsilon_ms, std::size_t patience) {
  if (realized.empty()) return false;
  // Track the best realized benefit, seeded from the first report so the
  // rule behaves sensibly when every benefit is zero or negative. An entry
  // only counts as an improvement when it clears the larger of the relative
  // and absolute margins — a multiplicative test alone degenerates at
  // best == 0 (any ε > 0 would pass) and inverts for negative baselines.
  double best = realized.front();
  std::size_t best_at = 0;
  for (std::size_t i = 1; i < realized.size(); ++i) {
    const double margin =
        std::max(std::abs(best) * stop_frac, abs_epsilon_ms);
    if (realized[i] > best + margin) {
      best = realized[i];
      best_at = i;
    }
  }
  return realized.size() - 1 - best_at >= patience;
}

Orchestrator::Prediction Orchestrator::Predict(
    const AdvertisementConfig& config) const {
  return PredictBenefit(*instance_, model_, config, config_.Expectation(),
                        config_.num_threads);
}

void Orchestrator::Absorb(
    const AdvertisementConfig& config,
    const std::vector<AdvertisementEnvironment::PrefixObservation>&
        observations) {
  const obs::TraceSpan span{"orchestrator.Absorb"};
  std::size_t absorbed = 0;
  const ProblemInstance& inst = *instance_;
  std::vector<util::PeeringId> candidates;
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    if (p >= observations.size()) break;
    const auto& obs = observations[p];
    const auto& sessions = config.Sessions(p);
    for (std::uint32_t u = 0; u < inst.UgCount(); ++u) {
      const auto& ingress = obs.ingress_of_ug.at(u);
      if (!ingress.has_value()) continue;
      // Candidates the UG could have used on this prefix: its compliant
      // options among the advertised sessions.
      candidates.clear();
      for (const IngressOption& opt : inst.options[u]) {
        if (std::binary_search(sessions.begin(), sessions.end(),
                               opt.peering)) {
          candidates.push_back(opt.peering);
        }
      }
      model_.ObservePreference(u, *ingress, candidates);
      model_.ObserveLatency(u, *ingress, obs.rtt_ms_of_ug.at(u));
      ++absorbed;
    }
  }
  OrchestratorMetrics::Get().observations.Add(absorbed);
}

Orchestrator::IterationReport Orchestrator::RunLearningIteration(
    AdvertisementEnvironment& env, std::size_t iter,
    std::vector<AdvertisementEnvironment::PrefixObservation>*
        out_observations) {
  const obs::TraceSpan iter_span{"orchestrator.learn.iteration"};
  OrchestratorMetrics::Get().learn_iterations.Add();
  const ProblemInstance& inst = *instance_;
  IterationReport report;
  report.config = ComputeConfig();
  {
    const obs::TraceSpan predict_span{"orchestrator.Predict"};
    report.predicted = Predict(report.config);
  }
  report.prefixes_used = report.config.NonEmptyPrefixCount();

  auto observations = [&] {
    const obs::TraceSpan exec_span{"environment.Execute"};
    return env.Execute(report.config);
  }();

  // Realized benefit: each UG's Traffic Manager measures all prefixes it
  // can reach and steers to the best, with anycast as the floor option.
  double acc = 0.0;
  double acc_pos = 0.0;
  double w_pos = 0.0;
  for (std::uint32_t u = 0; u < inst.UgCount(); ++u) {
    double best = inst.anycast_rtt_ms[u];
    for (const auto& obs : observations) {
      if (obs.ingress_of_ug.at(u).has_value()) {
        best = std::min(best, obs.rtt_ms_of_ug.at(u));
      }
    }
    const double imp = inst.anycast_rtt_ms[u] - best;
    acc += inst.ug_weight[u] * imp;
    if (imp > 1e-9) {
      acc_pos += inst.ug_weight[u] * imp;
      w_pos += inst.ug_weight[u];
    }
  }
  report.realized_ms = inst.total_weight == 0 ? 0 : acc / inst.total_weight;
  report.realized_positive_ms = w_pos == 0 ? 0 : acc_pos / w_pos;

  // Per-iteration telemetry (Fig. 6c's learning curve, as metrics): the
  // predicted-vs-realized gap is the model error learning drives down.
  // These values come from the seeded simulation, so they are reproducible
  // and land in the deterministic section of the metrics export.
  //
  // Registry growth is bounded: per-slot `iterN` gauges stop at
  // max_iter_metric_series (historical names kept below the cap), while the
  // rolling `last.*` family is overwritten every iteration — a run of any
  // length leaves O(cap) gauges behind, never O(iterations).
  const auto emit = [&](const std::string& prefix) {
    obs::Metrics().GetGauge(prefix + "predicted_mean_ms")
        .Set(report.predicted.mean_ms);
    obs::Metrics().GetGauge(prefix + "realized_ms").Set(report.realized_ms);
    obs::Metrics().GetGauge(prefix + "realized_positive_ms")
        .Set(report.realized_positive_ms);
    obs::Metrics().GetGauge(prefix + "prefixes_used")
        .Set(static_cast<double>(report.prefixes_used));
  };
  const bool per_slot = iter < config_.max_iter_metric_series;
  const std::string iter_prefix =
      "orchestrator.learn.iter" + std::to_string(iter) + ".";
  if (per_slot) emit(iter_prefix);
  emit("orchestrator.learn.last.");
  obs::Metrics().GetGauge("orchestrator.learn.last.iteration")
      .Set(static_cast<double>(iter));

  if (config_.enable_learning) Absorb(report.config, observations);

  // Pairwise preferences learned per round (cumulative after this absorb).
  if (per_slot) {
    obs::Metrics().GetGauge(iter_prefix + "preferences_total")
        .Set(static_cast<double>(model_.PreferenceCount()));
  }
  obs::Metrics().GetGauge("orchestrator.learn.last.preferences_total")
      .Set(static_cast<double>(model_.PreferenceCount()));
  if (out_observations != nullptr) *out_observations = std::move(observations);
  return report;
}

bool Orchestrator::LearningComplete(
    const std::vector<IterationReport>& reports) const {
  if (reports.empty()) return false;  // always at least one iteration
  if (!config_.enable_learning) return true;
  if (reports.size() >= config_.max_learning_iterations) return true;

  // Patience-based termination: learning routinely dips for an iteration
  // while the model digests surprising observations, so stop only when the
  // best realized benefit has been flat for `learning_patience` rounds.
  std::vector<double> realized;
  realized.reserve(reports.size());
  for (const IterationReport& r : reports) realized.push_back(r.realized_ms);
  return LearningShouldStop(realized, config_.learning_stop_frac,
                            config_.learning_abs_epsilon_ms,
                            config_.learning_patience);
}

std::vector<Orchestrator::IterationReport> Orchestrator::Learn(
    AdvertisementEnvironment& env) {
  const obs::TraceSpan learn_span{"orchestrator.Learn"};
  std::vector<IterationReport> reports;
  do {
    reports.push_back(RunLearningIteration(env, reports.size()));
  } while (!LearningComplete(reports));
  return reports;
}

}  // namespace painter::core
