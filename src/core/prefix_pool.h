// IPv4 prefix economics and BGP table impact (§2.4).
//
// "Advertisement cost comes from the cost of IPv4 prefixes (often much more
// than $20k per /24) and their impact on global BGP routing tables." The
// orchestrator's prefix budget is ultimately a dollar figure and a
// routing-table-slot figure; this module makes both concrete:
//
//  - PrefixPool allocates real /24s out of a supernet the cloud owns and
//    prices them, so a configuration can be rendered as actual
//    advertisements ("203.0.12.0/24 via peering 17") with a bill attached.
//  - RibFootprint measures global table impact: for each prefix, how many
//    ASes end up carrying a route for it. Anycast and transit announcements
//    sit in every RIB; a prefix announced only via a peer stays inside that
//    peer's customer cone — reuse via low-cone peers is cheaper for the
//    Internet than its prefix count suggests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloudsim/ingress.h"
#include "core/advertisement.h"

namespace painter::core {

struct Ipv4Prefix {
  std::uint32_t network = 0;  // host byte order, low bits zero
  int length = 24;

  [[nodiscard]] std::string ToString() const;
  [[nodiscard]] bool Contains(std::uint32_t addr) const;

  friend bool operator==(const Ipv4Prefix&, const Ipv4Prefix&) = default;
};

// Parses "a.b.c.d/len"; nullopt on malformed input or host bits set.
[[nodiscard]] std::optional<Ipv4Prefix> ParsePrefix(const std::string& text);

class PrefixPool {
 public:
  // Carves /`alloc_length` blocks out of `supernet`. Throws if the supernet
  // is smaller than the allocation size.
  PrefixPool(Ipv4Prefix supernet, int alloc_length = 24,
             double cost_per_prefix_usd = 20000.0);

  // Allocates the next free block; nullopt when exhausted.
  [[nodiscard]] std::optional<Ipv4Prefix> Allocate();

  // Returns a block to the pool; false if it was not allocated from here.
  bool Release(const Ipv4Prefix& prefix);

  [[nodiscard]] std::size_t Capacity() const { return capacity_; }
  [[nodiscard]] std::size_t Allocated() const { return allocated_count_; }
  [[nodiscard]] double TotalCostUsd() const {
    return static_cast<double>(allocated_count_) * cost_per_prefix_usd_;
  }
  [[nodiscard]] const Ipv4Prefix& supernet() const { return supernet_; }

 private:
  Ipv4Prefix supernet_;
  int alloc_length_;
  double cost_per_prefix_usd_;
  std::size_t capacity_;
  std::size_t allocated_count_ = 0;
  std::vector<bool> in_use_;
};

// A concrete, installable advertisement plan: each abstract prefix index of
// the configuration bound to a real /24 from the pool.
struct ConcretePlan {
  std::vector<Ipv4Prefix> prefix_of_index;  // parallel to config prefixes
  double cost_usd = 0.0;
};

// Binds `config` to blocks from `pool`. Throws std::runtime_error if the
// pool cannot cover the configuration.
[[nodiscard]] ConcretePlan BindPrefixes(const AdvertisementConfig& config,
                                        PrefixPool& pool);

// Global routing-table impact of a configuration: for each prefix, the
// number of ASes whose RIB carries a route to it (via the interdomain
// outcome of its announcement), plus the total across prefixes.
struct RibFootprint {
  std::vector<std::size_t> ases_carrying;  // per prefix
  std::size_t total_entries = 0;           // sum over prefixes
};

[[nodiscard]] RibFootprint ComputeRibFootprint(
    const AdvertisementConfig& config,
    const cloudsim::IngressResolver& resolver);

}  // namespace painter::core
