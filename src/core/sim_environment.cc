#include "core/sim_environment.h"

namespace painter::core {

std::vector<AdvertisementEnvironment::PrefixObservation>
SimEnvironment::Execute(const AdvertisementConfig& config) {
  std::vector<PrefixObservation> out;
  out.reserve(config.PrefixCount());
  const std::size_t n_ug = oracle_->deployment().ugs().size();

  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    PrefixObservation obs;
    obs.ingress_of_ug = resolver_->Resolve(config.Sessions(p));
    obs.rtt_ms_of_ug.assign(n_ug, 0.0);
    for (std::uint32_t u = 0; u < n_ug; ++u) {
      if (obs.ingress_of_ug[u].has_value()) {
        obs.rtt_ms_of_ug[u] =
            oracle_
                ->MeasureMin(util::UgId{u}, *obs.ingress_of_ug[u], rng_,
                             ping_count_, day_)
                .count();
      }
    }
    out.push_back(std::move(obs));
  }
  return out;
}

}  // namespace painter::core
