// Evaluation helpers shared by the benchmark harnesses.
//
// Two views of a configuration's quality, matching the paper's two settings:
//
//  - Model-based (Fig. 6a, 9b, 14): what the orchestrator's Eq. 2 expectation
//    predicts, reported as the full lower/mean/estimated/upper range since a
//    UG's realized ingress on a reused prefix is uncertain until observed.
//  - Ground-truth (Fig. 6b, 6c, 7): actually announce each prefix into the
//    BGP simulation, look up each UG's true RTT via its resolved ingress, and
//    report the realized improvement. Day-indexed so Fig. 7's persistence
//    analysis can replay the same configuration against drifting latencies.
//
// Also: DNS-constrained steering (Fig. 9b) where each recursive resolver maps
// all of its UGs to a single prefix (per-/24 for ECS resolvers).
#pragma once

#include <cstdint>
#include <vector>

#include "core/advertisement.h"
#include "core/orchestrator.h"
#include "core/problem.h"
#include "core/routing_model.h"
#include "cloudsim/ingress.h"
#include "measure/latency.h"

namespace painter::core {

// Model-predicted weighted-average improvement over anycast (ms) for each
// range kind. The Traffic Manager steers per flow across all prefixes with
// anycast as the floor, so per-UG improvements are >= 0. The per-UG loop is
// evaluated with up to `num_threads` threads (0 = hardware_concurrency,
// 1 = serial); per-UG terms are reduced in fixed UG order so the result is
// bit-identical at any thread count.
[[nodiscard]] Orchestrator::Prediction PredictBenefit(
    const ProblemInstance& instance, const RoutingModel& model,
    const AdvertisementConfig& config, const ExpectationParams& params,
    std::size_t num_threads = 1);

// Ground-truth evaluation: resolves each prefix once (BGP is static in the
// simulation) and replays latencies by day.
class GroundTruthEvaluator {
 public:
  GroundTruthEvaluator(const cloudsim::Deployment& deployment,
                       const cloudsim::IngressResolver& resolver,
                       const measure::LatencyOracle& oracle);

  void SetConfig(const AdvertisementConfig& config);

  // Worker threads for the prefix resolution in SetConfig and the per-UG
  // evaluation loops (MeanImprovementMs, PositiveMeanImprovementMs, Choices,
  // BenefitingUgs, PossibleMeanImprovementMs). 0 = hardware_concurrency();
  // 1 (the default) keeps the serial path. Per-UG terms are reduced in
  // fixed UG order, so results are bit-identical at any thread count.
  void SetNumThreads(std::size_t num_threads) { num_threads_ = num_threads; }

  // Weighted-average improvement with per-flow steering (UG takes the best of
  // anycast and every prefix) at `day`.
  [[nodiscard]] double MeanImprovementMs(int day) const;

  // Same, averaged over UGs with positive improvement only.
  [[nodiscard]] double PositiveMeanImprovementMs(int day) const;

  // Weighted-average improvement over a fixed UG subset (Fig. 6b averages
  // over the clients that have any improvement available at all — in the
  // paper ~8k of 40k UGs — so curves are comparable across budgets).
  [[nodiscard]] double MeanImprovementOverUgsMs(
      const std::vector<std::uint32_t>& ugs, int day) const;

  // UGs whose best compliant ingress beats anycast by more than
  // `threshold_ms` at `day` — the "clients with non-zero improvement" set.
  // Both sides of the comparison use the same day's ground truth, so the set
  // agrees with the improvement metrics computed for that day.
  [[nodiscard]] std::vector<std::uint32_t> BenefitingUgs(
      const cloudsim::PolicyCatalog& catalog, double threshold_ms = 1.0,
      int day = 0) const;

  // Per-UG prefix choice at `day`: index into the config, or -1 for anycast.
  [[nodiscard]] std::vector<int> Choices(int day) const;

  // Improvement when UGs are pinned to `choices` (made at an earlier day) —
  // the "Static Prefix Choices" lines of Fig. 7. May be negative per-UG.
  [[nodiscard]] double MeanImprovementStaticMs(const std::vector<int>& choices,
                                               int day) const;

  // Upper bound: every UG on its best compliant ingress at `day`.
  [[nodiscard]] double PossibleMeanImprovementMs(
      const cloudsim::PolicyCatalog& catalog, int day) const;

 private:
  [[nodiscard]] double RttOf(std::uint32_t u, int prefix, int day) const;

  const cloudsim::Deployment* deployment_;
  const cloudsim::IngressResolver* resolver_;
  const measure::LatencyOracle* oracle_;
  std::size_t num_threads_ = 1;
  std::size_t ug_count_ = 0;

  // Flat hot-path layout. Resolved ingress per UG (-1 = no route) and the
  // day-0 ground-truth RTT per UG (+inf where unreachable); the prefix
  // arrays are row-major (prefix * ug_count_ + ug). Day 0 dominates every
  // evaluation loop, so its RTTs are precomputed when the configuration is
  // set; other days go to the oracle through the flat ingress arrays.
  std::vector<std::int32_t> anycast_ingress_;
  std::vector<double> anycast_day0_rtt_;
  std::size_t prefix_count_ = 0;
  std::vector<std::int32_t> prefix_ingress_;
  std::vector<double> prefix_day0_rtt_;
};

// DNS-steered variant of a configuration (Fig. 9b): resolver r's UGs are all
// directed to the single prefix maximizing r's aggregate modeled benefit;
// resolvers supporting ECS steer each UG (≈ /24) independently. Returns the
// weighted-average improvement in ms (can be diluted well below the per-flow
// figure when a resolver serves UGs with conflicting best prefixes).
struct DnsSteeringInput {
  std::vector<std::uint32_t> resolver_of_ug;  // indexed by UG id
  std::vector<bool> resolver_supports_ecs;    // indexed by resolver id
};
// The (UG × prefix) modeled-RTT matrix fill is evaluated with up to
// `num_threads` threads (0 = hardware_concurrency, 1 = serial); each (u, p)
// cell is independent, so results are identical at any thread count.
[[nodiscard]] double EvaluateDnsSteering(const ProblemInstance& instance,
                                         const RoutingModel& model,
                                         const AdvertisementConfig& config,
                                         const ExpectationParams& params,
                                         const DnsSteeringInput& dns,
                                         std::size_t num_threads = 1);

// Truncates `config` to its first `budget` prefixes (greedy order makes the
// truncation the budget-constrained solution).
[[nodiscard]] AdvertisementConfig Truncate(const AdvertisementConfig& config,
                                           std::size_t budget);

}  // namespace painter::core
