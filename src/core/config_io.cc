#include "core/config_io.h"

#include <charconv>
#include <sstream>

namespace painter::core {
namespace {

constexpr const char* kHeader = "# painter-advertisement-config v1";

bool SetError(ParseError* error, std::size_t line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
  return false;
}

}  // namespace

void WriteConfig(std::ostream& os, const AdvertisementConfig& config) {
  os << kHeader << "\n";
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    os << "prefix " << p << ":";
    for (const auto sid : config.Sessions(p)) os << ' ' << sid.value();
    os << "\n";
  }
}

std::string ConfigToString(const AdvertisementConfig& config) {
  std::ostringstream os;
  WriteConfig(os, config);
  return os.str();
}

std::optional<AdvertisementConfig> ReadConfig(
    std::istream& is, const cloudsim::Deployment* deployment,
    ParseError* error) {
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(is, line) || line != kHeader) {
    SetError(error, 1, "missing or unrecognized header");
    return std::nullopt;
  }
  ++line_no;

  AdvertisementConfig config;
  std::size_t expected_prefix = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    std::istringstream ls{line};
    std::string keyword;
    std::size_t index = 0;
    char colon = '\0';
    ls >> keyword >> index >> colon;
    if (keyword != "prefix" || colon != ':' || ls.fail()) {
      SetError(error, line_no, "expected 'prefix <n>: <sessions...>'");
      return std::nullopt;
    }
    if (index != expected_prefix) {
      SetError(error, line_no, "prefix indices must be dense and in order");
      return std::nullopt;
    }
    std::vector<util::PeeringId> sessions;
    std::uint64_t raw = 0;
    while (ls >> raw) {
      if (deployment != nullptr && raw >= deployment->peerings().size()) {
        SetError(error, line_no,
                 "session id " + std::to_string(raw) +
                     " not in the deployment");
        return std::nullopt;
      }
      sessions.push_back(util::PeeringId{static_cast<std::uint32_t>(raw)});
    }
    if (!ls.eof()) {
      SetError(error, line_no, "malformed session id");
      return std::nullopt;
    }
    if (sessions.empty()) {
      SetError(error, line_no, "prefix with no sessions");
      return std::nullopt;
    }
    config.AddPrefix(std::move(sessions));
    ++expected_prefix;
  }
  return config;
}

std::optional<AdvertisementConfig> ConfigFromString(
    const std::string& text, const cloudsim::Deployment* deployment,
    ParseError* error) {
  std::istringstream is{text};
  return ReadConfig(is, deployment, error);
}

}  // namespace painter::core
