#include "core/baselines.h"

#include <algorithm>
#include <map>

namespace painter::core {
namespace {

// Ranks PoPs by the traffic weight of UGs for which that PoP hosts the UG's
// best compliant option — a proxy for "PoP value" used to order per-PoP
// prefixes under a budget.
std::vector<util::PopId> RankPops(const cloudsim::Deployment& deployment,
                                  const ProblemInstance& instance) {
  std::vector<double> value(deployment.pops().size(), 0.0);
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    const auto& opts = instance.options[u];
    if (opts.empty()) continue;
    const IngressOption* best = &opts.front();
    for (const IngressOption& o : opts) {
      if (o.rtt_ms < best->rtt_ms) best = &o;
    }
    const util::PopId pop = deployment.peering(best->peering).pop;
    value[pop.value()] += instance.ug_weight[u];
  }
  std::vector<util::PopId> order;
  order.reserve(value.size());
  for (std::uint32_t i = 0; i < value.size(); ++i) order.push_back(util::PopId{i});
  std::sort(order.begin(), order.end(), [&](util::PopId a, util::PopId b) {
    if (value[a.value()] != value[b.value()]) {
      return value[a.value()] > value[b.value()];
    }
    return a < b;
  });
  return order;
}

std::vector<util::PeeringId> SessionsAtPop(
    const cloudsim::Deployment& deployment, util::PopId pop) {
  std::vector<util::PeeringId> out;
  for (const cloudsim::Peering& p : deployment.peerings()) {
    if (p.pop == pop) out.push_back(p.id);
  }
  return out;
}

}  // namespace

AdvertisementConfig AnycastConfig(const cloudsim::Deployment& deployment) {
  AdvertisementConfig cfg;
  std::vector<util::PeeringId> all;
  all.reserve(deployment.peerings().size());
  for (const auto& p : deployment.peerings()) all.push_back(p.id);
  cfg.AddPrefix(std::move(all));
  return cfg;
}

AdvertisementConfig OnePerPop(const cloudsim::Deployment& deployment,
                              const ProblemInstance& instance,
                              std::size_t budget) {
  AdvertisementConfig cfg;
  const auto order = RankPops(deployment, instance);
  for (std::size_t i = 0; i < budget && i < order.size(); ++i) {
    auto sessions = SessionsAtPop(deployment, order[i]);
    if (!sessions.empty()) cfg.AddPrefix(std::move(sessions));
  }
  return cfg;
}

AdvertisementConfig OnePerPopWithReuse(const topo::Internet& internet,
                                       const cloudsim::Deployment& deployment,
                                       const ProblemInstance& instance,
                                       std::size_t budget, double d_reuse_km) {
  // Greedy packing: walk PoPs in value order; place each into the first
  // prefix whose existing PoPs are all at least D_reuse away; open a new
  // prefix when allowed by the budget, else skip the PoP.
  const auto order = RankPops(deployment, instance);
  const auto& metros = internet.metros;
  auto pop_loc = [&](util::PopId p) {
    return metros[deployment.pop(p).metro.value()].location;
  };

  std::vector<std::vector<util::PopId>> groups;
  for (util::PopId pop : order) {
    bool placed = false;
    for (auto& grp : groups) {
      const bool far_enough =
          std::all_of(grp.begin(), grp.end(), [&](util::PopId other) {
            return topo::Distance(pop_loc(pop), pop_loc(other)).count() >=
                   d_reuse_km;
          });
      if (far_enough) {
        grp.push_back(pop);
        placed = true;
        break;
      }
    }
    if (!placed && groups.size() < budget) groups.push_back({pop});
  }

  AdvertisementConfig cfg;
  for (const auto& grp : groups) {
    std::vector<util::PeeringId> sessions;
    for (util::PopId pop : grp) {
      auto s = SessionsAtPop(deployment, pop);
      sessions.insert(sessions.end(), s.begin(), s.end());
    }
    if (!sessions.empty()) cfg.AddPrefix(std::move(sessions));
  }
  return cfg;
}

AdvertisementConfig OnePerPeering(const cloudsim::Deployment& deployment,
                                  const ProblemInstance& instance,
                                  std::size_t budget) {
  // Score each session by its standalone weighted improvement over anycast.
  std::vector<double> score(deployment.peerings().size(), 0.0);
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    for (const IngressOption& o : instance.options[u]) {
      score[o.peering.value()] +=
          instance.ug_weight[u] *
          std::max(0.0, instance.anycast_rtt_ms[u] - o.rtt_ms);
    }
  }
  std::vector<util::PeeringId> order;
  order.reserve(score.size());
  for (std::uint32_t i = 0; i < score.size(); ++i) {
    order.push_back(util::PeeringId{i});
  }
  std::sort(order.begin(), order.end(), [&](util::PeeringId a, util::PeeringId b) {
    if (score[a.value()] != score[b.value()]) {
      return score[a.value()] > score[b.value()];
    }
    return a < b;
  });

  AdvertisementConfig cfg;
  for (std::size_t i = 0; i < budget && i < order.size(); ++i) {
    if (score[order[i].value()] <= 0.0) break;  // no session left that helps
    cfg.AddPrefix({order[i]});
  }
  return cfg;
}

AdvertisementConfig RegionalTransit(const topo::Internet& internet,
                                    const cloudsim::Deployment& deployment,
                                    std::size_t regions) {
  if (regions == 0 || deployment.pops().empty()) return {};
  const auto& metros = internet.metros;
  auto pop_loc = [&](const cloudsim::Pop& p) {
    return metros[p.metro.value()].location;
  };

  // Farthest-point seeding, then nearest-seed assignment: a simple,
  // deterministic regionalization of the PoP footprint.
  std::vector<std::size_t> seeds{0};
  while (seeds.size() < std::min(regions, deployment.pops().size())) {
    std::size_t farthest = 0;
    double far_d = -1.0;
    for (std::size_t i = 0; i < deployment.pops().size(); ++i) {
      double nearest = 1e18;
      for (std::size_t s : seeds) {
        nearest = std::min(
            nearest, topo::Distance(pop_loc(deployment.pops()[i]),
                                    pop_loc(deployment.pops()[s]))
                         .count());
      }
      if (nearest > far_d) {
        far_d = nearest;
        farthest = i;
      }
    }
    seeds.push_back(farthest);
  }

  std::vector<std::vector<util::PeeringId>> groups(seeds.size());
  for (util::PeeringId pid : deployment.TransitPeerings()) {
    const cloudsim::Peering& sess = deployment.peering(pid);
    const auto& loc = pop_loc(deployment.pop(sess.pop));
    std::size_t best = 0;
    double best_d = 1e18;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const double d =
          topo::Distance(loc, pop_loc(deployment.pops()[seeds[s]])).count();
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    groups[best].push_back(pid);
  }

  AdvertisementConfig cfg;
  for (auto& grp : groups) {
    if (!grp.empty()) cfg.AddPrefix(std::move(grp));
  }
  return cfg;
}

}  // namespace painter::core
