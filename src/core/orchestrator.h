// The Advertisement Orchestrator (§3.1, Algorithm 1).
//
// Given a prefix budget PB and minimum reuse distance D_reuse, greedily
// allocates prefixes to peerings: for each prefix, repeatedly add the peering
// with the highest positive marginal benefit (Eq. 1 evaluated with the
// Eq. 2 expectation under the current routing model), stopping when no
// peering adds positive benefit, then move to the next prefix. Reuse —
// advertising one prefix via multiple peerings — accumulates benefit without
// exhausting the budget, guarded by the D_reuse exclusion so reuse does not
// inflate anyone's expectation.
//
// Learning loop: after computing a configuration, the orchestrator executes
// it against an AdvertisementEnvironment (the prototype on the simulated
// Internet, or a real cloud in the paper's deployment), observes which
// ingress each UG actually landed on and at what RTT, folds those into the
// RoutingModel, and recomputes. Iterations terminate when realized benefit
// stops improving (§3.1 "terminate learning when little marginal benefit
// increase") or after max_learning_iterations.
#pragma once

#include <memory>
#include <optional>

#include "core/advertisement.h"
#include "core/problem.h"
#include "core/routing_model.h"

namespace painter::core {

struct OrchestratorConfig {
  std::size_t prefix_budget = 25;
  double d_reuse_km = 3000.0;
  double inflation_decay_km = 4000.0;

  std::size_t max_learning_iterations = 8;
  // Stop learning when the best realized benefit so far has not improved by
  // at least max(|best| * learning_stop_frac, learning_abs_epsilon_ms) for
  // `learning_patience` consecutive iterations (§3.1: "terminate learning
  // when little marginal benefit increase"). The absolute epsilon keeps the
  // tolerance meaningful when the best benefit is zero or negative, where a
  // purely multiplicative margin degenerates.
  double learning_stop_frac = 0.01;
  double learning_abs_epsilon_ms = 1e-3;
  std::size_t learning_patience = 2;

  // Worker threads for the embarrassingly parallel evaluation loops (the
  // CELF seeding scan of ComputeConfig and the per-UG loop of Predict).
  // 0 = hardware_concurrency(); 1 forces the serial code path. Results are
  // bit-identical at any value: the parallel paths compute per-index terms
  // independently and reduce them serially in fixed index order.
  std::size_t num_threads = 0;

  // Incremental CELF engine (DESIGN.md "Incremental CELF evaluation"):
  // per-peering seed marginals are cached across prefix rounds and
  // invalidated through the dirty-UG rule, and grown-by-one candidate lists
  // are evaluated from per-UG running aggregates instead of re-walking the
  // list. Bit-identical to the from-scratch engine at any thread count (the
  // property and golden-schedule tests prove it); false forces the naive
  // path for testing and benchmarking.
  bool incremental_celf = true;

  // Ablations.
  bool enable_reuse = true;     // false: one peering per prefix (no reuse)
  bool enable_learning = true;  // false: never update the routing model

  // Cap on per-iteration `orchestrator.learn.iterN.*` gauge families in the
  // global metrics registry. Iterations < the cap keep the historical
  // per-slot names; beyond it only the rolling `orchestrator.learn.last.*`
  // gauges (emitted every iteration) advance, so an arbitrarily long
  // learning run adds O(1) registry entries instead of O(iterations).
  std::size_t max_iter_metric_series = 64;

  [[nodiscard]] ExpectationParams Expectation() const {
    return ExpectationParams{.d_reuse_km = d_reuse_km,
                             .inflation_decay_km = inflation_decay_km};
  }
};

// Feedback channel: "execute_advertisement" in Algorithm 1. Implementations
// actually announce the configuration and report, per prefix and UG, the
// observed ingress and measured RTT.
class AdvertisementEnvironment {
 public:
  virtual ~AdvertisementEnvironment() = default;

  struct PrefixObservation {
    // Indexed by UG id value; nullopt = UG had no route to this prefix.
    std::vector<std::optional<util::PeeringId>> ingress_of_ug;
    // RTT measured by the UG's TM-Edge; valid where ingress is set.
    std::vector<double> rtt_ms_of_ug;
  };

  // One observation per prefix in `config`, in order.
  [[nodiscard]] virtual std::vector<PrefixObservation> Execute(
      const AdvertisementConfig& config) = 0;
};

// Patience-based stopping rule of the learning loop (exposed for tests).
// `realized` holds realized_ms per iteration so far, oldest first. The best
// entry is tracked starting from the first report; a later entry counts as
// an improvement only when it beats the best by more than
// max(|best| * stop_frac, abs_epsilon_ms). Returns true when the last
// improvement is at least `patience` entries old.
[[nodiscard]] bool LearningShouldStop(const std::vector<double>& realized,
                                      double stop_frac, double abs_epsilon_ms,
                                      std::size_t patience);

class Orchestrator {
 public:
  Orchestrator(const ProblemInstance& instance, OrchestratorConfig config);

  // One greedy pass (the body of Algorithm 1's learning iteration) under the
  // current routing model.
  [[nodiscard]] AdvertisementConfig ComputeConfig() const;

  // Predicted weighted-average improvement (ms) of `config` over anycast,
  // under the current model, per range kind.
  struct Prediction {
    double lower_ms = 0.0;     // pessimistic (upper-RTT candidates)
    double mean_ms = 0.0;      // Eq. 2 expectation
    double estimated_ms = 0.0; // inflation-weighted
    double upper_ms = 0.0;     // optimistic (lower-RTT candidates)
  };
  [[nodiscard]] Prediction Predict(const AdvertisementConfig& config) const;

  struct IterationReport {
    AdvertisementConfig config;
    Prediction predicted;
    // Weighted-average realized improvement over anycast (ms), from the
    // environment's observations, with UGs free to pick their best prefix.
    double realized_ms = 0.0;
    // Same, averaged only over UGs with positive improvement (Fig. 6b/6c
    // plot "improvement over clients that have non-zero improvement").
    double realized_positive_ms = 0.0;
    std::size_t prefixes_used = 0;
  };

  // Runs the full learning loop. Always performs at least one iteration.
  // Equivalent to pushing RunLearningIteration results until
  // LearningComplete — the event-driven LearningTimeline drives the same
  // pieces from scheduled simulator events and yields bit-identical reports.
  std::vector<IterationReport> Learn(AdvertisementEnvironment& env);

  // One learning iteration — the exact body of Learn()'s loop: compute,
  // predict, execute, score realized benefit, emit the per-iteration gauges
  // (slot `iter`), absorb observations when learning is enabled. When
  // `out_observations` is non-null the environment's raw observations are
  // moved out (the unified timeline publishes them to the DNS layer).
  IterationReport RunLearningIteration(
      AdvertisementEnvironment& env, std::size_t iter,
      std::vector<AdvertisementEnvironment::PrefixObservation>*
          out_observations = nullptr);

  // Learn()'s termination rule over the reports so far: false while empty
  // (at least one iteration always runs), then true once learning is
  // disabled, the iteration cap is hit, or the patience rule fires.
  [[nodiscard]] bool LearningComplete(
      const std::vector<IterationReport>& reports) const;

  // Folds one round of observations into the routing model (exposed for
  // tests and for callers driving the loop manually).
  void Absorb(const AdvertisementConfig& config,
              const std::vector<AdvertisementEnvironment::PrefixObservation>&
                  observations);

  [[nodiscard]] const RoutingModel& model() const { return model_; }
  [[nodiscard]] RoutingModel& mutable_model() { return model_; }
  [[nodiscard]] const OrchestratorConfig& config() const { return config_; }

 private:
  const ProblemInstance* instance_;
  OrchestratorConfig config_;
  RoutingModel model_;
  // Contiguous inverted index (peering -> its UGs and option entries), the
  // hot-path layout every marginal evaluation in ComputeConfig walks.
  FlatPeeringIndex flat_;
};

}  // namespace painter::core
