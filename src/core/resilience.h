// Path-diversity and failure-avoidance analysis: PAINTER vs SD-WAN (§5.2.4).
//
// SD-WAN path choice is limited to the enterprise's ISPs (most networks have
// 2-3), plus a direct path if the enterprise peers with the cloud. PAINTER
// exposes one path per policy-compliant peering at the PoPs that serve the
// UG's region (the paper takes PoPs receiving 90% of regional traffic, to
// exclude absurdly distant options), and could expose even more by
// manipulating advertisement attributes (the upper bound).
//
// Resilience: for each UG we compute the fraction of ASes on its default
// (anycast) path that each solution can avoid by switching paths — Fig. 11b
// shows PAINTER avoids *all* default-path ASes for ~90% of UGs vs ~70% for
// SD-WAN.
#pragma once

#include <vector>

#include "bgpsim/engine.h"
#include "bgpsim/path_count.h"
#include "cloudsim/ingress.h"

namespace painter::core {

struct UgResilience {
  std::size_t sdwan_paths = 0;
  std::size_t sdwan_pops = 0;
  std::size_t painter_paths_lb = 0;  // one path per compliant peering
  std::size_t painter_paths_ub = 0;  // all policy-compliant paths
  std::size_t painter_pops = 0;
  // Max fraction of default-path ASes avoidable by switching paths.
  double sdwan_avoid_frac = 0.0;
  double painter_avoid_frac = 0.0;
};

class ResilienceAnalyzer {
 public:
  ResilienceAnalyzer(const topo::Internet& internet,
                     const cloudsim::Deployment& deployment,
                     const cloudsim::PolicyCatalog& catalog);

  // Analyzes every UG. Single pass: the per-neighbor announcements needed
  // for PAINTER's alternate paths are each propagated once.
  [[nodiscard]] std::vector<UgResilience> AnalyzeAll() const;

 private:
  // PoPs that serve at least `coverage` of the anycast traffic volume from
  // each metro — the "nearby PoPs" restriction.
  [[nodiscard]] std::vector<std::vector<util::PopId>> RegionalPops(
      double coverage) const;

  const topo::Internet* internet_;
  const cloudsim::Deployment* deployment_;
  const cloudsim::PolicyCatalog* catalog_;
  bgpsim::BgpEngine engine_;
  std::vector<std::optional<util::PeeringId>> anycast_ingress_;
  bgpsim::RoutingOutcome anycast_outcome_;
};

}  // namespace painter::core
