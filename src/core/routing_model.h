// The routing model: what the orchestrator believes about UG routing.
//
// §3.1: "we make assumptions about UG ingresses and, in cases with
// uncertainty, assume all policy-compliant ingresses are equally likely. We
// then learn from incorrect assumptions over time."
//
// The model holds, per UG:
//  - learned pairwise ingress preferences: when a prefix was advertised via a
//    candidate set and the UG was observed entering via ingress i*, then i*
//    is preferred over every other candidate. Future expectations exclude
//    candidates dominated by an active preferred ingress (the paper's
//    Tokyo-vs-Miami example).
//  - measured RTT corrections: once a UG was actually observed on an
//    ingress, the measured RTT replaces the heuristic estimate.
//
// ComputeExpectation evaluates Eq. 2's inner expectation for one UG and one
// prefix: candidates = compliant options ∩ advertised sessions, minus
// preference-dominated ingresses, minus ingresses more than D_reuse km
// farther than the closest candidate PoP. It reports the full benefit range
// the evaluation uses (Fig. 14): lower/upper bound RTTs, the unweighted mean
// (Eq. 2's equal-likelihood expectation), and the inflation-probability
// weighted estimate (§5.1.2 — "inflated paths to far-away PoPs are less
// likely", weights decay with excess distance).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/problem.h"

namespace painter::core {

// Thread-safety contract: the const methods (IsDominated, HasPreferences,
// MeasuredRtt, PreferenceCount) and the ComputeExpectation* helpers below only read
// shared state, so any number of threads may call them concurrently — the
// orchestrator's parallel evaluation loops rely on this. The Observe*
// mutators require exclusive access (they run in the serial Absorb phase of
// the learning loop, never concurrently with evaluations). All evaluation
// scratch is thread_local.
class RoutingModel {
 public:
  explicit RoutingModel(std::size_t ug_count);

  // Records an observed routing choice: `ug` entered via `chosen` while all
  // of `candidates` (compliant sessions the prefix was advertised on) were
  // available. Every non-chosen candidate becomes dominated by `chosen`.
  void ObservePreference(std::uint32_t ug, util::PeeringId chosen,
                         std::span<const util::PeeringId> candidates);

  // Records a measured RTT for a (ug, ingress) pair, correcting estimates.
  void ObserveLatency(std::uint32_t ug, util::PeeringId ingress, double rtt_ms);

  // True if some *other* candidate in `active` is known-preferred over
  // `candidate` for this UG (then `candidate` has zero likelihood, §3.1).
  [[nodiscard]] bool IsDominated(std::uint32_t ug, util::PeeringId candidate,
                                 std::span<const util::PeeringId> active) const;

  // True once any pairwise preference has been observed for `ug`. The
  // orchestrator's incremental fast path keys off this: with no preferences,
  // the dominance exclusion can never fire for the UG.
  [[nodiscard]] bool HasPreferences(std::uint32_t ug) const {
    return !prefers_[ug].empty();
  }

  [[nodiscard]] std::optional<double> MeasuredRtt(std::uint32_t ug,
                                                  util::PeeringId ingress) const;

  // Total learned pairs, maintained as a running count by ObservePreference
  // (this is polled per learning iteration for a gauge; walking every UG's
  // list there would be O(UGs) per poll).
  [[nodiscard]] std::size_t PreferenceCount() const {
    return preference_count_;
  }

 private:
  // ug -> sorted flat list of (winner << 32 | loser) pair keys. A sorted
  // vector beats a hash set here: the dominance probe (hot, called from the
  // greedy loop's expectation fallback) is a binary search over a contiguous
  // few-element array, and mutation happens only in the serial Absorb phase.
  std::vector<std::vector<std::uint64_t>> prefers_;
  // ug -> ingress -> measured RTT.
  std::vector<std::unordered_map<std::uint32_t, double>> measured_;
  std::size_t preference_count_ = 0;
};

struct ExpectationParams {
  // Minimum reuse distance D_reuse (km): candidates whose PoP is more than
  // this much farther than the closest candidate PoP are assumed unused.
  double d_reuse_km = 3000.0;
  // Decay constant for the inflation-likelihood weights of the "estimated"
  // range: weight ∝ exp(-excess_km / this).
  double inflation_decay_km = 4000.0;
};

struct PrefixExpectation {
  bool usable = false;     // UG has at least one surviving candidate
  double lower_rtt = 0.0;  // best case (min over candidates)
  double mean_rtt = 0.0;   // Eq. 2 equal-likelihood expectation
  double estimated_rtt = 0.0;  // inflation-probability weighted
  double upper_rtt = 0.0;  // worst case (max over candidates)
  std::size_t candidate_count = 0;
};

// Evaluates the expectation for `ug` of a prefix advertised via
// `advertised_sessions` (sorted by id). O(|options(ug)| + |advertised|).
[[nodiscard]] PrefixExpectation ComputeExpectation(
    const ProblemInstance& instance, const RoutingModel& model,
    std::uint32_t ug, std::span<const util::PeeringId> advertised_sessions,
    const ExpectationParams& params);

// Same evaluation from an already-intersected candidate list (the UG's
// compliant options among the advertised sessions). The greedy inner loop of
// Algorithm 1 maintains these lists incrementally, so marginal evaluations
// cost O(|candidates|^2) with tiny candidate counts instead of re-walking
// the full option lists.
[[nodiscard]] PrefixExpectation ComputeExpectationFromCandidates(
    const RoutingModel& model, std::uint32_t ug,
    std::span<const IngressOption* const> candidates,
    const ExpectationParams& params);

}  // namespace painter::core
