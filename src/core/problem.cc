#include "core/problem.h"

#include <algorithm>

namespace painter::core {
namespace {

// Anycast baseline: resolve the all-sessions announcement and measure the
// chosen ingress for each UG. Anycast is deployed in both evaluation
// settings, so its latency is always a real measurement.
std::vector<double> MeasureAnycast(const cloudsim::Deployment& deployment,
                                   const cloudsim::IngressResolver& resolver,
                                   const measure::LatencyOracle& oracle,
                                   util::Rng& rng, int ping_count) {
  std::vector<util::PeeringId> all;
  all.reserve(deployment.peerings().size());
  for (const auto& p : deployment.peerings()) all.push_back(p.id);
  const auto ingress = resolver.Resolve(all);

  std::vector<double> rtt(deployment.ugs().size(), 0.0);
  for (const auto& ug : deployment.ugs()) {
    const auto& choice = ingress[ug.id.value()];
    if (choice.has_value()) {
      rtt[ug.id.value()] =
          oracle.MeasureMin(ug.id, *choice, rng, ping_count).count();
    } else {
      // No route at all under anycast: treat as unreachable (huge RTT) so
      // any exposed path is an improvement.
      rtt[ug.id.value()] = 1e6;
    }
  }
  return rtt;
}

double UgToPopKm(const topo::Internet& internet,
                 const cloudsim::Deployment& deployment,
                 const cloudsim::UserGroup& ug, util::PeeringId peering) {
  const auto& metros = internet.metros;
  const auto& pop = deployment.pop(deployment.peering(peering).pop);
  return topo::Distance(metros[ug.metro.value()].location,
                        metros[pop.metro.value()].location)
      .count();
}

void Finalize(ProblemInstance& inst, const cloudsim::Deployment& deployment) {
  inst.peering_count = deployment.peerings().size();
  inst.ugs_with_peering.assign(inst.peering_count, {});
  inst.total_weight = 0.0;
  for (std::uint32_t u = 0; u < inst.UgCount(); ++u) {
    inst.total_weight += inst.ug_weight[u];
    std::sort(inst.options[u].begin(), inst.options[u].end(),
              [](const IngressOption& a, const IngressOption& b) {
                return a.peering < b.peering;
              });
    for (const IngressOption& opt : inst.options[u]) {
      inst.ugs_with_peering[opt.peering.value()].push_back(u);
    }
  }
}

}  // namespace

const IngressOption* ProblemInstance::Option(std::uint32_t ug,
                                             util::PeeringId peering) const {
  const auto& opts = options.at(ug);
  const auto it = std::lower_bound(
      opts.begin(), opts.end(), peering,
      [](const IngressOption& o, util::PeeringId p) { return o.peering < p; });
  if (it == opts.end() || it->peering != peering) return nullptr;
  return &*it;
}

double ProblemInstance::TotalPossibleBenefitMs() const {
  double acc = 0.0;
  for (std::uint32_t u = 0; u < UgCount(); ++u) {
    if (options[u].empty()) continue;
    double best = anycast_rtt_ms[u];
    for (const IngressOption& opt : options[u]) {
      best = std::min(best, opt.rtt_ms);
    }
    acc += ug_weight[u] * (anycast_rtt_ms[u] - best);
  }
  return total_weight == 0.0 ? 0.0 : acc / total_weight;
}

FlatPeeringIndex::FlatPeeringIndex(const ProblemInstance& instance) {
  offset.assign(instance.peering_count + 1, 0);
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    for (const IngressOption& opt : instance.options[u]) {
      ++offset[opt.peering.value() + 1];
    }
  }
  for (std::size_t g = 1; g < offset.size(); ++g) offset[g] += offset[g - 1];
  ug.resize(offset.back());
  option.resize(offset.back());
  std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    for (const IngressOption& opt : instance.options[u]) {
      const std::size_t slot = cursor[opt.peering.value()]++;
      ug[slot] = u;
      option[slot] = &opt;
    }
  }
}

ProblemInstance BuildMeasuredInstance(
    const topo::Internet& internet, const cloudsim::Deployment& deployment,
    const cloudsim::PolicyCatalog& catalog,
    const cloudsim::IngressResolver& resolver,
    const measure::LatencyOracle& oracle, util::Rng& rng, int ping_count) {
  ProblemInstance inst;
  const auto& ugs = deployment.ugs();
  inst.ug_weight.resize(ugs.size());
  inst.options.resize(ugs.size());
  inst.anycast_rtt_ms =
      MeasureAnycast(deployment, resolver, oracle, rng, ping_count);

  for (const auto& ug : ugs) {
    inst.ug_weight[ug.id.value()] = ug.traffic_weight;
    auto& opts = inst.options[ug.id.value()];
    for (util::PeeringId pid : catalog.CompliantPeerings(ug.id)) {
      opts.push_back(IngressOption{
          .peering = pid,
          .rtt_ms = oracle.MeasureMin(ug.id, pid, rng, ping_count).count(),
          .distance_km = UgToPopKm(internet, deployment, ug, pid)});
    }
  }
  Finalize(inst, deployment);
  return inst;
}

ProblemInstance BuildEstimatedInstance(
    const topo::Internet& internet, const cloudsim::Deployment& deployment,
    const cloudsim::PolicyCatalog& catalog,
    const cloudsim::IngressResolver& resolver,
    const measure::LatencyOracle& oracle,
    const measure::GeoTargetCatalog& targets, util::Rng& rng, double gp_km) {
  ProblemInstance inst;
  const auto& ugs = deployment.ugs();
  inst.ug_weight.resize(ugs.size());
  inst.options.resize(ugs.size());
  inst.anycast_rtt_ms = MeasureAnycast(deployment, resolver, oracle, rng, 7);

  for (const auto& ug : ugs) {
    inst.ug_weight[ug.id.value()] = ug.traffic_weight;
    auto& opts = inst.options[ug.id.value()];
    for (util::PeeringId pid : catalog.CompliantPeerings(ug.id)) {
      const auto est = targets.EstimateRtt(ug.id, pid, gp_km);
      if (!est.has_value()) continue;  // no target within GP: not covered
      opts.push_back(IngressOption{
          .peering = pid,
          .rtt_ms = est->count(),
          .distance_km = UgToPopKm(internet, deployment, ug, pid)});
    }
  }
  Finalize(inst, deployment);
  return inst;
}

}  // namespace painter::core
