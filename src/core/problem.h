// The orchestrator's view of the world: a ProblemInstance.
//
// Alg. 1 consumes, per user group: its traffic weight w(UG) (Eq. 1), the
// catalog of policy-compliant ingresses with an RTT estimate for each, the
// UG→PoP distance of each option (for the D_reuse exclusion and the
// inflation-likelihood weighting of §5.1.2), and the anycast baseline RTT.
//
// Two builders mirror the paper's two evaluation settings:
//  - BuildMeasuredInstance: the PEERING-prototype setting — RTTs come from
//    actual min-of-7 probe measurements through each compliant ingress.
//  - BuildEstimatedInstance: the Azure setting — advertisements were not
//    possible, so RTTs come from the Appendix-B geolocation-target heuristic
//    at a chosen uncertainty bound GP; options whose session has no usable
//    target are dropped (the paper covered 80.6% of traffic at GP = 450 km).
#pragma once

#include <cstdint>
#include <vector>

#include "cloudsim/ingress.h"
#include "measure/geolocation.h"
#include "measure/latency.h"

namespace painter::core {

struct IngressOption {
  util::PeeringId peering;
  double rtt_ms = 0.0;       // estimated or measured RTT through this ingress
  double distance_km = 0.0;  // great-circle UG→PoP distance
};

struct ProblemInstance {
  // Indexed by UG id value.
  std::vector<double> ug_weight;
  std::vector<double> anycast_rtt_ms;
  // Per UG: compliant ingress options, sorted by peering id.
  std::vector<std::vector<IngressOption>> options;

  // Inverted index: peering id value -> UG id values having that option.
  std::vector<std::vector<std::uint32_t>> ugs_with_peering;

  std::size_t peering_count = 0;
  double total_weight = 0.0;

  [[nodiscard]] std::size_t UgCount() const { return ug_weight.size(); }

  // The option entry for (ug, peering), or nullptr if not compliant/covered.
  [[nodiscard]] const IngressOption* Option(std::uint32_t ug,
                                            util::PeeringId peering) const;

  // Sum over UGs of w * max(0, anycast - best option): the total possible
  // benefit against which Fig. 6a/9b/14 normalize, divided by total weight
  // (i.e. a weighted-average improvement in ms).
  [[nodiscard]] double TotalPossibleBenefitMs() const;
};

// Flat, contiguous view of the inverted index for the orchestrator's hot
// loops: entries for peering g live in [offset[g], offset[g+1]) of the
// parallel arrays `ug` / `option`, listing each UG that has g among its
// compliant options (ascending UG id, matching ugs_with_peering order) and a
// pointer to that option entry. Built from `options` alone, so it stays
// consistent for instances filtered after construction (fig15's peer
// subsampling erases options and rebuilds orchestrators).
struct FlatPeeringIndex {
  explicit FlatPeeringIndex(const ProblemInstance& instance);

  std::vector<std::size_t> offset;           // peering_count + 1 entries
  std::vector<std::uint32_t> ug;             // UG id value per entry
  std::vector<const IngressOption*> option;  // the (ug, peering) option

  [[nodiscard]] std::size_t EntryCount() const { return ug.size(); }
};

// Prototype setting: probe each compliant ingress (min of `ping_count`).
[[nodiscard]] ProblemInstance BuildMeasuredInstance(
    const topo::Internet& internet, const cloudsim::Deployment& deployment,
    const cloudsim::PolicyCatalog& catalog,
    const cloudsim::IngressResolver& resolver,
    const measure::LatencyOracle& oracle, util::Rng& rng, int ping_count = 7);

// Azure setting: estimate through geolocated targets within `gp_km`.
[[nodiscard]] ProblemInstance BuildEstimatedInstance(
    const topo::Internet& internet, const cloudsim::Deployment& deployment,
    const cloudsim::PolicyCatalog& catalog,
    const cloudsim::IngressResolver& resolver,
    const measure::LatencyOracle& oracle,
    const measure::GeoTargetCatalog& targets, util::Rng& rng, double gp_km);

}  // namespace painter::core
