#include "core/evaluate.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace painter::core {

Orchestrator::Prediction PredictBenefit(const ProblemInstance& instance,
                                        const RoutingModel& model,
                                        const AdvertisementConfig& config,
                                        const ExpectationParams& params,
                                        std::size_t num_threads) {
  static obs::Counter& predictions =
      obs::Metrics().GetCounter("evaluator.predict.calls");
  predictions.Add();
  Orchestrator::Prediction pred;
  if (instance.total_weight == 0.0) return pred;

  // Appendix E.1 semantics: each UG selects the prefix with the best Mean
  // expectation (Eq. 2) and the reported range is that prefix's possible
  // ingress outcomes. Anycast stays available per flow, so each benefit is
  // floored at zero — but a UG on a reused prefix may realize anywhere in
  // [lower, upper], which is exactly the uncertainty One-per-PoP strategies
  // suffer from and One-per-Peering never has.
  //
  // UGs are independent: per-UG terms are computed (possibly concurrently)
  // into a dense buffer and reduced in UG order below, so the sums are
  // bit-identical to the serial accumulation at any thread count.
  struct Term {
    double lower = 0.0;
    double mean = 0.0;
    double estimated = 0.0;
    double upper = 0.0;
  };
  std::vector<Term> terms(instance.UgCount());
  util::ParallelFor(
      num_threads, 0, instance.UgCount(), /*grain=*/64,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto u = static_cast<std::uint32_t>(i);
          const double any = instance.anycast_rtt_ms[u];
          const PrefixExpectation* best = nullptr;
          PrefixExpectation scratch;
          for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
            const PrefixExpectation e = ComputeExpectation(
                instance, model, u, config.Sessions(p), params);
            if (!e.usable) continue;
            if (best == nullptr || e.mean_rtt < best->mean_rtt) {
              scratch = e;
              best = &scratch;
            }
          }
          if (best == nullptr || best->mean_rtt >= any) continue;  // anycast
          const double w = instance.ug_weight[u];
          terms[i].upper = w * std::max(0.0, any - best->lower_rtt);
          terms[i].mean = w * std::max(0.0, any - best->mean_rtt);
          terms[i].estimated = w * std::max(0.0, any - best->estimated_rtt);
          terms[i].lower = w * std::max(0.0, any - best->upper_rtt);
        }
      });
  for (const Term& t : terms) {
    pred.upper_ms += t.upper;
    pred.mean_ms += t.mean;
    pred.estimated_ms += t.estimated;
    pred.lower_ms += t.lower;
  }
  pred.lower_ms /= instance.total_weight;
  pred.mean_ms /= instance.total_weight;
  pred.estimated_ms /= instance.total_weight;
  pred.upper_ms /= instance.total_weight;
  return pred;
}

namespace {

// Flattens one Resolve result into the evaluator's ingress/day-0-RTT layout
// (-1 / +inf for unreachable), filling `ingress[base..base+n)` and
// `day0[base..base+n)`.
void FlattenResolved(
    const std::vector<std::optional<util::PeeringId>>& resolved,
    const measure::LatencyOracle& oracle, std::size_t base,
    std::int32_t* ingress, double* day0) {
  for (std::size_t u = 0; u < resolved.size(); ++u) {
    if (resolved[u].has_value()) {
      ingress[base + u] = static_cast<std::int32_t>(resolved[u]->value());
      day0[base + u] =
          oracle
              .TrueRttOnDay(util::UgId{static_cast<std::uint32_t>(u)},
                            *resolved[u], /*day=*/0)
              .count();
    } else {
      ingress[base + u] = -1;
      day0[base + u] = std::numeric_limits<double>::infinity();
    }
  }
}

}  // namespace

GroundTruthEvaluator::GroundTruthEvaluator(
    const cloudsim::Deployment& deployment,
    const cloudsim::IngressResolver& resolver,
    const measure::LatencyOracle& oracle)
    : deployment_(&deployment),
      resolver_(&resolver),
      oracle_(&oracle),
      ug_count_(deployment.ugs().size()) {
  std::vector<util::PeeringId> all;
  all.reserve(deployment.peerings().size());
  for (const auto& p : deployment.peerings()) all.push_back(p.id);
  anycast_ingress_.resize(ug_count_);
  anycast_day0_rtt_.resize(ug_count_);
  FlattenResolved(resolver.Resolve(all), oracle, 0, anycast_ingress_.data(),
                  anycast_day0_rtt_.data());
}

void GroundTruthEvaluator::SetConfig(const AdvertisementConfig& config) {
  static obs::Counter& resolves =
      obs::Metrics().GetCounter("evaluator.gt.prefix_resolves");
  const obs::TraceSpan span{"evaluator.gt.SetConfig"};
  prefix_count_ = config.PrefixCount();
  prefix_ingress_.assign(prefix_count_ * ug_count_, -1);
  prefix_day0_rtt_.assign(prefix_count_ * ug_count_, 0.0);
  resolves.Add(prefix_count_);
  // Prefixes resolve independently (Resolve and the oracle are const and
  // thread-safe) and each fills a disjoint row of the flat arrays.
  util::ParallelFor(
      num_threads_, 0, prefix_count_, /*grain=*/1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t p = chunk_begin; p < chunk_end; ++p) {
          FlattenResolved(resolver_->Resolve(config.Sessions(p)), *oracle_,
                          p * ug_count_, prefix_ingress_.data(),
                          prefix_day0_rtt_.data());
        }
      });
}

double GroundTruthEvaluator::RttOf(std::uint32_t u, int prefix,
                                   int day) const {
  const std::size_t slot =
      prefix < 0 ? u : static_cast<std::size_t>(prefix) * ug_count_ + u;
  const std::int32_t ingress =
      prefix < 0 ? anycast_ingress_[slot] : prefix_ingress_[slot];
  if (ingress < 0) return std::numeric_limits<double>::infinity();
  if (day == 0) {
    return prefix < 0 ? anycast_day0_rtt_[slot] : prefix_day0_rtt_[slot];
  }
  return oracle_
      ->TrueRttOnDay(util::UgId{u},
                     util::PeeringId{static_cast<std::uint32_t>(ingress)}, day)
      .count();
}

double GroundTruthEvaluator::MeanImprovementMs(int day) const {
  static obs::Counter& passes =
      obs::Metrics().GetCounter("evaluator.gt.passes");
  passes.Add();
  const obs::TraceSpan span{"evaluator.gt.MeanImprovementMs"};
  // Per-UG terms are staged and reduced in UG order (bit-identical to the
  // serial loop); all shared state (resolved ingresses, the oracle) is
  // read-only here.
  const auto& ugs = deployment_->ugs();
  struct Term {
    double acc = 0.0;
    double w = 0.0;
  };
  std::vector<Term> terms(ugs.size());
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto& ug = ugs[i];
          const std::uint32_t u = ug.id.value();
          const double any = RttOf(u, -1, day);
          double best = any;
          for (std::size_t p = 0; p < prefix_count_; ++p) {
            best = std::min(best, RttOf(u, static_cast<int>(p), day));
          }
          if (std::isfinite(any)) {
            terms[i].acc = ug.traffic_weight * (any - best);
            terms[i].w = ug.traffic_weight;
          }
        }
      });
  double acc = 0.0;
  double wsum = 0.0;
  for (const Term& t : terms) {
    acc += t.acc;
    wsum += t.w;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double GroundTruthEvaluator::PositiveMeanImprovementMs(int day) const {
  static obs::Counter& passes =
      obs::Metrics().GetCounter("evaluator.gt.passes");
  passes.Add();
  const obs::TraceSpan span{"evaluator.gt.PositiveMeanImprovementMs"};
  const auto& ugs = deployment_->ugs();
  struct Term {
    double acc = 0.0;
    double w = 0.0;
  };
  std::vector<Term> terms(ugs.size());
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto& ug = ugs[i];
          const std::uint32_t u = ug.id.value();
          const double any = RttOf(u, -1, day);
          double best = any;
          for (std::size_t p = 0; p < prefix_count_; ++p) {
            best = std::min(best, RttOf(u, static_cast<int>(p), day));
          }
          const double imp = any - best;
          if (std::isfinite(any) && imp > 1e-9) {
            terms[i].acc = ug.traffic_weight * imp;
            terms[i].w = ug.traffic_weight;
          }
        }
      });
  double acc = 0.0;
  double wsum = 0.0;
  for (const Term& t : terms) {
    acc += t.acc;
    wsum += t.w;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double GroundTruthEvaluator::MeanImprovementOverUgsMs(
    const std::vector<std::uint32_t>& ugs, int day) const {
  double acc = 0.0;
  double wsum = 0.0;
  for (const std::uint32_t u : ugs) {
    const auto& ug = deployment_->ug(util::UgId{u});
    const double any = RttOf(u, -1, day);
    if (!std::isfinite(any)) continue;
    double best = any;
    for (std::size_t p = 0; p < prefix_count_; ++p) {
      best = std::min(best, RttOf(u, static_cast<int>(p), day));
    }
    acc += ug.traffic_weight * (any - best);
    wsum += ug.traffic_weight;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

std::vector<std::uint32_t> GroundTruthEvaluator::BenefitingUgs(
    const cloudsim::PolicyCatalog& catalog, double threshold_ms,
    int day) const {
  const auto& ugs = deployment_->ugs();
  // Per-UG membership flags are staged (each iteration writes only its own
  // slot) and collected serially in UG order, so the set is identical to the
  // serial scan at any thread count.
  std::vector<std::uint8_t> benefits(ugs.size(), 0);
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto& ug = ugs[i];
          // Both sides of the headroom comparison use the same day's ground
          // truth so the set agrees with the improvement metrics for that day.
          const double any = RttOf(ug.id.value(), -1, day);
          if (!std::isfinite(any)) continue;
          double best = any;
          for (util::PeeringId pid : catalog.CompliantPeerings(ug.id)) {
            best =
                std::min(best, oracle_->TrueRttOnDay(ug.id, pid, day).count());
          }
          if (any - best > threshold_ms) benefits[i] = 1;
        }
      });
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < ugs.size(); ++i) {
    if (benefits[i]) out.push_back(ugs[i].id.value());
  }
  return out;
}

std::vector<int> GroundTruthEvaluator::Choices(int day) const {
  const auto& ugs = deployment_->ugs();
  std::vector<int> choices(ugs.size(), -1);
  // Each iteration writes only its own choices[u] slot.
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const std::uint32_t u = ugs[i].id.value();
          double best = RttOf(u, -1, day);
          for (std::size_t p = 0; p < prefix_count_; ++p) {
            const double rtt = RttOf(u, static_cast<int>(p), day);
            if (rtt < best) {
              best = rtt;
              choices[u] = static_cast<int>(p);
            }
          }
        }
      });
  return choices;
}

double GroundTruthEvaluator::MeanImprovementStaticMs(
    const std::vector<int>& choices, int day) const {
  double acc = 0.0;
  double wsum = 0.0;
  for (const auto& ug : deployment_->ugs()) {
    const std::uint32_t u = ug.id.value();
    const double any = RttOf(u, -1, day);
    if (!std::isfinite(any)) continue;
    double used = RttOf(u, choices.at(u), day);
    if (!std::isfinite(used)) used = any;  // pinned prefix unreachable
    acc += ug.traffic_weight * (any - used);
    wsum += ug.traffic_weight;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double GroundTruthEvaluator::PossibleMeanImprovementMs(
    const cloudsim::PolicyCatalog& catalog, int day) const {
  const auto& ugs = deployment_->ugs();
  // Per-UG terms are staged and reduced in UG order (bit-identical to the
  // serial loop at any thread count).
  struct Term {
    double acc = 0.0;
    double w = 0.0;
  };
  std::vector<Term> terms(ugs.size());
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto& ug = ugs[i];
          const std::uint32_t u = ug.id.value();
          const double any = RttOf(u, -1, day);
          if (!std::isfinite(any)) continue;
          double best = any;
          for (util::PeeringId pid : catalog.CompliantPeerings(ug.id)) {
            best =
                std::min(best, oracle_->TrueRttOnDay(ug.id, pid, day).count());
          }
          terms[i].acc = ug.traffic_weight * (any - best);
          terms[i].w = ug.traffic_weight;
        }
      });
  double acc = 0.0;
  double wsum = 0.0;
  for (const Term& t : terms) {
    acc += t.acc;
    wsum += t.w;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double EvaluateDnsSteering(const ProblemInstance& instance,
                           const RoutingModel& model,
                           const AdvertisementConfig& config,
                           const ExpectationParams& params,
                           const DnsSteeringInput& dns,
                           std::size_t num_threads) {
  if (instance.total_weight == 0.0) return 0.0;
  const obs::TraceSpan span{"evaluator.dns.EvaluateDnsSteering"};
  static obs::Counter& dns_passes =
      obs::Metrics().GetCounter("evaluator.dns.passes");
  static obs::Counter& dns_cells =
      obs::Metrics().GetCounter("evaluator.dns.matrix_cells");
  dns_passes.Add();
  dns_cells.Add(static_cast<std::uint64_t>(instance.UgCount()) *
                config.PrefixCount());
  const std::size_t n_resolvers = dns.resolver_supports_ecs.size();

  // Modeled RTT per (UG, prefix), stored row-major in one contiguous buffer
  // (rtt[u * cols + p]) — the resolver aggregation below walks a column
  // slice per UG, and per-row heap allocations dominated the fill at scale.
  // There is no anycast column: a UG falls back to anycast through the
  // `used` floor in the final loop below. Each (u, p) cell is independent;
  // the fill is parallelized over UGs.
  const std::size_t cols = config.PrefixCount();
  std::vector<double> rtt(instance.UgCount() * cols, 0.0);
  util::ParallelFor(
      num_threads, 0, instance.UgCount(), /*grain=*/16,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto u = static_cast<std::uint32_t>(i);
          double* row = rtt.data() + i * cols;
          for (std::size_t p = 0; p < cols; ++p) {
            const PrefixExpectation e = ComputeExpectation(
                instance, model, u, config.Sessions(p), params);
            row[p] = e.usable ? e.mean_rtt
                              : std::numeric_limits<double>::infinity();
          }
        }
      });

  // Per resolver: pick the single prefix (or anycast) with the best aggregate
  // improvement over its client UGs.
  std::vector<int> prefix_of_resolver(n_resolvers, -1);
  std::vector<std::vector<std::uint32_t>> ugs_of_resolver(n_resolvers);
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    ugs_of_resolver.at(dns.resolver_of_ug.at(u)).push_back(u);
  }
  for (std::size_t r = 0; r < n_resolvers; ++r) {
    if (dns.resolver_supports_ecs[r]) continue;  // handled per UG below
    double best_agg = 0.0;  // anycast baseline: zero improvement
    for (std::size_t p = 0; p < cols; ++p) {
      double agg = 0.0;
      for (std::uint32_t u : ugs_of_resolver[r]) {
        const double v = rtt[u * cols + p];
        if (!std::isfinite(v)) continue;  // falls back to anycast
        agg += instance.ug_weight[u] * (instance.anycast_rtt_ms[u] - v);
      }
      if (agg > best_agg) {
        best_agg = agg;
        prefix_of_resolver[r] = static_cast<int>(p);
      }
    }
  }

  double acc = 0.0;
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    const std::uint32_t r = dns.resolver_of_ug[u];
    double used = instance.anycast_rtt_ms[u];
    if (dns.resolver_supports_ecs[r]) {
      // ECS: the resolver can tailor the record per client /24 == per UG.
      for (std::size_t p = 0; p < cols; ++p) {
        used = std::min(used, rtt[u * cols + p]);
      }
    } else if (prefix_of_resolver[r] >= 0) {
      assert(static_cast<std::size_t>(prefix_of_resolver[r]) < cols);
      const double v =
          rtt[u * cols + static_cast<std::size_t>(prefix_of_resolver[r])];
      if (std::isfinite(v)) used = v;  // may be worse than anycast for this UG
    }
    acc += instance.ug_weight[u] * (instance.anycast_rtt_ms[u] - used);
  }
  return acc / instance.total_weight;
}

AdvertisementConfig Truncate(const AdvertisementConfig& config,
                             std::size_t budget) {
  AdvertisementConfig out;
  for (std::size_t p = 0; p < config.PrefixCount() && p < budget; ++p) {
    out.AddPrefix(config.Sessions(p));
  }
  return out;
}

}  // namespace painter::core
