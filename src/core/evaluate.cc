#include "core/evaluate.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace painter::core {

Orchestrator::Prediction PredictBenefit(const ProblemInstance& instance,
                                        const RoutingModel& model,
                                        const AdvertisementConfig& config,
                                        const ExpectationParams& params,
                                        std::size_t num_threads) {
  static obs::Counter& predictions =
      obs::Metrics().GetCounter("evaluator.predict.calls");
  predictions.Add();
  Orchestrator::Prediction pred;
  if (instance.total_weight == 0.0) return pred;

  // Appendix E.1 semantics: each UG selects the prefix with the best Mean
  // expectation (Eq. 2) and the reported range is that prefix's possible
  // ingress outcomes. Anycast stays available per flow, so each benefit is
  // floored at zero — but a UG on a reused prefix may realize anywhere in
  // [lower, upper], which is exactly the uncertainty One-per-PoP strategies
  // suffer from and One-per-Peering never has.
  //
  // UGs are independent: per-UG terms are computed (possibly concurrently)
  // into a dense buffer and reduced in UG order below, so the sums are
  // bit-identical to the serial accumulation at any thread count.
  struct Term {
    double lower = 0.0;
    double mean = 0.0;
    double estimated = 0.0;
    double upper = 0.0;
  };
  std::vector<Term> terms(instance.UgCount());
  util::ParallelFor(
      num_threads, 0, instance.UgCount(), /*grain=*/64,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto u = static_cast<std::uint32_t>(i);
          const double any = instance.anycast_rtt_ms[u];
          const PrefixExpectation* best = nullptr;
          PrefixExpectation scratch;
          for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
            const PrefixExpectation e = ComputeExpectation(
                instance, model, u, config.Sessions(p), params);
            if (!e.usable) continue;
            if (best == nullptr || e.mean_rtt < best->mean_rtt) {
              scratch = e;
              best = &scratch;
            }
          }
          if (best == nullptr || best->mean_rtt >= any) continue;  // anycast
          const double w = instance.ug_weight[u];
          terms[i].upper = w * std::max(0.0, any - best->lower_rtt);
          terms[i].mean = w * std::max(0.0, any - best->mean_rtt);
          terms[i].estimated = w * std::max(0.0, any - best->estimated_rtt);
          terms[i].lower = w * std::max(0.0, any - best->upper_rtt);
        }
      });
  for (const Term& t : terms) {
    pred.upper_ms += t.upper;
    pred.mean_ms += t.mean;
    pred.estimated_ms += t.estimated;
    pred.lower_ms += t.lower;
  }
  pred.lower_ms /= instance.total_weight;
  pred.mean_ms /= instance.total_weight;
  pred.estimated_ms /= instance.total_weight;
  pred.upper_ms /= instance.total_weight;
  return pred;
}

GroundTruthEvaluator::GroundTruthEvaluator(
    const cloudsim::Deployment& deployment,
    const cloudsim::IngressResolver& resolver,
    const measure::LatencyOracle& oracle)
    : deployment_(&deployment), resolver_(&resolver), oracle_(&oracle) {
  std::vector<util::PeeringId> all;
  all.reserve(deployment.peerings().size());
  for (const auto& p : deployment.peerings()) all.push_back(p.id);
  anycast_ingress_ = resolver.Resolve(all);
}

void GroundTruthEvaluator::SetConfig(const AdvertisementConfig& config) {
  static obs::Counter& resolves =
      obs::Metrics().GetCounter("evaluator.gt.prefix_resolves");
  prefix_ingress_.clear();
  prefix_ingress_.reserve(config.PrefixCount());
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    prefix_ingress_.push_back(resolver_->Resolve(config.Sessions(p)));
    resolves.Add();
  }
}

double GroundTruthEvaluator::RttOf(std::uint32_t u, int prefix,
                                   int day) const {
  const auto& ingress = prefix < 0
                            ? anycast_ingress_.at(u)
                            : prefix_ingress_.at(static_cast<std::size_t>(prefix)).at(u);
  if (!ingress.has_value()) return std::numeric_limits<double>::infinity();
  return oracle_->TrueRttOnDay(util::UgId{u}, *ingress, day).count();
}

double GroundTruthEvaluator::MeanImprovementMs(int day) const {
  static obs::Counter& passes =
      obs::Metrics().GetCounter("evaluator.gt.passes");
  passes.Add();
  const obs::TraceSpan span{"evaluator.gt.MeanImprovementMs"};
  // Per-UG terms are staged and reduced in UG order (bit-identical to the
  // serial loop); all shared state (resolved ingresses, the oracle) is
  // read-only here.
  const auto& ugs = deployment_->ugs();
  struct Term {
    double acc = 0.0;
    double w = 0.0;
  };
  std::vector<Term> terms(ugs.size());
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto& ug = ugs[i];
          const std::uint32_t u = ug.id.value();
          const double any = RttOf(u, -1, day);
          double best = any;
          for (std::size_t p = 0; p < prefix_ingress_.size(); ++p) {
            best = std::min(best, RttOf(u, static_cast<int>(p), day));
          }
          if (std::isfinite(any)) {
            terms[i].acc = ug.traffic_weight * (any - best);
            terms[i].w = ug.traffic_weight;
          }
        }
      });
  double acc = 0.0;
  double wsum = 0.0;
  for (const Term& t : terms) {
    acc += t.acc;
    wsum += t.w;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double GroundTruthEvaluator::PositiveMeanImprovementMs(int day) const {
  static obs::Counter& passes =
      obs::Metrics().GetCounter("evaluator.gt.passes");
  passes.Add();
  const obs::TraceSpan span{"evaluator.gt.PositiveMeanImprovementMs"};
  const auto& ugs = deployment_->ugs();
  struct Term {
    double acc = 0.0;
    double w = 0.0;
  };
  std::vector<Term> terms(ugs.size());
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto& ug = ugs[i];
          const std::uint32_t u = ug.id.value();
          const double any = RttOf(u, -1, day);
          double best = any;
          for (std::size_t p = 0; p < prefix_ingress_.size(); ++p) {
            best = std::min(best, RttOf(u, static_cast<int>(p), day));
          }
          const double imp = any - best;
          if (std::isfinite(any) && imp > 1e-9) {
            terms[i].acc = ug.traffic_weight * imp;
            terms[i].w = ug.traffic_weight;
          }
        }
      });
  double acc = 0.0;
  double wsum = 0.0;
  for (const Term& t : terms) {
    acc += t.acc;
    wsum += t.w;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double GroundTruthEvaluator::MeanImprovementOverUgsMs(
    const std::vector<std::uint32_t>& ugs, int day) const {
  double acc = 0.0;
  double wsum = 0.0;
  for (const std::uint32_t u : ugs) {
    const auto& ug = deployment_->ug(util::UgId{u});
    const double any = RttOf(u, -1, day);
    if (!std::isfinite(any)) continue;
    double best = any;
    for (std::size_t p = 0; p < prefix_ingress_.size(); ++p) {
      best = std::min(best, RttOf(u, static_cast<int>(p), day));
    }
    acc += ug.traffic_weight * (any - best);
    wsum += ug.traffic_weight;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

std::vector<std::uint32_t> GroundTruthEvaluator::BenefitingUgs(
    const cloudsim::PolicyCatalog& catalog, double threshold_ms,
    int day) const {
  std::vector<std::uint32_t> out;
  for (const auto& ug : deployment_->ugs()) {
    // Both sides of the headroom comparison use the same day's ground truth
    // so the set agrees with the improvement metrics for that day.
    const double any = RttOf(ug.id.value(), -1, day);
    if (!std::isfinite(any)) continue;
    double best = any;
    for (util::PeeringId pid : catalog.CompliantPeerings(ug.id)) {
      best = std::min(best, oracle_->TrueRttOnDay(ug.id, pid, day).count());
    }
    if (any - best > threshold_ms) out.push_back(ug.id.value());
  }
  return out;
}

std::vector<int> GroundTruthEvaluator::Choices(int day) const {
  const auto& ugs = deployment_->ugs();
  std::vector<int> choices(ugs.size(), -1);
  // Each iteration writes only its own choices[u] slot.
  util::ParallelFor(
      num_threads_, 0, ugs.size(), /*grain=*/32,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const std::uint32_t u = ugs[i].id.value();
          double best = RttOf(u, -1, day);
          for (std::size_t p = 0; p < prefix_ingress_.size(); ++p) {
            const double rtt = RttOf(u, static_cast<int>(p), day);
            if (rtt < best) {
              best = rtt;
              choices[u] = static_cast<int>(p);
            }
          }
        }
      });
  return choices;
}

double GroundTruthEvaluator::MeanImprovementStaticMs(
    const std::vector<int>& choices, int day) const {
  double acc = 0.0;
  double wsum = 0.0;
  for (const auto& ug : deployment_->ugs()) {
    const std::uint32_t u = ug.id.value();
    const double any = RttOf(u, -1, day);
    if (!std::isfinite(any)) continue;
    double used = RttOf(u, choices.at(u), day);
    if (!std::isfinite(used)) used = any;  // pinned prefix unreachable
    acc += ug.traffic_weight * (any - used);
    wsum += ug.traffic_weight;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double GroundTruthEvaluator::PossibleMeanImprovementMs(
    const cloudsim::PolicyCatalog& catalog, int day) const {
  double acc = 0.0;
  double wsum = 0.0;
  for (const auto& ug : deployment_->ugs()) {
    const std::uint32_t u = ug.id.value();
    const double any = RttOf(u, -1, day);
    if (!std::isfinite(any)) continue;
    double best = any;
    for (util::PeeringId pid : catalog.CompliantPeerings(ug.id)) {
      best = std::min(best,
                      oracle_->TrueRttOnDay(ug.id, pid, day).count());
    }
    acc += ug.traffic_weight * (any - best);
    wsum += ug.traffic_weight;
  }
  return wsum == 0.0 ? 0.0 : acc / wsum;
}

double EvaluateDnsSteering(const ProblemInstance& instance,
                           const RoutingModel& model,
                           const AdvertisementConfig& config,
                           const ExpectationParams& params,
                           const DnsSteeringInput& dns,
                           std::size_t num_threads) {
  if (instance.total_weight == 0.0) return 0.0;
  const obs::TraceSpan span{"evaluator.dns.EvaluateDnsSteering"};
  static obs::Counter& dns_passes =
      obs::Metrics().GetCounter("evaluator.dns.passes");
  static obs::Counter& dns_cells =
      obs::Metrics().GetCounter("evaluator.dns.matrix_cells");
  dns_passes.Add();
  dns_cells.Add(static_cast<std::uint64_t>(instance.UgCount()) *
                config.PrefixCount());
  const std::size_t n_resolvers = dns.resolver_supports_ecs.size();

  // Modeled RTT per (UG, prefix). There is no anycast column: a UG falls
  // back to anycast through the `used` floor in the final loop below.
  // Each (u, p) cell is independent; the fill is parallelized over UGs.
  const std::size_t cols = config.PrefixCount();
  std::vector<std::vector<double>> rtt(instance.UgCount(),
                                       std::vector<double>(cols, 0.0));
  util::ParallelFor(
      num_threads, 0, instance.UgCount(), /*grain=*/16,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const auto u = static_cast<std::uint32_t>(i);
          for (std::size_t p = 0; p < cols; ++p) {
            const PrefixExpectation e = ComputeExpectation(
                instance, model, u, config.Sessions(p), params);
            rtt[u][p] = e.usable ? e.mean_rtt
                                 : std::numeric_limits<double>::infinity();
          }
        }
      });

  // Per resolver: pick the single prefix (or anycast) with the best aggregate
  // improvement over its client UGs.
  std::vector<int> prefix_of_resolver(n_resolvers, -1);
  std::vector<std::vector<std::uint32_t>> ugs_of_resolver(n_resolvers);
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    ugs_of_resolver.at(dns.resolver_of_ug.at(u)).push_back(u);
  }
  for (std::size_t r = 0; r < n_resolvers; ++r) {
    if (dns.resolver_supports_ecs[r]) continue;  // handled per UG below
    double best_agg = 0.0;  // anycast baseline: zero improvement
    for (std::size_t p = 0; p < cols; ++p) {
      double agg = 0.0;
      for (std::uint32_t u : ugs_of_resolver[r]) {
        if (!std::isfinite(rtt[u][p])) continue;  // falls back to anycast
        agg += instance.ug_weight[u] * (instance.anycast_rtt_ms[u] - rtt[u][p]);
      }
      if (agg > best_agg) {
        best_agg = agg;
        prefix_of_resolver[r] = static_cast<int>(p);
      }
    }
  }

  double acc = 0.0;
  for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
    const std::uint32_t r = dns.resolver_of_ug[u];
    double used = instance.anycast_rtt_ms[u];
    if (dns.resolver_supports_ecs[r]) {
      // ECS: the resolver can tailor the record per client /24 == per UG.
      for (std::size_t p = 0; p < cols; ++p) used = std::min(used, rtt[u][p]);
    } else if (prefix_of_resolver[r] >= 0) {
      assert(static_cast<std::size_t>(prefix_of_resolver[r]) < cols);
      const double v = rtt[u][static_cast<std::size_t>(prefix_of_resolver[r])];
      if (std::isfinite(v)) used = v;  // may be worse than anycast for this UG
    }
    acc += instance.ug_weight[u] * (instance.anycast_rtt_ms[u] - used);
  }
  return acc / instance.total_weight;
}

AdvertisementConfig Truncate(const AdvertisementConfig& config,
                             std::size_t budget) {
  AdvertisementConfig out;
  for (std::size_t p = 0; p < config.PrefixCount() && p < budget; ++p) {
    out.AddPrefix(config.Sessions(p));
  }
  return out;
}

}  // namespace painter::core
