// Advertisement configurations.
//
// The paper models an advertisement configuration A as a set of
// (peering, prefix) pairs: (peering, prefix) ∈ A means the prefix is
// announced over that peering session (§3.1). We group by prefix: a
// configuration is a list of prefixes, each carrying the sorted set of
// sessions announcing it. Prefix ids are positional (index in the list); the
// anycast prefix is implicit — the cloud always keeps announcing it (§3).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/ids.h"

namespace painter::core {

class AdvertisementConfig {
 public:
  AdvertisementConfig() = default;

  // Appends a new prefix announced via `sessions`; returns its index.
  std::size_t AddPrefix(std::vector<util::PeeringId> sessions) {
    std::sort(sessions.begin(), sessions.end());
    sessions.erase(std::unique(sessions.begin(), sessions.end()),
                   sessions.end());
    prefixes_.push_back(std::move(sessions));
    return prefixes_.size() - 1;
  }

  // Adds a session to an existing prefix, keeping the set sorted.
  void AddToPrefix(std::size_t prefix, util::PeeringId session) {
    auto& s = prefixes_.at(prefix);
    const auto it = std::lower_bound(s.begin(), s.end(), session);
    if (it == s.end() || *it != session) s.insert(it, session);
  }

  [[nodiscard]] std::size_t PrefixCount() const { return prefixes_.size(); }

  // Prefixes actually carrying at least one announcement (the budget used).
  [[nodiscard]] std::size_t NonEmptyPrefixCount() const {
    std::size_t n = 0;
    for (const auto& s : prefixes_) n += s.empty() ? 0 : 1;
    return n;
  }

  [[nodiscard]] const std::vector<util::PeeringId>& Sessions(
      std::size_t prefix) const {
    return prefixes_.at(prefix);
  }

  [[nodiscard]] bool Contains(std::size_t prefix, util::PeeringId s) const {
    const auto& v = prefixes_.at(prefix);
    return std::binary_search(v.begin(), v.end(), s);
  }

  // Total number of (peering, prefix) announcement pairs.
  [[nodiscard]] std::size_t AnnouncementCount() const {
    std::size_t n = 0;
    for (const auto& s : prefixes_) n += s.size();
    return n;
  }

 private:
  std::vector<std::vector<util::PeeringId>> prefixes_;
};

}  // namespace painter::core
