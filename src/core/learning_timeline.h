// Event-driven advertisement rounds on the shared DES timeline.
//
// Orchestrator::Learn() runs its iterations back-to-back in an external
// loop — fine for pure optimization studies, but it gives advertisement
// changes no place on the simulated clock, so nothing else (workload ticks,
// DNS TTL refreshes, fault plans) can interleave with them. LearningTimeline
// puts each round where it belongs: round k is a simulator event at exactly
// start + k * round_interval on the absolute integer-µs grid (DESIGN.md §11),
// and the next round is scheduled only while Orchestrator::LearningComplete
// says the loop should continue. The iteration body and termination rule are
// the same code Learn() calls, so the report sequence is bit-identical to
// Learn() on the same orchestrator and environment — the golden tests pin
// this equivalence.
//
// The round callback fires after each iteration with the report and the raw
// environment observations; the unified timeline uses it to publish the new
// configuration version to the TTL cache layer, which is how DNS staleness
// lag between "advertised" and "clients actually steered" becomes visible.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/orchestrator.h"
#include "netsim/sim.h"

namespace painter::obs {
class TimeseriesRegistry;
}  // namespace painter::obs

namespace painter::core {

struct LearningTimelineConfig {
  double start_s = 0.0;           // first round, relative to Start()
  double round_interval_s = 60.0; // spacing between advertisement rounds
  // Optional streaming telemetry: each completed round appends one point to
  // the `orchestrator.round.predicted_ms` and `orchestrator.round.realized_ms`
  // event series, stamped at the round's simulator time. The registry must
  // outlive the timeline; null records nothing.
  obs::TimeseriesRegistry* timeseries = nullptr;
};

class LearningTimeline {
 public:
  // (round index, that round's report, raw per-prefix observations).
  using RoundCallback = std::function<void(
      std::size_t, const Orchestrator::IterationReport&,
      const std::vector<AdvertisementEnvironment::PrefixObservation>&)>;

  // All references must outlive the timeline. Rounds draw no randomness of
  // their own; determinism is inherited from the orchestrator/environment.
  LearningTimeline(netsim::Simulator& sim, Orchestrator& orchestrator,
                   AdvertisementEnvironment& env, LearningTimelineConfig config,
                   RoundCallback on_round = {});

  // Schedules round 0 at Now() + start_s; each completed round schedules its
  // successor on the absolute grid until LearningComplete. Call once.
  void Start();

  // Reports of the rounds run so far (== Learn()'s return when finished).
  [[nodiscard]] const std::vector<Orchestrator::IterationReport>& reports()
      const {
    return reports_;
  }
  [[nodiscard]] bool Finished() const { return finished_; }
  [[nodiscard]] std::size_t RoundsRun() const { return reports_.size(); }

 private:
  void RunRound();

  netsim::Simulator* sim_;
  Orchestrator* orchestrator_;
  AdvertisementEnvironment* env_;
  LearningTimelineConfig config_;
  RoundCallback on_round_;
  netsim::SimTime anchor_us_ = 0;  // grid origin: Start() time + start_s
  netsim::SimTime interval_us_ = 0;
  std::vector<Orchestrator::IterationReport> reports_;
  bool finished_ = false;
};

}  // namespace painter::core
