// AdvertisementEnvironment backed by the simulated Internet.
//
// This is the reproduction's stand-in for the paper's PEERING/Vultr prototype
// (§4): executing a configuration really announces each prefix into the
// AS-level BGP simulation, the interdomain outcome decides each UG's ingress,
// and TM-Edges measure the resulting RTT with min-of-N pings against the
// ground-truth oracle. The orchestrator never sees the oracle directly.
#pragma once

#include "core/orchestrator.h"
#include "cloudsim/ingress.h"
#include "measure/latency.h"

namespace painter::core {

class SimEnvironment final : public AdvertisementEnvironment {
 public:
  SimEnvironment(const cloudsim::IngressResolver& resolver,
                 const measure::LatencyOracle& oracle, util::Rng rng,
                 int ping_count = 7, int day = 0)
      : resolver_(&resolver),
        oracle_(&oracle),
        rng_(rng),
        ping_count_(ping_count),
        day_(day) {}

  [[nodiscard]] std::vector<PrefixObservation> Execute(
      const AdvertisementConfig& config) override;

  void set_day(int day) { day_ = day; }

 private:
  const cloudsim::IngressResolver* resolver_;
  const measure::LatencyOracle* oracle_;
  util::Rng rng_;
  int ping_count_;
  int day_;
};

}  // namespace painter::core
