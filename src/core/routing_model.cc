#include "core/routing_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace painter::core {
namespace {

std::uint64_t PairKey(util::PeeringId winner, util::PeeringId loser) {
  return (static_cast<std::uint64_t>(winner.value()) << 32) | loser.value();
}

}  // namespace

RoutingModel::RoutingModel(std::size_t ug_count)
    : prefers_(ug_count), measured_(ug_count) {}

void RoutingModel::ObservePreference(
    std::uint32_t ug, util::PeeringId chosen,
    std::span<const util::PeeringId> candidates) {
  static obs::Counter& learned =
      obs::Metrics().GetCounter("model.preferences_learned");
  auto& set = prefers_.at(ug);
  for (util::PeeringId other : candidates) {
    if (other == chosen) continue;
    const std::uint64_t key = PairKey(chosen, other);
    const auto it = std::lower_bound(set.begin(), set.end(), key);
    if (it == set.end() || *it != key) {
      set.insert(it, key);
      ++preference_count_;
      learned.Add();
    }
    // Observations are ground truth; retract any stale opposite belief.
    const std::uint64_t opposite = PairKey(other, chosen);
    const auto oit = std::lower_bound(set.begin(), set.end(), opposite);
    if (oit != set.end() && *oit == opposite) {
      set.erase(oit);
      --preference_count_;
    }
  }
}

void RoutingModel::ObserveLatency(std::uint32_t ug, util::PeeringId ingress,
                                  double rtt_ms) {
  static obs::Counter& observed =
      obs::Metrics().GetCounter("model.rtt_observations");
  observed.Add();
  measured_.at(ug)[ingress.value()] = rtt_ms;
}

bool RoutingModel::IsDominated(
    std::uint32_t ug, util::PeeringId candidate,
    std::span<const util::PeeringId> active) const {
  const auto& set = prefers_.at(ug);
  if (set.empty()) return false;
  for (util::PeeringId other : active) {
    if (other == candidate) continue;
    if (std::binary_search(set.begin(), set.end(),
                           PairKey(other, candidate))) {
      return true;
    }
  }
  return false;
}

std::optional<double> RoutingModel::MeasuredRtt(std::uint32_t ug,
                                                util::PeeringId ingress) const {
  const auto& m = measured_.at(ug);
  const auto it = m.find(ingress.value());
  if (it == m.end()) return std::nullopt;
  return it->second;
}

PrefixExpectation ComputeExpectationFromCandidates(
    const RoutingModel& model, std::uint32_t ug,
    std::span<const IngressOption* const> candidates,
    const ExpectationParams& params) {
  PrefixExpectation out;
  if (candidates.empty()) return out;

  struct Cand {
    const IngressOption* opt;
    double rtt;
  };
  // Reused scratch: the greedy inner loop calls this millions of times.
  thread_local std::vector<Cand> cands;
  thread_local std::vector<util::PeeringId> active;
  cands.clear();
  for (const IngressOption* opt : candidates) {
    const auto measured = model.MeasuredRtt(ug, opt->peering);
    cands.push_back(Cand{opt, measured.value_or(opt->rtt_ms)});
  }

  // Preference exclusion: drop candidates dominated by another candidate the
  // UG is known to prefer.
  if (cands.size() > 1) {
    active.clear();
    for (const Cand& c : cands) active.push_back(c.opt->peering);
    std::erase_if(cands, [&](const Cand& c) {
      return model.IsDominated(ug, c.opt->peering, active);
    });
    if (cands.empty()) return out;
  }

  // D_reuse exclusion: drop candidates whose PoP is more than D_reuse km
  // farther from the UG than the closest surviving candidate PoP.
  if (cands.size() > 1) {
    double min_km = cands.front().opt->distance_km;
    for (const Cand& c : cands) min_km = std::min(min_km, c.opt->distance_km);
    std::erase_if(cands, [&](const Cand& c) {
      return c.opt->distance_km - min_km > params.d_reuse_km;
    });
  }

  out.usable = true;
  out.candidate_count = cands.size();
  out.lower_rtt = cands.front().rtt;
  out.upper_rtt = cands.front().rtt;
  double sum = 0.0;
  double wsum = 0.0;
  double wnorm = 0.0;
  double min_km = cands.front().opt->distance_km;
  for (const Cand& c : cands) min_km = std::min(min_km, c.opt->distance_km);
  for (const Cand& c : cands) {
    out.lower_rtt = std::min(out.lower_rtt, c.rtt);
    out.upper_rtt = std::max(out.upper_rtt, c.rtt);
    sum += c.rtt;
    const double w =
        std::exp(-(c.opt->distance_km - min_km) / params.inflation_decay_km);
    wsum += w * c.rtt;
    wnorm += w;
  }
  out.mean_rtt = sum / static_cast<double>(cands.size());
  out.estimated_rtt = wnorm == 0.0 ? out.mean_rtt : wsum / wnorm;
  return out;
}

PrefixExpectation ComputeExpectation(
    const ProblemInstance& instance, const RoutingModel& model,
    std::uint32_t ug, std::span<const util::PeeringId> advertised_sessions,
    const ExpectationParams& params) {
  const auto& opts = instance.options.at(ug);
  if (opts.empty() || advertised_sessions.empty()) return {};

  // Candidates: compliant options ∩ advertised sessions (both sorted by id).
  thread_local std::vector<const IngressOption*> isect;
  isect.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < opts.size() && j < advertised_sessions.size()) {
    if (opts[i].peering < advertised_sessions[j]) {
      ++i;
    } else if (advertised_sessions[j] < opts[i].peering) {
      ++j;
    } else {
      isect.push_back(&opts[i]);
      ++i;
      ++j;
    }
  }
  return ComputeExpectationFromCandidates(model, ug, isect, params);
}

}  // namespace painter::core
