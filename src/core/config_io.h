// Advertisement-configuration serialization.
//
// The Advertisement Orchestrator "would install computed configurations at
// Azure PoPs, and notify the Traffic Manager about available prefixes via a
// control channel" (§3.1). Installation and auditing need a stable wire
// format; this is a minimal line-oriented one:
//
//   # painter-advertisement-config v1
//   prefix 0: 3 17 42
//   prefix 1: 5
//
// Session ids are validated against a deployment on load, so a stale config
// cannot be installed against a changed peering fabric.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/advertisement.h"
#include "cloudsim/deployment.h"

namespace painter::core {

// Writes `config` in the v1 text format.
void WriteConfig(std::ostream& os, const AdvertisementConfig& config);

[[nodiscard]] std::string ConfigToString(const AdvertisementConfig& config);

struct ParseError {
  std::size_t line = 0;
  std::string message;
};

// Parses the v1 format. On failure returns nullopt and fills `error` (if
// non-null). When `deployment` is provided, every session id must exist in
// it.
[[nodiscard]] std::optional<AdvertisementConfig> ReadConfig(
    std::istream& is, const cloudsim::Deployment* deployment = nullptr,
    ParseError* error = nullptr);

[[nodiscard]] std::optional<AdvertisementConfig> ConfigFromString(
    const std::string& text,
    const cloudsim::Deployment* deployment = nullptr,
    ParseError* error = nullptr);

}  // namespace painter::core
