#include "core/learning_timeline.h"

#include <stdexcept>
#include <utility>

#include "obs/timeseries.h"

namespace painter::core {

LearningTimeline::LearningTimeline(netsim::Simulator& sim,
                                   Orchestrator& orchestrator,
                                   AdvertisementEnvironment& env,
                                   LearningTimelineConfig config,
                                   RoundCallback on_round)
    : sim_(&sim),
      orchestrator_(&orchestrator),
      env_(&env),
      config_(config),
      on_round_(std::move(on_round)),
      interval_us_(netsim::UsFromSeconds(config.round_interval_s)) {
  if (interval_us_ == 0) {
    throw std::invalid_argument{
        "LearningTimeline: round_interval_s below 1 microsecond"};
  }
}

void LearningTimeline::Start() {
  anchor_us_ = sim_->NowUs() + netsim::UsFromSeconds(config_.start_s);
  sim_->ScheduleAtUs(anchor_us_, [this]() { RunRound(); });
}

void LearningTimeline::RunRound() {
  const std::size_t round = reports_.size();
  std::vector<AdvertisementEnvironment::PrefixObservation> observations;
  reports_.push_back(
      orchestrator_->RunLearningIteration(*env_, round, &observations));
  if (config_.timeseries != nullptr) {
    const Orchestrator::IterationReport& rep = reports_.back();
    config_.timeseries->Append("orchestrator.round.predicted_ms",
                               sim_->NowUs(), rep.predicted.estimated_ms);
    config_.timeseries->Append("orchestrator.round.realized_ms", sim_->NowUs(),
                               rep.realized_ms);
  }
  if (on_round_) on_round_(round, reports_.back(), observations);

  if (orchestrator_->LearningComplete(reports_)) {
    finished_ = true;
    return;
  }
  // Round k+1 at anchor + (k+1) * interval — re-derived from the round
  // index on the absolute grid, like every other periodic scheduler here.
  sim_->ScheduleAtUs(anchor_us_ + (round + 1) * interval_us_,
                     [this]() { RunRound(); });
}

}  // namespace painter::core
