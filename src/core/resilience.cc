#include "core/resilience.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace painter::core {
namespace {

// Fraction of `defaults` (sorted) not present in `alt`.
double AvoidedFraction(const std::vector<std::uint32_t>& defaults,
                       const std::vector<util::AsId>& alt) {
  if (defaults.empty()) return 1.0;
  std::size_t hit = 0;
  for (util::AsId a : alt) {
    if (std::binary_search(defaults.begin(), defaults.end(), a.value())) {
      ++hit;
    }
  }
  return 1.0 -
         static_cast<double>(hit) / static_cast<double>(defaults.size());
}

}  // namespace

ResilienceAnalyzer::ResilienceAnalyzer(const topo::Internet& internet,
                                       const cloudsim::Deployment& deployment,
                                       const cloudsim::PolicyCatalog& catalog)
    : internet_(&internet),
      deployment_(&deployment),
      catalog_(&catalog),
      engine_(internet.graph),
      anycast_outcome_(internet.graph.size(), deployment.cloud_as()) {
  cloudsim::IngressResolver resolver{internet, deployment};
  std::vector<util::PeeringId> all;
  for (const auto& p : deployment.peerings()) all.push_back(p.id);
  auto result = resolver.ResolveWithRoutes(all);
  anycast_ingress_ = std::move(result.ingress_of_ug);
  anycast_outcome_ = std::move(result.outcome);
}

std::vector<std::vector<util::PopId>> ResilienceAnalyzer::RegionalPops(
    double coverage) const {
  const auto& metros = internet_->metros;
  // Volume entering each PoP from UGs of each metro, under anycast.
  std::vector<std::unordered_map<std::uint32_t, double>> vol(metros.size());
  for (const auto& ug : deployment_->ugs()) {
    const auto& ingress = anycast_ingress_.at(ug.id.value());
    if (!ingress.has_value()) continue;
    const util::PopId pop = deployment_->peering(*ingress).pop;
    vol[ug.metro.value()][pop.value()] += ug.traffic_weight;
  }
  std::vector<std::vector<util::PopId>> regional(metros.size());
  for (std::size_t m = 0; m < metros.size(); ++m) {
    std::vector<std::pair<double, std::uint32_t>> ranked;
    double total = 0.0;
    for (const auto& [pop, v] : vol[m]) {
      ranked.emplace_back(v, pop);
      total += v;
    }
    std::sort(ranked.rbegin(), ranked.rend());
    double acc = 0.0;
    for (const auto& [v, pop] : ranked) {
      regional[m].push_back(util::PopId{pop});
      acc += v;
      if (acc >= coverage * total) break;
    }
  }
  return regional;
}

std::vector<UgResilience> ResilienceAnalyzer::AnalyzeAll() const {
  const topo::AsGraph& g = internet_->graph;
  const auto& ugs = deployment_->ugs();
  std::vector<UgResilience> out(ugs.size());

  const auto regional_pops = RegionalPops(0.9);

  // Default anycast path ASes per UG, sorted for membership tests. The UG's
  // own AS, its first-hop access ISP, and the cloud are excluded: those legs
  // cannot be avoided by any ingress steering (a problem shared by all paths
  // is out of scope, §3.3) — what matters is routing around the
  // *intermediate* ASes, the Fig. 1 scenario.
  std::vector<std::vector<std::uint32_t>> default_path(ugs.size());
  for (const auto& ug : ugs) {
    if (!anycast_outcome_.Reachable(ug.as)) continue;
    const auto path = anycast_outcome_.Path(ug.as);
    for (std::size_t i = 1; i < path.size(); ++i) {  // skip the first hop
      const util::AsId a = path[i];
      if (a != deployment_->cloud_as() && a != ug.as) {
        default_path[ug.id.value()].push_back(a.value());
      }
    }
    auto& dp = default_path[ug.id.value()];
    std::sort(dp.begin(), dp.end());
    dp.erase(std::unique(dp.begin(), dp.end()), dp.end());
  }

  // --- SD-WAN: one path per ISP (tunnel through the ISP, then the ISP's own
  // anycast route), plus a direct path if the UG's AS peers with the cloud.
  for (const auto& ug : ugs) {
    UgResilience& r = out[ug.id.value()];
    std::unordered_set<std::uint32_t> pops;
    for (util::AsId isp : g.providers(ug.as)) {
      if (!anycast_outcome_.Reachable(isp)) continue;
      ++r.sdwan_paths;
      // ISP path to the cloud = the ISP plus its anycast AS path.
      std::vector<util::AsId> alt{isp};
      for (util::AsId a : anycast_outcome_.Path(isp)) {
        if (a != deployment_->cloud_as()) alt.push_back(a);
      }
      r.sdwan_avoid_frac = std::max(
          r.sdwan_avoid_frac,
          AvoidedFraction(default_path[ug.id.value()], alt));
      // The PoP the ISP's traffic would enter: resolve via its entry AS.
      const auto entry = anycast_outcome_.EntryAs(isp);
      if (entry.has_value()) {
        auto sessions = deployment_->PeeringsOfAs(*entry);
        if (!sessions.empty()) {
          // Early-exit approximation for the counting analysis.
          pops.insert(
              deployment_->peering(sessions.front()).pop.value());
        }
      }
    }
    if (!deployment_->PeeringsOfAs(ug.as).empty()) {
      // Direct connection: one more path avoiding every intermediate AS.
      ++r.sdwan_paths;
      r.sdwan_avoid_frac = 1.0;
      for (util::PeeringId pid : deployment_->PeeringsOfAs(ug.as)) {
        pops.insert(deployment_->peering(pid).pop.value());
      }
    }
    r.sdwan_pops = pops.size();
  }

  // --- PAINTER path counts. ---
  // Lower bound: one path per compliant session at the UG's regional PoPs
  // (what the Advertisement Orchestrator exposes). Upper bound: the exact
  // number of valley-free AS paths to the cloud (what a hypothetical
  // orchestrator manipulating advertisement attributes could expose, capped
  // for the CDF so combinatorial tails don't swamp it).
  const bgpsim::PathCounts all_paths =
      bgpsim::CountValleyFreePaths(g, deployment_->cloud_as());
  for (const auto& ug : ugs) {
    UgResilience& r = out[ug.id.value()];
    const auto& nearby = regional_pops[ug.metro.value()];
    std::unordered_set<std::uint32_t> pops;
    for (util::PeeringId pid : catalog_->CompliantPeerings(ug.id)) {
      const cloudsim::Peering& sess = deployment_->peering(pid);
      if (std::find(nearby.begin(), nearby.end(), sess.pop) == nearby.end()) {
        continue;
      }
      ++r.painter_paths_lb;
      pops.insert(sess.pop.value());
    }
    r.painter_pops = pops.size();
    constexpr double kPathCountCap = 10000.0;
    r.painter_paths_ub = static_cast<std::size_t>(std::max(
        static_cast<double>(r.painter_paths_lb),
        std::min(kPathCountCap, all_paths.total[ug.as.value()])));
  }

  // --- PAINTER avoidance: alternate path per compliant neighbor AS. ---
  // Propagate one single-neighbor announcement per distinct neighbor AS and
  // fold the resulting paths into every UG that has that neighbor compliant.
  std::unordered_map<util::AsId, std::vector<util::UgId>> ugs_of_neighbor;
  for (const auto& ug : ugs) {
    std::unordered_set<std::uint32_t> seen;
    for (util::PeeringId pid : catalog_->CompliantPeerings(ug.id)) {
      const util::AsId peer = deployment_->peering(pid).peer;
      if (seen.insert(peer.value()).second) {
        ugs_of_neighbor[peer].push_back(ug.id);
      }
    }
  }
  // Iterate neighbors in sorted id order, not hash order, so the max-fold
  // below (and any instrumentation of Propagate) runs in a reproducible
  // sequence regardless of the hash function.
  std::vector<util::AsId> neighbor_order;
  neighbor_order.reserve(ugs_of_neighbor.size());
  for (const auto& [neighbor, members] : ugs_of_neighbor) {
    neighbor_order.push_back(neighbor);
  }
  std::sort(neighbor_order.begin(), neighbor_order.end(),
            [](util::AsId a, util::AsId b) { return a.value() < b.value(); });
  for (const util::AsId neighbor : neighbor_order) {
    const std::vector<util::UgId>& members = ugs_of_neighbor.at(neighbor);
    const bgpsim::Announcement ann{.prefix = util::PrefixId{0},
                                   .origin = deployment_->cloud_as(),
                                   .to_neighbors = {neighbor}};
    const bgpsim::RoutingOutcome outcome = engine_.Propagate(ann);
    for (util::UgId ugid : members) {
      const util::AsId as = deployment_->ug(ugid).as;
      if (!outcome.Reachable(as)) continue;
      std::vector<util::AsId> alt;
      for (util::AsId a : outcome.Path(as)) {
        if (a != deployment_->cloud_as() && a != as) alt.push_back(a);
      }
      out[ugid.value()].painter_avoid_frac =
          std::max(out[ugid.value()].painter_avoid_frac,
                   AvoidedFraction(default_path[ugid.value()], alt));
    }
  }

  return out;
}

}  // namespace painter::core
