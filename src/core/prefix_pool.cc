#include "core/prefix_pool.h"

#include <charconv>
#include <stdexcept>

namespace painter::core {
namespace {

std::uint32_t MaskOf(int length) {
  if (length <= 0) return 0;
  if (length >= 32) return 0xffffffffu;
  return ~((1u << (32 - length)) - 1u);
}

}  // namespace

std::string Ipv4Prefix::ToString() const {
  return std::to_string((network >> 24) & 0xff) + "." +
         std::to_string((network >> 16) & 0xff) + "." +
         std::to_string((network >> 8) & 0xff) + "." +
         std::to_string(network & 0xff) + "/" + std::to_string(length);
}

bool Ipv4Prefix::Contains(std::uint32_t addr) const {
  return (addr & MaskOf(length)) == network;
}

std::optional<Ipv4Prefix> ParsePrefix(const std::string& text) {
  std::uint32_t octets[4] = {0, 0, 0, 0};
  int length = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    std::size_t end = pos;
    while (end < text.size() && text[end] >= '0' && text[end] <= '9') ++end;
    if (end == pos) return std::nullopt;
    std::uint32_t v = 0;
    std::from_chars(text.data() + pos, text.data() + end, v);
    if (v > 255) return std::nullopt;
    octets[i] = v;
    pos = end;
    const char expect = i < 3 ? '.' : '/';
    if (pos >= text.size() || text[pos] != expect) return std::nullopt;
    ++pos;
  }
  std::size_t end = pos;
  while (end < text.size() && text[end] >= '0' && text[end] <= '9') ++end;
  if (end == pos || end != text.size()) return std::nullopt;
  std::from_chars(text.data() + pos, text.data() + end, length);
  if (length < 0 || length > 32) return std::nullopt;

  const std::uint32_t network =
      (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3];
  if ((network & ~MaskOf(length)) != 0) return std::nullopt;  // host bits set
  return Ipv4Prefix{network, length};
}

PrefixPool::PrefixPool(Ipv4Prefix supernet, int alloc_length,
                       double cost_per_prefix_usd)
    : supernet_(supernet),
      alloc_length_(alloc_length),
      cost_per_prefix_usd_(cost_per_prefix_usd) {
  if (alloc_length < supernet.length || alloc_length > 32) {
    throw std::invalid_argument{"PrefixPool: allocation size out of range"};
  }
  const int spare_bits = alloc_length - supernet.length;
  if (spare_bits > 20) {
    throw std::invalid_argument{"PrefixPool: supernet impractically large"};
  }
  capacity_ = static_cast<std::size_t>(1) << spare_bits;
  in_use_.assign(capacity_, false);
}

std::optional<Ipv4Prefix> PrefixPool::Allocate() {
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (in_use_[i]) continue;
    in_use_[i] = true;
    ++allocated_count_;
    const std::uint32_t stride = 1u << (32 - alloc_length_);
    return Ipv4Prefix{supernet_.network + static_cast<std::uint32_t>(i) * stride,
                      alloc_length_};
  }
  return std::nullopt;
}

bool PrefixPool::Release(const Ipv4Prefix& prefix) {
  if (prefix.length != alloc_length_ || !supernet_.Contains(prefix.network)) {
    return false;
  }
  const std::uint32_t stride = 1u << (32 - alloc_length_);
  const std::size_t i = (prefix.network - supernet_.network) / stride;
  if (i >= capacity_ || !in_use_[i]) return false;
  in_use_[i] = false;
  --allocated_count_;
  return true;
}

ConcretePlan BindPrefixes(const AdvertisementConfig& config,
                          PrefixPool& pool) {
  ConcretePlan plan;
  plan.prefix_of_index.reserve(config.PrefixCount());
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    auto block = pool.Allocate();
    if (!block.has_value()) {
      // Return what we took; the plan is all-or-nothing.
      for (const auto& taken : plan.prefix_of_index) pool.Release(taken);
      throw std::runtime_error{"BindPrefixes: prefix pool exhausted"};
    }
    plan.prefix_of_index.push_back(*block);
  }
  plan.cost_usd = static_cast<double>(plan.prefix_of_index.size()) *
                  (pool.Allocated() == 0
                       ? 0.0
                       : pool.TotalCostUsd() /
                             static_cast<double>(pool.Allocated()));
  return plan;
}

RibFootprint ComputeRibFootprint(const AdvertisementConfig& config,
                                 const cloudsim::IngressResolver& resolver) {
  RibFootprint fp;
  fp.ases_carrying.reserve(config.PrefixCount());
  const std::size_t n_as = resolver.graph().size();
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    const auto result = resolver.ResolveWithRoutes(config.Sessions(p));
    std::size_t carrying = 0;
    for (std::uint32_t v = 0; v < n_as; ++v) {
      if (result.outcome.Reachable(util::AsId{v})) ++carrying;
    }
    fp.ases_carrying.push_back(carrying);
    fp.total_entries += carrying;
  }
  return fp;
}

}  // namespace painter::core
