// PAINTER — Precise, Agile INgress Traffic Engineering & Routing.
//
// Umbrella header: the full public API of the library, grouped by layer.
// Downstream users normally need only this include.
//
//   namespace painter::topo      — geography, AS graph, Internet generator
//   namespace painter::bgpsim    — Gao–Rexford routing engine, dynamics,
//                                  valley-free path counting
//   namespace painter::cloudsim  — cloud deployment, ingress resolution,
//                                  policy-compliance catalog
//   namespace painter::measure   — latency ground truth + probes,
//                                  geolocation-based estimation
//   namespace painter::dnssim    — resolvers, TTL-violation studies,
//                                  steering-granularity analysis
//   namespace painter::core      — the paper's contribution: the
//                                  Advertisement Orchestrator (Algorithm 1),
//                                  routing model, baselines, evaluation
//   namespace painter::netsim    — discrete-event packet simulation
//   namespace painter::tm        — Traffic Manager (TM-Edge / TM-PoP),
//                                  failover & congestion scenarios
//
// Quick start (see examples/quickstart.cpp for the full walkthrough):
//
//   topo::Internet net = topo::GenerateInternet({.seed = 1});
//   cloudsim::Deployment dep = cloudsim::BuildDeployment(net, {});
//   cloudsim::PolicyCatalog catalog{net, dep};
//   cloudsim::IngressResolver resolver{net, dep};
//   measure::LatencyOracle oracle{net, dep, {}};
//   util::Rng rng{7};
//   core::ProblemInstance inst = core::BuildMeasuredInstance(
//       net, dep, catalog, resolver, oracle, rng);
//   core::Orchestrator orchestrator{inst, {.prefix_budget = 25}};
//   core::SimEnvironment env{resolver, oracle, util::Rng{13}};
//   auto reports = orchestrator.Learn(env);
#pragma once

#include "bgpsim/dynamics.h"
#include "bgpsim/engine.h"
#include "bgpsim/path_count.h"
#include "bgpsim/route.h"
#include "bgpsim/session_sim.h"
#include "cloudsim/deployment.h"
#include "cloudsim/ingress.h"
#include "core/advertisement.h"
#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/config_io.h"
#include "core/problem.h"
#include "core/prefix_pool.h"
#include "core/resilience.h"
#include "core/routing_model.h"
#include "core/sim_environment.h"
#include "dnssim/granularity.h"
#include "dnssim/resolvers.h"
#include "dnssim/ttl_study.h"
#include "measure/geolocation.h"
#include "measure/latency.h"
#include "netsim/link.h"
#include "netsim/nat.h"
#include "netsim/packet.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "faultsim/bgp_replay.h"
#include "faultsim/failover_scenario.h"
#include "faultsim/fault_injector.h"
#include "faultsim/fault_plan.h"
#include "faultsim/invariants.h"
#include "faultsim/scenario.h"
#include "tm/congestion_scenario.h"
#include "tm/control.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"
#include "topo/as_graph.h"
#include "topo/generator.h"
#include "topo/geo.h"
#include "util/hashmix.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"
