// The unified timeline: every PAINTER component on one DES clock.
//
// ROADMAP's "one timeline, one run": a single netsim::Simulator hosts, in
// true timestamp order,
//   - the TM-Edge's probes/failover and a deterministic fault plan,
//   - the workload engine's admission/expiry ticks replaying a diurnal,
//     heavy-tailed flow trace,
//   - per-resolver DNS TTL refresh events (dnssim::TtlCache),
//   - the orchestrator's advertisement rounds (core::LearningTimeline).
//
// Each completed round publishes a new configuration *version*; a resolver
// only starts serving it at its next TTL refresh, and every flow arrival is
// scored under whatever version its UG's resolver serves at that instant.
// That re-derives Fig. 6b/6c benefit curves *workload-weighted*: benefit per
// time bucket is averaged over realized bytes (diurnal swing, elephant
// flows, TTL staleness lag all included) instead of the static per-UG mean
// the closed-form evaluation reports.
//
// Determinism: the result is a pure function of UnifiedTimelineConfig. Trace
// generation and the orchestrator are thread-count-invariant by contract,
// the timeline itself draws all randomness from seeded Rngs before or in
// deterministic event order, and CanonicalSummary serializes with
// round-trip-exact doubles — so summaries are byte-identical across reruns
// and across num_threads 1/2/4 (tests/timeline_test.cc pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnssim/ttl_cache.h"
#include "workload/engine.h"

namespace painter::obs {
class TimeseriesRegistry;
}  // namespace painter::obs

namespace painter::timeline {

struct UnifiedTimelineConfig {
  std::uint64_t seed = 7;
  // Worker threads for trace generation and the orchestrator's parallel
  // loops. 0 = hardware concurrency. Results are identical at any value.
  std::size_t num_threads = 1;

  // Simulated-Internet world the advertisement rounds execute against.
  std::size_t stubs = 200;
  std::size_t pops = 8;
  std::size_t transits = 16;
  std::size_t regionals = 40;

  // Workload trace replayed through the TM-Edge.
  double trace_duration_s = 600.0;
  double mean_flows_per_s = 40.0;
  double tick_s = 0.1;

  // Advertisement rounds: round k at round_start_s + k * round_interval_s.
  // max_rounds >= 2 so the trace spans successive configurations.
  double round_start_s = 30.0;
  double round_interval_s = 120.0;
  std::size_t max_rounds = 4;
  std::size_t prefix_budget = 15;

  // DNS record TTL — the staleness lag between a published configuration
  // and resolvers actually steering clients to it.
  double ttl_s = 60.0;

  // Benefit-curve time bucketing.
  double curve_bucket_s = 60.0;

  // Deterministic fault plan injected on the TM tunnels, interleaved with
  // everything else on the same queue.
  bool inject_faults = true;

  // Optional streaming telemetry for the whole run: engine occupancy and
  // utilization samplers, TTL staleness sampler, per-round
  // predicted/realized event series, sampled on the registry's grid for the
  // run's horizon. The registry must outlive the call. Null records nothing
  // and leaves the result byte-identical.
  obs::TimeseriesRegistry* timeseries = nullptr;
};

struct UnifiedTimelineResult {
  struct Round {
    double t_s = 0.0;  // when the round executed on the shared clock
    double predicted_mean_ms = 0.0;
    double realized_ms = 0.0;
    double realized_positive_ms = 0.0;
    std::size_t prefixes_used = 0;
  };
  // One point per curve_bucket_s of trace time.
  struct CurvePoint {
    double t_s = 0.0;          // bucket start
    double bytes = 0.0;        // bytes arriving in the bucket
    double benefit_ms = 0.0;   // byte-weighted mean benefit vs anycast
    double stale_bytes = 0.0;  // bytes served under a superseded version
  };

  std::vector<Round> rounds;
  std::vector<CurvePoint> curve;
  // Byte-weighted mean benefit over the whole trace vs the final round's
  // static per-UG weighted mean — the quantity EXPERIMENTS.md contrasts.
  double weighted_benefit_ms = 0.0;
  double static_mean_benefit_ms = 0.0;
  double stale_byte_frac = 0.0;

  std::uint64_t trace_checksum = 0;
  workload::WorkloadEngine::Stats workload;
  dnssim::TtlCache::Stats ttl;
  std::uint64_t executed_events = 0;
  std::size_t resolver_count = 0;
  std::size_t ug_count = 0;
};

// Builds the world, generates the trace, and runs everything to completion
// on one simulator. Pure function of `config`.
[[nodiscard]] UnifiedTimelineResult RunUnifiedTimeline(
    const UnifiedTimelineConfig& config);

// Canonical text form of a result: fixed field order, round-trip-exact
// ("%.17g") doubles, newline-separated. Two results are behaviourally
// identical iff their summaries are byte-identical — the determinism tests
// and the bench report both hash/compare this.
[[nodiscard]] std::string CanonicalSummary(const UnifiedTimelineResult& result);

}  // namespace painter::timeline
