#include "timeline/unified.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "cloudsim/deployment.h"
#include "cloudsim/ingress.h"
#include "core/learning_timeline.h"
#include "core/problem.h"
#include "core/sim_environment.h"
#include "dnssim/resolvers.h"
#include "faultsim/fault_injector.h"
#include "faultsim/fault_plan.h"
#include "measure/latency.h"
#include "netsim/path.h"
#include "netsim/sim.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"
#include "topo/generator.h"
#include "util/hashmix.h"
#include "util/rng.h"
#include "workload/load.h"
#include "workload/trace.h"

namespace painter::timeline {
namespace {

// The TM world the trace replays through: 8 tunnels round-robin over 4 PoPs
// with fixed one-way delays (the workload_throughput convention), plus the
// shared simulator everything else schedules onto.
constexpr std::size_t kTmPops = 4;
constexpr std::size_t kTmTunnels = 8;
constexpr double kPopCapacityBps = 50.0e6;

void Append(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += key;
  out += '=';
  out += buf;
  out += '\n';
}

void Append(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += '=';
  out += std::to_string(v);
  out += '\n';
}

}  // namespace

UnifiedTimelineResult RunUnifiedTimeline(const UnifiedTimelineConfig& config) {
  const obs::TraceSpan span{"timeline.RunUnifiedTimeline"};

  // --- World: simulated Internet + deployment the rounds advertise into.
  topo::InternetConfig icfg;
  icfg.seed = config.seed;
  icfg.tier1_count = 8;
  icfg.transit_count = config.transits;
  icfg.regional_count = config.regionals;
  icfg.stub_count = config.stubs;
  topo::Internet internet = topo::GenerateInternet(icfg);

  cloudsim::DeploymentConfig dcfg;
  dcfg.seed = config.seed + 1;
  dcfg.pop_count = config.pops;
  const cloudsim::Deployment deployment =
      cloudsim::BuildDeployment(internet, dcfg);
  const cloudsim::PolicyCatalog catalog{internet, deployment};
  const cloudsim::IngressResolver resolver{internet, deployment};
  measure::OracleConfig ocfg;
  ocfg.seed = config.seed + 2;
  const measure::LatencyOracle oracle{internet, deployment, ocfg};

  util::Rng build_rng{util::MixSeed(config.seed, 0x1D5Au)};
  const core::ProblemInstance instance = core::BuildMeasuredInstance(
      internet, deployment, catalog, resolver, oracle, build_rng);

  // --- Workload trace (thread-count-invariant by contract).
  workload::TraceConfig tc;
  tc.seed = config.seed;
  tc.duration_s = config.trace_duration_s;
  tc.mean_flows_per_s = config.mean_flows_per_s;
  tc.num_threads = config.num_threads;
  const std::vector<workload::UgProfile> profiles =
      workload::UgProfilesFromDeployment(internet, deployment);
  const workload::Trace trace = workload::GenerateTrace(tc, profiles);

  // --- DNS resolver population.
  dnssim::ResolverConfig rcfg;
  rcfg.seed = util::MixSeed(config.seed, 0xD25u);
  const dnssim::ResolverAssignment resolvers =
      dnssim::AssignResolvers(deployment, rcfg);

  // --- The one simulator and everything that schedules onto it.
  netsim::Simulator sim;

  std::vector<std::unique_ptr<tm::TmPop>> pops;
  std::vector<int> tunnel_pop;
  for (std::size_t p = 0; p < kTmPops; ++p) {
    pops.push_back(std::make_unique<tm::TmPop>(
        sim, "PoP-" + std::to_string(p),
        std::vector<netsim::IpAddr>{
            0x02020202u + 0x01010101u * static_cast<netsim::IpAddr>(p)}));
  }
  for (std::size_t i = 0; i < kTmTunnels; ++i) {
    tunnel_pop.push_back(static_cast<int>(i % kTmPops));
  }

  faultsim::PlanSpec pspec;
  pspec.tunnels = kTmTunnels;
  pspec.pops = kTmPops;
  pspec.earliest_s = 10.0;
  pspec.latest_s = std::max(pspec.earliest_s, 0.8 * config.trace_duration_s);
  faultsim::FaultPlan plan;
  if (config.inject_faults) {
    plan = faultsim::GenerateRandomPlan(util::MixSeed(config.seed, 0xFA17u),
                                        pspec);
  }
  const faultsim::FaultInjector injector{std::move(plan), tunnel_pop};

  std::vector<tm::TunnelConfig> tunnels;
  for (std::size_t i = 0; i < kTmTunnels; ++i) {
    tunnels.push_back(tm::TunnelConfig{
        .name = "tunnel-" + std::to_string(i),
        .remote_ip = 0x0a0a0a00u + static_cast<netsim::IpAddr>(i),
        .path = injector.WrapPath(
            i, netsim::PathModel::Fixed(0.010 +
                                        0.002 * static_cast<double>(i))),
        .pop = pops[static_cast<std::size_t>(tunnel_pop[i])].get(),
        .admit = injector.AdmitFilter(i)});
  }
  tm::TmEdge::Config ecfg;
  ecfg.seed = util::MixSeed(config.seed, 0xED6Eu);
  ecfg.probe_interval_s = 0.050;
  tm::TmEdge edge{sim, ecfg, std::move(tunnels)};

  const double horizon_s =
      std::max(config.trace_duration_s + 2.0,
               config.round_start_s +
                   static_cast<double>(config.max_rounds) *
                       config.round_interval_s +
                   1.0);

  // --- DNS TTL cache: resolvers pick up published versions with TTL lag.
  dnssim::TtlCacheConfig ttlcfg;
  ttlcfg.ttl_s = config.ttl_s;
  ttlcfg.seed = util::MixSeed(config.seed, 0x77Cu);
  dnssim::TtlCache ttl{sim, resolvers.resolver_count, ttlcfg};

  // --- Advertisement rounds as scheduled events. Version v = round v-1's
  // configuration; version 0 is pre-PAINTER anycast (zero benefit).
  core::OrchestratorConfig orch_cfg;
  orch_cfg.prefix_budget = config.prefix_budget;
  orch_cfg.max_learning_iterations = std::max<std::size_t>(config.max_rounds,
                                                           2);
  orch_cfg.num_threads = config.num_threads;
  core::Orchestrator orchestrator{instance, orch_cfg};
  core::SimEnvironment env{resolver, oracle,
                           util::Rng{util::MixSeed(config.seed, 0xE4Fu)}};

  UnifiedTimelineResult result;
  // version_benefit[v][ug]: realized improvement over anycast (ms, >= 0)
  // once the UG is steered under version v. Version 0 = anycast.
  std::vector<std::vector<double>> version_benefit;
  version_benefit.emplace_back(instance.UgCount(), 0.0);

  core::LearningTimelineConfig ltcfg;
  ltcfg.start_s = config.round_start_s;
  ltcfg.round_interval_s = config.round_interval_s;
  ltcfg.timeseries = config.timeseries;
  core::LearningTimeline rounds{
      sim, orchestrator, env, ltcfg,
      [&](std::size_t, const core::Orchestrator::IterationReport& report,
          const std::vector<core::AdvertisementEnvironment::PrefixObservation>&
              observations) {
        std::vector<double> benefit(instance.UgCount(), 0.0);
        for (std::uint32_t u = 0; u < instance.UgCount(); ++u) {
          double best = instance.anycast_rtt_ms[u];
          for (const auto& obs : observations) {
            if (obs.ingress_of_ug.at(u).has_value()) {
              best = std::min(best, obs.rtt_ms_of_ug.at(u));
            }
          }
          benefit[u] = instance.anycast_rtt_ms[u] - best;
        }
        version_benefit.push_back(std::move(benefit));
        ttl.Publish(version_benefit.size() - 1);
        result.rounds.push_back(UnifiedTimelineResult::Round{
            .t_s = sim.Now(),
            .predicted_mean_ms = report.predicted.mean_ms,
            .realized_ms = report.realized_ms,
            .realized_positive_ms = report.realized_positive_ms,
            .prefixes_used = report.prefixes_used});
      }};

  // --- Workload replay with per-arrival benefit accounting.
  const netsim::SimTime bucket_us = netsim::UsFromSeconds(config.curve_bucket_s);
  const std::size_t curve_buckets =
      static_cast<std::size_t>(trace.duration_us / bucket_us) + 1;
  result.curve.resize(curve_buckets);
  std::vector<double> curve_benefit_bytes(curve_buckets, 0.0);
  double total_bytes = 0.0;
  double total_benefit_bytes = 0.0;
  double total_stale_bytes = 0.0;

  workload::LoadTracker load{std::vector<double>(kTmPops, kPopCapacityBps)};
  const workload::LoadAwarePolicy policy;
  workload::EngineConfig wcfg;
  wcfg.tick_s = config.tick_s;
  wcfg.timeseries = config.timeseries;
  wcfg.on_arrival = [&](const workload::FlowEvent& ev) {
    const double bytes = static_cast<double>(ev.bytes);
    const std::size_t bucket = std::min(
        static_cast<std::size_t>(ev.start_us / bucket_us), curve_buckets - 1);
    double benefit_ms = 0.0;
    bool stale = false;
    if (ev.ug < resolvers.resolver_of_ug.size()) {
      const std::uint32_t r = resolvers.resolver_of_ug[ev.ug];
      const std::uint64_t version = ttl.VersionOf(r);
      if (ev.ug < instance.UgCount()) {
        benefit_ms = version_benefit[version][ev.ug];
      }
      stale = ttl.IsStale(r);
    }
    result.curve[bucket].bytes += bytes;
    curve_benefit_bytes[bucket] += bytes * benefit_ms;
    total_bytes += bytes;
    total_benefit_bytes += bytes * benefit_ms;
    if (stale) {
      result.curve[bucket].stale_bytes += bytes;
      total_stale_bytes += bytes;
    }
  };
  workload::WorkloadEngine engine{sim,  edge,  tunnel_pop, load,
                                  policy, trace, wcfg};

  edge.Start();
  engine.Start();
  ttl.Start(horizon_s);
  rounds.Start();
  if (config.timeseries != nullptr) {
    ttl.RegisterTimeseries(*config.timeseries);
    config.timeseries->StartSampling(sim, horizon_s);
  }
  sim.Run(horizon_s);

  // --- Reduce.
  for (std::size_t b = 0; b < curve_buckets; ++b) {
    result.curve[b].t_s =
        static_cast<double>(b) * netsim::SecondsFromUs(bucket_us);
    result.curve[b].benefit_ms = result.curve[b].bytes > 0.0
                                     ? curve_benefit_bytes[b] /
                                           result.curve[b].bytes
                                     : 0.0;
  }
  result.weighted_benefit_ms =
      total_bytes > 0.0 ? total_benefit_bytes / total_bytes : 0.0;
  result.static_mean_benefit_ms =
      result.rounds.empty() ? 0.0 : result.rounds.back().realized_ms;
  result.stale_byte_frac =
      total_bytes > 0.0 ? total_stale_bytes / total_bytes : 0.0;
  result.trace_checksum = workload::TraceChecksum(trace);
  result.workload = engine.stats();
  result.ttl = ttl.stats();
  result.executed_events = sim.ExecutedEvents();
  result.resolver_count = resolvers.resolver_count;
  result.ug_count = instance.UgCount();
  return result;
}

std::string CanonicalSummary(const UnifiedTimelineResult& result) {
  std::string out;
  out.reserve(4096);
  Append(out, "rounds", static_cast<std::uint64_t>(result.rounds.size()));
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    const std::string p = "round" + std::to_string(i) + ".";
    Append(out, (p + "t_s").c_str(), r.t_s);
    Append(out, (p + "predicted_mean_ms").c_str(), r.predicted_mean_ms);
    Append(out, (p + "realized_ms").c_str(), r.realized_ms);
    Append(out, (p + "realized_positive_ms").c_str(), r.realized_positive_ms);
    Append(out, (p + "prefixes_used").c_str(),
           static_cast<std::uint64_t>(r.prefixes_used));
  }
  Append(out, "curve_points",
         static_cast<std::uint64_t>(result.curve.size()));
  for (std::size_t i = 0; i < result.curve.size(); ++i) {
    const auto& c = result.curve[i];
    const std::string p = "curve" + std::to_string(i) + ".";
    Append(out, (p + "t_s").c_str(), c.t_s);
    Append(out, (p + "bytes").c_str(), c.bytes);
    Append(out, (p + "benefit_ms").c_str(), c.benefit_ms);
    Append(out, (p + "stale_bytes").c_str(), c.stale_bytes);
  }
  Append(out, "weighted_benefit_ms", result.weighted_benefit_ms);
  Append(out, "static_mean_benefit_ms", result.static_mean_benefit_ms);
  Append(out, "stale_byte_frac", result.stale_byte_frac);
  Append(out, "trace_checksum", result.trace_checksum);
  Append(out, "workload.arrivals", result.workload.arrivals);
  Append(out, "workload.started", result.workload.started);
  Append(out, "workload.rejected", result.workload.rejected);
  Append(out, "workload.completed", result.workload.completed);
  Append(out, "workload.peak_concurrent", result.workload.peak_concurrent);
  Append(out, "workload.down_picks", result.workload.down_picks);
  Append(out, "workload.max_tick_skew_us", result.workload.max_tick_skew_us);
  Append(out, "ttl.refreshes", result.ttl.refreshes);
  Append(out, "ttl.version_updates", result.ttl.version_updates);
  Append(out, "executed_events",
         static_cast<std::uint64_t>(result.executed_events));
  Append(out, "resolver_count",
         static_cast<std::uint64_t>(result.resolver_count));
  Append(out, "ug_count", static_cast<std::uint64_t>(result.ug_count));
  return out;
}

}  // namespace painter::timeline
