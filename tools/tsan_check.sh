#!/usr/bin/env bash
# ThreadSanitizer job for the parallel evaluation paths.
#
# Configures a dedicated build tree with -fsanitize=thread and runs the
# tests selected by ctest label (see tests/CMakeLists.txt for the tier/label
# scheme). The default selection is the memory/thread-heavy `sanitize` set
# plus every `property` suite (minus `slow`) — this includes the faultsim
# chaos batch that re-runs the same seeds at 1/2/4 worker threads. Any data
# race fails the job.
#
# Usage: tools/tsan_check.sh [build-dir] [label-regex]
#        (defaults: build-tsan, 'sanitize|property')
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
LABELS="${2:-sanitize|property}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"

# Test names are target names; build exactly what the label selection runs.
mapfile -t TARGETS < <(ctest --test-dir "$BUILD_DIR" -N -L "$LABELS" -LE slow |
  sed -n 's/^ *Test *#[0-9]*: //p')
[[ ${#TARGETS[@]} -gt 0 ]] || { echo "no tests match -L '$LABELS'" >&2; exit 1; }
cmake --build "$BUILD_DIR" -j --target "${TARGETS[@]}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -L "$LABELS" -LE slow
echo "TSan check passed: no data races in the parallel evaluation paths."
