#!/usr/bin/env bash
# ThreadSanitizer job for the parallel evaluation paths.
#
# Configures a dedicated build tree with -fsanitize=thread, builds only the
# targets that exercise the thread pool and the orchestrator's/evaluators'
# parallel loops, and runs them under TSan. Any data race fails the job.
#
# Usage: tools/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
TESTS='util_thread_pool_test|core_orchestrator_test|core_evaluate_test'

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD_DIR" -j \
  --target util_thread_pool_test core_orchestrator_test core_evaluate_test
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "($TESTS)"
echo "TSan check passed: no data races in the parallel evaluation paths."
