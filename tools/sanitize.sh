#!/usr/bin/env bash
# Single entry point for the sanitizer jobs.
#
#   tools/sanitize.sh tsan [build-dir]   # data races (tools/tsan_check.sh)
#   tools/sanitize.sh asan [build-dir]   # memory errors + UB (tools/asan_check.sh)
#   tools/sanitize.sh all                # both, in dedicated build trees
set -euo pipefail
cd "$(dirname "$0")"

usage() {
  echo "usage: tools/sanitize.sh [tsan|asan|all] [build-dir]" >&2
  exit 2
}

[[ $# -ge 1 ]] || usage
MODE="$1"
shift

case "$MODE" in
  tsan) exec ./tsan_check.sh "$@" ;;
  asan) exec ./asan_check.sh "$@" ;;
  all)
    # Each job keeps its own default build tree; a shared custom dir would
    # mix incompatible sanitizer flags.
    ./tsan_check.sh
    ./asan_check.sh
    ;;
  *) usage ;;
esac
