#!/usr/bin/env python3
"""Diff two painter.bench.v1 BENCH_*.json reports.

Compares phase wall times (with a noise tolerance), scalar values, and the
metrics snapshot (counters and gauges) of a baseline report A against a
candidate report B. Intended use is tools/perf_check.sh comparing a committed
baseline against a fresh run of bench/micro_orchestrator, but it works for
any pair of reports with the painter.bench.v1 schema (see src/obs/report.h).

Exit status: 0 when every checked phase is within tolerance, 1 when any
phase regressed by more than the tolerance, 2 on schema/usage errors.
Counter/gauge deltas are informational — they legitimately change when the
engine changes (e.g. orchestrator.celf.evaluations drops when the seed cache
lands) — so they never fail the comparison; schedules staying bit-identical
is the job of the golden/property tests, not this tool.

Usage:
  tools/bench_compare.py BASELINE.json CANDIDATE.json [--tolerance FRAC]

  --tolerance FRAC   allowed fractional slowdown per phase before the exit
                     status reports a regression (default 0.25 = 25%).
"""

import argparse
import json
import sys

SCHEMA = "painter.bench.v1"


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    return doc


def phase_map(doc):
    return {p["name"]: p["wall_ms"] for p in doc.get("phases", [])}


def fmt_ratio(base, cand):
    if base == 0:
        return "n/a"
    r = cand / base
    return f"{r:5.2f}x"


def diff_section(title, a, b, fmt=lambda v: f"{v:.6g}"):
    """Prints a side-by-side diff of two {name: number} maps."""
    names = sorted(set(a) | set(b))
    if not names:
        return
    print(f"\n{title}:")
    width = max(len(n) for n in names)
    for n in names:
        if n not in a:
            print(f"  {n:<{width}}  (only in candidate)  {fmt(b[n])}")
        elif n not in b:
            print(f"  {n:<{width}}  {fmt(a[n])}  (only in baseline)")
        else:
            va, vb = a[n], b[n]
            delta = vb - va
            rel = f" ({delta / va:+.1%})" if va != 0 else ""
            print(f"  {n:<{width}}  {fmt(va)} -> {fmt(vb)}{rel}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional slowdown per phase "
                         "(default: 0.25)")
    args = ap.parse_args()

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    if base.get("name") != cand.get("name"):
        print(f"warning: comparing different benches: "
              f"{base.get('name')!r} vs {cand.get('name')!r}")

    pa, pb = phase_map(base), phase_map(cand)
    print(f"bench: {cand.get('name')}  "
          f"(baseline seed {base.get('seed')}, candidate seed "
          f"{cand.get('seed')})")
    print(f"\nphases (wall ms, candidate/baseline, tolerance "
          f"{args.tolerance:.0%}):")
    regressions = []
    width = max((len(n) for n in set(pa) | set(pb)), default=0)
    for name in sorted(set(pa) | set(pb)):
        if name not in pa:
            print(f"  {name:<{width}}  (new phase)         {pb[name]:10.1f}")
            continue
        if name not in pb:
            print(f"  {name:<{width}}  {pa[name]:10.1f}  (phase removed)")
            continue
        a_ms, b_ms = pa[name], pb[name]
        ratio = fmt_ratio(a_ms, b_ms)
        verdict = "ok"
        if a_ms > 0 and b_ms > a_ms * (1.0 + args.tolerance):
            verdict = "REGRESSION"
            regressions.append(name)
        elif a_ms > 0 and b_ms < a_ms / (1.0 + args.tolerance):
            verdict = "improved"
        print(f"  {name:<{width}}  {a_ms:10.1f} -> {b_ms:10.1f}  "
              f"{ratio}  {verdict}")

    diff_section("values", base.get("values", {}), cand.get("values", {}))
    metrics_a = base.get("metrics", {})
    metrics_b = cand.get("metrics", {})
    diff_section("counters (informational)",
                 metrics_a.get("counters", {}), metrics_b.get("counters", {}),
                 fmt=lambda v: f"{int(v)}")
    diff_section("gauges (informational)",
                 metrics_a.get("gauges", {}), metrics_b.get("gauges", {}))

    if regressions:
        print(f"\nFAIL: {len(regressions)} phase(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    print("\nOK: no phase regressed beyond tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
