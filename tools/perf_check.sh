#!/usr/bin/env bash
# Orchestrator performance gate, fronted by the tier-1 correctness gate.
#
# 1. Builds and runs the ctest `tier1` label selection (minus `slow`) — a
#    perf number from a build that fails correctness is meaningless.
# 2. Builds bench/micro_orchestrator, runs its painter.bench.v1 report pass
#    (--report-only skips the google-benchmark suite), and diffs the fresh
#    report against the committed baseline in bench/results/ with
#    tools/bench_compare.py. A phase slowing down by more than the tolerance
#    fails the job.
# 3. Builds and runs bench/workload_throughput at full scale (>= 1M flow
#    events, >= 100k concurrent pins — the bench exits non-zero if the scale
#    gates fail) and diffs its report against the workload baseline the same
#    way.
# 4. Builds and runs bench/unified_timeline at full scale (its own gates
#    require >= 2 advertisement rounds on the shared clock and zero tick
#    skew) and diffs its report against the timeline baseline.
# 5. Builds and runs bench/chaos_runner --under_load (detection-latency SLO
#    under a full flow table; the runner exits non-zero on an invariant
#    violation or a p99 SLO breach) and diffs its report against the
#    chaos-under-load baseline.
#
# If a baseline doesn't exist yet, the fresh report is installed as the
# baseline (commit it) and that gate succeeds.
#
# Usage: tools/perf_check.sh [build-dir] [tolerance] [label-regex]
#        (defaults: build, 0.25 = 25% allowed slowdown per phase, tier1)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TOLERANCE="${2:-0.25}"
LABELS="${3:-tier1}"
BASELINE=bench/results/BENCH_micro_orchestrator.baseline.json
WORKLOAD_BASELINE=bench/results/BENCH_workload_throughput.baseline.json
TIMELINE_BASELINE=bench/results/BENCH_unified_timeline.baseline.json
CHAOS_BASELINE=bench/results/BENCH_chaos_under_load.baseline.json
REPORT_DIR="$BUILD_DIR/bench_reports"

cmake -B "$BUILD_DIR" -S . >/dev/null

# --- Correctness gate: the label-selected tier must be green. ---
mapfile -t TARGETS < <(ctest --test-dir "$BUILD_DIR" -N -L "$LABELS" -LE slow |
  sed -n 's/^ *Test *#[0-9]*: //p')
[[ ${#TARGETS[@]} -gt 0 ]] || { echo "no tests match -L '$LABELS'" >&2; exit 1; }
cmake --build "$BUILD_DIR" -j --target "${TARGETS[@]}" >/dev/null
ctest --test-dir "$BUILD_DIR" -L "$LABELS" -LE slow --output-on-failure

# --- Performance gate. ---
cmake --build "$BUILD_DIR" -j --target micro_orchestrator

mkdir -p "$REPORT_DIR"
PAINTER_REPORT_DIR="$REPORT_DIR" \
  "$BUILD_DIR"/bench/micro_orchestrator --report-only
REPORT="$REPORT_DIR/BENCH_micro_orchestrator.json"

if [[ ! -f "$BASELINE" ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$REPORT" "$BASELINE"
  echo "No baseline found; installed $REPORT as $BASELINE — commit it."
else
  tools/bench_compare.py "$BASELINE" "$REPORT" --tolerance "$TOLERANCE"
  echo "Perf check passed against $BASELINE."
fi

# --- Workload-engine gate: scale thresholds + perf trajectory. ---
cmake --build "$BUILD_DIR" -j --target workload_throughput
PAINTER_REPORT_DIR="$REPORT_DIR" "$BUILD_DIR"/bench/workload_throughput
WORKLOAD_REPORT="$REPORT_DIR/BENCH_workload_throughput.json"

if [[ ! -f "$WORKLOAD_BASELINE" ]]; then
  cp "$WORKLOAD_REPORT" "$WORKLOAD_BASELINE"
  echo "No workload baseline; installed $WORKLOAD_REPORT as" \
       "$WORKLOAD_BASELINE — commit it."
else
  tools/bench_compare.py "$WORKLOAD_BASELINE" "$WORKLOAD_REPORT" \
    --tolerance "$TOLERANCE"
  echo "Perf check passed against $WORKLOAD_BASELINE."
fi

# --- Unified-timeline gate: one-clock interleaving + perf trajectory. ---
cmake --build "$BUILD_DIR" -j --target unified_timeline
PAINTER_REPORT_DIR="$REPORT_DIR" "$BUILD_DIR"/bench/unified_timeline
TIMELINE_REPORT="$REPORT_DIR/BENCH_unified_timeline.json"

if [[ ! -f "$TIMELINE_BASELINE" ]]; then
  cp "$TIMELINE_REPORT" "$TIMELINE_BASELINE"
  echo "No timeline baseline; installed $TIMELINE_REPORT as" \
       "$TIMELINE_BASELINE — commit it."
else
  tools/bench_compare.py "$TIMELINE_BASELINE" "$TIMELINE_REPORT" \
    --tolerance "$TOLERANCE"
  echo "Perf check passed against $TIMELINE_BASELINE."
fi

# --- Chaos-under-load gate: detection-latency SLO + perf trajectory. ---
# The runner itself asserts the SLO in its exit status (invariant violations
# or loaded p99 > 8 RTTs fail here, not just drift vs the baseline).
cmake --build "$BUILD_DIR" -j --target chaos_runner
PAINTER_REPORT_DIR="$REPORT_DIR" \
  "$BUILD_DIR"/bench/chaos_runner --under_load --seeds 10
CHAOS_REPORT="$REPORT_DIR/BENCH_chaos_under_load.json"

if [[ ! -f "$CHAOS_BASELINE" ]]; then
  cp "$CHAOS_REPORT" "$CHAOS_BASELINE"
  echo "No chaos-under-load baseline; installed $CHAOS_REPORT as" \
       "$CHAOS_BASELINE — commit it."
  exit 0
fi

tools/bench_compare.py "$CHAOS_BASELINE" "$CHAOS_REPORT" \
  --tolerance "$TOLERANCE"
echo "Perf check passed against $CHAOS_BASELINE."
