#!/usr/bin/env bash
# Orchestrator performance gate.
#
# Builds bench/micro_orchestrator, runs its painter.bench.v1 report pass
# (--report-only skips the google-benchmark suite), and diffs the fresh
# report against the committed baseline in bench/results/ with
# tools/bench_compare.py. A phase slowing down by more than the tolerance
# fails the job.
#
# If no baseline exists yet, the fresh report is installed as the baseline
# (commit it) and the job succeeds.
#
# Usage: tools/perf_check.sh [build-dir] [tolerance]
#        (defaults: build, 0.25 = 25% allowed slowdown per phase)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TOLERANCE="${2:-0.25}"
BASELINE=bench/results/BENCH_micro_orchestrator.baseline.json
REPORT_DIR="$BUILD_DIR/bench_reports"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target micro_orchestrator

mkdir -p "$REPORT_DIR"
PAINTER_REPORT_DIR="$REPORT_DIR" \
  "$BUILD_DIR"/bench/micro_orchestrator --report-only
REPORT="$REPORT_DIR/BENCH_micro_orchestrator.json"

if [[ ! -f "$BASELINE" ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$REPORT" "$BASELINE"
  echo "No baseline found; installed $REPORT as $BASELINE — commit it."
  exit 0
fi

tools/bench_compare.py "$BASELINE" "$REPORT" --tolerance "$TOLERANCE"
echo "Perf check passed against $BASELINE."
