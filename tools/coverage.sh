#!/usr/bin/env bash
# Line-coverage report via gcc --coverage + gcov + python3 (no gcovr/lcov in
# the image). Builds a dedicated instrumented tree, runs the tier1+property
# test selection, then unions executed lines across translation units with
# tools/coverage_summary.py.
#
# Enforced floor: every file under src/tm/, src/workload/, and src/obs/
# must be at least 70% line-covered (the Traffic Manager and workload
# engine are the layers the fault-injection work leans on hardest; obs is
# the telemetry every run report and post-mortem depends on); the script
# exits non-zero otherwise.
#
# Usage: tools/coverage.sh [build-dir] [label-regex]
#        (defaults: build-cov, 'tier1|property')
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-cov}"
LABELS="${2:-tier1|property}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

# Stale counters from a previous run would inflate the numbers.
find "$BUILD_DIR" -name '*.gcda' -delete

ctest --test-dir "$BUILD_DIR" -L "$LABELS" --output-on-failure >/dev/null

python3 tools/coverage_summary.py "$BUILD_DIR" \
  --min-file 70 --enforce-dir src/tm --enforce-dir src/workload \
  --enforce-dir src/obs \
  --output "$BUILD_DIR/coverage_report.txt"
echo "report written to $BUILD_DIR/coverage_report.txt"
