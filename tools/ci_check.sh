#!/usr/bin/env bash
# The full local CI pipeline, in escalating order of cost:
#
#   0. lint     — tools/metrics_lint.py: metric-name literals must follow
#                 the registry naming convention (free, fails fast).
#   1. tier1    — the deterministic correctness gate (ctest -L tier1,
#                 including the slow property suites): must stay green on
#                 every change.
#   2. property — the randomized suites on their own (ctest -L property),
#                 surfacing seed-dependent regressions with --output-on-failure.
#   3. workload — the workload-engine tier (ctest -L workload) plus a smoke
#                 run of bench/workload_throughput (tiny trace, full pipeline:
#                 generate -> pin-lookup -> policy replay).
#   4. timeline — the unified-timeline tier (ctest -L timeline: integer-µs
#                 clock, tick-grid, TTL-cache, and byte-identity tests) plus
#                 a smoke run of bench/unified_timeline, whose own gates
#                 require >= 2 advertisement rounds interleaved with the
#                 trace and a zero tick skew.
#   5. ASan+UBSan, then TSan — dedicated sanitizer build trees running the
#                 `sanitize` + `property` label selection (tools/asan_check.sh
#                 and tools/tsan_check.sh), which includes the faultsim chaos
#                 batch at multiple thread counts.
#
# Any stage failing aborts the pipeline with that stage's exit status.
#
# Usage: tools/ci_check.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

echo "=== ci 0/6: metrics naming lint ==="
python3 tools/metrics_lint.py

echo "=== ci 1/6: tier1 correctness gate ==="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure

echo "=== ci 2/6: property suites ==="
ctest --test-dir "$BUILD_DIR" -L property --output-on-failure

echo "=== ci 3/6: workload tier + throughput smoke ==="
ctest --test-dir "$BUILD_DIR" -L workload --output-on-failure
cmake --build "$BUILD_DIR" -j --target workload_throughput >/dev/null
"$BUILD_DIR"/bench/workload_throughput --smoke >/dev/null

echo "=== ci 4/6: timeline tier + unified-timeline smoke ==="
ctest --test-dir "$BUILD_DIR" -L timeline --output-on-failure
cmake --build "$BUILD_DIR" -j --target unified_timeline >/dev/null
"$BUILD_DIR"/bench/unified_timeline --smoke >/dev/null

echo "=== ci 5/6: ASan+UBSan (sanitize|property labels) ==="
tools/asan_check.sh

echo "=== ci 6/6: TSan (sanitize|property labels) ==="
tools/tsan_check.sh

echo "ci_check: all stages green."
