#!/usr/bin/env python3
"""Lint metric-name string literals against the registry naming convention.

Scans C++ sources for the name literal passed to obs::Metrics()'s
GetCounter / GetGauge / GetHistogram and enforces:

  - lowercase dot-separated paths: segments of [a-z0-9_]+, at least two
    segments ("component.metric"); a literal ending in '.' is a prefix that
    gets concatenated at runtime (e.g. "faultsim.injected.") and is checked
    on the segments it already has;
  - unit suffixes must come from the known set (_ms, _us, _s, _km, _bps,
    _bytes, _rtts, _frac) — misspelled unit-like suffixes (_msec, _sec,
    _secs, _millis, _usec, _percent, ...) are flagged so one name never
    ships two spellings of the same unit.

Names built entirely at runtime (variables, concatenation where the literal
is not the call's first token) are out of scope — the convention is enforced
where it can be read. tests/ is exempt: fixtures register throwaway names.

Usage: tools/metrics_lint.py [root-dir]   (default: repo root, lints
       src/ and bench/)
Exit status: number of offending literals (0 = clean).
"""

import pathlib
import re
import sys

CALL_RE = re.compile(
    r'Get(?:Counter|Gauge|Histogram)\(\s*(?:std::string\{)?"([^"]*)"')
SEGMENT_RE = re.compile(r"^[a-z][a-z0-9_]*$")

KNOWN_UNITS = {"ms", "us", "s", "km", "bps", "bytes", "rtts", "frac"}
# Unit-like suffixes that are almost certainly a misspelling of a known
# unit. Anything else after '_' is treated as a word, not a unit.
BAD_UNITS = {
    "msec": "ms", "msecs": "ms", "millis": "ms", "milliseconds": "ms",
    "sec": "s", "secs": "s", "seconds": "s",
    "usec": "us", "usecs": "us", "micros": "us", "microseconds": "us",
    "ns": "us", "nsec": "us", "nanos": "us",
    "mins": "s", "minutes": "s", "hours": "s",
    "byte": "bytes", "kb": "bytes", "mb": "bytes", "gb": "bytes",
    "kbps": "bps", "mbps": "bps", "gbps": "bps",
    "pct": "frac", "percent": "frac", "ratio": "frac",
    "meters": "km", "miles": "km", "rtt": "rtts",
}


def lint_name(name: str) -> str | None:
    """Returns the problem with `name`, or None if it is conventional."""
    is_prefix = name.endswith(".")
    if is_prefix:
        name = name[:-1]
    segments = name.split(".")
    if any(not SEGMENT_RE.match(seg) for seg in segments):
        return "segments must match [a-z][a-z0-9_]* separated by dots"
    if len(segments) < 2 and not is_prefix:
        return "need at least two segments (component.metric)"
    if is_prefix:
        return None  # runtime suffix carries the metric leaf
    tail = segments[-1].rsplit("_", 1)
    if len(tail) == 2 and tail[1] in BAD_UNITS:
        return (f"unknown unit suffix '_{tail[1]}' "
                f"(use '_{BAD_UNITS[tail[1]]}'; known: "
                + ", ".join(sorted(f"_{u}" for u in KNOWN_UNITS)) + ")")
    return None


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent)
    errors = 0
    for subdir in ("src", "bench"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.cc")) + sorted(base.rglob("*.h")):
            text = path.read_text(encoding="utf-8")
            for lineno, line in enumerate(text.splitlines(), start=1):
                for match in CALL_RE.finditer(line):
                    problem = lint_name(match.group(1))
                    if problem is not None:
                        errors += 1
                        rel = path.relative_to(root)
                        print(f"{rel}:{lineno}: metric '{match.group(1)}': "
                              f"{problem}")
    if errors:
        print(f"metrics_lint: {errors} offending literal(s).")
    else:
        print("metrics_lint: all metric names conventional.")
    return errors


if __name__ == "__main__":
    sys.exit(main())
