#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer job.
#
# Configures a dedicated build tree with -fsanitize=address,undefined, builds
# the memory-heavy targets (the observability layer's sharded registry and
# trace sink, the thread pool, and the orchestrator/evaluator paths that use
# them), and runs their tests. Any heap error, leak, or UB report fails the
# job.
#
# Usage: tools/asan_check.sh [build-dir]   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
TESTS='obs_test|obs_integration_test|util_test|util_thread_pool_test|core_orchestrator_test|core_evaluate_test'

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD_DIR" -j \
  --target obs_test obs_integration_test util_test util_thread_pool_test \
  core_orchestrator_test core_evaluate_test
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "($TESTS)"
echo "ASan+UBSan check passed: no memory errors or undefined behavior."
