#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer job.
#
# Configures a dedicated build tree with -fsanitize=address,undefined and
# runs the tests selected by ctest label (see tests/CMakeLists.txt for the
# tier/label scheme). The default selection is the memory/thread-heavy
# `sanitize` set plus every `property` suite (minus `slow`), which covers
# the observability registry, the thread pool, the parallel orchestrator
# paths, and the faultsim chaos properties. Any heap error, leak, or UB
# report fails the job.
#
# Usage: tools/asan_check.sh [build-dir] [label-regex]
#        (defaults: build-asan, 'sanitize|property')
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
LABELS="${2:-sanitize|property}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

# Test names are target names; build exactly what the label selection runs.
mapfile -t TARGETS < <(ctest --test-dir "$BUILD_DIR" -N -L "$LABELS" -LE slow |
  sed -n 's/^ *Test *#[0-9]*: //p')
[[ ${#TARGETS[@]} -gt 0 ]] || { echo "no tests match -L '$LABELS'" >&2; exit 1; }
cmake --build "$BUILD_DIR" -j --target "${TARGETS[@]}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -L "$LABELS" -LE slow
echo "ASan+UBSan check passed: no memory errors or undefined behavior."
