#!/usr/bin/env python3
"""Aggregate gcov JSON line coverage into a per-directory report.

Walks a --coverage build tree for .gcda note files, shells out to
`gcov --json-format --stdout` for each, and unions executed lines per
source file across every translation unit that compiled it (so headers
get credit from all their includers). Prints per-file and per-directory
line coverage for sources under src/, and enforces a minimum per-file
threshold on selected directories.

Usage:
  coverage_summary.py BUILD_DIR [--min-file PCT --enforce-dir src/tm] [-o OUT]

Exit status is 1 if any file in an enforced directory is below the
threshold, else 0. No third-party packages; stdlib only.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def gcov_json_docs(build_dir):
    """Yield one parsed gcov JSON document per .gcda in the build tree."""
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if not name.endswith(".gcda"):
                continue
            gcda = os.path.abspath(os.path.join(root, name))
            proc = subprocess.run(
                ["gcov", "--json-format", "--stdout", gcda],
                cwd=build_dir,
                capture_output=True,
                check=False,
            )
            if proc.returncode != 0:
                print(f"warning: gcov failed on {gcda}", file=sys.stderr)
                continue
            # --stdout emits one JSON document per line (one per .gcno).
            for line in proc.stdout.splitlines():
                line = line.strip()
                if line:
                    yield json.loads(line)


def relative_source(path, repo_root):
    """Map a gcov source path to repo-relative form, or None if external."""
    path = os.path.normpath(os.path.join(repo_root, path)) if not os.path.isabs(
        path
    ) else os.path.normpath(path)
    try:
        rel = os.path.relpath(path, repo_root)
    except ValueError:
        return None
    if rel.startswith(".."):
        return None
    return rel


def collect(build_dir, repo_root, prefix):
    """Per-file {line_no: hit} unioned across all TUs, for files under prefix."""
    coverage = defaultdict(dict)  # rel path -> {line: bool hit}
    for doc in gcov_json_docs(build_dir):
        for f in doc.get("files", []):
            rel = relative_source(f.get("file", ""), repo_root)
            if rel is None or not rel.startswith(prefix):
                continue
            lines = coverage[rel]
            for ln in f.get("lines", []):
                no = ln["line_number"]
                lines[no] = lines.get(no, False) or ln["count"] > 0
    return coverage


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--prefix", default="src/", help="only report files here")
    ap.add_argument("--min-file", type=float, default=70.0)
    ap.add_argument(
        "--enforce-dir",
        action="append",
        default=[],
        help="directory whose files must each meet --min-file",
    )
    ap.add_argument("-o", "--output", help="also write the report to this file")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    coverage = collect(args.build_dir, repo_root, args.prefix)
    if not coverage:
        print("error: no coverage data found (is this a --coverage build?)")
        return 2

    rows = []  # (rel, covered, total, pct)
    for rel in sorted(coverage):
        lines = coverage[rel]
        total = len(lines)
        covered = sum(1 for hit in lines.values() if hit)
        pct = 100.0 * covered / total if total else 100.0
        rows.append((rel, covered, total, pct))

    by_dir = defaultdict(lambda: [0, 0])
    for rel, covered, total, _pct in rows:
        d = by_dir[os.path.dirname(rel)]
        d[0] += covered
        d[1] += total

    out = []
    out.append(f"{'file':52}  {'lines':>11}  {'cover':>6}")
    for rel, covered, total, pct in rows:
        out.append(f"{rel:52}  {covered:5}/{total:5}  {pct:5.1f}%")
    out.append("")
    out.append(f"{'directory':52}  {'lines':>11}  {'cover':>6}")
    grand_cov = grand_tot = 0
    for d in sorted(by_dir):
        covered, total = by_dir[d]
        grand_cov += covered
        grand_tot += total
        pct = 100.0 * covered / total if total else 100.0
        out.append(f"{d + '/':52}  {covered:5}/{total:5}  {pct:5.1f}%")
    grand_pct = 100.0 * grand_cov / grand_tot if grand_tot else 100.0
    out.append(f"{'TOTAL':52}  {grand_cov:5}/{grand_tot:5}  {grand_pct:5.1f}%")

    failures = []
    for enforce in args.enforce_dir:
        enforce = enforce.rstrip("/") + "/"
        for rel, _covered, _total, pct in rows:
            if rel.startswith(enforce) and pct < args.min_file:
                failures.append(f"{rel}: {pct:.1f}% < {args.min_file:.0f}% minimum")
    if failures:
        out.append("")
        out.extend("FAIL " + f for f in failures)

    report = "\n".join(out) + "\n"
    sys.stdout.write(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
