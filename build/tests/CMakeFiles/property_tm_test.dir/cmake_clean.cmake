file(REMOVE_RECURSE
  "CMakeFiles/property_tm_test.dir/property_tm_test.cc.o"
  "CMakeFiles/property_tm_test.dir/property_tm_test.cc.o.d"
  "property_tm_test"
  "property_tm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
