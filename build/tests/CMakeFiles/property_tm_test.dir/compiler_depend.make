# Empty compiler generated dependencies file for property_tm_test.
# This may be replaced when dependencies are built.
