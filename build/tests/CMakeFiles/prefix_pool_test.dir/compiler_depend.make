# Empty compiler generated dependencies file for prefix_pool_test.
# This may be replaced when dependencies are built.
