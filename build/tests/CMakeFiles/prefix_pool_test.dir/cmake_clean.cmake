file(REMOVE_RECURSE
  "CMakeFiles/prefix_pool_test.dir/prefix_pool_test.cc.o"
  "CMakeFiles/prefix_pool_test.dir/prefix_pool_test.cc.o.d"
  "prefix_pool_test"
  "prefix_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
