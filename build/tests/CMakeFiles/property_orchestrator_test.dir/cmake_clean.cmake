file(REMOVE_RECURSE
  "CMakeFiles/property_orchestrator_test.dir/property_orchestrator_test.cc.o"
  "CMakeFiles/property_orchestrator_test.dir/property_orchestrator_test.cc.o.d"
  "property_orchestrator_test"
  "property_orchestrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_orchestrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
