file(REMOVE_RECURSE
  "CMakeFiles/path_count_test.dir/path_count_test.cc.o"
  "CMakeFiles/path_count_test.dir/path_count_test.cc.o.d"
  "path_count_test"
  "path_count_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
