# Empty dependencies file for path_count_test.
# This may be replaced when dependencies are built.
