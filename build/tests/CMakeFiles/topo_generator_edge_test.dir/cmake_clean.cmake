file(REMOVE_RECURSE
  "CMakeFiles/topo_generator_edge_test.dir/topo_generator_edge_test.cc.o"
  "CMakeFiles/topo_generator_edge_test.dir/topo_generator_edge_test.cc.o.d"
  "topo_generator_edge_test"
  "topo_generator_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_generator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
