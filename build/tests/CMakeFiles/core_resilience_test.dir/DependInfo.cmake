
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_resilience_test.cc" "tests/CMakeFiles/core_resilience_test.dir/core_resilience_test.cc.o" "gcc" "tests/CMakeFiles/core_resilience_test.dir/core_resilience_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tm/CMakeFiles/painter_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/painter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssim/CMakeFiles/painter_dnssim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/painter_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/painter_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudsim/CMakeFiles/painter_cloudsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgpsim/CMakeFiles/painter_bgpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/painter_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/painter_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
