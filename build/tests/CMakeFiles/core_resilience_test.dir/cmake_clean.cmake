file(REMOVE_RECURSE
  "CMakeFiles/core_resilience_test.dir/core_resilience_test.cc.o"
  "CMakeFiles/core_resilience_test.dir/core_resilience_test.cc.o.d"
  "core_resilience_test"
  "core_resilience_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
