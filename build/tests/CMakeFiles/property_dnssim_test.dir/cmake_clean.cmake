file(REMOVE_RECURSE
  "CMakeFiles/property_dnssim_test.dir/property_dnssim_test.cc.o"
  "CMakeFiles/property_dnssim_test.dir/property_dnssim_test.cc.o.d"
  "property_dnssim_test"
  "property_dnssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_dnssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
