# Empty dependencies file for property_dnssim_test.
# This may be replaced when dependencies are built.
