# Empty dependencies file for property_bgpsim_test.
# This may be replaced when dependencies are built.
