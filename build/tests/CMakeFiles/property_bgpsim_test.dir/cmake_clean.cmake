file(REMOVE_RECURSE
  "CMakeFiles/property_bgpsim_test.dir/property_bgpsim_test.cc.o"
  "CMakeFiles/property_bgpsim_test.dir/property_bgpsim_test.cc.o.d"
  "property_bgpsim_test"
  "property_bgpsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_bgpsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
