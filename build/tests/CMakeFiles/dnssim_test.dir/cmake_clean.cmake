file(REMOVE_RECURSE
  "CMakeFiles/dnssim_test.dir/dnssim_test.cc.o"
  "CMakeFiles/dnssim_test.dir/dnssim_test.cc.o.d"
  "dnssim_test"
  "dnssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
