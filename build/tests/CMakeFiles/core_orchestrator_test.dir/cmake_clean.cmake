file(REMOVE_RECURSE
  "CMakeFiles/core_orchestrator_test.dir/core_orchestrator_test.cc.o"
  "CMakeFiles/core_orchestrator_test.dir/core_orchestrator_test.cc.o.d"
  "core_orchestrator_test"
  "core_orchestrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_orchestrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
