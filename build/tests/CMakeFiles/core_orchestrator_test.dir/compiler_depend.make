# Empty compiler generated dependencies file for core_orchestrator_test.
# This may be replaced when dependencies are built.
