# Empty dependencies file for world_invariants_test.
# This may be replaced when dependencies are built.
