file(REMOVE_RECURSE
  "CMakeFiles/world_invariants_test.dir/world_invariants_test.cc.o"
  "CMakeFiles/world_invariants_test.dir/world_invariants_test.cc.o.d"
  "world_invariants_test"
  "world_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
