# Empty dependencies file for core_evaluate_test.
# This may be replaced when dependencies are built.
