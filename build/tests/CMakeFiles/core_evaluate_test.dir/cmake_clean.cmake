file(REMOVE_RECURSE
  "CMakeFiles/core_evaluate_test.dir/core_evaluate_test.cc.o"
  "CMakeFiles/core_evaluate_test.dir/core_evaluate_test.cc.o.d"
  "core_evaluate_test"
  "core_evaluate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_evaluate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
