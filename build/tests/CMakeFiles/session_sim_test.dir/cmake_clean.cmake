file(REMOVE_RECURSE
  "CMakeFiles/session_sim_test.dir/session_sim_test.cc.o"
  "CMakeFiles/session_sim_test.dir/session_sim_test.cc.o.d"
  "session_sim_test"
  "session_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
