# Empty dependencies file for session_sim_test.
# This may be replaced when dependencies are built.
