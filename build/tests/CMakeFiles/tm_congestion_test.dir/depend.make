# Empty dependencies file for tm_congestion_test.
# This may be replaced when dependencies are built.
