file(REMOVE_RECURSE
  "CMakeFiles/tm_congestion_test.dir/tm_congestion_test.cc.o"
  "CMakeFiles/tm_congestion_test.dir/tm_congestion_test.cc.o.d"
  "tm_congestion_test"
  "tm_congestion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_congestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
