file(REMOVE_RECURSE
  "CMakeFiles/netsim_link_test.dir/netsim_link_test.cc.o"
  "CMakeFiles/netsim_link_test.dir/netsim_link_test.cc.o.d"
  "netsim_link_test"
  "netsim_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
