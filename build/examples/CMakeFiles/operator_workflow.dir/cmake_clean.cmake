file(REMOVE_RECURSE
  "CMakeFiles/operator_workflow.dir/operator_workflow.cpp.o"
  "CMakeFiles/operator_workflow.dir/operator_workflow.cpp.o.d"
  "operator_workflow"
  "operator_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
