# Empty compiler generated dependencies file for operator_workflow.
# This may be replaced when dependencies are built.
