file(REMOVE_RECURSE
  "CMakeFiles/advertisement_planning.dir/advertisement_planning.cpp.o"
  "CMakeFiles/advertisement_planning.dir/advertisement_planning.cpp.o.d"
  "advertisement_planning"
  "advertisement_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advertisement_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
