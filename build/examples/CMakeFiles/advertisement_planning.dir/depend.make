# Empty dependencies file for advertisement_planning.
# This may be replaced when dependencies are built.
