# Empty dependencies file for dns_ttl_audit.
# This may be replaced when dependencies are built.
