file(REMOVE_RECURSE
  "CMakeFiles/dns_ttl_audit.dir/dns_ttl_audit.cpp.o"
  "CMakeFiles/dns_ttl_audit.dir/dns_ttl_audit.cpp.o.d"
  "dns_ttl_audit"
  "dns_ttl_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_ttl_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
