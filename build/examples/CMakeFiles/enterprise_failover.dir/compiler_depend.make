# Empty compiler generated dependencies file for enterprise_failover.
# This may be replaced when dependencies are built.
