file(REMOVE_RECURSE
  "CMakeFiles/enterprise_failover.dir/enterprise_failover.cpp.o"
  "CMakeFiles/enterprise_failover.dir/enterprise_failover.cpp.o.d"
  "enterprise_failover"
  "enterprise_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
