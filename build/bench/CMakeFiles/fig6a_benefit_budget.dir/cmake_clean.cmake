file(REMOVE_RECURSE
  "CMakeFiles/fig6a_benefit_budget.dir/fig6a_benefit_budget.cc.o"
  "CMakeFiles/fig6a_benefit_budget.dir/fig6a_benefit_budget.cc.o.d"
  "fig6a_benefit_budget"
  "fig6a_benefit_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_benefit_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
