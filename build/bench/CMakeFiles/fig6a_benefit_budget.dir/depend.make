# Empty dependencies file for fig6a_benefit_budget.
# This may be replaced when dependencies are built.
