file(REMOVE_RECURSE
  "CMakeFiles/fig11_resilience.dir/fig11_resilience.cc.o"
  "CMakeFiles/fig11_resilience.dir/fig11_resilience.cc.o.d"
  "fig11_resilience"
  "fig11_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
