# Empty dependencies file for fig11_resilience.
# This may be replaced when dependencies are built.
