file(REMOVE_RECURSE
  "CMakeFiles/fig15_scaling.dir/fig15_scaling.cc.o"
  "CMakeFiles/fig15_scaling.dir/fig15_scaling.cc.o.d"
  "fig15_scaling"
  "fig15_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
