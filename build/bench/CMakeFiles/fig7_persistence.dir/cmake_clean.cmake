file(REMOVE_RECURSE
  "CMakeFiles/fig7_persistence.dir/fig7_persistence.cc.o"
  "CMakeFiles/fig7_persistence.dir/fig7_persistence.cc.o.d"
  "fig7_persistence"
  "fig7_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
