# Empty dependencies file for fig7_persistence.
# This may be replaced when dependencies are built.
