file(REMOVE_RECURSE
  "CMakeFiles/fig3_dns_ttl.dir/fig3_dns_ttl.cc.o"
  "CMakeFiles/fig3_dns_ttl.dir/fig3_dns_ttl.cc.o.d"
  "fig3_dns_ttl"
  "fig3_dns_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dns_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
