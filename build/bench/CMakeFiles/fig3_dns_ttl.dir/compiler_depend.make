# Empty compiler generated dependencies file for fig3_dns_ttl.
# This may be replaced when dependencies are built.
