# Empty dependencies file for fig6b_prototype.
# This may be replaced when dependencies are built.
