file(REMOVE_RECURSE
  "CMakeFiles/fig6b_prototype.dir/fig6b_prototype.cc.o"
  "CMakeFiles/fig6b_prototype.dir/fig6b_prototype.cc.o.d"
  "fig6b_prototype"
  "fig6b_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
