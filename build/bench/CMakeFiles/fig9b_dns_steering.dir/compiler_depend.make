# Empty compiler generated dependencies file for fig9b_dns_steering.
# This may be replaced when dependencies are built.
