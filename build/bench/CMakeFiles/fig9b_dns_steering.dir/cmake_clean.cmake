file(REMOVE_RECURSE
  "CMakeFiles/fig9b_dns_steering.dir/fig9b_dns_steering.cc.o"
  "CMakeFiles/fig9b_dns_steering.dir/fig9b_dns_steering.cc.o.d"
  "fig9b_dns_steering"
  "fig9b_dns_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_dns_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
