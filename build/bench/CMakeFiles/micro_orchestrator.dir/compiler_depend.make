# Empty compiler generated dependencies file for micro_orchestrator.
# This may be replaced when dependencies are built.
