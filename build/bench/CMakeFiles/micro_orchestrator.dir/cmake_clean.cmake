file(REMOVE_RECURSE
  "CMakeFiles/micro_orchestrator.dir/micro_orchestrator.cc.o"
  "CMakeFiles/micro_orchestrator.dir/micro_orchestrator.cc.o.d"
  "micro_orchestrator"
  "micro_orchestrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_orchestrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
