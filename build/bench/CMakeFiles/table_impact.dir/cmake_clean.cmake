file(REMOVE_RECURSE
  "CMakeFiles/table_impact.dir/table_impact.cc.o"
  "CMakeFiles/table_impact.dir/table_impact.cc.o.d"
  "table_impact"
  "table_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
