# Empty dependencies file for table_impact.
# This may be replaced when dependencies are built.
