# Empty dependencies file for fig8_deployability.
# This may be replaced when dependencies are built.
