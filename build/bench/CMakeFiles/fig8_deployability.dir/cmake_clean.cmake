file(REMOVE_RECURSE
  "CMakeFiles/fig8_deployability.dir/fig8_deployability.cc.o"
  "CMakeFiles/fig8_deployability.dir/fig8_deployability.cc.o.d"
  "fig8_deployability"
  "fig8_deployability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_deployability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
