file(REMOVE_RECURSE
  "CMakeFiles/fig6c_learning.dir/fig6c_learning.cc.o"
  "CMakeFiles/fig6c_learning.dir/fig6c_learning.cc.o.d"
  "fig6c_learning"
  "fig6c_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
