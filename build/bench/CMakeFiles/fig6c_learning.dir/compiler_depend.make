# Empty compiler generated dependencies file for fig6c_learning.
# This may be replaced when dependencies are built.
