file(REMOVE_RECURSE
  "CMakeFiles/fig14_ranges.dir/fig14_ranges.cc.o"
  "CMakeFiles/fig14_ranges.dir/fig14_ranges.cc.o.d"
  "fig14_ranges"
  "fig14_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
