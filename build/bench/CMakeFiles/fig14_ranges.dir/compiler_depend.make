# Empty compiler generated dependencies file for fig14_ranges.
# This may be replaced when dependencies are built.
