file(REMOVE_RECURSE
  "CMakeFiles/fig5_deployment.dir/fig5_deployment.cc.o"
  "CMakeFiles/fig5_deployment.dir/fig5_deployment.cc.o.d"
  "fig5_deployment"
  "fig5_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
