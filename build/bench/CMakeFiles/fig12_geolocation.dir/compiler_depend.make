# Empty compiler generated dependencies file for fig12_geolocation.
# This may be replaced when dependencies are built.
