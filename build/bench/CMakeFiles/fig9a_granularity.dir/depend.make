# Empty dependencies file for fig9a_granularity.
# This may be replaced when dependencies are built.
