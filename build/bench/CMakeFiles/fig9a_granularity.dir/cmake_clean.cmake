file(REMOVE_RECURSE
  "CMakeFiles/fig9a_granularity.dir/fig9a_granularity.cc.o"
  "CMakeFiles/fig9a_granularity.dir/fig9a_granularity.cc.o.d"
  "fig9a_granularity"
  "fig9a_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
