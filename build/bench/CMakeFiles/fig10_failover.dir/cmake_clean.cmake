file(REMOVE_RECURSE
  "CMakeFiles/fig10_failover.dir/fig10_failover.cc.o"
  "CMakeFiles/fig10_failover.dir/fig10_failover.cc.o.d"
  "fig10_failover"
  "fig10_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
