# Empty compiler generated dependencies file for fig10_failover.
# This may be replaced when dependencies are built.
