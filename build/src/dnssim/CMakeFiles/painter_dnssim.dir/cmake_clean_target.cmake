file(REMOVE_RECURSE
  "libpainter_dnssim.a"
)
