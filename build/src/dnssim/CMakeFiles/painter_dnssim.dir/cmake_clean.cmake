file(REMOVE_RECURSE
  "CMakeFiles/painter_dnssim.dir/granularity.cc.o"
  "CMakeFiles/painter_dnssim.dir/granularity.cc.o.d"
  "CMakeFiles/painter_dnssim.dir/resolvers.cc.o"
  "CMakeFiles/painter_dnssim.dir/resolvers.cc.o.d"
  "CMakeFiles/painter_dnssim.dir/ttl_study.cc.o"
  "CMakeFiles/painter_dnssim.dir/ttl_study.cc.o.d"
  "libpainter_dnssim.a"
  "libpainter_dnssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_dnssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
