# Empty dependencies file for painter_dnssim.
# This may be replaced when dependencies are built.
