
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/as_graph.cc" "src/topo/CMakeFiles/painter_topo.dir/as_graph.cc.o" "gcc" "src/topo/CMakeFiles/painter_topo.dir/as_graph.cc.o.d"
  "/root/repo/src/topo/generator.cc" "src/topo/CMakeFiles/painter_topo.dir/generator.cc.o" "gcc" "src/topo/CMakeFiles/painter_topo.dir/generator.cc.o.d"
  "/root/repo/src/topo/geo.cc" "src/topo/CMakeFiles/painter_topo.dir/geo.cc.o" "gcc" "src/topo/CMakeFiles/painter_topo.dir/geo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/painter_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
