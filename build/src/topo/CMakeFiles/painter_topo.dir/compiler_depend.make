# Empty compiler generated dependencies file for painter_topo.
# This may be replaced when dependencies are built.
