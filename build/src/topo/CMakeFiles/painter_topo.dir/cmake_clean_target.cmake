file(REMOVE_RECURSE
  "libpainter_topo.a"
)
