file(REMOVE_RECURSE
  "CMakeFiles/painter_topo.dir/as_graph.cc.o"
  "CMakeFiles/painter_topo.dir/as_graph.cc.o.d"
  "CMakeFiles/painter_topo.dir/generator.cc.o"
  "CMakeFiles/painter_topo.dir/generator.cc.o.d"
  "CMakeFiles/painter_topo.dir/geo.cc.o"
  "CMakeFiles/painter_topo.dir/geo.cc.o.d"
  "libpainter_topo.a"
  "libpainter_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
