file(REMOVE_RECURSE
  "CMakeFiles/painter_bgpsim.dir/dynamics.cc.o"
  "CMakeFiles/painter_bgpsim.dir/dynamics.cc.o.d"
  "CMakeFiles/painter_bgpsim.dir/engine.cc.o"
  "CMakeFiles/painter_bgpsim.dir/engine.cc.o.d"
  "CMakeFiles/painter_bgpsim.dir/path_count.cc.o"
  "CMakeFiles/painter_bgpsim.dir/path_count.cc.o.d"
  "CMakeFiles/painter_bgpsim.dir/session_sim.cc.o"
  "CMakeFiles/painter_bgpsim.dir/session_sim.cc.o.d"
  "libpainter_bgpsim.a"
  "libpainter_bgpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_bgpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
