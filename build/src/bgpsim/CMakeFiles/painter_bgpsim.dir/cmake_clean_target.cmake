file(REMOVE_RECURSE
  "libpainter_bgpsim.a"
)
