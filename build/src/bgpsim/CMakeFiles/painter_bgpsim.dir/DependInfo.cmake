
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgpsim/dynamics.cc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/dynamics.cc.o" "gcc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/dynamics.cc.o.d"
  "/root/repo/src/bgpsim/engine.cc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/engine.cc.o" "gcc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/engine.cc.o.d"
  "/root/repo/src/bgpsim/path_count.cc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/path_count.cc.o" "gcc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/path_count.cc.o.d"
  "/root/repo/src/bgpsim/session_sim.cc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/session_sim.cc.o" "gcc" "src/bgpsim/CMakeFiles/painter_bgpsim.dir/session_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/painter_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/painter_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/painter_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
