# Empty dependencies file for painter_bgpsim.
# This may be replaced when dependencies are built.
