file(REMOVE_RECURSE
  "libpainter_measure.a"
)
