# Empty dependencies file for painter_measure.
# This may be replaced when dependencies are built.
