file(REMOVE_RECURSE
  "CMakeFiles/painter_measure.dir/geolocation.cc.o"
  "CMakeFiles/painter_measure.dir/geolocation.cc.o.d"
  "CMakeFiles/painter_measure.dir/latency.cc.o"
  "CMakeFiles/painter_measure.dir/latency.cc.o.d"
  "libpainter_measure.a"
  "libpainter_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
