# Empty compiler generated dependencies file for painter_util.
# This may be replaced when dependencies are built.
