file(REMOVE_RECURSE
  "CMakeFiles/painter_util.dir/stats.cc.o"
  "CMakeFiles/painter_util.dir/stats.cc.o.d"
  "CMakeFiles/painter_util.dir/table.cc.o"
  "CMakeFiles/painter_util.dir/table.cc.o.d"
  "libpainter_util.a"
  "libpainter_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
