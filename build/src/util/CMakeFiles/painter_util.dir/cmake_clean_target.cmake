file(REMOVE_RECURSE
  "libpainter_util.a"
)
