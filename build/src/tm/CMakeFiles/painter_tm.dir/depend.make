# Empty dependencies file for painter_tm.
# This may be replaced when dependencies are built.
