file(REMOVE_RECURSE
  "libpainter_tm.a"
)
