file(REMOVE_RECURSE
  "CMakeFiles/painter_tm.dir/congestion_scenario.cc.o"
  "CMakeFiles/painter_tm.dir/congestion_scenario.cc.o.d"
  "CMakeFiles/painter_tm.dir/control.cc.o"
  "CMakeFiles/painter_tm.dir/control.cc.o.d"
  "CMakeFiles/painter_tm.dir/failover_scenario.cc.o"
  "CMakeFiles/painter_tm.dir/failover_scenario.cc.o.d"
  "CMakeFiles/painter_tm.dir/tm_edge.cc.o"
  "CMakeFiles/painter_tm.dir/tm_edge.cc.o.d"
  "CMakeFiles/painter_tm.dir/tm_pop.cc.o"
  "CMakeFiles/painter_tm.dir/tm_pop.cc.o.d"
  "libpainter_tm.a"
  "libpainter_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
