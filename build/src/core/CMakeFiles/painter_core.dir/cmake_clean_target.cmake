file(REMOVE_RECURSE
  "libpainter_core.a"
)
