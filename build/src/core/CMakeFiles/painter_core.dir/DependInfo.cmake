
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/painter_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/config_io.cc" "src/core/CMakeFiles/painter_core.dir/config_io.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/config_io.cc.o.d"
  "/root/repo/src/core/evaluate.cc" "src/core/CMakeFiles/painter_core.dir/evaluate.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/evaluate.cc.o.d"
  "/root/repo/src/core/orchestrator.cc" "src/core/CMakeFiles/painter_core.dir/orchestrator.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/orchestrator.cc.o.d"
  "/root/repo/src/core/prefix_pool.cc" "src/core/CMakeFiles/painter_core.dir/prefix_pool.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/prefix_pool.cc.o.d"
  "/root/repo/src/core/problem.cc" "src/core/CMakeFiles/painter_core.dir/problem.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/problem.cc.o.d"
  "/root/repo/src/core/resilience.cc" "src/core/CMakeFiles/painter_core.dir/resilience.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/resilience.cc.o.d"
  "/root/repo/src/core/routing_model.cc" "src/core/CMakeFiles/painter_core.dir/routing_model.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/routing_model.cc.o.d"
  "/root/repo/src/core/sim_environment.cc" "src/core/CMakeFiles/painter_core.dir/sim_environment.cc.o" "gcc" "src/core/CMakeFiles/painter_core.dir/sim_environment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/painter_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudsim/CMakeFiles/painter_cloudsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgpsim/CMakeFiles/painter_bgpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/painter_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/painter_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/painter_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
