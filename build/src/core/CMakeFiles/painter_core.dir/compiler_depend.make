# Empty compiler generated dependencies file for painter_core.
# This may be replaced when dependencies are built.
