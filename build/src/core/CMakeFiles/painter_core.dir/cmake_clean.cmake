file(REMOVE_RECURSE
  "CMakeFiles/painter_core.dir/baselines.cc.o"
  "CMakeFiles/painter_core.dir/baselines.cc.o.d"
  "CMakeFiles/painter_core.dir/config_io.cc.o"
  "CMakeFiles/painter_core.dir/config_io.cc.o.d"
  "CMakeFiles/painter_core.dir/evaluate.cc.o"
  "CMakeFiles/painter_core.dir/evaluate.cc.o.d"
  "CMakeFiles/painter_core.dir/orchestrator.cc.o"
  "CMakeFiles/painter_core.dir/orchestrator.cc.o.d"
  "CMakeFiles/painter_core.dir/prefix_pool.cc.o"
  "CMakeFiles/painter_core.dir/prefix_pool.cc.o.d"
  "CMakeFiles/painter_core.dir/problem.cc.o"
  "CMakeFiles/painter_core.dir/problem.cc.o.d"
  "CMakeFiles/painter_core.dir/resilience.cc.o"
  "CMakeFiles/painter_core.dir/resilience.cc.o.d"
  "CMakeFiles/painter_core.dir/routing_model.cc.o"
  "CMakeFiles/painter_core.dir/routing_model.cc.o.d"
  "CMakeFiles/painter_core.dir/sim_environment.cc.o"
  "CMakeFiles/painter_core.dir/sim_environment.cc.o.d"
  "libpainter_core.a"
  "libpainter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
