file(REMOVE_RECURSE
  "CMakeFiles/painter_cloudsim.dir/deployment.cc.o"
  "CMakeFiles/painter_cloudsim.dir/deployment.cc.o.d"
  "CMakeFiles/painter_cloudsim.dir/ingress.cc.o"
  "CMakeFiles/painter_cloudsim.dir/ingress.cc.o.d"
  "libpainter_cloudsim.a"
  "libpainter_cloudsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_cloudsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
