# Empty compiler generated dependencies file for painter_cloudsim.
# This may be replaced when dependencies are built.
