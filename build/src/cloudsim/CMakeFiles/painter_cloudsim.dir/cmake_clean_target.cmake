file(REMOVE_RECURSE
  "libpainter_cloudsim.a"
)
