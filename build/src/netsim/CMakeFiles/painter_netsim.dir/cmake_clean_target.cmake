file(REMOVE_RECURSE
  "libpainter_netsim.a"
)
