file(REMOVE_RECURSE
  "CMakeFiles/painter_netsim.dir/link.cc.o"
  "CMakeFiles/painter_netsim.dir/link.cc.o.d"
  "CMakeFiles/painter_netsim.dir/nat.cc.o"
  "CMakeFiles/painter_netsim.dir/nat.cc.o.d"
  "CMakeFiles/painter_netsim.dir/path.cc.o"
  "CMakeFiles/painter_netsim.dir/path.cc.o.d"
  "CMakeFiles/painter_netsim.dir/sim.cc.o"
  "CMakeFiles/painter_netsim.dir/sim.cc.o.d"
  "libpainter_netsim.a"
  "libpainter_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/painter_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
