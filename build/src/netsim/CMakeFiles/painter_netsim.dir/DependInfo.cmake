
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/link.cc" "src/netsim/CMakeFiles/painter_netsim.dir/link.cc.o" "gcc" "src/netsim/CMakeFiles/painter_netsim.dir/link.cc.o.d"
  "/root/repo/src/netsim/nat.cc" "src/netsim/CMakeFiles/painter_netsim.dir/nat.cc.o" "gcc" "src/netsim/CMakeFiles/painter_netsim.dir/nat.cc.o.d"
  "/root/repo/src/netsim/path.cc" "src/netsim/CMakeFiles/painter_netsim.dir/path.cc.o" "gcc" "src/netsim/CMakeFiles/painter_netsim.dir/path.cc.o.d"
  "/root/repo/src/netsim/sim.cc" "src/netsim/CMakeFiles/painter_netsim.dir/sim.cc.o" "gcc" "src/netsim/CMakeFiles/painter_netsim.dir/sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/painter_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
