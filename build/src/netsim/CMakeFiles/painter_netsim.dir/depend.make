# Empty dependencies file for painter_netsim.
# This may be replaced when dependencies are built.
