// DNS TTL audit: why DNS steering cannot protect this traffic.
//
// Replays the paper's motivating measurement (§2.2, Fig. 3) for a single
// enterprise's traffic mix: synthesize a day of flows against a cloud's DNS
// records, then report how many bytes are in flight after the governing
// record expired — the traffic a DNS-based traffic engineering system can no
// longer move. Sweeping the TTL shows that even aggressive TTLs leave most
// conferencing-style traffic uncontrolled, which is the case for PAINTER's
// per-flow Traffic Manager.
//
// Build and run:  ./build/examples/dns_ttl_audit
#include <iostream>

#include "dnssim/ttl_study.h"
#include "util/table.h"

int main() {
  using namespace painter;

  std::cout << "Auditing an enterprise's conferencing traffic against its "
               "cloud's DNS TTL.\n\n";

  // The enterprise's mix: Cloud-A-like conferencing flows.
  dnssim::CloudTrafficProfile profile = dnssim::DefaultCloudProfiles()[0];
  profile.name = "enterprise conferencing";

  util::Rng rng{99};
  util::Table table{{"TTL (s)", "% bytes after expiry", "% >= 1 min late",
                     "% >= 5 min late", "stale mechanism (live : new)"}};
  for (const double ttl : {30.0, 60.0, 300.0, 900.0, 3600.0}) {
    profile.ttl_seconds = ttl;
    const auto r = dnssim::RunTtlStudy(profile, 200, 3 * 3600.0, rng);
    const double live = r.live_past_expiry_bytes;
    const double stale = r.stale_new_flow_bytes;
    table.AddRow({util::Table::Num(ttl, 0),
                  util::Table::Pct(dnssim::FractionAtOrAfter(r, 0.0)),
                  util::Table::Pct(dnssim::FractionAtOrAfter(r, 60.0)),
                  util::Table::Pct(dnssim::FractionAtOrAfter(r, 300.0)),
                  util::Table::Num(stale > 0 ? live / stale : 0.0, 1) + " : 1"});
  }
  table.Print(std::cout);

  std::cout
      << "\nReading: even at a 30 s TTL most conferencing bytes flow after "
         "the record expired (flows outlive records; clients cache resolved "
         "addresses). A DNS update cannot move those bytes; a TM-Edge "
         "steering per flow can (see examples/enterprise_failover).\n";
  return 0;
}
